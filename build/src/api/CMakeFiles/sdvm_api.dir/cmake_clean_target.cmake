file(REMOVE_RECURSE
  "libsdvm_api.a"
)
