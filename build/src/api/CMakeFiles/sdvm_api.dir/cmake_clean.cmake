file(REMOVE_RECURSE
  "CMakeFiles/sdvm_api.dir/local_cluster.cpp.o"
  "CMakeFiles/sdvm_api.dir/local_cluster.cpp.o.d"
  "CMakeFiles/sdvm_api.dir/program_file.cpp.o"
  "CMakeFiles/sdvm_api.dir/program_file.cpp.o.d"
  "CMakeFiles/sdvm_api.dir/tcp_node.cpp.o"
  "CMakeFiles/sdvm_api.dir/tcp_node.cpp.o.d"
  "libsdvm_api.a"
  "libsdvm_api.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdvm_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
