# Empty dependencies file for sdvm_api.
# This may be replaced when dependencies are built.
