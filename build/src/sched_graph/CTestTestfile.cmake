# CMake generated Testfile for 
# Source directory: /root/repo/src/sched_graph
# Build directory: /root/repo/build/src/sched_graph
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
