# Empty dependencies file for sdvm_sched_graph.
# This may be replaced when dependencies are built.
