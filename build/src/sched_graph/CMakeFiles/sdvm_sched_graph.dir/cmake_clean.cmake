file(REMOVE_RECURSE
  "CMakeFiles/sdvm_sched_graph.dir/cdag.cpp.o"
  "CMakeFiles/sdvm_sched_graph.dir/cdag.cpp.o.d"
  "libsdvm_sched_graph.a"
  "libsdvm_sched_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdvm_sched_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
