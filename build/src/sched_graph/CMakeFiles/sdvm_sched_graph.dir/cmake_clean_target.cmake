file(REMOVE_RECURSE
  "libsdvm_sched_graph.a"
)
