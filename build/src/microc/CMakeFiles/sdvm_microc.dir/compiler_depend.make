# Empty compiler generated dependencies file for sdvm_microc.
# This may be replaced when dependencies are built.
