file(REMOVE_RECURSE
  "CMakeFiles/sdvm_microc.dir/bytecode.cpp.o"
  "CMakeFiles/sdvm_microc.dir/bytecode.cpp.o.d"
  "CMakeFiles/sdvm_microc.dir/compiler.cpp.o"
  "CMakeFiles/sdvm_microc.dir/compiler.cpp.o.d"
  "CMakeFiles/sdvm_microc.dir/lexer.cpp.o"
  "CMakeFiles/sdvm_microc.dir/lexer.cpp.o.d"
  "CMakeFiles/sdvm_microc.dir/parser.cpp.o"
  "CMakeFiles/sdvm_microc.dir/parser.cpp.o.d"
  "CMakeFiles/sdvm_microc.dir/vm.cpp.o"
  "CMakeFiles/sdvm_microc.dir/vm.cpp.o.d"
  "libsdvm_microc.a"
  "libsdvm_microc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdvm_microc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
