
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/microc/bytecode.cpp" "src/microc/CMakeFiles/sdvm_microc.dir/bytecode.cpp.o" "gcc" "src/microc/CMakeFiles/sdvm_microc.dir/bytecode.cpp.o.d"
  "/root/repo/src/microc/compiler.cpp" "src/microc/CMakeFiles/sdvm_microc.dir/compiler.cpp.o" "gcc" "src/microc/CMakeFiles/sdvm_microc.dir/compiler.cpp.o.d"
  "/root/repo/src/microc/lexer.cpp" "src/microc/CMakeFiles/sdvm_microc.dir/lexer.cpp.o" "gcc" "src/microc/CMakeFiles/sdvm_microc.dir/lexer.cpp.o.d"
  "/root/repo/src/microc/parser.cpp" "src/microc/CMakeFiles/sdvm_microc.dir/parser.cpp.o" "gcc" "src/microc/CMakeFiles/sdvm_microc.dir/parser.cpp.o.d"
  "/root/repo/src/microc/vm.cpp" "src/microc/CMakeFiles/sdvm_microc.dir/vm.cpp.o" "gcc" "src/microc/CMakeFiles/sdvm_microc.dir/vm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sdvm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
