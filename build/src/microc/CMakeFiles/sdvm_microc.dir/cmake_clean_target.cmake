file(REMOVE_RECURSE
  "libsdvm_microc.a"
)
