file(REMOVE_RECURSE
  "CMakeFiles/sdvm_common.dir/log.cpp.o"
  "CMakeFiles/sdvm_common.dir/log.cpp.o.d"
  "CMakeFiles/sdvm_common.dir/types.cpp.o"
  "CMakeFiles/sdvm_common.dir/types.cpp.o.d"
  "libsdvm_common.a"
  "libsdvm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdvm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
