file(REMOVE_RECURSE
  "libsdvm_common.a"
)
