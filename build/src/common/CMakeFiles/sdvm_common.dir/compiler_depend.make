# Empty compiler generated dependencies file for sdvm_common.
# This may be replaced when dependencies are built.
