file(REMOVE_RECURSE
  "CMakeFiles/sdvm_crypto.dir/chacha20.cpp.o"
  "CMakeFiles/sdvm_crypto.dir/chacha20.cpp.o.d"
  "CMakeFiles/sdvm_crypto.dir/cipher.cpp.o"
  "CMakeFiles/sdvm_crypto.dir/cipher.cpp.o.d"
  "CMakeFiles/sdvm_crypto.dir/sha256.cpp.o"
  "CMakeFiles/sdvm_crypto.dir/sha256.cpp.o.d"
  "libsdvm_crypto.a"
  "libsdvm_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdvm_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
