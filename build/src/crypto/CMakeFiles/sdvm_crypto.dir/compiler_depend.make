# Empty compiler generated dependencies file for sdvm_crypto.
# This may be replaced when dependencies are built.
