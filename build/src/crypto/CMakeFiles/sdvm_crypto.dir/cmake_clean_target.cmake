file(REMOVE_RECURSE
  "libsdvm_crypto.a"
)
