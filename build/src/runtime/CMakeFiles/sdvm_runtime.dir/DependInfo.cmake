
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/attraction_memory.cpp" "src/runtime/CMakeFiles/sdvm_runtime.dir/attraction_memory.cpp.o" "gcc" "src/runtime/CMakeFiles/sdvm_runtime.dir/attraction_memory.cpp.o.d"
  "/root/repo/src/runtime/cluster_manager.cpp" "src/runtime/CMakeFiles/sdvm_runtime.dir/cluster_manager.cpp.o" "gcc" "src/runtime/CMakeFiles/sdvm_runtime.dir/cluster_manager.cpp.o.d"
  "/root/repo/src/runtime/code_manager.cpp" "src/runtime/CMakeFiles/sdvm_runtime.dir/code_manager.cpp.o" "gcc" "src/runtime/CMakeFiles/sdvm_runtime.dir/code_manager.cpp.o.d"
  "/root/repo/src/runtime/crash_manager.cpp" "src/runtime/CMakeFiles/sdvm_runtime.dir/crash_manager.cpp.o" "gcc" "src/runtime/CMakeFiles/sdvm_runtime.dir/crash_manager.cpp.o.d"
  "/root/repo/src/runtime/exec_context.cpp" "src/runtime/CMakeFiles/sdvm_runtime.dir/exec_context.cpp.o" "gcc" "src/runtime/CMakeFiles/sdvm_runtime.dir/exec_context.cpp.o.d"
  "/root/repo/src/runtime/io_manager.cpp" "src/runtime/CMakeFiles/sdvm_runtime.dir/io_manager.cpp.o" "gcc" "src/runtime/CMakeFiles/sdvm_runtime.dir/io_manager.cpp.o.d"
  "/root/repo/src/runtime/message.cpp" "src/runtime/CMakeFiles/sdvm_runtime.dir/message.cpp.o" "gcc" "src/runtime/CMakeFiles/sdvm_runtime.dir/message.cpp.o.d"
  "/root/repo/src/runtime/message_manager.cpp" "src/runtime/CMakeFiles/sdvm_runtime.dir/message_manager.cpp.o" "gcc" "src/runtime/CMakeFiles/sdvm_runtime.dir/message_manager.cpp.o.d"
  "/root/repo/src/runtime/processing_manager.cpp" "src/runtime/CMakeFiles/sdvm_runtime.dir/processing_manager.cpp.o" "gcc" "src/runtime/CMakeFiles/sdvm_runtime.dir/processing_manager.cpp.o.d"
  "/root/repo/src/runtime/program.cpp" "src/runtime/CMakeFiles/sdvm_runtime.dir/program.cpp.o" "gcc" "src/runtime/CMakeFiles/sdvm_runtime.dir/program.cpp.o.d"
  "/root/repo/src/runtime/program_manager.cpp" "src/runtime/CMakeFiles/sdvm_runtime.dir/program_manager.cpp.o" "gcc" "src/runtime/CMakeFiles/sdvm_runtime.dir/program_manager.cpp.o.d"
  "/root/repo/src/runtime/scheduling_manager.cpp" "src/runtime/CMakeFiles/sdvm_runtime.dir/scheduling_manager.cpp.o" "gcc" "src/runtime/CMakeFiles/sdvm_runtime.dir/scheduling_manager.cpp.o.d"
  "/root/repo/src/runtime/security_manager.cpp" "src/runtime/CMakeFiles/sdvm_runtime.dir/security_manager.cpp.o" "gcc" "src/runtime/CMakeFiles/sdvm_runtime.dir/security_manager.cpp.o.d"
  "/root/repo/src/runtime/site.cpp" "src/runtime/CMakeFiles/sdvm_runtime.dir/site.cpp.o" "gcc" "src/runtime/CMakeFiles/sdvm_runtime.dir/site.cpp.o.d"
  "/root/repo/src/runtime/site_manager.cpp" "src/runtime/CMakeFiles/sdvm_runtime.dir/site_manager.cpp.o" "gcc" "src/runtime/CMakeFiles/sdvm_runtime.dir/site_manager.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sdvm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/sdvm_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/microc/CMakeFiles/sdvm_microc.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/sdvm_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
