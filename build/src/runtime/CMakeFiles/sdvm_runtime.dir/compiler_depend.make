# Empty compiler generated dependencies file for sdvm_runtime.
# This may be replaced when dependencies are built.
