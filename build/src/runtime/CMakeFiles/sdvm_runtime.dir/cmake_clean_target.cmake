file(REMOVE_RECURSE
  "libsdvm_runtime.a"
)
