file(REMOVE_RECURSE
  "CMakeFiles/sdvm_runtime.dir/attraction_memory.cpp.o"
  "CMakeFiles/sdvm_runtime.dir/attraction_memory.cpp.o.d"
  "CMakeFiles/sdvm_runtime.dir/cluster_manager.cpp.o"
  "CMakeFiles/sdvm_runtime.dir/cluster_manager.cpp.o.d"
  "CMakeFiles/sdvm_runtime.dir/code_manager.cpp.o"
  "CMakeFiles/sdvm_runtime.dir/code_manager.cpp.o.d"
  "CMakeFiles/sdvm_runtime.dir/crash_manager.cpp.o"
  "CMakeFiles/sdvm_runtime.dir/crash_manager.cpp.o.d"
  "CMakeFiles/sdvm_runtime.dir/exec_context.cpp.o"
  "CMakeFiles/sdvm_runtime.dir/exec_context.cpp.o.d"
  "CMakeFiles/sdvm_runtime.dir/io_manager.cpp.o"
  "CMakeFiles/sdvm_runtime.dir/io_manager.cpp.o.d"
  "CMakeFiles/sdvm_runtime.dir/message.cpp.o"
  "CMakeFiles/sdvm_runtime.dir/message.cpp.o.d"
  "CMakeFiles/sdvm_runtime.dir/message_manager.cpp.o"
  "CMakeFiles/sdvm_runtime.dir/message_manager.cpp.o.d"
  "CMakeFiles/sdvm_runtime.dir/processing_manager.cpp.o"
  "CMakeFiles/sdvm_runtime.dir/processing_manager.cpp.o.d"
  "CMakeFiles/sdvm_runtime.dir/program.cpp.o"
  "CMakeFiles/sdvm_runtime.dir/program.cpp.o.d"
  "CMakeFiles/sdvm_runtime.dir/program_manager.cpp.o"
  "CMakeFiles/sdvm_runtime.dir/program_manager.cpp.o.d"
  "CMakeFiles/sdvm_runtime.dir/scheduling_manager.cpp.o"
  "CMakeFiles/sdvm_runtime.dir/scheduling_manager.cpp.o.d"
  "CMakeFiles/sdvm_runtime.dir/security_manager.cpp.o"
  "CMakeFiles/sdvm_runtime.dir/security_manager.cpp.o.d"
  "CMakeFiles/sdvm_runtime.dir/site.cpp.o"
  "CMakeFiles/sdvm_runtime.dir/site.cpp.o.d"
  "CMakeFiles/sdvm_runtime.dir/site_manager.cpp.o"
  "CMakeFiles/sdvm_runtime.dir/site_manager.cpp.o.d"
  "libsdvm_runtime.a"
  "libsdvm_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdvm_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
