# Empty dependencies file for sdvm_net.
# This may be replaced when dependencies are built.
