file(REMOVE_RECURSE
  "libsdvm_net.a"
)
