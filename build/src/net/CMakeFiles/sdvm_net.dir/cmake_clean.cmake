file(REMOVE_RECURSE
  "CMakeFiles/sdvm_net.dir/inproc.cpp.o"
  "CMakeFiles/sdvm_net.dir/inproc.cpp.o.d"
  "CMakeFiles/sdvm_net.dir/tcp.cpp.o"
  "CMakeFiles/sdvm_net.dir/tcp.cpp.o.d"
  "libsdvm_net.a"
  "libsdvm_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdvm_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
