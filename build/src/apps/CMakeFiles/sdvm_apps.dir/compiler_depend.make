# Empty compiler generated dependencies file for sdvm_apps.
# This may be replaced when dependencies are built.
