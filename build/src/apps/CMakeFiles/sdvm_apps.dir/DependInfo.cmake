
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/fibonacci.cpp" "src/apps/CMakeFiles/sdvm_apps.dir/fibonacci.cpp.o" "gcc" "src/apps/CMakeFiles/sdvm_apps.dir/fibonacci.cpp.o.d"
  "/root/repo/src/apps/matmul.cpp" "src/apps/CMakeFiles/sdvm_apps.dir/matmul.cpp.o" "gcc" "src/apps/CMakeFiles/sdvm_apps.dir/matmul.cpp.o.d"
  "/root/repo/src/apps/nqueens.cpp" "src/apps/CMakeFiles/sdvm_apps.dir/nqueens.cpp.o" "gcc" "src/apps/CMakeFiles/sdvm_apps.dir/nqueens.cpp.o.d"
  "/root/repo/src/apps/pipeline.cpp" "src/apps/CMakeFiles/sdvm_apps.dir/pipeline.cpp.o" "gcc" "src/apps/CMakeFiles/sdvm_apps.dir/pipeline.cpp.o.d"
  "/root/repo/src/apps/primes.cpp" "src/apps/CMakeFiles/sdvm_apps.dir/primes.cpp.o" "gcc" "src/apps/CMakeFiles/sdvm_apps.dir/primes.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/sdvm_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/sdvm_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/microc/CMakeFiles/sdvm_microc.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/sdvm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sdvm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
