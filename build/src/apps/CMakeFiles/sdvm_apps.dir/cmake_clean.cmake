file(REMOVE_RECURSE
  "CMakeFiles/sdvm_apps.dir/fibonacci.cpp.o"
  "CMakeFiles/sdvm_apps.dir/fibonacci.cpp.o.d"
  "CMakeFiles/sdvm_apps.dir/matmul.cpp.o"
  "CMakeFiles/sdvm_apps.dir/matmul.cpp.o.d"
  "CMakeFiles/sdvm_apps.dir/nqueens.cpp.o"
  "CMakeFiles/sdvm_apps.dir/nqueens.cpp.o.d"
  "CMakeFiles/sdvm_apps.dir/pipeline.cpp.o"
  "CMakeFiles/sdvm_apps.dir/pipeline.cpp.o.d"
  "CMakeFiles/sdvm_apps.dir/primes.cpp.o"
  "CMakeFiles/sdvm_apps.dir/primes.cpp.o.d"
  "libsdvm_apps.a"
  "libsdvm_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdvm_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
