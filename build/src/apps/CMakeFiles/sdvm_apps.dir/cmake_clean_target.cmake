file(REMOVE_RECURSE
  "libsdvm_apps.a"
)
