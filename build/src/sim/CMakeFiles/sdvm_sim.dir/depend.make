# Empty dependencies file for sdvm_sim.
# This may be replaced when dependencies are built.
