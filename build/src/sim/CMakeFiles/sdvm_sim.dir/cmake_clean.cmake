file(REMOVE_RECURSE
  "CMakeFiles/sdvm_sim.dir/sim_cluster.cpp.o"
  "CMakeFiles/sdvm_sim.dir/sim_cluster.cpp.o.d"
  "libsdvm_sim.a"
  "libsdvm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdvm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
