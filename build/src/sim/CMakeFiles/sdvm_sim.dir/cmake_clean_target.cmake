file(REMOVE_RECURSE
  "libsdvm_sim.a"
)
