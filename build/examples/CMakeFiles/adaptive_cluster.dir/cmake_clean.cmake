file(REMOVE_RECURSE
  "CMakeFiles/adaptive_cluster.dir/adaptive_cluster.cpp.o"
  "CMakeFiles/adaptive_cluster.dir/adaptive_cluster.cpp.o.d"
  "adaptive_cluster"
  "adaptive_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
