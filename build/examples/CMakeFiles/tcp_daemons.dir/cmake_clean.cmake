file(REMOVE_RECURSE
  "CMakeFiles/tcp_daemons.dir/tcp_daemons.cpp.o"
  "CMakeFiles/tcp_daemons.dir/tcp_daemons.cpp.o.d"
  "tcp_daemons"
  "tcp_daemons.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcp_daemons.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
