# Empty dependencies file for tcp_daemons.
# This may be replaced when dependencies are built.
