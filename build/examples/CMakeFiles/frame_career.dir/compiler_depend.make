# Empty compiler generated dependencies file for frame_career.
# This may be replaced when dependencies are built.
