file(REMOVE_RECURSE
  "CMakeFiles/frame_career.dir/frame_career.cpp.o"
  "CMakeFiles/frame_career.dir/frame_career.cpp.o.d"
  "frame_career"
  "frame_career.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frame_career.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
