file(REMOVE_RECURSE
  "CMakeFiles/primes_cluster.dir/primes_cluster.cpp.o"
  "CMakeFiles/primes_cluster.dir/primes_cluster.cpp.o.d"
  "primes_cluster"
  "primes_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/primes_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
