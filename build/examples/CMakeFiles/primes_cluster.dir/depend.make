# Empty dependencies file for primes_cluster.
# This may be replaced when dependencies are built.
