# Empty compiler generated dependencies file for sdvm_top.
# This may be replaced when dependencies are built.
