file(REMOVE_RECURSE
  "CMakeFiles/sdvm_top.dir/sdvm_top.cpp.o"
  "CMakeFiles/sdvm_top.dir/sdvm_top.cpp.o.d"
  "sdvm_top"
  "sdvm_top.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdvm_top.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
