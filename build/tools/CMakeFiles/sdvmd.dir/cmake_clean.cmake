file(REMOVE_RECURSE
  "CMakeFiles/sdvmd.dir/sdvmd.cpp.o"
  "CMakeFiles/sdvmd.dir/sdvmd.cpp.o.d"
  "sdvmd"
  "sdvmd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdvmd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
