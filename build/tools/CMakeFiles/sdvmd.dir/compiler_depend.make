# Empty compiler generated dependencies file for sdvmd.
# This may be replaced when dependencies are built.
