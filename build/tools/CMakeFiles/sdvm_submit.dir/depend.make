# Empty dependencies file for sdvm_submit.
# This may be replaced when dependencies are built.
