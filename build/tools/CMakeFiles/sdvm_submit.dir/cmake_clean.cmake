file(REMOVE_RECURSE
  "CMakeFiles/sdvm_submit.dir/sdvm_submit.cpp.o"
  "CMakeFiles/sdvm_submit.dir/sdvm_submit.cpp.o.d"
  "sdvm_submit"
  "sdvm_submit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdvm_submit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
