# Empty dependencies file for overhead_sequential.
# This may be replaced when dependencies are built.
