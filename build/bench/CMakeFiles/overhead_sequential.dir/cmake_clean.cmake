file(REMOVE_RECURSE
  "CMakeFiles/overhead_sequential.dir/overhead_sequential.cpp.o"
  "CMakeFiles/overhead_sequential.dir/overhead_sequential.cpp.o.d"
  "overhead_sequential"
  "overhead_sequential.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overhead_sequential.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
