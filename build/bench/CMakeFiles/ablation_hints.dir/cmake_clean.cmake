file(REMOVE_RECURSE
  "CMakeFiles/ablation_hints.dir/ablation_hints.cpp.o"
  "CMakeFiles/ablation_hints.dir/ablation_hints.cpp.o.d"
  "ablation_hints"
  "ablation_hints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_hints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
