# Empty dependencies file for scaling_sites.
# This may be replaced when dependencies are built.
