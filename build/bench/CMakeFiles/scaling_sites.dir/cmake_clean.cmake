file(REMOVE_RECURSE
  "CMakeFiles/scaling_sites.dir/scaling_sites.cpp.o"
  "CMakeFiles/scaling_sites.dir/scaling_sites.cpp.o.d"
  "scaling_sites"
  "scaling_sites.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaling_sites.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
