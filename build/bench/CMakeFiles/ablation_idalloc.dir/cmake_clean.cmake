file(REMOVE_RECURSE
  "CMakeFiles/ablation_idalloc.dir/ablation_idalloc.cpp.o"
  "CMakeFiles/ablation_idalloc.dir/ablation_idalloc.cpp.o.d"
  "ablation_idalloc"
  "ablation_idalloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_idalloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
