# Empty dependencies file for ablation_idalloc.
# This may be replaced when dependencies are built.
