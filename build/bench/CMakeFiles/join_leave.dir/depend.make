# Empty dependencies file for join_leave.
# This may be replaced when dependencies are built.
