# Empty compiler generated dependencies file for ablation_compile.
# This may be replaced when dependencies are built.
