file(REMOVE_RECURSE
  "CMakeFiles/ablation_compile.dir/ablation_compile.cpp.o"
  "CMakeFiles/ablation_compile.dir/ablation_compile.cpp.o.d"
  "ablation_compile"
  "ablation_compile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_compile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
