# Empty compiler generated dependencies file for ablation_sched_policy.
# This may be replaced when dependencies are built.
