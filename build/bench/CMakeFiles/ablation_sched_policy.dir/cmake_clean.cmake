file(REMOVE_RECURSE
  "CMakeFiles/ablation_sched_policy.dir/ablation_sched_policy.cpp.o"
  "CMakeFiles/ablation_sched_policy.dir/ablation_sched_policy.cpp.o.d"
  "ablation_sched_policy"
  "ablation_sched_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sched_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
