file(REMOVE_RECURSE
  "CMakeFiles/ablation_slots.dir/ablation_slots.cpp.o"
  "CMakeFiles/ablation_slots.dir/ablation_slots.cpp.o.d"
  "ablation_slots"
  "ablation_slots.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_slots.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
