file(REMOVE_RECURSE
  "CMakeFiles/checkpoint_recovery.dir/checkpoint_recovery.cpp.o"
  "CMakeFiles/checkpoint_recovery.dir/checkpoint_recovery.cpp.o.d"
  "checkpoint_recovery"
  "checkpoint_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checkpoint_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
