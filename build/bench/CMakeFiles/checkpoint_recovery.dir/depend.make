# Empty dependencies file for checkpoint_recovery.
# This may be replaced when dependencies are built.
