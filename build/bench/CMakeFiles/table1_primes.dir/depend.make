# Empty dependencies file for table1_primes.
# This may be replaced when dependencies are built.
