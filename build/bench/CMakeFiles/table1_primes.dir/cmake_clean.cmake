file(REMOVE_RECURSE
  "CMakeFiles/table1_primes.dir/table1_primes.cpp.o"
  "CMakeFiles/table1_primes.dir/table1_primes.cpp.o.d"
  "table1_primes"
  "table1_primes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_primes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
