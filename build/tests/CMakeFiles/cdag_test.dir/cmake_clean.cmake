file(REMOVE_RECURSE
  "CMakeFiles/cdag_test.dir/cdag_test.cpp.o"
  "CMakeFiles/cdag_test.dir/cdag_test.cpp.o.d"
  "cdag_test"
  "cdag_test.pdb"
  "cdag_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdag_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
