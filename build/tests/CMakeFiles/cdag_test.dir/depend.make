# Empty dependencies file for cdag_test.
# This may be replaced when dependencies are built.
