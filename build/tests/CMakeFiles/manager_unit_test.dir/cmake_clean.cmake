file(REMOVE_RECURSE
  "CMakeFiles/manager_unit_test.dir/manager_unit_test.cpp.o"
  "CMakeFiles/manager_unit_test.dir/manager_unit_test.cpp.o.d"
  "manager_unit_test"
  "manager_unit_test.pdb"
  "manager_unit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/manager_unit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
