# Empty dependencies file for manager_unit_test.
# This may be replaced when dependencies are built.
