file(REMOVE_RECURSE
  "CMakeFiles/runtime_unit_test.dir/runtime_unit_test.cpp.o"
  "CMakeFiles/runtime_unit_test.dir/runtime_unit_test.cpp.o.d"
  "runtime_unit_test"
  "runtime_unit_test.pdb"
  "runtime_unit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_unit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
