file(REMOVE_RECURSE
  "CMakeFiles/microc_test.dir/microc_test.cpp.o"
  "CMakeFiles/microc_test.dir/microc_test.cpp.o.d"
  "microc_test"
  "microc_test.pdb"
  "microc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
