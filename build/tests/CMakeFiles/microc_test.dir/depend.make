# Empty dependencies file for microc_test.
# This may be replaced when dependencies are built.
