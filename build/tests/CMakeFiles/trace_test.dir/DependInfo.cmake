
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/trace_test.cpp" "tests/CMakeFiles/trace_test.dir/trace_test.cpp.o" "gcc" "tests/CMakeFiles/trace_test.dir/trace_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/sdvm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/api/CMakeFiles/sdvm_api.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/sdvm_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/sdvm_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/sdvm_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/microc/CMakeFiles/sdvm_microc.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/sdvm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sdvm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
