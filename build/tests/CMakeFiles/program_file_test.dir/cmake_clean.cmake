file(REMOVE_RECURSE
  "CMakeFiles/program_file_test.dir/program_file_test.cpp.o"
  "CMakeFiles/program_file_test.dir/program_file_test.cpp.o.d"
  "program_file_test"
  "program_file_test.pdb"
  "program_file_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/program_file_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
