# Empty compiler generated dependencies file for program_file_test.
# This may be replaced when dependencies are built.
