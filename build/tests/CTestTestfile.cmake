# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_test[1]_include.cmake")
include("/root/repo/build/tests/microc_test[1]_include.cmake")
include("/root/repo/build/tests/sim_integration_test[1]_include.cmake")
include("/root/repo/build/tests/crash_test[1]_include.cmake")
include("/root/repo/build/tests/threaded_integration_test[1]_include.cmake")
include("/root/repo/build/tests/tcp_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/cdag_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_unit_test[1]_include.cmake")
include("/root/repo/build/tests/feature_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/program_file_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_decode_test[1]_include.cmake")
include("/root/repo/build/tests/manager_unit_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
