// Systematic-exploration tests: the bounded interleaving enumerator must
// exhaust the small protocol windows it claims to cover, report clean
// runs as clean, and — the acceptance bar — rediscover a seeded
// recovery bug (departed-site frame forwarding disabled) from nothing
// but the invariant suite.
#include <gtest/gtest.h>

#include <algorithm>

#include "chaos/explore.hpp"

namespace sdvm::chaos {
namespace {

ExploreOptions base_options(const std::string& scenario) {
  ExploreOptions opts;
  opts.scenario = scenario;
  opts.sites = 3;
  opts.depth = 8;
  opts.max_runs = 5000;
  opts.seed = 1;
  return opts;
}

TEST(ExploreTest, SignOnSpaceExhausts) {
  auto result = explore(base_options("sign-on"));
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  const ExploreResult& r = result.value();
  EXPECT_TRUE(r.exhausted) << r.summary();
  EXPECT_FALSE(r.failed) << r.summary();
  EXPECT_GT(r.runs, 1) << "the join handshake must branch at least once";
  EXPECT_TRUE(r.violations.empty());
}

TEST(ExploreTest, SignOffCleanSpaceExhausts) {
  auto result = explore(base_options("sign-off"));
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  const ExploreResult& r = result.value();
  EXPECT_TRUE(r.exhausted) << r.summary();
  EXPECT_FALSE(r.failed) << r.summary();
  EXPECT_GT(r.runs, 1);
}

TEST(ExploreTest, CheckpointSpaceExhausts) {
  auto result = explore(base_options("checkpoint"));
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  const ExploreResult& r = result.value();
  EXPECT_TRUE(r.exhausted) << r.summary();
  EXPECT_FALSE(r.failed) << r.summary();
}

// The seeded bug: a signed-off site's pump drops in-flight frames
// instead of forwarding them to its successor. Exploration of the
// sign-off window must find an interleaving where the departure
// overtakes a granted frame, and the invariant suite must flag it.
TEST(ExploreTest, SignOffFindsSeededRecoveryBug) {
  ExploreOptions opts = base_options("sign-off");
  opts.seed_bug = true;
  auto result = explore(opts);
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  const ExploreResult& r = result.value();
  EXPECT_TRUE(r.failed) << r.summary();
  ASSERT_FALSE(r.violations.empty());
  // The DFS only branches at the first `depth` choice points, so a
  // failure implies the bug is reachable within the depth bound; the
  // recorded decision list itself covers the whole run.
  EXPECT_LE(r.runs, opts.max_runs);
  EXPECT_FALSE(r.failure_trace.empty())
      << "a failure must come with a replayable trace";
  EXPECT_NE(r.summary().find("FAILED"), std::string::npos);
}

TEST(ExploreTest, OptionsValidate) {
  ExploreOptions opts;
  EXPECT_TRUE(opts.validate().is_ok());

  opts = ExploreOptions{};
  opts.sites = 1;
  EXPECT_FALSE(opts.validate().is_ok()) << "too few sites";
  opts.sites = 9;
  EXPECT_FALSE(opts.validate().is_ok()) << "too many sites";

  opts = ExploreOptions{};
  opts.scenario = "split-brain";
  EXPECT_FALSE(opts.validate().is_ok()) << "unknown scenario";

  opts = ExploreOptions{};
  opts.depth = -1;
  EXPECT_FALSE(opts.validate().is_ok()) << "negative depth";

  opts = ExploreOptions{};
  opts.max_runs = 0;
  EXPECT_FALSE(opts.validate().is_ok()) << "no run budget";

  opts = ExploreOptions{};
  opts.window = 0;
  EXPECT_FALSE(opts.validate().is_ok()) << "empty co-enabled window";

  // explore() surfaces the validation error instead of running.
  opts = ExploreOptions{};
  opts.sites = 1;
  EXPECT_FALSE(explore(opts).is_ok());
}

// Depth 0 disables branching entirely: exactly one run, the timestamp
// order, and the space is trivially exhausted.
TEST(ExploreTest, DepthZeroRunsOnce) {
  ExploreOptions opts = base_options("sign-on");
  opts.depth = 0;
  auto result = explore(opts);
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_EQ(result.value().runs, 1);
  EXPECT_TRUE(result.value().exhausted);
}

}  // namespace
}  // namespace sdvm::chaos
