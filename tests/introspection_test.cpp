// The unified introspection API, end to end: Site::introspect(), the
// kMetricsQuery/kMetricsReply fan-out behind cluster_status(), and the
// observability facade shared by LocalCluster and SimCluster. The
// ThreeSiteClusterWideSnapshot case is the sdvm-top `--once` equivalent:
// run primes on a 3-site cluster, query site 0, and require non-zero
// counters from at least five distinct managers in both text and JSON.
#include <gtest/gtest.h>

#include <set>

#include "test_util.hpp"

#include "api/local_cluster.hpp"
#include "apps/primes.hpp"
#include "sim/sim_cluster.hpp"

namespace sdvm {
namespace {

constexpr Nanos kWaitLimit = 30 * kNanosPerSecond;

apps::PrimesParams small_primes() {
  apps::PrimesParams params;
  params.p = 20;
  params.width = 6;
  params.work_mult = 0;  // wall-clock modes: no virtual charge needed
  return params;
}

TEST(IntrospectionTest, ThreeSiteClusterWideSnapshot) {
  LocalCluster cluster;
  cluster.add_sites(3);
  auto pid = cluster.start_program(apps::make_primes_program(small_primes()));
  ASSERT_TRUE(pid.is_ok());
  auto code = cluster.wait_program(pid.value(), kWaitLimit);
  ASSERT_TRUE(code.is_ok()) << code.status().to_string();

  auto cs = cluster.cluster_status(/*via_index=*/0);
  ASSERT_TRUE(cs.is_ok()) << cs.status().to_string();
  EXPECT_EQ(cs.value().sites.size(), 3u);
  EXPECT_TRUE(cs.value().unreachable.empty());
  for (const SiteStatus& s : cs.value().sites) {
    EXPECT_TRUE(s.joined);
    // Membership gossip may still be propagating on a freshly formed
    // cluster: every site knows at least itself + the contact site.
    EXPECT_GE(s.cluster_size, 2u);
    EXPECT_LE(s.cluster_size, 3u);
  }

  // Cluster-wide counters from >= 5 distinct managers must have moved.
  metrics::MetricsSnapshot agg = cs.value().aggregate();
  EXPECT_GT(agg.counter("sched.frames_enqueued"), 0u);   // scheduling
  EXPECT_GT(agg.counter("proc.executed"), 0u);           // processing
  EXPECT_GT(agg.counter("msg.sent"), 0u);                // messages
  EXPECT_GT(agg.counter("msg.bytes_sent"), 0u);
  EXPECT_GT(agg.counter("cluster.sites_admitted"), 0u);  // cluster
  EXPECT_GT(agg.counter("code.compiles"), 0u);           // code
  EXPECT_GT(agg.counter("mem.frames_created"), 0u);      // memory
  EXPECT_GT(agg.counter("io.outputs_delivered"), 0u);    // io

  // The per-message-type provider families travel with the snapshot.
  EXPECT_GT(agg.counter("msg.sent.sign-on-request"), 0u);

  // Both export forms carry the counters.
  std::string text = cs.value().to_text();
  EXPECT_NE(text.find("proc.executed"), std::string::npos);
  EXPECT_NE(text.find("aggregate:"), std::string::npos);
  std::string json = cs.value().to_json();
  EXPECT_NE(json.find("\"proc.executed\""), std::string::npos);
  EXPECT_NE(json.find("\"aggregate\""), std::string::npos);
  EXPECT_NE(json.find("\"queried_from\":"), std::string::npos);

  // The accounting ledger rides along: the program was billed somewhere.
  AccountLedger bill = cs.value().total_ledger();
  ASSERT_EQ(bill.count(pid.value()), 1u);
  EXPECT_GT(bill.at(pid.value()).microthreads, 0u);
}

TEST(IntrospectionTest, PerSiteStatusMatchesManagers) {
  LocalCluster cluster;
  cluster.add_sites(2);
  auto st = cluster.status(1);
  ASSERT_TRUE(st.is_ok()) << st.status().to_string();
  EXPECT_EQ(st.value().name, "site2");
  EXPECT_TRUE(st.value().joined);
  // introspect() and the facade agree (same underlying snapshot).
  SiteStatus direct = cluster.site(1).introspect();
  EXPECT_EQ(direct.id, st.value().id);
  EXPECT_EQ(direct.metrics.counter("cluster.signon_messages"),
            st.value().metrics.counter("cluster.signon_messages"));
}

TEST(IntrospectionTest, FacadeRejectsBadIndices) {
  LocalCluster cluster;
  cluster.add_sites(1);
  EXPECT_EQ(cluster.status(5).status().code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(cluster.cluster_status(5).status().code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(cluster.install_trace_hook(5, nullptr).code(),
            ErrorCode::kInvalidArgument);

  sim::SimCluster sim;
  sim.add_sites(1);
  EXPECT_EQ(sim.status(3).status().code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(sim.cluster_status(3).status().code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(sim.install_trace_hook(3, nullptr).code(),
            ErrorCode::kInvalidArgument);
}

TEST(IntrospectionTest, SimModeSameApiAndMetricCatalog) {
  // The facade works identically under the simulator, and the metric
  // catalog (registered names) is identical across deployment modes.
  sim::SimCluster sim;
  sim.add_sites(3);
  apps::PrimesParams params = small_primes();
  params.work_mult = 3'000'000;  // sim mode: give leaves virtual cost
  auto pid = sim.start_program(apps::make_primes_program(params));
  ASSERT_TRUE(pid.is_ok());
  auto code = sim.run_program(pid.value(), 3000 * kNanosPerSecond);
  ASSERT_TRUE(code.is_ok()) << code.status().to_string();

  auto cs = sim.cluster_status(/*via_index=*/0);
  ASSERT_TRUE(cs.is_ok()) << cs.status().to_string();
  EXPECT_EQ(cs.value().sites.size(), 3u);
  metrics::MetricsSnapshot agg = cs.value().aggregate();
  EXPECT_GT(agg.counter("sched.frames_enqueued"), 0u);
  EXPECT_GT(agg.counter("proc.executed"), 0u);
  EXPECT_GT(agg.counter("msg.sent"), 0u);
  EXPECT_GT(agg.counter("cluster.sites_admitted"), 0u);
  EXPECT_GT(agg.counter("mem.frames_created"), 0u);

  // Static catalog parity: the registered names on a sim site equal the
  // registered names on a threads-mode site.
  LocalCluster threads;
  threads.add_sites(1);
  EXPECT_EQ(sim.site(0).metrics_registry().names(),
            threads.site(0).metrics_registry().names());
}

TEST(IntrospectionTest, UnreachableSiteLandsInPartialResult) {
  LocalCluster cluster;
  cluster.add_sites(3);
  cluster.kill(2);
  // Query with a short timeout: the killed site cannot answer. Depending
  // on failure-detector progress it shows up as unreachable or is already
  // dropped from the membership view — either way the result is partial
  // and the two live sites answer.
  auto cs = cluster.cluster_status(/*via_index=*/0, kNanosPerSecond / 2);
  ASSERT_TRUE(cs.is_ok()) << cs.status().to_string();
  std::set<SiteId> reported;
  for (const auto& s : cs.value().sites) reported.insert(s.id);
  EXPECT_TRUE(reported.count(cluster.site(0).id()));
  EXPECT_TRUE(reported.count(cluster.site(1).id()));
  EXPECT_GE(cs.value().sites.size(), 2u);
  EXPECT_LE(cs.value().sites.size() + cs.value().unreachable.size(), 3u);
}

TEST(IntrospectionTest, TraceHookInstallsViaFacade) {
  sim::SimCluster sim;
  sim.add_sites(1);
  int events = 0;
  ASSERT_TRUE(sim.install_trace_hook(0, [&events](FrameEvent, FrameId,
                                                  MicrothreadId) {
                   ++events;
                 }).is_ok());
  apps::PrimesParams params = small_primes();
  params.work_mult = 3'000'000;
  auto pid = sim.start_program(apps::make_primes_program(params));
  ASSERT_TRUE(pid.is_ok());
  ASSERT_TRUE(sim.run_program(pid.value(), 3000 * kNanosPerSecond).is_ok());
  EXPECT_GT(events, 0);
}

}  // namespace
}  // namespace sdvm
