// Integration tests in "threads" mode: every site is a real daemon with
// engine + worker threads over the in-process fabric. Wall-clock time,
// true parallelism, real blocking on remote memory.
#include <gtest/gtest.h>

#include "test_util.hpp"

#include "api/local_cluster.hpp"
#include "api/program_builder.hpp"
#include "apps/fibonacci.hpp"
#include "apps/matmul.hpp"
#include "apps/primes.hpp"
#include "runtime/context.hpp"

namespace sdvm {
namespace {

constexpr Nanos kWaitLimit = 30 * kNanosPerSecond;

TEST(ThreadedTest, HelloWorld) {
  LocalCluster cluster;
  cluster.add_sites(1);
  auto spec = ProgramBuilder("hello")
                  .thread("entry", "out(7); exit(0);")
                  .entry("entry")
                  .build();
  auto pid = cluster.start_program(spec);
  ASSERT_TRUE(pid.is_ok()) << pid.status().to_string();
  auto code = cluster.wait_program(pid.value(), kWaitLimit);
  ASSERT_TRUE(code.is_ok()) << code.status().to_string();
  EXPECT_EQ(cluster.outputs(0, pid.value()), std::vector<std::string>{"7"});
}

TEST(ThreadedTest, PrimesDistributeAcrossSites) {
  LocalCluster cluster;
  cluster.add_sites(4);
  apps::PrimesParams params;
  params.p = 40;
  params.width = 12;
  params.work_mult = 0;  // wall time: no virtual charge needed
  auto pid = cluster.start_program(apps::make_primes_program(params));
  ASSERT_TRUE(pid.is_ok());
  auto code = cluster.wait_program(pid.value(), kWaitLimit);
  ASSERT_TRUE(code.is_ok()) << code.status().to_string();
  testing_util::expect_primes_verdict(cluster.outputs(0, pid.value()), 40, 12);
}

TEST(ThreadedTest, NativeThreadsAndGlobalMemory) {
  LocalCluster cluster;
  cluster.add_sites(2);
  // Native entry allocates an object, a MicroC worker on (possibly) the
  // other site increments it, native finisher checks — exercising the
  // real blocking migration protocol.
  auto spec =
      ProgramBuilder("memory")
          .native_thread("entry",
                         [](Context& ctx) {
                           GlobalAddress obj = ctx.alloc_global(4);
                           ctx.mem_write(obj, 0, 100);
                           GlobalAddress fin = ctx.spawn("finish", 1);
                           GlobalAddress w = ctx.spawn("work", 2);
                           ctx.send_int(w, 0, static_cast<std::int64_t>(obj.value));
                           ctx.send_int(w, 1, static_cast<std::int64_t>(fin.value));
                         })
          .thread("work", R"(
            var obj = param(0);
            var fin = param(1);
            store(obj, 1, load(obj, 0) * 2);
            send(fin, 0, obj);
          )")
          .native_thread("finish",
                         [](Context& ctx) {
                           GlobalAddress obj{
                               static_cast<std::uint64_t>(ctx.param_int(0))};
                           std::int64_t v = ctx.mem_read(obj, 1);
                           ctx.out(v);
                           ctx.exit_program(0);
                         })
          .entry("entry")
          .build();
  auto pid = cluster.start_program(spec);
  ASSERT_TRUE(pid.is_ok());
  auto code = cluster.wait_program(pid.value(), kWaitLimit);
  ASSERT_TRUE(code.is_ok()) << code.status().to_string();
  EXPECT_EQ(cluster.outputs(0, pid.value()).back(), "200");
}

TEST(ThreadedTest, MatmulCorrectUnderRealConcurrency) {
  LocalCluster cluster;
  cluster.add_sites(3);
  apps::MatmulParams params;
  params.n = 12;
  params.block_rows = 3;
  auto pid = cluster.start_program(apps::make_matmul_program(params));
  ASSERT_TRUE(pid.is_ok());
  auto code = cluster.wait_program(pid.value(), kWaitLimit);
  ASSERT_TRUE(code.is_ok()) << code.status().to_string();

  auto ref = apps::matmul_reference(params.n);
  std::int64_t expected = 0;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    expected += ref[i] * (static_cast<std::int64_t>(i) % 13 + 1);
  }
  EXPECT_EQ(cluster.outputs(0, pid.value()).back(), std::to_string(expected));
}

TEST(ThreadedTest, FibCorrectUnderRealConcurrency) {
  LocalCluster cluster;
  cluster.add_sites(4);
  apps::FibParams params;
  params.n = 13;
  params.leaf_work = 0;
  auto pid = cluster.start_program(apps::make_fib_program(params));
  ASSERT_TRUE(pid.is_ok());
  auto code = cluster.wait_program(pid.value(), kWaitLimit);
  ASSERT_TRUE(code.is_ok()) << code.status().to_string();
  EXPECT_EQ(cluster.outputs(0, pid.value()).back(),
            std::to_string(apps::fib_reference(13)));
}

TEST(ThreadedTest, EncryptedClusterWithLatency) {
  LocalCluster::Options options;
  options.link.latency = 200'000;  // 200 us real delay per message
  LocalCluster cluster(options);
  SiteConfig cfg;
  cfg.encrypt = true;
  cfg.cluster_password = "s3cret";
  cluster.add_sites(3, cfg);

  apps::PrimesParams params;
  params.p = 20;
  params.width = 8;
  params.work_mult = 0;
  auto pid = cluster.start_program(apps::make_primes_program(params));
  ASSERT_TRUE(pid.is_ok());
  auto code = cluster.wait_program(pid.value(), kWaitLimit);
  ASSERT_TRUE(code.is_ok()) << code.status().to_string();
  testing_util::expect_primes_verdict(cluster.outputs(0, pid.value()), 20, 8);
  EXPECT_GT(cluster.site(0).security().sealed_count, 0u);
}

TEST(ThreadedTest, SignOffMidRunRelocates) {
  LocalCluster cluster;
  cluster.add_sites(3);
  apps::PrimesParams params;
  params.p = 50;
  params.width = 10;
  params.work_mult = 0;
  auto pid = cluster.start_program(apps::make_primes_program(params));
  ASSERT_TRUE(pid.is_ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  {
    std::lock_guard lk(cluster.site(2).lock());
    auto succ = cluster.site(2).sign_off();
    ASSERT_TRUE(succ.is_ok()) << succ.status().to_string();
  }
  auto code = cluster.wait_program(pid.value(), kWaitLimit);
  ASSERT_TRUE(code.is_ok()) << code.status().to_string();
  testing_util::expect_primes_verdict(cluster.outputs(0, pid.value()), 50, 10);
}

TEST(ThreadedTest, MultipleProgramsConcurrently) {
  LocalCluster cluster;
  cluster.add_sites(3);
  apps::PrimesParams p1;
  p1.p = 20;
  p1.width = 6;
  p1.work_mult = 0;
  apps::FibParams p2;
  p2.n = 11;
  p2.leaf_work = 0;
  auto a = cluster.start_program(apps::make_primes_program(p1), 0);
  auto b = cluster.start_program(apps::make_fib_program(p2), 2);
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  auto ca = cluster.wait_program(a.value(), kWaitLimit);
  auto cb = cluster.wait_program(b.value(), kWaitLimit);
  ASSERT_TRUE(ca.is_ok()) << ca.status().to_string();
  ASSERT_TRUE(cb.is_ok()) << cb.status().to_string();
  testing_util::expect_primes_verdict(cluster.outputs(0, a.value()), 20, 6);
  EXPECT_EQ(cluster.outputs(2, b.value()).back(),
            std::to_string(apps::fib_reference(11)));
}

}  // namespace
}  // namespace sdvm
