// Scale tests for the discrete-event simulator: memberships from the
// paper's handful of sites up to 1000, hierarchical (zoned) topologies,
// golden-trace determinism, and the Options/zone validation surface.
//
// The large memberships use the same scale profile as the chaos harness
// (ring heartbeats, delta gossip, calmer timers): full-mesh heartbeats
// and whole-list gossip are O(n²) per tick and exist to exercise the
// paper configuration, not 1000 sites.
#include <gtest/gtest.h>

#include <limits>

#include "test_util.hpp"

#include "api/program_builder.hpp"
#include "sim/sim_cluster.hpp"
#include "sim/topology.hpp"

namespace sdvm {
namespace {

using sim::SimCluster;
using sim::ZoneSpec;

ProgramSpec hello_program() {
  return ProgramBuilder("hello")
      .thread("entry", R"( out(42); exit(0); )")
      .entry("entry")
      .build();
}

/// Mirror of the chaos harness's large-membership profile.
SiteConfig scale_site_config(int sites) {
  SiteConfig cfg;
  if (sites > 64) {
    cfg.heartbeat_fanout = 4;
    cfg.gossip_delta = true;
    cfg.heartbeat_interval = 200'000'000;   // 200 ms
    cfg.failure_timeout = kNanosPerSecond;  // 5 missed rounds
    cfg.help_retry_interval = 250'000'000;  // 250 ms
  }
  return cfg;
}

class SimScaleTest : public ::testing::TestWithParam<int> {};

// Build an n-site membership, let the detector run a few virtual
// seconds, and check that it stays quiet and a program still runs: no
// site may be declared dead on an idle, healthy fabric of any size.
TEST_P(SimScaleTest, MembershipConvergesAndStaysQuiet) {
  const int sites = GetParam();
  SimCluster cluster;
  cluster.add_sites(sites, 1.0, scale_site_config(sites));
  ASSERT_EQ(cluster.size(), static_cast<std::size_t>(sites));

  cluster.loop().run_for(3 * kNanosPerSecond);

  // Sample the view from both ends and the middle rather than paying a
  // 1000-way introspection fan-out per size.
  for (std::size_t idx :
       {std::size_t{0}, static_cast<std::size_t>(sites) / 2,
        static_cast<std::size_t>(sites) - 1}) {
    auto status = cluster.status(idx);
    ASSERT_TRUE(status.is_ok()) << status.status().to_string();
    EXPECT_TRUE(status.value().joined) << "site " << idx;
    EXPECT_EQ(status.value().cluster_size, static_cast<std::uint32_t>(sites))
        << "site " << idx << " has a stale membership view";
  }

  auto pid = cluster.start_program(hello_program());
  ASSERT_TRUE(pid.is_ok()) << pid.status().to_string();
  auto code = cluster.run_program(pid.value(), 10 * kNanosPerSecond);
  ASSERT_TRUE(code.is_ok()) << code.status().to_string();
  EXPECT_EQ(code.value(), 0);
  EXPECT_EQ(cluster.outputs(0, pid.value()),
            std::vector<std::string>{"42"});

  // The quiet-fabric half of the claim: nobody was ever declared dead.
  auto home = cluster.status(0);
  ASSERT_TRUE(home.is_ok());
  EXPECT_EQ(home.value().cluster_size, static_cast<std::uint32_t>(sites));
}

INSTANTIATE_TEST_SUITE_P(Memberships, SimScaleTest,
                         ::testing::Values(8, 64, 256, 1000),
                         ::testing::PrintToStringParamName());

TEST(SimZoneTest, RackTopologyPlacesAndRoutes) {
  SimCluster::Options opts;
  net::LinkModel intra;
  intra.latency = 20'000;  // 20 us in-rack
  intra.per_byte = 5;
  net::LinkModel up;
  up.latency = 200'000;  // 200 us to the core
  up.per_byte = 10;
  opts.zones = sim::make_rack_topology(4, 4, intra, up);

  SimCluster cluster(opts);
  ASSERT_TRUE(cluster.add_topology_sites(SiteConfig{}).is_ok());
  ASSERT_EQ(cluster.size(), 16u);
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    EXPECT_EQ(cluster.zone_of(i), static_cast<int>(i / 4)) << "site " << i;
  }

  cluster.loop().run_for(3 * kNanosPerSecond);
  auto status = cluster.status(15);
  ASSERT_TRUE(status.is_ok());
  EXPECT_EQ(status.value().cluster_size, 16u);

  // Programs run across racks exactly as on a flat fabric.
  auto pid = cluster.start_program(hello_program());
  ASSERT_TRUE(pid.is_ok());
  auto code = cluster.run_program(pid.value(), 10 * kNanosPerSecond);
  ASSERT_TRUE(code.is_ok()) << code.status().to_string();
  EXPECT_EQ(code.value(), 0);
}

// --- golden-trace determinism -------------------------------------------

/// Paper-scale run folded into the event hash: build 4 sites, run the
/// hello program, idle a virtual second.
std::uint64_t paper_scale_hash(std::uint64_t seed) {
  SimCluster::Options opts;
  opts.seed = seed;
  // Jitter is what the seed drives; without it two seeds can coincide.
  opts.link.jitter = 50'000;
  SimCluster cluster(opts);
  cluster.enable_event_hash();
  cluster.add_sites(4);
  auto pid = cluster.start_program(hello_program());
  EXPECT_TRUE(pid.is_ok());
  if (pid.is_ok()) {
    (void)cluster.run_program(pid.value(), 10 * kNanosPerSecond);
  }
  cluster.loop().run_for(kNanosPerSecond);
  return cluster.event_hash();
}

TEST(SimDeterminismTest, PaperScaleGoldenTrace) {
  const std::uint64_t a = paper_scale_hash(7);
  const std::uint64_t b = paper_scale_hash(7);
  EXPECT_EQ(a, b) << "same seed must replay the identical event trace";
  const std::uint64_t c = paper_scale_hash(8);
  EXPECT_NE(a, c) << "seeds drive delivery jitter; traces must differ";
}

std::uint64_t zoned_hash(std::uint64_t seed) {
  SimCluster::Options opts;
  opts.seed = seed;
  net::LinkModel intra;
  intra.latency = 20'000;
  intra.per_byte = 5;
  net::LinkModel up;
  up.latency = 200'000;
  up.per_byte = 10;
  opts.zones = sim::make_rack_topology(8, 32, intra, up);
  SimCluster cluster(opts);
  cluster.enable_event_hash();
  EXPECT_TRUE(cluster.add_topology_sites(scale_site_config(256)).is_ok());
  cluster.loop().run_for(2 * kNanosPerSecond);
  return cluster.event_hash();
}

TEST(SimDeterminismTest, Zoned256GoldenTrace) {
  EXPECT_EQ(zoned_hash(11), zoned_hash(11))
      << "a zoned 256-site build+idle must be bit-for-bit repeatable";
}

// --- Options / zone validation -------------------------------------------

ZoneSpec zone(std::string name, std::string parent, int sites) {
  ZoneSpec z;
  z.name = std::move(name);
  z.parent = std::move(parent);
  z.sites = sites;
  return z;
}

TEST(SimOptionsTest, ValidatesZoneTopologies) {
  SimCluster::Options opts;
  opts.zones = {zone("core", "", 0), zone("rack0", "core", 2),
                zone("rack1", "core", 2)};
  EXPECT_TRUE(opts.validate().is_ok());

  opts.zones = {zone("", "", 2)};
  EXPECT_FALSE(opts.validate().is_ok()) << "empty zone name";

  opts.zones = {zone("a", "", 2), zone("a", "", 2)};
  EXPECT_FALSE(opts.validate().is_ok()) << "duplicate zone name";

  opts.zones = {zone("a", "nowhere", 2)};
  EXPECT_FALSE(opts.validate().is_ok()) << "unknown parent";

  opts.zones = {zone("a", "b", 2), zone("b", "a", 2)};
  EXPECT_FALSE(opts.validate().is_ok()) << "cyclic parent chain";

  opts.zones = {zone("a", "", 0)};
  EXPECT_FALSE(opts.validate().is_ok()) << "topology hosts zero sites";

  opts.zones = {zone("a", "", -3)};
  EXPECT_FALSE(opts.validate().is_ok()) << "negative site count";

  opts.zones = {zone("a", "", 2)};
  opts.zones[0].speed = 0.0;
  EXPECT_FALSE(opts.validate().is_ok()) << "non-positive speed factor";

  opts.zones = {zone("a", "", 2)};
  opts.zones[0].speed = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(opts.validate().is_ok()) << "NaN speed factor";

  opts.zones = {zone("a", "", 2)};
  opts.zones[0].local.loss = 1.5;
  EXPECT_FALSE(opts.validate().is_ok()) << "loss outside [0, 1)";
}

TEST(SimOptionsTest, ValidatesFlatLink) {
  SimCluster::Options opts;
  EXPECT_TRUE(opts.validate().is_ok());
  opts.link.loss = -0.1;
  EXPECT_FALSE(opts.validate().is_ok());
  opts.link.loss = 1.0;
  EXPECT_FALSE(opts.validate().is_ok());
}

}  // namespace
}  // namespace sdvm
