// Tests for the MicroC compiler + VM: lexing, parsing, codegen semantics,
// intrinsic dispatch, artifact serialization, and arithmetic equivalence
// against a direct C++ evaluation.
#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <vector>

#include <algorithm>

#include "common/rng.hpp"
#include "microc/compiler.hpp"
#include "microc/lexer.hpp"
#include "microc/parser.hpp"
#include "microc/vm.hpp"

namespace sdvm::microc {
namespace {

/// Records intrinsic traffic; implements a tiny in-memory global heap so
/// alloc/load/store can be tested standalone.
class MockHandler : public IntrinsicHandler {
 public:
  std::vector<std::int64_t> params;
  std::vector<std::int64_t> args;
  std::vector<std::int64_t> outputs;
  std::vector<std::string> text_outputs;
  std::vector<std::tuple<std::int64_t, std::int64_t, std::int64_t>> sends;
  std::vector<std::pair<std::string, std::int64_t>> spawns;
  std::int64_t charged = 0;
  std::int64_t site_id = 17;

  std::int64_t param(std::int64_t i) override {
    return params.at(static_cast<std::size_t>(i));
  }
  std::int64_t num_params() override {
    return static_cast<std::int64_t>(params.size());
  }
  std::int64_t spawn(const std::string& name, std::int64_t n) override {
    spawns.emplace_back(name, n);
    return 1000 + static_cast<std::int64_t>(spawns.size());
  }
  void send(std::int64_t f, std::int64_t s, std::int64_t v) override {
    sends.emplace_back(f, s, v);
  }
  std::int64_t alloc(std::int64_t nwords) override {
    std::int64_t addr = next_addr_;
    next_addr_ += 1;
    heap_[addr].resize(static_cast<std::size_t>(nwords), 0);
    return addr;
  }
  std::int64_t load(std::int64_t addr, std::int64_t idx) override {
    return heap_.at(addr).at(static_cast<std::size_t>(idx));
  }
  void store(std::int64_t addr, std::int64_t idx, std::int64_t v) override {
    heap_.at(addr).at(static_cast<std::size_t>(idx)) = v;
  }
  void out(std::int64_t v) override { outputs.push_back(v); }
  void out_str(const std::string& s) override { text_outputs.push_back(s); }
  void charge(std::int64_t c) override { charged += c; }
  std::int64_t self_site() override { return site_id; }
  std::int64_t arg(std::int64_t i) override {
    return args.at(static_cast<std::size_t>(i));
  }
  std::int64_t num_args() override {
    return static_cast<std::int64_t>(args.size());
  }
  void exit_program(std::int64_t code) override {
    exit_calls.emplace_back(code);
  }
  std::vector<std::int64_t> exit_calls;

 private:
  std::int64_t next_addr_ = 5000;
  std::map<std::int64_t, std::vector<std::int64_t>> heap_;
};

/// Compiles and runs a snippet, returning the handler for inspection.
MockHandler run_ok(const std::string& src,
                   std::vector<std::int64_t> params = {},
                   std::vector<std::int64_t> args = {}) {
  auto prog = compile(src, "test");
  EXPECT_TRUE(prog.is_ok()) << prog.status().to_string() << "\nsource:\n"
                            << src;
  MockHandler h;
  h.params = std::move(params);
  h.args = std::move(args);
  auto result = Vm::run(prog.value(), h);
  EXPECT_TRUE(result.status.is_ok()) << result.status.to_string();
  return h;
}

TEST(LexerTest, TokenKinds) {
  auto toks = lex("var x = 10; // comment\nif (x <= 2) { out(x); }");
  EXPECT_EQ(toks.front().kind, Tok::kVar);
  EXPECT_EQ(toks.back().kind, Tok::kEof);
}

TEST(LexerTest, TracksLineNumbers) {
  auto toks = lex("var a = 1;\nvar b = 2;");
  // Second 'var' is on line 2.
  auto it = std::find_if(toks.begin() + 1, toks.end(),
                         [](const Token& t) { return t.kind == Tok::kVar; });
  ASSERT_NE(it, toks.end());
  EXPECT_EQ(it->line, 2);
}

TEST(LexerTest, StringEscapes) {
  auto toks = lex(R"(outs("a\nb\"c");)");
  ASSERT_GE(toks.size(), 3u);
  EXPECT_EQ(toks[2].kind, Tok::kString);
  EXPECT_EQ(toks[2].text, "a\nb\"c");
}

TEST(LexerTest, RejectsBadCharacter) {
  EXPECT_THROW(lex("var x = $;"), LexError);
}

TEST(LexerTest, RejectsUnterminatedString) {
  EXPECT_THROW(lex("outs(\"oops"), LexError);
}

TEST(LexerTest, RejectsOverflowLiteral) {
  EXPECT_THROW(lex("var x = 99999999999999999999;"), LexError);
}

TEST(LexerTest, BlockComments) {
  auto h = run_ok("/* setup \n multi-line */ out(5); /* tail */");
  EXPECT_EQ(h.outputs, std::vector<std::int64_t>{5});
}

TEST(CompilerTest, RejectsUndeclaredVariable) {
  auto r = compile("out(y);", "t");
  EXPECT_FALSE(r.is_ok());
  EXPECT_NE(r.status().message().find("undeclared"), std::string::npos);
}

TEST(CompilerTest, RejectsRedeclaration) {
  EXPECT_FALSE(compile("var x = 1; var x = 2;", "t").is_ok());
}

TEST(CompilerTest, RejectsUnknownFunction) {
  EXPECT_FALSE(compile("frobnicate(1);", "t").is_ok());
}

TEST(CompilerTest, RejectsWrongArity) {
  EXPECT_FALSE(compile("send(1, 2);", "t").is_ok());
}

TEST(CompilerTest, RejectsVoidInExpression) {
  EXPECT_FALSE(compile("var x = out(1);", "t").is_ok());
}

TEST(CompilerTest, RejectsStrayStringLiteral) {
  EXPECT_FALSE(compile("var x = \"hello\";", "t").is_ok());
}

TEST(CompilerTest, ReportsLineNumbers) {
  auto r = compile("var a = 1;\nvar b = a +;\n", "t");
  ASSERT_FALSE(r.is_ok());
  EXPECT_NE(r.status().message().find("line 2"), std::string::npos);
}

TEST(VmTest, Arithmetic) {
  auto h = run_ok("out(2 + 3 * 4 - 10 / 2);");
  EXPECT_EQ(h.outputs, std::vector<std::int64_t>{9});
}

TEST(VmTest, Precedence) {
  auto h = run_ok("out(1 + 2 == 3); out(1 | 2 ^ 3 & 2); out(1 << 3 >> 1);");
  EXPECT_EQ(h.outputs, (std::vector<std::int64_t>{1, 1 | (2 ^ (3 & 2)), 4}));
}

TEST(VmTest, UnaryOperators) {
  auto h = run_ok("out(-5); out(!0); out(!7); out(~0);");
  EXPECT_EQ(h.outputs, (std::vector<std::int64_t>{-5, 1, 0, -1}));
}

TEST(VmTest, Comparisons) {
  auto h = run_ok("out(3 < 5); out(5 <= 5); out(6 > 7); out(2 >= 2); "
                  "out(4 == 4); out(4 != 4);");
  EXPECT_EQ(h.outputs, (std::vector<std::int64_t>{1, 1, 0, 1, 1, 0}));
}

TEST(VmTest, ShortCircuitAnd) {
  // Division by zero on the rhs must not execute when lhs is false.
  auto h = run_ok("var x = 0; out(x != 0 && 10 / x > 1);");
  EXPECT_EQ(h.outputs, std::vector<std::int64_t>{0});
}

TEST(VmTest, ShortCircuitOr) {
  auto h = run_ok("var x = 0; out(x == 0 || 10 / x > 1);");
  EXPECT_EQ(h.outputs, std::vector<std::int64_t>{1});
}

TEST(VmTest, LogicalResultNormalized) {
  auto h = run_ok("out(7 && 9); out(0 || 5);");
  EXPECT_EQ(h.outputs, (std::vector<std::int64_t>{1, 1}));
}

TEST(VmTest, IfElseChains) {
  auto h = run_ok(R"(
    var x = 2;
    if (x == 1) { out(10); }
    else if (x == 2) { out(20); }
    else { out(30); }
  )");
  EXPECT_EQ(h.outputs, std::vector<std::int64_t>{20});
}

TEST(VmTest, WhileLoopSum) {
  auto h = run_ok(R"(
    var i = 1;
    var sum = 0;
    while (i <= 100) {
      sum = sum + i;
      i = i + 1;
    }
    out(sum);
  )");
  EXPECT_EQ(h.outputs, std::vector<std::int64_t>{5050});
}

TEST(VmTest, ForLoop) {
  auto h = run_ok("var sum = 0; for (var i = 1; i <= 10; i = i + 1) { "
                  "sum = sum + i; } out(sum);");
  EXPECT_EQ(h.outputs, std::vector<std::int64_t>{55});
}

TEST(VmTest, ForLoopEmptyHeaderParts) {
  auto h = run_ok(R"(
    var i = 0;
    for (;;) {
      i = i + 1;
      if (i >= 5) { break; }
    }
    out(i);
    for (; i < 8;) { i = i + 1; }
    out(i);
  )");
  EXPECT_EQ(h.outputs, (std::vector<std::int64_t>{5, 8}));
}

TEST(VmTest, BreakLeavesInnermostLoop) {
  auto h = run_ok(R"(
    var hits = 0;
    for (var i = 0; i < 3; i = i + 1) {
      var j = 0;
      while (1) {
        j = j + 1;
        if (j == 2) { break; }
      }
      hits = hits + j;
    }
    out(hits);
  )");
  EXPECT_EQ(h.outputs, std::vector<std::int64_t>{6});
}

TEST(VmTest, ContinueRunsForStep) {
  // Sum of odd numbers below 10: continue must still execute i = i + 1.
  auto h = run_ok(R"(
    var sum = 0;
    for (var i = 0; i < 10; i = i + 1) {
      if (i % 2 == 0) { continue; }
      sum = sum + i;
    }
    out(sum);
  )");
  EXPECT_EQ(h.outputs, std::vector<std::int64_t>{25});
}

TEST(VmTest, ContinueInWhileReevaluatesCondition) {
  auto h = run_ok(R"(
    var i = 0;
    var sum = 0;
    while (i < 6) {
      i = i + 1;
      if (i == 3) { continue; }
      sum = sum + i;
    }
    out(sum);
  )");
  EXPECT_EQ(h.outputs, std::vector<std::int64_t>{18});  // 1+2+4+5+6
}

TEST(CompilerTest, BreakOutsideLoopRejected) {
  EXPECT_FALSE(compile("break;", "t").is_ok());
  EXPECT_FALSE(compile("continue;", "t").is_ok());
  EXPECT_FALSE(compile("if (1) { break; }", "t").is_ok());
}

TEST(VmTest, NestedLoopsPrimeCount) {
  // Count primes below 100 by trial division — the paper's own workload.
  auto h = run_ok(R"(
    var n = 2;
    var count = 0;
    while (n < 100) {
      var isprime = 1;
      var d = 2;
      while (d * d <= n) {
        if (n % d == 0) { isprime = 0; }
        d = d + 1;
      }
      if (isprime == 1) { count = count + 1; }
      n = n + 1;
    }
    out(count);
  )");
  EXPECT_EQ(h.outputs, std::vector<std::int64_t>{25});
}

TEST(VmTest, ParamsAndSend) {
  auto h = run_ok("send(param(0), 2, param(1) * 2); out(nparams());",
                  {777, 21});
  ASSERT_EQ(h.sends.size(), 1u);
  EXPECT_EQ(h.sends[0], std::make_tuple(std::int64_t{777}, std::int64_t{2},
                                        std::int64_t{42}));
  EXPECT_EQ(h.outputs, std::vector<std::int64_t>{2});
}

TEST(VmTest, SpawnReturnsAddress) {
  auto h = run_ok(R"(
    var f = spawn("worker", 3);
    send(f, 0, 1);
  )");
  ASSERT_EQ(h.spawns.size(), 1u);
  EXPECT_EQ(h.spawns[0].first, "worker");
  EXPECT_EQ(h.spawns[0].second, 3);
  EXPECT_EQ(std::get<0>(h.sends.at(0)), 1001);
}

TEST(VmTest, GlobalMemory) {
  auto h = run_ok(R"(
    var a = alloc(4);
    store(a, 0, 11);
    store(a, 3, 44);
    out(load(a, 0) + load(a, 3));
  )");
  EXPECT_EQ(h.outputs, std::vector<std::int64_t>{55});
}

TEST(VmTest, OutStrAndCharge) {
  auto h = run_ok(R"(outs("phase done"); charge(5000);)");
  EXPECT_EQ(h.text_outputs, std::vector<std::string>{"phase done"});
  EXPECT_EQ(h.charged, 5000);
}

TEST(VmTest, SelfSiteAndArgs) {
  auto h = run_ok("out(selfsite()); out(arg(0) + arg(1)); out(nargs());",
                  {}, {30, 12});
  EXPECT_EQ(h.outputs, (std::vector<std::int64_t>{17, 42, 2}));
}

TEST(VmTest, ExitIntrinsic) {
  auto h = run_ok("exit(7); return;");
  EXPECT_EQ(h.exit_calls, std::vector<std::int64_t>{7});
}

TEST(VmTest, ReturnStopsExecution) {
  auto h = run_ok("out(1); return; out(2);");
  EXPECT_EQ(h.outputs, std::vector<std::int64_t>{1});
}

TEST(VmTest, DivisionByZeroTraps) {
  auto prog = compile("var x = 0; out(1 / x);", "t");
  ASSERT_TRUE(prog.is_ok());
  MockHandler h;
  auto r = Vm::run(prog.value(), h);
  EXPECT_FALSE(r.status.is_ok());
  EXPECT_NE(r.status.message().find("division by zero"), std::string::npos);
}

TEST(VmTest, ModuloByZeroTraps) {
  auto prog = compile("var x = 0; out(1 % x);", "t");
  ASSERT_TRUE(prog.is_ok());
  MockHandler h;
  EXPECT_FALSE(Vm::run(prog.value(), h).status.is_ok());
}

TEST(VmTest, StepLimitTraps) {
  auto prog = compile("var x = 1; while (x) { x = x; }", "t");
  ASSERT_TRUE(prog.is_ok());
  MockHandler h;
  auto r = Vm::run(prog.value(), h, /*step_limit=*/1000);
  EXPECT_EQ(r.status.code(), ErrorCode::kResourceExhausted);
}

TEST(VmTest, CyclesReflectWork) {
  auto prog_small = compile("var i = 0; while (i < 10) { i = i + 1; }", "s");
  auto prog_big = compile("var i = 0; while (i < 1000) { i = i + 1; }", "b");
  ASSERT_TRUE(prog_small.is_ok());
  ASSERT_TRUE(prog_big.is_ok());
  MockHandler h;
  auto rs = Vm::run(prog_small.value(), h);
  auto rb = Vm::run(prog_big.value(), h);
  EXPECT_GT(rb.cycles, rs.cycles * 50);
}

TEST(ProgramTest, SerializeRoundTrip) {
  auto prog = compile(R"(
    var f = spawn("next", 2);
    outs("hi");
    send(f, 0, 1);
  )", "roundtrip");
  ASSERT_TRUE(prog.is_ok());
  auto bytes = prog.value().serialize();
  auto back = Program::deserialize(bytes);
  ASSERT_TRUE(back.is_ok()) << back.status().to_string();
  EXPECT_EQ(back.value(), prog.value());
}

TEST(ProgramTest, DeserializeRejectsGarbage) {
  std::vector<std::byte> junk(7, std::byte{0xFF});
  EXPECT_FALSE(Program::deserialize(junk).is_ok());
}

TEST(ProgramTest, DisassembleMentionsOpcodes) {
  auto prog = compile("var x = 1; while (x < 5) { x = x + 1; } out(x);", "d");
  ASSERT_TRUE(prog.is_ok());
  auto listing = disassemble(prog.value());
  EXPECT_NE(listing.find("push"), std::string::npos);
  EXPECT_NE(listing.find("jz"), std::string::npos);
  EXPECT_NE(listing.find("intrinsic out"), std::string::npos);
}

TEST(ProgramTest, DeserializedProgramRuns) {
  auto prog = compile("out(6 * 7);", "reload");
  ASSERT_TRUE(prog.is_ok());
  auto back = Program::deserialize(prog.value().serialize());
  ASSERT_TRUE(back.is_ok());
  MockHandler h;
  ASSERT_TRUE(Vm::run(back.value(), h).status.is_ok());
  EXPECT_EQ(h.outputs, std::vector<std::int64_t>{42});
}

// Property test: random arithmetic expressions evaluate identically in
// MicroC and in direct C++ evaluation.
class ArithmeticEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(ArithmeticEquivalenceTest, MatchesReferenceEvaluator) {
  Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()));
  // Build a random expression tree over small ints with safe operators.
  struct Node {
    std::string text;
    std::int64_t value;
  };
  std::function<Node(int)> gen = [&](int depth) -> Node {
    if (depth == 0 || rng.below(3) == 0) {
      std::int64_t v = static_cast<std::int64_t>(rng.below(200)) - 100;
      return {"(" + std::to_string(v) + ")", v};
    }
    Node a = gen(depth - 1);
    Node b = gen(depth - 1);
    switch (rng.below(6)) {
      case 0: return {"(" + a.text + "+" + b.text + ")", a.value + b.value};
      case 1: return {"(" + a.text + "-" + b.text + ")", a.value - b.value};
      case 2: return {"(" + a.text + "*" + b.text + ")", a.value * b.value};
      case 3: return {"(" + a.text + "<" + b.text + ")", a.value < b.value};
      case 4: return {"(" + a.text + "==" + b.text + ")", a.value == b.value};
      default: return {"(" + a.text + "&" + b.text + ")", a.value & b.value};
    }
  };
  for (int trial = 0; trial < 20; ++trial) {
    Node n = gen(4);
    auto h = run_ok("out(" + n.text + ");");
    ASSERT_EQ(h.outputs.size(), 1u);
    EXPECT_EQ(h.outputs[0], n.value) << n.text;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArithmeticEquivalenceTest,
                         ::testing::Range(1, 9));

// ---------------------------------------------------------------------------
// Typechecker diagnostics: every rejection carries an exact line:column.

/// Compiles expecting failure; returns the diagnostic message.
std::string diag(const std::string& src) {
  auto r = compile(src, "t");
  EXPECT_FALSE(r.is_ok()) << "source unexpectedly compiled:\n" << src;
  return r.is_ok() ? std::string() : r.status().message();
}

TEST(TypecheckDiagTest, UndeclaredVariablePosition) {
  // 'y' starts at line 2, column 7.
  std::string m = diag("var a = 1;\nvar b = a + y;\n");
  EXPECT_NE(m.find("line 2:13"), std::string::npos) << m;
  EXPECT_NE(m.find("undeclared variable 'y'"), std::string::npos) << m;
}

TEST(TypecheckDiagTest, ArityMismatchExpectedVsGot) {
  std::string m = diag("send(1, 2);");
  EXPECT_NE(m.find("'send' expects 3 argument(s), got 2"), std::string::npos)
      << m;
  EXPECT_NE(m.find("line 1:1"), std::string::npos) << m;
}

TEST(TypecheckDiagTest, StringWhereIntExpected) {
  std::string m = diag("out(\"nope\");");
  EXPECT_NE(m.find("expected int, got str"), std::string::npos) << m;
  EXPECT_NE(m.find("argument 1"), std::string::npos) << m;
}

TEST(TypecheckDiagTest, IntWhereStringExpected) {
  std::string m = diag("var f = spawn(5, 2);");
  EXPECT_NE(m.find("expected string, got int"), std::string::npos) << m;
}

TEST(TypecheckDiagTest, VoidInBinaryOperand) {
  std::string m = diag("var x = 1 + out(2);");
  EXPECT_NE(m.find("expected int, got void"), std::string::npos) << m;
}

TEST(TypecheckDiagTest, VoidCondition) {
  std::string m = diag("while (out(1)) { }");
  EXPECT_NE(m.find("while condition"), std::string::npos) << m;
}

TEST(TypecheckDiagTest, ContinueOutsideLoop) {
  std::string m = diag("continue;");
  EXPECT_NE(m.find("'continue' outside a loop"), std::string::npos) << m;
}

TEST(TypecheckDiagTest, BreakPositionInsideIf) {
  std::string m = diag("var x = 1;\nif (x) {\n  break;\n}\n");
  EXPECT_NE(m.find("line 3:3"), std::string::npos) << m;
}

TEST(TypecheckDiagTest, RedeclarationInSameScope) {
  std::string m = diag("var x = 1;\nvar q = 0;\nif (q) { var y = 1; var y = 2; }");
  EXPECT_NE(m.find("redeclaration of 'y'"), std::string::npos) << m;
}

TEST(TypecheckDiagTest, ShadowingInDisjointScopesAllowed) {
  auto h = run_ok(
      "var x = 1;\n"
      "if (x) { var t = 10; x = x + t; } else { var t = 20; x = t; }\n"
      "while (x > 11) { var t = 1; x = x - t; }\n"
      "out(x);");
  EXPECT_EQ(h.outputs, std::vector<std::int64_t>{11});
}

TEST(TypecheckDiagTest, ForInitScopeEndsWithLoop) {
  std::string m = diag("for (var i = 0; i < 3; i = i + 1) { }\nout(i);");
  EXPECT_NE(m.find("undeclared variable 'i'"), std::string::npos) << m;
  EXPECT_NE(m.find("line 2"), std::string::npos) << m;
}

// ---------------------------------------------------------------------------
// Lexer/parser edge cases that previously slipped through silently.

TEST(LexerRegressionTest, UnterminatedBlockComment) {
  EXPECT_THROW(lex("var x = 1; /* no end"), LexError);
}

TEST(LexerRegressionTest, Int64MaxLiteralAccepted) {
  auto h = run_ok("out(9223372036854775807);");
  EXPECT_EQ(h.outputs, std::vector<std::int64_t>{INT64_MAX});
}

TEST(LexerRegressionTest, JustOverInt64MaxRejected) {
  EXPECT_THROW(lex("out(9223372036854775808);"), LexError);
}

TEST(LexerRegressionTest, ErrorCarriesColumn) {
  try {
    lex("var x = @;");
    FAIL() << "expected LexError";
  } catch (const LexError& e) {
    EXPECT_EQ(e.error.line, 1);
    EXPECT_EQ(e.error.column, 9);
  }
}

TEST(ParserRegressionTest, DeepNestingRejectedNotCrash) {
  std::string src = "out(";
  for (int i = 0; i < 5000; ++i) src += '(';
  src += '1';
  for (int i = 0; i < 5000; ++i) src += ')';
  src += ");";
  EXPECT_THROW((void)parse(src), ParseError);
}

TEST(ParserRegressionTest, ModerateNestingStillWorks) {
  std::string src = "out(";
  for (int i = 0; i < 50; ++i) src += '(';
  src += '7';
  for (int i = 0; i < 50; ++i) src += ')';
  src += ");";
  auto h = run_ok(src);
  EXPECT_EQ(h.outputs, std::vector<std::int64_t>{7});
}

TEST(ParserRegressionTest, UnterminatedBlockReported) {
  std::string m = diag("var x = 1;\nwhile (x) {\n  x = x - 1;");
  EXPECT_NE(m.find("unterminated block"), std::string::npos) << m;
}

// ---------------------------------------------------------------------------
// Optimizer behavior: observable size/cycle wins, no semantic drift.

TEST(OptimizerTest, ConstantExpressionsFold) {
  CompileOptions on{.optimize = true};
  CompileOptions off{.optimize = false};
  const std::string src = "out(2 * 3 + 4 * (10 - 3) - 1);";
  auto o = compile(src, "t", on);
  auto p = compile(src, "t", off);
  ASSERT_TRUE(o.is_ok() && p.is_ok());
  EXPECT_LT(o.value().code.size(), p.value().code.size());
  MockHandler ho;
  ASSERT_TRUE(Vm::run(o.value(), ho).status.is_ok());
  EXPECT_EQ(ho.outputs, std::vector<std::int64_t>{33});
}

TEST(OptimizerTest, DoesNotFoldReachableDivisionByZero) {
  // 1/0 must stay a runtime trap, not a compile-time crash or silent 0.
  CompileOptions on{.optimize = true};
  auto prog = compile("var z = 0; out(1 / z);", "t", on);
  ASSERT_TRUE(prog.is_ok());
  MockHandler h;
  auto r = Vm::run(prog.value(), h);
  EXPECT_FALSE(r.status.is_ok());
  EXPECT_NE(r.status.message().find("division by zero"), std::string::npos);
}

TEST(OptimizerTest, DeadBranchEliminated) {
  CompileOptions on{.optimize = true};
  auto prog = compile("if (0) { out(1); out(2); out(3); } out(9);", "t", on);
  ASSERT_TRUE(prog.is_ok());
  MockHandler h;
  ASSERT_TRUE(Vm::run(prog.value(), h).status.is_ok());
  EXPECT_EQ(h.outputs, std::vector<std::int64_t>{9});
  // The constant-false branch must be gone from the artifact entirely.
  EXPECT_EQ(disassemble(prog.value()).find("push 1"), std::string::npos);
}

TEST(OptimizerTest, InfiniteLoopSurvivesOptimization) {
  CompileOptions on{.optimize = true};
  auto prog = compile("var i = 0; while (1) { i = i + 1; }", "t", on);
  ASSERT_TRUE(prog.is_ok());
  MockHandler h;
  auto r = Vm::run(prog.value(), h, 1000);
  EXPECT_FALSE(r.status.is_ok());
  EXPECT_NE(r.status.message().find("step limit"), std::string::npos);
}

TEST(OptimizerTest, ReportsStats) {
  CompileOptions on{.optimize = true};
  CompileArtifacts art;
  CompileError err;
  auto prog = compile("var a = 2 + 3; out(a * 1);", "t", on, &err, &art);
  ASSERT_TRUE(prog.is_ok());
  EXPECT_NE(art.opt_stats.find("folded"), std::string::npos) << art.opt_stats;
  EXPECT_FALSE(art.ir.empty());
  EXPECT_FALSE(art.ast.empty());
}

// ---------------------------------------------------------------------------
// Dispatch strategies agree with each other and with the legacy VM.

TEST(DispatchTest, AllModesProduceIdenticalResults) {
  auto prog = compile(
      "var n = param(0); var s = 0;"
      "for (var i = 1; i <= n; i = i + 1) { s = s + i * i; }"
      "out(s);", "t");
  ASSERT_TRUE(prog.is_ok());
  auto decoded = decode(prog.value());
  ASSERT_TRUE(decoded.is_ok());
  for (DispatchMode mode : {DispatchMode::kDirect, DispatchMode::kSwitch}) {
    MockHandler h;
    h.params = {100};
    auto r = Vm::run(decoded.value(), prog.value(), h,
                     Vm::kDefaultStepLimit, mode);
    ASSERT_TRUE(r.status.is_ok());
    EXPECT_EQ(h.outputs, std::vector<std::int64_t>{338350});
  }
  MockHandler hl;
  hl.params = {100};
  ASSERT_TRUE(Vm::run_legacy(prog.value(), hl).status.is_ok());
  EXPECT_EQ(hl.outputs, std::vector<std::int64_t>{338350});
}

TEST(DispatchTest, FusionKeepsCycleCountsExact) {
  // Superinstructions must account for every wire instruction they absorb.
  auto prog = compile(
      "var s = 0;"
      "for (var i = 0; i < 37; i = i + 1) { s = s + i; }"
      "out(s);", "t");
  ASSERT_TRUE(prog.is_ok());
  MockHandler h1;
  auto legacy = Vm::run_legacy(prog.value(), h1);
  auto fused = decode(prog.value(), /*fuse=*/true);
  auto plain = decode(prog.value(), /*fuse=*/false);
  ASSERT_TRUE(fused.is_ok() && plain.is_ok());
  // Fusion must actually have shortened the decoded stream.
  EXPECT_LT(fused.value().insts.size(), plain.value().insts.size());
  MockHandler h2, h3;
  auto rf = Vm::run(fused.value(), prog.value(), h2);
  auto rp = Vm::run(plain.value(), prog.value(), h3);
  ASSERT_TRUE(legacy.status.is_ok());
  ASSERT_TRUE(rf.status.is_ok() && rp.status.is_ok());
  EXPECT_EQ(rf.cycles, legacy.cycles);
  EXPECT_EQ(rp.cycles, legacy.cycles);
}

TEST(DecodeTest, RejectsTruncatedOperand) {
  Program p;
  p.name = "bad";
  p.code = {static_cast<std::byte>(Op::kPushInt), std::byte{1}};
  EXPECT_FALSE(decode(p).is_ok());
}

TEST(DecodeTest, RejectsJumpIntoOperand) {
  // push 0 (9 bytes); jmp targeting byte 1 (middle of the push operand).
  Program p;
  p.name = "bad";
  p.code.assign(9, std::byte{0});
  p.code[0] = static_cast<std::byte>(Op::kPushInt);
  p.code.push_back(static_cast<std::byte>(Op::kJmp));
  std::int32_t rel = -13;  // operand end is 14; 14 + (-13) = 1.
  for (int i = 0; i < 4; ++i) {
    p.code.push_back(static_cast<std::byte>(
        (static_cast<std::uint32_t>(rel) >> (8 * i)) & 0xFF));
  }
  EXPECT_FALSE(decode(p).is_ok());
}

TEST(DecodeTest, RejectsStackUnderflow) {
  Program p;
  p.name = "bad";
  p.code = {static_cast<std::byte>(Op::kAdd)};
  auto r = decode(p);
  ASSERT_FALSE(r.is_ok());
  EXPECT_NE(r.status().message().find("underflow"), std::string::npos);
}

TEST(DecodeTest, RejectsBadLocalSlot) {
  Program p;
  p.name = "bad";
  p.local_count = 1;
  p.code = {static_cast<std::byte>(Op::kLoadLocal), std::byte{5},
            std::byte{0}};
  EXPECT_FALSE(decode(p).is_ok());
}

TEST(DecodeTest, RejectsBadStringIndex) {
  Program p;
  p.name = "bad";
  p.code = {static_cast<std::byte>(Op::kPushStr), std::byte{9}, std::byte{0},
            std::byte{0}, std::byte{0}};
  EXPECT_FALSE(decode(p).is_ok());
}

}  // namespace
}  // namespace sdvm::microc
