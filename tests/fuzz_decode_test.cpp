// Deserialization robustness: every decoder that consumes network bytes
// must reject arbitrary garbage with an error — never crash, hang, or
// allocate unboundedly. Seeded random-byte sweeps over all wire decoders.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "microc/bytecode.hpp"
#include "microc/compiler.hpp"
#include "microc/vm.hpp"
#include "runtime/checkpoint_store.hpp"
#include "runtime/cluster_info.hpp"
#include "runtime/frame.hpp"
#include "runtime/message.hpp"
#include "runtime/program.hpp"
#include "runtime/security_manager.hpp"
#include "runtime/shard_map.hpp"
#include "runtime/site_status.hpp"

#include <limits>

namespace sdvm {
namespace {

std::vector<std::byte> random_bytes(Xoshiro256& rng, std::size_t max_len) {
  std::vector<std::byte> b(rng.below(max_len + 1));
  for (auto& x : b) x = std::byte{static_cast<unsigned char>(rng())};
  return b;
}

class FuzzDecodeTest : public ::testing::TestWithParam<int> {};

TEST_P(FuzzDecodeTest, SdMessageBody) {
  Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()));
  for (int i = 0; i < 500; ++i) {
    auto bytes = random_bytes(rng, 256);
    auto r = SdMessage::deserialize_body(1, 2, bytes);
    (void)r;  // ok or error — just never crash
  }
}

TEST_P(FuzzDecodeTest, Microframe) {
  Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) + 100);
  for (int i = 0; i < 500; ++i) {
    auto bytes = random_bytes(rng, 256);
    ByteReader r(bytes);
    auto f = Microframe::deserialize(r);
    (void)f;
  }
}

TEST_P(FuzzDecodeTest, ProgramInfo) {
  Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) + 200);
  for (int i = 0; i < 500; ++i) {
    auto bytes = random_bytes(rng, 256);
    ByteReader r(bytes);
    auto info = ProgramInfo::deserialize(r);
    (void)info;
  }
}

TEST_P(FuzzDecodeTest, SiteInfo) {
  Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) + 300);
  for (int i = 0; i < 500; ++i) {
    auto bytes = random_bytes(rng, 256);
    ByteReader r(bytes);
    try {
      auto info = SiteInfo::deserialize(r);
      (void)info;
    } catch (const DecodeError&) {
      // SiteInfo::deserialize may throw through LoadStats; both outcomes
      // are acceptable, crashing is not.
    }
  }
}

TEST_P(FuzzDecodeTest, MetricsSnapshot) {
  Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) + 700);
  for (int i = 0; i < 500; ++i) {
    auto bytes = random_bytes(rng, 256);
    ByteReader r(bytes);
    auto s = metrics::MetricsSnapshot::deserialize(r);
    (void)s;  // Result-based: ok or kCorrupt, never a crash or throw
  }
}

TEST_P(FuzzDecodeTest, SiteStatus) {
  Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) + 800);
  for (int i = 0; i < 500; ++i) {
    auto bytes = random_bytes(rng, 512);
    ByteReader r(bytes);
    auto s = SiteStatus::deserialize(r);
    (void)s;
  }
}

TEST_P(FuzzDecodeTest, SiteStatusBitflips) {
  // Start from VALID kMetricsReply payload bytes and flip random bits —
  // closer to real wire corruption than pure noise.
  Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) + 900);
  SiteStatus good;
  good.id = 7;
  good.name = "victim";
  good.platform = "x86-linux";
  good.cluster_size = 3;
  good.active_programs = {ProgramId(1), ProgramId(2)};
  good.ledger[ProgramId(1)] = AccountEntry{3, 30, 300};
  good.metrics.add_counter("proc.executed", 99);
  metrics::Histogram h;
  h.record(5'000);
  good.metrics.add_histogram("proc.runtime_ns", h);
  ByteWriter w;
  good.serialize(w);
  auto baseline = w.take();
  for (int i = 0; i < 500; ++i) {
    auto bytes = baseline;
    int flips = 1 + static_cast<int>(rng.below(8));
    for (int f = 0; f < flips; ++f) {
      std::size_t pos = rng.below(bytes.size());
      bytes[pos] ^= std::byte{static_cast<unsigned char>(1u << rng.below(8))};
    }
    ByteReader r(bytes);
    auto s = SiteStatus::deserialize(r);
    (void)s;
  }
}

TEST_P(FuzzDecodeTest, BytecodeArtifact) {
  Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) + 400);
  for (int i = 0; i < 300; ++i) {
    auto bytes = random_bytes(rng, 512);
    auto p = microc::Program::deserialize(bytes);
    (void)p;
  }
}

// The nastier case: structurally VALID artifacts with garbage code bytes
// must trap in the VM, not crash it.
class NullHandler : public microc::IntrinsicHandler {
 public:
  std::int64_t param(std::int64_t) override { return 0; }
  std::int64_t num_params() override { return 0; }
  std::int64_t spawn(const std::string&, std::int64_t) override { return 0; }
  void send(std::int64_t, std::int64_t, std::int64_t) override {}
  std::int64_t alloc(std::int64_t) override { return 0; }
  std::int64_t load(std::int64_t, std::int64_t) override { return 0; }
  void store(std::int64_t, std::int64_t, std::int64_t) override {}
  void out(std::int64_t) override {}
  void out_str(const std::string&) override {}
  void charge(std::int64_t) override {}
  std::int64_t self_site() override { return 0; }
  std::int64_t arg(std::int64_t) override { return 0; }
  std::int64_t num_args() override { return 0; }
  void exit_program(std::int64_t) override {}
};

TEST_P(FuzzDecodeTest, VmSurvivesGarbageCode) {
  Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) + 500);
  NullHandler handler;
  for (int i = 0; i < 200; ++i) {
    microc::Program prog;
    prog.name = "garbage";
    prog.code = random_bytes(rng, 128);
    prog.local_count = static_cast<std::uint16_t>(rng.below(8));
    prog.string_pool = {"a", "b"};
    auto result = microc::Vm::run(prog, handler, /*step_limit=*/10'000);
    (void)result;  // trap or clean return, never UB
  }
}

// --- MicroC front-end fuzzing ----------------------------------------------
// The lexer/parser/typechecker must reject (or accept) any input with a
// clean diagnostic — never crash, hang, or trip ASan. compile() is the
// full pipeline: lex -> parse -> typecheck -> lower -> optimize -> emit.

void compile_must_not_crash(const std::string& src) {
  auto r = microc::compile(src, "fuzz");
  if (r.is_ok()) {
    // Anything that compiles must also decode and run cleanly (step-capped).
    NullHandler h;
    (void)microc::Vm::run(r.value(), h, /*step_limit=*/20'000);
  }
}

TEST_P(FuzzDecodeTest, CompilerSurvivesRandomSource) {
  Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) + 1000);
  for (int i = 0; i < 200; ++i) {
    std::string src(rng.below(200), ' ');
    for (auto& c : src) {
      c = static_cast<char>(32 + rng.below(95));  // printable ASCII
    }
    compile_must_not_crash(src);
  }
}

TEST_P(FuzzDecodeTest, CompilerSurvivesTokenSoup) {
  // Valid tokens in random order — exercises the parser far deeper than
  // byte noise, which the lexer usually rejects first.
  Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) + 1100);
  static const char* kAtoms[] = {
      "var", "if", "else", "while", "for", "break", "continue", "return",
      "x",   "y",  "0",    "1",     "42",  "(",     ")",        "{",
      "}",   ";",  ",",    "+",     "-",   "*",     "/",        "%",
      "==",  "!=", "<",    "<=",    "&&",  "||",    "!",        "~",
      "=",   "out", "param", "spawn", "\"s\"", "<<", ">>",      "&"};
  for (int i = 0; i < 200; ++i) {
    std::string src;
    int n = 1 + static_cast<int>(rng.below(60));
    for (int k = 0; k < n; ++k) {
      src += kAtoms[rng.below(std::size(kAtoms))];
      src += ' ';
    }
    compile_must_not_crash(src);
  }
}

TEST_P(FuzzDecodeTest, CompilerSurvivesMutatedValidSource) {
  // Start from a real program and corrupt it — hits error paths deep in
  // the typechecker/lowerer that pure noise never reaches.
  Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) + 1200);
  const std::string seed_src =
      "var n = param(0);\n"
      "var s = 0;\n"
      "for (var i = 1; i <= n; i = i + 1) {\n"
      "  if (i % 2 == 0) { s = s + i; } else { s = s - 1; }\n"
      "  while (s > 100) { s = s / 2; }\n"
      "}\n"
      "out(s);\n";
  for (int i = 0; i < 200; ++i) {
    std::string src = seed_src;
    int edits = 1 + static_cast<int>(rng.below(6));
    for (int e = 0; e < edits; ++e) {
      std::size_t pos = rng.below(src.size());
      switch (rng.below(3)) {
        case 0: src[pos] = static_cast<char>(32 + rng.below(95)); break;
        case 1: src.erase(pos, 1); break;
        default:
          src.insert(pos, 1, static_cast<char>(32 + rng.below(95)));
          break;
      }
    }
    compile_must_not_crash(src);
  }
}

TEST_P(FuzzDecodeTest, CompilerSurvivesDeepNesting) {
  // Parser recursion must be depth-bounded: thousands of parens/braces
  // end in a ParseError, not a C++ stack overflow.
  Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) + 1300);
  for (int i = 0; i < 20; ++i) {
    std::size_t depth = 100 + rng.below(4000);
    char open = rng.below(2) == 0 ? '(' : '{';
    char close = open == '(' ? ')' : '}';
    std::string src = open == '(' ? "out(" : "if (1) ";
    src.append(depth, open);
    if (open == '(') src += '1';
    src.append(depth, close);
    if (open == '(') src += ");";
    compile_must_not_crash(src);
  }
}

TEST_P(FuzzDecodeTest, SecurityManagerSurvivesGarbageWire) {
  Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) + 600);
  SiteConfig enc;
  enc.encrypt = true;
  SiteConfig plain;
  plain.encrypt = false;
  SecurityManager sealed(enc), open_mgr(plain);
  sealed.set_local_site(1);
  open_mgr.set_local_site(1);
  for (int i = 0; i < 300; ++i) {
    auto bytes = random_bytes(rng, 300);
    (void)sealed.unprotect(bytes);
    (void)open_mgr.unprotect(bytes);
  }
}

// --- checkpoint durability formats ----------------------------------------

DurableEpoch sample_epoch() {
  DurableEpoch snap;
  snap.pid = ProgramId(42);
  snap.epoch = 3;
  snap.info.id = ProgramId(42);
  snap.info.name = "fuzz";
  snap.info.home_site = 1;
  snap.shards[1] = {std::byte{0xAB}, std::byte{0xCD}};
  snap.shards[2] = {std::byte{0x01}};
  snap.sources.emplace_back(MicrothreadId(7), "void main() {}");
  snap.io_log.push_back(IoRecord{3, 1, "hello"});
  return snap;
}

TEST_P(FuzzDecodeTest, CheckpointUnframeGarbage) {
  Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) + 1000);
  for (int i = 0; i < 500; ++i) {
    auto bytes = random_bytes(rng, 256);
    auto r = CheckpointStore::unframe(bytes, ProgramId(42));
    (void)r;  // ok (astronomically unlikely) or kCorrupt — never a crash
  }
}

TEST_P(FuzzDecodeTest, CheckpointFrameBitflips) {
  // Flips inside a valid framed epoch file must be caught by the CRC (or
  // the magic/length/pid checks); a file that still unframes must carry
  // the untouched payload, since the CRC covers every payload byte.
  Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) + 1100);
  DurableEpoch snap = sample_epoch();
  ByteWriter w;
  snap.serialize(w);
  auto payload = w.take();
  auto file = CheckpointStore::frame(snap.pid, snap.epoch, payload);
  for (int i = 0; i < 500; ++i) {
    auto bytes = file;
    int flips = 1 + static_cast<int>(rng.below(8));
    for (int f = 0; f < flips; ++f) {
      std::size_t pos = rng.below(bytes.size());
      bytes[pos] ^= std::byte{static_cast<unsigned char>(1u << rng.below(8))};
    }
    auto r = CheckpointStore::unframe(bytes, snap.pid);
    if (r.is_ok()) {
      EXPECT_EQ(r.value(), payload)
          << "unframe accepted a corrupted payload";
    }
  }
}

TEST_P(FuzzDecodeTest, DurableEpochGarbage) {
  Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) + 1200);
  for (int i = 0; i < 500; ++i) {
    auto bytes = random_bytes(rng, 512);
    ByteReader r(bytes);
    auto snap = DurableEpoch::deserialize(r);
    (void)snap;
  }
}

TEST_P(FuzzDecodeTest, CheckpointStoreSurvivesGarbageFiles) {
  // A store whose directory is full of garbage under plausible names must
  // neither crash nor return a bogus epoch: everything is counted as
  // corrupt and skipped.
  Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) + 1300);
  auto backend = std::make_shared<MemStateStore>();
  ProgramId pid(42);
  for (std::uint64_t e = 1; e <= 4; ++e) {
    auto garbage = random_bytes(rng, 300);
    ASSERT_TRUE(
        backend->put(CheckpointStore::epoch_file_name(pid, e), garbage)
            .is_ok());
  }
  auto garbage = random_bytes(rng, 64);
  ASSERT_TRUE(
      backend->put(CheckpointStore::manifest_name(pid), garbage).is_ok());

  CheckpointStore store(backend);
  auto loaded = store.load_latest(pid);
  EXPECT_FALSE(loaded.is_ok());
  EXPECT_GT(store.corrupt_skipped(), 0u);
  EXPECT_TRUE(store.recoverable().empty());
}

TEST_P(FuzzDecodeTest, CheckpointManifestCorruptionFallsBackToScan) {
  // A valid epoch file with a trashed manifest must still load: the store
  // scans epoch files newest-to-oldest when the manifest lies.
  Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) + 1400);
  auto backend = std::make_shared<MemStateStore>();
  CheckpointStore store(backend);
  DurableEpoch snap = sample_epoch();
  ASSERT_TRUE(store.persist(snap).is_ok());

  auto garbage = random_bytes(rng, 64);
  ASSERT_TRUE(
      backend->put(CheckpointStore::manifest_name(snap.pid), garbage)
          .is_ok());

  auto loaded = store.load_latest(snap.pid);
  ASSERT_TRUE(loaded.is_ok());
  EXPECT_EQ(loaded.value().epoch, snap.epoch);
  EXPECT_EQ(loaded.value().shards.size(), snap.shards.size());
}

// --- sharded-directory wire formats ---------------------------------------

TEST_P(FuzzDecodeTest, ShardPayloadGarbage) {
  Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) + 1500);
  for (int i = 0; i < 500; ++i) {
    auto bytes = random_bytes(rng, 256);
    {
      ByteReader r(bytes);
      (void)ShardLeaseAnnounce::deserialize(r);
    }
    {
      ByteReader r(bytes);
      (void)ShardHandoff::deserialize(r);
    }
    {
      ByteReader r(bytes);
      (void)ShardRecover::deserialize(r);
    }
    {
      ByteReader r(bytes);
      (void)ShardRecoverReply::deserialize(r);
    }
    {
      ByteReader r(bytes);
      (void)ShardRegister::deserialize(r);
    }
    {
      ByteReader r(bytes);
      (void)ShardStale::deserialize(r);
    }
    {
      ByteReader r(bytes);
      (void)ShardRoutedRequest::deserialize(r);
    }
  }
}

TEST_P(FuzzDecodeTest, ShardPayloadTruncation) {
  // Every strict prefix of a valid payload must decode to an error — the
  // entry-count guards must never read past the buffer or allocate from a
  // length the bytes cannot back.
  ShardHandoff h;
  h.shard = 5;
  h.epoch = 12;
  for (std::uint64_t v = 1; v <= 8; ++v) {
    h.entries.push_back(
        ShardDirEntry{GlobalAddress{v << 20}, static_cast<SiteId>(v),
                      ProgramId(v)});
  }
  ByteWriter w;
  h.serialize(w);
  auto full = w.take();
  for (std::size_t len = 0; len < full.size(); ++len) {
    std::vector<std::byte> cut(full.begin(),
                               full.begin() + static_cast<long>(len));
    ByteReader r(cut);
    auto d = ShardHandoff::deserialize(r);
    EXPECT_FALSE(d.is_ok()) << "truncation at " << len << " decoded";
  }
  ByteReader r(full);
  auto d = ShardHandoff::deserialize(r);
  ASSERT_TRUE(d.is_ok());
  EXPECT_EQ(d.value().entries.size(), h.entries.size());
}

TEST_P(FuzzDecodeTest, ShardPayloadRejectsBadShardIds) {
  // Structurally valid payloads naming a shard >= kNumShards must be
  // rejected at decode time: a bad index would otherwise reach the
  // fixed-size per-shard tables.
  for (std::uint32_t bad :
       {kNumShards, kNumShards + 1, 0xFFFFu, 0xFFFFFFFFu}) {
    {
      ByteWriter w;
      ShardRecover rec;
      rec.shard = bad;
      rec.epoch = 1;
      rec.serialize(w);
      auto bytes = w.take();
      ByteReader r(bytes);
      EXPECT_FALSE(ShardRecover::deserialize(r).is_ok()) << bad;
    }
    {
      ByteWriter w;
      ShardStale st;
      st.shard = bad;
      st.holder = 3;
      st.epoch = 9;
      st.serialize(w);
      auto bytes = w.take();
      ByteReader r(bytes);
      EXPECT_FALSE(ShardStale::deserialize(r).is_ok()) << bad;
    }
    {
      ByteWriter w;
      ShardLeaseAnnounce ann;
      ann.entries.push_back({bad, 2, 7});
      ann.serialize(w);
      auto bytes = w.take();
      ByteReader r(bytes);
      EXPECT_FALSE(ShardLeaseAnnounce::deserialize(r).is_ok()) << bad;
    }
    {
      ByteWriter w;
      ShardRoutedRequest req;
      req.addr = GlobalAddress{1};
      req.shard = bad;
      req.epoch = 2;
      req.serialize(w);
      auto bytes = w.take();
      ByteReader r(bytes);
      EXPECT_FALSE(ShardRoutedRequest::deserialize(r).is_ok()) << bad;
    }
  }
}

TEST_P(FuzzDecodeTest, ShardEpochOverflowRoundTrips) {
  // Lease epochs near the top of the u64 range must survive the wire
  // unmangled — overflow handling is the merge rule's job, never the
  // codec's.
  const std::uint64_t top = std::numeric_limits<std::uint64_t>::max();
  ShardLeaseAnnounce ann;
  ann.entries.push_back({3, 11, top});
  ann.entries.push_back({4, 12, top - 1});
  ByteWriter w;
  ann.serialize(w);
  auto bytes = w.take();
  ByteReader r(bytes);
  auto d = ShardLeaseAnnounce::deserialize(r);
  ASSERT_TRUE(d.is_ok());
  EXPECT_EQ(d.value().entries[0].epoch, top);
  EXPECT_EQ(d.value().entries[1].epoch, top - 1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzDecodeTest, ::testing::Range(1, 7));

}  // namespace
}  // namespace sdvm
