// Durable checkpoint storage: CRC framing, atomic epoch files, manifest
// fallback, corruption detection, and the seeded disk-fault decorator —
// plus cold-restart recovery end to end in sim mode.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "test_util.hpp"

#include "apps/primes.hpp"
#include "runtime/checkpoint_store.hpp"
#include "sim/sim_cluster.hpp"

namespace sdvm {
namespace {

using sim::SimCluster;

DurableEpoch sample_epoch(std::uint64_t epoch) {
  DurableEpoch d;
  d.pid = ProgramId(1, 7);
  d.epoch = epoch;
  d.info.id = d.pid;
  d.info.name = "job";
  d.info.home_site = 1;
  d.info.entry_thread = 0;
  d.info.thread_names = {"main", "worker"};
  d.shards[1] = {std::byte{0x01}, std::byte{0x02}};
  d.shards[3] = {std::byte{0xAA}};
  d.sources = {{0, "void main() {}"}, {1, "void worker() {}"}};
  d.io_log.push_back(IoRecord{epoch, 0, "line-one"});
  return d;
}

TEST(CheckpointStoreTest, PersistLoadRoundTrip) {
  CheckpointStore store(std::make_shared<MemStateStore>());
  DurableEpoch d = sample_epoch(4);
  ASSERT_TRUE(store.persist(d).is_ok());

  auto loaded = store.load_latest(d.pid);
  ASSERT_TRUE(loaded.is_ok()) << loaded.status().to_string();
  EXPECT_EQ(loaded.value().epoch, 4u);
  EXPECT_EQ(loaded.value().info.name, "job");
  EXPECT_EQ(loaded.value().shards, d.shards);
  EXPECT_EQ(loaded.value().sources, d.sources);
  ASSERT_EQ(loaded.value().io_log.size(), 1u);
  EXPECT_EQ(loaded.value().io_log[0].text, "line-one");
  EXPECT_EQ(store.corrupt_skipped(), 0u);
}

TEST(CheckpointStoreTest, RecoverableListsBestEpochPerProgram) {
  CheckpointStore store(std::make_shared<MemStateStore>());
  ASSERT_TRUE(store.persist(sample_epoch(2)).is_ok());
  ASSERT_TRUE(store.persist(sample_epoch(3)).is_ok());
  DurableEpoch other = sample_epoch(9);
  other.pid = ProgramId(2, 1);
  other.info.id = other.pid;
  ASSERT_TRUE(store.persist(other).is_ok());

  auto recoverable = store.recoverable();
  ASSERT_EQ(recoverable.size(), 2u);
  std::map<ProgramId, std::uint64_t> byPid(recoverable.begin(),
                                           recoverable.end());
  EXPECT_EQ(byPid[ProgramId(1, 7)], 3u);
  EXPECT_EQ(byPid[ProgramId(2, 1)], 9u);
}

TEST(CheckpointStoreTest, GcKeepsTwoGenerations) {
  auto mem = std::make_shared<MemStateStore>();
  CheckpointStore store(mem);
  for (std::uint64_t e = 1; e <= 5; ++e) {
    ASSERT_TRUE(store.persist(sample_epoch(e)).is_ok());
  }
  // Epochs 4 and 5 survive (plus the manifest); 1..3 are collected.
  auto names = mem->list();
  EXPECT_EQ(names.size(), 3u);
  ProgramId pid(1, 7);
  for (std::uint64_t e : {4u, 5u}) {
    auto got = mem->get(CheckpointStore::epoch_file_name(pid, e));
    EXPECT_TRUE(got.is_ok()) << "epoch " << e << " was collected";
  }
}

TEST(CheckpointStoreTest, TornWriteFallsBackToPreviousEpoch) {
  auto mem = std::make_shared<MemStateStore>();
  CheckpointStore store(mem);
  ASSERT_TRUE(store.persist(sample_epoch(1)).is_ok());
  ASSERT_TRUE(store.persist(sample_epoch(2)).is_ok());

  // Tear epoch 2's file in half, as a crash mid-write would.
  ProgramId pid(1, 7);
  std::string name = CheckpointStore::epoch_file_name(pid, 2);
  auto whole = mem->get(name);
  ASSERT_TRUE(whole.is_ok());
  std::vector<std::byte> torn(whole.value().begin(),
                              whole.value().begin() +
                                  static_cast<std::ptrdiff_t>(
                                      whole.value().size() / 2));
  ASSERT_TRUE(mem->put(name, torn).is_ok());

  auto loaded = store.load_latest(pid);
  ASSERT_TRUE(loaded.is_ok()) << loaded.status().to_string();
  EXPECT_EQ(loaded.value().epoch, 1u);
  EXPECT_GE(store.corrupt_skipped(), 1u);
}

TEST(CheckpointStoreTest, BitFlipIsDetectedAndSkipped) {
  auto mem = std::make_shared<MemStateStore>();
  CheckpointStore store(mem);
  ASSERT_TRUE(store.persist(sample_epoch(1)).is_ok());
  ASSERT_TRUE(store.persist(sample_epoch(2)).is_ok());

  ProgramId pid(1, 7);
  std::string name = CheckpointStore::epoch_file_name(pid, 2);
  auto whole = mem->get(name);
  ASSERT_TRUE(whole.is_ok());
  auto flipped = whole.value();
  flipped[flipped.size() - 3] ^= std::byte{0x10};  // inside the payload
  ASSERT_TRUE(mem->put(name, flipped).is_ok());

  auto loaded = store.load_latest(pid);
  ASSERT_TRUE(loaded.is_ok());
  EXPECT_EQ(loaded.value().epoch, 1u) << "CRC failed to catch the bit flip";
  EXPECT_GE(store.corrupt_skipped(), 1u);
}

TEST(CheckpointStoreTest, MissingManifestFallsBackToScan) {
  auto mem = std::make_shared<MemStateStore>();
  CheckpointStore store(mem);
  ASSERT_TRUE(store.persist(sample_epoch(3)).is_ok());
  ProgramId pid(1, 7);
  mem->remove(CheckpointStore::manifest_name(pid));

  auto loaded = store.load_latest(pid);
  ASSERT_TRUE(loaded.is_ok()) << loaded.status().to_string();
  EXPECT_EQ(loaded.value().epoch, 3u);

  auto recoverable = store.recoverable();
  ASSERT_EQ(recoverable.size(), 1u);
  EXPECT_EQ(recoverable[0].second, 3u);
}

TEST(CheckpointStoreTest, DropRemovesEveryArtifact) {
  auto mem = std::make_shared<MemStateStore>();
  CheckpointStore store(mem);
  ASSERT_TRUE(store.persist(sample_epoch(1)).is_ok());
  ASSERT_TRUE(store.persist(sample_epoch(2)).is_ok());
  store.drop(ProgramId(1, 7));
  EXPECT_TRUE(mem->list().empty());
  EXPECT_TRUE(store.recoverable().empty());
}

TEST(CheckpointStoreTest, DirStateStoreSurvivesReopen) {
  std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("sdvm-durability-" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  {
    CheckpointStore store(std::make_shared<DirStateStore>(dir.string()));
    ASSERT_TRUE(store.persist(sample_epoch(5)).is_ok());
  }
  // A different handle on the same directory — a restarted daemon.
  CheckpointStore reopened(std::make_shared<DirStateStore>(dir.string()));
  auto loaded = reopened.load_latest(ProgramId(1, 7));
  ASSERT_TRUE(loaded.is_ok()) << loaded.status().to_string();
  EXPECT_EQ(loaded.value().epoch, 5u);
  EXPECT_EQ(loaded.value().shards, sample_epoch(5).shards);
  std::filesystem::remove_all(dir);
}

TEST(FaultyStateStoreTest, SameSeedSameFaults) {
  FaultyStateStore::Options opts;
  opts.seed = 42;
  opts.torn_write = 0.3;
  opts.bit_flip = 0.2;
  opts.drop_write = 0.1;

  auto run = [&] {
    auto mem = std::make_shared<MemStateStore>();
    FaultyStateStore faulty(mem, opts);
    std::vector<std::byte> data(64, std::byte{0x5C});
    for (int i = 0; i < 50; ++i) {
      (void)faulty.put("k" + std::to_string(i), data);
    }
    std::map<std::string, std::vector<std::byte>> out;
    for (const auto& name : mem->list()) {
      out[name] = mem->get(name).value();
    }
    return std::pair(faulty.faults_injected(), out);
  };

  auto [faults_a, files_a] = run();
  auto [faults_b, files_b] = run();
  EXPECT_GT(faults_a, 0u) << "fault rates too low to observe anything";
  EXPECT_EQ(faults_a, faults_b);
  EXPECT_EQ(files_a, files_b) << "fault injection is not deterministic";
}

TEST(FaultyStateStoreTest, CheckpointStoreSurvivesFaultyWrites) {
  // Persist many epochs through a lossy store: whatever load_latest
  // returns must be a *valid* epoch (possibly an older one), never
  // garbage accepted from a corrupt file.
  FaultyStateStore::Options opts;
  opts.seed = 7;
  opts.torn_write = 0.25;
  opts.bit_flip = 0.15;
  opts.drop_write = 0.1;
  auto mem = std::make_shared<MemStateStore>();
  CheckpointStore store(std::make_shared<FaultyStateStore>(mem, opts));

  std::uint64_t last_ok = 0;
  for (std::uint64_t e = 1; e <= 20; ++e) {
    if (store.persist(sample_epoch(e)).is_ok()) last_ok = e;
  }
  ASSERT_GT(last_ok, 0u);
  auto loaded = store.load_latest(ProgramId(1, 7));
  ASSERT_TRUE(loaded.is_ok()) << loaded.status().to_string();
  EXPECT_GE(loaded.value().epoch, 1u);
  EXPECT_LE(loaded.value().epoch, 20u);
  EXPECT_EQ(loaded.value().info.name, "job");
  EXPECT_EQ(loaded.value().shards, sample_epoch(loaded.value().epoch).shards);
}

// ---------------------------------------------------------------------------
// Cold-restart recovery, end to end in sim mode
// ---------------------------------------------------------------------------

SiteConfig durable_config() {
  SiteConfig cfg;
  cfg.checkpoints_enabled = true;
  cfg.checkpoint_interval = kNanosPerSecond / 2;
  cfg.heartbeat_interval = 100'000'000;  // 100 ms
  cfg.failure_timeout = 400'000'000;     // 400 ms
  return cfg;
}

apps::PrimesParams long_job() {
  apps::PrimesParams p;
  p.p = 60;
  p.width = 8;
  p.work_mult = 30'000'000;
  return p;
}

TEST(ColdRestartTest, QuorumCommitPersistsReplicas) {
  SimCluster::Options opts;
  opts.durable_state = true;
  SimCluster cluster(opts);
  cluster.add_sites(4, 1.0, durable_config());
  auto pid = cluster.start_program(apps::make_primes_program(long_job()));
  ASSERT_TRUE(pid.is_ok());
  auto code = cluster.run_program(pid.value(), 3000 * kNanosPerSecond);
  ASSERT_TRUE(code.is_ok()) << code.status().to_string();
  EXPECT_GT(cluster.site(0).crash().checkpoints_committed, 0u);
  // Home + one holder (replication_factor 2) each persisted every epoch.
  EXPECT_GT(cluster.site(0).crash().replicas_persisted, 0u);
  std::uint64_t holder_persists = 0;
  for (std::size_t i = 1; i < cluster.size(); ++i) {
    holder_persists += cluster.site(i).crash().replicas_persisted;
  }
  EXPECT_GT(holder_persists, 0u) << "no replica holder ever persisted";
}

TEST(ColdRestartTest, HomeAndHolderDoubleKillRecoversFromDisk) {
  // Kill the home *and* every replica holder: no live site holds the
  // program any more. The restarted daemons find the committed epochs in
  // their state stores, win the recovery election, and resume.
  SimCluster::Options opts;
  opts.durable_state = true;
  SimCluster cluster(opts);
  cluster.add_sites(4, 1.0, durable_config());
  auto pid = cluster.start_program(apps::make_primes_program(long_job()));
  ASSERT_TRUE(pid.is_ok());

  cluster.loop().run_for(2 * kNanosPerSecond);
  ASSERT_GT(cluster.site(0).crash().checkpoints_committed, 0u);
  std::vector<SiteId> holders =
      cluster.site(0).crash().replica_holders(pid.value());
  ASSERT_FALSE(holders.empty());

  // SIGKILL the home (slot 0) and every holder, then restart both slots
  // with their original state stores.
  std::vector<std::size_t> killed = {0};
  for (SiteId holder : holders) {
    for (std::size_t i = 1; i < cluster.size(); ++i) {
      if (cluster.site(i).id() == holder) killed.push_back(i);
    }
  }
  for (std::size_t i : killed) cluster.kill(i);
  for (std::size_t i : killed) cluster.restart(i);

  auto code = cluster.run_program(pid.value(), 9000 * kNanosPerSecond);
  ASSERT_TRUE(code.is_ok()) << code.status().to_string();
  EXPECT_EQ(code.value(), 0);

  bool verdict_seen = false;
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    auto out = cluster.outputs(i, pid.value());
    if (!out.empty() && std::stoll(out.back()) >= 60) verdict_seen = true;
  }
  EXPECT_TRUE(verdict_seen) << "no site collected the final verdict";
}

TEST(ColdRestartTest, FullClusterKillAndRestartResumes) {
  // The kill-everything drill: every daemon dies, every daemon restarts
  // with its state store. The reformed cluster elects the highest
  // committed epoch and finishes with the undisturbed exit code.
  SimCluster::Options opts;
  opts.durable_state = true;
  SimCluster cluster(opts);
  cluster.add_sites(4, 1.0, durable_config());
  auto pid = cluster.start_program(apps::make_primes_program(long_job()));
  ASSERT_TRUE(pid.is_ok());

  cluster.loop().run_for(2 * kNanosPerSecond);
  std::uint64_t epoch_before =
      cluster.site(0).crash().committed_epoch(pid.value());
  ASSERT_GT(epoch_before, 0u);

  for (std::size_t i = 0; i < cluster.size(); ++i) cluster.kill(i);
  for (std::size_t i = 0; i < cluster.size(); ++i) cluster.restart(i);

  auto code = cluster.run_program(pid.value(), 9000 * kNanosPerSecond);
  ASSERT_TRUE(code.is_ok()) << code.status().to_string();
  EXPECT_EQ(code.value(), 0) << "exit code differs from undisturbed run";

  // The resumed run started from the persisted epoch, not from scratch,
  // and the verdict landed at the new home.
  std::uint64_t best = 0;
  bool verdict_seen = false;
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    best = std::max(best, cluster.site(i).crash().committed_epoch(pid.value()));
    auto out = cluster.outputs(i, pid.value());
    if (!out.empty() && std::stoll(out.back()) >= 60) verdict_seen = true;
  }
  EXPECT_TRUE(verdict_seen) << "no site collected the final verdict";
  EXPECT_GE(cluster.site(0).crash().recoveries +
                cluster.site(1).crash().recoveries +
                cluster.site(2).crash().recoveries +
                cluster.site(3).crash().recoveries,
            1u);
}

TEST(ColdRestartTest, TerminatedProgramIsNotResurrected) {
  // A program that finished before the crash must stay finished: the
  // restarted site's stale store is dropped, not replayed.
  SimCluster::Options opts;
  opts.durable_state = true;
  SimCluster cluster(opts);
  cluster.add_sites(3, 1.0, durable_config());
  apps::PrimesParams quick = long_job();
  quick.p = 20;
  quick.work_mult = 1'000'000;
  auto pid = cluster.start_program(apps::make_primes_program(quick));
  ASSERT_TRUE(pid.is_ok());
  auto code = cluster.run_program(pid.value(), 3000 * kNanosPerSecond);
  ASSERT_TRUE(code.is_ok()) << code.status().to_string();

  cluster.kill(2);
  cluster.restart(2);
  cluster.loop().run_for(5 * kNanosPerSecond);
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    EXPECT_TRUE(cluster.site(i).programs().active_programs().empty())
        << "site " << i << " resurrected a terminated program";
  }
}

ProgramSpec make_ticker_program(std::int64_t steps, std::int64_t cost) {
  // Prints 0..steps-1, one line per microframe, with enough virtual work
  // between lines that checkpoints commit mid-stream.
  ProgramSpec spec;
  spec.name = "ticker";
  spec.entry = "entry";
  spec.args = {steps, cost};
  spec.threads = {
      {"entry", R"(
        var r = spawn("step", 1);
        send(r, 0, 0);
      )",
       nullptr},
      {"step", R"(
        var i = param(0);
        out(i);
        charge(arg(1));
        if (i + 1 < arg(0)) {
          var r = spawn("step", 1);
          send(r, 0, i + 1);
        } else {
          exit(0);
        }
      )",
       nullptr},
  };
  return spec;
}

TEST(ColdRestartTest, OutputIsDeliveredExactlyOnce) {
  // Worker crash forces a rollback: lines printed after the last commit
  // are truncated from the frontend log and regenerated by the replay, so
  // the collected output contains no duplicates and no holes.
  SimCluster::Options opts;
  opts.durable_state = true;
  SimCluster cluster(opts);
  cluster.add_sites(4, 1.0, durable_config());
  auto pid = cluster.start_program(
      make_ticker_program(/*steps=*/40, /*cost=*/100'000'000));
  ASSERT_TRUE(pid.is_ok());

  cluster.loop().run_for(2 * kNanosPerSecond);
  ASSERT_GT(cluster.site(0).crash().checkpoints_committed, 0u);
  cluster.kill(2);
  cluster.loop().run_for(2 * kNanosPerSecond);
  cluster.kill(3);

  auto code = cluster.run_program(pid.value(), 9000 * kNanosPerSecond);
  ASSERT_TRUE(code.is_ok()) << code.status().to_string();
  ASSERT_GT(cluster.site(0).crash().recoveries, 0u)
      << "no rollback happened — the test exercised nothing";

  auto out = cluster.outputs(0, pid.value());
  ASSERT_EQ(out.size(), 40u) << "lines lost or duplicated";
  for (std::int64_t i = 0; i < 40; ++i) {
    EXPECT_EQ(out[static_cast<std::size_t>(i)], std::to_string(i))
        << "output out of order at " << i;
  }
}

}  // namespace
}  // namespace sdvm
