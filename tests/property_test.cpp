// Property-based sweeps over the full runtime (parameterized gtest):
//  - dataflow conservation: a frame fires exactly once, results are exact,
//    regardless of cluster size, latency, or seed;
//  - scheduler conservation under random help-request interleavings;
//  - determinism: identical sim configurations produce identical virtual
//    makespans and execution counts.
//  - introspection wire safety: randomized SiteStatus / MetricsSnapshot
//    values survive a serialize/deserialize round trip bit-exactly.
#include <gtest/gtest.h>

#include "test_util.hpp"

#include "apps/fibonacci.hpp"
#include "apps/matmul.hpp"
#include "apps/primes.hpp"
#include "common/rng.hpp"
#include "runtime/site_status.hpp"
#include "sim/sim_cluster.hpp"

namespace sdvm {
namespace {

using sim::SimCluster;

struct TopologyCase {
  int sites;
  Nanos latency;
  std::uint64_t seed;
};

class DataflowConservationTest
    : public ::testing::TestWithParam<TopologyCase> {};

TEST_P(DataflowConservationTest, FibExactUnderAnyTopology) {
  const auto& tc = GetParam();
  SimCluster::Options options;
  options.seed = tc.seed;
  options.link.latency = tc.latency;
  SimCluster cluster(options);
  SiteConfig cfg;
  cfg.help_retry_interval = 200'000;
  cluster.add_sites(tc.sites, 1.0, cfg);

  apps::FibParams params;
  params.n = 11;
  params.leaf_work = 300'000;
  auto pid = cluster.start_program(apps::make_fib_program(params));
  ASSERT_TRUE(pid.is_ok());
  auto code = cluster.run_program(pid.value(), 3000 * kNanosPerSecond);
  ASSERT_TRUE(code.is_ok()) << code.status().to_string();

  // Exactness: the recursive dataflow sums to fib(11) — any lost or
  // duplicated frame changes the result.
  auto out = cluster.outputs(0, pid.value());
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out.back(), std::to_string(apps::fib_reference(11)));

  // Conservation: every help frame given was received, none invented.
  std::uint64_t given = 0, received = 0;
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    given += cluster.site(i).scheduling().help_frames_given;
    received += cluster.site(i).scheduling().help_frames_received;
  }
  EXPECT_EQ(given, received);
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, DataflowConservationTest,
    ::testing::Values(TopologyCase{1, 0, 1}, TopologyCase{2, 100'000, 2},
                      TopologyCase{3, 1'000'000, 3},
                      TopologyCase{5, 100'000, 4},
                      TopologyCase{8, 500'000, 5},
                      TopologyCase{8, 5'000'000, 6},
                      TopologyCase{13, 100'000, 7}));

class PrimesConservationTest : public ::testing::TestWithParam<int> {};

TEST_P(PrimesConservationTest, VerdictExactUnderRandomStealing) {
  int sites = 1 + GetParam() % 7;
  SimCluster::Options options;
  options.seed = static_cast<std::uint64_t>(GetParam()) * 977 + 13;
  options.link.latency = 50'000 * (1 + GetParam() % 5);
  SimCluster cluster(options);
  SiteConfig cfg;
  cfg.help_retry_interval = 100'000 * (1 + GetParam() % 3);
  cluster.add_sites(sites, 1.0, cfg);

  apps::PrimesParams params;
  params.p = 30;
  params.width = 4 + GetParam() % 9;
  params.work_mult = 3'000'000;
  auto pid = cluster.start_program(apps::make_primes_program(params));
  ASSERT_TRUE(pid.is_ok());
  auto code = cluster.run_program(pid.value(), 3000 * kNanosPerSecond);
  ASSERT_TRUE(code.is_ok()) << code.status().to_string();
  testing_util::expect_primes_verdict(cluster.outputs(0, pid.value()), 30,
                                      params.width);

  // No site double-executed a frame: executions = 1 entry + per-round
  // (width tests + 1 merge + 1 round thread). Total candidates tested =
  // rounds * width; verdict >= 30 pins rounds exactly.
  std::uint64_t executed = 0;
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    executed += cluster.site(i).processing().executed_total;
  }
  std::int64_t verdict = std::stoll(cluster.outputs(0, pid.value()).back());
  (void)verdict;
  // executions = 1 (entry) + rounds*(width+2) where the final merge is
  // counted too; rounds = (executed - 1) / (width + 2) must divide evenly.
  EXPECT_EQ((executed - 1) % (static_cast<std::uint64_t>(params.width) + 2),
            0u)
      << "execution count inconsistent with round structure — a frame was "
         "lost or duplicated";
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrimesConservationTest,
                         ::testing::Range(0, 12));

class DeterminismTest : public ::testing::TestWithParam<int> {};

TEST_P(DeterminismTest, IdenticalConfigIdenticalRun) {
  auto run_once = [&](std::uint64_t seed) {
    SimCluster::Options options;
    options.seed = seed;
    SimCluster cluster(options);
    cluster.add_sites(4);
    apps::PrimesParams params;
    params.p = 25;
    params.width = 8;
    params.work_mult = 5'000'000;
    auto pid = cluster.start_program(apps::make_primes_program(params));
    EXPECT_TRUE(pid.is_ok());
    auto code = cluster.run_program(pid.value(), 3000 * kNanosPerSecond);
    EXPECT_TRUE(code.is_ok());
    std::uint64_t executed = 0;
    for (std::size_t i = 0; i < cluster.size(); ++i) {
      executed += cluster.site(i).processing().executed_total;
    }
    return std::pair<Nanos, std::uint64_t>{cluster.now(), executed};
  };
  std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  auto first = run_once(seed);
  auto second = run_once(seed);
  EXPECT_EQ(first.first, second.first) << "virtual makespan not reproducible";
  EXPECT_EQ(first.second, second.second);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeterminismTest, ::testing::Range(1, 6));

class MatmulSweepTest
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(MatmulSweepTest, ChecksumExactForAllShapes) {
  auto [n, block_rows] = GetParam();
  SimCluster cluster;
  SiteConfig cfg;
  cfg.help_retry_interval = 50'000;
  cluster.add_sites(3, 1.0, cfg);
  apps::MatmulParams params;
  params.n = n;
  params.block_rows = block_rows;
  auto pid = cluster.start_program(apps::make_matmul_program(params));
  ASSERT_TRUE(pid.is_ok());
  auto code = cluster.run_program(pid.value(), 3000 * kNanosPerSecond);
  ASSERT_TRUE(code.is_ok()) << code.status().to_string();

  auto ref = apps::matmul_reference(n);
  std::int64_t expected = 0;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    expected += ref[i] * (static_cast<std::int64_t>(i) % 13 + 1);
  }
  EXPECT_EQ(cluster.outputs(0, pid.value()).back(), std::to_string(expected));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatmulSweepTest,
    ::testing::Values(std::pair{4, 1}, std::pair{4, 4}, std::pair{7, 2},
                      std::pair{8, 3}, std::pair{12, 5}, std::pair{16, 4}));

metrics::MetricsSnapshot random_snapshot(Xoshiro256& rng) {
  metrics::MetricsSnapshot s;
  std::size_t n = rng.below(12);
  for (std::size_t i = 0; i < n; ++i) {
    std::string name = "m." + std::to_string(rng.below(64));
    switch (rng.below(3)) {
      case 0:
        s.add_counter(name, rng());
        break;
      case 1:
        s.add_gauge(name, static_cast<std::int64_t>(rng()));
        break;
      default: {
        metrics::Histogram h;
        std::size_t samples = rng.below(20);
        for (std::size_t k = 0; k < samples; ++k) {
          h.record(static_cast<Nanos>(rng.below(20'000'000'000)));
        }
        s.add_histogram(name, h);
      }
    }
  }
  return s;
}

class IntrospectionRoundTripTest : public ::testing::TestWithParam<int> {};

TEST_P(IntrospectionRoundTripTest, MetricsSnapshotBitExact) {
  Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 3);
  for (int i = 0; i < 50; ++i) {
    metrics::MetricsSnapshot s = random_snapshot(rng);
    ByteWriter w;
    s.serialize(w);
    auto bytes = w.take();
    ByteReader r(bytes);
    auto back = metrics::MetricsSnapshot::deserialize(r);
    ASSERT_TRUE(back.is_ok()) << back.status().to_string();
    EXPECT_EQ(back.value(), s);
  }
}

TEST_P(IntrospectionRoundTripTest, SiteStatusSurvivesTheWire) {
  Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 1);
  for (int i = 0; i < 30; ++i) {
    SiteStatus s;
    s.id = static_cast<SiteId>(rng.below(1000));
    s.name = "site-" + std::to_string(rng.below(100));
    s.platform = rng.below(2) ? "x86-linux" : "arm-macos";
    s.speed = static_cast<double>(rng.below(100)) / 10.0;
    s.joined = rng.below(2) != 0;
    s.signed_off = rng.below(2) != 0;
    s.code_site = rng.below(2) != 0;
    s.cluster_size = static_cast<std::uint32_t>(rng.below(64));
    s.load.queued_frames = static_cast<std::uint32_t>(rng.below(1000));
    s.load.running = static_cast<std::uint32_t>(rng.below(16));
    s.load.programs = static_cast<std::uint32_t>(rng.below(8));
    s.load.executed_total = rng();
    std::size_t nprogs = rng.below(5);
    for (std::size_t k = 0; k < nprogs; ++k) {
      ProgramId pid(rng());
      s.active_programs.push_back(pid);
      s.ledger[pid] = AccountEntry{rng.below(100), rng.below(100000),
                                   rng.below(1000000)};
    }
    s.metrics = random_snapshot(rng);

    ByteWriter w;
    s.serialize(w);
    auto bytes = w.take();
    ByteReader r(bytes);
    auto back = SiteStatus::deserialize(r);
    ASSERT_TRUE(back.is_ok()) << back.status().to_string();
    const SiteStatus& b = back.value();
    EXPECT_EQ(b.id, s.id);
    EXPECT_EQ(b.name, s.name);
    EXPECT_EQ(b.platform, s.platform);
    EXPECT_DOUBLE_EQ(b.speed, s.speed);
    EXPECT_EQ(b.joined, s.joined);
    EXPECT_EQ(b.signed_off, s.signed_off);
    EXPECT_EQ(b.code_site, s.code_site);
    EXPECT_EQ(b.cluster_size, s.cluster_size);
    EXPECT_EQ(b.load.executed_total, s.load.executed_total);
    EXPECT_EQ(b.active_programs, s.active_programs);
    EXPECT_EQ(b.ledger.size(), s.ledger.size());
    for (const auto& [pid, e] : s.ledger) {
      ASSERT_EQ(b.ledger.count(pid), 1u);
      EXPECT_EQ(b.ledger.at(pid).charged_cycles, e.charged_cycles);
    }
    EXPECT_EQ(b.metrics, s.metrics);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntrospectionRoundTripTest,
                         ::testing::Range(0, 6));

}  // namespace
}  // namespace sdvm
