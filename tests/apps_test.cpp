// Correctness of the bundled applications across cluster shapes: N-Queens
// (irregular recursion, variable-arity joins) and the streaming pipeline.
#include <gtest/gtest.h>

#include "apps/nqueens.hpp"
#include "apps/pipeline.hpp"
#include "sim/sim_cluster.hpp"

namespace sdvm {
namespace {

using sim::SimCluster;

class NQueensTest : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(NQueensTest, CountMatchesReference) {
  auto [n, sites] = GetParam();
  SimCluster cluster;
  SiteConfig cfg;
  cfg.help_retry_interval = 100'000;
  cluster.add_sites(sites, 1.0, cfg);
  apps::NQueensParams params;
  params.n = n;
  params.node_work = 200'000;
  auto pid = cluster.start_program(apps::make_nqueens_program(params));
  ASSERT_TRUE(pid.is_ok()) << pid.status().to_string();
  auto code = cluster.run_program(pid.value(), 3000 * kNanosPerSecond);
  ASSERT_TRUE(code.is_ok()) << code.status().to_string();
  auto out = cluster.outputs(0, pid.value());
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out.back(), std::to_string(apps::nqueens_reference(n)));
}

INSTANTIATE_TEST_SUITE_P(
    Boards, NQueensTest,
    ::testing::Values(std::pair{4, 1}, std::pair{5, 2}, std::pair{6, 3},
                      std::pair{6, 1}, std::pair{7, 4}, std::pair{8, 6}));

TEST(NQueensTest, ReferenceKnownValues) {
  EXPECT_EQ(apps::nqueens_reference(1), 1);
  EXPECT_EQ(apps::nqueens_reference(4), 2);
  EXPECT_EQ(apps::nqueens_reference(6), 4);
  EXPECT_EQ(apps::nqueens_reference(7), 40);
  EXPECT_EQ(apps::nqueens_reference(8), 92);
}

class PipelineTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(PipelineTest, ChecksumMatchesReference) {
  auto [items, stages, sites] = GetParam();
  SimCluster cluster;
  SiteConfig cfg;
  cfg.help_retry_interval = 100'000;
  cluster.add_sites(sites, 1.0, cfg);
  apps::PipelineParams params;
  params.items = items;
  params.stages = stages;
  params.stage_work = 500'000;
  auto pid = cluster.start_program(apps::make_pipeline_program(params));
  ASSERT_TRUE(pid.is_ok());
  auto code = cluster.run_program(pid.value(), 3000 * kNanosPerSecond);
  ASSERT_TRUE(code.is_ok()) << code.status().to_string();
  auto out = cluster.outputs(0, pid.value());
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out.back(), std::to_string(apps::pipeline_reference(params)));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PipelineTest,
    ::testing::Values(std::tuple{1, 1, 1}, std::tuple{8, 3, 1},
                      std::tuple{16, 4, 2}, std::tuple{24, 4, 4},
                      std::tuple{32, 6, 3}, std::tuple{48, 2, 8}));

TEST(PipelineTest, PipelineOverlapBeatsSerial) {
  // With many stages and items, parallel sites must beat a single site
  // (the whole point of pipelining across the cluster).
  apps::PipelineParams params;
  params.items = 32;
  params.stages = 4;
  params.stage_work = 20'000'000;
  auto run = [&](int sites) {
    SimCluster cluster;
    SiteConfig cfg;
    cfg.help_retry_interval = 100'000;
    cluster.add_sites(sites, 1.0, cfg);
    auto pid = cluster.start_program(apps::make_pipeline_program(params));
    EXPECT_TRUE(pid.is_ok());
    EXPECT_TRUE(
        cluster.run_program(pid.value(), 3000 * kNanosPerSecond).is_ok());
    return cluster.now();
  };
  Nanos one = run(1);
  Nanos four = run(4);
  EXPECT_LT(four, one * 2 / 3) << "pipeline did not parallelize";
}

}  // namespace
}  // namespace sdvm
