// Batched wire protocol + epoll event loop: coalescing behaviour, flush
// policy, the one-net-thread-per-daemon property, reconnect with parked
// frames, and per-frame fault injection across batch boundaries.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <dirent.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <mutex>
#include <thread>

#include "net/faulty.hpp"
#include "net/tcp.hpp"

namespace sdvm {
namespace {

using namespace std::chrono_literals;

std::vector<std::byte> bytes_of(const std::string& s) {
  std::vector<std::byte> b(s.size());
  std::memcpy(b.data(), s.data(), s.size());
  return b;
}

std::string string_of(const std::vector<std::byte>& b) {
  return {reinterpret_cast<const char*>(b.data()), b.size()};
}

bool wait_until(const std::function<bool()>& pred,
                Nanos budget = 5'000'000'000) {
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::nanoseconds(static_cast<std::int64_t>(budget));
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(1ms);
  }
  return pred();
}

/// Threads of this process, via /proc/self/task.
int thread_count() {
  int n = 0;
  DIR* d = ::opendir("/proc/self/task");
  if (d == nullptr) return -1;
  while (dirent* e = ::readdir(d)) {
    if (e->d_name[0] != '.') ++n;
  }
  ::closedir(d);
  return n;
}

/// A bare listening socket that never accepts — enough for a peer's
/// connect to succeed (backlog) without any extra threads.
struct RawListener {
  int fd = -1;
  std::uint16_t port = 0;
  RawListener() {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in sa{};
    sa.sin_family = AF_INET;
    sa.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    ::bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa));
    ::listen(fd, 8);
    socklen_t len = sizeof(sa);
    ::getsockname(fd, reinterpret_cast<sockaddr*>(&sa), &len);
    port = ntohs(sa.sin_port);
  }
  ~RawListener() {
    if (fd >= 0) ::close(fd);
  }
  [[nodiscard]] std::string address() const {
    return "127.0.0.1:" + std::to_string(port);
  }
};

TEST(TcpBatchTest, BurstIsCoalescedAndOrdered) {
  std::mutex mu;
  std::vector<int> order;
  auto rx = net::TcpTransport::listen(0, [&](std::vector<std::byte> b) {
    std::lock_guard lk(mu);
    order.push_back(std::stoi(string_of(b)));
  });
  ASSERT_TRUE(rx.is_ok());
  auto tx = net::TcpTransport::listen(0, [](std::vector<std::byte>) {});
  ASSERT_TRUE(tx.is_ok());

  constexpr int kN = 800;
  std::vector<net::Frame> burst;
  for (int i = 0; i < kN; ++i) burst.push_back(bytes_of(std::to_string(i)));
  ASSERT_TRUE(
      tx.value()->send_batch(rx.value()->local_address(), std::move(burst))
          .is_ok());

  ASSERT_TRUE(wait_until([&] {
    std::lock_guard lk(mu);
    return order.size() == kN;
  }));
  std::lock_guard lk(mu);
  for (int i = 0; i < kN; ++i) EXPECT_EQ(order[i], i) << "at " << i;

  // Coalescing must be visible on the wire: far fewer batches than frames,
  // and the histogram accounts for every batch.
  auto st = tx.value()->stats();
  EXPECT_EQ(st.frames_sent, kN);
  EXPECT_LT(st.batches_sent, st.frames_sent / 4);
  std::uint64_t hist_total = 0;
  for (auto c : st.frames_per_batch) hist_total += c;
  EXPECT_EQ(hist_total, st.batches_sent);
  tx.value()->close();
  rx.value()->close();
}

TEST(TcpBatchTest, FlushOnDeadlineWithSparseSender) {
  std::atomic<int> received{0};
  auto rx = net::TcpTransport::listen(
      0, [&](std::vector<std::byte>) { received++; });
  ASSERT_TRUE(rx.is_ok());
  net::TcpTransport::Options options;
  options.flush_deadline = 2'000'000;  // 2 ms: clearly a deadline flush
  options.flush_bytes = 1 << 20;
  options.flush_frames = 1024;  // size triggers out of reach for one frame
  auto tx = net::TcpTransport::listen(0, [](std::vector<std::byte>) {},
                                      options);
  ASSERT_TRUE(tx.is_ok());

  // A lone small frame cannot hit a size trigger; only the deadline ships
  // it. It must still arrive promptly (well under a second).
  ASSERT_TRUE(
      tx.value()->send(rx.value()->local_address(), bytes_of("solo")).is_ok());
  ASSERT_TRUE(wait_until([&] { return received.load() == 1; }, 1e9));
  EXPECT_GE(tx.value()->stats().flush_deadline_hits, 1u);
  EXPECT_EQ(tx.value()->stats().flush_size_hits, 0u);
  tx.value()->close();
  rx.value()->close();
}

TEST(TcpBatchTest, ExplicitFlushBeatsTheDeadline) {
  std::atomic<int> received{0};
  auto rx = net::TcpTransport::listen(
      0, [&](std::vector<std::byte>) { received++; });
  ASSERT_TRUE(rx.is_ok());
  net::TcpTransport::Options options;
  options.flush_deadline = 3'000'000'000;  // 3 s: too slow for this test
  options.flush_bytes = 1 << 20;
  auto tx = net::TcpTransport::listen(0, [](std::vector<std::byte>) {},
                                      options);
  ASSERT_TRUE(tx.is_ok());

  std::string dest = rx.value()->local_address();
  ASSERT_TRUE(tx.value()->send(dest, bytes_of("parked")).is_ok());
  tx.value()->flush(dest);
  // Without the explicit flush this would take ~3 s; with it, milliseconds.
  ASSERT_TRUE(wait_until([&] { return received.load() == 1; }, 1e9));
  tx.value()->close();
  rx.value()->close();
}

TEST(TcpBatchTest, MalformedBatchCountedAndConnectionDropped) {
  auto rx = net::TcpTransport::listen(0, [](std::vector<std::byte>) {});
  ASSERT_TRUE(rx.is_ok());
  auto rx_port = static_cast<std::uint16_t>(
      std::stoi(rx.value()->local_address().substr(
          rx.value()->local_address().rfind(':') + 1)));

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  sa.sin_port = htons(rx_port);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)), 0);

  // A plausible header whose body contradicts it: body_len 10, count 3,
  // but the one frame inside claims 100 bytes.
  std::uint8_t wire[6 + 10] = {};
  wire[0] = 10;  // body_len = 10 LE
  wire[4] = 3;   // frame_count = 3 LE
  wire[6] = 100; // frame_len = 100 > remaining body
  ASSERT_EQ(::send(fd, wire, sizeof(wire), 0),
            static_cast<ssize_t>(sizeof(wire)));

  ASSERT_TRUE(wait_until(
      [&] { return rx.value()->stats().batches_malformed >= 1; }));
  // The transport must survive the bad peer.
  std::atomic<int> received{0};
  auto probe = net::TcpTransport::listen(
      0, [&](std::vector<std::byte>) { received++; });
  ASSERT_TRUE(probe.is_ok());
  auto echo = net::TcpTransport::listen(0, [](std::vector<std::byte>) {});
  ASSERT_TRUE(echo.is_ok());
  ASSERT_TRUE(echo.value()
                  ->send(probe.value()->local_address(), bytes_of("alive"))
                  .is_ok());
  ASSERT_TRUE(wait_until([&] { return received.load() == 1; }));
  ::close(fd);
  probe.value()->close();
  echo.value()->close();
  rx.value()->close();
}

TEST(TcpBatchTest, OversizedFrameInsideBatchRejectedAtSender) {
  auto rx = net::TcpTransport::listen(0, [](std::vector<std::byte>) {});
  ASSERT_TRUE(rx.is_ok());
  std::atomic<int> received{0};
  auto ok_rx = net::TcpTransport::listen(
      0, [&](std::vector<std::byte>) { received++; });
  ASSERT_TRUE(ok_rx.is_ok());
  auto tx = net::TcpTransport::listen(0, [](std::vector<std::byte>) {});
  ASSERT_TRUE(tx.is_ok());

  std::vector<net::Frame> burst;
  burst.push_back(bytes_of("fine"));
  burst.emplace_back(65 * 1024 * 1024);  // over the 64 MiB frame cap
  burst.push_back(bytes_of("also fine"));
  Status st = tx.value()->send_batch(ok_rx.value()->local_address(),
                                     std::move(burst));
  EXPECT_EQ(st.code(), ErrorCode::kInvalidArgument);
  // The two legal frames still go out.
  ASSERT_TRUE(wait_until([&] { return received.load() == 2; }));
  tx.value()->close();
  ok_rx.value()->close();
  rx.value()->close();
}

TEST(TcpBatchTest, SingleNetThreadHoldsHundredPlusPeers) {
  // Sanitizer runtimes (TSan) spawn a background thread lazily on the
  // first pthread_create; force it now so the baseline below is stable.
  std::thread([] {}).join();
  const int before = thread_count();
  ASSERT_GT(before, 0);
  auto hub = net::TcpTransport::listen(0, [](std::vector<std::byte>) {});
  ASSERT_TRUE(hub.is_ok());
  // The transport adds exactly its event loop, nothing per peer.
  EXPECT_EQ(thread_count(), before + net::TcpTransport::kNetThreads);

  constexpr int kPeers = 120;
  std::vector<std::unique_ptr<RawListener>> peers;
  for (int i = 0; i < kPeers; ++i) {
    peers.push_back(std::make_unique<RawListener>());
    ASSERT_TRUE(
        hub.value()->send(peers.back()->address(), bytes_of("hello")).is_ok());
  }
  // Every peer's queue drains: all 120 connections established and written
  // by the one loop thread.
  ASSERT_TRUE(wait_until([&] {
    for (auto& p : peers) {
      if (hub.value()->peer_state(p->address()).queued != 0) return false;
    }
    return true;
  }, 10e9));
  EXPECT_EQ(thread_count(), before + net::TcpTransport::kNetThreads);
  EXPECT_GE(hub.value()->stats().frames_sent, kPeers);
  hub.value()->close();
  EXPECT_EQ(thread_count(), before);
}

TEST(TcpBatchTest, ReconnectShipsFramesParkedDuringOutage) {
  std::mutex mu;
  std::vector<std::string> got;
  auto make_receiver = [&] {
    return [&](std::vector<std::byte> b) {
      std::lock_guard lk(mu);
      got.push_back(string_of(b));
    };
  };
  auto first = net::TcpTransport::listen(0, make_receiver());
  ASSERT_TRUE(first.is_ok());
  std::string addr = first.value()->local_address();
  auto port = static_cast<std::uint16_t>(
      std::stoi(addr.substr(addr.rfind(':') + 1)));

  net::TcpTransport::Options options;
  options.max_attempts = 100;  // outlive the restart window
  options.backoff_base = 1'000'000;
  options.backoff_max = 20'000'000;
  auto tx = net::TcpTransport::listen(0, [](std::vector<std::byte>) {},
                                      options);
  ASSERT_TRUE(tx.is_ok());

  ASSERT_TRUE(tx.value()->send(addr, bytes_of("before")).is_ok());
  ASSERT_TRUE(wait_until([&] {
    std::lock_guard lk(mu);
    return got.size() == 1;
  }));
  first.value()->close();
  first.value().reset();

  // Peer is down: these park on the queue while the loop retries.
  ASSERT_TRUE(tx.value()->send(addr, bytes_of("during-1")).is_ok());
  ASSERT_TRUE(tx.value()->send(addr, bytes_of("during-2")).is_ok());
  std::this_thread::sleep_for(50ms);

  auto second = net::TcpTransport::listen(port, make_receiver());
  ASSERT_TRUE(second.is_ok()) << second.status().to_string();
  ASSERT_TRUE(wait_until([&] {
    std::lock_guard lk(mu);
    return got.size() == 3;
  }, 10e9));
  {
    std::lock_guard lk(mu);
    EXPECT_EQ(got[1], "during-1");
    EXPECT_EQ(got[2], "during-2");
  }
  EXPECT_GE(tx.value()->stats().reconnects, 1u);
  tx.value()->close();
  second.value()->close();
}

/// Records everything the decorator forwards, preserving call shape.
class RecordingTransport final : public net::Transport {
 public:
  [[nodiscard]] std::string local_address() const override { return "rec:0"; }
  Status send(const std::string& to, std::vector<std::byte> bytes) override {
    std::lock_guard lk(m);
    frames.emplace_back(to, std::move(bytes));
    return Status::ok();
  }
  Status send_batch(const std::string& to,
                    std::vector<net::Frame> burst) override {
    std::lock_guard lk(m);
    ++batches;
    for (auto& f : burst) frames.emplace_back(to, std::move(f));
    return Status::ok();
  }
  void close() override {}

  std::mutex m;
  std::vector<std::pair<std::string, net::Frame>> frames;
  int batches = 0;
};

TEST(FaultyBatchTest, BatchFaultDecisionsMatchPerFrameSends) {
  // The same seed must produce the same survivor pattern whether a burst
  // goes through send_batch or frame-by-frame send: the RNG consumes one
  // decision per frame in order.
  auto make_burst = [] {
    std::vector<net::Frame> burst;
    for (int i = 0; i < 64; ++i) burst.push_back(bytes_of("m" + std::to_string(i)));
    return burst;
  };
  net::FaultyTransport::Options fopts;
  fopts.seed = 99;
  fopts.base.drop = 0.4;
  fopts.classifier = [](std::span<const std::byte>) { return -1; };

  auto inner_a = std::make_unique<RecordingTransport>();
  auto* rec_a = inner_a.get();
  net::FaultyTransport faulty_a(std::move(inner_a), fopts);
  for (auto& f : make_burst()) {
    ASSERT_TRUE(faulty_a.send("x:1", std::move(f)).is_ok());
  }

  auto inner_b = std::make_unique<RecordingTransport>();
  auto* rec_b = inner_b.get();
  net::FaultyTransport faulty_b(std::move(inner_b), fopts);
  ASSERT_TRUE(faulty_b.send_batch("x:1", make_burst()).is_ok());

  std::lock_guard la(rec_a->m);
  std::lock_guard lb(rec_b->m);
  ASSERT_EQ(rec_a->frames.size(), rec_b->frames.size());
  ASSERT_LT(rec_b->frames.size(), 64u);  // some frames actually dropped
  ASSERT_GT(rec_b->frames.size(), 0u);
  for (std::size_t i = 0; i < rec_a->frames.size(); ++i) {
    EXPECT_EQ(string_of(rec_a->frames[i].second),
              string_of(rec_b->frames[i].second));
  }
  // Survivors of a burst stay one batch on the inner transport.
  EXPECT_EQ(rec_b->batches, 1);
  faulty_a.close();
  faulty_b.close();
}

TEST(FaultyBatchTest, KindRuleHitsOnlyMatchingFramesInsideBatch) {
  net::FaultyTransport::Options fopts;
  fopts.seed = 7;
  // Classify by first byte; kind 1 is always dropped, others untouched.
  fopts.classifier = [](std::span<const std::byte> f) {
    return f.empty() ? -1 : static_cast<int>(f[0]) & 0xff;
  };
  auto inner = std::make_unique<RecordingTransport>();
  auto* rec = inner.get();
  net::FaultyTransport faulty(std::move(inner), fopts);
  net::FaultRule drop_all;
  drop_all.drop = 0.999999;
  faulty.set_kind_rule(1, drop_all);

  std::vector<net::Frame> burst;
  for (int i = 0; i < 10; ++i) {
    net::Frame f(4, std::byte{static_cast<unsigned char>(i % 2)});
    burst.push_back(std::move(f));
  }
  ASSERT_TRUE(faulty.send_batch("x:1", std::move(burst)).is_ok());
  std::lock_guard lk(rec->m);
  ASSERT_EQ(rec->frames.size(), 5u);  // only the kind-0 frames survive
  for (auto& [to, f] : rec->frames) {
    EXPECT_EQ(static_cast<int>(f[0]), 0);
  }
  faulty.close();
}

TEST(FaultyBatchTest, SeveredBatchReportsUnavailableAndDropsAll) {
  auto inner = std::make_unique<RecordingTransport>();
  auto* rec = inner.get();
  net::FaultyTransport::Options fopts;
  fopts.classifier = [](std::span<const std::byte>) { return -1; };
  net::FaultyTransport faulty(std::move(inner), fopts);
  faulty.sever("x:1", true);

  std::vector<net::Frame> burst;
  burst.push_back(bytes_of("a"));
  burst.push_back(bytes_of("b"));
  Status st = faulty.send_batch("x:1", std::move(burst));
  EXPECT_EQ(st.code(), ErrorCode::kUnavailable);
  {
    std::lock_guard lk(rec->m);
    EXPECT_TRUE(rec->frames.empty());
  }
  EXPECT_EQ(faulty.stats().severed, 2u);
  faulty.close();
}

}  // namespace
}  // namespace sdvm
