// Unit tests for the metrics subsystem: counter/gauge/histogram semantics,
// registry snapshots, snapshot merge (the cluster-wide aggregation), wire
// round-trips and the text/JSON exports.
#include <gtest/gtest.h>

#include "runtime/metrics.hpp"
#include "runtime/site_status.hpp"

namespace sdvm::metrics {
namespace {

TEST(CounterTest, ActsLikeAnInteger) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  ++c;
  c++;
  c += 5;
  EXPECT_EQ(c.value(), 7u);
  std::uint64_t as_int = c;  // implicit read (legacy call sites)
  EXPECT_EQ(as_int, 7u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(HistogramTest, BucketsByLatencyClass) {
  Histogram h;
  h.record(1'000);            // <= 10us  -> bucket 0
  h.record(10'000);           // boundary is inclusive -> bucket 0
  h.record(10'001);           // -> bucket 1
  h.record(500'000'000);      // 500ms -> bucket 5
  h.record(60'000'000'000);   // 60s -> overflow bucket 7
  h.record(-5);               // clamped to 0 -> bucket 0
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.counts()[0], 3u);
  EXPECT_EQ(h.counts()[1], 1u);
  EXPECT_EQ(h.counts()[5], 1u);
  EXPECT_EQ(h.counts()[7], 1u);
  EXPECT_EQ(h.sum(), 1'000u + 10'000u + 10'001u + 500'000'000u +
                         60'000'000'000u + 0u);
}

TEST(RegistryTest, SnapshotMaterializesEveryKind) {
  MetricsRegistry reg;
  Counter c;
  c += 3;
  Histogram h;
  h.record(42);
  std::int64_t depth = 9;
  reg.register_counter("a.counter", &c);
  reg.register_gauge("b.gauge", [&depth] { return depth; });
  reg.register_histogram("c.hist", &h);
  reg.register_provider([](MetricsSnapshot& s) {
    s.add_counter("d.dynamic", 11);
  });

  MetricsSnapshot s = reg.snapshot();
  EXPECT_EQ(s.counter("a.counter"), 3u);
  EXPECT_EQ(s.gauge_value("b.gauge"), 9);
  const MetricValue* hv = s.find("c.hist");
  ASSERT_NE(hv, nullptr);
  EXPECT_EQ(hv->kind, Kind::kHistogram);
  EXPECT_EQ(hv->count, 1u);
  EXPECT_EQ(s.counter("d.dynamic"), 11u);
  // Absent names read as zero, not as errors.
  EXPECT_EQ(s.counter("nope"), 0u);
  // Gauges re-sample through the probe at every snapshot.
  depth = 2;
  EXPECT_EQ(reg.snapshot().gauge_value("b.gauge"), 2);
  // Static catalog is sorted and excludes provider-emitted names.
  EXPECT_EQ(reg.names(),
            (std::vector<std::string>{"a.counter", "b.gauge", "c.hist"}));
}

TEST(SnapshotTest, ValuesStaySortedByName) {
  MetricsSnapshot s;
  s.add_counter("zz", 1);
  s.add_counter("aa", 2);
  s.add_gauge("mm", 3);
  ASSERT_EQ(s.values.size(), 3u);
  EXPECT_EQ(s.values[0].name, "aa");
  EXPECT_EQ(s.values[1].name, "mm");
  EXPECT_EQ(s.values[2].name, "zz");
}

TEST(SnapshotTest, MergeAddsElementWise) {
  Histogram h1, h2;
  h1.record(5'000);          // bucket 0
  h2.record(5'000);          // bucket 0
  h2.record(200'000'000);    // bucket 5

  MetricsSnapshot a;
  a.add_counter("shared.counter", 10);
  a.add_counter("only.a", 1);
  a.add_gauge("shared.gauge", 4);
  a.add_histogram("shared.hist", h1);

  MetricsSnapshot b;
  b.add_counter("shared.counter", 32);
  b.add_counter("only.b", 7);
  b.add_gauge("shared.gauge", -1);
  b.add_histogram("shared.hist", h2);

  a.merge(b);
  EXPECT_EQ(a.counter("shared.counter"), 42u);
  EXPECT_EQ(a.counter("only.a"), 1u);
  EXPECT_EQ(a.counter("only.b"), 7u);
  EXPECT_EQ(a.gauge_value("shared.gauge"), 3);
  const MetricValue* hv = a.find("shared.hist");
  ASSERT_NE(hv, nullptr);
  EXPECT_EQ(hv->count, 3u);
  EXPECT_EQ(hv->buckets[0], 2u);
  EXPECT_EQ(hv->buckets[5], 1u);
  EXPECT_EQ(hv->sum, 200'010'000u);
}

TEST(SnapshotTest, MergeIsAssociativeOnCounters) {
  auto snap = [](std::uint64_t v) {
    MetricsSnapshot s;
    s.add_counter("x", v);
    return s;
  };
  MetricsSnapshot left = snap(1);
  left.merge(snap(2));
  left.merge(snap(3));
  MetricsSnapshot right = snap(2);
  right.merge(snap(3));
  MetricsSnapshot outer = snap(1);
  outer.merge(right);
  EXPECT_EQ(left, outer);
}

TEST(SnapshotTest, WireRoundTrip) {
  Histogram h;
  h.record(123);
  h.record(77'000'000);
  MetricsSnapshot s;
  s.add_counter("sched.frames_enqueued", 1234);
  s.add_gauge("mem.frames", -3);
  s.add_histogram("proc.runtime_ns", h);

  ByteWriter w;
  s.serialize(w);
  auto bytes = w.take();
  ByteReader r(bytes);
  auto back = MetricsSnapshot::deserialize(r);
  ASSERT_TRUE(back.is_ok()) << back.status().to_string();
  EXPECT_EQ(back.value(), s);
}

TEST(SnapshotTest, DeserializeRejectsTruncation) {
  MetricsSnapshot s;
  s.add_counter("a", 1);
  s.add_counter("b", 2);
  ByteWriter w;
  s.serialize(w);
  auto bytes = w.take();
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    std::vector<std::byte> prefix(bytes.begin(),
                                  bytes.begin() + static_cast<long>(cut));
    ByteReader r(prefix);
    auto res = MetricsSnapshot::deserialize(r);
    EXPECT_FALSE(res.is_ok()) << "cut at " << cut;
  }
}

TEST(SnapshotTest, TextAndJsonExports) {
  Histogram h;
  h.record(3'000);
  MetricsSnapshot s;
  s.add_counter("msg.sent", 17);
  s.add_gauge("sched.ready_depth", 2);
  s.add_histogram("proc.runtime_ns", h);

  std::string text = s.to_text("  ");
  EXPECT_NE(text.find("msg.sent"), std::string::npos);
  EXPECT_NE(text.find("17"), std::string::npos);
  EXPECT_NE(text.find("proc.runtime_ns"), std::string::npos);

  std::string json = s.to_json();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"msg.sent\""), std::string::npos);
  EXPECT_NE(json.find("\"sched.ready_depth\""), std::string::npos);
}

TEST(JsonEscapeTest, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb"), "a\\nb");
  EXPECT_EQ(json_escape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST(SiteStatusTest, WireRoundTrip) {
  SiteStatus s;
  s.id = 3;
  s.name = "site3";
  s.platform = "x86-linux";
  s.speed = 2.5;
  s.joined = true;
  s.code_site = true;
  s.cluster_size = 4;
  s.load.queued_frames = 7;
  s.load.running = 1;
  s.load.programs = 2;
  s.load.executed_total = 901;
  s.active_programs = {ProgramId(11), ProgramId(12)};
  s.ledger[ProgramId(11)] = AccountEntry{5, 1000, 2000};
  s.metrics.add_counter("proc.executed", 901);

  ByteWriter w;
  s.serialize(w);
  auto bytes = w.take();
  ByteReader r(bytes);
  auto back = SiteStatus::deserialize(r);
  ASSERT_TRUE(back.is_ok()) << back.status().to_string();
  const SiteStatus& b = back.value();
  EXPECT_EQ(b.id, 3u);
  EXPECT_EQ(b.name, "site3");
  EXPECT_EQ(b.platform, "x86-linux");
  EXPECT_DOUBLE_EQ(b.speed, 2.5);
  EXPECT_TRUE(b.joined);
  EXPECT_FALSE(b.signed_off);
  EXPECT_TRUE(b.code_site);
  EXPECT_EQ(b.cluster_size, 4u);
  EXPECT_EQ(b.load.executed_total, 901u);
  EXPECT_EQ(b.active_programs,
            (std::vector<ProgramId>{ProgramId(11), ProgramId(12)}));
  ASSERT_EQ(b.ledger.count(ProgramId(11)), 1u);
  EXPECT_EQ(b.ledger.at(ProgramId(11)).vm_instructions, 1000u);
  EXPECT_EQ(b.metrics, s.metrics);
}

TEST(ClusterStatusTest, AggregateAndBill) {
  ClusterStatus cs;
  cs.queried_from = 1;
  SiteStatus a;
  a.id = 1;
  a.metrics.add_counter("proc.executed", 10);
  a.ledger[ProgramId(5)] = AccountEntry{1, 100, 0};
  SiteStatus b;
  b.id = 2;
  b.metrics.add_counter("proc.executed", 32);
  b.ledger[ProgramId(5)] = AccountEntry{2, 200, 0};
  cs.sites = {a, b};

  EXPECT_EQ(cs.aggregate().counter("proc.executed"), 42u);
  AccountLedger bill = cs.total_ledger();
  ASSERT_EQ(bill.count(ProgramId(5)), 1u);
  EXPECT_EQ(bill.at(ProgramId(5)).microthreads, 3u);
  EXPECT_EQ(bill.at(ProgramId(5)).vm_instructions, 300u);

  EXPECT_NE(cs.to_text().find("2 sites"), std::string::npos);
  std::string json = cs.to_json();
  EXPECT_NE(json.find("\"sites\""), std::string::npos);
  EXPECT_NE(json.find("\"aggregate\""), std::string::npos);
}

}  // namespace
}  // namespace sdvm::metrics
