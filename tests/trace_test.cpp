// Figure 5 of the paper ("The career of microframes") as executable
// assertions: every microframe walks the legal lifecycle
//   created → param* → executable → code-requested → ready → executing →
//   consumed
// (with given-away/adopted detours when help requests move it).
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "api/program_builder.hpp"
#include "apps/primes.hpp"
#include "runtime/context.hpp"
#include "sim/sim_cluster.hpp"

namespace sdvm {
namespace {

using sim::SimCluster;
using Career = std::vector<FrameEvent>;

TEST(FrameCareerTest, SingleFrameFullCareer) {
  SimCluster cluster;
  cluster.add_sites(1);
  std::map<std::uint64_t, Career> careers;
  cluster.site(0).set_frame_trace(
      [&](FrameEvent e, FrameId id, MicrothreadId) {
        careers[id.value].push_back(e);
      });

  auto spec = ProgramBuilder("career")
                  .thread("entry", R"(
                    var c = spawn("work", 2);
                    send(c, 0, 5);
                    send(c, 1, 6);
                  )")
                  .thread("work", R"( out(param(0) + param(1)); exit(0); )")
                  .entry("entry")
                  .build();
  auto pid = cluster.start_program(spec);
  ASSERT_TRUE(pid.is_ok());
  ASSERT_TRUE(cluster.run_program(pid.value(), 60 * kNanosPerSecond).is_ok());

  // Find the two-parameter "work" frame: it has exactly 2 param events.
  const Career* work = nullptr;
  for (const auto& [id, career] : careers) {
    int params = 0;
    for (auto e : career) params += (e == FrameEvent::kParamApplied);
    if (params == 2) work = &career;
  }
  ASSERT_NE(work, nullptr);
  Career expected = {
      FrameEvent::kCreated,          FrameEvent::kParamApplied,
      FrameEvent::kParamApplied,     FrameEvent::kBecameExecutable,
      FrameEvent::kCodeRequested,    FrameEvent::kBecameReady,
      FrameEvent::kExecutionStarted, FrameEvent::kConsumed,
  };
  EXPECT_EQ(*work, expected) << "Figure 5 career violated";
}

TEST(FrameCareerTest, EveryConsumedFrameWalkedALegalPath) {
  SimCluster cluster;
  cluster.add_sites(3);
  std::map<std::uint64_t, Career> careers;
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    cluster.site(i).set_frame_trace(
        [&careers](FrameEvent e, FrameId id, MicrothreadId) {
          careers[id.value].push_back(e);
        });
  }

  apps::PrimesParams params;
  params.p = 20;
  params.width = 8;
  params.work_mult = 5'000'000;
  auto pid = cluster.start_program(apps::make_primes_program(params));
  ASSERT_TRUE(pid.is_ok());
  ASSERT_TRUE(cluster.run_program(pid.value(), 600 * kNanosPerSecond).is_ok());

  int consumed = 0, travelled = 0;
  for (const auto& [id, career] : careers) {
    ASSERT_FALSE(career.empty());
    // Local frames start with Created; imported ones with Adopted.
    EXPECT_TRUE(career.front() == FrameEvent::kCreated ||
                career.front() == FrameEvent::kAdopted);
    bool saw_consumed = false;
    bool saw_executable = false;
    for (std::size_t i = 0; i < career.size(); ++i) {
      FrameEvent e = career[i];
      if (e == FrameEvent::kBecameExecutable) saw_executable = true;
      if (e == FrameEvent::kExecutionStarted) {
        EXPECT_TRUE(saw_executable)
            << "frame " << id << " executed before its firing rule";
      }
      if (e == FrameEvent::kConsumed) {
        saw_consumed = true;
        EXPECT_EQ(i, career.size() - 1)
            << "frame " << id << " had events after consumption";
      }
      if (e == FrameEvent::kGivenAway) ++travelled;
    }
    if (saw_consumed) ++consumed;
    // No double consumption anywhere (merged careers across sites share
    // the frame id, so a duplicate execution would show twice).
    int consumed_count = 0;
    for (auto e : career) consumed_count += (e == FrameEvent::kConsumed);
    EXPECT_LE(consumed_count, 1) << "frame " << id << " consumed twice";
  }
  EXPECT_GT(consumed, 20);
  EXPECT_GT(travelled, 0) << "no frame ever migrated in a 3-site run";
}

}  // namespace
}  // namespace sdvm
