// Crash management: heartbeat failure detection, coordinated
// checkpointing, rollback recovery, and home-site takeover from the
// checkpoint replica — all in sim mode with deterministic fault injection.
#include <gtest/gtest.h>

#include "test_util.hpp"

#include "api/program_builder.hpp"
#include "apps/primes.hpp"
#include "runtime/context.hpp"
#include "sim/sim_cluster.hpp"

namespace sdvm {
namespace {

using sim::SimCluster;

SiteConfig checkpointing_config() {
  SiteConfig cfg;
  cfg.checkpoints_enabled = true;
  cfg.checkpoint_interval = kNanosPerSecond / 2;  // aggressive: every 0.5 s
  cfg.heartbeat_interval = 100'000'000;           // 100 ms
  cfg.failure_timeout = 400'000'000;              // 400 ms
  return cfg;
}

apps::PrimesParams long_job() {
  apps::PrimesParams p;
  p.p = 60;
  p.width = 8;
  p.work_mult = 30'000'000;  // ~30 ms per candidate: several seconds total
  return p;
}

TEST(CrashTest, CheckpointsCommitDuringRun) {
  SimCluster cluster;
  cluster.add_sites(3, 1.0, checkpointing_config());
  auto pid = cluster.start_program(apps::make_primes_program(long_job()));
  ASSERT_TRUE(pid.is_ok());
  auto code = cluster.run_program(pid.value(), 3000 * kNanosPerSecond);
  ASSERT_TRUE(code.is_ok()) << code.status().to_string();
  EXPECT_GT(cluster.site(0).crash().checkpoints_committed, 0u);
  testing_util::expect_primes_verdict(cluster.outputs(0, pid.value()), 60, 8);
}

TEST(CrashTest, FailureDetectorFindsDeadSite) {
  SimCluster cluster;
  cluster.add_sites(3, 1.0, checkpointing_config());
  cluster.kill(2);
  // Heartbeats stop; within a few timeouts everyone marks site 3 dead.
  cluster.loop().run_for(3 * kNanosPerSecond);
  const SiteInfo* info = cluster.site(0).cluster().find(3);
  ASSERT_NE(info, nullptr);
  EXPECT_FALSE(info->alive);
}

TEST(CrashTest, WorkerCrashRecoversFromCheckpoint) {
  SimCluster cluster;
  cluster.add_sites(4, 1.0, checkpointing_config());
  auto pid = cluster.start_program(apps::make_primes_program(long_job()));
  ASSERT_TRUE(pid.is_ok());

  // Run long enough for at least one checkpoint, then kill a worker.
  cluster.loop().run_for(2 * kNanosPerSecond);
  ASSERT_GT(cluster.site(0).crash().checkpoints_committed, 0u)
      << "no checkpoint before the crash — test setup too fast";
  cluster.kill(2);

  auto code = cluster.run_program(pid.value(), 3000 * kNanosPerSecond);
  ASSERT_TRUE(code.is_ok()) << code.status().to_string();
  EXPECT_GE(cluster.site(0).crash().recoveries, 1u);
  // The answer is still correct (outputs may contain duplicates from
  // re-executed rounds; the final line is the verdict).
  testing_util::expect_primes_verdict(cluster.outputs(0, pid.value()), 60, 8);
}

TEST(CrashTest, HomeSiteCrashBackupTakesOver) {
  SimCluster cluster;
  cluster.add_sites(4, 1.0, checkpointing_config());
  auto pid = cluster.start_program(apps::make_primes_program(long_job()));
  ASSERT_TRUE(pid.is_ok());

  cluster.loop().run_for(2 * kNanosPerSecond);
  ASSERT_GT(cluster.site(0).crash().checkpoints_committed, 0u);
  // Kill the home/coordinator site itself.
  cluster.kill(0);

  auto code = cluster.run_program(pid.value(), 6000 * kNanosPerSecond);
  ASSERT_TRUE(code.is_ok()) << code.status().to_string();

  // The replica holder (lowest surviving id) became the new home and
  // collected the final output.
  bool someone_recovered = false;
  for (std::size_t i = 1; i < cluster.size(); ++i) {
    someone_recovered |= cluster.site(i).crash().recoveries > 0;
  }
  EXPECT_TRUE(someone_recovered);
  bool verdict_seen = false;
  for (std::size_t i = 1; i < cluster.size(); ++i) {
    auto out = cluster.outputs(i, pid.value());
    if (!out.empty() && std::stoll(out.back()) >= 60) verdict_seen = true;
  }
  EXPECT_TRUE(verdict_seen) << "no surviving site collected the result";
}

TEST(CrashTest, CrashBeforeFirstCheckpointRestartsFromEpochZero) {
  // A site dies before any checkpoint committed: nothing to roll back to,
  // so the coordinator restarts the program from its entry frame instead
  // of letting it hang with lost frames.
  SimCluster cluster;
  SiteConfig cfg = checkpointing_config();
  cfg.checkpoint_interval = 30 * kNanosPerSecond;  // "never" within the run
  cluster.add_sites(4, 1.0, cfg);
  apps::PrimesParams job = long_job();
  job.p = 40;
  auto pid = cluster.start_program(apps::make_primes_program(job));
  ASSERT_TRUE(pid.is_ok());

  cluster.loop().run_for(kNanosPerSecond);
  ASSERT_EQ(cluster.site(0).crash().checkpoints_committed, 0u);
  cluster.kill(2);

  auto code = cluster.run_program(pid.value(), 3000 * kNanosPerSecond);
  ASSERT_TRUE(code.is_ok()) << code.status().to_string();
  EXPECT_GE(cluster.site(0).crash().recoveries, 1u);
  testing_util::expect_primes_verdict(cluster.outputs(0, pid.value()), 40, 8);
}

TEST(CrashTest, CrashWithoutCheckpointsNoRecovery) {
  // Checkpoints disabled: a death is detected but nothing is restored.
  SimCluster cluster;
  SiteConfig cfg = checkpointing_config();
  cfg.checkpoints_enabled = false;
  cluster.add_sites(3, 1.0, cfg);
  auto pid = cluster.start_program(apps::make_primes_program(long_job()));
  ASSERT_TRUE(pid.is_ok());
  cluster.loop().run_for(kNanosPerSecond);
  cluster.kill(2);
  cluster.loop().run_for(3 * kNanosPerSecond);
  EXPECT_EQ(cluster.site(0).crash().recoveries, 0u);
}

TEST(CrashTest, RepeatedCrashesStillFinish) {
  SimCluster cluster;
  cluster.add_sites(5, 1.0, checkpointing_config());
  apps::PrimesParams job = long_job();
  job.p = 150;  // long enough to survive two mid-run crashes
  auto pid = cluster.start_program(apps::make_primes_program(job));
  ASSERT_TRUE(pid.is_ok());

  cluster.loop().run_for(2 * kNanosPerSecond);
  ASSERT_GT(cluster.site(0).crash().checkpoints_committed, 0u);
  cluster.kill(4);
  cluster.loop().run_for(2 * kNanosPerSecond);
  cluster.kill(3);

  auto code = cluster.run_program(pid.value(), 9000 * kNanosPerSecond);
  ASSERT_TRUE(code.is_ok()) << code.status().to_string();
  testing_util::expect_primes_verdict(cluster.outputs(0, pid.value()), 150, 8);
  EXPECT_GE(cluster.site(0).crash().recoveries, 2u);
}

}  // namespace
}  // namespace sdvm
