// Tests for the .sdvm program file format used by the frontend tools.
#include <gtest/gtest.h>

#include "api/program_file.hpp"

namespace sdvm {
namespace {

constexpr const char* kGood = R"(#program demo
#entry main
#args 7 8
#thread main
var w = spawn("worker", 1);
send(w, 0, arg(0) + arg(1));
#thread worker
out(param(0));
exit(0);
)";

TEST(ProgramFileTest, ParsesFullProgram) {
  auto spec = parse_program_file(kGood);
  ASSERT_TRUE(spec.is_ok()) << spec.status().to_string();
  EXPECT_EQ(spec.value().name, "demo");
  EXPECT_EQ(spec.value().entry, "main");
  EXPECT_EQ(spec.value().args, (std::vector<std::int64_t>{7, 8}));
  ASSERT_EQ(spec.value().threads.size(), 2u);
  EXPECT_EQ(spec.value().threads[0].name, "main");
  EXPECT_NE(spec.value().threads[1].source.find("out(param(0))"),
            std::string::npos);
}

TEST(ProgramFileTest, DefaultsNameAndEntry) {
  auto spec = parse_program_file("#thread only\nout(1); exit(0);\n");
  ASSERT_TRUE(spec.is_ok());
  EXPECT_EQ(spec.value().name, "unnamed");
  EXPECT_EQ(spec.value().entry, "only");
}

TEST(ProgramFileTest, RejectsSourceOutsideThread) {
  auto r = parse_program_file("var x = 1;\n#thread t\nout(1);\n");
  ASSERT_FALSE(r.is_ok());
  EXPECT_NE(r.status().message().find("line 1"), std::string::npos);
}

TEST(ProgramFileTest, RejectsUnknownDirective) {
  EXPECT_FALSE(parse_program_file("#frobnicate\n").is_ok());
}

TEST(ProgramFileTest, RejectsMissingEntryThread) {
  EXPECT_FALSE(
      parse_program_file("#entry nope\n#thread t\nout(1);\n").is_ok());
}

TEST(ProgramFileTest, RejectsEmptyFile) {
  EXPECT_FALSE(parse_program_file("").is_ok());
  EXPECT_FALSE(parse_program_file("#program x\n").is_ok());
}

TEST(ProgramFileTest, RejectsBrokenMicroC) {
  auto r = parse_program_file("#thread t\nvar x = ;\n");
  ASSERT_FALSE(r.is_ok());
  EXPECT_NE(r.status().message().find("microthread 't'"), std::string::npos);
}

TEST(ProgramFileTest, FormatRoundTrip) {
  auto spec = parse_program_file(kGood);
  ASSERT_TRUE(spec.is_ok());
  auto text = format_program_file(spec.value());
  ASSERT_TRUE(text.is_ok()) << text.status().to_string();
  auto again = parse_program_file(text.value());
  ASSERT_TRUE(again.is_ok()) << again.status().to_string();
  EXPECT_EQ(again.value().name, spec.value().name);
  EXPECT_EQ(again.value().entry, spec.value().entry);
  EXPECT_EQ(again.value().args, spec.value().args);
  ASSERT_EQ(again.value().threads.size(), spec.value().threads.size());
  for (std::size_t i = 0; i < again.value().threads.size(); ++i) {
    EXPECT_EQ(again.value().threads[i].name, spec.value().threads[i].name);
  }
}

TEST(ProgramFileTest, FormatRejectsNativeThreads) {
  ProgramSpec spec;
  spec.name = "n";
  spec.entry = "t";
  MicrothreadSpec t;
  t.name = "t";
  t.native = [](Context&) {};
  spec.threads.push_back(std::move(t));
  EXPECT_FALSE(format_program_file(spec).is_ok());
}

}  // namespace
}  // namespace sdvm
