// Unit tests for runtime data types and single-manager behaviours that
// don't need a full cluster: microframes, SDMessages, the security
// manager's wire format, program info, id allocation strategies.
#include <gtest/gtest.h>

#include "runtime/cluster_info.hpp"
#include "runtime/frame.hpp"
#include "runtime/message.hpp"
#include "runtime/program.hpp"
#include "runtime/security_manager.hpp"

namespace sdvm {
namespace {

TEST(MicroframeTest, FiringRule) {
  Microframe f(FrameId(1, 7), ProgramId(1, 1), 3, /*nparams=*/2);
  EXPECT_FALSE(f.executable());
  EXPECT_EQ(f.missing(), 2u);
  ASSERT_TRUE(f.apply(0, to_bytes(std::int64_t{10})).is_ok());
  EXPECT_FALSE(f.executable());
  ASSERT_TRUE(f.apply(1, to_bytes(std::int64_t{20})).is_ok());
  EXPECT_TRUE(f.executable());
  EXPECT_EQ(f.param_int(0), 10);
  EXPECT_EQ(f.param_int(1), 20);
}

TEST(MicroframeTest, ZeroParamFrameExecutableImmediately) {
  Microframe f(FrameId(1, 1), ProgramId(1, 1), 0, 0);
  EXPECT_TRUE(f.executable());
}

TEST(MicroframeTest, DoubleFillRejected) {
  Microframe f(FrameId(1, 1), ProgramId(1, 1), 0, 1);
  ASSERT_TRUE(f.apply(0, to_bytes(std::int64_t{1})).is_ok());
  Status st = f.apply(0, to_bytes(std::int64_t{2}));
  EXPECT_EQ(st.code(), ErrorCode::kAlreadyExists);
  EXPECT_EQ(f.param_int(0), 1) << "original value must be preserved";
}

TEST(MicroframeTest, OutOfRangeSlotRejected) {
  Microframe f(FrameId(1, 1), ProgramId(1, 1), 0, 2);
  EXPECT_EQ(f.apply(2, {}).code(), ErrorCode::kInvalidArgument);
}

TEST(MicroframeTest, SerializationPreservesPartialFill) {
  Microframe f(FrameId(3, 99), ProgramId(2, 5), 7, 3, /*prio=*/42);
  ASSERT_TRUE(f.apply(1, to_bytes(std::int64_t{-7})).is_ok());
  ByteWriter w;
  f.serialize(w);
  ByteReader r(w.bytes());
  auto back = Microframe::deserialize(r);
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value().id, f.id);
  EXPECT_EQ(back.value().program, f.program);
  EXPECT_EQ(back.value().thread, 7u);
  EXPECT_EQ(back.value().priority, 42);
  EXPECT_EQ(back.value().missing(), 2u);
  EXPECT_EQ(back.value().param_int(1), -7);
}

TEST(SdMessageTest, BodyRoundTrip) {
  SdMessage m;
  m.src = 3;
  m.dst = 9;
  m.src_mgr = ManagerId::kScheduling;
  m.dst_mgr = ManagerId::kCode;
  m.type = MsgType::kCodeRequest;
  m.program = ProgramId(3, 1);
  m.seq = 12345;
  m.reply_to = 99;
  m.payload = to_bytes(std::int64_t{-1});

  auto body = m.serialize_body();
  auto back = SdMessage::deserialize_body(3, 9, body);
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value().src_mgr, ManagerId::kScheduling);
  EXPECT_EQ(back.value().dst_mgr, ManagerId::kCode);
  EXPECT_EQ(back.value().type, MsgType::kCodeRequest);
  EXPECT_EQ(back.value().program, ProgramId(3, 1));
  EXPECT_EQ(back.value().seq, 12345u);
  EXPECT_EQ(back.value().reply_to, 99u);
  EXPECT_EQ(back.value().payload, to_bytes(std::int64_t{-1}));
}

TEST(SdMessageTest, TruncatedBodyRejected) {
  SdMessage m;
  m.type = MsgType::kHeartbeat;
  auto body = m.serialize_body();
  body.resize(body.size() / 2);
  EXPECT_FALSE(SdMessage::deserialize_body(1, 2, body).is_ok());
}

SdMessage sample_message() {
  SdMessage m;
  m.src = 1;
  m.dst = 2;
  m.src_mgr = m.dst_mgr = ManagerId::kScheduling;
  m.type = MsgType::kHelpRequest;
  m.seq = 7;
  m.payload = to_bytes(std::int64_t{42});
  return m;
}

TEST(SecurityManagerTest, PlaintextRoundTrip) {
  SiteConfig cfg;
  cfg.encrypt = false;
  SecurityManager a(cfg), b(cfg);
  a.set_local_site(1);
  b.set_local_site(2);
  auto wire = a.protect(sample_message());
  auto back = b.unprotect(wire);
  ASSERT_TRUE(back.is_ok()) << back.status().to_string();
  EXPECT_EQ(back.value().type, MsgType::kHelpRequest);
  EXPECT_EQ(back.value().src, 1u);
  EXPECT_EQ(back.value().dst, 2u);
}

TEST(SecurityManagerTest, EncryptedRoundTrip) {
  SiteConfig cfg;
  cfg.encrypt = true;
  cfg.cluster_password = "pw";
  SecurityManager a(cfg), b(cfg);
  a.set_local_site(1);
  b.set_local_site(2);
  auto wire = a.protect(sample_message());
  auto back = b.unprotect(wire);
  ASSERT_TRUE(back.is_ok()) << back.status().to_string();
  EXPECT_EQ(back.value().payload, to_bytes(std::int64_t{42}));
  EXPECT_EQ(a.sealed_count, 1u);
  EXPECT_EQ(b.opened_count, 1u);
}

TEST(SecurityManagerTest, EncryptedPayloadNotVisibleOnWire) {
  SiteConfig cfg;
  cfg.encrypt = true;
  cfg.cluster_password = "pw";
  SecurityManager a(cfg);
  a.set_local_site(1);
  SdMessage m = sample_message();
  m.payload = std::vector<std::byte>(32, std::byte{0xAB});
  auto wire = a.protect(m);
  int count = 0;
  for (auto b : wire) count += (b == std::byte{0xAB});
  EXPECT_LT(count, 8) << "payload pattern leaked through encryption";
}

TEST(SecurityManagerTest, WrongPasswordRejected) {
  SiteConfig good;
  good.encrypt = true;
  good.cluster_password = "right";
  SiteConfig bad = good;
  bad.cluster_password = "wrong";
  SecurityManager a(good), b(bad);
  a.set_local_site(1);
  b.set_local_site(2);
  auto wire = a.protect(sample_message());
  EXPECT_FALSE(b.unprotect(wire).is_ok());
  EXPECT_EQ(b.rejected_count, 1u);
}

TEST(SecurityManagerTest, PlaintextRejectedOnEncryptedCluster) {
  SiteConfig plain;
  plain.encrypt = false;
  SiteConfig enc;
  enc.encrypt = true;
  SecurityManager a(plain), b(enc);
  a.set_local_site(1);
  b.set_local_site(2);
  auto wire = a.protect(sample_message());
  EXPECT_FALSE(b.unprotect(wire).is_ok());
}

TEST(SecurityManagerTest, TamperedWireRejected) {
  SiteConfig cfg;
  cfg.encrypt = true;
  SecurityManager a(cfg), b(cfg);
  a.set_local_site(1);
  b.set_local_site(2);
  auto wire = a.protect(sample_message());
  wire[wire.size() - 3] ^= std::byte{0x01};
  EXPECT_FALSE(b.unprotect(wire).is_ok());
}

TEST(SecurityManagerTest, ShortFrameRejected) {
  SiteConfig cfg;
  SecurityManager a(cfg);
  EXPECT_FALSE(a.unprotect(std::vector<std::byte>(4)).is_ok());
}

TEST(ProgramInfoTest, RoundTripAndLookup) {
  ProgramInfo info;
  info.id = ProgramId(4, 9);
  info.name = "primes";
  info.home_site = 4;
  info.thread_names = {"entry", "round", "test", "merge"};
  info.args = {100, 10, 5};
  ByteWriter w;
  info.serialize(w);
  ByteReader r(w.bytes());
  auto back = ProgramInfo::deserialize(r);
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value().name, "primes");
  EXPECT_EQ(back.value().args.size(), 3u);
  auto tid = back.value().thread_by_name("test");
  ASSERT_TRUE(tid.has_value());
  EXPECT_EQ(*tid, 2u);
  EXPECT_FALSE(back.value().thread_by_name("nope").has_value());
}

TEST(NativeRegistryTest, RegisterFindClear) {
  auto& reg = NativeRegistry::instance();
  bool ran = false;
  reg.register_fn("prog-x", "t1", [&ran](Context&) { ran = true; });
  auto fn = reg.find("prog-x", "t1");
  ASSERT_NE(fn, nullptr);
  EXPECT_EQ(reg.find("prog-x", "t2"), nullptr);
  EXPECT_EQ(reg.find("prog-y", "t1"), nullptr);
  reg.clear_program("prog-x");
  EXPECT_EQ(reg.find("prog-x", "t1"), nullptr);
}

TEST(SiteInfoTest, SerializationRoundTrip) {
  SiteInfo s;
  s.id = 12;
  s.address = "127.0.0.1:9999";
  s.name = "worker-12";
  s.platform = "hpux-parisc";
  s.speed = 2.5;
  s.load.queued_frames = 7;
  s.load.executed_total = 1234;
  s.version = 42;
  s.alive = false;
  s.successor = 3;
  ByteWriter w;
  s.serialize(w);
  ByteReader r(w.bytes());
  auto back = SiteInfo::deserialize(r);
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value().id, 12u);
  EXPECT_EQ(back.value().platform, "hpux-parisc");
  EXPECT_DOUBLE_EQ(back.value().speed, 2.5);
  EXPECT_EQ(back.value().load.queued_frames, 7u);
  EXPECT_EQ(back.value().version, 42u);
  EXPECT_FALSE(back.value().alive);
  EXPECT_EQ(back.value().successor, 3u);
}

}  // namespace
}  // namespace sdvm
