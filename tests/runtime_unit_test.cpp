// Unit tests for runtime data types and single-manager behaviours that
// don't need a full cluster: microframes, SDMessages, the security
// manager's wire format, program info, id allocation strategies.
#include <gtest/gtest.h>

#include "runtime/cluster_info.hpp"
#include "runtime/frame.hpp"
#include "runtime/message.hpp"
#include "runtime/program.hpp"
#include "runtime/security_manager.hpp"
#include "runtime/shard_map.hpp"

namespace sdvm {
namespace {

TEST(MicroframeTest, FiringRule) {
  Microframe f(FrameId(1, 7), ProgramId(1, 1), 3, /*nparams=*/2);
  EXPECT_FALSE(f.executable());
  EXPECT_EQ(f.missing(), 2u);
  ASSERT_TRUE(f.apply(0, to_bytes(std::int64_t{10})).is_ok());
  EXPECT_FALSE(f.executable());
  ASSERT_TRUE(f.apply(1, to_bytes(std::int64_t{20})).is_ok());
  EXPECT_TRUE(f.executable());
  EXPECT_EQ(f.param_int(0), 10);
  EXPECT_EQ(f.param_int(1), 20);
}

TEST(MicroframeTest, ZeroParamFrameExecutableImmediately) {
  Microframe f(FrameId(1, 1), ProgramId(1, 1), 0, 0);
  EXPECT_TRUE(f.executable());
}

TEST(MicroframeTest, DoubleFillRejected) {
  Microframe f(FrameId(1, 1), ProgramId(1, 1), 0, 1);
  ASSERT_TRUE(f.apply(0, to_bytes(std::int64_t{1})).is_ok());
  Status st = f.apply(0, to_bytes(std::int64_t{2}));
  EXPECT_EQ(st.code(), ErrorCode::kAlreadyExists);
  EXPECT_EQ(f.param_int(0), 1) << "original value must be preserved";
}

TEST(MicroframeTest, OutOfRangeSlotRejected) {
  Microframe f(FrameId(1, 1), ProgramId(1, 1), 0, 2);
  EXPECT_EQ(f.apply(2, {}).code(), ErrorCode::kInvalidArgument);
}

TEST(MicroframeTest, SerializationPreservesPartialFill) {
  Microframe f(FrameId(3, 99), ProgramId(2, 5), 7, 3, /*prio=*/42);
  ASSERT_TRUE(f.apply(1, to_bytes(std::int64_t{-7})).is_ok());
  ByteWriter w;
  f.serialize(w);
  ByteReader r(w.bytes());
  auto back = Microframe::deserialize(r);
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value().id, f.id);
  EXPECT_EQ(back.value().program, f.program);
  EXPECT_EQ(back.value().thread, 7u);
  EXPECT_EQ(back.value().priority, 42);
  EXPECT_EQ(back.value().missing(), 2u);
  EXPECT_EQ(back.value().param_int(1), -7);
}

TEST(SdMessageTest, BodyRoundTrip) {
  SdMessage m;
  m.src = 3;
  m.dst = 9;
  m.src_mgr = ManagerId::kScheduling;
  m.dst_mgr = ManagerId::kCode;
  m.type = MsgType::kCodeRequest;
  m.program = ProgramId(3, 1);
  m.seq = 12345;
  m.reply_to = 99;
  m.payload = to_bytes(std::int64_t{-1});

  auto body = m.serialize_body();
  auto back = SdMessage::deserialize_body(3, 9, body);
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value().src_mgr, ManagerId::kScheduling);
  EXPECT_EQ(back.value().dst_mgr, ManagerId::kCode);
  EXPECT_EQ(back.value().type, MsgType::kCodeRequest);
  EXPECT_EQ(back.value().program, ProgramId(3, 1));
  EXPECT_EQ(back.value().seq, 12345u);
  EXPECT_EQ(back.value().reply_to, 99u);
  EXPECT_EQ(back.value().payload, to_bytes(std::int64_t{-1}));
}

TEST(SdMessageTest, TruncatedBodyRejected) {
  SdMessage m;
  m.type = MsgType::kHeartbeat;
  auto body = m.serialize_body();
  body.resize(body.size() / 2);
  EXPECT_FALSE(SdMessage::deserialize_body(1, 2, body).is_ok());
}

SdMessage sample_message() {
  SdMessage m;
  m.src = 1;
  m.dst = 2;
  m.src_mgr = m.dst_mgr = ManagerId::kScheduling;
  m.type = MsgType::kHelpRequest;
  m.seq = 7;
  m.payload = to_bytes(std::int64_t{42});
  return m;
}

TEST(SecurityManagerTest, PlaintextRoundTrip) {
  SiteConfig cfg;
  cfg.encrypt = false;
  SecurityManager a(cfg), b(cfg);
  a.set_local_site(1);
  b.set_local_site(2);
  auto wire = a.protect(sample_message());
  auto back = b.unprotect(wire);
  ASSERT_TRUE(back.is_ok()) << back.status().to_string();
  EXPECT_EQ(back.value().type, MsgType::kHelpRequest);
  EXPECT_EQ(back.value().src, 1u);
  EXPECT_EQ(back.value().dst, 2u);
}

TEST(SecurityManagerTest, EncryptedRoundTrip) {
  SiteConfig cfg;
  cfg.encrypt = true;
  cfg.cluster_password = "pw";
  SecurityManager a(cfg), b(cfg);
  a.set_local_site(1);
  b.set_local_site(2);
  auto wire = a.protect(sample_message());
  auto back = b.unprotect(wire);
  ASSERT_TRUE(back.is_ok()) << back.status().to_string();
  EXPECT_EQ(back.value().payload, to_bytes(std::int64_t{42}));
  EXPECT_EQ(a.sealed_count, 1u);
  EXPECT_EQ(b.opened_count, 1u);
}

TEST(SecurityManagerTest, EncryptedPayloadNotVisibleOnWire) {
  SiteConfig cfg;
  cfg.encrypt = true;
  cfg.cluster_password = "pw";
  SecurityManager a(cfg);
  a.set_local_site(1);
  SdMessage m = sample_message();
  m.payload = std::vector<std::byte>(32, std::byte{0xAB});
  auto wire = a.protect(m);
  int count = 0;
  for (auto b : wire) count += (b == std::byte{0xAB});
  EXPECT_LT(count, 8) << "payload pattern leaked through encryption";
}

TEST(SecurityManagerTest, WrongPasswordRejected) {
  SiteConfig good;
  good.encrypt = true;
  good.cluster_password = "right";
  SiteConfig bad = good;
  bad.cluster_password = "wrong";
  SecurityManager a(good), b(bad);
  a.set_local_site(1);
  b.set_local_site(2);
  auto wire = a.protect(sample_message());
  EXPECT_FALSE(b.unprotect(wire).is_ok());
  EXPECT_EQ(b.rejected_count, 1u);
}

TEST(SecurityManagerTest, PlaintextRejectedOnEncryptedCluster) {
  SiteConfig plain;
  plain.encrypt = false;
  SiteConfig enc;
  enc.encrypt = true;
  SecurityManager a(plain), b(enc);
  a.set_local_site(1);
  b.set_local_site(2);
  auto wire = a.protect(sample_message());
  EXPECT_FALSE(b.unprotect(wire).is_ok());
}

TEST(SecurityManagerTest, TamperedWireRejected) {
  SiteConfig cfg;
  cfg.encrypt = true;
  SecurityManager a(cfg), b(cfg);
  a.set_local_site(1);
  b.set_local_site(2);
  auto wire = a.protect(sample_message());
  wire[wire.size() - 3] ^= std::byte{0x01};
  EXPECT_FALSE(b.unprotect(wire).is_ok());
}

TEST(SecurityManagerTest, ShortFrameRejected) {
  SiteConfig cfg;
  SecurityManager a(cfg);
  EXPECT_FALSE(a.unprotect(std::vector<std::byte>(4)).is_ok());
}

TEST(ProgramInfoTest, RoundTripAndLookup) {
  ProgramInfo info;
  info.id = ProgramId(4, 9);
  info.name = "primes";
  info.home_site = 4;
  info.thread_names = {"entry", "round", "test", "merge"};
  info.args = {100, 10, 5};
  ByteWriter w;
  info.serialize(w);
  ByteReader r(w.bytes());
  auto back = ProgramInfo::deserialize(r);
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value().name, "primes");
  EXPECT_EQ(back.value().args.size(), 3u);
  auto tid = back.value().thread_by_name("test");
  ASSERT_TRUE(tid.has_value());
  EXPECT_EQ(*tid, 2u);
  EXPECT_FALSE(back.value().thread_by_name("nope").has_value());
}

TEST(NativeRegistryTest, RegisterFindClear) {
  auto& reg = NativeRegistry::instance();
  bool ran = false;
  reg.register_fn("prog-x", "t1", [&ran](Context&) { ran = true; });
  auto fn = reg.find("prog-x", "t1");
  ASSERT_NE(fn, nullptr);
  EXPECT_EQ(reg.find("prog-x", "t2"), nullptr);
  EXPECT_EQ(reg.find("prog-y", "t1"), nullptr);
  reg.clear_program("prog-x");
  EXPECT_EQ(reg.find("prog-x", "t1"), nullptr);
}

TEST(SiteInfoTest, SerializationRoundTrip) {
  SiteInfo s;
  s.id = 12;
  s.address = "127.0.0.1:9999";
  s.name = "worker-12";
  s.platform = "hpux-parisc";
  s.speed = 2.5;
  s.load.queued_frames = 7;
  s.load.executed_total = 1234;
  s.version = 42;
  s.alive = false;
  s.successor = 3;
  ByteWriter w;
  s.serialize(w);
  ByteReader r(w.bytes());
  auto back = SiteInfo::deserialize(r);
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value().id, 12u);
  EXPECT_EQ(back.value().platform, "hpux-parisc");
  EXPECT_DOUBLE_EQ(back.value().speed, 2.5);
  EXPECT_EQ(back.value().load.queued_frames, 7u);
  EXPECT_EQ(back.value().version, 42u);
  EXPECT_FALSE(back.value().alive);
  EXPECT_EQ(back.value().successor, 3u);
}

TEST(ShardMapTest, ShardOfIsStableAndInRange) {
  // shard_of must be a pure function of the address — every site computes
  // the same shard with no coordination — and always land in range.
  for (std::uint64_t v : {1ull, 2ull, 0x1234'5678ull, (1ull << 40) + 17,
                          ~0ull}) {
    GlobalAddress a{v};
    std::uint32_t s = shard_of(a);
    EXPECT_LT(s, kNumShards);
    EXPECT_EQ(s, shard_of(a));
  }
}

TEST(ShardMapTest, RendezvousTargetDeterministicAcrossViewOrder) {
  // Two sites with the same membership view must agree on every shard's
  // target regardless of the order their view happens to enumerate in.
  std::vector<SiteId> view = {5, 2, 9, 14, 7};
  std::vector<SiteId> shuffled = {14, 7, 2, 5, 9};
  for (std::uint32_t s = 0; s < kNumShards; ++s) {
    EXPECT_EQ(shard_target(s, view), shard_target(s, shuffled)) << s;
  }
}

TEST(ShardMapTest, RendezvousRemovalOnlyMovesVictimsShards) {
  // Consistent hashing's defining property: removing one site only moves
  // the shards whose argmax it was; everything else keeps its target.
  std::vector<SiteId> before = {1, 2, 3, 4, 5, 6};
  for (SiteId removed : before) {
    std::vector<SiteId> after;
    for (SiteId id : before) {
      if (id != removed) after.push_back(id);
    }
    for (std::uint32_t s = 0; s < kNumShards; ++s) {
      SiteId t0 = shard_target(s, before);
      SiteId t1 = shard_target(s, after);
      if (t0 != removed) {
        EXPECT_EQ(t1, t0) << "shard " << s << " moved although its target "
                          << t0 << " survived removal of " << removed;
      } else {
        EXPECT_NE(t1, removed);
      }
    }
  }
}

TEST(ShardMapTest, ShardHandoffRoundTrip) {
  ShardHandoff h;
  h.shard = 9;
  h.epoch = 77;
  h.entries.push_back(ShardDirEntry{GlobalAddress{0xABCD}, 3, ProgramId(2)});
  h.entries.push_back(
      ShardDirEntry{GlobalAddress{0x1234'5678}, 11, ProgramId(5)});
  ByteWriter w;
  h.serialize(w);
  ByteReader r(w.bytes());
  auto back = ShardHandoff::deserialize(r);
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value().shard, 9u);
  EXPECT_EQ(back.value().epoch, 77u);
  ASSERT_EQ(back.value().entries.size(), 2u);
  EXPECT_EQ(back.value().entries[1].addr, GlobalAddress{0x1234'5678});
  EXPECT_EQ(back.value().entries[1].owner, 11u);
  EXPECT_EQ(back.value().entries[1].program, ProgramId(5));
}

TEST(ShardMapTest, ShardRegisterAndStaleRoundTrip) {
  ShardRegister reg{GlobalAddress{42}, ProgramId(3), 8};
  ByteWriter w1;
  reg.serialize(w1);
  ByteReader r1(w1.bytes());
  auto reg2 = ShardRegister::deserialize(r1);
  ASSERT_TRUE(reg2.is_ok());
  EXPECT_EQ(reg2.value().addr, GlobalAddress{42});
  EXPECT_EQ(reg2.value().program, ProgramId(3));
  EXPECT_EQ(reg2.value().owner, 8u);

  ShardStale st{12, 4, 19};
  ByteWriter w2;
  st.serialize(w2);
  ByteReader r2(w2.bytes());
  auto st2 = ShardStale::deserialize(r2);
  ASSERT_TRUE(st2.is_ok());
  EXPECT_EQ(st2.value().shard, 12u);
  EXPECT_EQ(st2.value().holder, 4u);
  EXPECT_EQ(st2.value().epoch, 19u);
}

TEST(ShardMapTest, ShardRecoverReplyRoundTrip) {
  ShardRecoverReply rep;
  rep.shard = 1;
  rep.epoch = 5;
  rep.entries.push_back(ShardDirEntry{GlobalAddress{7}, 2, ProgramId(1)});
  ByteWriter w;
  rep.serialize(w);
  ByteReader r(w.bytes());
  auto back = ShardRecoverReply::deserialize(r);
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value().shard, 1u);
  EXPECT_EQ(back.value().epoch, 5u);
  ASSERT_EQ(back.value().entries.size(), 1u);
  EXPECT_EQ(back.value().entries[0].owner, 2u);
}

TEST(ShardMapTest, ShardRoutedRequestRoundTrip) {
  ShardRoutedRequest req;
  req.addr = GlobalAddress{0xDEAD'BEEF};
  req.shard = shard_of(req.addr);
  req.epoch = 123;
  ByteWriter w;
  req.serialize(w);
  ByteReader r(w.bytes());
  auto back = ShardRoutedRequest::deserialize(r);
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value().addr, GlobalAddress{0xDEAD'BEEF});
  EXPECT_EQ(back.value().shard, req.shard);
  EXPECT_EQ(back.value().epoch, 123u);
}

}  // namespace
}  // namespace sdvm
