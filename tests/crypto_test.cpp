// Known-answer and property tests for the crypto substrate backing the
// security manager: SHA-256 (NIST FIPS 180-4 vectors), HMAC-SHA256
// (RFC 4231), ChaCha20 (RFC 8439), and the sealed-message format.
#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "common/rng.hpp"
#include "crypto/chacha20.hpp"
#include "crypto/cipher.hpp"
#include "crypto/sha256.hpp"

namespace sdvm::crypto {
namespace {

std::string sha_hex(std::string_view msg) {
  auto d = Sha256::hash(msg);
  return hex(d);
}

TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(sha_hex(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(sha_hex("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(sha_hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionA) {
  Sha256 h;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(hex(h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  // Splitting input at every possible boundary must not change the digest.
  std::string msg = "The SDVM distributes data and code automatically.";
  auto expect = Sha256::hash(msg);
  for (std::size_t split = 0; split <= msg.size(); ++split) {
    Sha256 h;
    h.update(std::string_view(msg).substr(0, split));
    h.update(std::string_view(msg).substr(split));
    EXPECT_EQ(h.finish(), expect) << "split at " << split;
  }
}

TEST(Sha256Test, ExactBlockBoundaries) {
  // 55/56/63/64/65 bytes straddle the padding edge cases.
  for (std::size_t n : {55u, 56u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    std::string msg(n, 'x');
    Sha256 a;
    a.update(msg);
    auto one = a.finish();
    Sha256 b;
    for (char c : msg) b.update(std::string_view(&c, 1));
    EXPECT_EQ(b.finish(), one) << "n=" << n;
  }
}

TEST(HmacTest, Rfc4231Case1) {
  std::uint8_t key[20];
  std::memset(key, 0x0b, sizeof(key));
  std::string msg = "Hi There";
  auto mac = hmac_sha256(
      {reinterpret_cast<const std::byte*>(key), sizeof(key)},
      {reinterpret_cast<const std::byte*>(msg.data()), msg.size()});
  EXPECT_EQ(hex(mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacTest, Rfc4231Case2) {
  std::string key = "Jefe";
  std::string msg = "what do ya want for nothing?";
  auto mac = hmac_sha256(
      {reinterpret_cast<const std::byte*>(key.data()), key.size()},
      {reinterpret_cast<const std::byte*>(msg.data()), msg.size()});
  EXPECT_EQ(hex(mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacTest, Rfc4231Case6LongKey) {
  std::uint8_t key[131];
  std::memset(key, 0xaa, sizeof(key));
  std::string msg = "Test Using Larger Than Block-Size Key - Hash Key First";
  auto mac = hmac_sha256(
      {reinterpret_cast<const std::byte*>(key), sizeof(key)},
      {reinterpret_cast<const std::byte*>(msg.data()), msg.size()});
  EXPECT_EQ(hex(mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(ChaCha20Test, Rfc8439BlockFunction) {
  ChaCha20::Key key;
  for (int i = 0; i < 32; ++i) key[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(i);
  ChaCha20::Nonce nonce = {0, 0, 0, 9, 0, 0, 0, 0x4a, 0, 0, 0, 0};
  auto ks = ChaCha20::block(key, nonce, 1);
  EXPECT_EQ(hex(ks),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e"
            "d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e");
}

TEST(ChaCha20Test, Rfc8439Encryption) {
  ChaCha20::Key key;
  for (int i = 0; i < 32; ++i) key[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(i);
  ChaCha20::Nonce nonce = {0, 0, 0, 0, 0, 0, 0, 0x4a, 0, 0, 0, 0};
  std::string plain =
      "Ladies and Gentlemen of the class of '99: If I could offer you "
      "only one tip for the future, sunscreen would be it.";
  std::vector<std::byte> buf(plain.size());
  std::memcpy(buf.data(), plain.data(), plain.size());
  ChaCha20::apply(key, nonce, 1, buf);
  std::string got = hex(std::span{
      reinterpret_cast<const std::uint8_t*>(buf.data()), buf.size()});
  EXPECT_EQ(got.substr(0, 64),
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b");
}

TEST(ChaCha20Test, ApplyIsAnInvolution) {
  ChaCha20::Key key{};
  key[0] = 1;
  ChaCha20::Nonce nonce{};
  nonce[5] = 7;
  std::vector<std::byte> data(1000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = std::byte{static_cast<unsigned char>(i * 31)};
  }
  auto original = data;
  ChaCha20::apply(key, nonce, 0, data);
  EXPECT_NE(data, original);
  ChaCha20::apply(key, nonce, 0, data);
  EXPECT_EQ(data, original);
}

TEST(CipherTest, SealOpenRoundTrip) {
  auto master = derive_master_key("cluster-password");
  auto key = derive_pair_key(master, 1, 2);
  std::string msg = "help request: site 3 is idle";
  std::vector<std::byte> plain(msg.size());
  std::memcpy(plain.data(), msg.data(), msg.size());

  auto sealed = seal(key, /*nonce_seed=*/42, plain);
  auto opened = open(key, sealed);
  ASSERT_TRUE(opened.is_ok()) << opened.status().to_string();
  EXPECT_EQ(opened.value(), plain);
}

TEST(CipherTest, PairKeySymmetric) {
  auto master = derive_master_key("pw");
  EXPECT_EQ(derive_pair_key(master, 1, 2), derive_pair_key(master, 2, 1));
  EXPECT_NE(derive_pair_key(master, 1, 2), derive_pair_key(master, 1, 3));
}

TEST(CipherTest, DifferentPasswordsDifferentKeys) {
  EXPECT_NE(derive_master_key("alpha"), derive_master_key("beta"));
}

TEST(CipherTest, TamperedCiphertextRejected) {
  auto key = derive_pair_key(derive_master_key("pw"), 5, 6);
  std::vector<std::byte> plain(64, std::byte{0x5a});
  auto sealed = seal(key, 1, plain);
  sealed[sealed.size() / 2] ^= std::byte{1};
  EXPECT_FALSE(open(key, sealed).is_ok());
}

TEST(CipherTest, WrongKeyRejected) {
  auto master = derive_master_key("pw");
  auto k12 = derive_pair_key(master, 1, 2);
  auto k13 = derive_pair_key(master, 1, 3);
  std::vector<std::byte> plain(16, std::byte{7});
  auto sealed = seal(k12, 1, plain);
  EXPECT_FALSE(open(k13, sealed).is_ok());
}

TEST(CipherTest, TruncatedBlobRejected) {
  auto key = derive_pair_key(derive_master_key("pw"), 1, 2);
  EXPECT_FALSE(open(key, std::vector<std::byte>(10)).is_ok());
}

TEST(CipherTest, EmptyPayloadRoundTrip) {
  auto key = derive_pair_key(derive_master_key("pw"), 1, 2);
  auto sealed = seal(key, 9, {});
  auto opened = open(key, sealed);
  ASSERT_TRUE(opened.is_ok());
  EXPECT_TRUE(opened.value().empty());
}

// Property sweep: random payload sizes survive the round trip.
class CipherPropertyTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CipherPropertyTest, RandomPayloadRoundTrip) {
  Xoshiro256 rng(GetParam());
  auto key = derive_pair_key(derive_master_key("prop"), 10, 20);
  std::size_t n = GetParam();
  std::vector<std::byte> plain(n);
  for (auto& b : plain) b = std::byte{static_cast<unsigned char>(rng())};
  auto sealed = seal(key, n, plain);
  EXPECT_GT(sealed.size(), plain.size());  // nonce + MAC overhead
  auto opened = open(key, sealed);
  ASSERT_TRUE(opened.is_ok());
  EXPECT_EQ(opened.value(), plain);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CipherPropertyTest,
                         ::testing::Values(1, 2, 63, 64, 65, 127, 128, 1000,
                                           4096, 100000));

}  // namespace
}  // namespace sdvm::crypto
