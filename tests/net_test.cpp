// In-process fabric tests: delivery, latency model, loss, partitions,
// kill, stats — the fault-injection substrate all crash tests depend on.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/clock.hpp"
#include "net/inproc.hpp"

namespace sdvm::net {
namespace {

std::vector<std::byte> bytes_of(const std::string& s) {
  std::vector<std::byte> b(s.size());
  std::memcpy(b.data(), s.data(), s.size());
  return b;
}

TEST(InProcTest, ImmediateDelivery) {
  InProcNetwork net;
  std::string got;
  auto a = net.attach([&](std::vector<std::byte> b) {
    got.assign(reinterpret_cast<const char*>(b.data()), b.size());
  });
  auto b = net.attach([](std::vector<std::byte>) {});
  ASSERT_TRUE(b->send(a->local_address(), bytes_of("hi")).is_ok());
  EXPECT_EQ(got, "hi");
}

TEST(InProcTest, AddressesAreUnique) {
  InProcNetwork net;
  auto a = net.attach([](std::vector<std::byte>) {});
  auto b = net.attach([](std::vector<std::byte>) {});
  EXPECT_NE(a->local_address(), b->local_address());
}

TEST(InProcTest, SendToUnknownEndpointFails) {
  InProcNetwork net;
  auto a = net.attach([](std::vector<std::byte>) {});
  EXPECT_FALSE(a->send("inproc:999", bytes_of("x")).is_ok());
}

TEST(InProcTest, DetachedEndpointUnreachable) {
  InProcNetwork net;
  auto a = net.attach([](std::vector<std::byte>) {});
  auto b = net.attach([](std::vector<std::byte>) {});
  std::string addr = a->local_address();
  a->close();
  EXPECT_FALSE(b->send(addr, bytes_of("x")).is_ok());
}

TEST(InProcTest, KilledEndpointBlackHoles) {
  InProcNetwork net;
  std::atomic<int> count{0};
  auto a = net.attach([&](std::vector<std::byte>) { count++; });
  auto b = net.attach([](std::vector<std::byte>) {});
  net.kill(a->local_address());
  // Sends "succeed" (the sender can't tell) but nothing arrives.
  EXPECT_TRUE(b->send(a->local_address(), bytes_of("x")).is_ok());
  EXPECT_EQ(count.load(), 0);
  EXPECT_TRUE(net.is_killed(a->local_address()));
}

TEST(InProcTest, PartitionCutsBothDirections) {
  InProcNetwork net;
  std::atomic<int> a_got{0}, b_got{0};
  auto a = net.attach([&](std::vector<std::byte>) { a_got++; });
  auto b = net.attach([&](std::vector<std::byte>) { b_got++; });
  net.partition({a->local_address()}, {b->local_address()});
  EXPECT_TRUE(b->send(a->local_address(), bytes_of("x")).is_ok());
  EXPECT_TRUE(a->send(b->local_address(), bytes_of("y")).is_ok());
  EXPECT_EQ(a_got.load(), 0);
  EXPECT_EQ(b_got.load(), 0);
  net.heal();
  EXPECT_TRUE(b->send(a->local_address(), bytes_of("x")).is_ok());
  EXPECT_EQ(a_got.load(), 1);
}

TEST(InProcTest, LossModelDropsDeterministically) {
  InProcNetwork net(/*seed=*/7);
  std::atomic<int> got{0};
  auto a = net.attach([&](std::vector<std::byte>) { got++; });
  auto b = net.attach([](std::vector<std::byte>) {});
  LinkModel lossy;
  lossy.loss = 0.5;
  net.set_link(b->local_address(), a->local_address(), lossy);
  for (int i = 0; i < 200; ++i) {
    (void)b->send(a->local_address(), bytes_of("x"));
  }
  // ~50% should survive; deterministic for the fixed seed.
  EXPECT_GT(got.load(), 60);
  EXPECT_LT(got.load(), 140);
  auto stats = net.stats(b->local_address(), a->local_address());
  EXPECT_EQ(stats.messages + stats.dropped, 200u);
}

TEST(InProcTest, StatsCountMessagesAndBytes) {
  InProcNetwork net;
  auto a = net.attach([](std::vector<std::byte>) {});
  auto b = net.attach([](std::vector<std::byte>) {});
  ASSERT_TRUE(b->send(a->local_address(), bytes_of("12345")).is_ok());
  ASSERT_TRUE(b->send(a->local_address(), bytes_of("678")).is_ok());
  auto stats = net.stats(b->local_address(), a->local_address());
  EXPECT_EQ(stats.messages, 2u);
  EXPECT_EQ(stats.bytes, 8u);
  auto total = net.total_stats();
  EXPECT_EQ(total.messages, 2u);
  net.reset_stats();
  EXPECT_EQ(net.total_stats().messages, 0u);
}

TEST(InProcTest, WallClockDelayedDelivery) {
  InProcNetwork net;
  LinkModel slow;
  slow.latency = 20'000'000;  // 20 ms
  net.set_default_link(slow);
  std::atomic<Nanos> arrival{0};
  auto a = net.attach([&](std::vector<std::byte>) {
    arrival.store(WallClock::instance().now());
  });
  auto b = net.attach([](std::vector<std::byte>) {});
  Nanos sent = WallClock::instance().now();
  ASSERT_TRUE(b->send(a->local_address(), bytes_of("x")).is_ok());
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (arrival.load() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_NE(arrival.load(), 0);
  EXPECT_GE(arrival.load() - sent, 15'000'000) << "latency not applied";
}

TEST(InProcTest, SchedulerHookOwnsDelivery) {
  InProcNetwork net;
  LinkModel slow;
  slow.latency = 1'000'000;
  net.set_default_link(slow);
  std::vector<std::pair<Nanos, std::function<void()>>> scheduled;
  net.set_delivery_scheduler(
      [&](Nanos delay, const std::string&, std::function<void()> fn) {
        scheduled.emplace_back(delay, std::move(fn));
      });
  std::atomic<int> got{0};
  auto a = net.attach([&](std::vector<std::byte>) { got++; });
  auto b = net.attach([](std::vector<std::byte>) {});
  ASSERT_TRUE(b->send(a->local_address(), bytes_of("xy")).is_ok());
  ASSERT_EQ(scheduled.size(), 1u);
  EXPECT_EQ(got.load(), 0) << "delivery must wait for the scheduler";
  EXPECT_GE(scheduled[0].first, 1'000'000);
  scheduled[0].second();
  EXPECT_EQ(got.load(), 1);
}

TEST(InProcTest, JitterVariesDelay) {
  InProcNetwork net(/*seed=*/42);
  LinkModel model;
  model.latency = 1'000;
  model.jitter = 100'000;
  net.set_default_link(model);
  std::vector<Nanos> delays;
  net.set_delivery_scheduler(
      [&](Nanos delay, const std::string&, std::function<void()> fn) {
        delays.push_back(delay);
        fn();
      });
  auto a = net.attach([](std::vector<std::byte>) {});
  auto b = net.attach([](std::vector<std::byte>) {});
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(b->send(a->local_address(), std::vector<std::byte>(4)).is_ok());
  }
  ASSERT_EQ(delays.size(), 50u);
  // Delays must vary (reordering fuel) and stay within [latency, latency+jitter].
  Nanos lo = *std::min_element(delays.begin(), delays.end());
  Nanos hi = *std::max_element(delays.begin(), delays.end());
  EXPECT_GE(lo, 1'000);
  EXPECT_LE(hi, 101'000);
  EXPECT_GT(hi - lo, 10'000) << "jitter had no effect";
}

TEST(InProcTest, PerByteCostAddsToDelay) {
  InProcNetwork net;
  LinkModel model;
  model.latency = 100;
  model.per_byte = 10;
  net.set_default_link(model);
  std::vector<Nanos> delays;
  net.set_delivery_scheduler(
      [&](Nanos delay, const std::string&, std::function<void()> fn) {
        delays.push_back(delay);
        fn();
      });
  auto a = net.attach([](std::vector<std::byte>) {});
  auto b = net.attach([](std::vector<std::byte>) {});
  ASSERT_TRUE(b->send(a->local_address(), std::vector<std::byte>(100)).is_ok());
  ASSERT_TRUE(b->send(a->local_address(), std::vector<std::byte>(1000)).is_ok());
  ASSERT_EQ(delays.size(), 2u);
  EXPECT_EQ(delays[0], 100 + 100 * 10);
  EXPECT_EQ(delays[1], 100 + 1000 * 10);
}

}  // namespace
}  // namespace sdvm::net
