// Shared helpers for SDVM integration tests.
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

namespace sdvm::testing_util {

/// The primes app reports the count found when a round pushes it to >= p;
/// the final round may overshoot by up to width-1 (the paper's app has the
/// same property — rounds are atomic).
inline void expect_primes_verdict(const std::vector<std::string>& out,
                                  std::int64_t p, std::int64_t width) {
  ASSERT_FALSE(out.empty()) << "no program output collected";
  std::int64_t found = std::stoll(out.back());
  EXPECT_GE(found, p);
  EXPECT_LT(found, p + width);
}

}  // namespace sdvm::testing_util
