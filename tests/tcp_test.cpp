// TCP transport unit tests and full-daemon TCP integration: the paper's
// actual deployment — daemons on sockets, length-framed SDMessages,
// sign-on over the wire.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "api/program_builder.hpp"
#include "api/tcp_node.hpp"
#include "apps/primes.hpp"
#include "net/tcp.hpp"
#include "runtime/context.hpp"

namespace sdvm {
namespace {

std::vector<std::byte> bytes_of(const std::string& s) {
  std::vector<std::byte> b(s.size());
  std::memcpy(b.data(), s.data(), s.size());
  return b;
}

TEST(TcpTransportTest, RoundTrip) {
  std::atomic<int> received{0};
  std::string got;
  std::mutex mu;
  auto a = net::TcpTransport::listen(0, [&](std::vector<std::byte> b) {
    std::lock_guard lk(mu);
    got.assign(reinterpret_cast<const char*>(b.data()), b.size());
    received++;
  });
  ASSERT_TRUE(a.is_ok()) << a.status().to_string();
  auto b = net::TcpTransport::listen(0, [](std::vector<std::byte>) {});
  ASSERT_TRUE(b.is_ok());

  ASSERT_TRUE(
      b.value()->send(a.value()->local_address(), bytes_of("ping")).is_ok());
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (received.load() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(received.load(), 1);
  std::lock_guard lk(mu);
  EXPECT_EQ(got, "ping");
  a.value()->close();
  b.value()->close();
}

TEST(TcpTransportTest, ManyMessagesOrdered) {
  std::mutex mu;
  std::vector<int> order;
  auto a = net::TcpTransport::listen(0, [&](std::vector<std::byte> b) {
    std::lock_guard lk(mu);
    order.push_back(std::stoi(
        std::string(reinterpret_cast<const char*>(b.data()), b.size())));
  });
  ASSERT_TRUE(a.is_ok());
  auto b = net::TcpTransport::listen(0, [](std::vector<std::byte>) {});
  ASSERT_TRUE(b.is_ok());

  constexpr int kCount = 500;
  for (int i = 0; i < kCount; ++i) {
    ASSERT_TRUE(b.value()
                    ->send(a.value()->local_address(),
                           bytes_of(std::to_string(i)))
                    .is_ok());
  }
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline) {
    {
      std::lock_guard lk(mu);
      if (order.size() == kCount) break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::lock_guard lk(mu);
  ASSERT_EQ(order.size(), static_cast<std::size_t>(kCount));
  for (int i = 0; i < kCount; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  a.value()->close();
  b.value()->close();
}

TEST(TcpTransportTest, LargeFrame) {
  std::atomic<std::size_t> got_size{0};
  auto a = net::TcpTransport::listen(0, [&](std::vector<std::byte> b) {
    got_size.store(b.size());
  });
  ASSERT_TRUE(a.is_ok());
  auto b = net::TcpTransport::listen(0, [](std::vector<std::byte>) {});
  ASSERT_TRUE(b.is_ok());

  std::vector<std::byte> big(3 * 1024 * 1024, std::byte{0x42});
  ASSERT_TRUE(b.value()->send(a.value()->local_address(), big).is_ok());
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (got_size.load() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(got_size.load(), big.size());
  a.value()->close();
  b.value()->close();
}

TEST(TcpTransportTest, SendToDeadAddressFails) {
  net::TcpTransport::Options opt;
  opt.max_attempts = 2;
  opt.backoff_base = 1'000'000;  // 1 ms
  opt.backoff_max = 2'000'000;
  auto a = net::TcpTransport::listen(0, [](std::vector<std::byte>) {}, opt);
  ASSERT_TRUE(a.is_ok());
  // Port 1 on localhost is virtually guaranteed closed. Sends are queued,
  // so the first one succeeds; the unreachable verdict arrives once the
  // writer thread exhausts its retry budget, and later sends fast-fail.
  ASSERT_TRUE(a.value()->send("127.0.0.1:1", bytes_of("x")).is_ok());
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!a.value()->peer_state("127.0.0.1:1").unreachable &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(a.value()->peer_state("127.0.0.1:1").unreachable);
  Status st = a.value()->send("127.0.0.1:1", bytes_of("y"));
  EXPECT_FALSE(st.is_ok());
  EXPECT_EQ(st.code(), ErrorCode::kUnavailable);
  auto stats = a.value()->stats();
  EXPECT_GE(stats.peers_unreachable, 1u);
  EXPECT_GE(stats.frames_dropped, 1u);
  a.value()->close();
}

TEST(TcpTransportTest, BadAddressRejected) {
  auto a = net::TcpTransport::listen(0, [](std::vector<std::byte>) {});
  ASSERT_TRUE(a.is_ok());
  EXPECT_FALSE(a.value()->send("not-an-address", bytes_of("x")).is_ok());
  EXPECT_FALSE(a.value()->send("999.0.0.1:80", bytes_of("x")).is_ok());
  a.value()->close();
}

TEST(TcpNodeTest, TwoDaemonClusterRunsProgram) {
  TcpNode::Options opt1;
  opt1.site.name = "alpha";
  auto n1 = TcpNode::create(opt1);
  ASSERT_TRUE(n1.is_ok()) << n1.status().to_string();
  n1.value()->bootstrap();

  TcpNode::Options opt2;
  opt2.site.name = "beta";
  auto n2 = TcpNode::create(opt2);
  ASSERT_TRUE(n2.is_ok());
  Status joined =
      n2.value()->join_cluster(n1.value()->address(), 10 * kNanosPerSecond);
  ASSERT_TRUE(joined.is_ok()) << joined.to_string();

  apps::PrimesParams params;
  params.p = 20;
  params.width = 8;
  params.work_mult = 0;
  auto pid = n1.value()->start_program(apps::make_primes_program(params));
  ASSERT_TRUE(pid.is_ok());
  auto code = n1.value()->wait_program(pid.value(), 30 * kNanosPerSecond);
  ASSERT_TRUE(code.is_ok()) << code.status().to_string();

  std::lock_guard lk(n1.value()->site().lock());
  {
    auto out = n1.value()->site().io().outputs(pid.value());
    ASSERT_FALSE(out.empty());
    EXPECT_GE(std::stoll(out.back()), 20);
  }
  // The second daemon really participated over TCP.
  EXPECT_GT(n1.value()->site().messages().sent_count, 0u);
}

TEST(TcpNodeTest, EncryptedTcpCluster) {
  TcpNode::Options opt1;
  opt1.site.encrypt = true;
  opt1.site.cluster_password = "wire-secret";
  auto n1 = TcpNode::create(opt1);
  ASSERT_TRUE(n1.is_ok());
  n1.value()->bootstrap();

  TcpNode::Options opt2 = opt1;
  auto n2 = TcpNode::create(opt2);
  ASSERT_TRUE(n2.is_ok());
  ASSERT_TRUE(
      n2.value()
          ->join_cluster(n1.value()->address(), 10 * kNanosPerSecond)
          .is_ok());

  auto spec = ProgramBuilder("hello")
                  .thread("entry", "out(99); exit(0);")
                  .entry("entry")
                  .build();
  auto pid = n1.value()->start_program(spec);
  ASSERT_TRUE(pid.is_ok());
  auto code = n1.value()->wait_program(pid.value(), 30 * kNanosPerSecond);
  ASSERT_TRUE(code.is_ok()) << code.status().to_string();
}

TEST(TcpNodeTest, WrongPasswordCannotJoin) {
  TcpNode::Options opt1;
  opt1.site.encrypt = true;
  opt1.site.cluster_password = "right";
  auto n1 = TcpNode::create(opt1);
  ASSERT_TRUE(n1.is_ok());
  n1.value()->bootstrap();

  TcpNode::Options opt2;
  opt2.site.encrypt = true;
  opt2.site.cluster_password = "wrong";
  auto n2 = TcpNode::create(opt2);
  ASSERT_TRUE(n2.is_ok());
  Status joined =
      n2.value()->join_cluster(n1.value()->address(), kNanosPerSecond);
  EXPECT_FALSE(joined.is_ok()) << "join must fail with a bad password";
}

}  // namespace
}  // namespace sdvm
