// Manager-level behaviour tests on small live clusters: status queries,
// gossip propagation, help-target selection, io path parsing, program
// manager lifecycle, sign-off successor routing.
#include <gtest/gtest.h>

#include "api/program_builder.hpp"
#include "apps/primes.hpp"
#include "runtime/context.hpp"
#include "sim/sim_cluster.hpp"

namespace sdvm {
namespace {

using sim::SimCluster;

TEST(StatusQueryTest, RemoteStatusReplyArrives) {
  SimCluster cluster;
  cluster.add_sites(2);

  // Site 1 asks site 2 for its status via the site manager protocol.
  std::string got;
  SdMessage q;
  q.dst = 2;
  q.src_mgr = q.dst_mgr = ManagerId::kSite;
  q.type = MsgType::kStatusQuery;
  (void)cluster.site(0).messages().request(q, [&](Result<SdMessage> r) {
    ASSERT_TRUE(r.is_ok()) << r.status().to_string();
    ByteReader rd(r.value().payload);
    got = rd.str();
  });
  cluster.loop().run_for(kNanosPerSecond / 100);
  EXPECT_NE(got.find("site 2"), std::string::npos) << got;
  EXPECT_NE(got.find("scheduling:"), std::string::npos);
  EXPECT_NE(got.find("memory:"), std::string::npos);
}

TEST(StatusQueryTest, LocalStatusMentionsAllManagers) {
  SimCluster cluster;
  cluster.add_sites(1);
  std::string s = cluster.site(0).site_manager().status_string();
  for (const char* section : {"cluster:", "scheduling:", "processing:",
                              "memory:", "code:", "programs:", "messages:"}) {
    EXPECT_NE(s.find(section), std::string::npos) << "missing " << section;
  }
}

TEST(GossipTest, LateSiteLearnsWholeClusterEventually) {
  SimCluster cluster;
  cluster.add_sites(5);
  // The 5th site joined via site 1 and initially may know only the
  // snapshot; heartbeats and gossip rounds must spread everything.
  cluster.loop().run_for(3 * kNanosPerSecond);
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    EXPECT_EQ(cluster.site(i).cluster().cluster_size(), 5u)
        << "site index " << i << " has an incomplete cluster list";
  }
}

TEST(GossipTest, LoadStatisticsPropagate) {
  SimCluster cluster;
  cluster.add_sites(3);
  apps::PrimesParams params;
  params.p = 40;
  params.width = 10;
  params.work_mult = 50'000'000;
  auto pid = cluster.start_program(apps::make_primes_program(params));
  ASSERT_TRUE(pid.is_ok());
  cluster.loop().run_for(2 * kNanosPerSecond);
  // Site 3 must have heard a nonzero executed_total for some peer.
  bool heard_load = false;
  for (SiteId sid : cluster.site(2).cluster().known_sites()) {
    const SiteInfo* info = cluster.site(2).cluster().find(sid);
    if (info != nullptr && sid != cluster.site(2).id() &&
        info->load.executed_total > 0) {
      heard_load = true;
    }
  }
  EXPECT_TRUE(heard_load);
  (void)cluster.run_program(pid.value(), 3000 * kNanosPerSecond);
}

TEST(SuccessorRoutingTest, ChainOfSignOffsStillRoutes) {
  SimCluster cluster;
  cluster.add_sites(4);
  // Sites 4 then 3 sign off; 4's successor may be 3, which is then also
  // gone — resolve_successor must follow the chain to a live site.
  ASSERT_TRUE(cluster.sign_off(3).is_ok());
  ASSERT_TRUE(cluster.sign_off(2).is_ok());
  cluster.loop().run_for(kNanosPerSecond);
  SiteId resolved4 = cluster.site(0).cluster().resolve_successor(4);
  SiteId resolved3 = cluster.site(0).cluster().resolve_successor(3);
  const SiteInfo* info4 = cluster.site(0).cluster().find(resolved4);
  const SiteInfo* info3 = cluster.site(0).cluster().find(resolved3);
  ASSERT_NE(info4, nullptr);
  ASSERT_NE(info3, nullptr);
  EXPECT_TRUE(info4->alive);
  EXPECT_TRUE(info3->alive);
}

TEST(ProgramManagerTest, InfoFetchedOnDemand) {
  SimCluster cluster;
  cluster.add_sites(2);
  auto spec = ProgramBuilder("ondemand")
                  .thread("entry", "out(1); exit(0);")
                  .entry("entry")
                  .build();
  auto pid = cluster.start_program(spec, /*home_index=*/0);
  ASSERT_TRUE(pid.is_ok());
  ASSERT_TRUE(cluster.run_program(pid.value(), 60 * kNanosPerSecond).is_ok());

  // Site 2 never executed anything of this trivial program; ensure_known
  // must fetch the description from the home site on demand.
  bool known = false;
  Status got = Status::error(ErrorCode::kInternal, "pending");
  cluster.site(1).programs().ensure_known(pid.value(), /*hint=*/1,
                                          [&](Status st) {
                                            known = true;
                                            got = st;
                                          });
  cluster.loop().run_for(kNanosPerSecond / 100);
  ASSERT_TRUE(known);
  EXPECT_TRUE(got.is_ok()) << got.to_string();
  EXPECT_NE(cluster.site(1).programs().find(pid.value()), nullptr);
}

TEST(ProgramManagerTest, DuplicateStartValidation) {
  SimCluster cluster;
  cluster.add_sites(1);
  ProgramSpec bad;
  bad.name = "bad";
  bad.entry = "missing";
  MicrothreadSpec t;
  t.name = "a";
  t.source = "out(1);";
  bad.threads.push_back(t);
  EXPECT_FALSE(cluster.site(0).start_program(bad).is_ok());

  ProgramSpec dup;
  dup.name = "dup";
  dup.entry = "a";
  dup.threads.push_back(t);
  dup.threads.push_back(t);  // duplicate name
  EXPECT_FALSE(cluster.site(0).start_program(dup).is_ok());

  ProgramSpec empty_thread;
  empty_thread.name = "e";
  empty_thread.entry = "a";
  MicrothreadSpec bodyless;
  bodyless.name = "a";
  empty_thread.threads.push_back(bodyless);
  EXPECT_FALSE(cluster.site(0).start_program(empty_thread).is_ok());
}

TEST(IoPathTest, FrontendOutputOrderPreserved) {
  SimCluster cluster;
  cluster.add_sites(1);
  auto spec = ProgramBuilder("order")
                  .thread("entry", R"(
                    var i = 0;
                    while (i < 10) { out(i); i = i + 1; }
                    exit(0);
                  )")
                  .entry("entry")
                  .build();
  auto pid = cluster.start_program(spec);
  ASSERT_TRUE(pid.is_ok());
  ASSERT_TRUE(cluster.run_program(pid.value(), 60 * kNanosPerSecond).is_ok());
  auto out = cluster.outputs(0, pid.value());
  ASSERT_EQ(out.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(out[static_cast<std::size_t>(i)], std::to_string(i));
  }
}

TEST(HelpTargetTest, PrefersLoadedSites) {
  SimCluster cluster;
  cluster.add_sites(3);
  // Fake knowledge: site 3 claims a deep queue.
  SiteInfo fake = *cluster.site(0).cluster().find(3);
  fake.load.queued_frames = 50;
  fake.version += 1;
  cluster.site(0).cluster().merge(fake);
  auto target = cluster.site(0).cluster().pick_help_target();
  ASSERT_TRUE(target.has_value());
  EXPECT_EQ(*target, 3u);
  // Excluding it falls back to someone else.
  auto other = cluster.site(0).cluster().pick_help_target({3});
  ASSERT_TRUE(other.has_value());
  EXPECT_NE(*other, 3u);
}

TEST(TerminationTest, ResourcesFreedEverywhere) {
  SimCluster cluster;
  cluster.add_sites(3);
  apps::PrimesParams params;
  params.p = 20;
  params.width = 8;
  params.work_mult = 10'000'000;
  auto pid = cluster.start_program(apps::make_primes_program(params));
  ASSERT_TRUE(pid.is_ok());
  ASSERT_TRUE(cluster.run_program(pid.value(), 600 * kNanosPerSecond).is_ok());
  cluster.loop().run_for(kNanosPerSecond);

  for (std::size_t i = 0; i < cluster.size(); ++i) {
    EXPECT_EQ(cluster.site(i).memory().frame_count(), 0u)
        << "site " << i << " leaked frames";
    EXPECT_EQ(cluster.site(i).memory().object_count(), 0u)
        << "site " << i << " leaked memory objects";
    EXPECT_EQ(cluster.site(i).scheduling().queued_total(), 0u);
    EXPECT_TRUE(cluster.site(i).programs().is_terminated(pid.value()) ||
                cluster.site(i).programs().find(pid.value()) == nullptr);
  }
}

}  // namespace
}  // namespace sdvm
