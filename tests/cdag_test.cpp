// CDAG (scheduling-hint substrate) tests: topology, critical path,
// priorities, list-schedule bounds.
#include <gtest/gtest.h>

#include "sched_graph/cdag.hpp"

namespace sdvm::sched_graph {
namespace {

// Diamond: a → {b, c} → d, with b much heavier than c.
Cdag diamond() {
  Cdag g;
  NodeId a = g.add_node("a", 10);
  NodeId b = g.add_node("b", 100);
  NodeId c = g.add_node("c", 5);
  NodeId d = g.add_node("d", 10);
  EXPECT_TRUE(g.add_dependency(a, b).is_ok());
  EXPECT_TRUE(g.add_dependency(a, c).is_ok());
  EXPECT_TRUE(g.add_dependency(b, d).is_ok());
  EXPECT_TRUE(g.add_dependency(c, d).is_ok());
  return g;
}

TEST(CdagTest, TopologicalOrderRespectsEdges) {
  Cdag g = diamond();
  auto order = g.topological_order();
  ASSERT_TRUE(order.is_ok());
  auto pos = [&](NodeId n) {
    for (std::size_t i = 0; i < order.value().size(); ++i) {
      if (order.value()[i] == n) return i;
    }
    return std::size_t{99};
  };
  EXPECT_LT(pos(0), pos(1));
  EXPECT_LT(pos(0), pos(2));
  EXPECT_LT(pos(1), pos(3));
  EXPECT_LT(pos(2), pos(3));
}

TEST(CdagTest, CycleDetected) {
  Cdag g;
  NodeId a = g.add_node("a", 1);
  NodeId b = g.add_node("b", 1);
  ASSERT_TRUE(g.add_dependency(a, b).is_ok());
  ASSERT_TRUE(g.add_dependency(b, a).is_ok());
  EXPECT_FALSE(g.topological_order().is_ok());
  EXPECT_TRUE(g.bottom_levels().empty());
}

TEST(CdagTest, SelfEdgeRejected) {
  Cdag g;
  NodeId a = g.add_node("a", 1);
  EXPECT_FALSE(g.add_dependency(a, a).is_ok());
  EXPECT_FALSE(g.add_dependency(a, 99).is_ok());
}

TEST(CdagTest, CriticalPathLength) {
  Cdag g = diamond();
  // a(10) → b(100) → d(10) = 120.
  EXPECT_EQ(g.critical_path_length(), 120);
}

TEST(CdagTest, CriticalPathNodes) {
  Cdag g = diamond();
  auto path = g.critical_path();
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(g.name(path[0]), "a");
  EXPECT_EQ(g.name(path[1]), "b");
  EXPECT_EQ(g.name(path[2]), "d");
}

TEST(CdagTest, PrioritiesFavorCriticalPath) {
  Cdag g = diamond();
  auto prio = g.priorities(100);
  ASSERT_EQ(prio.size(), 4u);
  EXPECT_EQ(prio[0], 100);        // "a" heads the critical path
  EXPECT_GT(prio[1], prio[2]);    // heavy branch over light branch
  EXPECT_GT(prio[1], prio[3]);
}

TEST(CdagTest, ChainPrioritiesDecrease) {
  Cdag g;
  NodeId prev = g.add_node("n0", 10);
  for (int i = 1; i < 5; ++i) {
    NodeId next = g.add_node("n" + std::to_string(i), 10);
    ASSERT_TRUE(g.add_dependency(prev, next).is_ok());
    prev = next;
  }
  auto prio = g.priorities(100);
  for (std::size_t i = 1; i < prio.size(); ++i) {
    EXPECT_LT(prio[i], prio[i - 1]);
  }
}

TEST(CdagTest, ListScheduleSequentialEqualsTotal) {
  Cdag g = diamond();
  EXPECT_EQ(g.list_schedule_makespan(1), 125);  // sum of all costs
}

TEST(CdagTest, ListScheduleParallelBoundedByCriticalPath) {
  Cdag g = diamond();
  std::int64_t makespan = g.list_schedule_makespan(2);
  EXPECT_GE(makespan, g.critical_path_length());
  EXPECT_LE(makespan, g.list_schedule_makespan(1));
  EXPECT_EQ(makespan, 120);  // c(5) hides under b(100)
}

TEST(CdagTest, WideFanOutScalesWithSites) {
  Cdag g;
  NodeId src = g.add_node("src", 1);
  NodeId sink = g.add_node("sink", 1);
  for (int i = 0; i < 16; ++i) {
    NodeId w = g.add_node("w" + std::to_string(i), 100);
    ASSERT_TRUE(g.add_dependency(src, w).is_ok());
    ASSERT_TRUE(g.add_dependency(w, sink).is_ok());
  }
  std::int64_t one = g.list_schedule_makespan(1);
  std::int64_t four = g.list_schedule_makespan(4);
  std::int64_t sixteen = g.list_schedule_makespan(16);
  EXPECT_EQ(one, 2 + 16 * 100);
  EXPECT_EQ(four, 2 + 4 * 100);
  EXPECT_EQ(sixteen, 2 + 100);
}

TEST(CdagTest, EmptyGraph) {
  Cdag g;
  EXPECT_TRUE(g.topological_order().is_ok());
  EXPECT_EQ(g.critical_path_length(), 0);
  EXPECT_TRUE(g.critical_path().empty());
  EXPECT_EQ(g.list_schedule_makespan(4), 0);
}

// Property: for random DAGs, makespan(k) is monotone in k and bounded by
// [critical path, sequential sum].
class CdagPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(CdagPropertyTest, MakespanBounds) {
  std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  Cdag g;
  constexpr int kNodes = 40;
  std::int64_t total = 0;
  for (int i = 0; i < kNodes; ++i) {
    std::int64_t cost = 1 + (seed * 2654435761u + static_cast<std::uint64_t>(i) * 97) % 50;
    total += cost;
    g.add_node("n" + std::to_string(i), cost);
  }
  // Edges only forward: guaranteed acyclic.
  for (int i = 0; i < kNodes; ++i) {
    for (int j = i + 1; j < kNodes; ++j) {
      if ((seed + static_cast<std::uint64_t>(i * 31 + j)) % 7 == 0) {
        ASSERT_TRUE(g.add_dependency(static_cast<NodeId>(i),
                                     static_cast<NodeId>(j))
                        .is_ok());
      }
    }
  }
  std::int64_t cp = g.critical_path_length();
  std::int64_t m1 = g.list_schedule_makespan(1);
  std::int64_t m4 = g.list_schedule_makespan(4);
  std::int64_t m16 = g.list_schedule_makespan(16);
  EXPECT_EQ(m1, total);
  EXPECT_GE(m4, cp);
  EXPECT_GE(m16, cp);
  EXPECT_LE(m4, m1);
  EXPECT_LE(m16, m4);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CdagPropertyTest, ::testing::Range(1, 11));

}  // namespace
}  // namespace sdvm::sched_graph
