// Cold-restart recovery over real processes: a 3-site TCP cluster where
// the victim is a genuine sdvmd daemon running with --state-dir. The
// victim is SIGKILLed mid-program (power cut: no destructors, no
// sign-off), its state directory is inspected for committed CRC-framed
// epoch artifacts, and a fresh sdvmd is started over the SAME directory.
// The restarted daemon scans its store, advertises its recoverable
// programs during sign-on, rejoins, and the cluster still produces the
// correct result.
//
// Timing budgets are deliberately loose (2 s failure timeout) so the test
// also holds up under sanitizer slowdowns in CI.
#include <gtest/gtest.h>

#include <spawn.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>

#include "test_util.hpp"

#include "api/tcp_node.hpp"
#include "apps/primes.hpp"
#include "runtime/checkpoint_store.hpp"

extern char** environ;

namespace sdvm {
namespace {

bool wait_until(const std::function<bool()>& cond, int timeout_ms) {
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (cond()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return cond();
}

struct ChildGuard {
  pid_t pid = -1;
  ~ChildGuard() {
    if (pid > 0) {
      ::kill(pid, SIGKILL);
      int st = 0;
      ::waitpid(pid, &st, 0);
    }
  }
  void reap() {
    if (pid > 0) {
      int st = 0;
      ::waitpid(pid, &st, 0);
      pid = -1;
    }
  }
};

pid_t spawn_sdvmd(const std::string& join_addr, const std::string& state_dir,
                  const char* name) {
  const char* argv[] = {SDVMD_BIN,
                        "--port", "0",
                        "--join", join_addr.c_str(),
                        "--state-dir", state_dir.c_str(),
                        "--heartbeat-ms", "100",
                        "--failure-timeout-ms", "2000",
                        "--checkpoint-ms", "300",
                        "--name", name,
                        nullptr};
  pid_t pid = -1;
  if (posix_spawn(&pid, SDVMD_BIN, nullptr, nullptr,
                  const_cast<char* const*>(argv), environ) != 0) {
    return -1;
  }
  return pid;
}

TEST(TcpRestartTest, KilledDaemonRestartsFromItsStateDir) {
  namespace fs = std::filesystem;
  SiteConfig cfg;
  cfg.checkpoints_enabled = true;
  cfg.checkpoint_interval = 300'000'000;   // 300 ms
  cfg.heartbeat_interval = 100'000'000;    // 100 ms
  cfg.failure_timeout = 2'000'000'000;     // 2 s: sanitizer-proof
  cfg.replication_factor = 0;              // every site holds every epoch

  TcpNode::Options hopt;
  hopt.site = cfg;
  hopt.site.name = "home";
  auto home = TcpNode::create(hopt);
  ASSERT_TRUE(home.is_ok());
  home.value()->bootstrap();

  TcpNode::Options popt;
  popt.site = cfg;
  popt.site.name = "peer";
  auto peer = TcpNode::create(popt);
  ASSERT_TRUE(peer.is_ok());
  ASSERT_TRUE(
      peer.value()
          ->join_cluster(home.value()->address(), 15 * kNanosPerSecond)
          .is_ok());

  fs::path state_dir =
      fs::temp_directory_path() /
      ("sdvm-restart-" + std::to_string(::getpid()));
  fs::remove_all(state_dir);

  ChildGuard child;
  child.pid = spawn_sdvmd(home.value()->address(), state_dir.string(),
                          "victim");
  ASSERT_GT(child.pid, 0);
  ASSERT_TRUE(wait_until(
      [&] {
        std::lock_guard lk(home.value()->site().lock());
        return home.value()->site().cluster().cluster_size() == 3;
      },
      30'000))
      << "sdvmd child never joined";

  apps::PrimesParams params;
  params.p = 60;
  params.width = 6;
  params.work_mult = 0;
  params.spin = 300'000;
  auto pid = home.value()->start_program(apps::make_primes_program(params));
  ASSERT_TRUE(pid.is_ok());

  // Wait for a committed checkpoint AND for the victim's directory to hold
  // a durable artifact — proof the replica actually hit its disk.
  ASSERT_TRUE(wait_until(
      [&] {
        std::lock_guard lk(home.value()->site().lock());
        return home.value()->site().crash().checkpoints_committed >= 1;
      },
      60'000))
      << "no checkpoint committed";
  ASSERT_TRUE(wait_until(
      [&] {
        std::error_code ec;
        for (const auto& e : fs::directory_iterator(state_dir, ec)) {
          if (e.path().extension() == ".ckpt") return true;
        }
        return false;
      },
      60'000))
      << "victim never persisted an epoch file to --state-dir";
  {
    std::lock_guard lk(home.value()->site().lock());
    ASSERT_FALSE(home.value()->site().programs().is_terminated(pid.value()))
        << "program finished before the kill — increase spin";
  }

  ASSERT_EQ(::kill(child.pid, SIGKILL), 0);
  child.reap();

  // The artifacts the dead daemon left behind must be loadable: CRC-framed
  // epoch files a fresh CheckpointStore over the same directory can read.
  {
    auto store = std::make_shared<DirStateStore>(state_dir.string());
    CheckpointStore ckpt(store);
    auto recoverable = ckpt.recoverable();
    ASSERT_FALSE(recoverable.empty())
        << "state dir has no recoverable (program, epoch) pairs";
    EXPECT_EQ(recoverable.front().first.value, pid.value().value);
  }

  // Cold restart: a brand-new process over the SAME state directory. It
  // advertises its recoverable programs during sign-on and rejoins.
  ChildGuard reborn;
  reborn.pid = spawn_sdvmd(home.value()->address(), state_dir.string(),
                           "victim-reborn");
  ASSERT_GT(reborn.pid, 0);
  ASSERT_TRUE(wait_until(
      [&] {
        std::lock_guard lk(home.value()->site().lock());
        return home.value()->site().cluster().cluster_size() >= 3;
      },
      30'000))
      << "restarted sdvmd never rejoined";

  // The cluster — survivors plus the reborn daemon — still produces the
  // right answer.
  auto code = home.value()->wait_program(pid.value(), 180 * kNanosPerSecond);
  ASSERT_TRUE(code.is_ok()) << code.status().to_string();
  std::uint64_t deaths = 0;
  std::uint64_t recoveries = 0;
  {
    std::lock_guard lk(home.value()->site().lock());
    testing_util::expect_primes_verdict(
        home.value()->site().io().outputs(pid.value()), 60, 6);
    deaths += home.value()->site().cluster().deaths_detected;
    recoveries += home.value()->site().crash().recoveries;
  }
  {
    std::lock_guard lk(peer.value()->site().lock());
    deaths += peer.value()->site().cluster().deaths_detected;
    recoveries += peer.value()->site().crash().recoveries;
  }
  EXPECT_GE(deaths, 1u) << "nobody noticed the SIGKILL";
  EXPECT_GE(recoveries, 1u) << "no recovery ran";

  // Stop the reborn daemon before deleting its state dir: a live daemon
  // garbage-collects old epochs concurrently with remove_all's directory
  // walk.
  ASSERT_EQ(::kill(reborn.pid, SIGKILL), 0);
  reborn.reap();
  std::error_code ec;
  fs::remove_all(state_dir, ec);
}

}  // namespace
}  // namespace sdvm
