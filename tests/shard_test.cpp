// Sharded homesite directory under fire: lease convergence, killing the
// lease holder mid-program (sim and real TCP), crash takeover + rebuild,
// remigration on join, and the stale-epoch reject path — a mis-routed or
// stale-epoch request is bounced with kShardStale and re-routed, never
// silently served.
#include <gtest/gtest.h>

#include <spawn.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <functional>
#include <map>
#include <thread>
#include <vector>

#include "test_util.hpp"

#include "api/tcp_node.hpp"
#include "apps/matmul.hpp"
#include "apps/primes.hpp"
#include "runtime/context.hpp"
#include "runtime/shard_map.hpp"
#include "sim/sim_cluster.hpp"

extern char** environ;

namespace sdvm {
namespace {

using sim::SimCluster;

SiteConfig checkpointing_config() {
  SiteConfig cfg;
  cfg.checkpoints_enabled = true;
  cfg.checkpoint_interval = kNanosPerSecond / 2;  // every 0.5 s
  cfg.heartbeat_interval = 100'000'000;           // 100 ms
  cfg.failure_timeout = 400'000'000;              // 400 ms
  return cfg;
}

apps::PrimesParams long_job() {
  apps::PrimesParams p;
  p.p = 60;
  p.width = 8;
  p.work_mult = 30'000'000;  // ~30 ms per candidate: several seconds total
  return p;
}

/// Expected matmul checksum: sum(C[i] * (i % 13 + 1)) over the reference
/// product — must match the program's final out() line exactly.
std::int64_t matmul_checksum(std::int64_t n) {
  auto c = apps::matmul_reference(n);
  std::int64_t sum = 0;
  for (std::size_t i = 0; i < c.size(); ++i) {
    sum += c[i] * (static_cast<std::int64_t>(i) % 13 + 1);
  }
  return sum;
}

/// The live slot (excluding slot 0, the home) holding the most shard
/// leases — the kill target that actually exercises takeover.
std::size_t lease_richest_slot(SimCluster& cluster) {
  std::size_t victim = 0;
  std::size_t victim_held = 0;
  for (std::size_t i = 1; i < cluster.size(); ++i) {
    const std::size_t held = cluster.site(i).memory().shards_held();
    if (held > victim_held) {
      victim = i;
      victim_held = held;
    }
  }
  return victim;
}

/// Asserts the shard map has converged across the given live slots: every
/// shard has exactly one authoritative holder, every site names the same
/// holder, and together the live sites hold all kNumShards leases.
void expect_shard_convergence(SimCluster& cluster,
                              const std::vector<std::size_t>& live) {
  ASSERT_FALSE(live.empty());
  std::size_t total_held = 0;
  for (std::size_t slot : live) {
    total_held += cluster.site(slot).memory().shards_held();
  }
  EXPECT_EQ(total_held, kNumShards) << "takeover left unowned shards";

  auto first = cluster.site(live[0]).memory().shard_leases();
  for (std::uint32_t s = 0; s < kNumShards; ++s) {
    int authoritative = 0;
    for (std::size_t slot : live) {
      if (cluster.site(slot).memory().shard_authoritative(s)) {
        ++authoritative;
      }
    }
    EXPECT_EQ(authoritative, 1) << "shard " << s << " has " << authoritative
                                << " authoritative holders";
    for (std::size_t slot : live) {
      auto leases = cluster.site(slot).memory().shard_leases();
      EXPECT_EQ(leases[s].holder, first[s].holder)
          << "slot " << slot << " disagrees on shard " << s << " holder";
    }
  }
}

/// No duplicate grants: a global address is physically resident on at most
/// one live site at any quiescent point.
void expect_no_duplicate_owners(SimCluster& cluster,
                                const std::vector<std::size_t>& live) {
  std::map<GlobalAddress, std::vector<std::size_t>> residents;
  for (std::size_t slot : live) {
    for (GlobalAddress addr : cluster.site(slot).memory().owned_addresses()) {
      residents[addr].push_back(slot);
    }
  }
  for (const auto& [addr, slots] : residents) {
    EXPECT_EQ(slots.size(), 1u)
        << "object " << addr.value << " resident on " << slots.size()
        << " live sites (duplicate grant)";
  }
}

std::vector<std::size_t> all_slots_except(std::size_t n, std::size_t dead) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < n; ++i) {
    if (i != dead) out.push_back(i);
  }
  return out;
}

// --- lease bootstrap & convergence ------------------------------------------

TEST(ShardSimTest, LeaseMapConvergesOnBootstrap) {
  SimCluster cluster;
  cluster.add_sites(4);
  cluster.loop().run_for(2 * kNanosPerSecond);

  expect_shard_convergence(cluster, {0, 1, 2, 3});

  // Holders match the rendezvous targets for the live view — any site can
  // compute the routing table without asking anyone.
  std::vector<SiteId> ids;
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    ids.push_back(cluster.site(i).id());
  }
  auto leases = cluster.site(0).memory().shard_leases();
  for (std::uint32_t s = 0; s < kNumShards; ++s) {
    EXPECT_EQ(leases[s].holder, shard_target(s, ids)) << "shard " << s;
    EXPECT_GE(leases[s].epoch, 1u) << "shard " << s << " never leased";
  }
}

TEST(ShardSimTest, JoinRemigratesShardsToNewTarget) {
  SimCluster cluster;
  cluster.add_sites(3);
  cluster.loop().run_for(2 * kNanosPerSecond);
  expect_shard_convergence(cluster, {0, 1, 2});

  std::uint64_t handoffs_before = 0;
  for (std::size_t i = 0; i < 3; ++i) {
    handoffs_before += cluster.site(i).memory().shard_handoffs;
  }

  cluster.add_site(SiteConfig{});
  cluster.loop().run_for(2 * kNanosPerSecond);

  expect_shard_convergence(cluster, {0, 1, 2, 3});
  EXPECT_GT(cluster.site(3).memory().shards_held(), 0u)
      << "rendezvous gave the joiner nothing — remigration untested";
  std::uint64_t handoffs_after = 0;
  for (std::size_t i = 0; i < 3; ++i) {
    handoffs_after += cluster.site(i).memory().shard_handoffs;
  }
  EXPECT_GT(handoffs_after, handoffs_before)
      << "no graceful kShardHandoff carried the remigration";
}

// --- killing the lease holder, sim mode -------------------------------------

TEST(ShardSimTest, KillLeaseHolderMidProgramRecovers) {
  SimCluster cluster;
  cluster.add_sites(4, 1.0, checkpointing_config());
  auto pid = cluster.start_program(apps::make_primes_program(long_job()));
  ASSERT_TRUE(pid.is_ok());

  cluster.loop().run_for(2 * kNanosPerSecond);
  ASSERT_GT(cluster.site(0).crash().checkpoints_committed, 0u)
      << "no checkpoint before the crash — test setup too fast";

  const std::size_t victim = lease_richest_slot(cluster);
  ASSERT_NE(victim, 0u);
  ASSERT_GE(cluster.site(victim).memory().shards_held(), 1u)
      << "victim holds no leases — not a lease-holder kill";
  const SiteId victim_id = cluster.site(victim).id();
  cluster.kill(victim);

  auto code = cluster.run_program(pid.value(), 3000 * kNanosPerSecond);
  ASSERT_TRUE(code.is_ok()) << code.status().to_string();
  testing_util::expect_primes_verdict(cluster.outputs(0, pid.value()), 60, 8);

  std::uint64_t recoveries = 0;
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    if (i == victim) continue;
    recoveries += cluster.site(i).crash().recoveries;
  }
  EXPECT_GE(recoveries, 1u) << "no checkpoint recovery ran";

  // Successor takeover: the dead holder's shards were re-leased at higher
  // epochs and the survivors agree on the new map.
  cluster.loop().run_for(2 * kNanosPerSecond);
  const std::vector<std::size_t> live = all_slots_except(4, victim);
  expect_shard_convergence(cluster, live);
  for (std::size_t slot : live) {
    auto leases = cluster.site(slot).memory().shard_leases();
    for (std::uint32_t s = 0; s < kNumShards; ++s) {
      EXPECT_NE(leases[s].holder, victim_id)
          << "slot " << slot << " still routes shard " << s
          << " to the dead holder";
    }
  }
}

TEST(ShardSimTest, MatmulChecksumSurvivesLeaseHolderCrash) {
  SimCluster cluster;
  SiteConfig cfg = checkpointing_config();
  cfg.help_retry_interval = 50'000;  // eager help: spread the blocks
  cluster.add_sites(4, 1.0, cfg);
  cluster.loop().run_for(2 * kNanosPerSecond);

  const std::size_t victim = lease_richest_slot(cluster);
  ASSERT_NE(victim, 0u);
  ASSERT_GE(cluster.site(victim).memory().shards_held(), 1u);
  cluster.kill(victim);
  // Let the failure detector fire and the successors take the shards over.
  cluster.loop().run_for(2 * kNanosPerSecond);
  const std::vector<std::size_t> live = all_slots_except(4, victim);
  expect_shard_convergence(cluster, live);

  // The rebuilt directory must still mediate allocation, migration and
  // grants correctly: the distributed matmul checksum is exact.
  apps::MatmulParams params;
  params.n = 16;
  params.block_rows = 2;
  auto pid = cluster.start_program(apps::make_matmul_program(params));
  ASSERT_TRUE(pid.is_ok());
  cluster.loop().run_for(kNanosPerSecond);
  expect_no_duplicate_owners(cluster, live);

  auto code = cluster.run_program(pid.value(), 3000 * kNanosPerSecond);
  ASSERT_TRUE(code.is_ok()) << code.status().to_string();
  EXPECT_EQ(code.value(), 0);
  auto out = cluster.outputs(0, pid.value());
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(std::stoll(out.back()), matmul_checksum(params.n));
  expect_no_duplicate_owners(cluster, live);
}

// --- stale routes are rejected, never silently served -----------------------

/// A fabricated address whose shard the probe site is NOT authoritative
/// for (and whose route points elsewhere), so a delivery to the probe is a
/// mis-route by construction.
GlobalAddress misrouted_address(SimCluster& cluster, std::size_t probe_slot) {
  Site& probe = cluster.site(probe_slot);
  for (std::uint64_t k = 1; k < 256; ++k) {
    GlobalAddress addr(cluster.site(0).id(), 0xB000 + k);
    const std::uint32_t s = shard_of(addr);
    if (!probe.memory().shard_authoritative(s) &&
        probe.memory().shard_route(addr) != probe.id()) {
      return addr;
    }
  }
  return GlobalAddress{};
}

TEST(ShardSimTest, MisroutedRegisterRejectedAndForwarded) {
  SimCluster cluster;
  cluster.add_sites(4);
  cluster.loop().run_for(2 * kNanosPerSecond);

  Site& probe = cluster.site(3);
  const GlobalAddress addr = misrouted_address(cluster, 3);
  ASSERT_TRUE(addr.valid()) << "probe site holds every shard?";
  const std::uint32_t s = shard_of(addr);

  // Deliver a kShardRegister to a site that is not the shard's holder —
  // what a sender with an outdated shard map would produce.
  ShardRegister reg;
  reg.addr = addr;
  reg.owner = cluster.site(0).id();
  ByteWriter w;
  reg.serialize(w);
  SdMessage msg;
  msg.src = cluster.site(0).id();
  msg.dst = probe.id();
  msg.src_mgr = msg.dst_mgr = ManagerId::kAttractionMemory;
  msg.type = MsgType::kShardRegister;
  msg.payload = w.take();

  const std::uint64_t before = probe.memory().stale_epoch_rejects;
  probe.memory().handle(msg);
  EXPECT_EQ(probe.memory().stale_epoch_rejects, before + 1)
      << "mis-routed register not counted as a stale reject";

  // ... and re-routed: after the forward settles, the entry lives at the
  // authoritative holder, not the mis-routed receiver.
  cluster.loop().run_for(kNanosPerSecond);
  Site* holder = cluster.site_by_id(probe.memory().shard_route(addr));
  ASSERT_NE(holder, nullptr);
  EXPECT_TRUE(holder->memory().shard_authoritative(s));
  EXPECT_EQ(holder->memory().directory_owner(addr), cluster.site(0).id())
      << "forwarded registration never reached the shard holder";
}

TEST(ShardSimTest, StaleEpochObjectRequestBouncedNotServed) {
  SimCluster cluster;
  cluster.add_sites(4);
  cluster.loop().run_for(2 * kNanosPerSecond);

  Site& probe = cluster.site(3);
  const GlobalAddress addr = misrouted_address(cluster, 3);
  ASSERT_TRUE(addr.valid());
  const std::uint32_t s = shard_of(addr);

  ShardRoutedRequest req;
  req.addr = addr;
  req.shard = s;
  req.epoch = 0;  // a lease epoch nobody ever held: maximally stale
  ByteWriter w;
  req.serialize(w);
  SdMessage msg;
  msg.src = cluster.site(0).id();
  msg.dst = probe.id();
  msg.src_mgr = msg.dst_mgr = ManagerId::kAttractionMemory;
  msg.type = MsgType::kObjectRequest;
  msg.seq = 4242;
  msg.payload = w.take();

  const std::uint64_t before = probe.memory().stale_epoch_rejects;
  probe.memory().handle(msg);
  EXPECT_EQ(probe.memory().stale_epoch_rejects, before + 1)
      << "stale-epoch request neither rejected nor counted";
  // Never silently served: the non-authoritative site must not have grown
  // a directory entry for the address.
  for (const auto& [entry_addr, owner] : probe.memory().directory_snapshot()) {
    EXPECT_NE(entry_addr, addr) << "stale request was served";
  }
  cluster.loop().run_for(kNanosPerSecond);
}

// --- killing the lease holder, real TCP -------------------------------------

bool wait_until(const std::function<bool()>& cond, int timeout_ms) {
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (cond()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return cond();
}

/// SIGKILLs `pid` on destruction so a failing assertion never leaks the
/// spawned daemon.
struct ChildGuard {
  pid_t pid = -1;
  ~ChildGuard() {
    if (pid > 0) {
      ::kill(pid, SIGKILL);
      int st = 0;
      ::waitpid(pid, &st, 0);
    }
  }
  void reap() {
    if (pid > 0) {
      int st = 0;
      ::waitpid(pid, &st, 0);
      pid = -1;
    }
  }
};

TEST(ShardTcpTest, KillLeaseHolderDaemonMidProgram) {
  SiteConfig cfg;
  cfg.checkpoints_enabled = true;
  cfg.checkpoint_interval = 150'000'000;  // 150 ms
  cfg.heartbeat_interval = 50'000'000;    // 50 ms
  cfg.failure_timeout = 400'000'000;      // 400 ms

  TcpNode::Options hopt;
  hopt.site = cfg;
  hopt.site.name = "home";
  auto home = TcpNode::create(hopt);
  ASSERT_TRUE(home.is_ok());
  home.value()->bootstrap();

  TcpNode::Options popt;
  popt.site = cfg;
  popt.site.name = "peer";
  auto peer = TcpNode::create(popt);
  ASSERT_TRUE(peer.is_ok());
  ASSERT_TRUE(
      peer.value()
          ->join_cluster(home.value()->address(), 15 * kNanosPerSecond)
          .is_ok());

  // Third site: a real sdvmd process we can SIGKILL once it holds shard
  // leases — directory authority dying without a goodbye.
  std::string join_flag = home.value()->address();
  const char* argv[] = {SDVMD_BIN,        "--port",           "0",
                        "--join",          join_flag.c_str(), "--checkpoints",
                        "--heartbeat-ms",  "50",              "--failure-timeout-ms",
                        "400",             "--checkpoint-ms", "150",
                        "--name",          "victim",          nullptr};
  ChildGuard child;
  ASSERT_EQ(posix_spawn(&child.pid, SDVMD_BIN, nullptr, nullptr,
                        const_cast<char* const*>(argv), environ),
            0);

  ASSERT_TRUE(wait_until(
      [&] {
        std::lock_guard lk(home.value()->site().lock());
        return home.value()->site().cluster().cluster_size() == 3;
      },
      20'000))
      << "sdvmd child never joined the cluster";

  // The joiner must become a real lease holder (remigration moved its
  // rendezvous shards over) before it is worth killing. Introspected over
  // the wire: the same dir.shards_held gauge sdvm-top renders.
  ASSERT_TRUE(wait_until(
      [&] {
        auto cs = home.value()->cluster_status(0, 2 * kNanosPerSecond);
        if (!cs.is_ok()) return false;
        for (const SiteStatus& s : cs.value().sites) {
          if (s.name == "victim" &&
              s.metrics.gauge_value("dir.shards_held") >= 1) {
            return true;
          }
        }
        return false;
      },
      20'000))
      << "child never took over any shard lease";

  apps::PrimesParams params;
  params.p = 60;
  params.width = 6;
  params.work_mult = 0;
  params.spin = 300'000;  // real work: several seconds across 3 sites
  auto pid = home.value()->start_program(apps::make_primes_program(params));
  ASSERT_TRUE(pid.is_ok());

  ASSERT_TRUE(wait_until(
      [&] {
        std::lock_guard lk(home.value()->site().lock());
        return home.value()->site().crash().checkpoints_committed >= 1;
      },
      60'000))
      << "no checkpoint committed before the kill";
  {
    std::lock_guard lk(home.value()->site().lock());
    ASSERT_FALSE(home.value()->site().programs().is_terminated(pid.value()))
        << "program finished before the kill — increase spin";
  }

  ASSERT_EQ(::kill(child.pid, SIGKILL), 0);
  child.reap();

  // Survivors detect the death, take the orphaned shards over, recover
  // from the checkpoint and agree on the committed result.
  auto code_home =
      home.value()->wait_program(pid.value(), 180 * kNanosPerSecond);
  ASSERT_TRUE(code_home.is_ok()) << code_home.status().to_string();
  auto code_peer =
      peer.value()->wait_program(pid.value(), 60 * kNanosPerSecond);
  ASSERT_TRUE(code_peer.is_ok()) << code_peer.status().to_string();
  EXPECT_EQ(code_home.value(), code_peer.value())
      << "survivors disagree on the committed result";

  std::uint64_t deaths = 0;
  std::uint64_t recoveries = 0;
  {
    std::lock_guard lk(home.value()->site().lock());
    testing_util::expect_primes_verdict(
        home.value()->site().io().outputs(pid.value()), 60, 6);
    deaths += home.value()->site().cluster().deaths_detected;
    recoveries += home.value()->site().crash().recoveries;
  }
  {
    std::lock_guard lk(peer.value()->site().lock());
    deaths += peer.value()->site().cluster().deaths_detected;
    recoveries += peer.value()->site().crash().recoveries;
  }
  EXPECT_GE(deaths, 1u) << "nobody noticed the SIGKILL";
  EXPECT_GE(recoveries, 1u) << "no checkpoint recovery ran";

  // Shard-map convergence among the survivors: all 16 leases accounted
  // for, both sites naming the same holders, none of them the dead child.
  ASSERT_TRUE(wait_until(
      [&] {
        std::lock_guard lh(home.value()->site().lock());
        std::lock_guard lp(peer.value()->site().lock());
        return home.value()->site().memory().shards_held() +
                   peer.value()->site().memory().shards_held() ==
               kNumShards;
      },
      20'000))
      << "survivors never took over the dead holder's shards";
  {
    std::lock_guard lh(home.value()->site().lock());
    std::lock_guard lp(peer.value()->site().lock());
    auto hl = home.value()->site().memory().shard_leases();
    auto pl = peer.value()->site().memory().shard_leases();
    const SiteId home_id = home.value()->site().id();
    const SiteId peer_id = peer.value()->site().id();
    for (std::uint32_t s = 0; s < kNumShards; ++s) {
      EXPECT_EQ(hl[s].holder, pl[s].holder) << "shard " << s;
      EXPECT_TRUE(hl[s].holder == home_id || hl[s].holder == peer_id)
          << "shard " << s << " still routed to the dead daemon";
    }
    // The child only got its leases through graceful kShardHandoff from
    // the survivors when it joined.
    EXPECT_GE(home.value()->site().memory().shard_handoffs +
                  peer.value()->site().memory().shard_handoffs,
              1u);
  }
}

}  // namespace
}  // namespace sdvm
