// Golden-corpus equivalence tests for the MicroC toolchain.
//
// Every examples/programs/*.mc program is compiled twice (optimized and
// unoptimized) and each artifact is executed under all three dispatch
// strategies (computed-goto direct threading, dense switch, and the
// legacy byte-walking interpreter). All six runs must produce the exact
// same externally visible behavior: the optimizer may drop work, the
// dispatch rebuild may not change results at all.
//
// Cycle counts are additionally pinned: for one artifact, direct, switch
// and legacy dispatch must agree exactly (superinstruction fusion is
// required to be cost-invariant), and the optimized artifact must never
// cost more cycles than the unoptimized one.

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "microc/compiler.hpp"
#include "microc/vm.hpp"

namespace sdvm::microc {
namespace {

namespace fs = std::filesystem;

// Deterministic scripted handler: every intrinsic call is appended to a
// behavior trace, and value-producing intrinsics return values derived
// from a fixed counter so spawn/alloc results are reproducible.
class RecordingHandler : public IntrinsicHandler {
 public:
  std::vector<std::string> trace;

  std::int64_t param(std::int64_t index) override {
    note("param", index);
    return 10 + index * 3;
  }
  std::int64_t num_params() override {
    note("nparams", 0);
    return 2;
  }
  std::int64_t spawn(const std::string& thread_name,
                     std::int64_t nparams) override {
    trace.push_back("spawn " + thread_name + "/" + std::to_string(nparams));
    return next_handle_++;
  }
  std::int64_t spawn_prio(const std::string& thread_name, std::int64_t nparams,
                          std::int64_t priority) override {
    trace.push_back("spawnp " + thread_name + "/" + std::to_string(nparams) +
                    " prio=" + std::to_string(priority));
    return next_handle_++;
  }
  void send(std::int64_t frame_addr, std::int64_t slot,
            std::int64_t value) override {
    trace.push_back("send " + std::to_string(frame_addr) + "[" +
                    std::to_string(slot) + "]=" + std::to_string(value));
  }
  std::int64_t alloc(std::int64_t nwords) override {
    note("alloc", nwords);
    std::int64_t base = static_cast<std::int64_t>(memory_.size());
    memory_.resize(memory_.size() + static_cast<std::size_t>(nwords), 0);
    return base;
  }
  std::int64_t load(std::int64_t addr, std::int64_t index) override {
    return memory_.at(static_cast<std::size_t>(addr + index));
  }
  void store(std::int64_t addr, std::int64_t index,
             std::int64_t value) override {
    memory_.at(static_cast<std::size_t>(addr + index)) = value;
  }
  void out(std::int64_t value) override { note("out", value); }
  void out_str(const std::string& text) override {
    trace.push_back("outs " + text);
  }
  void charge(std::int64_t cycles) override { note("charge", cycles); }
  std::int64_t self_site() override { return 7; }
  std::int64_t arg(std::int64_t index) override {
    note("arg", index);
    return 100 + index;
  }
  std::int64_t num_args() override { return 1; }
  void exit_program(std::int64_t code) override { note("exit", code); }

 private:
  void note(const char* what, std::int64_t v) {
    trace.push_back(std::string(what) + " " + std::to_string(v));
  }
  std::int64_t next_handle_ = 1000;
  std::vector<std::int64_t> memory_;
};

std::vector<fs::path> corpus_files() {
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(SDVM_MICROC_CORPUS_DIR)) {
    if (entry.path().extension() == ".mc") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::string slurp(const fs::path& p) {
  std::ifstream in(p);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

struct RunOutcome {
  std::vector<std::string> trace;
  std::uint64_t cycles = 0;
};

RunOutcome run_one(const Program& prog, DispatchMode mode) {
  RecordingHandler handler;
  VmResult r;
  if (mode == DispatchMode::kLegacy) {
    r = Vm::run_legacy(prog, handler);
  } else {
    auto decoded = decode(prog);
    EXPECT_TRUE(decoded.is_ok()) << decoded.status().to_string();
    r = Vm::run(decoded.value(), prog, handler, Vm::kDefaultStepLimit, mode);
  }
  EXPECT_TRUE(r.status.is_ok()) << prog.name << ": "
                             << r.status.to_string();
  return {std::move(handler.trace), r.cycles};
}

class GoldenCorpusTest : public ::testing::TestWithParam<fs::path> {};

TEST_P(GoldenCorpusTest, OptimizedMatchesUnoptimizedAcrossDispatchModes) {
  const fs::path path = GetParam();
  const std::string source = slurp(path);
  ASSERT_FALSE(source.empty()) << path;

  CompileOptions opt_on{.optimize = true};
  CompileOptions opt_off{.optimize = false};
  CompileError err;
  auto optimized = compile(source, path.filename().string(), opt_on, &err);
  ASSERT_TRUE(optimized.is_ok()) << path << ": " << err.to_string();
  auto plain = compile(source, path.filename().string(), opt_off, &err);
  ASSERT_TRUE(plain.is_ok()) << path << ": " << err.to_string();

  RunOutcome golden = run_one(plain.value(), DispatchMode::kLegacy);
  ASSERT_FALSE(golden.trace.empty()) << path << ": corpus program is silent";

  struct Case {
    const char* label;
    const Program* prog;
    DispatchMode mode;
  };
  const Case cases[] = {
      {"plain/direct", &plain.value(), DispatchMode::kDirect},
      {"plain/switch", &plain.value(), DispatchMode::kSwitch},
      {"opt/legacy", &optimized.value(), DispatchMode::kLegacy},
      {"opt/direct", &optimized.value(), DispatchMode::kDirect},
      {"opt/switch", &optimized.value(), DispatchMode::kSwitch},
  };
  std::uint64_t plain_cycles = golden.cycles;
  std::uint64_t opt_cycles = 0;
  for (const auto& c : cases) {
    RunOutcome got = run_one(*c.prog, c.mode);
    EXPECT_EQ(got.trace, golden.trace) << path << " [" << c.label << "]";
    // The decoded cost model counts wire instructions, so all dispatch
    // modes of one artifact must agree with the legacy interpreter.
    if (c.prog == &plain.value()) {
      EXPECT_EQ(got.cycles, plain_cycles) << path << " [" << c.label << "]";
    } else {
      if (opt_cycles == 0) opt_cycles = got.cycles;
      EXPECT_EQ(got.cycles, opt_cycles) << path << " [" << c.label << "]";
    }
  }
  EXPECT_LE(opt_cycles, plain_cycles)
      << path << ": optimizer made the program slower";
}

std::string corpus_name(const ::testing::TestParamInfo<fs::path>& info) {
  std::string n = info.param.stem().string();
  for (char& c : n) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return n;
}

INSTANTIATE_TEST_SUITE_P(Corpus, GoldenCorpusTest,
                         ::testing::ValuesIn(corpus_files()), corpus_name);

TEST(GoldenCorpusTest, CorpusIsPresent) {
  // Guards against the directory_iterator silently finding nothing (e.g.
  // a bad SDVM_MICROC_CORPUS_DIR) which would skip every parameterized case.
  EXPECT_GE(corpus_files().size(), 8u);
}

}  // namespace
}  // namespace sdvm::microc
