// Fault-tolerant TCP deployment: resilient transport behaviour (retry,
// reconnect, unreachable verdicts), socket-level fault injection, frame
// robustness, and the headline scenario — SIGKILL one of three real
// daemons mid-program and watch the survivors detect the death, recover
// from the last committed checkpoint and still produce the right answer.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <spawn.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstring>
#include <thread>

#include "test_util.hpp"

#include "api/program_builder.hpp"
#include "api/tcp_node.hpp"
#include "apps/primes.hpp"
#include "net/faulty.hpp"
#include "net/tcp.hpp"
#include "runtime/context.hpp"

extern char** environ;

namespace sdvm {
namespace {

std::vector<std::byte> bytes_of(const std::string& s) {
  std::vector<std::byte> b(s.size());
  std::memcpy(b.data(), s.data(), s.size());
  return b;
}

std::uint16_t port_of(const std::string& address) {
  auto colon = address.rfind(':');
  return static_cast<std::uint16_t>(std::stoi(address.substr(colon + 1)));
}

bool wait_until(const std::function<bool()>& cond, int timeout_ms) {
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (cond()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return cond();
}

/// Raw client socket to 127.0.0.1:port — for feeding the listener frames
/// the transport itself would never send.
int raw_connect(std::uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(port);
  inet_pton(AF_INET, "127.0.0.1", &sa.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

// --- parse_address hardening ------------------------------------------------

TEST(TcpFaultTest, MalformedAddressesRejectedWithoutThrowing) {
  auto a = net::TcpTransport::listen(0, [](std::vector<std::byte>) {});
  ASSERT_TRUE(a.is_ok());
  const char* bad[] = {
      "",            "127.0.0.1",      "127.0.0.1:",      ":80",
      "127.0.0.1:x", "127.0.0.1:80x", "127.0.0.1:65536", "127.0.0.1:99999",
      "127.0.0.1:-1"};
  for (const char* addr : bad) {
    Status st = a.value()->send(addr, bytes_of("x"));
    EXPECT_FALSE(st.is_ok()) << "accepted bad address: " << addr;
    EXPECT_EQ(st.code(), ErrorCode::kInvalidArgument) << addr;
  }
  a.value()->close();
}

// --- reconnect / unreachable lifecycle -------------------------------------

TEST(TcpFaultTest, ReconnectsAfterPeerRestart) {
  std::atomic<int> received{0};
  auto first = net::TcpTransport::listen(0, [&](std::vector<std::byte>) {
    received++;
  });
  ASSERT_TRUE(first.is_ok());
  std::uint16_t port = port_of(first.value()->local_address());
  const std::string addr = first.value()->local_address();

  net::TcpTransport::Options opt;
  opt.backoff_base = 2'000'000;  // 2 ms
  opt.backoff_max = 20'000'000;
  opt.max_attempts = 50;  // patient: the restart must fit in the budget
  auto sender = net::TcpTransport::listen(0, [](std::vector<std::byte>) {},
                                          opt);
  ASSERT_TRUE(sender.is_ok());

  ASSERT_TRUE(sender.value()->send(addr, bytes_of("warm-up")).is_ok());
  ASSERT_TRUE(wait_until([&] { return received.load() >= 1; }, 5000));

  // Restart the peer on the same port. Frames written into the dying
  // connection can be lost (TCP has no application acks), so keep sending
  // until one lands on the reincarnation.
  first.value()->close();
  std::atomic<int> received2{0};
  auto second = net::TcpTransport::listen(port, [&](std::vector<std::byte>) {
    received2++;
  });
  ASSERT_TRUE(second.is_ok()) << second.status().to_string();

  bool delivered = wait_until(
      [&] {
        (void)sender.value()->send(addr, bytes_of("probe"));
        return received2.load() >= 1;
      },
      10'000);
  EXPECT_TRUE(delivered) << "no frame reached the restarted peer";
  EXPECT_GE(sender.value()->stats().reconnects, 1u);
  EXPECT_FALSE(sender.value()->peer_state(addr).unreachable);
  sender.value()->close();
  second.value()->close();
}

TEST(TcpFaultTest, UnreachableVerdictThenRecoveryAfterReset) {
  // Learn a port that is actually closed by binding and releasing it.
  auto probe = net::TcpTransport::listen(0, [](std::vector<std::byte>) {});
  ASSERT_TRUE(probe.is_ok());
  std::uint16_t port = port_of(probe.value()->local_address());
  const std::string addr = probe.value()->local_address();
  probe.value()->close();

  net::TcpTransport::Options opt;
  opt.max_attempts = 3;
  opt.backoff_base = 1'000'000;
  opt.backoff_max = 4'000'000;
  opt.unreachable_cooldown = 3600 * kNanosPerSecond;  // only reset_peer clears
  auto sender = net::TcpTransport::listen(0, [](std::vector<std::byte>) {},
                                          opt);
  ASSERT_TRUE(sender.is_ok());

  std::atomic<int> unreachable_hooks{0};
  std::string hook_addr;
  std::mutex hook_mu;
  sender.value()->set_unreachable_hook([&](const std::string& a) {
    std::lock_guard lk(hook_mu);
    hook_addr = a;
    unreachable_hooks++;
  });

  ASSERT_TRUE(sender.value()->send(addr, bytes_of("void")).is_ok());
  ASSERT_TRUE(wait_until(
      [&] { return sender.value()->peer_state(addr).unreachable; }, 10'000));
  EXPECT_GE(unreachable_hooks.load(), 1);
  {
    std::lock_guard lk(hook_mu);
    EXPECT_EQ(hook_addr, addr);
  }
  EXPECT_EQ(sender.value()->send(addr, bytes_of("still-void")).code(),
            ErrorCode::kUnavailable);

  // The peer comes back; the runtime clears the verdict and traffic flows.
  std::atomic<int> received{0};
  auto revived = net::TcpTransport::listen(port, [&](std::vector<std::byte>) {
    received++;
  });
  ASSERT_TRUE(revived.is_ok()) << revived.status().to_string();
  sender.value()->reset_peer(addr);
  ASSERT_TRUE(sender.value()->send(addr, bytes_of("hello-again")).is_ok());
  EXPECT_TRUE(wait_until([&] { return received.load() >= 1; }, 5000));
  sender.value()->close();
  revived.value()->close();
}

// --- inbound frame robustness ----------------------------------------------

TEST(TcpFaultTest, OversizedFrameCountedAndConnectionDropped) {
  std::atomic<int> received{0};
  auto a = net::TcpTransport::listen(0, [&](std::vector<std::byte>) {
    received++;
  });
  ASSERT_TRUE(a.is_ok());

  int fd = raw_connect(port_of(a.value()->local_address()));
  ASSERT_GE(fd, 0);
  std::uint32_t huge = 256u * 1024 * 1024;  // over the 64 MiB frame cap
  ASSERT_EQ(::send(fd, &huge, sizeof(huge), 0),
            static_cast<ssize_t>(sizeof(huge)));
  ASSERT_TRUE(wait_until(
      [&] { return a.value()->stats().frames_oversized >= 1; }, 5000));
  ::close(fd);

  // The listener survives and keeps serving well-formed traffic.
  auto b = net::TcpTransport::listen(0, [](std::vector<std::byte>) {});
  ASSERT_TRUE(b.is_ok());
  ASSERT_TRUE(
      b.value()->send(a.value()->local_address(), bytes_of("sane")).is_ok());
  EXPECT_TRUE(wait_until([&] { return received.load() >= 1; }, 5000));
  a.value()->close();
  b.value()->close();
}

TEST(TcpFaultTest, GarbageFramesDoNotKillAliveNode) {
  TcpNode::Options opt;
  opt.site.name = "hardened";
  auto node = TcpNode::create(opt);
  ASSERT_TRUE(node.is_ok());
  node.value()->bootstrap();

  int fd = raw_connect(port_of(node.value()->address()));
  ASSERT_GE(fd, 0);
  // A framed payload of junk (decode failure path), then a truncated
  // header (connection torn mid-frame).
  std::uint32_t len = 16;
  std::uint8_t junk[16];
  for (std::size_t i = 0; i < sizeof(junk); ++i) {
    junk[i] = static_cast<std::uint8_t>(0xC0 + i);
  }
  ASSERT_EQ(::send(fd, &len, sizeof(len), 0),
            static_cast<ssize_t>(sizeof(len)));
  ASSERT_EQ(::send(fd, junk, sizeof(junk), 0),
            static_cast<ssize_t>(sizeof(junk)));
  std::uint8_t half_header[2] = {0xFF, 0xFF};
  ASSERT_EQ(::send(fd, half_header, sizeof(half_header), 0),
            static_cast<ssize_t>(sizeof(half_header)));
  ::close(fd);
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // Still introspectable and still able to run a program.
  auto status = node.value()->status();
  ASSERT_TRUE(status.is_ok()) << status.status().to_string();
  auto spec = ProgramBuilder("still-alive")
                  .thread("entry", "out(7); exit(0);")
                  .entry("entry")
                  .build();
  auto pid = node.value()->start_program(spec);
  ASSERT_TRUE(pid.is_ok());
  auto code = node.value()->wait_program(pid.value(), 30 * kNanosPerSecond);
  ASSERT_TRUE(code.is_ok()) << code.status().to_string();
}

// --- fault injection --------------------------------------------------------

TEST(FaultyTransportTest, SeverAndHeal) {
  std::atomic<int> received{0};
  auto dst = net::TcpTransport::listen(0, [&](std::vector<std::byte>) {
    received++;
  });
  ASSERT_TRUE(dst.is_ok());
  const std::string addr = dst.value()->local_address();

  auto inner = net::TcpTransport::listen(0, [](std::vector<std::byte>) {});
  ASSERT_TRUE(inner.is_ok());
  net::FaultyTransport::Options fopt;
  fopt.seed = 42;
  net::FaultyTransport faulty(std::move(inner).value(), fopt);

  faulty.sever(addr, true);
  Status st = faulty.send(addr, bytes_of("lost"));
  EXPECT_EQ(st.code(), ErrorCode::kUnavailable);
  EXPECT_GE(faulty.stats().severed, 1u);
  EXPECT_EQ(received.load(), 0);

  faulty.sever(addr, false);
  ASSERT_TRUE(faulty.send(addr, bytes_of("healed")).is_ok());
  EXPECT_TRUE(wait_until([&] { return received.load() >= 1; }, 5000));
  faulty.close();
  dst.value()->close();
}

TEST(FaultyTransportTest, DropPatternIsDeterministicPerSeed) {
  auto run = [&](std::uint64_t seed) {
    auto dst = net::TcpTransport::listen(0, [](std::vector<std::byte>) {});
    EXPECT_TRUE(dst.is_ok());
    auto inner = net::TcpTransport::listen(0, [](std::vector<std::byte>) {});
    EXPECT_TRUE(inner.is_ok());
    net::FaultyTransport::Options fopt;
    fopt.seed = seed;
    fopt.base.drop = 0.5;
    net::FaultyTransport faulty(std::move(inner).value(), fopt);
    for (int i = 0; i < 200; ++i) {
      (void)faulty.send(dst.value()->local_address(),
                        bytes_of(std::to_string(i)));
    }
    auto stats = faulty.stats();
    faulty.close();
    dst.value()->close();
    return stats;
  };
  auto s1 = run(7);
  auto s2 = run(7);
  EXPECT_EQ(s1.dropped, s2.dropped) << "same seed must drop the same frames";
  EXPECT_EQ(s1.forwarded, s2.forwarded);
  EXPECT_GT(s1.dropped, 0u);
  EXPECT_GT(s1.forwarded, 0u);
}

TEST(FaultyTransportTest, DelayedFramesStillArrive) {
  std::atomic<int> received{0};
  auto dst = net::TcpTransport::listen(0, [&](std::vector<std::byte>) {
    received++;
  });
  ASSERT_TRUE(dst.is_ok());
  auto inner = net::TcpTransport::listen(0, [](std::vector<std::byte>) {});
  ASSERT_TRUE(inner.is_ok());
  net::FaultyTransport::Options fopt;
  fopt.seed = 3;
  fopt.base.delay = 20'000'000;  // 20 ms
  net::FaultyTransport faulty(std::move(inner).value(), fopt);
  ASSERT_TRUE(
      faulty.send(dst.value()->local_address(), bytes_of("later")).is_ok());
  EXPECT_GE(faulty.stats().delayed, 1u);
  EXPECT_TRUE(wait_until([&] { return received.load() >= 1; }, 5000));
  faulty.close();
  dst.value()->close();
}

TEST(FaultyTransportTest, KindRuleHitsOnlyMatchingFrames) {
  std::mutex mu;
  std::vector<std::string> got;
  auto dst = net::TcpTransport::listen(0, [&](std::vector<std::byte> b) {
    std::lock_guard lk(mu);
    got.emplace_back(reinterpret_cast<const char*>(b.data()), b.size());
  });
  ASSERT_TRUE(dst.is_ok());
  auto inner = net::TcpTransport::listen(0, [](std::vector<std::byte>) {});
  ASSERT_TRUE(inner.is_ok());
  net::FaultyTransport::Options fopt;
  fopt.seed = 5;
  // Classify frames by their first byte so the rule is easy to aim.
  fopt.classifier = [](std::span<const std::byte> frame) {
    return frame.empty() ? -1 : static_cast<int>(frame.front());
  };
  net::FaultyTransport faulty(std::move(inner).value(), fopt);
  net::FaultRule severed;
  severed.sever = true;
  faulty.set_kind_rule('A', severed);

  EXPECT_EQ(faulty.send(dst.value()->local_address(), bytes_of("Attack"))
                .code(),
            ErrorCode::kUnavailable);
  ASSERT_TRUE(
      faulty.send(dst.value()->local_address(), bytes_of("Benign")).is_ok());
  ASSERT_TRUE(wait_until(
      [&] {
        std::lock_guard lk(mu);
        return got.size() >= 1;
      },
      5000));
  std::lock_guard lk(mu);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], "Benign");
  faulty.close();
  dst.value()->close();
}

TEST(TcpNodeFaultTest, ClusterRunsThroughInjectedLatency) {
  TcpNode::Options opt1;
  opt1.site.name = "steady";
  auto n1 = TcpNode::create(opt1);
  ASSERT_TRUE(n1.is_ok());
  n1.value()->bootstrap();

  TcpNode::Options opt2;
  opt2.site.name = "jittery";
  net::FaultyTransport::Options faults;
  faults.seed = 11;
  faults.base.delay = 1'000'000;         // 1 ms on every frame
  faults.base.delay_jitter = 2'000'000;  // + up to 2 ms, seeded
  opt2.faults = faults;
  auto n2 = TcpNode::create(opt2);
  ASSERT_TRUE(n2.is_ok());
  ASSERT_NE(n2.value()->faulty_transport(), nullptr);
  ASSERT_TRUE(
      n2.value()
          ->join_cluster(n1.value()->address(), 15 * kNanosPerSecond)
          .is_ok());

  apps::PrimesParams params;
  params.p = 20;
  params.width = 8;
  params.work_mult = 0;
  auto pid = n1.value()->start_program(apps::make_primes_program(params));
  ASSERT_TRUE(pid.is_ok());
  auto code = n1.value()->wait_program(pid.value(), 60 * kNanosPerSecond);
  ASSERT_TRUE(code.is_ok()) << code.status().to_string();
  {
    std::lock_guard lk(n1.value()->site().lock());
    testing_util::expect_primes_verdict(
        n1.value()->site().io().outputs(pid.value()), 20, 8);
  }
  EXPECT_GT(n2.value()->faulty_transport()->stats().delayed, 0u);
}

// --- join resilience --------------------------------------------------------

TEST(TcpJoinTest, JoinToClosedPortReportsRefused) {
  auto probe = net::TcpTransport::listen(0, [](std::vector<std::byte>) {});
  ASSERT_TRUE(probe.is_ok());
  std::string dead_addr = probe.value()->local_address();
  probe.value()->close();

  TcpNode::Options opt;
  opt.transport.max_attempts = 2;
  opt.transport.backoff_base = 1'000'000;
  opt.transport.backoff_max = 2'000'000;
  auto node = TcpNode::create(opt);
  ASSERT_TRUE(node.is_ok());
  Status joined = node.value()->join_cluster(dead_addr, kNanosPerSecond);
  ASSERT_FALSE(joined.is_ok());
  EXPECT_NE(joined.to_string().find("refused"), std::string::npos)
      << joined.to_string();
}

TEST(TcpJoinTest, JoinSucceedsWhenContactStartsLate) {
  // Reserve a port, release it, and only bring the contact up after the
  // joiner has already been retrying for a while.
  auto probe = net::TcpTransport::listen(0, [](std::vector<std::byte>) {});
  ASSERT_TRUE(probe.is_ok());
  std::uint16_t port = port_of(probe.value()->local_address());
  std::string contact_addr = probe.value()->local_address();
  probe.value()->close();

  TcpNode::Options jopt;
  jopt.site.name = "early-bird";
  jopt.transport.backoff_base = 2'000'000;
  jopt.transport.backoff_max = 50'000'000;
  jopt.transport.unreachable_cooldown = 50'000'000;
  auto joiner = TcpNode::create(jopt);
  ASSERT_TRUE(joiner.is_ok());

  std::unique_ptr<TcpNode> contact;
  std::thread late_starter([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
    TcpNode::Options copt;
    copt.site.name = "late-contact";
    copt.port = port;
    auto n = TcpNode::create(copt);
    ASSERT_TRUE(n.is_ok()) << n.status().to_string();
    contact = std::move(n).value();
    contact->bootstrap();
  });
  Status joined = joiner.value()->join_cluster(contact_addr,
                                              20 * kNanosPerSecond);
  late_starter.join();
  EXPECT_TRUE(joined.is_ok()) << joined.to_string();
}

// --- the headline scenario --------------------------------------------------

/// SIGKILLs `pid` on destruction so a failing assertion never leaks the
/// spawned daemon.
struct ChildGuard {
  pid_t pid = -1;
  ~ChildGuard() {
    if (pid > 0) {
      ::kill(pid, SIGKILL);
      int st = 0;
      ::waitpid(pid, &st, 0);
    }
  }
  void reap() {
    if (pid > 0) {
      int st = 0;
      ::waitpid(pid, &st, 0);
      pid = -1;
    }
  }
};

TEST(TcpKillTest, KillDaemonMidProgramSurvivorsRecover) {
  SiteConfig cfg;
  cfg.checkpoints_enabled = true;
  cfg.checkpoint_interval = 150'000'000;  // 150 ms
  cfg.heartbeat_interval = 50'000'000;    // 50 ms
  cfg.failure_timeout = 400'000'000;      // 400 ms

  TcpNode::Options hopt;
  hopt.site = cfg;
  hopt.site.name = "home";
  auto home = TcpNode::create(hopt);
  ASSERT_TRUE(home.is_ok());
  home.value()->bootstrap();

  TcpNode::Options popt;
  popt.site = cfg;
  popt.site.name = "peer";
  auto peer = TcpNode::create(popt);
  ASSERT_TRUE(peer.is_ok());
  ASSERT_TRUE(
      peer.value()
          ->join_cluster(home.value()->address(), 15 * kNanosPerSecond)
          .is_ok());

  // Third site: a real sdvmd process we can SIGKILL — no destructors, no
  // sign-off, exactly what a power cut looks like to the survivors.
  std::string join_flag = home.value()->address();
  const char* argv[] = {SDVMD_BIN,        "--port",           "0",
                        "--join",          join_flag.c_str(), "--checkpoints",
                        "--heartbeat-ms",  "50",              "--failure-timeout-ms",
                        "400",             "--checkpoint-ms", "150",
                        "--name",          "victim",          nullptr};
  ChildGuard child;
  ASSERT_EQ(posix_spawn(&child.pid, SDVMD_BIN, nullptr, nullptr,
                        const_cast<char* const*>(argv), environ),
            0);

  ASSERT_TRUE(wait_until(
      [&] {
        std::lock_guard lk(home.value()->site().lock());
        return home.value()->site().cluster().cluster_size() == 3;
      },
      20'000))
      << "sdvmd child never joined the cluster";

  apps::PrimesParams params;
  params.p = 60;
  params.width = 6;
  params.work_mult = 0;
  params.spin = 300'000;  // real work: several seconds across 3 sites
  auto pid = home.value()->start_program(apps::make_primes_program(params));
  ASSERT_TRUE(pid.is_ok());

  // Let at least one coordinated checkpoint commit while all 3 are alive.
  ASSERT_TRUE(wait_until(
      [&] {
        std::lock_guard lk(home.value()->site().lock());
        return home.value()->site().crash().checkpoints_committed >= 1;
      },
      60'000))
      << "no checkpoint committed before the kill";
  {
    std::lock_guard lk(home.value()->site().lock());
    ASSERT_FALSE(home.value()->site().programs().is_terminated(pid.value()))
        << "program finished before the kill — increase spin";
  }

  ASSERT_EQ(::kill(child.pid, SIGKILL), 0);
  child.reap();

  // Survivors must detect the death, roll back to the committed epoch and
  // still finish with the correct verdict.
  auto code_home =
      home.value()->wait_program(pid.value(), 180 * kNanosPerSecond);
  ASSERT_TRUE(code_home.is_ok()) << code_home.status().to_string();
  auto code_peer =
      peer.value()->wait_program(pid.value(), 60 * kNanosPerSecond);
  ASSERT_TRUE(code_peer.is_ok()) << code_peer.status().to_string();
  EXPECT_EQ(code_home.value(), code_peer.value())
      << "survivors disagree on the committed result";

  std::uint64_t deaths = 0;
  std::uint64_t recoveries = 0;
  {
    std::lock_guard lk(home.value()->site().lock());
    testing_util::expect_primes_verdict(
        home.value()->site().io().outputs(pid.value()), 60, 6);
    deaths += home.value()->site().cluster().deaths_detected;
    recoveries += home.value()->site().crash().recoveries;
  }
  {
    std::lock_guard lk(peer.value()->site().lock());
    deaths += peer.value()->site().cluster().deaths_detected;
    recoveries += peer.value()->site().crash().recoveries;
  }
  EXPECT_GE(deaths, 1u) << "nobody noticed the SIGKILL";
  EXPECT_GE(recoveries, 1u) << "no checkpoint recovery ran";

  // Transport health surfaced through the unified introspection path.
  auto status = home.value()->status();
  ASSERT_TRUE(status.is_ok());
  EXPECT_GT(status.value().metrics.counter("net.frames_sent"), 0u);
  EXPECT_GT(status.value().metrics.counter("net.bytes_sent"), 0u);
}

}  // namespace
}  // namespace sdvm
