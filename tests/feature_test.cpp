// Tests for the paper's secondary mechanisms: accounting, code
// distribution sites, MicroC scheduling-hint spawns, lossy-network
// behaviour (why the paper abandoned UDP), and memory ping-pong under
// real contention.
#include <gtest/gtest.h>

#include "test_util.hpp"

#include "api/local_cluster.hpp"
#include "api/program_builder.hpp"
#include "apps/primes.hpp"
#include "runtime/context.hpp"
#include "sim/sim_cluster.hpp"

namespace sdvm {
namespace {

using sim::SimCluster;

TEST(AccountingTest, LedgerRecordsPerProgramWork) {
  SimCluster cluster;
  cluster.add_sites(2);
  apps::PrimesParams params;
  params.p = 20;
  params.width = 6;
  params.work_mult = 5'000'000;
  auto a = cluster.start_program(apps::make_primes_program(params));
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(cluster.run_program(a.value(), 600 * kNanosPerSecond).is_ok());

  apps::PrimesParams params2 = params;
  params2.p = 10;
  auto b = cluster.start_program(apps::make_primes_program(params2));
  ASSERT_TRUE(b.is_ok());
  ASSERT_TRUE(cluster.run_program(b.value(), 600 * kNanosPerSecond).is_ok());

  AccountEntry total_a, total_b;
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    const auto& ledger = cluster.site(i).processing().accounting();
    if (auto it = ledger.find(a.value()); it != ledger.end()) {
      total_a += it->second;
    }
    if (auto it = ledger.find(b.value()); it != ledger.end()) {
      total_b += it->second;
    }
  }
  // Both programs billed separately; the bigger job cost more.
  EXPECT_GT(total_a.microthreads, total_b.microthreads);
  EXPECT_GT(total_a.vm_instructions, 0u);
  EXPECT_GT(total_a.charged_cycles, 0u);
  // Ledgers survive program termination (bills outlive programs).
  EXPECT_TRUE(cluster.site(0).programs().is_terminated(a.value()));
}

TEST(AccountingTest, EntriesSumAcrossSites) {
  SimCluster cluster;
  cluster.add_sites(3);
  apps::PrimesParams params;
  params.p = 25;
  params.width = 8;
  params.work_mult = 10'000'000;
  auto pid = cluster.start_program(apps::make_primes_program(params));
  ASSERT_TRUE(pid.is_ok());
  ASSERT_TRUE(cluster.run_program(pid.value(), 600 * kNanosPerSecond).is_ok());

  std::uint64_t billed = 0, executed = 0;
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    const auto& ledger = cluster.site(i).processing().accounting();
    if (auto it = ledger.find(pid.value()); it != ledger.end()) {
      billed += it->second.microthreads;
    }
    executed += cluster.site(i).processing().executed_total;
  }
  EXPECT_EQ(billed, executed) << "every executed microthread must be billed";
}

TEST(CodeDistributionTest, DedicatedCodeSiteServesBinaries) {
  SimCluster cluster;
  SiteConfig home_cfg;
  home_cfg.platform = "linux-x86";
  cluster.add_sites(1, 1.0, home_cfg);

  SiteConfig code_site_cfg;
  code_site_cfg.platform = "hpux-parisc";
  code_site_cfg.code_distribution_site = true;
  cluster.add_sites(1, 1.0, code_site_cfg);

  SiteConfig worker_cfg;
  worker_cfg.platform = "hpux-parisc";
  cluster.add_sites(2, 1.0, worker_cfg);

  apps::PrimesParams params;
  params.p = 20;
  params.width = 8;
  params.work_mult = 10'000'000;
  auto pid = cluster.start_program(apps::make_primes_program(params));
  ASSERT_TRUE(pid.is_ok());
  ASSERT_TRUE(cluster.run_program(pid.value(), 600 * kNanosPerSecond).is_ok());

  // The code site advertised itself; after the first hpux compile the
  // binary was uploaded to it (besides home).
  EXPECT_TRUE(cluster.site(0).cluster().find(2) != nullptr &&
              cluster.site(0).cluster().find(2)->code_site);
  EXPECT_GT(cluster.site(1).code().uploads_received +
                cluster.site(1).code().compiles,
            0u)
      << "code distribution site never stocked the binary";
}

TEST(SpawnPrioTest, MicroCPriorityReachesFrame) {
  // spawnp's priority must drive the priority-ordered local queue. One
  // site, priority policy: the high-priority frame runs before the
  // low-priority one even though it was spawned second.
  SimCluster cluster;
  SiteConfig cfg;
  cfg.local_sched = LocalSchedPolicy::kPriority;
  cluster.add_sites(1, 1.0, cfg);

  auto spec = ProgramBuilder("prio")
                  .thread("entry", R"(
                    var low = spawnp("emit", 1, 1);
                    var high = spawnp("emit", 1, 99);
                    send(low, 0, 111);
                    send(high, 0, 999);
                  )")
                  .thread("emit", R"(
                    out(param(0));
                    if (param(0) == 111) { exit(0); }
                  )")
                  .entry("entry")
                  .build();
  auto pid = cluster.start_program(spec);
  ASSERT_TRUE(pid.is_ok());
  ASSERT_TRUE(cluster.run_program(pid.value(), 60 * kNanosPerSecond).is_ok());
  auto out = cluster.outputs(0, pid.value());
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], "999") << "high-priority frame must run first";
  EXPECT_EQ(out[1], "111");
}

TEST(LossyNetworkTest, ProgramSurvivesModerateLossViaRetries) {
  // The paper found raw UDP unusable (§4). Our runtime's request/reply
  // retries (help requests, code retries) tolerate loss on non-critical
  // paths, but lost apply-params are genuinely gone — exactly the damage
  // the paper describes. With loss only on gossip-heavy links the program
  // still completes.
  SimCluster cluster;
  cluster.add_sites(3);
  // 20% loss on every link EXCEPT those touching the home site (so frame
  // results and termination still get through deterministically).
  net::LinkModel lossy;
  lossy.latency = 100'000;
  lossy.loss = 0.2;
  auto addr = [&](std::size_t i) {
    return cluster.site(i).transport()->local_address();
  };
  cluster.network().set_link(addr(1), addr(2), lossy);
  cluster.network().set_link(addr(2), addr(1), lossy);

  apps::PrimesParams params;
  params.p = 15;
  params.width = 5;
  params.work_mult = 5'000'000;
  auto pid = cluster.start_program(apps::make_primes_program(params));
  ASSERT_TRUE(pid.is_ok());
  auto code = cluster.run_program(pid.value(), 600 * kNanosPerSecond);
  ASSERT_TRUE(code.is_ok()) << code.status().to_string();
  testing_util::expect_primes_verdict(cluster.outputs(0, pid.value()), 15, 5);
}

TEST(LossyNetworkTest, MessageReorderingTolerated) {
  // The paper abandoned UDP because packets arrive out of order (§4). The
  // SDVM's protocols are order-tolerant by construction — parameters fill
  // independent slots, requests pair by sequence number — so a jittery
  // (reordering) network must not affect correctness.
  SimCluster::Options options;
  options.link.latency = 100'000;
  options.link.jitter = 2'000'000;  // 20x the base latency: heavy reordering
  SimCluster cluster(options);
  cluster.add_sites(4);

  apps::PrimesParams params;
  params.p = 30;
  params.width = 10;
  params.work_mult = 5'000'000;
  auto pid = cluster.start_program(apps::make_primes_program(params));
  ASSERT_TRUE(pid.is_ok());
  auto code = cluster.run_program(pid.value(), 600 * kNanosPerSecond);
  ASSERT_TRUE(code.is_ok()) << code.status().to_string();
  testing_util::expect_primes_verdict(cluster.outputs(0, pid.value()), 30, 10);
}

TEST(MemoryContentionTest, PingPongObjectStaysCoherent) {
  // Two microthreads (likely on different sites) hammer the same global
  // object through the real migration protocol, each incrementing its own
  // word. The object ping-pongs between owners; no increment may be lost.
  LocalCluster cluster;
  cluster.add_sites(2);

  constexpr std::int64_t kIncrements = 25;
  auto spec =
      ProgramBuilder("pingpong")
          .native_thread("entry",
                         [](Context& ctx) {
                           GlobalAddress obj = ctx.alloc_global(2);
                           GlobalAddress done = ctx.spawn("check", 3);
                           ctx.send_int(done, 2,
                                        static_cast<std::int64_t>(obj.value));
                           for (int i = 0; i < 2; ++i) {
                             GlobalAddress w = ctx.spawn("bump", 3);
                             ctx.send_int(w, 0,
                                          static_cast<std::int64_t>(obj.value));
                             ctx.send_int(w, 1,
                                          static_cast<std::int64_t>(done.value));
                             ctx.send_int(w, 2, i);  // my word and done slot
                           }
                         })
          .native_thread("bump",
                         [](Context& ctx) {
                           GlobalAddress obj{
                               static_cast<std::uint64_t>(ctx.param_int(0))};
                           std::int64_t my_word = ctx.param_int(2);
                           for (std::int64_t i = 0; i < kIncrements; ++i) {
                             std::int64_t v = ctx.mem_read(obj, my_word);
                             ctx.mem_write(obj, my_word, v + 1);
                           }
                           GlobalAddress done{
                               static_cast<std::uint64_t>(ctx.param_int(1))};
                           ctx.send_int(done, static_cast<int>(my_word), 1);
                         })
          .native_thread("check",
                         [](Context& ctx) {
                           GlobalAddress obj{
                               static_cast<std::uint64_t>(ctx.param_int(2))};
                           ctx.out(ctx.mem_read(obj, 0));
                           ctx.out(ctx.mem_read(obj, 1));
                           ctx.exit_program(0);
                         })
          .entry("entry")
          .build();
  auto pid = cluster.start_program(spec);
  ASSERT_TRUE(pid.is_ok());
  auto code = cluster.wait_program(pid.value(), 60 * kNanosPerSecond);
  ASSERT_TRUE(code.is_ok()) << code.status().to_string();
  auto out = cluster.outputs(0, pid.value());
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], std::to_string(kIncrements));
  EXPECT_EQ(out[1], std::to_string(kIncrements));
}

}  // namespace
}  // namespace sdvm
