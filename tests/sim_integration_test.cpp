// End-to-end tests of the full SDVM daemon stack under the discrete-event
// simulator: dataflow execution, distribution via help requests, COMA
// memory migration, heterogeneous compile-on-the-fly, dynamic entry/exit,
// multi-program operation, and I/O routing.
#include <gtest/gtest.h>

#include "test_util.hpp"

#include "api/program_builder.hpp"
#include "runtime/context.hpp"
#include "apps/fibonacci.hpp"
#include "apps/matmul.hpp"
#include "apps/primes.hpp"
#include "sim/sim_cluster.hpp"

namespace sdvm {
namespace {

using sim::SimCluster;

ProgramSpec hello_program() {
  return ProgramBuilder("hello")
      .thread("entry", R"( out(42); exit(0); )")
      .entry("entry")
      .build();
}

TEST(SimBasicTest, SingleSiteHelloWorld) {
  SimCluster cluster;
  cluster.add_sites(1);
  auto pid = cluster.start_program(hello_program());
  ASSERT_TRUE(pid.is_ok()) << pid.status().to_string();
  auto code = cluster.run_program(pid.value(), 5 * kNanosPerSecond);
  ASSERT_TRUE(code.is_ok()) << code.status().to_string();
  EXPECT_EQ(code.value(), 0);
  EXPECT_EQ(cluster.outputs(0, pid.value()),
            std::vector<std::string>{"42"});
}

TEST(SimBasicTest, ExitCodePropagates) {
  SimCluster cluster;
  cluster.add_sites(1);
  auto pid = cluster.start_program(
      ProgramBuilder("ec").thread("entry", "exit(17);").entry("entry").build());
  ASSERT_TRUE(pid.is_ok());
  auto code = cluster.run_program(pid.value(), 5 * kNanosPerSecond);
  ASSERT_TRUE(code.is_ok()) << code.status().to_string();
  EXPECT_EQ(code.value(), 17);
}

TEST(SimBasicTest, DataflowFiringRule) {
  // A 3-parameter collector fires only after all three sends arrive.
  SimCluster cluster;
  cluster.add_sites(1);
  auto spec = ProgramBuilder("firing")
                  .thread("entry", R"(
                    var c = spawn("collect", 3);
                    var i = 0;
                    while (i < 3) {
                      var w = spawn("work", 2);
                      send(w, 0, c);
                      send(w, 1, i);
                      i = i + 1;
                    }
                  )")
                  .thread("work", R"(
                    send(param(0), param(1), (param(1) + 1) * 10);
                  )")
                  .thread("collect", R"(
                    out(param(0) + param(1) + param(2));
                    exit(0);
                  )")
                  .entry("entry")
                  .build();
  auto pid = cluster.start_program(spec);
  ASSERT_TRUE(pid.is_ok());
  auto code = cluster.run_program(pid.value(), 5 * kNanosPerSecond);
  ASSERT_TRUE(code.is_ok()) << code.status().to_string();
  EXPECT_EQ(cluster.outputs(0, pid.value()),
            std::vector<std::string>{"60"});
}

TEST(SimBasicTest, NativeMicrothread) {
  SimCluster cluster;
  cluster.add_sites(1);
  auto spec = ProgramBuilder("native")
                  .native_thread("entry",
                                 [](Context& ctx) {
                                   ctx.out_str("native says hi");
                                   ctx.charge(1000);
                                   ctx.exit_program(0);
                                 })
                  .entry("entry")
                  .build();
  auto pid = cluster.start_program(spec);
  ASSERT_TRUE(pid.is_ok());
  auto code = cluster.run_program(pid.value(), 5 * kNanosPerSecond);
  ASSERT_TRUE(code.is_ok()) << code.status().to_string();
  EXPECT_EQ(cluster.outputs(0, pid.value()),
            std::vector<std::string>{"native says hi"});
}

TEST(SimDistributionTest, WorkSpreadsAcrossSites) {
  SimCluster cluster;
  cluster.add_sites(4);
  apps::PrimesParams params;
  params.p = 25;
  params.width = 8;
  params.work_mult = 5'000'000;
  auto pid = cluster.start_program(apps::make_primes_program(params));
  ASSERT_TRUE(pid.is_ok());
  auto code = cluster.run_program(pid.value(), 600 * kNanosPerSecond);
  ASSERT_TRUE(code.is_ok()) << code.status().to_string();

  // Every site must have executed a share of the microthreads.
  std::uint64_t total = 0;
  int active_sites = 0;
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    std::uint64_t n = cluster.site(i).processing().executed_total;
    total += n;
    if (n > 0) ++active_sites;
  }
  EXPECT_GE(active_sites, 3) << "work did not distribute";
  EXPECT_GT(total, 25u);
  // Correct answer: 25 primes found.
  auto out = cluster.outputs(0, pid.value());
  ASSERT_FALSE(out.empty());
  testing_util::expect_primes_verdict(out, 25, 8);
}

TEST(SimDistributionTest, FasterSitesDoMoreWork) {
  SimCluster cluster;
  SiteConfig base;
  cluster.add_sites(1, /*speed=*/4.0, base);
  cluster.add_sites(1, /*speed=*/1.0, base);
  apps::PrimesParams params;
  params.p = 40;
  params.width = 8;
  params.work_mult = 10'000'000;
  auto pid = cluster.start_program(apps::make_primes_program(params));
  ASSERT_TRUE(pid.is_ok());
  auto code = cluster.run_program(pid.value(), 600 * kNanosPerSecond);
  ASSERT_TRUE(code.is_ok()) << code.status().to_string();
  // The 4x site should execute clearly more microthreads (load balancing
  // via demand-driven help requests).
  EXPECT_GT(cluster.site(0).processing().executed_total,
            cluster.site(1).processing().executed_total);
}

TEST(SimMemoryTest, MatmulOverAttractionMemory) {
  SimCluster cluster;
  cluster.add_sites(3);
  apps::MatmulParams params;
  params.n = 8;
  params.block_rows = 2;
  auto pid = cluster.start_program(apps::make_matmul_program(params));
  ASSERT_TRUE(pid.is_ok());
  auto code = cluster.run_program(pid.value(), 600 * kNanosPerSecond);
  ASSERT_TRUE(code.is_ok()) << code.status().to_string();

  // Checksum must match the reference product.
  auto ref = apps::matmul_reference(params.n);
  std::int64_t expected = 0;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    expected += ref[i] * (static_cast<std::int64_t>(i) % 13 + 1);
  }
  auto out = cluster.outputs(0, pid.value());
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out.back(), std::to_string(expected));
}

TEST(SimMemoryTest, ObjectsMigrateBetweenSites) {
  SimCluster cluster;
  SiteConfig cfg;
  // Eager work stealing so blocks spread before the home site finishes
  // them all locally (the blocks are compute-light).
  cfg.help_retry_interval = 50'000;
  cluster.add_sites(3, 1.0, cfg);
  apps::MatmulParams params;
  params.n = 16;
  params.block_rows = 2;
  auto pid = cluster.start_program(apps::make_matmul_program(params));
  ASSERT_TRUE(pid.is_ok());
  ASSERT_TRUE(cluster.run_program(pid.value(), 600 * kNanosPerSecond).is_ok());
  std::uint64_t migrations = 0;
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    migrations += cluster.site(i).memory().migrations_in;
  }
  EXPECT_GT(migrations, 0u) << "COMA migration never happened";
}

TEST(SimFibTest, RecursiveDataflowCorrect) {
  SimCluster cluster;
  cluster.add_sites(4);
  apps::FibParams params;
  params.n = 12;
  params.leaf_work = 200'000;
  auto pid = cluster.start_program(apps::make_fib_program(params));
  ASSERT_TRUE(pid.is_ok());
  auto code = cluster.run_program(pid.value(), 600 * kNanosPerSecond);
  ASSERT_TRUE(code.is_ok()) << code.status().to_string();
  auto out = cluster.outputs(0, pid.value());
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out.back(), std::to_string(apps::fib_reference(12)));
}

TEST(SimHeterogeneousTest, ForeignPlatformCompilesOnTheFly) {
  SimCluster cluster;
  SiteConfig linux_cfg;
  linux_cfg.platform = "linux-x86";
  SiteConfig hpux_cfg;
  hpux_cfg.platform = "hpux-parisc";
  cluster.add_sites(1, 1.0, linux_cfg);
  cluster.add_sites(1, 1.0, hpux_cfg);
  cluster.add_sites(1, 1.0, hpux_cfg);

  apps::PrimesParams params;
  params.p = 20;
  params.width = 6;
  params.work_mult = 10'000'000;
  auto pid = cluster.start_program(apps::make_primes_program(params));
  ASSERT_TRUE(pid.is_ok());
  auto code = cluster.run_program(pid.value(), 600 * kNanosPerSecond);
  ASSERT_TRUE(code.is_ok()) << code.status().to_string();

  // The first hpux site got source and compiled; its upload should let
  // the second hpux site fetch a binary (or at worst compile too).
  std::uint64_t hpux_compiles = cluster.site(1).code().compiles +
                                cluster.site(2).code().compiles;
  std::uint64_t hpux_sources = cluster.site(1).code().source_fetches +
                               cluster.site(2).code().source_fetches;
  EXPECT_GT(hpux_sources, 0u) << "source fallback never exercised";
  EXPECT_GT(hpux_compiles, 0u);
  // Uploads must have reached the home (code distribution) site.
  EXPECT_GT(cluster.site(0).code().uploads_received, 0u);
}

TEST(SimHeterogeneousTest, BinaryReusedAfterUpload) {
  // One foreign-platform site compiles and uploads; a later-joining site
  // of the same platform should fetch the binary, not the source.
  SimCluster cluster;
  SiteConfig linux_cfg;
  linux_cfg.platform = "linux-x86";
  SiteConfig hpux_cfg;
  hpux_cfg.platform = "hpux-parisc";
  cluster.add_sites(1, 1.0, linux_cfg);
  cluster.add_sites(1, 1.0, hpux_cfg);

  apps::PrimesParams params;
  params.p = 15;
  params.width = 6;
  params.work_mult = 10'000'000;
  auto pid = cluster.start_program(apps::make_primes_program(params));
  ASSERT_TRUE(pid.is_ok());
  ASSERT_TRUE(cluster.run_program(pid.value(), 600 * kNanosPerSecond).is_ok());

  std::uint64_t first_compiles = cluster.site(1).code().compiles;
  EXPECT_GT(first_compiles, 0u);

  // New same-platform site joins and runs another program instance.
  cluster.add_sites(1, 1.0, hpux_cfg);
  auto pid2 = cluster.start_program(apps::make_primes_program(params));
  ASSERT_TRUE(pid2.is_ok());
  ASSERT_TRUE(cluster.run_program(pid2.value(), 600 * kNanosPerSecond).is_ok());
  EXPECT_GT(cluster.site(2).code().binary_fetches +
                cluster.site(2).code().compiles,
            0u);
}

TEST(SimMultiProgramTest, TwoProgramsRunIndependently) {
  SimCluster cluster;
  cluster.add_sites(3);
  apps::PrimesParams p1;
  p1.p = 15;
  p1.width = 5;
  p1.work_mult = 5'000'000;
  apps::FibParams p2;
  p2.n = 10;
  p2.leaf_work = 500'000;

  auto a = cluster.start_program(apps::make_primes_program(p1), 0);
  auto b = cluster.start_program(apps::make_fib_program(p2), 1);
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  ASSERT_TRUE(cluster.run_program(a.value(), 600 * kNanosPerSecond).is_ok());
  ASSERT_TRUE(cluster.run_program(b.value(), 600 * kNanosPerSecond).is_ok());

  testing_util::expect_primes_verdict(cluster.outputs(0, a.value()), 15, 5);
  EXPECT_EQ(cluster.outputs(1, b.value()).back(),
            std::to_string(apps::fib_reference(10)));
}

TEST(SimDynamicTest, SiteJoinsMidRun) {
  SimCluster cluster;
  cluster.add_sites(2);
  apps::PrimesParams params;
  params.p = 60;
  params.width = 10;
  params.work_mult = 20'000'000;
  auto pid = cluster.start_program(apps::make_primes_program(params));
  ASSERT_TRUE(pid.is_ok());

  // Let it run a bit, then a new site joins and should pick up work.
  cluster.loop().run_for(kNanosPerSecond / 2);
  cluster.add_sites(2);
  auto code = cluster.run_program(pid.value(), 3000 * kNanosPerSecond);
  ASSERT_TRUE(code.is_ok()) << code.status().to_string();
  EXPECT_GT(cluster.site(2).processing().executed_total +
                cluster.site(3).processing().executed_total,
            0u)
      << "late joiners never got work";
  testing_util::expect_primes_verdict(cluster.outputs(0, pid.value()), 60, 10);
}

TEST(SimDynamicTest, GracefulSignOffMidRun) {
  SimCluster cluster;
  cluster.add_sites(4);
  apps::PrimesParams params;
  params.p = 60;
  params.width = 10;
  params.work_mult = 20'000'000;
  auto pid = cluster.start_program(apps::make_primes_program(params));
  ASSERT_TRUE(pid.is_ok());

  cluster.loop().run_for(kNanosPerSecond / 2);
  // Site 3 (not the home) leaves gracefully; its frames relocate.
  auto successor = cluster.sign_off(3);
  ASSERT_TRUE(successor.is_ok()) << successor.status().to_string();

  auto code = cluster.run_program(pid.value(), 3000 * kNanosPerSecond);
  ASSERT_TRUE(code.is_ok()) << code.status().to_string();
  testing_util::expect_primes_verdict(cluster.outputs(0, pid.value()), 60, 10);
}

TEST(SimDynamicTest, KillThenRejoinUnderPartition) {
  // A site crashes behind an active partition while a replacement joins
  // through the still-reachable side; after the heal the program must
  // still commit the right result via checkpoint recovery.
  SimCluster cluster;
  SiteConfig cfg;
  cfg.checkpoints_enabled = true;
  cfg.checkpoint_interval = kNanosPerSecond / 2;
  cfg.heartbeat_interval = 100'000'000;
  cfg.failure_timeout = 400'000'000;
  cluster.add_sites(4, 1.0, cfg);

  apps::PrimesParams params;
  params.p = 60;
  params.width = 8;
  params.work_mult = 30'000'000;
  auto pid = cluster.start_program(apps::make_primes_program(params));
  ASSERT_TRUE(pid.is_ok());
  cluster.loop().run_for(kNanosPerSecond);

  auto addr = [&](std::size_t i) {
    return cluster.site(i).transport()->local_address();
  };
  cluster.network().partition({addr(0), addr(1)}, {addr(2), addr(3)});
  cluster.kill(3);

  // The replacement signs on via the home site, which the partition does
  // not cut off from the new endpoint.
  Site& fresh = cluster.add_site(cfg, /*contact_index=*/0);
  EXPECT_TRUE(fresh.joined()) << "join through live side failed";

  // Let the failure detector fire on both sides of the cut, then heal.
  cluster.loop().run_for(kNanosPerSecond);
  cluster.network().heal();
  // heal() clears the fabric's kill set too; the crashed site must stay
  // black-holed.
  cluster.network().kill(addr(3));

  auto code = cluster.run_program(pid.value(), 3000 * kNanosPerSecond);
  ASSERT_TRUE(code.is_ok()) << code.status().to_string();
  testing_util::expect_primes_verdict(cluster.outputs(0, pid.value()), 60, 8);
  // The crash (and the unreachable far side) must have triggered at least
  // one checkpoint recovery at the coordinator.
  EXPECT_GE(cluster.site(0).crash().recoveries, 1u);
}

TEST(SimIoTest, OutputRoutedToFrontend) {
  SimCluster cluster;
  cluster.add_sites(3);
  // Every worker outputs; all lines must land at the home site (site 0).
  auto spec = ProgramBuilder("io")
                  .thread("entry", R"(
                    var c = spawn("collect", 4);
                    var i = 0;
                    while (i < 4) {
                      var w = spawn("work", 2);
                      send(w, 0, c);
                      send(w, 1, i);
                      i = i + 1;
                    }
                  )")
                  .thread("work", R"(
                    out(selfsite() * 1000 + param(1));
                    send(param(0), param(1), 1);
                  )")
                  .thread("collect", R"( outs("done"); exit(0); )")
                  .entry("entry")
                  .build();
  auto pid = cluster.start_program(spec);
  ASSERT_TRUE(pid.is_ok());
  ASSERT_TRUE(cluster.run_program(pid.value(), 60 * kNanosPerSecond).is_ok());
  auto out = cluster.outputs(0, pid.value());
  EXPECT_EQ(out.size(), 5u);  // 4 worker lines + "done"
  EXPECT_EQ(out.back(), "done");
  // No output lines anywhere else.
  EXPECT_TRUE(cluster.outputs(1, pid.value()).empty());
  EXPECT_TRUE(cluster.outputs(2, pid.value()).empty());
}

TEST(SimIoTest, RemoteFileAccessRerouted) {
  SimCluster cluster;
  cluster.add_sites(2);
  // Seed a file on site 2's VFS; a native thread on site 1 reads it.
  cluster.site(1).io().vfs_put("data.txt", "attraction");

  auto spec =
      ProgramBuilder("files")
          .native_thread("entry",
                         [](Context& ctx) {
                           std::string v = ctx.file_read("@2/data.txt");
                           ctx.out_str("read: " + v);
                           ctx.file_write("@2/result.txt", "stored");
                           ctx.exit_program(0);
                         })
          .entry("entry")
          .build();
  auto pid = cluster.start_program(spec);
  ASSERT_TRUE(pid.is_ok());
  ASSERT_TRUE(cluster.run_program(pid.value(), 60 * kNanosPerSecond).is_ok());
  EXPECT_EQ(cluster.outputs(0, pid.value()).back(), "read: attraction");
  auto stored = cluster.site(1).io().vfs_get("result.txt");
  ASSERT_TRUE(stored.is_ok());
  EXPECT_EQ(stored.value(), "stored");
}

TEST(SimSecurityTest, EncryptedClusterRuns) {
  SimCluster cluster;
  SiteConfig cfg;
  cfg.encrypt = true;
  cfg.cluster_password = "topsecret";
  cluster.add_sites(3, 1.0, cfg);
  apps::PrimesParams params;
  params.p = 15;
  params.width = 5;
  params.work_mult = 5'000'000;
  auto pid = cluster.start_program(apps::make_primes_program(params));
  ASSERT_TRUE(pid.is_ok());
  auto code = cluster.run_program(pid.value(), 600 * kNanosPerSecond);
  ASSERT_TRUE(code.is_ok()) << code.status().to_string();
  testing_util::expect_primes_verdict(cluster.outputs(0, pid.value()), 15, 5);
  EXPECT_GT(cluster.site(0).security().sealed_count, 0u);
  EXPECT_GT(cluster.site(1).security().opened_count, 0u);
}

TEST(SimSchedulingTest, HelpRequestCountersMove) {
  SimCluster cluster;
  cluster.add_sites(4);
  apps::PrimesParams params;
  params.p = 30;
  params.width = 10;
  params.work_mult = 10'000'000;
  auto pid = cluster.start_program(apps::make_primes_program(params));
  ASSERT_TRUE(pid.is_ok());
  ASSERT_TRUE(cluster.run_program(pid.value(), 600 * kNanosPerSecond).is_ok());

  std::uint64_t requests = 0, given = 0, received = 0;
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    requests += cluster.site(i).scheduling().help_requests_sent;
    given += cluster.site(i).scheduling().help_frames_given;
    received += cluster.site(i).scheduling().help_frames_received;
  }
  EXPECT_GT(requests, 0u);
  EXPECT_GT(given, 0u);
  EXPECT_EQ(given, received);  // conservation: no frame lost or duplicated
}

}  // namespace
}  // namespace sdvm
