// Tests for the deterministic chaos harness: fabric-level delivery
// determinism, schedule generation and JSON round-trips, invariant
// checking over real cluster runs, and ddmin shrinking of failing
// schedules down to replayable artifacts.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "chaos/harness.hpp"
#include "chaos/schedule.hpp"
#include "chaos/shrink.hpp"
#include "net/inproc.hpp"
#include "sim/sim_cluster.hpp"

namespace sdvm {
namespace {

using chaos::ChaosHarness;
using chaos::ChaosSchedule;
using chaos::EventKind;
using sim::SimCluster;

// ---------------------------------------------------------------------------
// SimCluster::Options validation (link loss must be a probability)
// ---------------------------------------------------------------------------

TEST(ChaosOptionsTest, LossValidationEdges) {
  SimCluster::Options opt;
  opt.link.loss = 0.0;  // lower edge: valid
  EXPECT_TRUE(opt.validate().is_ok());
  opt.link.loss = 0.999;
  EXPECT_TRUE(opt.validate().is_ok());
  opt.link.loss = 1.0;  // upper edge: a link that drops everything
  auto at_one = opt.validate();
  ASSERT_FALSE(at_one.is_ok());
  EXPECT_EQ(at_one.code(), ErrorCode::kInvalidArgument);
  opt.link.loss = -0.25;
  auto negative = opt.validate();
  ASSERT_FALSE(negative.is_ok());
  EXPECT_EQ(negative.code(), ErrorCode::kInvalidArgument);
}

TEST(ChaosOptionsTest, ConstructorClampsOutOfRangeLoss) {
  SimCluster::Options high;
  high.link.loss = 1.5;
  SimCluster clamped_high(high);
  EXPECT_LT(clamped_high.options().link.loss, 1.0);
  EXPECT_GE(clamped_high.options().link.loss, 0.0);

  SimCluster::Options low;
  low.link.loss = -3.0;
  SimCluster clamped_low(low);
  EXPECT_EQ(clamped_low.options().link.loss, 0.0);
}

// ---------------------------------------------------------------------------
// InProcNetwork: seeded loss/partition behaviour is deterministic
// ---------------------------------------------------------------------------

std::vector<std::string> delivery_trace(std::uint64_t seed) {
  net::InProcNetwork fabric(seed);
  net::LinkModel link;
  link.loss = 0.3;  // no latency: delivery is inline and single-threaded
  fabric.set_default_link(link);

  std::vector<std::string> trace;
  fabric.set_trace_hook([&trace](const std::string& from,
                                 const std::string& to, std::size_t bytes,
                                 bool delivered) {
    trace.push_back(from + ">" + to + ":" + std::to_string(bytes) +
                    (delivered ? ":ok" : ":drop"));
  });

  auto a = fabric.attach([](std::vector<std::byte>) {});
  auto b = fabric.attach([](std::vector<std::byte>) {});
  for (int i = 0; i < 100; ++i) {
    std::vector<std::byte> payload(static_cast<std::size_t>(i % 17 + 1));
    (void)a->send(b->local_address(), payload);
    if (i == 50) {
      fabric.partition({a->local_address()}, {b->local_address()});
    }
    if (i == 60) fabric.heal();
  }
  return trace;
}

TEST(ChaosNetworkTest, SameSeedSameDeliveryTrace) {
  auto first = delivery_trace(99);
  auto second = delivery_trace(99);
  EXPECT_EQ(first, second) << "loss decisions must be pure in the seed";
  ASSERT_EQ(first.size(), 100u);
  // The partition window must drop unconditionally.
  for (int i = 51; i <= 60; ++i) {
    EXPECT_TRUE(first[static_cast<std::size_t>(i)].ends_with(":drop"))
        << "message " << i << " crossed an active partition";
  }
}

TEST(ChaosNetworkTest, DifferentSeedsDiverge) {
  EXPECT_NE(delivery_trace(99), delivery_trace(100))
      << "distinct seeds should produce distinct loss patterns";
}

// ---------------------------------------------------------------------------
// Schedule generation and serialization
// ---------------------------------------------------------------------------

TEST(ChaosScheduleTest, GeneratorIsPureInSeed) {
  chaos::GeneratorOptions opts;
  opts.events = 20;
  ChaosSchedule a = chaos::generate_schedule(7, opts);
  ChaosSchedule b = chaos::generate_schedule(7, opts);
  EXPECT_EQ(a, b);
  ChaosSchedule c = chaos::generate_schedule(8, opts);
  EXPECT_NE(a, c);
  // Times strictly increase, so replayed subsets keep their order.
  for (std::size_t i = 1; i < a.events.size(); ++i) {
    EXPECT_GT(a.events[i].at, a.events[i - 1].at);
  }
}

TEST(ChaosScheduleTest, JsonRoundTrips) {
  chaos::GeneratorOptions opts;
  opts.events = 15;
  opts.loss_max = 0.4;  // cover the loss field too
  ChaosSchedule original = chaos::generate_schedule(21, opts);
  auto parsed = ChaosSchedule::from_json(original.to_json());
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed.value(), original);
}

TEST(ChaosScheduleTest, ParserSkipsUnknownKeysAndRejectsGarbage) {
  auto parsed = ChaosSchedule::from_json(
      R"({"seed": 5, "extra": {"nested": [1, "x", true]},
          "events": [{"at": 10, "kind": "heal", "note": "why"}],
          "sites": 3})");
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed.value().seed, 5u);
  EXPECT_EQ(parsed.value().sites, 3);
  ASSERT_EQ(parsed.value().events.size(), 1u);
  EXPECT_EQ(parsed.value().events[0].kind, EventKind::kHeal);

  EXPECT_FALSE(ChaosSchedule::from_json("not json").is_ok());
  EXPECT_FALSE(
      ChaosSchedule::from_json(R"({"events": [{"kind": "volcano"}]})")
          .is_ok());
}

// ---------------------------------------------------------------------------
// Harness runs
// ---------------------------------------------------------------------------

TEST(ChaosHarnessTest, RunIsDeterministic) {
  chaos::GeneratorOptions opts;
  opts.sites = 3;
  opts.events = 6;
  ChaosSchedule schedule = chaos::generate_schedule(11, opts);
  chaos::RunReport first = ChaosHarness().run(schedule);
  chaos::RunReport second = ChaosHarness().run(schedule);
  EXPECT_EQ(first.trace, second.trace)
      << "same schedule must reproduce the identical virtual-time trace";
  EXPECT_EQ(first.passed, second.passed);
  EXPECT_EQ(first.exit_code, second.exit_code);
  for (std::size_t i = 0; i < first.violations.size(); ++i) {
    EXPECT_EQ(first.violations[i].to_line(), second.violations[i].to_line());
  }
}

TEST(ChaosHarnessTest, BenignChurnSweepPasses) {
  // The default profile (no loss, home protected, everything healed) must
  // hold every invariant: this is the CI smoke sweep in miniature.
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    ChaosSchedule schedule = chaos::generate_schedule(seed);
    chaos::RunReport report = ChaosHarness().run(schedule);
    std::string detail;
    for (const auto& v : report.violations) detail += v.to_line() + "\n";
    EXPECT_TRUE(report.passed)
        << "seed " << seed << " failed:\n" << detail;
  }
}

TEST(ChaosHarnessTest, CustomInvariantFires) {
  ChaosSchedule schedule;  // no fault events: plain run
  schedule.seed = 2;
  schedule.sites = 2;
  ChaosHarness harness;
  harness.add_invariant(
      "frame-books-balance",
      [](chaos::ChaosContext& ctx) -> std::optional<std::string> {
        std::uint64_t given = 0;
        std::uint64_t received = 0;
        for (std::size_t i = 0; i < ctx.cluster.size(); ++i) {
          if (!ctx.live(i)) continue;
          given += ctx.cluster.site(i).scheduling().help_frames_given;
          received += ctx.cluster.site(i).scheduling().help_frames_received;
        }
        if (given != received) {
          return "help frames given " + std::to_string(given) +
                 " != received " + std::to_string(received);
        }
        return std::nullopt;
      },
      /*quiescence_only=*/true);
  harness.add_invariant(
      "always-fails",
      [](chaos::ChaosContext&) -> std::optional<std::string> {
        return "intentional";
      },
      /*quiescence_only=*/true);
  chaos::RunReport report = harness.run(schedule);
  EXPECT_TRUE(report.terminated);
  ASSERT_FALSE(report.passed);
  bool saw_custom = false;
  for (const auto& v : report.violations) {
    EXPECT_NE(v.invariant, "frame-books-balance") << v.detail;
    saw_custom |= v.invariant == "always-fails";
  }
  EXPECT_TRUE(saw_custom);
}

TEST(ChaosHarnessTest, DurableSweepSurvivesHomeFaultsAndRestarts) {
  // Durability sweep in miniature: every site gets a crash-surviving state
  // store with disk faults injected, the home site is fair game, and
  // killed sites cold-restart mid-run. The durable invariants
  // (durable-epoch-monotone, durable-program-lost, program-home-live)
  // run alongside the standard suite.
  chaos::GeneratorOptions gen;
  gen.sites = 4;
  gen.events = 10;
  gen.allow_home_faults = true;
  gen.allow_restarts = true;

  chaos::HarnessOptions opts;
  opts.allow_home_faults = true;
  opts.durable_state = true;
  opts.disk_faults.torn_write = 0.05;
  opts.disk_faults.bit_flip = 0.05;

  bool saw_restart = false;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    ChaosSchedule schedule = chaos::generate_schedule(seed, gen);
    for (const auto& ev : schedule.events) {
      saw_restart |= ev.kind == EventKind::kRestart;
    }
    chaos::RunReport report = ChaosHarness(opts).run(schedule);
    std::string detail;
    for (const auto& v : report.violations) detail += v.to_line() + "\n";
    for (const auto& line : report.trace) detail += line + "\n";
    EXPECT_TRUE(report.passed) << "seed " << seed << " failed:\n" << detail;
  }
  EXPECT_TRUE(saw_restart)
      << "no generated schedule exercised a cold restart";
}

TEST(ChaosScheduleTest, RestartEventsRoundTripAndOnlyReviveKilled) {
  chaos::GeneratorOptions gen;
  gen.sites = 4;
  gen.events = 30;
  gen.allow_home_faults = true;
  gen.allow_restarts = true;
  ChaosSchedule schedule = chaos::generate_schedule(42, gen);

  // Restarts only target sites a prior kill (not sign-off) took down.
  std::map<std::uint32_t, bool> killed;
  for (const auto& ev : schedule.events) {
    if (ev.kind == EventKind::kKill) killed[ev.target] = true;
    if (ev.kind == EventKind::kSignOff) killed[ev.target] = false;
    if (ev.kind == EventKind::kRestart) {
      EXPECT_TRUE(killed[ev.target])
          << "restart of site " << ev.target << " which was not killed";
      killed[ev.target] = false;
    }
  }

  auto parsed = ChaosSchedule::from_json(schedule.to_json());
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed.value(), schedule);
}

// ---------------------------------------------------------------------------
// Shrinking
// ---------------------------------------------------------------------------

TEST(ChaosShrinkTest, LossWedgeShrinksToReplayableArtifact) {
  // A 50-event churn schedule in exploratory loss mode. The runtime
  // assumes reliable links (DESIGN.md §7), so a loss burst wedges the
  // program; ddmin must isolate a tiny culprit subset. Churn events
  // *after* a burst can mask the wedge: a kill triggers recovery, which
  // rolls execution back past the lost message and re-sends it — and the
  // k-replica durability layer widened that rescue window, so we scan
  // seeds for a schedule where no rescue happens rather than pin one.
  chaos::GeneratorOptions opts;
  opts.sites = 4;
  opts.events = 50;
  opts.loss_max = 0.6;

  chaos::HarnessOptions fast;
  ChaosSchedule schedule;
  chaos::RunReport report;
  bool wedged = false;
  for (std::uint64_t seed = 50; seed < 80 && !wedged; ++seed) {
    schedule = chaos::generate_schedule(seed, opts);
    if (schedule.events.size() < 50u) continue;
    report = ChaosHarness(fast).run(schedule);
    wedged = !report.passed;
  }
  ASSERT_TRUE(wedged)
      << "no seed in [50,80) produced a loss schedule that violates an "
         "invariant";
  const std::string target = report.violations.front().invariant;

  chaos::ShrinkResult shrunk =
      chaos::shrink_schedule(schedule, target, fast);
  EXPECT_LE(shrunk.minimal.events.size(), 10u)
      << "ddmin left " << shrunk.minimal.events.size() << " events";
  EXPECT_LT(shrunk.minimal.events.size(), schedule.events.size());
  EXPECT_FALSE(shrunk.report.passed);

  // The artifact replays: parse it back and reproduce the same violation.
  std::string artifact = chaos::make_artifact_json(shrunk.minimal,
                                                   shrunk.report);
  auto replayed = ChaosSchedule::from_json(artifact);
  ASSERT_TRUE(replayed.is_ok()) << replayed.status().to_string();
  EXPECT_EQ(replayed.value(), shrunk.minimal);
  chaos::RunReport rerun = ChaosHarness(fast).run(replayed.value());
  ASSERT_FALSE(rerun.passed);
  bool same_class = false;
  for (const auto& v : rerun.violations) {
    same_class |= v.invariant == target;
  }
  EXPECT_TRUE(same_class)
      << "replay failed differently than the original run";
}

}  // namespace
}  // namespace sdvm
