// Unit tests for sdvm_common: ids, global addresses, serialization,
// Status/Result, PRNG determinism, clocks.
#include <gtest/gtest.h>

#include <limits>

#include "common/clock.hpp"
#include "common/rng.hpp"
#include "common/serialize.hpp"
#include "common/status.hpp"
#include "common/types.hpp"

namespace sdvm {
namespace {

TEST(ProgramIdTest, PacksHomeSiteAndCounter) {
  ProgramId p(/*home=*/7, /*counter=*/42);
  EXPECT_EQ(p.home_site(), 7u);
  EXPECT_EQ(p.counter(), 42u);
  EXPECT_TRUE(p.valid());
  EXPECT_FALSE(ProgramId{}.valid());
}

TEST(GlobalAddressTest, PacksHomeSiteAndLocalId) {
  GlobalAddress a(/*home=*/3, /*local_counter=*/0x12345);
  EXPECT_EQ(a.home_site(), 3u);
  EXPECT_EQ(a.local_id(), 0x12345u);
  EXPECT_TRUE(a.valid());
}

TEST(GlobalAddressTest, LocalIdMasksTo40Bits) {
  GlobalAddress a(/*home=*/1, GlobalAddress::kLocalMask);
  EXPECT_EQ(a.local_id(), GlobalAddress::kLocalMask);
  EXPECT_EQ(a.home_site(), 1u);
}

TEST(GlobalAddressTest, DistinctHomesDistinctAddresses) {
  EXPECT_NE(GlobalAddress(1, 5), GlobalAddress(2, 5));
  EXPECT_NE(GlobalAddress(1, 5), GlobalAddress(1, 6));
  EXPECT_EQ(GlobalAddress(1, 5), GlobalAddress(1, 5));
}

TEST(SerializeTest, RoundTripsScalars) {
  ByteWriter w;
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFull);
  w.i32(-12345);
  w.i64(std::numeric_limits<std::int64_t>::min());
  w.f64(3.14159);
  w.boolean(true);
  w.str("hello sdvm");

  ByteReader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.i32(), -12345);
  EXPECT_EQ(r.i64(), std::numeric_limits<std::int64_t>::min());
  EXPECT_DOUBLE_EQ(r.f64(), 3.14159);
  EXPECT_TRUE(r.boolean());
  EXPECT_EQ(r.str(), "hello sdvm");
  EXPECT_TRUE(r.done());
}

TEST(SerializeTest, RoundTripsIds) {
  ByteWriter w;
  w.site(99);
  w.program(ProgramId(4, 7));
  w.address(GlobalAddress(2, 1000));

  ByteReader r(w.bytes());
  EXPECT_EQ(r.site(), 99u);
  EXPECT_EQ(r.program(), ProgramId(4, 7));
  EXPECT_EQ(r.address(), GlobalAddress(2, 1000));
}

TEST(SerializeTest, BlobRoundTrip) {
  std::vector<std::byte> data;
  for (int i = 0; i < 300; ++i) data.push_back(std::byte{static_cast<unsigned char>(i)});
  ByteWriter w;
  w.blob(data);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.blob(), data);
}

TEST(SerializeTest, TruncatedInputThrows) {
  ByteWriter w;
  w.u32(5);  // claims 5-byte payload that isn't there
  ByteReader r(w.bytes());
  EXPECT_THROW((void)r.str(), DecodeError);
}

TEST(SerializeTest, ReadPastEndThrows) {
  ByteWriter w;
  w.u16(1);
  ByteReader r(w.bytes());
  (void)r.u16();
  EXPECT_THROW((void)r.u8(), DecodeError);
}

TEST(SerializeTest, EmptyStringAndBlob) {
  ByteWriter w;
  w.str("");
  w.blob({});
  ByteReader r(w.bytes());
  EXPECT_EQ(r.str(), "");
  EXPECT_TRUE(r.blob().empty());
  EXPECT_TRUE(r.done());
}

TEST(SerializeTest, PodValueHelpers) {
  std::int64_t v = -987654321;
  auto bytes = to_bytes(v);
  EXPECT_EQ(from_bytes<std::int64_t>(bytes), v);
  EXPECT_THROW((void)from_bytes<std::int32_t>(bytes), DecodeError);
}

TEST(StatusTest, OkAndError) {
  Status ok = Status::ok();
  EXPECT_TRUE(ok.is_ok());
  Status err = Status::error(ErrorCode::kNotFound, "missing frame");
  EXPECT_FALSE(err.is_ok());
  EXPECT_EQ(err.code(), ErrorCode::kNotFound);
  EXPECT_EQ(err.to_string(), "not-found: missing frame");
}

TEST(ResultTest, ValueAndStatusPaths) {
  Result<int> good = 42;
  ASSERT_TRUE(good.is_ok());
  EXPECT_EQ(good.value(), 42);

  Result<int> bad = Status::error(ErrorCode::kUnavailable, "site gone");
  EXPECT_FALSE(bad.is_ok());
  EXPECT_EQ(bad.status().code(), ErrorCode::kUnavailable);
  EXPECT_EQ(bad.value_or(-1), -1);
}

TEST(RngTest, Deterministic) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b());
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformInRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    EXPECT_LT(rng.below(10), 10u);
  }
}

TEST(ClockTest, VirtualClockAdvances) {
  VirtualClock c;
  EXPECT_EQ(c.now(), 0);
  c.advance_to(12345);
  EXPECT_EQ(c.now(), 12345);
}

TEST(ClockTest, WallClockMonotone) {
  WallClock& c = WallClock::instance();
  Nanos a = c.now();
  Nanos b = c.now();
  EXPECT_LE(a, b);
}

TEST(ManagerIdTest, Names) {
  EXPECT_STREQ(to_string(ManagerId::kScheduling), "scheduling");
  EXPECT_STREQ(to_string(ManagerId::kAttractionMemory), "attraction-memory");
}

}  // namespace
}  // namespace sdvm
