// sdvm-mcc: the MicroC compiler as a standalone tool. Compiles a
// microthread source file (or a built-in sample) to bytecode, prints the
// disassembly, and optionally runs it with stub intrinsics — handy when
// developing SDVM applications.
//
//   $ ./mcc [file.mc]
#include <cstdio>
#include <fstream>
#include <sstream>

#include "microc/compiler.hpp"
#include "microc/vm.hpp"

using namespace sdvm;

namespace {

constexpr const char* kSample = R"(
  // Sample microthread: sum of squares below param(0).
  var n = param(0);
  var i = 1;
  var sum = 0;
  while (i < n) {
    sum = sum + i * i;
    i = i + 1;
  }
  out(sum);
)";

class StubHandler : public microc::IntrinsicHandler {
 public:
  std::int64_t param(std::int64_t i) override {
    std::printf("  [param(%lld) -> 10]\n", static_cast<long long>(i));
    return 10;
  }
  std::int64_t num_params() override { return 1; }
  std::int64_t spawn(const std::string& name, std::int64_t n) override {
    std::printf("  [spawn(\"%s\", %lld) -> frame @1000]\n", name.c_str(),
                static_cast<long long>(n));
    return 1000;
  }
  void send(std::int64_t f, std::int64_t s, std::int64_t v) override {
    std::printf("  [send(@%lld, %lld, %lld)]\n", static_cast<long long>(f),
                static_cast<long long>(s), static_cast<long long>(v));
  }
  std::int64_t alloc(std::int64_t n) override {
    heap_.emplace_back(static_cast<std::size_t>(n), 0);
    return static_cast<std::int64_t>(heap_.size() - 1);
  }
  std::int64_t load(std::int64_t a, std::int64_t i) override {
    return heap_.at(static_cast<std::size_t>(a))
        .at(static_cast<std::size_t>(i));
  }
  void store(std::int64_t a, std::int64_t i, std::int64_t v) override {
    heap_.at(static_cast<std::size_t>(a)).at(static_cast<std::size_t>(i)) = v;
  }
  void out(std::int64_t v) override {
    std::printf("  [out: %lld]\n", static_cast<long long>(v));
  }
  void out_str(const std::string& s) override {
    std::printf("  [out: \"%s\"]\n", s.c_str());
  }
  void charge(std::int64_t c) override {
    std::printf("  [charge %lld cycles]\n", static_cast<long long>(c));
  }
  std::int64_t self_site() override { return 1; }
  std::int64_t arg(std::int64_t) override { return 0; }
  std::int64_t num_args() override { return 0; }
  void exit_program(std::int64_t c) override {
    std::printf("  [exit(%lld)]\n", static_cast<long long>(c));
  }

 private:
  std::vector<std::vector<std::int64_t>> heap_;
};

}  // namespace

int main(int argc, char** argv) {
  std::string source;
  std::string name = "sample";
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    source = ss.str();
    name = argv[1];
  } else {
    source = kSample;
    std::printf("(no input file; compiling the built-in sample)\n");
  }

  auto prog = microc::compile(source, name);
  if (!prog.is_ok()) {
    std::fprintf(stderr, "compile error: %s\n",
                 prog.status().to_string().c_str());
    return 1;
  }

  auto artifact = prog.value().serialize();
  std::printf("\ncompiled '%s': %zu bytes of bytecode, %u locals, "
              "%zu-byte artifact\n\n", name.c_str(), prog.value().code.size(),
              prog.value().local_count, artifact.size());
  std::printf("%s\n", microc::disassemble(prog.value()).c_str());

  std::printf("running with stub intrinsics:\n");
  StubHandler handler;
  auto result = microc::Vm::run(prog.value(), handler);
  if (!result.status.is_ok()) {
    std::fprintf(stderr, "trap: %s\n", result.status.to_string().c_str());
    return 1;
  }
  std::printf("done: %llu VM instructions executed\n",
              static_cast<unsigned long long>(result.cycles));
  return 0;
}
