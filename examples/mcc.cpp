// sdvm-mcc: the MicroC compiler as a standalone tool. Compiles a
// microthread source file (or a built-in sample) to bytecode and
// optionally runs it with stub intrinsics — handy when developing SDVM
// applications.
//
//   $ ./mcc [flags] [file.mc]
//
//   --dump-ast       print the typed AST (post-typecheck)
//   --dump-ir        print the optimizer's IR listing and pass statistics
//   --dump-bytecode  print the bytecode disassembly
//   --no-opt         disable the IR optimizer (ablation / debugging)
//   --no-run         compile only, skip the stub-intrinsic execution
//
// Compile errors are reported as `file:line:col: message` followed by the
// offending source line and a caret marking the column.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "microc/compiler.hpp"
#include "microc/vm.hpp"

using namespace sdvm;

namespace {

constexpr const char* kSample = R"(
  // Sample microthread: sum of squares below param(0).
  var n = param(0);
  var i = 1;
  var sum = 0;
  while (i < n) {
    sum = sum + i * i;
    i = i + 1;
  }
  out(sum);
)";

class StubHandler : public microc::IntrinsicHandler {
 public:
  std::int64_t param(std::int64_t i) override {
    std::printf("  [param(%lld) -> 10]\n", static_cast<long long>(i));
    return 10;
  }
  std::int64_t num_params() override { return 1; }
  std::int64_t spawn(const std::string& name, std::int64_t n) override {
    std::printf("  [spawn(\"%s\", %lld) -> frame @1000]\n", name.c_str(),
                static_cast<long long>(n));
    return 1000;
  }
  void send(std::int64_t f, std::int64_t s, std::int64_t v) override {
    std::printf("  [send(@%lld, %lld, %lld)]\n", static_cast<long long>(f),
                static_cast<long long>(s), static_cast<long long>(v));
  }
  std::int64_t alloc(std::int64_t n) override {
    heap_.emplace_back(static_cast<std::size_t>(n), 0);
    return static_cast<std::int64_t>(heap_.size() - 1);
  }
  std::int64_t load(std::int64_t a, std::int64_t i) override {
    return heap_.at(static_cast<std::size_t>(a))
        .at(static_cast<std::size_t>(i));
  }
  void store(std::int64_t a, std::int64_t i, std::int64_t v) override {
    heap_.at(static_cast<std::size_t>(a)).at(static_cast<std::size_t>(i)) = v;
  }
  void out(std::int64_t v) override {
    std::printf("  [out: %lld]\n", static_cast<long long>(v));
  }
  void out_str(const std::string& s) override {
    std::printf("  [out: \"%s\"]\n", s.c_str());
  }
  void charge(std::int64_t c) override {
    std::printf("  [charge %lld cycles]\n", static_cast<long long>(c));
  }
  std::int64_t self_site() override { return 1; }
  std::int64_t arg(std::int64_t) override { return 0; }
  std::int64_t num_args() override { return 0; }
  void exit_program(std::int64_t c) override {
    std::printf("  [exit(%lld)]\n", static_cast<long long>(c));
  }

 private:
  std::vector<std::vector<std::int64_t>> heap_;
};

/// `file:line:col: message` plus the offending line with a caret.
void print_diagnostic(const std::string& file, const std::string& source,
                      const microc::CompileError& err) {
  std::fprintf(stderr, "%s:%d:%d: error: %s\n", file.c_str(), err.line,
               err.column, err.message.c_str());
  std::istringstream ss(source);
  std::string line;
  for (int i = 0; i < err.line && std::getline(ss, line); ++i) {
  }
  if (err.line > 0 && !line.empty()) {
    std::fprintf(stderr, "  %s\n", line.c_str());
    std::string pad;
    for (int i = 1; i < err.column && i <= static_cast<int>(line.size());
         ++i) {
      pad += line[static_cast<std::size_t>(i) - 1] == '\t' ? '\t' : ' ';
    }
    std::fprintf(stderr, "  %s^\n", pad.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool dump_ast = false, dump_ir = false, dump_bytecode = false;
  bool run = true;
  microc::CompileOptions options;
  std::string file;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--dump-ast") == 0) {
      dump_ast = true;
    } else if (std::strcmp(argv[i], "--dump-ir") == 0) {
      dump_ir = true;
    } else if (std::strcmp(argv[i], "--dump-bytecode") == 0) {
      dump_bytecode = true;
    } else if (std::strcmp(argv[i], "--no-opt") == 0) {
      options.optimize = false;
    } else if (std::strcmp(argv[i], "--no-run") == 0) {
      run = false;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf("usage: mcc [--dump-ast] [--dump-ir] [--dump-bytecode] "
                  "[--no-opt] [--no-run] [file.mc]\n");
      return 0;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "unknown flag %s (try --help)\n", argv[i]);
      return 2;
    } else {
      file = argv[i];
    }
  }

  std::string source;
  std::string name = "sample";
  if (!file.empty()) {
    std::ifstream in(file);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", file.c_str());
      return 1;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    source = ss.str();
    name = file;
  } else {
    source = kSample;
    std::printf("(no input file; compiling the built-in sample)\n");
  }

  microc::CompileError error;
  microc::CompileArtifacts artifacts;
  auto prog = microc::compile(source, name, options, &error, &artifacts);
  if (!prog.is_ok()) {
    print_diagnostic(file.empty() ? "<sample>" : file, source, error);
    return 1;
  }

  if (dump_ast) {
    std::printf("--- typed AST ---\n%s\n", artifacts.ast.c_str());
  }
  if (dump_ir) {
    if (!artifacts.opt_stats.empty()) {
      std::printf("--- optimizer: %s ---\n", artifacts.opt_stats.c_str());
    }
    std::printf("--- IR ---\n%s\n", artifacts.ir.c_str());
  }

  auto artifact = prog.value().serialize();
  std::printf("compiled '%s'%s: %zu bytes of bytecode, %u locals, "
              "%zu-byte artifact\n", name.c_str(),
              options.optimize ? "" : " (unoptimized)",
              prog.value().code.size(), prog.value().local_count,
              artifact.size());
  if (dump_bytecode) {
    std::printf("\n%s\n", microc::disassemble(prog.value()).c_str());
  }

  if (!run) return 0;
  std::printf("\nrunning with stub intrinsics:\n");
  StubHandler handler;
  auto result = microc::Vm::run(prog.value(), handler);
  if (!result.status.is_ok()) {
    std::fprintf(stderr, "trap: %s\n", result.status.to_string().c_str());
    return 1;
  }
  std::printf("done: %llu VM instructions executed\n",
              static_cast<unsigned long long>(result.cycles));
  return 0;
}
