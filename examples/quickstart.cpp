// Quickstart: the smallest complete SDVM application.
//
// Builds a two-site cluster inside this process (each site is a full SDVM
// daemon with its own engine and worker threads), submits a three-
// microthread dataflow program written in MicroC, and prints its output.
//
//   $ ./quickstart
//
// The program: an entry microthread fans out four "square" tasks; a
// collector fires when all four results have arrived (the dataflow firing
// rule), prints their sum, and terminates the program cluster-wide.
#include <cstdio>

#include "api/local_cluster.hpp"
#include "api/program_builder.hpp"

int main() {
  using namespace sdvm;

  // 1. A cluster: first site bootstraps, the second joins it — exactly the
  //    sign-on any remote machine would perform, just in-process.
  LocalCluster cluster;
  cluster.add_sites(2);
  std::printf("cluster up: %zu sites\n", cluster.size());

  // 2. The application, partitioned into microthreads (paper §2.1: "the
  //    programmer only has to split his application into tasks").
  auto spec =
      ProgramBuilder("quickstart")
          .thread("entry", R"(
            // Allocate the collector first: its global address is needed
            // by the workers ("every microframe should be allocated as
            // soon as possible", §3.2).
            var c = spawn("collect", 4);
            var i = 1;
            while (i <= 4) {
              var w = spawn("square", 3);
              send(w, 0, i);        // the number to square
              send(w, 1, c);        // where the result goes
              send(w, 2, i - 1);    // which parameter slot
              i = i + 1;
            }
          )")
          .thread("square", R"(
            send(param(1), param(2), param(0) * param(0));
          )")
          .thread("collect", R"(
            outs("1 + 4 + 9 + 16 =");
            out(param(0) + param(1) + param(2) + param(3));
            exit(0);
          )")
          .entry("entry")
          .build();

  // 3. Run it and wait. Microthreads are distributed across the cluster
  //    automatically; output is routed to this (frontend) site.
  auto pid = cluster.start_program(spec);
  if (!pid.is_ok()) {
    std::fprintf(stderr, "start failed: %s\n",
                 pid.status().to_string().c_str());
    return 1;
  }
  auto exit_code = cluster.wait_program(pid.value(), 30 * kNanosPerSecond);
  if (!exit_code.is_ok()) {
    std::fprintf(stderr, "wait failed: %s\n",
                 exit_code.status().to_string().c_str());
    return 1;
  }

  for (const auto& line : cluster.outputs(0, pid.value())) {
    std::printf("program says: %s\n", line.c_str());
  }
  std::printf("exit code: %lld\n",
              static_cast<long long>(exit_code.value()));
  return 0;
}
