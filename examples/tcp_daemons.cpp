// Real SDVM daemons over TCP sockets — the paper's deployment, in one
// process for demonstration. Each TcpNode is a complete daemon with a
// listener thread; they form a cluster through the standard sign-on
// protocol over 127.0.0.1, with the security manager encrypting every
// message using a start password.
//
//   $ ./tcp_daemons
//
// To run a real multi-process cluster, start one binary per machine with
// a bootstrap node and pass its host:port to the others (see TcpNode).
#include <cstdio>

#include "api/program_builder.hpp"
#include "api/tcp_node.hpp"
#include "apps/primes.hpp"

using namespace sdvm;

int main() {
  TcpNode::Options base;
  base.site.encrypt = true;
  base.site.cluster_password = "demo-password";

  auto n1 = TcpNode::create(base);
  if (!n1.is_ok()) {
    std::fprintf(stderr, "listen failed: %s\n",
                 n1.status().to_string().c_str());
    return 1;
  }
  n1.value()->bootstrap();
  std::printf("daemon 1 listening at %s (bootstrap)\n",
              n1.value()->address().c_str());

  auto n2 = TcpNode::create(base);
  auto n3 = TcpNode::create(base);
  if (!n2.is_ok() || !n3.is_ok()) return 1;
  for (auto* n : {n2.value().get(), n3.value().get()}) {
    Status joined = n->join_cluster(n1.value()->address(),
                                    10 * kNanosPerSecond);
    if (!joined.is_ok()) {
      std::fprintf(stderr, "join failed: %s\n", joined.to_string().c_str());
      return 1;
    }
    std::printf("daemon at %s joined (logical site %u)\n",
                n->address().c_str(), n->site().id());
  }

  apps::PrimesParams params;
  params.p = 100;
  params.width = 10;
  params.work_mult = 0;
  auto pid = n1.value()->start_program(apps::make_primes_program(params));
  if (!pid.is_ok()) return 1;
  auto code = n1.value()->wait_program(pid.value(), 60 * kNanosPerSecond);
  if (!code.is_ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 code.status().to_string().c_str());
    return 1;
  }

  {
    std::lock_guard lk(n1.value()->site().lock());
    auto out = n1.value()->site().io().outputs(pid.value());
    std::printf("result: %s primes found, over encrypted TCP\n",
                out.empty() ? "?" : out.back().c_str());
  }

  // Graceful shutdown: the daemons sign off in turn.
  n3.value()->shutdown();
  n2.value()->shutdown();
  n1.value()->shutdown();
  std::printf("all daemons shut down\n");
  return 0;
}
