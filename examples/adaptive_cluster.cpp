// The headline scenario of the paper's title: an *adaptive* cluster.
//
// A long computation starts on two slow "old" machines. Mid-run, two fast
// machines with a *different platform* join — they receive microthread
// source, compile it on the fly, upload binaries, and take over most of
// the work. Then one old machine signs off gracefully (hardware upgrade!),
// relocating its state. The program never notices.
//
//   $ ./adaptive_cluster
#include <cstdio>

#include "apps/primes.hpp"
#include "sim/sim_cluster.hpp"

using namespace sdvm;

int main() {
  sim::SimCluster cluster;

  SiteConfig old_machine;
  old_machine.platform = "linux-i686";
  old_machine.speed = 1.0;
  SiteConfig new_machine;
  new_machine.platform = "linux-arm64";  // no binaries exist for this yet
  new_machine.speed = 3.0;

  std::printf("t=0s    cluster: 2 old machines (speed 1.0, linux-i686)\n");
  cluster.add_sites(2, old_machine.speed, old_machine);

  apps::PrimesParams params;
  params.p = 300;
  params.width = 16;
  params.work_mult = 58'000'000;
  auto pid = cluster.start_program(apps::make_primes_program(params));
  if (!pid.is_ok()) {
    std::fprintf(stderr, "start failed\n");
    return 1;
  }
  std::printf("t=0s    program started: first %lld primes, width %lld\n",
              static_cast<long long>(params.p),
              static_cast<long long>(params.width));

  cluster.loop().run_for(20 * kNanosPerSecond);
  std::printf("t=20s   2 fast machines join (speed 3.0, linux-arm64 — "
              "foreign platform)\n");
  cluster.add_sites(2, new_machine.speed, new_machine);

  cluster.loop().run_for(20 * kNanosPerSecond);
  std::printf("t=40s   old machine #2 signs off for its hardware upgrade\n");
  auto successor = cluster.sign_off(1);
  if (successor.is_ok()) {
    std::printf("        its microframes and memory moved to site %u\n",
                successor.value());
  }

  auto code = cluster.run_program(pid.value(), 100'000 * kNanosPerSecond);
  if (!code.is_ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 code.status().to_string().c_str());
    return 1;
  }
  double total = static_cast<double>(cluster.now()) / kNanosPerSecond;
  std::printf("t=%.0fs  program finished: %s primes found\n", total,
              cluster.outputs(0, pid.value()).back().c_str());

  std::printf("\nwho did the work:\n");
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    auto& site = cluster.site(i);
    std::printf("  site %u (%-11s speed %.1f): %5llu microthreads, "
                "%llu on-the-fly compiles\n",
                site.id(), site.config().platform.c_str(),
                site.config().speed,
                static_cast<unsigned long long>(
                    site.processing().executed_total),
                static_cast<unsigned long long>(site.code().compiles));
  }
  std::printf("\nnote: the arm64 sites received *source*, compiled it "
              "locally, and uploaded\nbinaries back to the code "
              "distribution site — no restart, no redeploy.\n");
  return 0;
}
