// The paper's evaluation application (§5): find the first p primes,
// testing `width` candidates in parallel, on a cluster of n sites.
//
//   $ ./primes_cluster [sites] [p] [width] [sim|threads]
//
// In `sim` mode the cluster runs under virtual time with per-site speed
// modeling (how Table 1 is reproduced); in `threads` mode every site is a
// real daemon and the numbers are wall-clock.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "api/local_cluster.hpp"
#include "apps/primes.hpp"
#include "sim/sim_cluster.hpp"

using namespace sdvm;

int main(int argc, char** argv) {
  int sites = argc > 1 ? std::atoi(argv[1]) : 4;
  apps::PrimesParams params;
  params.p = argc > 2 ? std::atoll(argv[2]) : 100;
  params.width = argc > 3 ? std::atoll(argv[3]) : 10;
  bool simulated = argc <= 4 || std::strcmp(argv[4], "sim") == 0;
  params.work_mult = simulated ? 58'000'000 : 0;

  std::printf("first %lld primes, width %lld, %d sites (%s mode)\n",
              static_cast<long long>(params.p),
              static_cast<long long>(params.width), sites,
              simulated ? "sim" : "threads");

  if (simulated) {
    sim::SimCluster cluster;
    cluster.add_sites(sites);
    Nanos t0 = cluster.now();
    auto pid = cluster.start_program(apps::make_primes_program(params));
    if (!pid.is_ok()) {
      std::fprintf(stderr, "start failed: %s\n",
                   pid.status().to_string().c_str());
      return 1;
    }
    auto code = cluster.run_program(pid.value(), 100'000 * kNanosPerSecond);
    if (!code.is_ok()) {
      std::fprintf(stderr, "run failed: %s\n",
                   code.status().to_string().c_str());
      return 1;
    }
    double secs = static_cast<double>(cluster.now() - t0) / kNanosPerSecond;
    std::printf("found: %s primes\n",
                cluster.outputs(0, pid.value()).back().c_str());
    std::printf("virtual time: %.1f s on the modeled cluster\n", secs);
    for (int i = 0; i < sites; ++i) {
      std::printf("  site %d executed %llu microthreads\n", i + 1,
                  static_cast<unsigned long long>(
                      cluster.site(static_cast<std::size_t>(i))
                          .processing()
                          .executed_total));
    }
  } else {
    LocalCluster cluster;
    cluster.add_sites(sites);
    auto t0 = std::chrono::steady_clock::now();
    auto pid = cluster.start_program(apps::make_primes_program(params));
    if (!pid.is_ok()) {
      std::fprintf(stderr, "start failed: %s\n",
                   pid.status().to_string().c_str());
      return 1;
    }
    auto code = cluster.wait_program(pid.value(), 300 * kNanosPerSecond);
    if (!code.is_ok()) {
      std::fprintf(stderr, "run failed: %s\n",
                   code.status().to_string().c_str());
      return 1;
    }
    double secs = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    std::printf("found: %s primes in %.3f s wall time\n",
                cluster.outputs(0, pid.value()).back().c_str(), secs);
  }
  return 0;
}
