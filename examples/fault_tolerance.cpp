// Crash management demo (paper §2.2, §6): checkpointing + recovery.
//
// A four-site cluster runs a long job with periodic coordinated
// checkpoints. One site is killed abruptly (no sign-off, traffic black-
// holed). The heartbeat failure detector notices, the program's home site
// rolls every survivor back to the last committed epoch, adopts the dead
// site's shard, and the job completes with the correct answer.
//
//   $ ./fault_tolerance
#include <cstdio>

#include "apps/primes.hpp"
#include "sim/sim_cluster.hpp"

using namespace sdvm;

int main() {
  sim::SimCluster cluster;
  SiteConfig cfg;
  cfg.checkpoints_enabled = true;
  cfg.checkpoint_interval = kNanosPerSecond;      // checkpoint every 1 s
  cfg.heartbeat_interval = 100'000'000;           // 100 ms heartbeats
  cfg.failure_timeout = 400'000'000;              // 400 ms silence = dead
  cluster.add_sites(4, 1.0, cfg);
  std::printf("t=0s   4 sites up, checkpoints every 1s\n");

  apps::PrimesParams params;
  params.p = 200;
  params.width = 12;
  params.work_mult = 58'000'000;
  auto pid = cluster.start_program(apps::make_primes_program(params));
  if (!pid.is_ok()) return 1;
  std::printf("t=0s   long prime job started (first %lld primes)\n",
              static_cast<long long>(params.p));

  cluster.loop().run_for(10 * kNanosPerSecond);
  std::printf("t=10s  checkpoints committed so far: %llu\n",
              static_cast<unsigned long long>(
                  cluster.site(0).crash().checkpoints_committed));

  std::printf("t=10s  >>> site 4 crashes (power cord incident) <<<\n");
  cluster.kill(3);

  auto code = cluster.run_program(pid.value(), 100'000 * kNanosPerSecond);
  if (!code.is_ok()) {
    std::fprintf(stderr, "job lost: %s\n", code.status().to_string().c_str());
    return 1;
  }
  double total = static_cast<double>(cluster.now()) / kNanosPerSecond;
  std::printf("t=%.0fs job finished anyway: %s primes (exit %lld)\n", total,
              cluster.outputs(0, pid.value()).back().c_str(),
              static_cast<long long>(code.value()));
  std::printf("\nrecoveries performed: %llu (rolled back to the last "
              "committed epoch;\nthe dead site's frames and memory were "
              "adopted by the coordinator)\n",
              static_cast<unsigned long long>(
                  cluster.site(0).crash().recoveries));
  return 0;
}
