// Visualizes the paper's Figures 4 & 5 — the execution cycle and "the
// career of microframes" — by tracing every frame lifecycle event of a
// small two-site run and printing the event log per frame.
//
//   $ ./frame_career
#include <cstdio>
#include <map>
#include <vector>

#include "api/program_builder.hpp"
#include "runtime/context.hpp"
#include "sim/sim_cluster.hpp"

using namespace sdvm;

int main() {
  sim::SimCluster cluster;
  SiteConfig cfg;
  cfg.help_retry_interval = 100'000;
  cluster.add_sites(2, 1.0, cfg);

  struct Event {
    Nanos at;
    SiteId site;
    FrameEvent what;
    MicrothreadId thread;
  };
  std::map<std::uint64_t, std::vector<Event>> careers;
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    Site* site = &cluster.site(i);
    site->set_frame_trace([&careers, site, &cluster](FrameEvent e, FrameId id,
                                                     MicrothreadId tid) {
      careers[id.value].push_back(
          Event{cluster.now(), site->id(), e, tid});
    });
  }

  auto spec = ProgramBuilder("career-demo")
                  .thread("entry", R"(
                    var c = spawn("collect", 3);
                    var i = 0;
                    while (i < 3) {
                      var w = spawn("work", 3);
                      send(w, 0, i);
                      send(w, 1, c);
                      send(w, 2, i);
                      i = i + 1;
                    }
                  )")
                  .thread("work", R"(
                    charge(5000000);
                    send(param(1), param(2), param(0) * 100);
                  )")
                  .thread("collect", R"(
                    out(param(0) + param(1) + param(2));
                    exit(0);
                  )")
                  .entry("entry")
                  .build();
  const char* thread_names[] = {"entry", "work", "collect"};

  auto pid = cluster.start_program(spec);
  if (!pid.is_ok()) return 1;
  if (!cluster.run_program(pid.value(), 60 * kNanosPerSecond).is_ok()) {
    return 1;
  }

  std::printf("the career of every microframe (cf. paper Fig. 5):\n\n");
  for (const auto& [id, events] : careers) {
    std::printf("frame %llu (%s)\n", static_cast<unsigned long long>(id),
                events.empty() || events[0].thread > 2
                    ? "?"
                    : thread_names[events[0].thread]);
    for (const auto& e : events) {
      std::printf("  %8.3f ms  site %u  %s\n",
                  static_cast<double>(e.at) / 1e6, e.site, to_string(e.what));
    }
  }
  std::printf("\nresult: %s\n",
              cluster.outputs(0, pid.value()).back().c_str());
  return 0;
}
