// sdvmd — the SDVM daemon, as a deployable binary (paper §2.1: "To join a
// cluster, only the SDVM daemon has to be started and the (ip) address of
// a site which is already part of the cluster provided").
//
//   start a new cluster:   sdvmd --port 7000
//   join an existing one:  sdvmd --port 7001 --join 127.0.0.1:7000
//
// Options:
//   --port N           listen port (default 0 = ephemeral, printed)
//   --join HOST:PORT   sign on via a running daemon
//   --name NAME        site name for logs/status
//   --platform ID      platform id (affects binary artifact sharing)
//   --speed F          relative speed advertised to the cluster
//   --code-site        act as a code distribution site
//   --encrypt PW       enable the security manager with this password
//   --checkpoints      enable crash management (checkpoint + recovery)
//   --state-dir DIR    durable checkpoint directory; a daemon restarted
//                      with the same directory advertises its recoverable
//                      programs during sign-on (cold-restart recovery)
//   --replication K    replicate committed epochs to K sites (0 = all)
//   --heartbeat-ms N       heartbeat emission interval
//   --failure-timeout-ms N silence window before a peer is declared dead
//   --checkpoint-ms N      coordinated checkpoint interval
//   --status-every S   print the site status every S seconds
//
// The daemon runs until SIGINT/SIGTERM, then signs off gracefully
// (relocating its microframes and memory) before exiting.
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "api/tcp_node.hpp"

namespace {
std::atomic<bool> g_stop{false};
void on_signal(int) { g_stop.store(true); }
}  // namespace

int main(int argc, char** argv) {
  using namespace sdvm;

  TcpNode::Options options;
  std::string join_addr;
  int status_every = 0;

  for (int i = 1; i < argc; ++i) {
    auto need = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--port") == 0) {
      options.port = static_cast<std::uint16_t>(std::atoi(need("--port")));
    } else if (std::strcmp(argv[i], "--join") == 0) {
      join_addr = need("--join");
    } else if (std::strcmp(argv[i], "--name") == 0) {
      options.site.name = need("--name");
    } else if (std::strcmp(argv[i], "--platform") == 0) {
      options.site.platform = need("--platform");
    } else if (std::strcmp(argv[i], "--speed") == 0) {
      options.site.speed = std::atof(need("--speed"));
    } else if (std::strcmp(argv[i], "--code-site") == 0) {
      options.site.code_distribution_site = true;
    } else if (std::strcmp(argv[i], "--encrypt") == 0) {
      options.site.encrypt = true;
      options.site.cluster_password = need("--encrypt");
    } else if (std::strcmp(argv[i], "--checkpoints") == 0) {
      options.site.checkpoints_enabled = true;
    } else if (std::strcmp(argv[i], "--state-dir") == 0) {
      options.site.state_dir = need("--state-dir");
      options.site.checkpoints_enabled = true;  // durability implies it
    } else if (std::strcmp(argv[i], "--replication") == 0) {
      options.site.replication_factor =
          static_cast<std::uint32_t>(std::atoi(need("--replication")));
    } else if (std::strcmp(argv[i], "--heartbeat-ms") == 0) {
      options.site.heartbeat_interval =
          std::atoll(need("--heartbeat-ms")) * 1'000'000;
    } else if (std::strcmp(argv[i], "--failure-timeout-ms") == 0) {
      options.site.failure_timeout =
          std::atoll(need("--failure-timeout-ms")) * 1'000'000;
    } else if (std::strcmp(argv[i], "--checkpoint-ms") == 0) {
      options.site.checkpoint_interval =
          std::atoll(need("--checkpoint-ms")) * 1'000'000;
    } else if (std::strcmp(argv[i], "--status-every") == 0) {
      status_every = std::atoi(need("--status-every"));
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }

  auto node = TcpNode::create(options);
  if (!node.is_ok()) {
    std::fprintf(stderr, "cannot start daemon: %s\n",
                 node.status().to_string().c_str());
    return 1;
  }

  if (join_addr.empty()) {
    node.value()->bootstrap();
    std::printf("sdvmd: new cluster at %s (site %u)\n",
                node.value()->address().c_str(), node.value()->site().id());
  } else {
    Status joined =
        node.value()->join_cluster(join_addr, 15 * kNanosPerSecond);
    if (!joined.is_ok()) {
      std::fprintf(stderr, "cannot join %s: %s\n", join_addr.c_str(),
                   joined.to_string().c_str());
      return 1;
    }
    std::printf("sdvmd: joined via %s as site %u, listening at %s\n",
                join_addr.c_str(), node.value()->site().id(),
                node.value()->address().c_str());
  }
  std::fflush(stdout);

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  int ticks = 0;
  while (!g_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    if (status_every > 0 && ++ticks >= status_every * 5) {
      ticks = 0;
      std::lock_guard lk(node.value()->site().lock());
      std::fputs(node.value()->site().site_manager().status_string().c_str(),
                 stdout);
      std::fflush(stdout);
    }
  }

  std::printf("sdvmd: signing off...\n");
  {
    std::lock_guard lk(node.value()->site().lock());
    (void)node.value()->site().sign_off();
  }
  // Give relocation messages a moment on the wire before closing sockets.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  node.value()->shutdown();
  std::printf("sdvmd: bye\n");
  return 0;
}
