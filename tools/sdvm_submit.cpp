// sdvm-submit — run an SDVM program file on a running cluster from any
// machine (paper goal 15: "Access the cluster from any machine"; §4: the
// daemon is "operated using a front end").
//
//   sdvm-submit --join 127.0.0.1:7000 program.sdvm
//
// The tool itself joins the cluster as a (temporary) site, submits the
// program with itself as home/frontend, streams the output, and signs off
// when the program terminates.
//
// Options:
//   --join HOST:PORT   any member of the target cluster (required)
//   --encrypt PW       cluster password if the security manager is on
//   --timeout S        give up after S seconds (default 600)
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "api/program_file.hpp"
#include "api/tcp_node.hpp"

int main(int argc, char** argv) {
  using namespace sdvm;

  std::string join_addr;
  std::string file;
  TcpNode::Options options;
  options.site.name = "frontend";
  int timeout_s = 600;

  for (int i = 1; i < argc; ++i) {
    auto need = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--join") == 0) {
      join_addr = need("--join");
    } else if (std::strcmp(argv[i], "--encrypt") == 0) {
      options.site.encrypt = true;
      options.site.cluster_password = need("--encrypt");
    } else if (std::strcmp(argv[i], "--timeout") == 0) {
      timeout_s = std::atoi(need("--timeout"));
    } else if (argv[i][0] != '-') {
      file = argv[i];
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }
  if (join_addr.empty() || file.empty()) {
    std::fprintf(stderr,
                 "usage: sdvm-submit --join HOST:PORT [--encrypt PW] "
                 "program.sdvm\n");
    return 2;
  }

  std::ifstream in(file);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", file.c_str());
    return 1;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  auto spec = parse_program_file(ss.str());
  if (!spec.is_ok()) {
    std::fprintf(stderr, "%s: %s\n", file.c_str(),
                 spec.status().to_string().c_str());
    return 1;
  }

  auto node = TcpNode::create(options);
  if (!node.is_ok()) {
    std::fprintf(stderr, "cannot start frontend site: %s\n",
                 node.status().to_string().c_str());
    return 1;
  }
  Status joined = node.value()->join_cluster(join_addr, 15 * kNanosPerSecond);
  if (!joined.is_ok()) {
    std::fprintf(stderr, "cannot join %s: %s\n", join_addr.c_str(),
                 joined.to_string().c_str());
    return 1;
  }
  std::printf("joined as site %u; submitting '%s'\n",
              node.value()->site().id(), spec.value().name.c_str());

  // Stream output lines as they arrive at this (frontend) site.
  {
    std::lock_guard lk(node.value()->site().lock());
    node.value()->site().io().set_output_callback(
        [](ProgramId, const std::string& line) {
          std::printf("| %s\n", line.c_str());
          std::fflush(stdout);
        });
  }

  auto pid = node.value()->start_program(spec.value());
  if (!pid.is_ok()) {
    std::fprintf(stderr, "submit failed: %s\n",
                 pid.status().to_string().c_str());
    return 1;
  }
  auto code = node.value()->wait_program(
      pid.value(), static_cast<Nanos>(timeout_s) * kNanosPerSecond);
  if (!code.is_ok()) {
    std::fprintf(stderr, "wait failed: %s\n",
                 code.status().to_string().c_str());
    return 1;
  }
  std::printf("program exited with code %lld\n",
              static_cast<long long>(code.value()));

  {
    std::lock_guard lk(node.value()->site().lock());
    (void)node.value()->site().sign_off();
  }
  node.value()->shutdown();
  return static_cast<int>(code.value());
}
