// sdvm-chaos: deterministic chaos sweeps over the simulated cluster.
//
//   sdvm-chaos --seed 1 --iterations 200          # seeded sweep
//   sdvm-chaos --seed 7 --trace                   # one run, full trace
//   sdvm-chaos --replay chaos-artifact.json       # re-run a shrunk artifact
//   sdvm-chaos --sites 1000 --zones 16            # zoned scale run
//   sdvm-chaos --explore --explore-scenario sign-off   # enumerate orders
//
// A sweep runs seeds S, S+1, ... each through a generated fault schedule
// and the invariant suite. The first failing seed is shrunk with ddmin to
// a minimal event list and written as a replayable JSON artifact; the
// process exits non-zero. Every run is a pure function of its seed, so a
// failing seed reported by CI reproduces locally with the same binary.
//
// --explore switches from random sampling to bounded systematic
// exploration (chaos/explore.hpp): every distinct delivery interleaving
// of a small sign-on / sign-off / checkpoint / shard-handoff window, up
// to a depth bound.
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "chaos/explore.hpp"
#include "chaos/harness.hpp"
#include "chaos/schedule.hpp"
#include "chaos/shrink.hpp"

namespace {

using sdvm::kNanosPerSecond;

struct CliOptions {
  std::uint64_t seed = 1;
  int iterations = 1;
  std::string schedule_file = "chaos-artifact.json";  // artifact output
  std::string replay;                                 // artifact input
  std::string state_dump;                             // postmortem output
  sdvm::chaos::GeneratorOptions generator;
  bool durable = false;
  bool kill_lease_holders = false;
  double disk_fault_prob = 0.0;
  bool shrink = true;
  bool trace = false;
  bool explore = false;
  sdvm::chaos::ExploreOptions explorer;
};

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [options]\n"
      << "  --seed N              first seed of the sweep (default 1)\n"
      << "  --iterations N        seeds to run: N, starting at --seed\n"
      << "  --sites N             initial cluster size (default 4)\n"
      << "  --zones N             spread the sites over N racks under a\n"
      << "                        shared core (hierarchical latency) and\n"
      << "                        put zone-wide outages on the fault menu\n"
      << "  --events N            fault events per schedule (default 12)\n"
      << "  --loss-max F          enable loss bursts up to drop prob F\n"
      << "                        (default 0: the runtime assumes reliable\n"
      << "                        links; loss mode is exploratory)\n"
      << "  --allow-partitions    emit partition/heal windows (exploratory:\n"
      << "                        long partitions split-brain the cluster)\n"
      << "  --allow-home-faults   let the schedule kill the home site\n"
      << "  --durable             give every site a durable state store,\n"
      << "                        replicate committed epochs to all live\n"
      << "                        sites, and emit cold-restart events\n"
      << "  --disk-faults F       with --durable: inject torn writes, bit\n"
      << "                        flips and dropped writes, each with\n"
      << "                        probability F per checkpoint put\n"
      << "  --kill-lease-holders  re-target every kill/sign-off at the\n"
      << "                        live site holding the most directory-\n"
      << "                        shard leases (exercises shard handoff,\n"
      << "                        takeover election and rebuild)\n"
      << "  --state-dump PATH     on failure, write the durable-store\n"
      << "                        postmortem (artifact names, sizes, CRC\n"
      << "                        validity per slot) to PATH\n"
      << "  --schedule-file PATH  where to write the failure artifact\n"
      << "                        (default chaos-artifact.json)\n"
      << "  --replay PATH         run a schedule/artifact JSON instead of\n"
      << "                        generating one\n"
      << "  --no-shrink           skip ddmin minimization on failure\n"
      << "  --trace               print the virtual-time event trace\n"
      << "  --explore             systematic exploration instead of a\n"
      << "                        random sweep: enumerate the delivery\n"
      << "                        interleavings of one protocol window on\n"
      << "                        a small cluster (--sites, default 3)\n"
      << "  --explore-scenario S  sign-on | sign-off | checkpoint |\n"
      << "                        shard-handoff (default sign-off)\n"
      << "  --explore-depth N     choice points that may branch "
      << "(default 12)\n"
      << "  --explore-runs N      hard cap on runs (default 20000)\n"
      << "  --explore-window-us N co-enabled delivery window in virtual\n"
      << "                        microseconds (default 200)\n"
      << "  --explore-bug         arm the scenario's seeded bug: departed\n"
      << "                        forwarding (sign-off) or stale-lease\n"
      << "                        serving (shard-handoff); exploration\n"
      << "                        must find the violating interleaving\n";
  return 2;
}

void print_report(const sdvm::chaos::RunReport& report, bool trace) {
  if (trace) {
    for (const std::string& line : report.trace) {
      std::cout << "  " << line << "\n";
    }
  }
  for (const auto& v : report.violations) {
    std::cout << "  violation: " << v.to_line() << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--seed") {
      cli.seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--iterations") {
      cli.iterations = std::atoi(next());
    } else if (arg == "--sites") {
      cli.generator.sites = std::atoi(next());
    } else if (arg == "--zones") {
      cli.generator.zones = std::atoi(next());
    } else if (arg == "--events") {
      cli.generator.events = std::atoi(next());
    } else if (arg == "--loss-max") {
      cli.generator.loss_max = std::atof(next());
    } else if (arg == "--allow-partitions") {
      cli.generator.allow_partitions = true;
    } else if (arg == "--allow-home-faults") {
      cli.generator.allow_home_faults = true;
    } else if (arg == "--kill-lease-holders") {
      cli.kill_lease_holders = true;
    } else if (arg == "--durable") {
      cli.durable = true;
      cli.generator.allow_restarts = true;
    } else if (arg == "--disk-faults") {
      cli.disk_fault_prob = std::atof(next());
    } else if (arg == "--state-dump") {
      cli.state_dump = next();
    } else if (arg == "--schedule-file") {
      cli.schedule_file = next();
    } else if (arg == "--replay") {
      cli.replay = next();
    } else if (arg == "--no-shrink") {
      cli.shrink = false;
    } else if (arg == "--trace") {
      cli.trace = true;
    } else if (arg == "--explore") {
      cli.explore = true;
    } else if (arg == "--explore-scenario") {
      cli.explorer.scenario = next();
    } else if (arg == "--explore-depth") {
      cli.explorer.depth = std::atoi(next());
    } else if (arg == "--explore-runs") {
      cli.explorer.max_runs = std::atoi(next());
    } else if (arg == "--explore-window-us") {
      cli.explorer.window = std::atoll(next()) * 1000;
    } else if (arg == "--explore-bug") {
      cli.explorer.seed_bug = true;
    } else {
      return usage(argv[0]);
    }
  }

  if (cli.explore) {
    cli.explorer.seed = cli.seed;
    if (cli.generator.sites != 4) cli.explorer.sites = cli.generator.sites;
    auto explored = sdvm::chaos::explore(cli.explorer);
    if (!explored.is_ok()) {
      std::cerr << explored.status().message() << "\n";
      return 2;
    }
    const sdvm::chaos::ExploreResult& r = explored.value();
    std::cout << "explore scenario=" << cli.explorer.scenario << " sites="
              << cli.explorer.sites << " depth=" << cli.explorer.depth
              << " seed=" << cli.explorer.seed << ": " << r.summary() << "\n";
    if (r.failed) {
      std::cout << "failing choices:";
      for (std::size_t c : r.failing_choices) std::cout << " " << c;
      std::cout << "\n";
      for (const std::string& line : r.failure_trace) {
        std::cout << "  " << line << "\n";
      }
      return 1;
    }
    return 0;
  }

  // The scale profile (sites > 64) runs a 1 s failure timeout, so zone
  // outages may stay open longer before the harness-side guard — half
  // the timeout — would skip them. Mirrors chaos_site_config.
  if (cli.generator.sites > 64) {
    cli.generator.max_zone_cut = 500'000'000;
  }

  sdvm::chaos::HarnessOptions harness_options;
  harness_options.allow_home_faults = cli.generator.allow_home_faults;
  harness_options.durable_state = cli.durable;
  harness_options.prefer_lease_holder_kills = cli.kill_lease_holders;
  if (cli.disk_fault_prob > 0.0) {
    harness_options.disk_faults.torn_write = cli.disk_fault_prob;
    harness_options.disk_faults.bit_flip = cli.disk_fault_prob;
    harness_options.disk_faults.drop_write = cli.disk_fault_prob;
  }

  auto dump_state = [&](const sdvm::chaos::RunReport& report) {
    if (cli.state_dump.empty() || report.state_dump.empty()) return;
    std::ofstream out(cli.state_dump);
    for (const std::string& line : report.state_dump) out << line << "\n";
    std::cout << "durable-store postmortem written to " << cli.state_dump
              << "\n";
  };

  if (!cli.replay.empty()) {
    std::ifstream in(cli.replay);
    if (!in) {
      std::cerr << "cannot open " << cli.replay << "\n";
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    auto parsed = sdvm::chaos::ChaosSchedule::from_json(buf.str());
    if (!parsed.is_ok()) {
      std::cerr << parsed.status().message() << "\n";
      return 2;
    }
    sdvm::chaos::ChaosHarness harness(harness_options);
    sdvm::chaos::RunReport report = harness.run(parsed.value());
    std::cout << "replay seed=" << report.seed << " workload="
              << report.workload << " -> "
              << (report.passed ? "PASS" : "FAIL") << "\n";
    print_report(report, cli.trace);
    if (!report.passed) dump_state(report);
    return report.passed ? 0 : 1;
  }

  for (int i = 0; i < cli.iterations; ++i) {
    std::uint64_t seed = cli.seed + static_cast<std::uint64_t>(i);
    sdvm::chaos::ChaosSchedule schedule =
        sdvm::chaos::generate_schedule(seed, cli.generator);
    sdvm::chaos::ChaosHarness harness(harness_options);
    sdvm::chaos::RunReport report = harness.run(schedule);
    std::cout << "seed " << seed << ": "
              << (report.passed ? "PASS" : "FAIL") << " workload="
              << report.workload << " events=" << schedule.events.size()
              << (report.terminated
                      ? " exit=" + std::to_string(report.exit_code)
                      : " (no termination)")
              << "\n";
    print_report(report, cli.trace);
    if (report.passed) continue;

    sdvm::chaos::ChaosSchedule minimal = schedule;
    if (cli.shrink) {
      const std::string target = report.violations.front().invariant;
      std::cout << "shrinking " << schedule.events.size()
                << " events targeting '" << target << "'...\n";
      sdvm::chaos::ShrinkResult shrunk =
          sdvm::chaos::shrink_schedule(schedule, target, harness_options);
      minimal = shrunk.minimal;
      report = shrunk.report;
      std::cout << "minimal schedule: " << minimal.events.size()
                << " events (" << shrunk.runs << " shrink runs)\n";
      for (const auto& ev : minimal.events) {
        std::cout << "  " << ev.to_line() << "\n";
      }
    }
    std::ofstream out(cli.schedule_file);
    out << sdvm::chaos::make_artifact_json(minimal, report);
    std::cout << "artifact written to " << cli.schedule_file
              << " (replay with --replay)\n";
    dump_state(report);
    return 1;
  }
  return 0;
}
