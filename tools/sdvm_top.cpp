// sdvm-top — live cluster monitor (paper §4: the site manager "provides
// the functionality to query the status of the local site, i.e. all local
// managers"; goal 15: access from any machine).
//
//   sdvm-top --join 127.0.0.1:7000 [--interval S] [--once]
//
// Joins the cluster as an observer site, then periodically queries every
// member's site manager over the wire and prints a cluster-wide view.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <thread>

#include "api/tcp_node.hpp"

using namespace sdvm;

int main(int argc, char** argv) {
  std::string join_addr;
  TcpNode::Options options;
  options.site.name = "sdvm-top";
  int interval_s = 2;
  bool once = false;

  for (int i = 1; i < argc; ++i) {
    auto need = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--join") == 0) {
      join_addr = need("--join");
    } else if (std::strcmp(argv[i], "--encrypt") == 0) {
      options.site.encrypt = true;
      options.site.cluster_password = need("--encrypt");
    } else if (std::strcmp(argv[i], "--interval") == 0) {
      interval_s = std::atoi(need("--interval"));
    } else if (std::strcmp(argv[i], "--once") == 0) {
      once = true;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }
  if (join_addr.empty()) {
    std::fprintf(stderr,
                 "usage: sdvm-top --join HOST:PORT [--interval S] [--once]\n");
    return 2;
  }

  auto node = TcpNode::create(options);
  if (!node.is_ok()) {
    std::fprintf(stderr, "start failed: %s\n",
                 node.status().to_string().c_str());
    return 1;
  }
  Status joined = node.value()->join_cluster(join_addr, 15 * kNanosPerSecond);
  if (!joined.is_ok()) {
    std::fprintf(stderr, "cannot join %s: %s\n", join_addr.c_str(),
                 joined.to_string().c_str());
    return 1;
  }

  Site& site = node.value()->site();
  for (;;) {
    std::vector<SiteId> members;
    {
      std::lock_guard lk(site.lock());
      members = site.cluster().known_sites(/*alive_only=*/true);
    }

    std::map<SiteId, LoadStats> loads;
    std::map<SiteId, bool> answered;
    {
      std::lock_guard lk(site.lock());
      for (SiteId sid : members) {
        if (sid == site.id()) continue;
        SdMessage q;
        q.dst = sid;
        q.src_mgr = q.dst_mgr = ManagerId::kSite;
        q.type = MsgType::kStatusQuery;
        (void)site.messages().request(q, [&loads, &answered,
                                          sid](Result<SdMessage> r) {
          if (!r.is_ok()) return;
          try {
            ByteReader rd(r.value().payload);
            (void)rd.str();  // human-readable text; we want the stats
            loads[sid] = LoadStats::deserialize(rd);
            answered[sid] = true;
          } catch (const DecodeError&) {
          }
        });
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(300));

    std::printf("\n=== SDVM cluster via %s — %zu live sites ===\n",
                join_addr.c_str(), members.size());
    std::printf("%6s %-12s %-14s %6s | %7s %7s %9s %9s\n", "site", "name",
                "platform", "speed", "queued", "running", "executed",
                "programs");
    std::lock_guard lk(site.lock());
    for (SiteId sid : members) {
      const SiteInfo* info = site.cluster().find(sid);
      if (info == nullptr) continue;
      LoadStats stats = answered.count(sid) ? loads[sid] : info->load;
      std::printf("%6u %-12s %-14s %6.1f | %7u %7u %9llu %9u%s\n", sid,
                  info->name.c_str(), info->platform.c_str(), info->speed,
                  stats.queued_frames, stats.running,
                  static_cast<unsigned long long>(stats.executed_total),
                  stats.programs,
                  sid == site.id() ? "  (this monitor)"
                  : info->code_site ? "  [code site]"
                                    : "");
    }
    std::fflush(stdout);
    if (once) break;
    std::this_thread::sleep_for(std::chrono::seconds(interval_s));
  }

  {
    std::lock_guard lk(site.lock());
    (void)site.sign_off();
  }
  node.value()->shutdown();
  return 0;
}
