// sdvm-top — live cluster monitor (paper §4: the site manager "provides
// the functionality to query the status of the local site, i.e. all local
// managers"; goal 15: access from any machine).
//
//   sdvm-top --join 127.0.0.1:7000 [--interval S] [--once] [--json]
//            [--metrics]
//
// Joins the cluster as an observer site, then periodically issues the
// unified introspection query (kMetricsQuery fan-out via
// TcpNode::cluster_status) and prints a cluster-wide view: a load table,
// optionally the full per-site metric catalog (--metrics), or the whole
// ClusterStatus as JSON (--json).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>

#include "api/cluster.hpp"
#include "api/tcp_node.hpp"

using namespace sdvm;

namespace {

void print_table(const ClusterStatus& cs, const std::string& join_addr,
                 SiteId self, bool with_metrics) {
  std::printf("\n=== SDVM cluster via %s — %zu sites", join_addr.c_str(),
              cs.sites.size());
  if (!cs.unreachable.empty()) {
    std::printf(" (%zu unreachable)", cs.unreachable.size());
  }
  std::printf(" ===\n");
  std::printf("%6s %-12s %-14s %6s | %7s %7s %9s %9s | %6s %8s %7s | "
              "%6s %7s %5s\n",
              "site", "name", "platform", "speed", "queued", "running",
              "executed", "programs", "epoch", "replicas", "badckpt",
              "shards", "handoff", "stale");
  for (const SiteStatus& s : cs.sites) {
    // Durability health: last committed epoch, replica shards persisted
    // here, and checkpoint artifacts rejected by the CRC framing. A rising
    // badckpt on one site means its disk (or fault injector) is eating
    // epochs while the replicas keep recovery possible. The shard block is
    // directory authority: leases held now, lifetime handoffs away, and
    // stale-epoch rejects (a persistent riser means some peer keeps
    // routing on an outdated shard map).
    std::printf("%6u %-12s %-14s %6.1f | %7u %7u %9llu %9u | %6lld %8llu "
                "%7lld | %6lld %7llu %5llu%s\n",
                s.id, s.name.c_str(), s.platform.c_str(), s.speed,
                s.load.queued_frames, s.load.running,
                static_cast<unsigned long long>(s.load.executed_total),
                s.load.programs,
                static_cast<long long>(
                    s.metrics.gauge_value("crash.committed_epoch")),
                static_cast<unsigned long long>(
                    s.metrics.counter("crash.replicas_persisted")),
                static_cast<long long>(
                    s.metrics.gauge_value("crash.disk_corrupt_skipped")),
                static_cast<long long>(
                    s.metrics.gauge_value("dir.shards_held")),
                static_cast<unsigned long long>(
                    s.metrics.counter("dir.shard_handoffs")),
                static_cast<unsigned long long>(
                    s.metrics.counter("dir.stale_epoch_rejects")),
                s.id == self          ? "  (this monitor)"
                : s.code_site         ? "  [code site]"
                                      : "");
    if (std::int64_t ms = s.metrics.gauge_value("crash.recovery_ms");
        ms > 0) {
      std::printf("%6s last recovery fan-out on this site took %lld ms\n",
                  "", static_cast<long long>(ms));
    }
    if (std::int64_t ms = s.metrics.gauge_value("dir.shard_rebuild_ms");
        ms > 0) {
      std::printf("%6s last shard-directory rebuild on this site took "
                  "%lld ms\n",
                  "", static_cast<long long>(ms));
    }
  }
  for (SiteId sid : cs.unreachable) {
    std::printf("%6u %-12s (no answer)\n", sid, "?");
  }
  if (with_metrics) {
    std::printf("--- aggregate metrics ---\n%s",
                cs.aggregate().to_text("  ").c_str());
  }
}

/// The monitor loop proper. Programs against the abstract Cluster facade —
/// any deployment mode that implements cluster_status() can be watched.
void monitor(Cluster& cluster, const std::string& join_addr, SiteId self,
             int interval_s, bool once, bool json, bool metrics) {
  for (;;) {
    auto cs = cluster.cluster_status(0, 2 * kNanosPerSecond);
    if (!cs.is_ok()) {
      std::fprintf(stderr, "status query failed: %s\n",
                   cs.status().to_string().c_str());
    } else if (json) {
      std::printf("%s\n", cs.value().to_json().c_str());
    } else {
      print_table(cs.value(), join_addr, self, metrics);
    }
    std::fflush(stdout);
    if (once) break;
    std::this_thread::sleep_for(std::chrono::seconds(interval_s));
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string join_addr;
  TcpNode::Options options;
  options.site.name = "sdvm-top";
  int interval_s = 2;
  bool once = false;
  bool json = false;
  bool metrics = false;

  for (int i = 1; i < argc; ++i) {
    auto need = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--join") == 0) {
      join_addr = need("--join");
    } else if (std::strcmp(argv[i], "--encrypt") == 0) {
      options.site.encrypt = true;
      options.site.cluster_password = need("--encrypt");
    } else if (std::strcmp(argv[i], "--interval") == 0) {
      interval_s = std::atoi(need("--interval"));
    } else if (std::strcmp(argv[i], "--once") == 0) {
      once = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--metrics") == 0) {
      metrics = true;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }
  if (join_addr.empty()) {
    std::fprintf(stderr,
                 "usage: sdvm-top --join HOST:PORT [--interval S] [--once] "
                 "[--json] [--metrics]\n");
    return 2;
  }

  auto node = TcpNode::create(options);
  if (!node.is_ok()) {
    std::fprintf(stderr, "start failed: %s\n",
                 node.status().to_string().c_str());
    return 1;
  }
  Status joined = node.value()->join_cluster(join_addr, 15 * kNanosPerSecond);
  if (!joined.is_ok()) {
    std::fprintf(stderr, "cannot join %s: %s\n", join_addr.c_str(),
                 joined.to_string().c_str());
    return 1;
  }

  SiteId self = node.value()->site().id();
  monitor(*node.value(), join_addr, self, interval_s, once, json, metrics);

  {
    Site& site = node.value()->site();
    std::lock_guard lk(site.lock());
    (void)site.sign_off();
  }
  node.value()->shutdown();
  return 0;
}
