#include "chaos/harness.hpp"

#include <algorithm>
#include <sstream>

#include "apps/chaos_mix.hpp"
#include "runtime/site.hpp"

namespace sdvm::chaos {

namespace {

/// Site config used for every chaos run: checkpointing on a sub-second
/// cadence and an aggressive failure detector, so recovery machinery is
/// exercised inside the schedule horizon.
SiteConfig chaos_site_config() {
  SiteConfig cfg;
  cfg.checkpoints_enabled = true;
  cfg.checkpoint_interval = kNanosPerSecond / 2;
  cfg.heartbeat_interval = 100'000'000;   // 100 ms
  cfg.failure_timeout = 400'000'000;      // 400 ms
  return cfg;
}

}  // namespace

void ChaosHarness::add_invariant(std::string name, InvariantFn fn,
                                 bool quiescence_only) {
  custom_.push_back(
      CustomInvariant{std::move(name), std::move(fn), quiescence_only});
}

RunReport ChaosHarness::run(const ChaosSchedule& schedule) {
  RunReport report;
  report.seed = schedule.seed;

  sim::SimCluster::Options opts;
  opts.seed = schedule.seed;
  const net::LinkModel base_link = opts.link;
  sim::SimCluster cluster(opts);
  cluster.add_sites(std::max(schedule.sites, 1), 1.0, chaos_site_config());

  std::vector<SiteRecord> records(cluster.size());
  InvariantChecker checker;

  apps::ChaosWorkload workload = apps::make_chaos_workload(schedule.seed);
  report.workload = workload.name;
  auto started = cluster.start_program(workload.spec, 0);
  if (!started.is_ok()) {
    report.violations.push_back(Violation{
        "workload-starts", started.status().message(), -1, cluster.now()});
    report.trace.push_back(report.violations.back().to_line());
    return report;
  }
  ProgramId pid = started.value();

  bool partition_active = false;
  bool loss_active = false;

  auto live = [&records](std::size_t i) {
    return i < records.size() && !records[i].killed && !records[i].signed_off &&
           !records[i].join_failed;
  };
  auto live_count = [&] {
    std::size_t n = 0;
    for (std::size_t i = 0; i < records.size(); ++i) {
      if (live(i)) ++n;
    }
    return n;
  };
  auto address = [&cluster](std::size_t i) {
    return cluster.site(i).transport()->local_address();
  };
  auto trace = [&](const std::string& line) {
    std::ostringstream os;
    os << "t=" << cluster.now() << "ns " << line;
    report.trace.push_back(os.str());
  };

  auto make_context = [&](bool at_quiescence) {
    ChaosContext ctx{cluster, pid, records};
    ctx.at_quiescence = at_quiescence;
    ctx.faults_active = partition_active || loss_active;
    ctx.terminated = report.terminated;
    ctx.exit_code = report.exit_code;
    return ctx;
  };
  auto run_checks = [&](int event_index, bool at_quiescence) {
    ChaosContext ctx = make_context(at_quiescence);
    std::vector<Violation> found = checker.check(ctx, event_index);
    for (const CustomInvariant& ci : custom_) {
      if (ci.quiescence_only && !at_quiescence) continue;
      if (std::optional<std::string> detail = ci.fn(ctx)) {
        found.push_back(
            Violation{ci.name, *detail, event_index, cluster.now()});
      }
    }
    // The checker learns about termination while scanning exit codes.
    report.terminated = report.terminated || ctx.terminated;
    if (ctx.terminated) report.exit_code = ctx.exit_code;
    for (Violation& v : found) {
      trace("VIOLATION " + v.invariant + ": " + v.detail);
      report.violations.push_back(std::move(v));
    }
  };

  // Re-assert network kills: InProcNetwork::heal() clears its killed set
  // along with partitions, but a crashed site must stay crashed.
  auto rekill_dead = [&] {
    for (std::size_t i = 0; i < records.size(); ++i) {
      if (records[i].killed) cluster.network().kill(address(i));
    }
  };

  auto apply = [&](const ChaosEvent& ev, int index) {
    auto skip = [&](const std::string& why) {
      trace("#" + std::to_string(index) + " skip " + ev.to_line() + " (" +
            why + ")");
    };
    switch (ev.kind) {
      case EventKind::kKill:
      case EventKind::kSignOff: {
        std::size_t t = ev.target;
        const char* what =
            ev.kind == EventKind::kKill ? "kill" : "sign-off";
        if (t >= records.size() || !live(t)) return skip("target not live");
        if (live_count() <= 2) return skip("would leave <2 live sites");
        if (t == 0 && !options_.allow_home_faults) {
          return skip("home site protected");
        }
        if (ev.kind == EventKind::kSignOff && partition_active) {
          return skip("no graceful sign-off across a partition");
        }
        trace("#" + std::to_string(index) + " apply " + ev.to_line());
        if (ev.kind == EventKind::kKill) {
          cluster.kill(t);
          records[t].killed = true;
        } else {
          auto r = cluster.sign_off(t);
          if (r.is_ok()) {
            records[t].signed_off = true;
          } else {
            trace("#" + std::to_string(index) + " sign-off failed: " +
                  r.status().message());
          }
        }
        return;
      }
      case EventKind::kAddSite: {
        int contact = -1;
        for (std::size_t i = 0; i < records.size(); ++i) {
          if (live(i)) {
            contact = static_cast<int>(i);
            break;
          }
        }
        if (contact < 0) return skip("no live contact");
        trace("#" + std::to_string(index) + " apply " + ev.to_line());
        Site& added = cluster.add_site(chaos_site_config(), contact);
        records.push_back(SiteRecord{});
        if (!added.joined()) {
          records.back().join_failed = true;
          trace("#" + std::to_string(index) + " join did not complete");
        }
        return;
      }
      case EventKind::kPartition: {
        std::size_t split = ev.target;
        if (partition_active) return skip("partition already active");
        std::vector<std::string> a;
        std::vector<std::string> b;
        for (std::size_t i = 0; i < records.size(); ++i) {
          if (!live(i)) continue;
          (i < split ? a : b).push_back(address(i));
        }
        if (a.empty() || b.empty()) return skip("split leaves a side empty");
        trace("#" + std::to_string(index) + " apply " + ev.to_line());
        cluster.network().partition(a, b);
        partition_active = true;
        return;
      }
      case EventKind::kHeal: {
        trace("#" + std::to_string(index) + " apply " + ev.to_line());
        cluster.network().heal();
        rekill_dead();
        partition_active = false;
        return;
      }
      case EventKind::kLossBurst: {
        trace("#" + std::to_string(index) + " apply " + ev.to_line());
        net::LinkModel lossy = base_link;
        lossy.loss = ev.loss;
        cluster.network().set_default_link(lossy);
        loss_active = true;
        return;
      }
      case EventKind::kLossClear: {
        trace("#" + std::to_string(index) + " apply " + ev.to_line());
        cluster.network().set_default_link(base_link);
        loss_active = false;
        return;
      }
    }
  };

  trace("run seed=" + std::to_string(schedule.seed) + " sites=" +
        std::to_string(schedule.sites) + " workload=" + workload.name);

  const Nanos t0 = cluster.now();
  for (std::size_t i = 0; i < schedule.events.size(); ++i) {
    const ChaosEvent& ev = schedule.events[i];
    Nanos due = t0 + ev.at;
    if (due > cluster.now()) cluster.loop().run_for(due - cluster.now());
    apply(ev, static_cast<int>(i));
    run_checks(static_cast<int>(i), /*at_quiescence=*/false);
  }

  // Shrunk subsets may have lost their heal/clear tail; restore a fault-free
  // fabric so quiescence invariants stay meaningful. (This cannot repair a
  // wedge the faults already caused — messages lost are lost.)
  if (partition_active) {
    trace("implicit heal (schedule left a partition active)");
    cluster.network().heal();
    rekill_dead();
    partition_active = false;
  }
  if (loss_active) {
    trace("implicit loss clear (schedule left a loss burst active)");
    cluster.network().set_default_link(base_link);
    loss_active = false;
  }

  // Drain: run until some live site commits a verdict, checking liveness
  // invariants once per virtual half second.
  const int post_events = static_cast<int>(schedule.events.size());
  auto find_verdict = [&]() -> std::optional<std::int64_t> {
    for (std::size_t i = 0; i < cluster.size(); ++i) {
      if (!live(i)) continue;
      Site& site = cluster.site(i);
      if (site.programs().is_terminated(pid)) {
        return site.programs().exit_code(pid).value_or(0);
      }
    }
    return std::nullopt;
  };
  const Nanos deadline = cluster.now() + options_.deadline;
  while (cluster.now() < deadline) {
    if (auto code = find_verdict()) {
      report.terminated = true;
      report.exit_code = *code;
      break;
    }
    Nanos slice =
        std::min<Nanos>(kNanosPerSecond / 2, deadline - cluster.now());
    cluster.loop().run_for(slice);
    run_checks(post_events, /*at_quiescence=*/false);
    if (report.terminated) break;
  }
  if (!report.terminated) {
    trace("deadline exceeded without termination");
  } else {
    trace("terminated exit=" + std::to_string(report.exit_code));
  }

  // Settle, then the quiescence pass: membership convergence, directory
  // owners, termination, and the workload's own result check.
  cluster.loop().run_for(options_.settle);
  run_checks(/*event_index=*/-1, /*at_quiescence=*/true);

  if (report.terminated) {
    std::vector<std::string> out;
    if (live(0)) {
      out = cluster.outputs(0, pid);
    } else {
      for (std::size_t i = 0; i < cluster.size(); ++i) {
        if (!live(i)) continue;
        out = cluster.outputs(i, pid);
        if (!out.empty()) break;
      }
    }
    if (std::optional<std::string> bad = workload.verify(out)) {
      Violation v{"result-correct", *bad, -1, cluster.now()};
      trace("VIOLATION " + v.invariant + ": " + v.detail);
      report.violations.push_back(std::move(v));
    }
  }

  report.passed = report.violations.empty();
  trace(report.passed ? "verdict PASS" : "verdict FAIL");
  return report;
}

}  // namespace sdvm::chaos
