#include "chaos/harness.hpp"

#include <algorithm>
#include <sstream>

#include "apps/chaos_mix.hpp"
#include "runtime/checkpoint_store.hpp"
#include "runtime/site.hpp"

namespace sdvm::chaos {

namespace {

/// Site config used for every chaos run: checkpointing on a sub-second
/// cadence and an aggressive failure detector, so recovery machinery is
/// exercised inside the schedule horizon.
SiteConfig chaos_site_config(bool durable, int sites) {
  SiteConfig cfg;
  cfg.checkpoints_enabled = true;
  cfg.checkpoint_interval = kNanosPerSecond / 2;
  cfg.heartbeat_interval = 100'000'000;   // 100 ms
  cfg.failure_timeout = 400'000'000;      // 400 ms
  // Durable sweeps replicate every committed epoch to all live sites, so
  // any survivor (or cold-restarted store) can re-home the program.
  if (durable) cfg.replication_factor = 0;
  // Large memberships: the paper-profile full-mesh heartbeats and
  // whole-list gossip are O(n²) per tick, and a 2 ms help retry against
  // hundreds of idle peers is a message storm. Ring heartbeats, delta
  // gossip and calmer timers keep the virtual event rate — and therefore
  // wall-clock — bounded; the protocols under test are unchanged at
  // paper scale.
  if (sites > 64) {
    cfg.heartbeat_fanout = 4;
    cfg.gossip_delta = true;
    cfg.heartbeat_interval = 200'000'000;   // 200 ms
    cfg.failure_timeout = kNanosPerSecond;  // 5 missed rounds
    cfg.help_retry_interval = 250'000'000;  // 250 ms
    cfg.checkpoint_interval = 2 * kNanosPerSecond;
  }
  return cfg;
}

}  // namespace

void ChaosHarness::add_invariant(std::string name, InvariantFn fn,
                                 bool quiescence_only) {
  custom_.push_back(
      CustomInvariant{std::move(name), std::move(fn), quiescence_only});
}

RunReport ChaosHarness::run(const ChaosSchedule& schedule) {
  RunReport report;
  report.seed = schedule.seed;

  sim::SimCluster::Options opts;
  opts.seed = schedule.seed;
  opts.durable_state = options_.durable_state;
  opts.disk_faults = options_.disk_faults;
  // Mix the schedule seed in so each seed sees a distinct-but-replayable
  // fault pattern even when the CLI passes one fixed disk-fault seed.
  opts.disk_faults.seed ^= schedule.seed * 0x9E3779B97F4A7C15ull;
  const net::LinkModel base_link = opts.link;
  // Zoned runs spread the sites across `zones` racks under a shared core:
  // rack r hosts sites/zones sites (the first sites%zones racks take one
  // extra). Intra-rack pairs keep the base link; crossing the core pays
  // the uplink twice, so inter-rack latency is ~4x intra-rack.
  const int zones = std::min(schedule.zones, std::max(schedule.sites, 1));
  if (zones > 1) {
    net::LinkModel up = base_link;
    up.latency *= 2;
    std::vector<sim::ZoneSpec> specs =
        sim::make_rack_topology(zones, 0, base_link, up);
    for (int r = 0; r < zones; ++r) {
      specs[static_cast<std::size_t>(r) + 1].sites =
          schedule.sites / zones + (r < schedule.sites % zones ? 1 : 0);
    }
    opts.zones = std::move(specs);
  }
  sim::SimCluster cluster(opts);
  const SiteConfig site_cfg =
      chaos_site_config(options_.durable_state, schedule.sites);
  if (zones > 1) {
    Status built = cluster.add_topology_sites(site_cfg);
    if (!built.is_ok()) {
      report.violations.push_back(
          Violation{"topology-valid", built.to_string(), -1, cluster.now()});
      report.trace.push_back(report.violations.back().to_line());
      return report;
    }
  } else {
    cluster.add_sites(std::max(schedule.sites, 1), 1.0, site_cfg);
  }

  std::vector<SiteRecord> records(cluster.size());
  InvariantChecker checker;

  apps::ChaosWorkload workload = apps::make_chaos_workload(schedule.seed);
  report.workload = workload.name;
  auto started = cluster.start_program(workload.spec, 0);
  if (!started.is_ok()) {
    report.violations.push_back(Violation{
        "workload-starts", started.status().message(), -1, cluster.now()});
    report.trace.push_back(report.violations.back().to_line());
    return report;
  }
  ProgramId pid = started.value();

  bool partition_active = false;
  bool loss_active = false;

  auto live = [&records](std::size_t i) {
    return i < records.size() && !records[i].killed && !records[i].signed_off &&
           !records[i].join_failed;
  };
  auto live_count = [&] {
    std::size_t n = 0;
    for (std::size_t i = 0; i < records.size(); ++i) {
      if (live(i)) ++n;
    }
    return n;
  };
  auto address = [&cluster](std::size_t i) {
    return cluster.site(i).transport()->local_address();
  };
  auto trace = [&](const std::string& line) {
    std::ostringstream os;
    os << "t=" << cluster.now() << "ns " << line;
    report.trace.push_back(os.str());
  };

  auto make_context = [&](bool at_quiescence) {
    ChaosContext ctx{cluster, pid, records};
    ctx.at_quiescence = at_quiescence;
    ctx.faults_active = partition_active || loss_active;
    ctx.terminated = report.terminated;
    ctx.exit_code = report.exit_code;
    return ctx;
  };
  auto run_checks = [&](int event_index, bool at_quiescence) {
    ChaosContext ctx = make_context(at_quiescence);
    std::vector<Violation> found = checker.check(ctx, event_index);
    for (const CustomInvariant& ci : custom_) {
      if (ci.quiescence_only && !at_quiescence) continue;
      if (std::optional<std::string> detail = ci.fn(ctx)) {
        found.push_back(
            Violation{ci.name, *detail, event_index, cluster.now()});
      }
    }
    // The checker learns about termination while scanning exit codes.
    report.terminated = report.terminated || ctx.terminated;
    if (ctx.terminated) report.exit_code = ctx.exit_code;
    for (Violation& v : found) {
      trace("VIOLATION " + v.invariant + ": " + v.detail);
      report.violations.push_back(std::move(v));
    }
  };

  // Re-assert network kills: InProcNetwork::heal() clears its killed set
  // along with partitions, but a crashed site must stay crashed.
  auto rekill_dead = [&] {
    for (std::size_t i = 0; i < records.size(); ++i) {
      if (records[i].killed) cluster.network().kill(address(i));
    }
  };

  auto apply = [&](const ChaosEvent& ev, int index) {
    auto skip = [&](const std::string& why) {
      trace("#" + std::to_string(index) + " skip " + ev.to_line() + " (" +
            why + ")");
    };
    switch (ev.kind) {
      case EventKind::kKill:
      case EventKind::kSignOff: {
        std::size_t t = ev.target;
        if (options_.prefer_lease_holder_kills) {
          // Aim the fault at shard authority: the live site holding the
          // most directory-shard leases (home exempt unless allowed).
          std::size_t best = t;
          std::size_t best_held = 0;
          for (std::size_t i = 0; i < records.size(); ++i) {
            if (!live(i)) continue;
            if (i == 0 && (ev.kind == EventKind::kSignOff ||
                           !options_.allow_home_faults)) {
              continue;
            }
            const std::size_t held = cluster.site(i).memory().shards_held();
            if (held > best_held) {
              best = i;
              best_held = held;
            }
          }
          if (best_held > 0 && best != t) {
            trace("#" + std::to_string(index) + " retarget " + ev.to_line() +
                  " -> slot " + std::to_string(best) + " (holds " +
                  std::to_string(best_held) + " shard leases)");
            t = best;
          }
        }
        if (t >= records.size() || !live(t)) return skip("target not live");
        if (live_count() <= 2) return skip("would leave <2 live sites");
        if (t == 0 && !options_.allow_home_faults) {
          return skip("home site protected");
        }
        if (t == 0 && ev.kind == EventKind::kSignOff) {
          // allow_home_faults covers *crashes* (durable recovery re-homes
          // the program); graceful departure of the home is not a
          // supported relocation path.
          return skip("home sign-off unsupported");
        }
        if (ev.kind == EventKind::kSignOff && partition_active) {
          return skip("no graceful sign-off across a partition");
        }
        trace("#" + std::to_string(index) + " apply " + ev.to_line());
        if (ev.kind == EventKind::kKill) {
          cluster.kill(t);
          records[t].killed = true;
        } else {
          auto r = cluster.sign_off(t);
          if (r.is_ok()) {
            records[t].signed_off = true;
          } else {
            trace("#" + std::to_string(index) + " sign-off failed: " +
                  r.status().message());
          }
        }
        return;
      }
      case EventKind::kAddSite: {
        int contact = -1;
        for (std::size_t i = 0; i < records.size(); ++i) {
          if (live(i)) {
            contact = static_cast<int>(i);
            break;
          }
        }
        if (contact < 0) return skip("no live contact");
        trace("#" + std::to_string(index) + " apply " + ev.to_line());
        Site& added = cluster.add_site(site_cfg, contact);
        records.push_back(SiteRecord{});
        if (!added.joined()) {
          records.back().join_failed = true;
          trace("#" + std::to_string(index) + " join did not complete");
        }
        return;
      }
      case EventKind::kPartition: {
        std::size_t split = ev.target;
        if (partition_active) return skip("partition already active");
        std::vector<std::string> a;
        std::vector<std::string> b;
        for (std::size_t i = 0; i < records.size(); ++i) {
          if (!live(i)) continue;
          (i < split ? a : b).push_back(address(i));
        }
        if (a.empty() || b.empty()) return skip("split leaves a side empty");
        trace("#" + std::to_string(index) + " apply " + ev.to_line());
        cluster.network().partition(a, b);
        partition_active = true;
        return;
      }
      case EventKind::kHeal: {
        trace("#" + std::to_string(index) + " apply " + ev.to_line());
        cluster.network().heal();
        rekill_dead();
        partition_active = false;
        return;
      }
      case EventKind::kLossBurst: {
        trace("#" + std::to_string(index) + " apply " + ev.to_line());
        net::LinkModel lossy = base_link;
        lossy.loss = ev.loss;
        cluster.network().set_default_link(lossy);
        loss_active = true;
        return;
      }
      case EventKind::kLossClear: {
        trace("#" + std::to_string(index) + " apply " + ev.to_line());
        cluster.network().set_default_link(base_link);
        loss_active = false;
        return;
      }
      case EventKind::kZoneOutage: {
        if (zones <= 1) return skip("flat fabric");
        if (partition_active) return skip("partition already active");
        // Survivable-by-design guard (generator contract re-checked at
        // apply time, so shrunk subsets and hand-edited artifacts stay
        // inside the envelope): a cut that outlives failure_timeout/2
        // lets ring neighbors across it declare each other dead, and
        // death is terminal — the false verdicts spread after the heal
        // and wedge the directory. Such an outage is skipped, which
        // turns a heal-dropping shrink step into a no-op instead of a
        // spurious split-brain "repro".
        Nanos heal_at = -1;
        for (std::size_t j = static_cast<std::size_t>(index) + 1;
             j < schedule.events.size(); ++j) {
          if (schedule.events[j].kind == EventKind::kHeal) {
            heal_at = schedule.events[j].at;
            break;
          }
        }
        if (heal_at < 0 || heal_at - ev.at > site_cfg.failure_timeout / 2) {
          return skip("unhealed cut would outlive the failure detector");
        }
        const int z = static_cast<int>(ev.target);
        std::vector<std::string> in;
        std::vector<std::string> rest;
        bool holds_home = false;
        for (std::size_t i = 0; i < records.size(); ++i) {
          if (!live(i)) continue;
          if (cluster.zone_of(i) == z) {
            if (i == 0) holds_home = true;
            in.push_back(address(i));
          } else {
            rest.push_back(address(i));
          }
        }
        if (holds_home && !options_.allow_home_faults) {
          return skip("home zone protected");
        }
        if (in.empty() || rest.empty()) {
          return skip("outage leaves a side empty");
        }
        trace("#" + std::to_string(index) + " apply " + ev.to_line());
        cluster.network().partition(in, rest);
        partition_active = true;
        return;
      }
      case EventKind::kRestart: {
        std::size_t t = ev.target;
        if (t >= records.size() || !records[t].killed) {
          return skip("target not killed");
        }
        if (partition_active) return skip("no restart across a partition");
        trace("#" + std::to_string(index) + " apply " + ev.to_line());
        Site& back = cluster.restart(t);
        records[t].killed = false;
        records[t].join_failed = !back.joined();
        if (records[t].join_failed) {
          trace("#" + std::to_string(index) + " rejoin did not complete");
        }
        // The slot hosts a new incarnation; its committed-epoch gauge
        // restarts from the durable store, not from the old site's view.
        checker.note_restart(t);
        return;
      }
    }
  };

  trace("run seed=" + std::to_string(schedule.seed) + " sites=" +
        std::to_string(schedule.sites) +
        (zones > 1 ? " zones=" + std::to_string(zones) : "") +
        " workload=" + workload.name);

  // What the submitting client has seen so far. Output streams to the
  // frontend as it is produced; a site killed *after* the last line landed
  // must not erase it from the harness's view, so the longest log among
  // live sites is latched continuously, not sampled once at the end.
  std::vector<std::string> best_out;
  auto latch_outputs = [&] {
    for (std::size_t i = 0; i < cluster.size(); ++i) {
      if (!live(i)) continue;
      std::vector<std::string> candidate = cluster.outputs(i, pid);
      if (candidate.size() > best_out.size()) best_out = std::move(candidate);
    }
  };

  const Nanos t0 = cluster.now();
  for (std::size_t i = 0; i < schedule.events.size(); ++i) {
    const ChaosEvent& ev = schedule.events[i];
    Nanos due = t0 + ev.at;
    if (due > cluster.now()) cluster.loop().run_for(due - cluster.now());
    latch_outputs();
    apply(ev, static_cast<int>(i));
    run_checks(static_cast<int>(i), /*at_quiescence=*/false);
  }

  // Shrunk subsets may have lost their heal/clear tail; restore a fault-free
  // fabric so quiescence invariants stay meaningful. (This cannot repair a
  // wedge the faults already caused — messages lost are lost.)
  if (partition_active) {
    trace("implicit heal (schedule left a partition active)");
    cluster.network().heal();
    rekill_dead();
    partition_active = false;
  }
  if (loss_active) {
    trace("implicit loss clear (schedule left a loss burst active)");
    cluster.network().set_default_link(base_link);
    loss_active = false;
  }

  // Drain: run until some live site commits a verdict, checking liveness
  // invariants once per virtual half second.
  const int post_events = static_cast<int>(schedule.events.size());
  auto find_verdict = [&]() -> std::optional<std::int64_t> {
    for (std::size_t i = 0; i < cluster.size(); ++i) {
      if (!live(i)) continue;
      Site& site = cluster.site(i);
      if (site.programs().is_terminated(pid)) {
        return site.programs().exit_code(pid).value_or(0);
      }
    }
    return std::nullopt;
  };
  const Nanos deadline = cluster.now() + options_.deadline;
  while (cluster.now() < deadline) {
    if (auto code = find_verdict()) {
      report.terminated = true;
      report.exit_code = *code;
      break;
    }
    Nanos slice =
        std::min<Nanos>(kNanosPerSecond / 2, deadline - cluster.now());
    cluster.loop().run_for(slice);
    latch_outputs();
    run_checks(post_events, /*at_quiescence=*/false);
    if (report.terminated) break;
  }
  if (!report.terminated) {
    trace("deadline exceeded without termination");
  } else {
    trace("terminated exit=" + std::to_string(report.exit_code));
  }

  // Settle, then the quiescence pass: membership convergence, directory
  // owners, termination, and the workload's own result check.
  cluster.loop().run_for(options_.settle);
  run_checks(/*event_index=*/-1, /*at_quiescence=*/true);

  if (report.terminated) {
    // Output lands at the program's home and moves with it on takeover
    // (the replicated io log is imported at the new home), so the longest
    // log among live sites — latched across the whole run — is the
    // authoritative one.
    latch_outputs();
    if (std::optional<std::string> bad = workload.verify(best_out)) {
      Violation v{"result-correct", *bad, -1, cluster.now()};
      trace("VIOLATION " + v.invariant + ": " + v.detail);
      report.violations.push_back(std::move(v));
    }
  }

  report.disk_faults_injected = cluster.disk_faults_injected();
  if (report.disk_faults_injected > 0) {
    trace("disk faults injected: " +
          std::to_string(report.disk_faults_injected));
  }
  if (options_.durable_state) {
    // Postmortem listing of every slot's durable store: artifact name,
    // size, and whether the CRC framing still validates. CI attaches this
    // on failure so a corrupt/missing epoch is visible without a local
    // re-run.
    for (std::size_t i = 0; i < cluster.size(); ++i) {
      auto store = cluster.state_store(i);
      if (store == nullptr) continue;
      for (const std::string& name : store->list()) {
        auto bytes = store->get(name);
        std::string line = "slot" + std::to_string(i) + " " + name;
        if (!bytes.is_ok()) {
          line += " unreadable";
        } else {
          line += " " + std::to_string(bytes.value().size()) + "B";
          if (name.find(".ckpt") != std::string::npos) {
            line += CheckpointStore::unframe(bytes.value(), ProgramId{})
                            .is_ok()
                        ? " valid"
                        : " CORRUPT";
          }
        }
        report.state_dump.push_back(std::move(line));
      }
    }
  }
  report.passed = report.violations.empty();
  trace(report.passed ? "verdict PASS" : "verdict FAIL");
  return report;
}

}  // namespace sdvm::chaos
