// Cluster-wide invariant checkers for the chaos harness. Each check runs
// against the live SimCluster (site introspection + metrics snapshots)
// after every applied fault event and again at quiescence, and returns
// human-readable violations. Checks are split into:
//   * always-on safety invariants (exit-code agreement, checkpoint-epoch
//     monotonicity, executable-frame progress bound), and
//   * quiescence invariants that only hold once faults have healed and
//     the failure detector settled (membership convergence, directory
//     owners live, program termination).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "sim/sim_cluster.hpp"

namespace sdvm::chaos {

struct Violation {
  std::string invariant;  // stable name, e.g. "epoch-monotone"
  std::string detail;
  int event_index = -1;   // schedule event after which it fired; -1 = quiescence
  Nanos at = 0;           // virtual time of the check

  [[nodiscard]] std::string to_line() const;
};

/// What the harness knows about each SimCluster entry beyond what the
/// sites themselves can tell us (ground truth for the checkers).
struct SiteRecord {
  bool killed = false;
  bool signed_off = false;
  bool join_failed = false;
};

/// Snapshot of harness state handed to every checker.
struct ChaosContext {
  sim::SimCluster& cluster;
  ProgramId pid;
  const std::vector<SiteRecord>& sites;  // parallel to cluster entries
  bool at_quiescence = false;  // all events applied, detector settled
  bool faults_active = false;  // a partition or loss burst is in effect
  bool terminated = false;     // some live site reported program exit
  std::int64_t exit_code = 0;

  /// Live from the harness's point of view: not killed, not signed off.
  [[nodiscard]] bool live(std::size_t index) const {
    return index < sites.size() && !sites[index].killed &&
           !sites[index].signed_off;
  }
};

/// Stateful built-in invariant suite (monotonicity and progress tracking
/// need history across checks). One instance per harness run.
class InvariantChecker {
 public:
  /// Runs every applicable invariant; `event_index` is -1 for the
  /// quiescence pass.
  [[nodiscard]] std::vector<Violation> check(ChaosContext& ctx,
                                             int event_index);

  /// A cold restart replaces the site behind `index`: its committed-epoch
  /// gauge restarts from whatever the durable store recovers, so the
  /// per-site monotonicity history must be reset. The per-*store* history
  /// is kept — the store itself survived the crash.
  void note_restart(std::size_t index) { last_epoch_.erase(index); }

  /// Virtual time a cluster with queued work may make zero execution
  /// progress (outside partitions/loss windows) before the starvation
  /// invariant fires. Covers checkpoint freeze rounds, which legally
  /// stall execution for up to their abort timeout.
  static constexpr Nanos kProgressBound = 5 * kNanosPerSecond;

 private:
  void check_exit_codes(ChaosContext& ctx, std::vector<Violation>& out);
  void check_epochs(ChaosContext& ctx, std::vector<Violation>& out);
  void check_progress(ChaosContext& ctx, std::vector<Violation>& out);
  void check_membership(ChaosContext& ctx, std::vector<Violation>& out);
  void check_directory_owners(ChaosContext& ctx, std::vector<Violation>& out);
  void check_termination(ChaosContext& ctx, std::vector<Violation>& out);
  void check_durable_stores(ChaosContext& ctx, std::vector<Violation>& out);
  void check_program_home(ChaosContext& ctx, std::vector<Violation>& out);
  void check_shard_leases(ChaosContext& ctx, std::vector<Violation>& out);

  std::map<std::size_t, std::uint64_t> last_epoch_;  // site index → epoch
  std::map<std::size_t, std::uint64_t> durable_best_;  // store slot → epoch
  std::uint64_t last_executed_total_ = 0;
  std::uint64_t last_recoveries_ = 0;
  Nanos last_progress_at_ = 0;
  bool progress_initialized_ = false;
};

}  // namespace sdvm::chaos
