// sdvm::chaos — deterministic fault-schedule model (ISSUE 3 tentpole).
//
// A ChaosSchedule is a seeded, fully explicit list of timed fault events
// (crash / churn / partition / heal / message-loss bursts) applied to a
// SimCluster while a workload program runs. Everything downstream of the
// seed is deterministic: the same seed produces the same schedule, the
// same virtual-time event trace and the same verdict, which is what makes
// failing seeds replayable and shrinkable.
//
// Schedules serialize to a small JSON document (the replay artifact
// format, see DESIGN.md "Chaos testing") and parse back with unknown keys
// ignored, so artifacts may carry extra diagnostic fields.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"

namespace sdvm::chaos {

enum class EventKind : std::uint8_t {
  kKill = 0,    // uncontrolled crash of site `target`
  kSignOff,     // graceful departure of site `target`
  kAddSite,     // a new site joins through the lowest live member
  kPartition,   // split live sites into [0, target) vs [target, n)
  kHeal,        // clear all partitions
  kLossBurst,   // default-link drop probability becomes `loss`
  kLossClear,   // restore the lossless default link
  kRestart,     // cold-restart previously killed site `target`
  kZoneOutage,  // cut rack `target` off from the rest (zoned runs only);
                // cleared by kHeal like a partition
};

[[nodiscard]] const char* to_string(EventKind kind);
[[nodiscard]] Result<EventKind> event_kind_from_string(const std::string& s);

struct ChaosEvent {
  Nanos at = 0;              // virtual offset from workload start
  EventKind kind = EventKind::kHeal;
  std::uint32_t target = 0;  // victim site index, or partition split point
  double loss = 0.0;         // kLossBurst drop probability

  /// Deterministic one-line rendering for traces and artifacts.
  [[nodiscard]] std::string to_line() const;

  friend bool operator==(const ChaosEvent&, const ChaosEvent&) = default;
};

struct ChaosSchedule {
  std::uint64_t seed = 1;  // SimCluster/network seed + workload choice
  int sites = 4;           // initial cluster size
  /// 0 = flat fabric (paper scale). > 0: the harness builds a rack
  /// topology with this many racks, spreads `sites` across them, and the
  /// generator may emit zone-wide outages.
  int zones = 0;
  std::vector<ChaosEvent> events;  // sorted by `at`

  [[nodiscard]] std::string to_json() const;
  /// Parses a schedule (or a replay artifact embedding one); keys other
  /// than seed/sites/events are skipped.
  static Result<ChaosSchedule> from_json(const std::string& text);

  friend bool operator==(const ChaosSchedule&, const ChaosSchedule&) = default;
};

struct GeneratorOptions {
  int sites = 4;    // initial cluster size
  int events = 12;  // fault events to emit (heal/clear tails ride along)
  /// Racks for a zoned run (copied into ChaosSchedule::zones). > 0 also
  /// puts zone-wide outages on the menu.
  int zones = 0;
  /// Window the events spread over; the workload is sized to outlast it.
  Nanos horizon = 4 * kNanosPerSecond;
  /// Max drop probability for loss bursts. The SDVM runtime assumes
  /// reliable ordered links (DESIGN.md §7 — the paper found UDP unusable),
  /// so the default profile emits no loss bursts; turning this on is the
  /// exploratory mode that demonstrates exactly why that assumption holds.
  double loss_max = 0.0;
  /// Emit partition/heal pairs. Off by default: a partition is a message
  /// *loss* window on this fabric, and one outliving the failure timeout
  /// splits the cluster into two independently recovering halves whose
  /// post-heal merge the runtime does not reconcile (split-brain — see
  /// DESIGN.md "Chaos testing" for the shrunk repro). Exploratory mode.
  bool allow_partitions = false;
  /// Allow kill/sign-off of site 0 (the workload home). Off by default
  /// for the memory-only profile; with durable state and k-replica
  /// placement home loss is survivable, so the durability sweep turns
  /// this on.
  bool allow_home_faults = false;
  /// Emit cold-restart events for previously killed sites. Only
  /// meaningful when the harness runs with durable state: a restarted
  /// site re-opens its state store and re-enters the recovery election.
  bool allow_restarts = false;
  /// Upper bound on how long a zone outage stays open before the
  /// generator forces the heal. Unlike kPartition (exploratory, allowed
  /// to split-brain), zone outages are on the default zoned menu, so
  /// their windows must close before the failure detector fires: a cut
  /// outliving the failure timeout makes ring neighbors across the cut
  /// declare each other dead, and death is terminal — the false verdicts
  /// spread epidemically after the heal and wedge the directory. Must
  /// stay at or below failure_timeout/2 for the profile the harness will
  /// run (the harness skips outages whose heal arrives later than that).
  Nanos max_zone_cut = 200'000'000;  // base profile: 400 ms timeout
};

/// Expands a seed into a concrete schedule. Pure function of its inputs.
/// The generator keeps schedules survivable-by-design: at least two sites
/// stay live, partitions and loss bursts are always healed/cleared by the
/// end, and sign-offs never happen while a partition is active (graceful
/// relocation across a cut link would silently lose frames).
[[nodiscard]] ChaosSchedule generate_schedule(
    std::uint64_t seed, const GeneratorOptions& options = {});

}  // namespace sdvm::chaos
