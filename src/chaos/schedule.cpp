#include "chaos/schedule.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <iomanip>
#include <sstream>

#include "common/rng.hpp"

namespace sdvm::chaos {

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kKill:      return "kill";
    case EventKind::kSignOff:   return "sign-off";
    case EventKind::kAddSite:   return "add-site";
    case EventKind::kPartition: return "partition";
    case EventKind::kHeal:      return "heal";
    case EventKind::kLossBurst: return "loss-burst";
    case EventKind::kLossClear: return "loss-clear";
    case EventKind::kRestart:   return "restart";
    case EventKind::kZoneOutage: return "zone-outage";
  }
  return "unknown";
}

Result<EventKind> event_kind_from_string(const std::string& s) {
  for (auto kind : {EventKind::kKill, EventKind::kSignOff, EventKind::kAddSite,
                    EventKind::kPartition, EventKind::kHeal,
                    EventKind::kLossBurst, EventKind::kLossClear,
                    EventKind::kRestart, EventKind::kZoneOutage}) {
    if (s == to_string(kind)) return kind;
  }
  return Status::error(ErrorCode::kInvalidArgument,
                       "unknown chaos event kind '" + s + "'");
}

std::string ChaosEvent::to_line() const {
  std::ostringstream os;
  os << "t+" << at << "ns " << to_string(kind);
  switch (kind) {
    case EventKind::kKill:
    case EventKind::kSignOff:
    case EventKind::kRestart:
      os << " site#" << target;
      break;
    case EventKind::kAddSite:
    case EventKind::kHeal:
    case EventKind::kLossClear:
      break;
    case EventKind::kPartition:
      os << " split@" << target;
      break;
    case EventKind::kZoneOutage:
      os << " zone#" << target;
      break;
    case EventKind::kLossBurst:
      os << " loss=" << loss;
      break;
  }
  return os.str();
}

// ---------------------------------------------------------------------------
// Generator
// ---------------------------------------------------------------------------

ChaosSchedule generate_schedule(std::uint64_t seed,
                                const GeneratorOptions& options) {
  ChaosSchedule schedule;
  schedule.seed = seed;
  schedule.sites = std::max(options.sites, 2);
  schedule.zones = std::max(options.zones, 0);

  // Mix the purpose into the stream so the same seed fed to the network
  // RNG does not correlate with event choices.
  Xoshiro256 rng(seed ^ 0xC4A05C4A05ull);

  // Planning census mirroring what the harness will do at apply time.
  int total = schedule.sites;  // entries ever created (indices 0..total-1)
  std::vector<bool> live(static_cast<std::size_t>(total), true);
  // Killed-not-signed-off sites are cold-restart candidates (their state
  // store survives the crash; a graceful sign-off relinquishes it).
  std::vector<bool> restartable(static_cast<std::size_t>(total), false);
  auto live_count = [&] {
    return static_cast<int>(std::count(live.begin(), live.end(), true));
  };
  bool partitioned = false;
  bool zone_cut = false;  // the active partition is a bounded zone outage
  Nanos cut_at = 0;
  bool lossy = false;

  Nanos step = std::max<Nanos>(options.horizon / std::max(options.events, 1), 1);
  Nanos at = 0;
  for (int i = 0; i < options.events; ++i) {
    // Strictly increasing times with deterministic spread.
    at += step / 2 + static_cast<Nanos>(rng.below(
             static_cast<std::uint64_t>(step) + 1));

    // A zone outage must heal before the failure detector fires (see
    // GeneratorOptions::max_zone_cut). Force the heal at the deadline;
    // every event since the cut is earlier than it, so times stay
    // strictly increasing.
    if (zone_cut && options.max_zone_cut > 0 &&
        at >= cut_at + options.max_zone_cut) {
      at = cut_at + options.max_zone_cut;
      ChaosEvent heal;
      heal.at = at;
      heal.kind = EventKind::kHeal;
      schedule.events.push_back(heal);
      partitioned = false;
      zone_cut = false;
      continue;
    }

    // Build the menu of currently legal event kinds.
    std::vector<EventKind> menu;
    int first_victim = options.allow_home_faults ? 0 : 1;
    bool has_victim = false;
    for (int s = first_victim; s < total; ++s) {
      has_victim |= live[static_cast<std::size_t>(s)];
    }
    if (live_count() > 2 && has_victim) {
      menu.push_back(EventKind::kKill);
      if (!partitioned) menu.push_back(EventKind::kSignOff);
    }
    menu.push_back(EventKind::kAddSite);
    if (options.allow_partitions && !partitioned && live_count() >= 2) {
      menu.push_back(EventKind::kPartition);
    }
    if (schedule.zones > 1 && !partitioned) {
      menu.push_back(EventKind::kZoneOutage);
    }
    if (partitioned) menu.push_back(EventKind::kHeal);
    if (options.loss_max > 0 && !lossy) menu.push_back(EventKind::kLossBurst);
    if (lossy) menu.push_back(EventKind::kLossClear);
    bool has_restartable =
        std::find(restartable.begin(), restartable.end(), true) !=
        restartable.end();
    if (options.allow_restarts && has_restartable && !partitioned) {
      menu.push_back(EventKind::kRestart);
    }

    ChaosEvent ev;
    ev.at = at;
    ev.kind = menu[rng.below(menu.size())];
    switch (ev.kind) {
      case EventKind::kKill:
      case EventKind::kSignOff: {
        // allow_home_faults extends *kills* to site 0 (crash recovery
        // re-homes the program); graceful home departure stays off-menu.
        int lowest = ev.kind == EventKind::kKill ? first_victim : 1;
        std::vector<int> victims;
        for (int s = lowest; s < total; ++s) {
          if (live[static_cast<std::size_t>(s)]) victims.push_back(s);
        }
        if (victims.empty()) {
          ev.kind = EventKind::kAddSite;
          live.push_back(true);
          restartable.push_back(false);
          ++total;
          break;
        }
        ev.target = static_cast<std::uint32_t>(
            victims[rng.below(victims.size())]);
        live[ev.target] = false;
        restartable[ev.target] = ev.kind == EventKind::kKill;
        break;
      }
      case EventKind::kRestart: {
        std::vector<int> candidates;
        for (int s = 0; s < total; ++s) {
          if (restartable[static_cast<std::size_t>(s)]) candidates.push_back(s);
        }
        ev.target = static_cast<std::uint32_t>(
            candidates[rng.below(candidates.size())]);
        live[ev.target] = true;
        restartable[ev.target] = false;
        break;
      }
      case EventKind::kAddSite:
        live.push_back(true);
        restartable.push_back(false);
        ++total;
        break;
      case EventKind::kPartition:
        // Split point over the live members at apply time.
        ev.target = static_cast<std::uint32_t>(
            1 + rng.below(static_cast<std::uint64_t>(live_count() - 1)));
        partitioned = true;
        break;
      case EventKind::kZoneOutage:
        // Never the home's rack (rack 0) unless home faults are allowed;
        // the harness re-checks at apply time.
        ev.target = static_cast<std::uint32_t>(
            (options.allow_home_faults ? 0 : 1) +
            rng.below(static_cast<std::uint64_t>(
                schedule.zones - (options.allow_home_faults ? 0 : 1))));
        partitioned = true;  // cleared by kHeal like a partition
        zone_cut = true;
        cut_at = at;
        break;
      case EventKind::kHeal:
        partitioned = false;
        zone_cut = false;
        break;
      case EventKind::kLossBurst:
        ev.loss = options.loss_max * (0.3 + 0.7 * rng.uniform());
        lossy = true;
        break;
      case EventKind::kLossClear:
        lossy = false;
        break;
    }
    schedule.events.push_back(ev);
  }

  // Leave the cluster connected and lossless so liveness invariants apply.
  if (lossy) {
    ChaosEvent clear;
    clear.at = at + step;
    clear.kind = EventKind::kLossClear;
    schedule.events.push_back(clear);
  }
  if (partitioned) {
    ChaosEvent heal;
    heal.at = at + 2 * step;
    if (zone_cut && options.max_zone_cut > 0) {
      // The forced-heal scan above guarantees at < cut_at + max_zone_cut,
      // so the clamped time still comes after every emitted event.
      heal.at = std::min(heal.at, cut_at + options.max_zone_cut);
    }
    heal.kind = EventKind::kHeal;
    schedule.events.push_back(heal);
  }
  return schedule;
}

// ---------------------------------------------------------------------------
// JSON
// ---------------------------------------------------------------------------

std::string ChaosSchedule::to_json() const {
  std::ostringstream os;
  // Round-trippable doubles: 17 significant digits reproduce any IEEE
  // binary64 exactly, so parse(to_json()) == *this.
  os << std::setprecision(17);
  os << "{\n  \"seed\": " << seed << ",\n  \"sites\": " << sites
     << ",\n  \"zones\": " << zones << ",\n  \"events\": [";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const ChaosEvent& e = events[i];
    os << (i == 0 ? "\n" : ",\n") << "    {\"at\": " << e.at << ", \"kind\": \""
       << to_string(e.kind) << "\", \"target\": " << e.target
       << ", \"loss\": " << e.loss << "}";
  }
  os << (events.empty() ? "]" : "\n  ]") << "\n}\n";
  return os.str();
}

namespace {

/// Minimal recursive-descent JSON reader, scoped to the artifact schema:
/// objects, arrays, strings (with \-escapes), numbers, true/false/null.
/// Unknown keys are skipped wholesale so artifacts can carry diagnostics.
class JsonReader {
 public:
  explicit JsonReader(const std::string& text) : s_(text) {}

  void ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  bool consume(char c) {
    ws();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  [[nodiscard]] char peek() {
    ws();
    return pos_ < s_.size() ? s_[pos_] : '\0';
  }

  Result<std::string> string() {
    if (!consume('"')) return err_status("expected string");
    std::string out;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\' && pos_ < s_.size()) {
        char esc = s_[pos_++];
        switch (esc) {
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case 'u':
            // Artifact strings are ASCII; keep the raw escape.
            out.push_back('?');
            pos_ += std::min<std::size_t>(4, s_.size() - pos_);
            break;
          default: out.push_back(esc); break;
        }
      } else {
        out.push_back(c);
      }
    }
    if (pos_ >= s_.size()) return err_status("unterminated string");
    ++pos_;  // closing quote
    return out;
  }

  Result<double> number() {
    ws();
    const char* begin = s_.c_str() + pos_;
    char* end = nullptr;
    double v = std::strtod(begin, &end);
    if (end == begin) return err_status("expected number");
    pos_ += static_cast<std::size_t>(end - begin);
    return v;
  }

  /// Skips any value (for unknown keys).
  Status skip_value() {
    char c = peek();
    if (c == '"') {
      auto s = string();
      return s.is_ok() ? Status::ok() : s.status();
    }
    if (c == '{' || c == '[') {
      char close = c == '{' ? '}' : ']';
      consume(c);
      if (consume(close)) return Status::ok();
      while (true) {
        if (c == '{') {
          auto key = string();
          if (!key.is_ok()) return key.status();
          if (!consume(':')) return err_status("expected ':'");
        }
        Status st = skip_value();
        if (!st.is_ok()) return st;
        if (consume(close)) return Status::ok();
        if (!consume(',')) return err_status("expected ',' or close");
      }
    }
    if (c == 't' || c == 'f' || c == 'n') {  // true / false / null
      while (pos_ < s_.size() &&
             std::isalpha(static_cast<unsigned char>(s_[pos_]))) {
        ++pos_;
      }
      return Status::ok();
    }
    auto n = number();
    return n.is_ok() ? Status::ok() : n.status();
  }

  [[nodiscard]] Status err_status(const std::string& what) const {
    return Status::error(ErrorCode::kCorrupt,
                         "chaos schedule JSON: " + what + " at offset " +
                             std::to_string(pos_));
  }

 private:
  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<ChaosSchedule> ChaosSchedule::from_json(const std::string& text) {
  JsonReader r(text);
  if (!r.consume('{')) return r.err_status("expected top-level object");
  ChaosSchedule schedule;
  schedule.events.clear();
  if (r.consume('}')) return schedule;
  while (true) {
    auto key = r.string();
    if (!key.is_ok()) return key.status();
    if (!r.consume(':')) return r.err_status("expected ':'");
    if (key.value() == "seed") {
      auto v = r.number();
      if (!v.is_ok()) return v.status();
      schedule.seed = static_cast<std::uint64_t>(v.value());
    } else if (key.value() == "sites") {
      auto v = r.number();
      if (!v.is_ok()) return v.status();
      schedule.sites = static_cast<int>(v.value());
    } else if (key.value() == "zones") {
      auto v = r.number();
      if (!v.is_ok()) return v.status();
      schedule.zones = static_cast<int>(v.value());
    } else if (key.value() == "events") {
      if (!r.consume('[')) return r.err_status("expected event array");
      if (!r.consume(']')) {
        while (true) {
          if (!r.consume('{')) return r.err_status("expected event object");
          ChaosEvent ev;
          while (true) {
            auto ekey = r.string();
            if (!ekey.is_ok()) return ekey.status();
            if (!r.consume(':')) return r.err_status("expected ':'");
            if (ekey.value() == "at") {
              auto v = r.number();
              if (!v.is_ok()) return v.status();
              ev.at = static_cast<Nanos>(v.value());
            } else if (ekey.value() == "kind") {
              auto v = r.string();
              if (!v.is_ok()) return v.status();
              auto kind = event_kind_from_string(v.value());
              if (!kind.is_ok()) return kind.status();
              ev.kind = kind.value();
            } else if (ekey.value() == "target") {
              auto v = r.number();
              if (!v.is_ok()) return v.status();
              ev.target = static_cast<std::uint32_t>(v.value());
            } else if (ekey.value() == "loss") {
              auto v = r.number();
              if (!v.is_ok()) return v.status();
              ev.loss = v.value();
            } else {
              Status st = r.skip_value();
              if (!st.is_ok()) return st;
            }
            if (r.consume('}')) break;
            if (!r.consume(',')) return r.err_status("expected ',' or '}'");
          }
          schedule.events.push_back(ev);
          if (r.consume(']')) break;
          if (!r.consume(',')) return r.err_status("expected ',' or ']'");
        }
      }
    } else {
      Status st = r.skip_value();
      if (!st.is_ok()) return st;
    }
    if (r.consume('}')) break;
    if (!r.consume(',')) return r.err_status("expected ',' or '}'");
  }
  std::stable_sort(schedule.events.begin(), schedule.events.end(),
                   [](const ChaosEvent& a, const ChaosEvent& b) {
                     return a.at < b.at;
                   });
  return schedule;
}

}  // namespace sdvm::chaos
