// Failing-seed shrinker: delta-debugging (ddmin) over a failing schedule's
// event list. Replays event subsets through a fresh ChaosHarness and keeps
// the smallest subset that still violates the same invariant as the
// original run, then emits a replayable JSON artifact embedding the
// minimal schedule plus the violations it produces. Because every harness
// run is a pure function of its schedule, the shrink is deterministic and
// the artifact replays bit-identically.
#pragma once

#include <string>

#include "chaos/harness.hpp"
#include "chaos/schedule.hpp"

namespace sdvm::chaos {

struct ShrinkResult {
  ChaosSchedule minimal;  // 1-minimal: removing any one event passes
  RunReport report;       // the failing run of `minimal`
  int runs = 0;           // harness executions the shrink spent
};

/// Minimizes `failing.events` with ddmin. `target_invariant` names the
/// violation class to preserve (normally the first violation of the
/// original run); subsets failing only in *different* ways don't count.
/// `options` must match the options of the run that failed.
[[nodiscard]] ShrinkResult shrink_schedule(const ChaosSchedule& failing,
                                           const std::string& target_invariant,
                                           HarnessOptions options = {});

/// Replay artifact: the schedule's own JSON keys plus workload/violation
/// diagnostics. ChaosSchedule::from_json reads it back directly (unknown
/// keys are skipped), so `sdvm-chaos --replay <file>` works on it as-is.
[[nodiscard]] std::string make_artifact_json(const ChaosSchedule& schedule,
                                             const RunReport& report);

}  // namespace sdvm::chaos
