#include "chaos/explore.hpp"

#include <algorithm>
#include <sstream>

#include "apps/chaos_mix.hpp"
#include "runtime/site.hpp"
#include "sim/sim_cluster.hpp"

namespace sdvm::chaos {

namespace {

/// Chooser that replays a decision prefix and records every choice point
/// it passes: which index ran, and which alternatives a DFS expansion
/// should try. Past the prefix it always takes index 0 (timestamp order),
/// so a run is fully determined by its prefix — stateless replay.
class RecordingChooser final : public sim::EventChooser {
 public:
  struct Decision {
    std::size_t chosen = 0;
    /// Indices worth branching to from this node: events acting on the
    /// same site as the default choice. Deliveries to *different* sites
    /// commute (each site consumes only its own inbox), and any pair of
    /// them stays co-enabled in the child state, where their swapped
    /// order gets its own branch — the sleep-set-style pruning that keeps
    /// the tree polynomial instead of factorial in co-enabled events.
    std::vector<std::size_t> alternatives;
  };

  explicit RecordingChooser(std::vector<std::size_t> prefix)
      : prefix_(std::move(prefix)) {}

  std::size_t choose(const std::vector<Choice>& enabled) override {
    const std::size_t k = decisions_.size();
    std::size_t pick = 0;
    if (k < prefix_.size() && prefix_[k] < enabled.size()) {
      pick = prefix_[k];
    }
    Decision d;
    d.chosen = pick;
    if (k >= prefix_.size()) {
      for (std::size_t j = 1; j < enabled.size(); ++j) {
        if (enabled[j].tag.actor == enabled[0].tag.actor) {
          d.alternatives.push_back(j);
        }
      }
    }
    decisions_.push_back(std::move(d));
    return pick;
  }

  [[nodiscard]] const std::vector<Decision>& decisions() const {
    return decisions_;
  }

 private:
  std::vector<std::size_t> prefix_;
  std::vector<Decision> decisions_;
};

struct ScenarioRun {
  std::vector<Violation> violations;
  std::vector<std::string> trace;
};

/// Calm timers: every periodic message is a potential choice point, so
/// heartbeats and help retries run an order of magnitude slower than in
/// the random harness — the branching stays focused on the protocol
/// window under test instead of background gossip.
SiteConfig explore_site_config(const ExploreOptions& options) {
  SiteConfig cfg;
  cfg.heartbeat_interval = 200'000'000;   // 200 ms
  cfg.failure_timeout = kNanosPerSecond;  // no false suspicions mid-window
  cfg.help_retry_interval = 100'000'000;  // 100 ms
  // shard-handoff crashes a site mid-window, so its program state must be
  // recoverable from committed checkpoint epochs.
  cfg.checkpoints_enabled =
      options.scenario == "checkpoint" || options.scenario == "shard-handoff";
  cfg.checkpoint_interval = kNanosPerSecond / 2;
  // Seeded bugs are scenario-scoped: each flag re-introduces the specific
  // defect its window is designed to surface.
  cfg.test_drop_departed_forwarding =
      options.seed_bug && options.scenario == "sign-off";
  cfg.test_stale_lease_serve =
      options.seed_bug && options.scenario == "shard-handoff";
  return cfg;
}

/// One scenario execution under a given decision prefix. Builds a fresh
/// cluster from the seed, replays, checks invariants after every drain
/// slice and once at quiescence.
ScenarioRun run_one(const ExploreOptions& options, RecordingChooser& chooser) {
  ScenarioRun out;

  sim::SimCluster::Options copts;
  copts.seed = options.seed;
  sim::SimCluster cluster(copts);
  const SiteConfig cfg = explore_site_config(options);
  cluster.add_sites(std::max(options.sites, 2), 1.0, cfg);

  std::vector<SiteRecord> records(cluster.size());
  InvariantChecker checker;
  // The sign-on scenario runs no program: termination is asserted
  // pre-satisfied so the quiescence pass checks membership, not results.
  const bool no_program = options.scenario == "sign-on";
  ProgramId pid{};
  bool terminated = no_program;
  std::int64_t exit_code = 0;

  auto fail = [&](const std::string& invariant, const std::string& detail) {
    Violation v{invariant, detail, -1, cluster.now()};
    out.trace.push_back(v.to_line());
    out.violations.push_back(std::move(v));
  };
  auto check = [&](int index, bool quiesced) {
    ChaosContext ctx{cluster, pid, records};
    ctx.at_quiescence = quiesced;
    ctx.terminated = terminated;
    ctx.exit_code = exit_code;
    for (Violation& v : checker.check(ctx, index)) {
      out.trace.push_back(v.to_line());
      out.violations.push_back(std::move(v));
    }
    terminated = ctx.terminated;
    exit_code = ctx.exit_code;
  };

  if (!no_program) {
    apps::ChaosWorkload workload = apps::make_chaos_workload(options.seed);
    auto started = cluster.start_program(workload.spec, 0);
    if (!started.is_ok()) {
      fail("workload-starts", started.status().message());
      return out;
    }
    pid = started.value();
  }

  sim::EventLoop& loop = cluster.loop();
  if (options.scenario == "sign-on") {
    // Settle the initial membership deterministically, then explore the
    // delivery orders of the join handshake + membership gossip.
    loop.run_for(kNanosPerSecond);
    loop.set_chooser(&chooser, options.window);
    Site& added = cluster.add_site(cfg, 0);
    loop.set_chooser(nullptr, 0);
    records.push_back(SiteRecord{});
    if (!added.joined()) {
      records.back().join_failed = true;
      fail("sign-on-completes", "new site did not join within virtual 10s");
    }
  } else if (options.scenario == "sign-off") {
    const std::size_t victim = cluster.size() - 1;
    const std::string victim_addr =
        cluster.site(victim).transport()->local_address();
    // Warm up without the chooser so the workload spreads frames to the
    // victim through starvation help.
    loop.run_for(2 * kNanosPerSecond);
    // Reactive race trigger: the first frame-carrying message headed for
    // the victim (a help grant — bigger than a 123 B heartbeat, smaller
    // than a 287 B membership gossip) schedules the graceful departure
    // while that message is still in flight. The departure must be an
    // *internal loop event* acting on the victim: run_for drains
    // everything due before returning, so a top-level sign_off() call
    // could never race a delivery. Tagged with the victim's slot, it is
    // dependent with deliveries to the victim — exactly the adoption-
    // chain race under test.
    bool armed = false;
    cluster.network().set_trace_hook(
        [&](const std::string&, const std::string& to, std::size_t size,
            bool delivered) {
          if (armed || !delivered || to != victim_addr) return;
          if (size < 150 || size >= 280) return;
          armed = true;
          loop.schedule_tagged(
              1'000, sim::EventTag{sim::EventTag::Kind::kInternal,
                                   static_cast<std::uint32_t>(victim)},
              [&cluster, &records, victim] {
                if (cluster.sign_off(victim).is_ok()) {
                  records[victim].signed_off = true;
                }
              });
        });
    loop.set_chooser(&chooser, options.window);
    // The grant cadence is one help retry (100 ms); a virtual second
    // covers several cycles plus the departure and its forwarding tail.
    loop.run_for(kNanosPerSecond);
    loop.set_chooser(nullptr, 0);
    cluster.network().set_trace_hook(nullptr);
    if (!armed) {
      fail("race-armed",
           "no frame-carrying message to the departing site within a "
           "virtual second; nothing to race");
    }
  } else if (options.scenario == "shard-handoff") {
    // Let leases settle and the workload spread objects across sites,
    // then open the window on a consistent-hashing remigration: a new
    // site joins (rendezvous targets move, holders hand their shards
    // over) while the lease-richest non-home site is killed mid-window —
    // graceful handoff, deterministic takeover election and rebuild
    // traffic all race the shard-routed object requests. add_site must
    // be the top-level call here (it pumps the loop until the join
    // completes), so the crash rides a tagged internal event instead.
    loop.run_for(2 * kNanosPerSecond);
    std::size_t victim = 0;
    std::size_t victim_held = 0;
    for (std::size_t i = 1; i < cluster.size(); ++i) {
      const std::size_t held = cluster.site(i).memory().shards_held();
      if (held > victim_held) {
        victim = i;
        victim_held = held;
      }
    }
    if (victim != 0) {
      loop.schedule_tagged(
          options.window / 2,
          sim::EventTag{sim::EventTag::Kind::kInternal,
                        static_cast<std::uint32_t>(victim)},
          [&cluster, &records, victim] {
            cluster.kill(victim);
            records[victim].killed = true;
          });
    }
    loop.set_chooser(&chooser, options.window);
    Site& added = cluster.add_site(cfg, 0);
    loop.set_chooser(nullptr, 0);
    records.push_back(SiteRecord{});
    if (!added.joined()) {
      records.back().join_failed = true;
      fail("sign-on-completes", "new site did not join within virtual 10s");
    }
  } else {  // "checkpoint"
    // Let the first epoch's offer/election round start, then reorder the
    // offers, acks and commit messages of the next one.
    loop.run_for(kNanosPerSecond);
    loop.set_chooser(&chooser, options.window);
    loop.run_for(3 * kNanosPerSecond / 2);
    loop.set_chooser(nullptr, 0);
  }

  // Drain to termination (or a generous virtual deadline), checking the
  // always-on invariants every half second like the random harness.
  const Nanos deadline = cluster.now() + 30 * kNanosPerSecond;
  while (cluster.now() < deadline && !terminated) {
    loop.run_for(kNanosPerSecond / 2);
    check(0, /*quiesced=*/false);
    if (!out.violations.empty()) return out;
  }

  // Settle the failure detector, then the quiescence pass: membership
  // convergence, directory owners, termination, program home.
  loop.run_for(2 * kNanosPerSecond);
  check(-1, /*quiesced=*/true);
  return out;
}

}  // namespace

Status ExploreOptions::validate() const {
  if (sites < 2 || sites > 8) {
    return Status::error(ErrorCode::kInvalidArgument,
                         "explore sites must be in [2, 8]");
  }
  if (scenario != "sign-on" && scenario != "sign-off" &&
      scenario != "checkpoint" && scenario != "shard-handoff") {
    return Status::error(ErrorCode::kInvalidArgument,
                         "unknown explore scenario '" + scenario + "'");
  }
  if (depth < 0) {
    return Status::error(ErrorCode::kInvalidArgument,
                         "explore depth must be >= 0");
  }
  if (max_runs < 1) {
    return Status::error(ErrorCode::kInvalidArgument,
                         "explore max-runs must be >= 1");
  }
  if (window <= 0) {
    return Status::error(ErrorCode::kInvalidArgument,
                         "explore window must be > 0");
  }
  return Status::ok();
}

std::string ExploreResult::summary() const {
  std::ostringstream os;
  os << runs << " runs, " << choice_points << " choice points, ";
  if (failed) {
    os << "FAILED (stopped at first failing interleaving)";
  } else if (exhausted) {
    os << "space exhausted, all interleavings pass";
  } else {
    os << "run budget hit, all explored interleavings pass";
  }
  return os.str();
}

Result<ExploreResult> explore(const ExploreOptions& options) {
  if (Status st = options.validate(); !st.is_ok()) return st;

  ExploreResult result;
  const auto depth = static_cast<std::size_t>(options.depth);

  // DFS over decision prefixes. Each run replays its prefix and defaults
  // to timestamp order afterwards; every choice point at or past the
  // prefix (up to the depth bound) spawns one child per dependent
  // alternative. Visiting each prefix exactly once enumerates the pruned
  // interleaving tree without ever snapshotting simulator state.
  std::vector<std::vector<std::size_t>> stack;
  stack.emplace_back();
  while (!stack.empty()) {
    if (result.runs >= options.max_runs) return result;  // budget hit
    const std::vector<std::size_t> prefix = std::move(stack.back());
    stack.pop_back();

    RecordingChooser chooser(prefix);
    ScenarioRun run = run_one(options, chooser);
    ++result.runs;
    const auto& decisions = chooser.decisions();
    result.choice_points += decisions.size();

    if (!run.violations.empty()) {
      result.failed = true;
      result.failing_choices.clear();
      for (const auto& d : decisions) {
        result.failing_choices.push_back(d.chosen);
      }
      result.violations = std::move(run.violations);
      result.failure_trace = std::move(run.trace);
      return result;
    }

    for (std::size_t i = prefix.size();
         i < decisions.size() && i < depth; ++i) {
      for (std::size_t alt : decisions[i].alternatives) {
        std::vector<std::size_t> child(prefix);
        for (std::size_t j = prefix.size(); j < i; ++j) {
          child.push_back(decisions[j].chosen);
        }
        child.push_back(alt);
        stack.push_back(std::move(child));
      }
    }
  }
  result.exhausted = true;
  return result;
}

}  // namespace sdvm::chaos
