// Bounded systematic exploration of protocol interleavings (sdvm-chaos
// --explore). Where the random chaos harness samples one delivery order
// per seed, exploration *enumerates* them: the event loop exposes every
// network delivery that could plausibly run next (any delivery within a
// virtual-latency window of the earliest pending event), and a recording
// chooser replays a prefix of decisions before falling back to timestamp
// order. A depth-first driver expands each choice point into the
// alternatives that matter — DPOR-style, only events acting on the same
// site as the default choice are dependent; different-site deliveries
// commute and their swapped order is reached from a later co-enabled
// state — so small sign-on / sign-off / checkpoint clusters can be
// checked against the full InvariantChecker suite over every distinct
// interleaving up to a depth bound.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chaos/invariants.hpp"
#include "common/status.hpp"
#include "common/types.hpp"

namespace sdvm::chaos {

struct ExploreOptions {
  /// Initial cluster size. Exploration is exponential in the number of
  /// co-enabled deliveries, so this is capped at 8 (3-4 is the sweet
  /// spot; the acceptance runs use 3).
  int sites = 3;
  /// Which protocol window to explore:
  ///   "sign-on"    — a new site joins a settled cluster; membership must
  ///                  converge in every delivery order.
  ///   "sign-off"   — a site departs gracefully mid-workload; in-flight
  ///                  frames racing the departure must survive the
  ///                  adoption chain (the reverted-bug detector).
  ///   "checkpoint" — a checkpoint offer/election round is reordered;
  ///                  committed epochs must stay monotone and agreed.
  ///   "shard-handoff" — a join remigrates directory shards (graceful
  ///                  lease handoffs) while the lease-richest non-home
  ///                  site crashes mid-window; handoff, takeover election
  ///                  and rebuild traffic race the routed requests, and
  ///                  exactly one authoritative holder per shard must
  ///                  survive every order.
  std::string scenario = "sign-off";
  /// Choice points past this index stop branching (they take the
  /// timestamp-order default), bounding the tree.
  int depth = 12;
  /// Hard cap on scenario executions; the space is exhausted only if the
  /// DFS drains before hitting it.
  int max_runs = 20000;
  /// Reorder window: deliveries within this many virtual nanos of the
  /// earliest pending event are considered co-enabled. Should be at least
  /// the fabric latency (100 us by default) to expose real races.
  Nanos window = 200'000;
  /// Workload / fabric seed (same meaning as a chaos-schedule seed).
  std::uint64_t seed = 1;
  /// Arms the scenario's seeded bug on every site. For "sign-off" that is
  /// SiteConfig::test_drop_departed_forwarding (a signed-off site drops
  /// in-flight messages instead of forwarding them — a real recovery bug;
  /// exploration must find the interleaving where it loses a frame). For
  /// "shard-handoff" it is SiteConfig::test_stale_lease_serve (a site
  /// hands a shard off but keeps serving from its stale lease — split
  /// authority the shard invariants must catch).
  bool seed_bug = false;

  [[nodiscard]] Status validate() const;
};

struct ExploreResult {
  int runs = 0;                     // scenario executions performed
  std::uint64_t choice_points = 0;  // chooser decisions across all runs
  bool exhausted = false;  // DFS drained the bounded space within max_runs
  bool failed = false;     // some interleaving violated an invariant
  /// Decision path of the failing run (index into each sorted enabled
  /// set), enough to replay it by hand.
  std::vector<std::size_t> failing_choices;
  std::vector<std::string> failure_trace;  // rendered violations
  std::vector<Violation> violations;

  /// One-line summary for CLI output and test messages.
  [[nodiscard]] std::string summary() const;
};

/// Runs the bounded DFS. Each run builds a fresh SimCluster from the same
/// seed, replays the decision prefix, and lets every later choice default
/// to timestamp order — stateless replay, so the tree is walked without
/// snapshotting cluster state.
[[nodiscard]] Result<ExploreResult> explore(const ExploreOptions& options);

}  // namespace sdvm::chaos
