#include "chaos/invariants.hpp"

#include <algorithm>
#include <optional>
#include <sstream>

#include "runtime/checkpoint_store.hpp"
#include "runtime/site.hpp"

namespace sdvm::chaos {

std::string Violation::to_line() const {
  std::ostringstream os;
  os << "[t=" << at << "ns";
  if (event_index >= 0) {
    os << " after #" << event_index;
  } else {
    os << " at quiescence";
  }
  os << "] " << invariant << ": " << detail;
  return os.str();
}

std::vector<Violation> InvariantChecker::check(ChaosContext& ctx,
                                               int event_index) {
  std::vector<Violation> found;
  check_exit_codes(ctx, found);
  check_epochs(ctx, found);
  check_progress(ctx, found);
  check_durable_stores(ctx, found);
  if (ctx.at_quiescence) {
    check_membership(ctx, found);
    check_directory_owners(ctx, found);
    check_termination(ctx, found);
    check_program_home(ctx, found);
  }
  for (Violation& v : found) {
    v.event_index = event_index;
    v.at = ctx.cluster.now();
  }
  return found;
}

// Paper §2.2/§6: crashes are absorbed by checkpoint recovery — the program
// still commits exactly one result, and every live site that learns of the
// termination must have learned the *same* exit code.
void InvariantChecker::check_exit_codes(ChaosContext& ctx,
                                        std::vector<Violation>& out) {
  std::optional<std::int64_t> seen;
  std::size_t seen_at = 0;
  for (std::size_t i = 0; i < ctx.cluster.size(); ++i) {
    if (!ctx.live(i)) continue;
    Site& site = ctx.cluster.site(i);
    if (!site.programs().is_terminated(ctx.pid)) continue;
    std::int64_t code = site.programs().exit_code(ctx.pid).value_or(0);
    if (!seen.has_value()) {
      seen = code;
      seen_at = i;
      ctx.terminated = true;
      ctx.exit_code = code;
    } else if (*seen != code) {
      out.push_back(Violation{
          "one-committed-result",
          "site index " + std::to_string(seen_at) + " committed exit code " +
              std::to_string(*seen) + " but site index " + std::to_string(i) +
              " committed " + std::to_string(code),
          0, 0});
    }
  }
}

// Checkpoint epochs only move forward on every site: a recovery restores
// *from* the latest committed epoch, it never un-commits one.
void InvariantChecker::check_epochs(ChaosContext& ctx,
                                    std::vector<Violation>& out) {
  for (std::size_t i = 0; i < ctx.cluster.size(); ++i) {
    if (!ctx.live(i)) continue;
    auto status = ctx.cluster.status(i);
    if (!status.is_ok()) continue;
    auto epoch = static_cast<std::uint64_t>(
        status.value().metrics.gauge_value("crash.committed_epoch"));
    auto it = last_epoch_.find(i);
    // A drop to zero is the program's snapshot being cleaned up at
    // termination; only a rollback to an *earlier committed* epoch is an
    // un-commit, which recovery must never do.
    if (it != last_epoch_.end() && epoch != 0 && epoch < it->second) {
      out.push_back(Violation{
          "epoch-monotone",
          "site index " + std::to_string(i) + " committed epoch went " +
              std::to_string(it->second) + " -> " + std::to_string(epoch),
          0, 0});
    }
    last_epoch_[i] = epoch;
  }
}

// Liveness bound: with queued executable frames somewhere and no partition
// or loss window in effect, cluster-wide execution must advance within
// kProgressBound of virtual time (help requests retry on a millisecond
// scale; checkpoint freezes abort within two seconds).
void InvariantChecker::check_progress(ChaosContext& ctx,
                                      std::vector<Violation>& out) {
  std::uint64_t executed = 0;
  std::uint32_t queued = 0;
  for (std::size_t i = 0; i < ctx.cluster.size(); ++i) {
    if (!ctx.live(i)) continue;
    auto status = ctx.cluster.status(i);
    if (!status.is_ok()) continue;
    executed += status.value().load.executed_total;
    queued += status.value().load.queued_frames;
  }
  Nanos now = ctx.cluster.now();
  if (!progress_initialized_ || executed > last_executed_total_ ||
      ctx.terminated || ctx.faults_active || queued == 0) {
    // Progress, or a state where stalling is legitimate: reset the clock.
    progress_initialized_ = true;
    last_executed_total_ = executed;
    last_progress_at_ = now;
    return;
  }
  if (now - last_progress_at_ > kProgressBound) {
    out.push_back(Violation{
        "no-starved-frames",
        std::to_string(queued) + " frames queued but executed_total stuck at " +
            std::to_string(executed) + " for " +
            std::to_string(now - last_progress_at_) + "ns",
        0, 0});
    last_progress_at_ = now;  // re-arm instead of repeating every check
  }
}

// After heal + settle, any two sites that still consider *each other*
// alive must agree on the whole membership view (gossip convergence,
// paper §3.4). Pairs where either side has declared the other dead are
// skipped: a partition outliving the failure timeout legitimately ends in
// mutual death verdicts, and death is terminal per logical id.
void InvariantChecker::check_membership(ChaosContext& ctx,
                                        std::vector<Violation>& out) {
  struct View {
    std::size_t index;
    SiteId id;
    std::vector<SiteId> alive;
  };
  std::vector<View> views;
  for (std::size_t i = 0; i < ctx.cluster.size(); ++i) {
    if (!ctx.live(i)) continue;
    Site& site = ctx.cluster.site(i);
    if (!site.joined()) continue;
    views.push_back(View{i, site.id(), site.cluster().known_sites(true)});
  }
  // Group identical views first: a converged 1000-site cluster collapses
  // to one group and the check finishes in O(n·|view|) instead of the
  // pairwise O(n²·|view|) scan. Only cross-group pairs can disagree.
  std::map<std::vector<SiteId>, std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < views.size(); ++i) {
    groups[views[i].alive].push_back(i);
  }
  if (groups.size() <= 1) return;
  // known_sites walks a std::map, so each view is sorted by id.
  auto sees_alive = [](const View& v, SiteId other) {
    return std::binary_search(v.alive.begin(), v.alive.end(), other);
  };
  auto render = [](const std::vector<SiteId>& ids) {
    std::string s = "{";
    for (SiteId id : ids) s += std::to_string(id) + ",";
    s += "}";
    return s;
  };
  constexpr std::size_t kMaxReported = 5;  // a diverged big run repeats fast
  std::size_t reported = 0;
  for (auto ga = groups.begin(); ga != groups.end(); ++ga) {
    for (auto gb = std::next(ga); gb != groups.end(); ++gb) {
      for (std::size_t a : ga->second) {
        for (std::size_t b : gb->second) {
          if (!sees_alive(views[a], views[b].id) ||
              !sees_alive(views[b], views[a].id)) {
            continue;
          }
          out.push_back(Violation{
              "membership-convergence",
              "site " + std::to_string(views[a].id) + " sees " +
                  render(views[a].alive) + " but site " +
                  std::to_string(views[b].id) + " sees " +
                  render(views[b].alive),
              0, 0});
          if (++reported >= kMaxReported) return;
        }
      }
    }
  }
}

// No global address may be owned by a departed site: every directory
// entry's owner must resolve (through the sign-off/recovery successor
// chain) to a site the directory holder itself believes alive.
void InvariantChecker::check_directory_owners(ChaosContext& ctx,
                                              std::vector<Violation>& out) {
  for (std::size_t i = 0; i < ctx.cluster.size(); ++i) {
    if (!ctx.live(i)) continue;
    Site& site = ctx.cluster.site(i);
    if (!site.joined()) continue;
    for (const auto& [addr, owner] : site.memory().directory_snapshot()) {
      SiteId resolved = site.cluster().resolve_successor(owner);
      const SiteInfo* info = site.cluster().find(resolved);
      if (info != nullptr && !info->alive) {
        out.push_back(Violation{
            "frame-owner-live",
            "site " + std::to_string(site.id()) + " directory entry " +
                std::to_string(addr.value) + " owned by site " +
                std::to_string(owner) + " which resolves to dead site " +
                std::to_string(resolved),
            0, 0});
      }
    }
  }
}

// The headline claim (§2.2): the cluster keeps computing while machines
// sign on and off and crash. At quiescence the workload must have
// committed its result on some live site.
void InvariantChecker::check_termination(ChaosContext& ctx,
                                         std::vector<Violation>& out) {
  if (ctx.terminated) return;
  std::string detail = "program never terminated;";
  for (std::size_t i = 0; i < ctx.cluster.size(); ++i) {
    if (!ctx.live(i)) continue;
    auto status = ctx.cluster.status(i);
    if (!status.is_ok()) continue;
    if (status.value().load.queued_frames > 0 ||
        status.value().load.running > 0) {
      detail += " site index " + std::to_string(i) + " holds " +
                std::to_string(status.value().load.queued_frames) +
                " queued / " + std::to_string(status.value().load.running) +
                " running;";
    }
  }
  out.push_back(Violation{"program-terminates", detail, 0, 0});
}

// Durable no-un-persist: the best recoverable epoch in each state store
// never regresses while the program lives. CheckpointStore::persist
// verifies the written frame before garbage-collecting older generations,
// so a torn or bit-flipped write may fail to advance the store but can
// never take a previously committed epoch away. (Termination legitimately
// drops the artifacts.) Stores are keyed by SimCluster slot, which is
// stable across cold restarts — exactly the property under test.
void InvariantChecker::check_durable_stores(ChaosContext& ctx,
                                            std::vector<Violation>& out) {
  for (std::size_t i = 0; i < ctx.cluster.size(); ++i) {
    std::shared_ptr<StateStore> store = ctx.cluster.state_store(i);
    if (store == nullptr) continue;
    CheckpointStore cs(store);
    std::uint64_t best = 0;
    for (const auto& [pid, epoch] : cs.recoverable()) {
      if (pid == ctx.pid) best = std::max(best, epoch);
    }
    auto it = durable_best_.find(i);
    if (it != durable_best_.end() && !ctx.terminated && best < it->second) {
      out.push_back(Violation{
          "durable-epoch-monotone",
          "state store of slot " + std::to_string(i) +
              " best recoverable epoch went " + std::to_string(it->second) +
              " -> " + std::to_string(best),
          0, 0});
    }
    durable_best_[i] = best;
  }
}

// Durable no-loss + re-homing: at quiescence an unterminated program with
// a committed epoch persisted on some *live* site must still be hosted
// somewhere (the recovery election must have re-homed it), and every live
// site's view of the program's home must resolve to a live site — a
// takeover that landed on a dead "survivor" is a silent loss.
void InvariantChecker::check_program_home(ChaosContext& ctx,
                                          std::vector<Violation>& out) {
  bool hosted = false;
  std::size_t live_replicas = 0;
  for (std::size_t i = 0; i < ctx.cluster.size(); ++i) {
    if (!ctx.live(i)) continue;
    Site& site = ctx.cluster.site(i);
    if (!site.joined()) continue;
    const ProgramInfo* info = site.programs().find(ctx.pid);
    if (info != nullptr && !site.programs().is_terminated(ctx.pid)) {
      SiteId resolved = site.cluster().resolve_successor(info->home_site);
      const SiteInfo* home = site.cluster().find(resolved);
      if (home != nullptr && !home->alive) {
        out.push_back(Violation{
            "program-home-live",
            "site " + std::to_string(site.id()) + " sees program home " +
                std::to_string(info->home_site) + " resolving to dead site " +
                std::to_string(resolved),
            0, 0});
      } else {
        hosted = true;
      }
    }
    if (std::shared_ptr<StateStore> store = ctx.cluster.state_store(i)) {
      CheckpointStore cs(store);
      for (const auto& [pid, epoch] : cs.recoverable()) {
        if (pid == ctx.pid && epoch > 0) ++live_replicas;
      }
    }
  }
  if (!ctx.terminated && live_replicas > 0 && !hosted) {
    out.push_back(Violation{
        "durable-program-lost",
        "program not hosted by any live site despite " +
            std::to_string(live_replicas) + " persisted replica(s)",
        0, 0});
  }
}

}  // namespace sdvm::chaos
