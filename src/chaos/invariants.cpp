#include "chaos/invariants.hpp"

#include <algorithm>
#include <optional>
#include <sstream>

#include "runtime/checkpoint_store.hpp"
#include "runtime/shard_map.hpp"
#include "runtime/site.hpp"

namespace sdvm::chaos {

std::string Violation::to_line() const {
  std::ostringstream os;
  os << "[t=" << at << "ns";
  if (event_index >= 0) {
    os << " after #" << event_index;
  } else {
    os << " at quiescence";
  }
  os << "] " << invariant << ": " << detail;
  return os.str();
}

std::vector<Violation> InvariantChecker::check(ChaosContext& ctx,
                                               int event_index) {
  std::vector<Violation> found;
  check_exit_codes(ctx, found);
  check_epochs(ctx, found);
  check_progress(ctx, found);
  check_durable_stores(ctx, found);
  if (ctx.at_quiescence) {
    check_membership(ctx, found);
    check_directory_owners(ctx, found);
    check_termination(ctx, found);
    check_program_home(ctx, found);
    check_shard_leases(ctx, found);
  }
  for (Violation& v : found) {
    v.event_index = event_index;
    v.at = ctx.cluster.now();
  }
  return found;
}

// Paper §2.2/§6: crashes are absorbed by checkpoint recovery — the program
// still commits exactly one result, and every live site that learns of the
// termination must have learned the *same* exit code.
void InvariantChecker::check_exit_codes(ChaosContext& ctx,
                                        std::vector<Violation>& out) {
  std::optional<std::int64_t> seen;
  std::size_t seen_at = 0;
  for (std::size_t i = 0; i < ctx.cluster.size(); ++i) {
    if (!ctx.live(i)) continue;
    Site& site = ctx.cluster.site(i);
    if (!site.programs().is_terminated(ctx.pid)) continue;
    std::int64_t code = site.programs().exit_code(ctx.pid).value_or(0);
    if (!seen.has_value()) {
      seen = code;
      seen_at = i;
      ctx.terminated = true;
      ctx.exit_code = code;
    } else if (*seen != code) {
      out.push_back(Violation{
          "one-committed-result",
          "site index " + std::to_string(seen_at) + " committed exit code " +
              std::to_string(*seen) + " but site index " + std::to_string(i) +
              " committed " + std::to_string(code),
          0, 0});
    }
  }
}

// Checkpoint epochs only move forward on every site: a recovery restores
// *from* the latest committed epoch, it never un-commits one.
void InvariantChecker::check_epochs(ChaosContext& ctx,
                                    std::vector<Violation>& out) {
  for (std::size_t i = 0; i < ctx.cluster.size(); ++i) {
    if (!ctx.live(i)) continue;
    auto status = ctx.cluster.status(i);
    if (!status.is_ok()) continue;
    auto epoch = static_cast<std::uint64_t>(
        status.value().metrics.gauge_value("crash.committed_epoch"));
    auto it = last_epoch_.find(i);
    // A drop to zero is the program's snapshot being cleaned up at
    // termination; only a rollback to an *earlier committed* epoch is an
    // un-commit, which recovery must never do.
    if (it != last_epoch_.end() && epoch != 0 && epoch < it->second) {
      out.push_back(Violation{
          "epoch-monotone",
          "site index " + std::to_string(i) + " committed epoch went " +
              std::to_string(it->second) + " -> " + std::to_string(epoch),
          0, 0});
    }
    last_epoch_[i] = epoch;
  }
}

// Liveness bound: with queued executable frames somewhere and no partition
// or loss window in effect, cluster-wide execution must advance within
// kProgressBound of virtual time (help requests retry on a millisecond
// scale; checkpoint freezes abort within two seconds).
void InvariantChecker::check_progress(ChaosContext& ctx,
                                      std::vector<Violation>& out) {
  std::uint64_t executed = 0;
  std::uint64_t recoveries = 0;
  std::uint32_t queued = 0;
  for (std::size_t i = 0; i < ctx.cluster.size(); ++i) {
    if (!ctx.live(i)) continue;
    auto status = ctx.cluster.status(i);
    if (!status.is_ok()) continue;
    executed += status.value().load.executed_total;
    recoveries += status.value().metrics.counter("crash.recoveries");
    queued += status.value().load.queued_frames;
  }
  Nanos now = ctx.cluster.now();
  // `executed` sums only live sites: a kill or cold restart legitimately
  // drops it below the stored baseline, and comparing future progress
  // against the stale high-water mark would mask real execution — rebase.
  // A recovery fan-out advancing is likewise the system working (frozen
  // schedulers during back-to-back recovery rounds are not starvation);
  // recoveries are death-triggered, so a wedged cluster cannot use them
  // to dodge the check forever.
  if (!progress_initialized_ || executed > last_executed_total_ ||
      executed < last_executed_total_ || recoveries != last_recoveries_ ||
      ctx.terminated || ctx.faults_active || queued == 0) {
    // Progress, or a state where stalling is legitimate: reset the clock.
    progress_initialized_ = true;
    last_executed_total_ = executed;
    last_recoveries_ = recoveries;
    last_progress_at_ = now;
    return;
  }
  if (now - last_progress_at_ > kProgressBound) {
    out.push_back(Violation{
        "no-starved-frames",
        std::to_string(queued) + " frames queued but executed_total stuck at " +
            std::to_string(executed) + " for " +
            std::to_string(now - last_progress_at_) + "ns",
        0, 0});
    last_progress_at_ = now;  // re-arm instead of repeating every check
  }
}

// After heal + settle, any two sites that still consider *each other*
// alive must agree on the whole membership view (gossip convergence,
// paper §3.4). Pairs where either side has declared the other dead are
// skipped: a partition outliving the failure timeout legitimately ends in
// mutual death verdicts, and death is terminal per logical id.
void InvariantChecker::check_membership(ChaosContext& ctx,
                                        std::vector<Violation>& out) {
  struct View {
    std::size_t index;
    SiteId id;
    std::vector<SiteId> alive;
  };
  std::vector<View> views;
  for (std::size_t i = 0; i < ctx.cluster.size(); ++i) {
    if (!ctx.live(i)) continue;
    Site& site = ctx.cluster.site(i);
    if (!site.joined()) continue;
    views.push_back(View{i, site.id(), site.cluster().known_sites(true)});
  }
  // Group identical views first: a converged 1000-site cluster collapses
  // to one group and the check finishes in O(n·|view|) instead of the
  // pairwise O(n²·|view|) scan. Only cross-group pairs can disagree.
  std::map<std::vector<SiteId>, std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < views.size(); ++i) {
    groups[views[i].alive].push_back(i);
  }
  if (groups.size() <= 1) return;
  // known_sites walks a std::map, so each view is sorted by id.
  auto sees_alive = [](const View& v, SiteId other) {
    return std::binary_search(v.alive.begin(), v.alive.end(), other);
  };
  auto render = [](const std::vector<SiteId>& ids) {
    std::string s = "{";
    for (SiteId id : ids) s += std::to_string(id) + ",";
    s += "}";
    return s;
  };
  constexpr std::size_t kMaxReported = 5;  // a diverged big run repeats fast
  std::size_t reported = 0;
  for (auto ga = groups.begin(); ga != groups.end(); ++ga) {
    for (auto gb = std::next(ga); gb != groups.end(); ++gb) {
      for (std::size_t a : ga->second) {
        for (std::size_t b : gb->second) {
          if (!sees_alive(views[a], views[b].id) ||
              !sees_alive(views[b], views[a].id)) {
            continue;
          }
          out.push_back(Violation{
              "membership-convergence",
              "site " + std::to_string(views[a].id) + " sees " +
                  render(views[a].alive) + " but site " +
                  std::to_string(views[b].id) + " sees " +
                  render(views[b].alive),
              0, 0});
          if (++reported >= kMaxReported) return;
        }
      }
    }
  }
}

// No global address may be owned by a departed site: every directory
// entry's owner must resolve (through the sign-off/recovery successor
// chain) to a site the directory holder itself believes alive.
void InvariantChecker::check_directory_owners(ChaosContext& ctx,
                                              std::vector<Violation>& out) {
  for (std::size_t i = 0; i < ctx.cluster.size(); ++i) {
    if (!ctx.live(i)) continue;
    Site& site = ctx.cluster.site(i);
    if (!site.joined()) continue;
    for (const auto& [addr, owner] : site.memory().directory_snapshot()) {
      SiteId resolved = site.cluster().resolve_successor(owner);
      const SiteInfo* info = site.cluster().find(resolved);
      if (info != nullptr && !info->alive) {
        out.push_back(Violation{
            "frame-owner-live",
            "site " + std::to_string(site.id()) + " directory entry " +
                std::to_string(addr.value) + " owned by site " +
                std::to_string(owner) + " which resolves to dead site " +
                std::to_string(resolved),
            0, 0});
      }
    }
  }
}

// The headline claim (§2.2): the cluster keeps computing while machines
// sign on and off and crash. At quiescence the workload must have
// committed its result on some live site.
void InvariantChecker::check_termination(ChaosContext& ctx,
                                         std::vector<Violation>& out) {
  if (ctx.terminated) return;
  std::string detail = "program never terminated;";
  for (std::size_t i = 0; i < ctx.cluster.size(); ++i) {
    if (!ctx.live(i)) continue;
    auto status = ctx.cluster.status(i);
    if (!status.is_ok()) continue;
    if (status.value().load.queued_frames > 0 ||
        status.value().load.running > 0) {
      detail += " site index " + std::to_string(i) + " holds " +
                std::to_string(status.value().load.queued_frames) +
                " queued / " + std::to_string(status.value().load.running) +
                " running;";
    }
  }
  out.push_back(Violation{"program-terminates", detail, 0, 0});
}

// Durable no-un-persist: the best recoverable epoch in each state store
// never regresses while the program lives. CheckpointStore::persist
// verifies the written frame before garbage-collecting older generations,
// so a torn or bit-flipped write may fail to advance the store but can
// never take a previously committed epoch away. (Termination legitimately
// drops the artifacts.) Stores are keyed by SimCluster slot, which is
// stable across cold restarts — exactly the property under test.
void InvariantChecker::check_durable_stores(ChaosContext& ctx,
                                            std::vector<Violation>& out) {
  for (std::size_t i = 0; i < ctx.cluster.size(); ++i) {
    std::shared_ptr<StateStore> store = ctx.cluster.state_store(i);
    if (store == nullptr) continue;
    CheckpointStore cs(store);
    std::uint64_t best = 0;
    for (const auto& [pid, epoch] : cs.recoverable()) {
      if (pid == ctx.pid) best = std::max(best, epoch);
    }
    auto it = durable_best_.find(i);
    if (it != durable_best_.end() && !ctx.terminated && best < it->second) {
      out.push_back(Violation{
          "durable-epoch-monotone",
          "state store of slot " + std::to_string(i) +
              " best recoverable epoch went " + std::to_string(it->second) +
              " -> " + std::to_string(best),
          0, 0});
    }
    durable_best_[i] = best;
  }
}

// Durable no-loss + re-homing: at quiescence an unterminated program with
// a committed epoch persisted on some *live* site must still be hosted
// somewhere (the recovery election must have re-homed it), and every live
// site's view of the program's home must resolve to a live site — a
// takeover that landed on a dead "survivor" is a silent loss.
void InvariantChecker::check_program_home(ChaosContext& ctx,
                                          std::vector<Violation>& out) {
  bool hosted = false;
  std::size_t live_replicas = 0;
  for (std::size_t i = 0; i < ctx.cluster.size(); ++i) {
    if (!ctx.live(i)) continue;
    Site& site = ctx.cluster.site(i);
    if (!site.joined()) continue;
    const ProgramInfo* info = site.programs().find(ctx.pid);
    if (info != nullptr && !site.programs().is_terminated(ctx.pid)) {
      SiteId resolved = site.cluster().resolve_successor(info->home_site);
      const SiteInfo* home = site.cluster().find(resolved);
      if (home != nullptr && !home->alive) {
        out.push_back(Violation{
            "program-home-live",
            "site " + std::to_string(site.id()) + " sees program home " +
                std::to_string(info->home_site) + " resolving to dead site " +
                std::to_string(resolved),
            0, 0});
      } else {
        hosted = true;
      }
    }
    if (std::shared_ptr<StateStore> store = ctx.cluster.state_store(i)) {
      CheckpointStore cs(store);
      for (const auto& [pid, epoch] : cs.recoverable()) {
        if (pid == ctx.pid && epoch > 0) ++live_replicas;
      }
    }
  }
  if (!ctx.terminated && live_replicas > 0 && !hosted) {
    out.push_back(Violation{
        "durable-program-lost",
        "program not hosted by any live site despite " +
            std::to_string(live_replicas) + " persisted replica(s)",
        0, 0});
  }
}

// Sharded-ownership invariants (three in one pass over the live sites):
//   * shard-single-holder — at quiescence exactly zero or one live site
//     answers authoritatively for each shard; two holders is the
//     overlapping-epoch-authority split-brain the lease protocol exists
//     to rule out.
//   * shard-map-convergence — every live joined site's lease table names
//     the same (holder, epoch) per shard, and that holder is live: the
//     rendezvous remigration must have settled after churn.
//   * shard-entry-authoritative — no orphans across handoff: a site only
//     retains directory entries for shards it holds, and every physically
//     resident object is registered in its shard holder's directory.
void InvariantChecker::check_shard_leases(ChaosContext& ctx,
                                          std::vector<Violation>& out) {
  struct LiveSite {
    std::size_t index;
    Site* site;
  };
  std::vector<LiveSite> live;
  std::vector<SiteId> live_ids;
  for (std::size_t i = 0; i < ctx.cluster.size(); ++i) {
    if (!ctx.live(i)) continue;
    Site& site = ctx.cluster.site(i);
    if (!site.joined()) continue;
    live.push_back(LiveSite{i, &site});
    live_ids.push_back(site.id());
  }
  if (live.empty()) return;
  auto is_live_id = [&](SiteId id) {
    return std::find(live_ids.begin(), live_ids.end(), id) != live_ids.end();
  };

  for (std::uint32_t s = 0; s < kNumShards; ++s) {
    // Single authoritative holder.
    std::vector<std::pair<SiteId, std::uint64_t>> claimants;
    for (const LiveSite& ls : live) {
      if (ls.site->memory().shard_authoritative(s)) {
        claimants.emplace_back(ls.site->id(),
                               ls.site->memory().shard_leases()[s].epoch);
      }
    }
    if (claimants.size() > 1) {
      std::string detail = "shard " + std::to_string(s) +
                           " has multiple authoritative holders:";
      for (const auto& [id, epoch] : claimants) {
        detail += " site " + std::to_string(id) + " at epoch " +
                  std::to_string(epoch) + ";";
      }
      out.push_back(Violation{"shard-single-holder", detail, 0, 0});
    }

    // Lease-view convergence across live sites.
    ShardLease first = live.front().site->memory().shard_leases()[s];
    for (std::size_t v = 1; v < live.size(); ++v) {
      ShardLease l = live[v].site->memory().shard_leases()[s];
      if (l.holder != first.holder || l.epoch != first.epoch) {
        out.push_back(Violation{
            "shard-map-convergence",
            "shard " + std::to_string(s) + ": site " +
                std::to_string(live.front().site->id()) + " sees holder " +
                std::to_string(first.holder) + "@" +
                std::to_string(first.epoch) + " but site " +
                std::to_string(live[v].site->id()) + " sees holder " +
                std::to_string(l.holder) + "@" + std::to_string(l.epoch),
            0, 0});
        break;  // one disagreement per shard is enough signal
      }
    }
    if (first.holder != kInvalidSite && !is_live_id(first.holder)) {
      out.push_back(Violation{
          "shard-map-convergence",
          "shard " + std::to_string(s) + " lease holder " +
              std::to_string(first.holder) + " is not a live site",
          0, 0});
    }
  }

  // Entry/object placement.
  for (const LiveSite& ls : live) {
    AttractionMemory& mem = ls.site->memory();
    for (const auto& [addr, owner] : mem.directory_snapshot()) {
      std::uint32_t s = shard_of(addr);
      if (mem.shard_leases()[s].holder != ls.site->id()) {
        out.push_back(Violation{
            "shard-entry-authoritative",
            "site " + std::to_string(ls.site->id()) +
                " retains directory entry " + std::to_string(addr.value) +
                " of shard " + std::to_string(s) +
                " it no longer holds (holder " +
                std::to_string(mem.shard_leases()[s].holder) + ")",
            0, 0});
      }
    }
    for (GlobalAddress addr : mem.owned_addresses()) {
      std::uint32_t s = shard_of(addr);
      SiteId holder = mem.shard_leases()[s].holder;
      const LiveSite* holder_site = nullptr;
      for (const LiveSite& h : live) {
        if (h.site->id() == holder) {
          holder_site = &h;
          break;
        }
      }
      if (holder_site == nullptr) continue;  // convergence check reports it
      SiteId registered =
          holder_site->site->memory().directory_owner(addr);
      if (registered == kInvalidSite) {
        out.push_back(Violation{
            "shard-entry-authoritative",
            "object " + std::to_string(addr.value) + " resident on site " +
                std::to_string(ls.site->id()) +
                " is orphaned: shard " + std::to_string(s) + " holder " +
                std::to_string(holder) + " has no directory entry for it",
            0, 0});
      }
    }
  }
}

}  // namespace sdvm::chaos
