// ChaosHarness: runs one ChaosSchedule against a fresh SimCluster and a
// seed-derived workload, applying fault events at their virtual times and
// running the invariant suite after every event, periodically while the
// program drains, and once more at quiescence. The run is a pure function
// of the schedule (plus harness options): the same schedule produces a
// byte-identical trace and verdict, which is what the shrinker and the
// replay CLI rely on.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "chaos/invariants.hpp"
#include "chaos/schedule.hpp"

namespace sdvm::chaos {

struct HarnessOptions {
  /// Virtual-time budget for the workload after the last event applies.
  Nanos deadline = 120 * kNanosPerSecond;
  /// Post-run settle window before the quiescence invariant pass, long
  /// enough for the failure detector and gossip to converge.
  Nanos settle = 3 * kNanosPerSecond;
  /// Permit kill/sign-off of site 0 (the workload home). Matches
  /// GeneratorOptions::allow_home_faults; the harness enforces it again at
  /// apply time so shrunk event subsets stay survivable-by-design.
  bool allow_home_faults = false;
  /// Give every site a durable state store that survives kRestart events,
  /// and replicate committed checkpoints to every live site
  /// (replication_factor = 0). Enables the durable invariants
  /// (durable-epoch-monotone, durable-program-lost).
  bool durable_state = false;
  /// Disk-fault injection for the durable stores. The seed is mixed with
  /// the schedule seed so every run stays deterministic and replayable.
  FaultyStateStore::Options disk_faults;
  /// Re-target every kill/sign-off at the live site holding the most
  /// directory-shard leases at apply time (`sdvm-chaos
  /// --kill-lease-holders`). Faults land on shard authority instead of
  /// random bystanders, so every event exercises the handoff / takeover /
  /// rebuild path. Deterministic: the holder census is a pure function of
  /// the virtual-time state the schedule produced.
  bool prefer_lease_holder_kills = false;
};

struct RunReport {
  std::uint64_t seed = 0;
  std::string workload;
  bool passed = false;
  bool terminated = false;
  std::int64_t exit_code = 0;
  /// Disk faults the FaultyStateStore layer actually injected (durable
  /// runs only) — distinguishes "survived faults" from "no faults fired".
  std::uint64_t disk_faults_injected = 0;
  /// Durable-store postmortem (durable runs only): one line per stored
  /// artifact across all slots, with size and CRC validity. Written to a
  /// file by `sdvm-chaos --state-dump` when a run fails.
  std::vector<std::string> state_dump;
  std::vector<Violation> violations;
  /// Virtual-time-stamped event/verdict lines; deterministic per schedule.
  std::vector<std::string> trace;
};

/// Extension point: extra invariants run alongside the built-in suite.
/// Returning a string reports a violation with that detail.
using InvariantFn = std::function<std::optional<std::string>(ChaosContext&)>;

class ChaosHarness {
 public:
  explicit ChaosHarness(HarnessOptions options = {}) : options_(options) {}

  /// Registers a custom invariant. Quiescence-only checks run once at the
  /// end; others also run after every event and drain slice.
  void add_invariant(std::string name, InvariantFn fn,
                     bool quiescence_only = false);

  /// Runs the schedule to completion and returns the verdict. Stateless
  /// across calls: every run builds a fresh cluster and checker.
  [[nodiscard]] RunReport run(const ChaosSchedule& schedule);

 private:
  struct CustomInvariant {
    std::string name;
    InvariantFn fn;
    bool quiescence_only;
  };

  HarnessOptions options_;
  std::vector<CustomInvariant> custom_;
};

}  // namespace sdvm::chaos
