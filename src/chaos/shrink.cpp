#include "chaos/shrink.hpp"

#include <algorithm>
#include <sstream>

namespace sdvm::chaos {

namespace {

/// Oracle: does this schedule still violate the target invariant?
bool still_fails(const ChaosSchedule& schedule, const std::string& target,
                 const HarnessOptions& options, RunReport* out, int* runs) {
  ChaosHarness harness(options);
  RunReport report = harness.run(schedule);
  ++*runs;
  for (const Violation& v : report.violations) {
    if (v.invariant == target) {
      *out = std::move(report);
      return true;
    }
  }
  return false;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += '?';
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

ShrinkResult shrink_schedule(const ChaosSchedule& failing,
                             const std::string& target_invariant,
                             HarnessOptions options) {
  ShrinkResult result;
  result.minimal = failing;

  std::vector<ChaosEvent> events = failing.events;
  auto with_events = [&failing](std::vector<ChaosEvent> evs) {
    ChaosSchedule s = failing;
    s.events = std::move(evs);
    return s;
  };
  auto fails = [&](const std::vector<ChaosEvent>& evs) {
    return still_fails(with_events(evs), target_invariant, options,
                       &result.report, &result.runs);
  };

  // The workload itself may be broken independent of any fault.
  if (fails({})) {
    result.minimal.events.clear();
    return result;
  }

  // Classic ddmin: try removing chunks at increasing granularity until the
  // event list is 1-minimal w.r.t. the oracle.
  std::size_t n = 2;
  while (events.size() >= 2) {
    std::size_t chunk = (events.size() + n - 1) / n;
    bool reduced = false;

    // Reduce to a single chunk (big jumps first).
    for (std::size_t start = 0; start < events.size() && !reduced;
         start += chunk) {
      std::size_t end = std::min(start + chunk, events.size());
      std::vector<ChaosEvent> subset(events.begin() + start,
                                     events.begin() + end);
      if (subset.size() < events.size() && fails(subset)) {
        events = std::move(subset);
        n = 2;
        reduced = true;
      }
    }
    if (reduced) continue;

    // Reduce to a complement (drop one chunk).
    for (std::size_t start = 0; start < events.size() && !reduced;
         start += chunk) {
      std::size_t end = std::min(start + chunk, events.size());
      std::vector<ChaosEvent> complement(events.begin(), events.begin() + start);
      complement.insert(complement.end(), events.begin() + end, events.end());
      if (complement.size() < events.size() && fails(complement)) {
        events = std::move(complement);
        n = std::max<std::size_t>(n - 1, 2);
        reduced = true;
      }
    }
    if (reduced) continue;

    if (n >= events.size()) break;  // single-event granularity exhausted
    n = std::min(n * 2, events.size());
  }

  result.minimal.events = events;
  // Re-run the minimal schedule so the report matches it exactly (the last
  // oracle call may have been a failed reduction attempt).
  if (!still_fails(result.minimal, target_invariant, options, &result.report,
                   &result.runs)) {
    // Cannot happen for a deterministic harness; fall back to the input.
    result.minimal = failing;
    (void)still_fails(result.minimal, target_invariant, options,
                      &result.report, &result.runs);
  }
  return result;
}

std::string make_artifact_json(const ChaosSchedule& schedule,
                               const RunReport& report) {
  std::string base = schedule.to_json();
  // Splice diagnostics into the schedule object: from_json skips unknown
  // keys, so the artifact replays directly.
  while (!base.empty() && (base.back() == '\n' || base.back() == '}')) {
    base.pop_back();
  }
  std::ostringstream os;
  os << base << ",\n  \"workload\": \"" << json_escape(report.workload)
     << "\",\n  \"violations\": [";
  for (std::size_t i = 0; i < report.violations.size(); ++i) {
    const Violation& v = report.violations[i];
    os << (i == 0 ? "\n" : ",\n") << "    {\"invariant\": \""
       << json_escape(v.invariant) << "\", \"detail\": \""
       << json_escape(v.detail) << "\", \"event_index\": " << v.event_index
       << ", \"at\": " << v.at << "}";
  }
  os << (report.violations.empty() ? "]" : "\n  ]") << ",\n  \"trace\": [";
  for (std::size_t i = 0; i < report.trace.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n") << "    \"" << json_escape(report.trace[i])
       << "\"";
  }
  os << (report.trace.empty() ? "]" : "\n  ]") << "\n}\n";
  return os.str();
}

}  // namespace sdvm::chaos
