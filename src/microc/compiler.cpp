#include "microc/compiler.hpp"

#include "microc/ir.hpp"
#include "microc/parser.hpp"
#include "microc/typecheck.hpp"

namespace sdvm::microc {

Result<Program> compile(std::string_view source, std::string name,
                        const CompileOptions& options,
                        CompileError* error_out,
                        CompileArtifacts* artifacts) {
  try {
    Unit unit = parse(source);
    TypeckResult types = typecheck(unit);
    if (artifacts != nullptr) artifacts->ast = dump_ast(unit);
    IrFunction f = lower(unit, types);
    if (options.optimize) {
      OptStats stats = optimize(f);
      if (artifacts != nullptr) artifacts->opt_stats = stats.to_string();
    }
    if (artifacts != nullptr) artifacts->ir = to_string(f);
    return emit(f, std::move(name));
  } catch (const LexError& e) {
    if (error_out != nullptr) *error_out = e.error;
    return Status::error(ErrorCode::kInvalidArgument, e.error.to_string());
  } catch (const ParseError& e) {
    if (error_out != nullptr) *error_out = e.error;
    return Status::error(ErrorCode::kInvalidArgument, e.error.to_string());
  } catch (const TypeError& e) {
    if (error_out != nullptr) *error_out = e.error;
    return Status::error(ErrorCode::kInvalidArgument, e.error.to_string());
  }
}

Result<Program> compile(std::string_view source, std::string name) {
  return compile(source, std::move(name), CompileOptions{});
}

}  // namespace sdvm::microc
