#include "microc/compiler.hpp"

#include <unordered_map>

#include "microc/parser.hpp"

namespace sdvm::microc {

namespace {

class SemanticError : public std::exception {
 public:
  explicit SemanticError(CompileError e) : error(std::move(e)) {}
  const char* what() const noexcept override { return error.message.c_str(); }
  CompileError error;
};

class CodeGen {
 public:
  Program generate(const Unit& unit, std::string name) {
    prog_.name = std::move(name);
    for (const auto& s : unit.statements) gen_stmt(*s);
    emit(Op::kReturn);  // implicit return at end of body
    prog_.local_count = static_cast<std::uint16_t>(locals_.size());
    return std::move(prog_);
  }

 private:
  [[noreturn]] void fail(int line, std::string msg) {
    throw SemanticError(CompileError{std::move(msg), line, 0});
  }

  void emit(Op op) { prog_.code.push_back(std::byte{static_cast<std::uint8_t>(op)}); }
  void emit_u8(std::uint8_t v) { prog_.code.push_back(std::byte{v}); }
  void emit_u16(std::uint16_t v) {
    emit_u8(static_cast<std::uint8_t>(v));
    emit_u8(static_cast<std::uint8_t>(v >> 8));
  }
  void emit_u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) emit_u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void emit_i64(std::int64_t v) {
    auto u = static_cast<std::uint64_t>(v);
    for (int i = 0; i < 8; ++i) emit_u8(static_cast<std::uint8_t>(u >> (8 * i)));
  }

  std::size_t here() const { return prog_.code.size(); }

  /// Emits a jump with a placeholder offset; returns patch position.
  std::size_t emit_jump(Op op) {
    emit(op);
    std::size_t pos = here();
    emit_u32(0);
    return pos;
  }

  /// Patches the i32 at `pos` to jump to the current position (relative to
  /// the instruction end, i.e. pos + 4).
  void patch_jump(std::size_t pos) {
    auto rel = static_cast<std::int32_t>(here() - (pos + 4));
    auto u = static_cast<std::uint32_t>(rel);
    for (int i = 0; i < 4; ++i) {
      prog_.code[pos + static_cast<std::size_t>(i)] =
          std::byte{static_cast<std::uint8_t>(u >> (8 * i))};
    }
  }

  void emit_jump_back(Op op, std::size_t target) {
    emit(op);
    auto rel = static_cast<std::int32_t>(target - (here() + 4));
    emit_u32(static_cast<std::uint32_t>(rel));
  }

  /// Patches the i32 at `pos` to jump to `target` (any direction).
  void patch_jump_to(std::size_t pos, std::size_t target) {
    auto rel = static_cast<std::int32_t>(static_cast<std::int64_t>(target) -
                                         static_cast<std::int64_t>(pos + 4));
    auto u = static_cast<std::uint32_t>(rel);
    for (int i = 0; i < 4; ++i) {
      prog_.code[pos + static_cast<std::size_t>(i)] =
          std::byte{static_cast<std::uint8_t>(u >> (8 * i))};
    }
  }

  std::uint16_t local_slot(const std::string& name, int line,
                           bool must_exist) {
    auto it = locals_.find(name);
    if (it != locals_.end()) return it->second;
    if (must_exist) fail(line, "use of undeclared variable '" + name + "'");
    auto slot = static_cast<std::uint16_t>(locals_.size());
    if (locals_.size() >= 0xFFFF) fail(line, "too many locals");
    locals_.emplace(name, slot);
    return slot;
  }

  std::uint32_t intern_string(const std::string& s) {
    for (std::size_t i = 0; i < prog_.string_pool.size(); ++i) {
      if (prog_.string_pool[i] == s) return static_cast<std::uint32_t>(i);
    }
    prog_.string_pool.push_back(s);
    return static_cast<std::uint32_t>(prog_.string_pool.size() - 1);
  }

  void gen_stmt(const Stmt& s) {
    switch (s.kind) {
      case StmtKind::kVarDecl: {
        if (locals_.contains(s.name)) {
          fail(s.line, "redeclaration of '" + s.name + "'");
        }
        gen_expr(*s.expr, /*want_value=*/true);
        emit(Op::kStoreLocal);
        emit_u16(local_slot(s.name, s.line, /*must_exist=*/false));
        break;
      }
      case StmtKind::kAssign: {
        gen_expr(*s.expr, true);
        emit(Op::kStoreLocal);
        emit_u16(local_slot(s.name, s.line, /*must_exist=*/true));
        break;
      }
      case StmtKind::kIf: {
        gen_expr(*s.expr, true);
        std::size_t to_else = emit_jump(Op::kJz);
        for (const auto& b : s.body) gen_stmt(*b);
        if (s.else_body.empty()) {
          patch_jump(to_else);
        } else {
          std::size_t to_end = emit_jump(Op::kJmp);
          patch_jump(to_else);
          for (const auto& b : s.else_body) gen_stmt(*b);
          patch_jump(to_end);
        }
        break;
      }
      case StmtKind::kWhile: {
        std::size_t top = here();
        gen_expr(*s.expr, true);
        std::size_t to_exit = emit_jump(Op::kJz);
        loops_.push_back(LoopCtx{top, {}});
        for (const auto& b : s.body) gen_stmt(*b);
        emit_jump_back(Op::kJmp, top);
        patch_jump(to_exit);
        for (std::size_t pos : loops_.back().break_patches) patch_jump(pos);
        loops_.pop_back();
        break;
      }
      case StmtKind::kFor: {
        if (s.init) gen_stmt(*s.init);
        std::size_t top = here();
        std::size_t to_exit = 0;
        bool has_cond = s.expr != nullptr;
        if (has_cond) {
          gen_expr(*s.expr, true);
          to_exit = emit_jump(Op::kJz);
        }
        // `continue` must run the step, so the loop context records a
        // pending target that is patched once the step's position is known.
        loops_.push_back(LoopCtx{kPendingTarget, {}});
        for (const auto& b : s.body) gen_stmt(*b);
        std::size_t step_at = here();
        if (s.step) gen_stmt(*s.step);
        emit_jump_back(Op::kJmp, top);
        if (has_cond) patch_jump(to_exit);
        for (std::size_t pos : loops_.back().break_patches) patch_jump(pos);
        for (std::size_t pos : loops_.back().continue_patches) {
          patch_jump_to(pos, step_at);
        }
        loops_.pop_back();
        break;
      }
      case StmtKind::kBreak: {
        if (loops_.empty()) fail(s.line, "'break' outside a loop");
        loops_.back().break_patches.push_back(emit_jump(Op::kJmp));
        break;
      }
      case StmtKind::kContinue: {
        if (loops_.empty()) fail(s.line, "'continue' outside a loop");
        LoopCtx& loop = loops_.back();
        if (loop.continue_target == kPendingTarget) {
          loop.continue_patches.push_back(emit_jump(Op::kJmp));
        } else {
          emit_jump_back(Op::kJmp, loop.continue_target);
        }
        break;
      }
      case StmtKind::kReturn:
        emit(Op::kReturn);
        break;
      case StmtKind::kExpr: {
        bool pushed = gen_expr(*s.expr, /*want_value=*/false);
        if (pushed) emit(Op::kPop);
        break;
      }
    }
  }

  /// Generates code for an expression. Returns whether a value is left on
  /// the stack (intrinsics without results leave none).
  bool gen_expr(const Expr& e, bool want_value) {
    switch (e.kind) {
      case ExprKind::kIntLiteral:
        emit(Op::kPushInt);
        emit_i64(e.int_value);
        return true;
      case ExprKind::kStringLiteral:
        fail(e.line, "string literal only allowed as intrinsic argument");
      case ExprKind::kVariable: {
        emit(Op::kLoadLocal);
        emit_u16(local_slot(e.name, e.line, /*must_exist=*/true));
        return true;
      }
      case ExprKind::kUnary: {
        gen_expr(*e.children[0], true);
        switch (e.op) {
          case Tok::kMinus: emit(Op::kNeg); break;
          case Tok::kBang: emit(Op::kLogicalNot); break;
          case Tok::kTilde: emit(Op::kBitNot); break;
          default: fail(e.line, "bad unary operator");
        }
        return true;
      }
      case ExprKind::kBinary:
        return gen_binary(e);
      case ExprKind::kCall:
        return gen_call(e, want_value);
    }
    fail(e.line, "unreachable expression kind");
  }

  bool gen_binary(const Expr& e) {
    // Short-circuit logical operators.
    if (e.op == Tok::kAmpAmp || e.op == Tok::kPipePipe) {
      gen_expr(*e.children[0], true);
      // Normalize to 0/1 so the result is boolean regardless of branch.
      emit(Op::kLogicalNot);
      emit(Op::kLogicalNot);
      emit(Op::kDup);
      std::size_t skip =
          emit_jump(e.op == Tok::kAmpAmp ? Op::kJz : Op::kJnz);
      emit(Op::kPop);
      gen_expr(*e.children[1], true);
      emit(Op::kLogicalNot);
      emit(Op::kLogicalNot);
      patch_jump(skip);
      return true;
    }

    gen_expr(*e.children[0], true);
    gen_expr(*e.children[1], true);
    switch (e.op) {
      case Tok::kPlus: emit(Op::kAdd); break;
      case Tok::kMinus: emit(Op::kSub); break;
      case Tok::kStar: emit(Op::kMul); break;
      case Tok::kSlash: emit(Op::kDiv); break;
      case Tok::kPercent: emit(Op::kMod); break;
      case Tok::kEq: emit(Op::kEq); break;
      case Tok::kNe: emit(Op::kNe); break;
      case Tok::kLt: emit(Op::kLt); break;
      case Tok::kLe: emit(Op::kLe); break;
      case Tok::kGt: emit(Op::kGt); break;
      case Tok::kGe: emit(Op::kGe); break;
      case Tok::kAmp: emit(Op::kBitAnd); break;
      case Tok::kPipe: emit(Op::kBitOr); break;
      case Tok::kCaret: emit(Op::kBitXor); break;
      case Tok::kShl: emit(Op::kShl); break;
      case Tok::kShr: emit(Op::kShr); break;
      default: fail(e.line, "bad binary operator");
    }
    return true;
  }

  bool gen_call(const Expr& e, bool want_value) {
    const IntrinsicInfo* info = find_intrinsic(e.name);
    if (info == nullptr) {
      fail(e.line, "unknown function '" + e.name +
                       "' (MicroC has intrinsics only)");
    }
    if (static_cast<int>(e.children.size()) != info->arity) {
      fail(e.line, "'" + e.name + "' expects " +
                       std::to_string(info->arity) + " argument(s), got " +
                       std::to_string(e.children.size()));
    }
    for (const auto& arg : e.children) {
      if (arg->kind == ExprKind::kStringLiteral) {
        emit(Op::kPushStr);
        emit_u32(intern_string(arg->name));
      } else {
        gen_expr(*arg, true);
      }
    }
    emit(Op::kIntrinsic);
    emit_u8(static_cast<std::uint8_t>(info->id));
    emit_u8(static_cast<std::uint8_t>(info->arity));
    if (!info->returns_value && want_value) {
      fail(e.line, "'" + e.name + "' returns no value");
    }
    return info->returns_value;
  }

  /// Enclosing-loop bookkeeping for break/continue. `continue_target` is
  /// the loop top for while-loops; for-loops resolve it late (the step
  /// block's position), marked by kPendingTarget.
  static constexpr std::size_t kPendingTarget = static_cast<std::size_t>(-1);
  struct LoopCtx {
    std::size_t continue_target;
    std::vector<std::size_t> break_patches;
    std::vector<std::size_t> continue_patches;
  };

  Program prog_;
  std::unordered_map<std::string, std::uint16_t> locals_;
  std::vector<LoopCtx> loops_;
};

}  // namespace

Result<Program> compile(std::string_view source, std::string name) {
  try {
    Unit unit = parse(source);
    return CodeGen{}.generate(unit, std::move(name));
  } catch (const LexError& e) {
    return Status::error(ErrorCode::kInvalidArgument, e.error.to_string());
  } catch (const ParseError& e) {
    return Status::error(ErrorCode::kInvalidArgument, e.error.to_string());
  } catch (const SemanticError& e) {
    return Status::error(ErrorCode::kInvalidArgument, e.error.to_string());
  }
}

}  // namespace sdvm::microc
