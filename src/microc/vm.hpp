// Stack-machine interpreter for compiled MicroC. The processing manager
// executes bytecode microthreads through this VM; SDVM operations (spawn,
// send, memory access, I/O) are delegated to an IntrinsicHandler the
// runtime implements. The VM counts executed wire instructions, which
// doubles as the virtual-cycle cost model in sim mode (superinstruction
// fusion does not change the count — see DInst::cost).
//
// Execution runs over the verified pre-decoded form (decode.hpp): the
// decoder proves all slots/indices/jumps/stack depths safe once, so the
// hot loop does no per-step validation. Two dispatch strategies share one
// loop body (vm_loop.inc):
//
//   kDirect  computed-goto direct threading (GCC/Clang): each instruction
//            ends by jumping straight to the next handler, giving the
//            branch predictor one indirect-branch site per opcode instead
//            of a single shared dispatch branch;
//   kSwitch  portable dense switch over the same decoded instructions;
//   kLegacy  the original byte-walking checked interpreter, kept verbatim
//            as the pre-refactor baseline for overhead benchmarks.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "microc/bytecode.hpp"
#include "microc/decode.hpp"

namespace sdvm::microc {

/// Bridge from MicroC intrinsics to the SDVM runtime. Values are int64;
/// global addresses travel as their 64-bit representation.
class IntrinsicHandler {
 public:
  virtual ~IntrinsicHandler() = default;

  virtual std::int64_t param(std::int64_t index) = 0;
  virtual std::int64_t num_params() = 0;
  virtual std::int64_t spawn(const std::string& thread_name,
                             std::int64_t nparams) = 0;
  /// spawn with a scheduling-hint priority; default forwards to spawn.
  virtual std::int64_t spawn_prio(const std::string& thread_name,
                                  std::int64_t nparams,
                                  std::int64_t priority) {
    (void)priority;
    return spawn(thread_name, nparams);
  }
  virtual void send(std::int64_t frame_addr, std::int64_t slot,
                    std::int64_t value) = 0;
  virtual std::int64_t alloc(std::int64_t nwords) = 0;
  virtual std::int64_t load(std::int64_t addr, std::int64_t index) = 0;
  virtual void store(std::int64_t addr, std::int64_t index,
                     std::int64_t value) = 0;
  virtual void out(std::int64_t value) = 0;
  virtual void out_str(const std::string& text) = 0;
  virtual void charge(std::int64_t cycles) = 0;
  virtual std::int64_t self_site() = 0;
  virtual std::int64_t arg(std::int64_t index) = 0;
  virtual std::int64_t num_args() = 0;
  virtual void exit_program(std::int64_t code) = 0;
};

/// Intrinsic handlers may throw this to abort the running microthread
/// (e.g. a failed remote memory fetch); the VM converts it into an error
/// VmResult instead of unwinding through the interpreter loop.
class IntrinsicError : public std::runtime_error {
 public:
  explicit IntrinsicError(const std::string& what)
      : std::runtime_error(what) {}
};

struct VmResult {
  Status status;
  /// Wire instructions executed — the microthread's intrinsic compute cost.
  std::uint64_t cycles = 0;
};

enum class DispatchMode : std::uint8_t { kDirect, kSwitch, kLegacy };

class Vm {
 public:
  /// Upper bound on executed instructions; microthreads are "short code
  /// fragments", so a runaway loop is a program bug we trap.
  static constexpr std::uint64_t kDefaultStepLimit = 500'000'000;

  /// Decodes (verifying) then runs `program`. Invalid bytecode yields an
  /// error result, never UB. Convenience path for tests and tools; the
  /// runtime caches the decoded form in its Executable instead.
  [[nodiscard]] static VmResult run(const Program& program,
                                    IntrinsicHandler& handler,
                                    std::uint64_t step_limit =
                                        kDefaultStepLimit);

  /// Runs a pre-decoded program. `program` supplies the string pool and
  /// name; `decoded` must have been produced from it.
  [[nodiscard]] static VmResult run(const DecodedProgram& decoded,
                                    const Program& program,
                                    IntrinsicHandler& handler,
                                    std::uint64_t step_limit =
                                        kDefaultStepLimit,
                                    DispatchMode mode = DispatchMode::kDirect);

  /// The original checked byte-walking interpreter (the pre-refactor VM),
  /// kept as the ablation baseline for bench/overhead_sequential.
  [[nodiscard]] static VmResult run_legacy(const Program& program,
                                           IntrinsicHandler& handler,
                                           std::uint64_t step_limit =
                                               kDefaultStepLimit);

  /// True when kDirect uses real computed-goto threading on this build
  /// (otherwise it falls back to the switch loop).
  [[nodiscard]] static bool has_computed_goto();
};

}  // namespace sdvm::microc
