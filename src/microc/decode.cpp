#include "microc/decode.hpp"

#include <algorithm>
#include <unordered_map>

namespace sdvm::microc {

namespace {

class BadBytecode : public std::exception {
 public:
  explicit BadBytecode(std::string msg) : msg_(std::move(msg)) {}
  const char* what() const noexcept override { return msg_.c_str(); }

 private:
  std::string msg_;
};

[[noreturn]] void bad(std::string msg) { throw BadBytecode(std::move(msg)); }

bool is_cmp(DOp op) {
  return op == DOp::kEq || op == DOp::kNe || op == DOp::kLt ||
         op == DOp::kLe || op == DOp::kGt || op == DOp::kGe;
}

bool is_jump(DOp op) {
  return op == DOp::kJmp || op == DOp::kJz || op == DOp::kJnz ||
         (op >= DOp::kEqJz && op <= DOp::kGeJz);
}

/// Stack effect of a (pre-fusion) decoded op: operands required and net
/// depth change.
struct Effect {
  int need;
  int delta;
};

Effect effect_of(const DInst& inst) {
  switch (inst.op) {
    case DOp::kConst:
    case DOp::kConstStr:
    case DOp::kLoad:
      return {0, 1};
    case DOp::kDup:
      return {1, 1};
    case DOp::kStore:
    case DOp::kPop:
    case DOp::kJz:
    case DOp::kJnz:
      return {1, -1};
    case DOp::kNeg:
    case DOp::kBitNot:
    case DOp::kLogicalNot:
      return {1, 0};
    case DOp::kJmp:
    case DOp::kRet:
      return {0, 0};
    case DOp::kAdd: case DOp::kSub: case DOp::kMul: case DOp::kDiv:
    case DOp::kMod:
    case DOp::kEq: case DOp::kNe: case DOp::kLt: case DOp::kLe:
    case DOp::kGt: case DOp::kGe:
    case DOp::kBitAnd: case DOp::kBitOr: case DOp::kBitXor:
    case DOp::kShl: case DOp::kShr:
      return {2, -1};
    default: {
      // Per-intrinsic ops (fusion runs after verification).
      auto id = static_cast<Intrinsic>(static_cast<int>(inst.op) -
                                       static_cast<int>(DOp::kParam));
      const IntrinsicInfo& info = intrinsic_info(id);
      return {info.arity, (info.returns_value ? 1 : 0) - info.arity};
    }
  }
}

class Decoder {
 public:
  explicit Decoder(const Program& p) : p_(p) {}

  DecodedProgram run(bool fuse) {
    scan();
    resolve_jumps();
    DecodedProgram out;
    out.max_stack = verify_stack();
    out.insts = fuse ? fused() : std::move(raw_);
    return out;
  }

 private:
  std::uint8_t u8() {
    if (pc_ >= p_.code.size()) bad("truncated instruction");
    return static_cast<std::uint8_t>(p_.code[pc_++]);
  }
  std::uint16_t u16() {
    std::uint16_t lo = u8();
    return static_cast<std::uint16_t>(lo | (std::uint16_t{u8()} << 8));
  }
  std::uint32_t u32() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t{u8()} << (8 * i);
    return v;
  }
  std::int64_t i64() {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t{u8()} << (8 * i);
    return static_cast<std::int64_t>(v);
  }

  std::uint16_t slot() {
    std::uint16_t s = u16();
    if (s >= p_.local_count) bad("local slot out of range");
    return s;
  }

  /// Pass 1: linear scan. Validates opcodes and operands, records the
  /// byte offset of every instruction.
  void scan() {
    while (pc_ < p_.code.size()) {
      std::size_t at = pc_;
      index_at_[at] = static_cast<std::uint32_t>(raw_.size());
      Op op = static_cast<Op>(u8());
      DInst inst{DOp::kRet, 1, 0, 0, 0};
      switch (op) {
        case Op::kPushInt:
          inst.op = DOp::kConst;
          inst.imm = i64();
          break;
        case Op::kPushStr:
          inst.op = DOp::kConstStr;
          inst.b = u32();
          if (inst.b >= p_.string_pool.size()) {
            bad("string pool index out of range");
          }
          break;
        case Op::kLoadLocal:
          inst.op = DOp::kLoad;
          inst.a = slot();
          break;
        case Op::kStoreLocal:
          inst.op = DOp::kStore;
          inst.a = slot();
          break;
        case Op::kJmp:
        case Op::kJz:
        case Op::kJnz: {
          inst.op = op == Op::kJmp   ? DOp::kJmp
                    : op == Op::kJz ? DOp::kJz
                                    : DOp::kJnz;
          auto rel = static_cast<std::int32_t>(u32());
          auto target = static_cast<std::int64_t>(pc_) + rel;
          if (target < 0 ||
              target > static_cast<std::int64_t>(p_.code.size())) {
            bad("jump out of range");
          }
          pending_.push_back(
              {static_cast<std::uint32_t>(raw_.size()),
               static_cast<std::size_t>(target)});
          break;
        }
        case Op::kIntrinsic: {
          std::uint8_t id = u8();
          std::uint8_t argc = u8();
          if (id > static_cast<std::uint8_t>(Intrinsic::kSpawnP)) {
            bad("unknown intrinsic id");
          }
          const IntrinsicInfo& info =
              intrinsic_info(static_cast<Intrinsic>(id));
          if (argc != info.arity) bad("intrinsic arity mismatch");
          inst.op = static_cast<DOp>(static_cast<int>(DOp::kParam) + id);
          break;
        }
        default: {
          auto raw_op = static_cast<std::uint8_t>(op);
          if (raw_op > static_cast<std::uint8_t>(Op::kReturn)) {
            bad("illegal opcode");
          }
          // Op and DOp share the same numeric layout up through kPop.
          static_assert(static_cast<int>(Op::kAdd) ==
                        static_cast<int>(DOp::kAdd));
          static_assert(static_cast<int>(Op::kLogicalNot) ==
                        static_cast<int>(DOp::kLogicalNot));
          static_assert(static_cast<int>(Op::kPop) ==
                        static_cast<int>(DOp::kPop));
          inst.op = op == Op::kReturn ? DOp::kRet : static_cast<DOp>(raw_op);
          break;
        }
      }
      raw_.push_back(inst);
    }
    // Sentinel: falling off the end is a clean return (cost 0 — the wire
    // program has no instruction there).
    index_at_[p_.code.size()] = static_cast<std::uint32_t>(raw_.size());
    raw_.push_back(DInst{DOp::kRet, 0, 0, 0, 0});
  }

  void resolve_jumps() {
    is_target_.assign(raw_.size(), false);
    for (const auto& [inst, target_off] : pending_) {
      auto it = index_at_.find(target_off);
      if (it == index_at_.end()) bad("jump into middle of instruction");
      raw_[inst].b = it->second;
      is_target_[it->second] = true;
    }
  }

  /// Pass 2: abstract interpretation of stack depth over the CFG. Proves
  /// no underflow and that depth is consistent at joins; returns the
  /// maximum depth, which bounds the preallocated operand stack.
  std::uint32_t verify_stack() {
    std::vector<int> depth(raw_.size(), -1);
    std::vector<std::uint32_t> work;
    depth[0] = 0;
    work.push_back(0);
    int max_depth = 0;
    auto flow = [&](std::uint32_t to, int d) {
      if (depth[to] == -1) {
        depth[to] = d;
        work.push_back(to);
      } else if (depth[to] != d) {
        bad("inconsistent stack depth at join");
      }
    };
    while (!work.empty()) {
      std::uint32_t i = work.back();
      work.pop_back();
      const DInst& inst = raw_[i];
      Effect e = effect_of(inst);
      if (depth[i] < e.need) bad("stack underflow");
      // Every op pops before it pushes, so the intra-op peak is just
      // max(depth-in, depth-out).
      int out = depth[i] + e.delta;
      max_depth = std::max(max_depth, std::max(depth[i], out));
      if (inst.op == DOp::kRet) continue;
      if (inst.op == DOp::kJmp) {
        flow(inst.b, out);
        continue;
      }
      flow(i + 1, out);
      if (inst.op == DOp::kJz || inst.op == DOp::kJnz) flow(inst.b, out);
    }
    return static_cast<std::uint32_t>(max_depth);
  }

  /// Pass 3: superinstruction fusion. A run may be fused only if no jump
  /// lands on its interior instructions; targets are then remapped from
  /// raw indices to fused indices.
  std::vector<DInst> fused() {
    std::vector<DInst> out;
    out.reserve(raw_.size());
    std::vector<std::uint32_t> old2new(raw_.size(), UINT32_MAX);
    auto clear_interior = [&](std::size_t i, std::size_t len) {
      for (std::size_t k = 1; k < len; ++k) {
        if (is_target_[i + k]) return false;
      }
      return true;
    };
    std::size_t i = 0;
    while (i < raw_.size()) {
      old2new[i] = static_cast<std::uint32_t>(out.size());
      const DInst& cur = raw_[i];
      std::size_t left = raw_.size() - i;
      // cmp; Jz  ->  fused compare-and-branch.
      if (is_cmp(cur.op) && left >= 2 && raw_[i + 1].op == DOp::kJz &&
          clear_interior(i, 2)) {
        DInst f{static_cast<DOp>(static_cast<int>(DOp::kEqJz) +
                                 (static_cast<int>(cur.op) -
                                  static_cast<int>(DOp::kEq))),
                2, 0, raw_[i + 1].b, 0};
        out.push_back(f);
        i += 2;
        continue;
      }
      if (cur.op == DOp::kLoad && left >= 4 && clear_interior(i, 4) &&
          raw_[i + 2].op == DOp::kAdd && raw_[i + 3].op == DOp::kStore &&
          raw_[i + 3].a == cur.a) {
        // Load a; Const c; Add; Store a  ->  locals[a] += c.
        if (raw_[i + 1].op == DOp::kConst) {
          out.push_back(DInst{DOp::kIncLocal, 4, cur.a, 0, raw_[i + 1].imm});
          i += 4;
          continue;
        }
        // Load a; Load b; Add; Store a  ->  locals[a] += locals[b].
        if (raw_[i + 1].op == DOp::kLoad) {
          out.push_back(DInst{DOp::kAddLocals, 4, cur.a, raw_[i + 1].a, 0});
          i += 4;
          continue;
        }
      }
      if (cur.op == DOp::kLoad && left >= 2 && raw_[i + 1].op == DOp::kLoad &&
          clear_interior(i, 2)) {
        out.push_back(DInst{DOp::kLoadLoad, 2, cur.a, raw_[i + 1].a, 0});
        i += 2;
        continue;
      }
      // PushStr s; PushInt n; spawn  ->  constant spawn.
      if (cur.op == DOp::kConstStr && left >= 3 &&
          raw_[i + 1].op == DOp::kConst && raw_[i + 2].op == DOp::kSpawn &&
          clear_interior(i, 3)) {
        out.push_back(DInst{DOp::kSpawnConst, 3, 0, cur.b, raw_[i + 1].imm});
        i += 3;
        continue;
      }
      out.push_back(cur);
      ++i;
    }
    for (DInst& inst : out) {
      if (is_jump(inst.op)) inst.b = old2new[inst.b];
    }
    return out;
  }

  const Program& p_;
  std::size_t pc_ = 0;
  std::vector<DInst> raw_;
  std::unordered_map<std::size_t, std::uint32_t> index_at_;
  std::vector<std::pair<std::uint32_t, std::size_t>> pending_;
  std::vector<bool> is_target_;
};

}  // namespace

Result<DecodedProgram> decode(const Program& p, bool fuse) {
  try {
    return Decoder(p).run(fuse);
  } catch (const BadBytecode& e) {
    return Status::error(ErrorCode::kInvalidArgument,
                         std::string("invalid bytecode: ") + e.what());
  }
}

}  // namespace sdvm::microc
