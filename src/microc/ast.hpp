// MicroC abstract syntax tree. One source unit is the body of one
// microthread: a statement list over int64 locals plus SDVM intrinsics.
//
// The parser produces a plain syntactic tree; the typechecker pass
// (typecheck.hpp) annotates it in place — every expression gets a Type,
// every variable reference a resolved local slot, every call a resolved
// intrinsic — so the lowering stage never does name lookups.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "microc/token.hpp"

namespace sdvm::microc {

struct IntrinsicInfo;

/// MicroC's whole type system: int64 values, string literals (only legal
/// as intrinsic arguments), and void (intrinsics without a result).
enum class Type : std::uint8_t { kInt, kStr, kVoid };

[[nodiscard]] const char* to_string(Type t);

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class ExprKind : std::uint8_t {
  kIntLiteral,
  kStringLiteral,
  kVariable,
  kUnary,    // -, !, ~
  kBinary,   // arithmetic / comparison / bitwise / logical
  kCall,     // intrinsic call
};

struct Expr {
  ExprKind kind;
  int line = 0;
  int column = 0;

  // kIntLiteral
  std::int64_t int_value = 0;
  // kStringLiteral / kVariable / kCall (name)
  std::string name;
  // kUnary / kBinary operator
  Tok op = Tok::kEof;
  // operands / call arguments
  std::vector<ExprPtr> children;

  // --- typechecker annotations -----------------------------------------
  Type type = Type::kInt;               // result type of this expression
  std::int32_t slot = -1;               // kVariable: resolved local slot
  const IntrinsicInfo* intrinsic = nullptr;  // kCall: resolved intrinsic
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

enum class StmtKind : std::uint8_t {
  kVarDecl,   // var x = expr;
  kAssign,    // x = expr;
  kIf,        // if (cond) then [else]
  kWhile,     // while (cond) body
  kFor,       // for (init; cond; step) body — desugared while with a step
  kBreak,     // break;
  kContinue,  // continue;
  kReturn,    // return;
  kExpr,      // expr; (result discarded)
};

struct Stmt {
  StmtKind kind;
  int line = 0;
  int column = 0;

  std::string name;               // kVarDecl / kAssign target
  ExprPtr expr;                   // initializer / rhs / condition / call
  std::vector<StmtPtr> body;      // then-branch or loop body
  std::vector<StmtPtr> else_body; // kIf only
  StmtPtr init;                   // kFor only
  StmtPtr step;                   // kFor only

  // --- typechecker annotations -----------------------------------------
  std::int32_t slot = -1;         // kVarDecl / kAssign: resolved local slot
};

struct Unit {
  std::vector<StmtPtr> statements;
};

/// Human-readable tree listing for `sdvm-mcc --dump-ast`. Shows resolved
/// slots and types when the unit has been typechecked.
[[nodiscard]] std::string dump_ast(const Unit& unit);

}  // namespace sdvm::microc
