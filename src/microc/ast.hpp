// MicroC abstract syntax tree. One source unit is the body of one
// microthread: a statement list over int64 locals plus SDVM intrinsics.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "microc/token.hpp"

namespace sdvm::microc {

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class ExprKind : std::uint8_t {
  kIntLiteral,
  kStringLiteral,
  kVariable,
  kUnary,    // -, !, ~
  kBinary,   // arithmetic / comparison / bitwise / logical
  kCall,     // intrinsic call
};

struct Expr {
  ExprKind kind;
  int line = 0;

  // kIntLiteral
  std::int64_t int_value = 0;
  // kStringLiteral / kVariable / kCall (name)
  std::string name;
  // kUnary / kBinary operator
  Tok op = Tok::kEof;
  // operands / call arguments
  std::vector<ExprPtr> children;
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

enum class StmtKind : std::uint8_t {
  kVarDecl,   // var x = expr;
  kAssign,    // x = expr;
  kIf,        // if (cond) then [else]
  kWhile,     // while (cond) body
  kFor,       // for (init; cond; step) body — desugared while with a step
  kBreak,     // break;
  kContinue,  // continue;
  kReturn,    // return;
  kExpr,      // expr; (result discarded)
};

struct Stmt {
  StmtKind kind;
  int line = 0;

  std::string name;               // kVarDecl / kAssign target
  ExprPtr expr;                   // initializer / rhs / condition / call
  std::vector<StmtPtr> body;      // then-branch or loop body
  std::vector<StmtPtr> else_body; // kIf only
  StmtPtr init;                   // kFor only
  StmtPtr step;                   // kFor only
};

struct Unit {
  std::vector<StmtPtr> statements;
};

}  // namespace sdvm::microc
