#pragma once

#include <string_view>
#include <vector>

#include "microc/token.hpp"

namespace sdvm::microc {

/// Compile-time diagnostics carry a position; the code manager reports them
/// back to the site that shipped the source.
struct CompileError {
  std::string message;
  int line = 0;
  int column = 0;

  [[nodiscard]] std::string to_string() const {
    return "line " + std::to_string(line) + ":" + std::to_string(column) +
           ": " + message;
  }
};

class LexError : public std::exception {
 public:
  explicit LexError(CompileError e) : error(std::move(e)) {}
  const char* what() const noexcept override { return error.message.c_str(); }
  CompileError error;
};

/// Tokenizes a full source unit. Throws LexError on malformed input.
[[nodiscard]] std::vector<Token> lex(std::string_view source);

}  // namespace sdvm::microc
