#include "microc/parser.hpp"

namespace sdvm::microc {

namespace {

/// Recursive-descent parser with precedence climbing for binary operators.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : toks_(std::move(tokens)) {}

  Unit parse_unit() {
    Unit u;
    while (!at(Tok::kEof)) {
      u.statements.push_back(statement());
    }
    return u;
  }

 private:
  const Token& cur() const { return toks_[pos_]; }
  bool at(Tok t) const { return cur().kind == t; }

  Token eat() { return toks_[pos_++]; }

  /// Fuzz safety: statements, blocks and expressions recurse; a hostile
  /// source of '(((((...' or deeply nested blocks must fail cleanly
  /// instead of overflowing the C++ stack.
  static constexpr int kMaxDepth = 200;
  struct DepthGuard {
    explicit DepthGuard(Parser& p) : p_(p) {
      if (++p_.depth_ > kMaxDepth) p_.fail("nesting too deep");
    }
    ~DepthGuard() { --p_.depth_; }
    Parser& p_;
  };

  Token expect(Tok t, const char* context) {
    if (!at(t)) {
      fail(std::string("expected '") + to_string(t) + "' " + context +
           ", found '" + to_string(cur().kind) + "'");
    }
    return eat();
  }

  [[noreturn]] void fail(std::string msg) const {
    throw ParseError(CompileError{std::move(msg), cur().line, cur().column});
  }

  StmtPtr statement() {
    DepthGuard guard(*this);
    auto s = std::make_unique<Stmt>();
    s->line = cur().line;
    s->column = cur().column;

    if (at(Tok::kVar)) {
      eat();
      s->kind = StmtKind::kVarDecl;
      s->name = expect(Tok::kIdent, "after 'var'").text;
      expect(Tok::kAssign, "in variable declaration");
      s->expr = expression();
      expect(Tok::kSemi, "after declaration");
      return s;
    }
    if (at(Tok::kIf)) {
      eat();
      s->kind = StmtKind::kIf;
      expect(Tok::kLParen, "after 'if'");
      s->expr = expression();
      expect(Tok::kRParen, "after condition");
      s->body = block();
      if (at(Tok::kElse)) {
        eat();
        if (at(Tok::kIf)) {
          s->else_body.push_back(statement());  // else-if chains
        } else {
          s->else_body = block();
        }
      }
      return s;
    }
    if (at(Tok::kWhile)) {
      eat();
      s->kind = StmtKind::kWhile;
      expect(Tok::kLParen, "after 'while'");
      s->expr = expression();
      expect(Tok::kRParen, "after condition");
      s->body = block();
      return s;
    }
    if (at(Tok::kFor)) {
      eat();
      s->kind = StmtKind::kFor;
      expect(Tok::kLParen, "after 'for'");
      if (!at(Tok::kSemi)) s->init = simple_statement_no_semi();
      expect(Tok::kSemi, "after for-initializer");
      if (!at(Tok::kSemi)) s->expr = expression();
      expect(Tok::kSemi, "after for-condition");
      if (!at(Tok::kRParen)) s->step = simple_statement_no_semi();
      expect(Tok::kRParen, "after for-step");
      s->body = block();
      return s;
    }
    if (at(Tok::kBreak)) {
      eat();
      s->kind = StmtKind::kBreak;
      expect(Tok::kSemi, "after 'break'");
      return s;
    }
    if (at(Tok::kContinue)) {
      eat();
      s->kind = StmtKind::kContinue;
      expect(Tok::kSemi, "after 'continue'");
      return s;
    }
    if (at(Tok::kReturn)) {
      eat();
      s->kind = StmtKind::kReturn;
      expect(Tok::kSemi, "after 'return'");
      return s;
    }
    // Assignment or expression statement: disambiguate on IDENT '='.
    if (at(Tok::kIdent) && toks_[pos_ + 1].kind == Tok::kAssign) {
      s->kind = StmtKind::kAssign;
      s->name = eat().text;
      eat();  // '='
      s->expr = expression();
      expect(Tok::kSemi, "after assignment");
      return s;
    }
    s->kind = StmtKind::kExpr;
    s->expr = expression();
    expect(Tok::kSemi, "after expression");
    return s;
  }

  /// A declaration, assignment, or expression — without the trailing ';'.
  /// Used by for-headers.
  StmtPtr simple_statement_no_semi() {
    auto s = std::make_unique<Stmt>();
    s->line = cur().line;
    s->column = cur().column;
    if (at(Tok::kVar)) {
      eat();
      s->kind = StmtKind::kVarDecl;
      s->name = expect(Tok::kIdent, "after 'var'").text;
      expect(Tok::kAssign, "in variable declaration");
      s->expr = expression();
      return s;
    }
    if (at(Tok::kIdent) && toks_[pos_ + 1].kind == Tok::kAssign) {
      s->kind = StmtKind::kAssign;
      s->name = eat().text;
      eat();  // '='
      s->expr = expression();
      return s;
    }
    s->kind = StmtKind::kExpr;
    s->expr = expression();
    return s;
  }

  std::vector<StmtPtr> block() {
    expect(Tok::kLBrace, "to open block");
    std::vector<StmtPtr> body;
    while (!at(Tok::kRBrace)) {
      if (at(Tok::kEof)) fail("unterminated block");
      body.push_back(statement());
    }
    eat();
    return body;
  }

  static int precedence(Tok t) {
    switch (t) {
      case Tok::kPipePipe: return 1;
      case Tok::kAmpAmp:   return 2;
      case Tok::kPipe:     return 3;
      case Tok::kCaret:    return 4;
      case Tok::kAmp:      return 5;
      case Tok::kEq: case Tok::kNe: return 6;
      case Tok::kLt: case Tok::kLe: case Tok::kGt: case Tok::kGe: return 7;
      case Tok::kShl: case Tok::kShr: return 8;
      case Tok::kPlus: case Tok::kMinus: return 9;
      case Tok::kStar: case Tok::kSlash: case Tok::kPercent: return 10;
      default: return -1;
    }
  }

  ExprPtr expression() { return binary(0); }

  ExprPtr binary(int min_prec) {
    ExprPtr lhs = unary();
    while (true) {
      int prec = precedence(cur().kind);
      if (prec < min_prec || prec < 0) break;
      Tok op = eat().kind;
      ExprPtr rhs = binary(prec + 1);  // left-associative
      auto node = std::make_unique<Expr>();
      node->kind = ExprKind::kBinary;
      node->op = op;
      node->line = lhs->line;
      node->column = lhs->column;
      node->children.push_back(std::move(lhs));
      node->children.push_back(std::move(rhs));
      lhs = std::move(node);
    }
    return lhs;
  }

  ExprPtr unary() {
    DepthGuard guard(*this);
    if (at(Tok::kMinus) || at(Tok::kBang) || at(Tok::kTilde)) {
      auto node = std::make_unique<Expr>();
      node->kind = ExprKind::kUnary;
      node->line = cur().line;
      node->column = cur().column;
      node->op = eat().kind;
      node->children.push_back(unary());
      return node;
    }
    return primary();
  }

  ExprPtr primary() {
    DepthGuard guard(*this);
    auto node = std::make_unique<Expr>();
    node->line = cur().line;
    node->column = cur().column;

    if (at(Tok::kInt)) {
      node->kind = ExprKind::kIntLiteral;
      node->int_value = eat().int_value;
      return node;
    }
    if (at(Tok::kString)) {
      node->kind = ExprKind::kStringLiteral;
      node->name = eat().text;
      return node;
    }
    if (at(Tok::kLParen)) {
      eat();
      node = expression();
      expect(Tok::kRParen, "to close parenthesized expression");
      return node;
    }
    if (at(Tok::kIdent)) {
      std::string name = eat().text;
      if (at(Tok::kLParen)) {
        eat();
        node->kind = ExprKind::kCall;
        node->name = std::move(name);
        if (!at(Tok::kRParen)) {
          node->children.push_back(expression());
          while (at(Tok::kComma)) {
            eat();
            node->children.push_back(expression());
          }
        }
        expect(Tok::kRParen, "to close call");
        return node;
      }
      node->kind = ExprKind::kVariable;
      node->name = std::move(name);
      return node;
    }
    fail(std::string("expected expression, found '") +
         to_string(cur().kind) + "'");
  }

  std::vector<Token> toks_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Unit parse(std::string_view source) {
  return Parser(lex(source)).parse_unit();
}

}  // namespace sdvm::microc
