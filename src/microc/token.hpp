// Token stream for MicroC, the small C-like language SDVM microthreads can
// be shipped as "source" in. A site whose platform has no binary artifact
// receives MicroC source and compiles it on the fly (paper §3.4/§4).
#pragma once

#include <cstdint>
#include <string>

namespace sdvm::microc {

enum class Tok : std::uint8_t {
  kEof,
  kInt,        // integer literal
  kString,     // "..." literal
  kIdent,
  // keywords
  kVar, kIf, kElse, kWhile, kFor, kBreak, kContinue, kReturn,
  // punctuation / operators
  kLParen, kRParen, kLBrace, kRBrace, kComma, kSemi,
  kAssign,                      // =
  kPlus, kMinus, kStar, kSlash, kPercent,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAmpAmp, kPipePipe, kBang,
  kAmp, kPipe, kCaret, kShl, kShr, kTilde,
};

struct Token {
  Tok kind = Tok::kEof;
  std::string text;        // identifier or string literal contents
  std::int64_t int_value = 0;
  int line = 0;
  int column = 0;
};

[[nodiscard]] const char* to_string(Tok t);

}  // namespace sdvm::microc
