#include "microc/ir.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_map>

namespace sdvm::microc {

namespace {

// Wrapping two's-complement arithmetic: the folder must compute exactly
// the value the VM's (explicitly wrapping) runtime ops would produce.
std::int64_t wrap_add(std::int64_t a, std::int64_t b) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) +
                                   static_cast<std::uint64_t>(b));
}
std::int64_t wrap_sub(std::int64_t a, std::int64_t b) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) -
                                   static_cast<std::uint64_t>(b));
}
std::int64_t wrap_mul(std::int64_t a, std::int64_t b) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) *
                                   static_cast<std::uint64_t>(b));
}
std::int64_t wrap_neg(std::int64_t a) {
  return static_cast<std::int64_t>(-static_cast<std::uint64_t>(a));
}

// ---------------------------------------------------------------------------
// Lowering
// ---------------------------------------------------------------------------

class Lowerer {
 public:
  IrFunction lower(const Unit& unit, const TypeckResult& types) {
    f_.local_count = types.local_count;
    for (const auto& s : unit.statements) gen_stmt(*s);
    add(IrOp::kRet, 0);
    return std::move(f_);
  }

 private:
  IrInst& add(IrOp op, int line) {
    f_.insts.push_back(IrInst{op, 0, 0, 0, line});
    return f_.insts.back();
  }

  std::uint32_t new_label() { return f_.next_label++; }

  void place(std::uint32_t label, int line) {
    add(IrOp::kLabel, line).aux = label;
  }

  void jump(IrOp op, std::uint32_t label, int line) {
    add(op, line).aux = label;
  }

  std::uint32_t intern_string(const std::string& s) {
    for (std::size_t i = 0; i < f_.strings.size(); ++i) {
      if (f_.strings[i] == s) return static_cast<std::uint32_t>(i);
    }
    f_.strings.push_back(s);
    return static_cast<std::uint32_t>(f_.strings.size() - 1);
  }

  void gen_stmt(const Stmt& s) {
    switch (s.kind) {
      case StmtKind::kVarDecl:
      case StmtKind::kAssign: {
        gen_expr(*s.expr);
        add(IrOp::kStore, s.line).aux = static_cast<std::uint32_t>(s.slot);
        break;
      }
      case StmtKind::kIf: {
        gen_expr(*s.expr);
        std::uint32_t to_else = new_label();
        jump(IrOp::kJz, to_else, s.line);
        for (const auto& b : s.body) gen_stmt(*b);
        if (s.else_body.empty()) {
          place(to_else, s.line);
        } else {
          std::uint32_t to_end = new_label();
          jump(IrOp::kJmp, to_end, s.line);
          place(to_else, s.line);
          for (const auto& b : s.else_body) gen_stmt(*b);
          place(to_end, s.line);
        }
        break;
      }
      case StmtKind::kWhile: {
        std::uint32_t top = new_label();
        std::uint32_t end = new_label();
        place(top, s.line);
        gen_expr(*s.expr);
        jump(IrOp::kJz, end, s.line);
        loops_.push_back({top, end});
        for (const auto& b : s.body) gen_stmt(*b);
        loops_.pop_back();
        jump(IrOp::kJmp, top, s.line);
        place(end, s.line);
        break;
      }
      case StmtKind::kFor: {
        if (s.init) gen_stmt(*s.init);
        std::uint32_t top = new_label();
        std::uint32_t step = new_label();
        std::uint32_t end = new_label();
        place(top, s.line);
        if (s.expr) {
          gen_expr(*s.expr);
          jump(IrOp::kJz, end, s.line);
        }
        loops_.push_back({step, end});  // `continue` must run the step
        for (const auto& b : s.body) gen_stmt(*b);
        loops_.pop_back();
        place(step, s.line);
        if (s.step) gen_stmt(*s.step);
        jump(IrOp::kJmp, top, s.line);
        place(end, s.line);
        break;
      }
      case StmtKind::kBreak:
        jump(IrOp::kJmp, loops_.back().break_label, s.line);
        break;
      case StmtKind::kContinue:
        jump(IrOp::kJmp, loops_.back().continue_label, s.line);
        break;
      case StmtKind::kReturn:
        add(IrOp::kRet, s.line);
        break;
      case StmtKind::kExpr: {
        bool pushed = gen_expr(*s.expr);
        if (pushed) add(IrOp::kPop, s.line);
        break;
      }
    }
  }

  /// Generates code for an expression; returns whether a value was pushed
  /// (void intrinsics push nothing).
  bool gen_expr(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kIntLiteral:
        add(IrOp::kConst, e.line).imm = e.int_value;
        return true;
      case ExprKind::kStringLiteral:
        add(IrOp::kConstStr, e.line).aux = intern_string(e.name);
        return true;
      case ExprKind::kVariable:
        add(IrOp::kLoad, e.line).aux = static_cast<std::uint32_t>(e.slot);
        return true;
      case ExprKind::kUnary: {
        gen_expr(*e.children[0]);
        switch (e.op) {
          case Tok::kMinus: add(IrOp::kNeg, e.line); break;
          case Tok::kBang: add(IrOp::kLogicalNot, e.line); break;
          default: add(IrOp::kBitNot, e.line); break;
        }
        return true;
      }
      case ExprKind::kBinary:
        return gen_binary(e);
      case ExprKind::kCall: {
        for (const auto& arg : e.children) gen_expr(*arg);
        IrInst& inst = add(IrOp::kIntrinsic, e.line);
        inst.aux = static_cast<std::uint32_t>(e.intrinsic->id);
        inst.aux2 = static_cast<std::uint32_t>(e.intrinsic->arity);
        return e.intrinsic->returns_value;
      }
    }
    return false;
  }

  bool gen_binary(const Expr& e) {
    // Short-circuit logical operators: normalize each side to 0/1 so the
    // result is boolean regardless of which branch produced it.
    if (e.op == Tok::kAmpAmp || e.op == Tok::kPipePipe) {
      std::uint32_t skip = new_label();
      gen_expr(*e.children[0]);
      add(IrOp::kLogicalNot, e.line);
      add(IrOp::kLogicalNot, e.line);
      add(IrOp::kDup, e.line);
      jump(e.op == Tok::kAmpAmp ? IrOp::kJz : IrOp::kJnz, skip, e.line);
      add(IrOp::kPop, e.line);
      gen_expr(*e.children[1]);
      add(IrOp::kLogicalNot, e.line);
      add(IrOp::kLogicalNot, e.line);
      place(skip, e.line);
      return true;
    }

    gen_expr(*e.children[0]);
    gen_expr(*e.children[1]);
    IrOp op;
    switch (e.op) {
      case Tok::kPlus: op = IrOp::kAdd; break;
      case Tok::kMinus: op = IrOp::kSub; break;
      case Tok::kStar: op = IrOp::kMul; break;
      case Tok::kSlash: op = IrOp::kDiv; break;
      case Tok::kPercent: op = IrOp::kMod; break;
      case Tok::kEq: op = IrOp::kEq; break;
      case Tok::kNe: op = IrOp::kNe; break;
      case Tok::kLt: op = IrOp::kLt; break;
      case Tok::kLe: op = IrOp::kLe; break;
      case Tok::kGt: op = IrOp::kGt; break;
      case Tok::kGe: op = IrOp::kGe; break;
      case Tok::kAmp: op = IrOp::kBitAnd; break;
      case Tok::kPipe: op = IrOp::kBitOr; break;
      case Tok::kCaret: op = IrOp::kBitXor; break;
      case Tok::kShl: op = IrOp::kShl; break;
      default: op = IrOp::kShr; break;
    }
    add(op, e.line);
    return true;
  }

  struct LoopCtx {
    std::uint32_t continue_label;
    std::uint32_t break_label;
  };

  IrFunction f_;
  std::vector<LoopCtx> loops_;
};

// ---------------------------------------------------------------------------
// Optimizer
// ---------------------------------------------------------------------------

bool is_cmp(IrOp op) {
  return op == IrOp::kEq || op == IrOp::kNe || op == IrOp::kLt ||
         op == IrOp::kLe || op == IrOp::kGt || op == IrOp::kGe;
}

IrOp invert_cmp(IrOp op) {
  switch (op) {
    case IrOp::kEq: return IrOp::kNe;
    case IrOp::kNe: return IrOp::kEq;
    case IrOp::kLt: return IrOp::kGe;
    case IrOp::kLe: return IrOp::kGt;
    case IrOp::kGt: return IrOp::kLe;
    default: return IrOp::kLt;  // kGe
  }
}

/// Folds [Const a][Const b][binop] when the operation cannot trap.
/// Returns false for value-dependent traps (div/mod by zero, overflow
/// division, out-of-range shifts): those must stay runtime behavior.
bool fold_binop(IrOp op, std::int64_t a, std::int64_t b, std::int64_t* out) {
  switch (op) {
    case IrOp::kAdd: *out = wrap_add(a, b); return true;
    case IrOp::kSub: *out = wrap_sub(a, b); return true;
    case IrOp::kMul: *out = wrap_mul(a, b); return true;
    case IrOp::kDiv:
      if (b == 0 || (a == INT64_MIN && b == -1)) return false;
      *out = a / b;
      return true;
    case IrOp::kMod:
      if (b == 0 || (a == INT64_MIN && b == -1)) return false;
      *out = a % b;
      return true;
    case IrOp::kEq: *out = a == b; return true;
    case IrOp::kNe: *out = a != b; return true;
    case IrOp::kLt: *out = a < b; return true;
    case IrOp::kLe: *out = a <= b; return true;
    case IrOp::kGt: *out = a > b; return true;
    case IrOp::kGe: *out = a >= b; return true;
    case IrOp::kBitAnd: *out = a & b; return true;
    case IrOp::kBitOr: *out = a | b; return true;
    case IrOp::kBitXor: *out = a ^ b; return true;
    case IrOp::kShl:
      if (b < 0 || b > 63) return false;
      *out = static_cast<std::int64_t>(static_cast<std::uint64_t>(a) << b);
      return true;
    case IrOp::kShr:
      if (b < 0 || b > 63) return false;
      *out = static_cast<std::int64_t>(static_cast<std::uint64_t>(a) >> b);
      return true;
    default: return false;
  }
}

bool is_binop(IrOp op) {
  return op == IrOp::kAdd || op == IrOp::kSub || op == IrOp::kMul ||
         op == IrOp::kDiv || op == IrOp::kMod || is_cmp(op) ||
         op == IrOp::kBitAnd || op == IrOp::kBitOr || op == IrOp::kBitXor ||
         op == IrOp::kShl || op == IrOp::kShr;
}

/// Is dropping this instruction side-effect free (pushes one value, no
/// state change)? Used when an annihilating operand (x*0) discards it.
bool pure_producer(IrOp op) {
  return op == IrOp::kConst || op == IrOp::kLoad || op == IrOp::kConstStr;
}

/// Peephole pass: constant folding, algebraic identities, branch folding,
/// push/pop cancellation. Works by pushing each instruction onto an output
/// vector and reducing its tail to a fixed point, so cascading folds
/// ((1+2)+3) complete in one pass.
bool fold_pass(IrFunction& f, OptStats& stats) {
  std::vector<IrInst> out;
  out.reserve(f.insts.size());
  bool changed = false;

  auto tail = [&](std::size_t k) -> IrInst& { return out[out.size() - k]; };

  for (const IrInst& inst : f.insts) {
    out.push_back(inst);
    for (;;) {
      std::size_t n = out.size();
      IrInst& top = out.back();

      // [Const a][Const b][binop] -> [Const r]
      if (n >= 3 && is_binop(top.op) && tail(2).op == IrOp::kConst &&
          tail(3).op == IrOp::kConst) {
        std::int64_t r;
        if (fold_binop(top.op, tail(3).imm, tail(2).imm, &r)) {
          int line = tail(3).line;
          out.pop_back();
          out.pop_back();
          out.back() = IrInst{IrOp::kConst, r, 0, 0, line};
          ++stats.constants_folded;
          changed = true;
          continue;
        }
      }
      // [Const a][unop] -> [Const r]
      if (n >= 2 && tail(2).op == IrOp::kConst) {
        bool folded = true;
        std::int64_t a = tail(2).imm, r = 0;
        switch (top.op) {
          case IrOp::kNeg: r = wrap_neg(a); break;
          case IrOp::kBitNot: r = ~a; break;
          case IrOp::kLogicalNot: r = a == 0 ? 1 : 0; break;
          default: folded = false; break;
        }
        if (folded) {
          out.pop_back();
          out.back().imm = r;
          ++stats.constants_folded;
          changed = true;
          continue;
        }
      }
      // Algebraic identities: [Const id][op] is a no-op.
      if (n >= 2 && tail(2).op == IrOp::kConst) {
        std::int64_t c = tail(2).imm;
        bool identity =
            (c == 0 && (top.op == IrOp::kAdd || top.op == IrOp::kSub ||
                        top.op == IrOp::kBitOr || top.op == IrOp::kBitXor ||
                        top.op == IrOp::kShl || top.op == IrOp::kShr)) ||
            (c == 1 && (top.op == IrOp::kMul || top.op == IrOp::kDiv)) ||
            (c == -1 && top.op == IrOp::kBitAnd);
        if (identity) {
          out.pop_back();
          out.pop_back();
          ++stats.constants_folded;
          changed = true;
          continue;
        }
        // Annihilators: [pure][Const 0][Mul / BitAnd] -> [Const 0].
        bool annihilate = c == 0 && (top.op == IrOp::kMul ||
                                     top.op == IrOp::kBitAnd);
        if (annihilate && n >= 3 && pure_producer(tail(3).op)) {
          int line = tail(3).line;
          out.pop_back();
          out.pop_back();
          out.back() = IrInst{IrOp::kConst, 0, 0, 0, line};
          ++stats.constants_folded;
          changed = true;
          continue;
        }
      }
      // Branch folding: [Const c][Jz/Jnz L].
      if (n >= 2 && tail(2).op == IrOp::kConst &&
          (top.op == IrOp::kJz || top.op == IrOp::kJnz)) {
        bool taken = top.op == IrOp::kJz ? tail(2).imm == 0
                                         : tail(2).imm != 0;
        IrInst jmp = top;
        out.pop_back();
        out.pop_back();
        if (taken) {
          jmp.op = IrOp::kJmp;
          out.push_back(jmp);
        }
        ++stats.branches_folded;
        changed = true;
        continue;
      }
      // [pure][Pop] and [Dup][Pop] cancel.
      if (n >= 2 && top.op == IrOp::kPop &&
          (pure_producer(tail(2).op) || tail(2).op == IrOp::kDup)) {
        out.pop_back();
        out.pop_back();
        ++stats.dead_removed;
        changed = true;
        continue;
      }
      // [cmp][LogicalNot] -> inverted cmp (comparisons produce 0/1).
      if (n >= 2 && top.op == IrOp::kLogicalNot && is_cmp(tail(2).op)) {
        out.pop_back();
        out.back().op = invert_cmp(out.back().op);
        ++stats.constants_folded;
        changed = true;
        continue;
      }
      // [cmp][LNot][LNot] pairs were handled above; also compress
      // [LNot][LNot][LNot] -> [LNot] (!!!x == !x).
      if (n >= 3 && top.op == IrOp::kLogicalNot &&
          tail(2).op == IrOp::kLogicalNot &&
          tail(3).op == IrOp::kLogicalNot) {
        out.pop_back();
        out.pop_back();
        ++stats.constants_folded;
        changed = true;
        continue;
      }
      break;
    }
  }
  f.insts = std::move(out);
  return changed;
}

/// Block-local constant and copy propagation. Locals are microframe-
/// private, so intrinsic calls cannot alias them; the only invalidation
/// points are stores and block boundaries (labels / branches).
bool propagate_pass(IrFunction& f, OptStats& stats) {
  bool changed = false;
  std::unordered_map<std::uint32_t, std::int64_t> known;
  std::unordered_map<std::uint32_t, std::uint32_t> copies;

  auto clear_all = [&] {
    known.clear();
    copies.clear();
  };

  for (std::size_t i = 0; i < f.insts.size(); ++i) {
    IrInst& inst = f.insts[i];
    switch (inst.op) {
      case IrOp::kLabel:
      case IrOp::kJmp:
      case IrOp::kJz:
      case IrOp::kJnz:
      case IrOp::kRet:
        clear_all();
        break;
      case IrOp::kLoad: {
        if (auto it = known.find(inst.aux); it != known.end()) {
          inst = IrInst{IrOp::kConst, it->second, 0, 0, inst.line};
          ++stats.propagated_loads;
          changed = true;
        } else if (auto jt = copies.find(inst.aux); jt != copies.end()) {
          inst.aux = jt->second;
          ++stats.propagated_loads;
          changed = true;
        }
        break;
      }
      case IrOp::kStore: {
        std::uint32_t s = inst.aux;
        known.erase(s);
        copies.erase(s);
        for (auto it = copies.begin(); it != copies.end();) {
          it = it->second == s ? copies.erase(it) : std::next(it);
        }
        if (i > 0) {
          const IrInst& prev = f.insts[i - 1];
          if (prev.op == IrOp::kConst) {
            known[s] = prev.imm;
          } else if (prev.op == IrOp::kLoad && prev.aux != s) {
            copies[s] = prev.aux;
          }
        }
        break;
      }
      default:
        break;
    }
  }
  return changed;
}

/// Dead-code elimination: unreachable instructions, unreferenced labels,
/// stores to never-loaded slots, jumps to the next instruction, and jump
/// threading through trampoline labels.
bool dce_pass(IrFunction& f, OptStats& stats) {
  bool changed = false;

  // Label reference counts and positions.
  std::unordered_map<std::uint32_t, int> refs;
  for (const IrInst& inst : f.insts) {
    if (inst.op == IrOp::kJmp || inst.op == IrOp::kJz ||
        inst.op == IrOp::kJnz) {
      ++refs[inst.aux];
    }
  }

  // Jump threading: a jump to a label whose next real instruction is an
  // unconditional jump retargets to the final destination.
  std::unordered_map<std::uint32_t, std::size_t> label_pos;
  for (std::size_t i = 0; i < f.insts.size(); ++i) {
    if (f.insts[i].op == IrOp::kLabel) label_pos[f.insts[i].aux] = i;
  }
  auto thread_target = [&](std::uint32_t label) -> std::uint32_t {
    for (int hops = 0; hops < 8; ++hops) {
      auto it = label_pos.find(label);
      if (it == label_pos.end()) return label;
      std::size_t j = it->second + 1;
      while (j < f.insts.size() && f.insts[j].op == IrOp::kLabel) ++j;
      if (j >= f.insts.size() || f.insts[j].op != IrOp::kJmp) return label;
      if (f.insts[j].aux == label) return label;  // self-loop
      label = f.insts[j].aux;
    }
    return label;
  };
  for (IrInst& inst : f.insts) {
    if (inst.op != IrOp::kJmp && inst.op != IrOp::kJz &&
        inst.op != IrOp::kJnz) {
      continue;
    }
    std::uint32_t target = thread_target(inst.aux);
    if (target != inst.aux) {
      --refs[inst.aux];
      ++refs[target];
      inst.aux = target;
      changed = true;
    }
  }

  // Slots that are ever loaded.
  std::unordered_map<std::uint32_t, bool> loaded;
  for (const IrInst& inst : f.insts) {
    if (inst.op == IrOp::kLoad) loaded[inst.aux] = true;
  }

  std::vector<IrInst> out;
  out.reserve(f.insts.size());
  bool dead = false;
  for (std::size_t i = 0; i < f.insts.size(); ++i) {
    const IrInst& inst = f.insts[i];
    if (inst.op == IrOp::kLabel) {
      dead = false;  // labels are the only join points
      if (refs[inst.aux] <= 0) {
        ++stats.dead_removed;
        changed = true;
        continue;
      }
      out.push_back(inst);
      continue;
    }
    if (dead) {
      ++stats.dead_removed;
      changed = true;
      continue;
    }
    if (inst.op == IrOp::kJmp || inst.op == IrOp::kRet) {
      // Jump straight to the next label: fall through instead.
      if (inst.op == IrOp::kJmp) {
        std::size_t j = i + 1;
        bool to_next = false;
        while (j < f.insts.size() && f.insts[j].op == IrOp::kLabel) {
          if (f.insts[j].aux == inst.aux) { to_next = true; break; }
          ++j;
        }
        if (to_next) {
          ++stats.dead_removed;
          changed = true;
          continue;
        }
      }
      out.push_back(inst);
      dead = true;
      continue;
    }
    if (inst.op == IrOp::kStore && !loaded[inst.aux]) {
      out.push_back(IrInst{IrOp::kPop, 0, 0, 0, inst.line});
      ++stats.dead_removed;
      changed = true;
      continue;
    }
    out.push_back(inst);
  }
  f.insts = std::move(out);
  return changed;
}

/// Renumbers surviving slots densely, shrinking the microframe's locals
/// array after dead-store elimination freed variables entirely.
void compact_slots(IrFunction& f, OptStats& stats) {
  std::unordered_map<std::uint32_t, std::uint32_t> remap;
  for (IrInst& inst : f.insts) {
    if (inst.op != IrOp::kLoad && inst.op != IrOp::kStore) continue;
    auto [it, fresh] =
        remap.try_emplace(inst.aux, static_cast<std::uint32_t>(remap.size()));
    (void)fresh;
    inst.aux = it->second;
  }
  auto new_count = static_cast<std::uint16_t>(remap.size());
  if (new_count < f.local_count) {
    stats.slots_compacted += f.local_count - new_count;
    f.local_count = new_count;
  }
}

}  // namespace

IrFunction lower(const Unit& unit, const TypeckResult& types) {
  return Lowerer{}.lower(unit, types);
}

OptStats optimize(IrFunction& f) {
  OptStats stats;
  for (int round = 0; round < 10; ++round) {
    bool changed = false;
    changed |= fold_pass(f, stats);
    changed |= propagate_pass(f, stats);
    changed |= fold_pass(f, stats);
    changed |= dce_pass(f, stats);
    if (!changed) break;
  }
  compact_slots(f, stats);
  return stats;
}

// ---------------------------------------------------------------------------
// Emission
// ---------------------------------------------------------------------------

namespace {

Op to_bytecode_op(IrOp op) {
  switch (op) {
    case IrOp::kConst: return Op::kPushInt;
    case IrOp::kConstStr: return Op::kPushStr;
    case IrOp::kLoad: return Op::kLoadLocal;
    case IrOp::kStore: return Op::kStoreLocal;
    case IrOp::kAdd: return Op::kAdd;
    case IrOp::kSub: return Op::kSub;
    case IrOp::kMul: return Op::kMul;
    case IrOp::kDiv: return Op::kDiv;
    case IrOp::kMod: return Op::kMod;
    case IrOp::kNeg: return Op::kNeg;
    case IrOp::kEq: return Op::kEq;
    case IrOp::kNe: return Op::kNe;
    case IrOp::kLt: return Op::kLt;
    case IrOp::kLe: return Op::kLe;
    case IrOp::kGt: return Op::kGt;
    case IrOp::kGe: return Op::kGe;
    case IrOp::kBitAnd: return Op::kBitAnd;
    case IrOp::kBitOr: return Op::kBitOr;
    case IrOp::kBitXor: return Op::kBitXor;
    case IrOp::kShl: return Op::kShl;
    case IrOp::kShr: return Op::kShr;
    case IrOp::kBitNot: return Op::kBitNot;
    case IrOp::kLogicalNot: return Op::kLogicalNot;
    case IrOp::kJmp: return Op::kJmp;
    case IrOp::kJz: return Op::kJz;
    case IrOp::kJnz: return Op::kJnz;
    case IrOp::kDup: return Op::kDup;
    case IrOp::kPop: return Op::kPop;
    case IrOp::kIntrinsic: return Op::kIntrinsic;
    default: return Op::kReturn;
  }
}

std::size_t encoded_size(const IrInst& inst) {
  switch (inst.op) {
    case IrOp::kLabel: return 0;
    case IrOp::kConst: return 9;
    case IrOp::kConstStr: return 5;
    case IrOp::kLoad:
    case IrOp::kStore: return 3;
    case IrOp::kJmp:
    case IrOp::kJz:
    case IrOp::kJnz: return 5;
    case IrOp::kIntrinsic: return 3;
    default: return 1;
  }
}

}  // namespace

Program emit(const IrFunction& f, std::string name) {
  // Pass 1: byte offset of every instruction and label.
  std::unordered_map<std::uint32_t, std::size_t> label_offset;
  std::size_t offset = 0;
  for (const IrInst& inst : f.insts) {
    if (inst.op == IrOp::kLabel) {
      label_offset[inst.aux] = offset;
    } else {
      offset += encoded_size(inst);
    }
  }

  Program prog;
  prog.name = std::move(name);
  prog.string_pool = f.strings;
  prog.local_count = f.local_count;
  prog.code.reserve(offset);

  auto emit_u8 = [&](std::uint8_t v) {
    prog.code.push_back(std::byte{v});
  };
  auto emit_u16 = [&](std::uint16_t v) {
    emit_u8(static_cast<std::uint8_t>(v));
    emit_u8(static_cast<std::uint8_t>(v >> 8));
  };
  auto emit_u32 = [&](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) emit_u8(static_cast<std::uint8_t>(v >> (8 * i)));
  };
  auto emit_i64 = [&](std::int64_t v) {
    auto u = static_cast<std::uint64_t>(v);
    for (int i = 0; i < 8; ++i) emit_u8(static_cast<std::uint8_t>(u >> (8 * i)));
  };

  for (const IrInst& inst : f.insts) {
    if (inst.op == IrOp::kLabel) continue;
    emit_u8(static_cast<std::uint8_t>(to_bytecode_op(inst.op)));
    switch (inst.op) {
      case IrOp::kConst: emit_i64(inst.imm); break;
      case IrOp::kConstStr: emit_u32(inst.aux); break;
      case IrOp::kLoad:
      case IrOp::kStore:
        emit_u16(static_cast<std::uint16_t>(inst.aux));
        break;
      case IrOp::kJmp:
      case IrOp::kJz:
      case IrOp::kJnz: {
        std::size_t after = prog.code.size() + 4;
        auto rel = static_cast<std::int32_t>(
            static_cast<std::int64_t>(label_offset.at(inst.aux)) -
            static_cast<std::int64_t>(after));
        emit_u32(static_cast<std::uint32_t>(rel));
        break;
      }
      case IrOp::kIntrinsic:
        emit_u8(static_cast<std::uint8_t>(inst.aux));
        emit_u8(static_cast<std::uint8_t>(inst.aux2));
        break;
      default:
        break;
    }
  }
  return prog;
}

std::string OptStats::to_string() const {
  std::ostringstream os;
  os << constants_folded << " folded, " << branches_folded
     << " branches folded, " << propagated_loads << " loads propagated, "
     << dead_removed << " dead insts removed, " << slots_compacted
     << " slots compacted";
  return os.str();
}

std::string to_string(const IrFunction& f) {
  std::ostringstream os;
  os << "; " << f.local_count << " locals, " << f.strings.size()
     << " strings\n";
  for (const IrInst& inst : f.insts) {
    switch (inst.op) {
      case IrOp::kLabel: os << "L" << inst.aux << ":"; break;
      case IrOp::kConst: os << "  const " << inst.imm; break;
      case IrOp::kConstStr:
        os << "  const_str #" << inst.aux;
        if (inst.aux < f.strings.size()) {
          os << " \"" << f.strings[inst.aux] << '"';
        }
        break;
      case IrOp::kLoad: os << "  load $" << inst.aux; break;
      case IrOp::kStore: os << "  store $" << inst.aux; break;
      case IrOp::kAdd: os << "  add"; break;
      case IrOp::kSub: os << "  sub"; break;
      case IrOp::kMul: os << "  mul"; break;
      case IrOp::kDiv: os << "  div"; break;
      case IrOp::kMod: os << "  mod"; break;
      case IrOp::kNeg: os << "  neg"; break;
      case IrOp::kEq: os << "  eq"; break;
      case IrOp::kNe: os << "  ne"; break;
      case IrOp::kLt: os << "  lt"; break;
      case IrOp::kLe: os << "  le"; break;
      case IrOp::kGt: os << "  gt"; break;
      case IrOp::kGe: os << "  ge"; break;
      case IrOp::kBitAnd: os << "  and"; break;
      case IrOp::kBitOr: os << "  or"; break;
      case IrOp::kBitXor: os << "  xor"; break;
      case IrOp::kShl: os << "  shl"; break;
      case IrOp::kShr: os << "  shr"; break;
      case IrOp::kBitNot: os << "  not"; break;
      case IrOp::kLogicalNot: os << "  lnot"; break;
      case IrOp::kJmp: os << "  jmp L" << inst.aux; break;
      case IrOp::kJz: os << "  jz L" << inst.aux; break;
      case IrOp::kJnz: os << "  jnz L" << inst.aux; break;
      case IrOp::kDup: os << "  dup"; break;
      case IrOp::kPop: os << "  pop"; break;
      case IrOp::kIntrinsic:
        os << "  intrinsic "
           << intrinsic_info(static_cast<Intrinsic>(inst.aux)).name << "/"
           << inst.aux2;
        break;
      case IrOp::kRet: os << "  ret"; break;
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace sdvm::microc
