#include "microc/lexer.hpp"

#include <cctype>
#include <unordered_map>

namespace sdvm::microc {

const char* to_string(Tok t) {
  switch (t) {
    case Tok::kEof:      return "<eof>";
    case Tok::kInt:      return "<int>";
    case Tok::kString:   return "<string>";
    case Tok::kIdent:    return "<ident>";
    case Tok::kVar:      return "var";
    case Tok::kIf:       return "if";
    case Tok::kElse:     return "else";
    case Tok::kWhile:    return "while";
    case Tok::kFor:      return "for";
    case Tok::kBreak:    return "break";
    case Tok::kContinue: return "continue";
    case Tok::kReturn:   return "return";
    case Tok::kLParen:   return "(";
    case Tok::kRParen:   return ")";
    case Tok::kLBrace:   return "{";
    case Tok::kRBrace:   return "}";
    case Tok::kComma:    return ",";
    case Tok::kSemi:     return ";";
    case Tok::kAssign:   return "=";
    case Tok::kPlus:     return "+";
    case Tok::kMinus:    return "-";
    case Tok::kStar:     return "*";
    case Tok::kSlash:    return "/";
    case Tok::kPercent:  return "%";
    case Tok::kEq:       return "==";
    case Tok::kNe:       return "!=";
    case Tok::kLt:       return "<";
    case Tok::kLe:       return "<=";
    case Tok::kGt:       return ">";
    case Tok::kGe:       return ">=";
    case Tok::kAmpAmp:   return "&&";
    case Tok::kPipePipe: return "||";
    case Tok::kBang:     return "!";
    case Tok::kAmp:      return "&";
    case Tok::kPipe:     return "|";
    case Tok::kCaret:    return "^";
    case Tok::kShl:      return "<<";
    case Tok::kShr:      return ">>";
    case Tok::kTilde:    return "~";
  }
  return "?";
}

namespace {
const std::unordered_map<std::string_view, Tok>& keywords() {
  static const std::unordered_map<std::string_view, Tok> kw = {
      {"var", Tok::kVar},
      {"if", Tok::kIf},
      {"else", Tok::kElse},
      {"while", Tok::kWhile},
      {"for", Tok::kFor},
      {"break", Tok::kBreak},
      {"continue", Tok::kContinue},
      {"return", Tok::kReturn},
  };
  return kw;
}
}  // namespace

std::vector<Token> lex(std::string_view src) {
  std::vector<Token> out;
  std::size_t i = 0;
  int line = 1;
  int col = 1;

  auto peek = [&](std::size_t k = 0) -> char {
    return i + k < src.size() ? src[i + k] : '\0';
  };
  auto advance = [&]() -> char {
    char c = src[i++];
    if (c == '\n') {
      ++line;
      col = 1;
    } else {
      ++col;
    }
    return c;
  };
  auto fail = [&](std::string msg) -> void {
    throw LexError(CompileError{std::move(msg), line, col});
  };
  auto push = [&](Tok kind, int l, int c) {
    Token t;
    t.kind = kind;
    t.line = l;
    t.column = c;
    out.push_back(std::move(t));
  };

  while (i < src.size()) {
    char c = peek();
    // Whitespace.
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      advance();
      continue;
    }
    // Comments: // to end of line, /* ... */.
    if (c == '/' && peek(1) == '/') {
      while (i < src.size() && peek() != '\n') advance();
      continue;
    }
    if (c == '/' && peek(1) == '*') {
      advance();
      advance();
      while (i < src.size() && !(peek() == '*' && peek(1) == '/')) advance();
      if (i >= src.size()) fail("unterminated block comment");
      advance();
      advance();
      continue;
    }

    int tl = line, tc = col;

    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::int64_t v = 0;
      bool overflow = false;
      while (std::isdigit(static_cast<unsigned char>(peek()))) {
        int digit = advance() - '0';
        if (v > (INT64_MAX - digit) / 10) overflow = true;
        if (!overflow) v = v * 10 + digit;
      }
      if (overflow) fail("integer literal overflows int64");
      if (std::isalpha(static_cast<unsigned char>(peek())) || peek() == '_') {
        fail("integer literal followed by identifier character '" +
             std::string(1, peek()) + "'");
      }
      Token t;
      t.kind = Tok::kInt;
      t.int_value = v;
      t.line = tl;
      t.column = tc;
      out.push_back(std::move(t));
      continue;
    }

    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string ident;
      while (std::isalnum(static_cast<unsigned char>(peek())) ||
             peek() == '_') {
        ident.push_back(advance());
      }
      Token t;
      auto it = keywords().find(ident);
      t.kind = it != keywords().end() ? it->second : Tok::kIdent;
      if (t.kind == Tok::kIdent) t.text = std::move(ident);
      t.line = tl;
      t.column = tc;
      out.push_back(std::move(t));
      continue;
    }

    if (c == '"') {
      advance();
      std::string s;
      while (peek() != '"') {
        if (i >= src.size()) fail("unterminated string literal");
        char ch = advance();
        if (ch == '\\') {
          if (i >= src.size()) fail("unterminated string literal");
          char esc = advance();
          switch (esc) {
            case 'n': s.push_back('\n'); break;
            case 't': s.push_back('\t'); break;
            case '"': s.push_back('"'); break;
            case '\\': s.push_back('\\'); break;
            default: fail("unknown escape sequence");
          }
        } else {
          s.push_back(ch);
        }
      }
      advance();
      Token t;
      t.kind = Tok::kString;
      t.text = std::move(s);
      t.line = tl;
      t.column = tc;
      out.push_back(std::move(t));
      continue;
    }

    advance();
    switch (c) {
      case '(': push(Tok::kLParen, tl, tc); break;
      case ')': push(Tok::kRParen, tl, tc); break;
      case '{': push(Tok::kLBrace, tl, tc); break;
      case '}': push(Tok::kRBrace, tl, tc); break;
      case ',': push(Tok::kComma, tl, tc); break;
      case ';': push(Tok::kSemi, tl, tc); break;
      case '+': push(Tok::kPlus, tl, tc); break;
      case '-': push(Tok::kMinus, tl, tc); break;
      case '*': push(Tok::kStar, tl, tc); break;
      case '/': push(Tok::kSlash, tl, tc); break;
      case '%': push(Tok::kPercent, tl, tc); break;
      case '^': push(Tok::kCaret, tl, tc); break;
      case '~': push(Tok::kTilde, tl, tc); break;
      case '=':
        if (peek() == '=') { advance(); push(Tok::kEq, tl, tc); }
        else push(Tok::kAssign, tl, tc);
        break;
      case '!':
        if (peek() == '=') { advance(); push(Tok::kNe, tl, tc); }
        else push(Tok::kBang, tl, tc);
        break;
      case '<':
        if (peek() == '=') { advance(); push(Tok::kLe, tl, tc); }
        else if (peek() == '<') { advance(); push(Tok::kShl, tl, tc); }
        else push(Tok::kLt, tl, tc);
        break;
      case '>':
        if (peek() == '=') { advance(); push(Tok::kGe, tl, tc); }
        else if (peek() == '>') { advance(); push(Tok::kShr, tl, tc); }
        else push(Tok::kGt, tl, tc);
        break;
      case '&':
        if (peek() == '&') { advance(); push(Tok::kAmpAmp, tl, tc); }
        else push(Tok::kAmp, tl, tc);
        break;
      case '|':
        if (peek() == '|') { advance(); push(Tok::kPipePipe, tl, tc); }
        else push(Tok::kPipe, tl, tc);
        break;
      default:
        // Report at the character itself, not the post-advance position.
        throw LexError(CompileError{
            std::string("unexpected character '") + c + "'", tl, tc});
    }
  }

  Token eof;
  eof.kind = Tok::kEof;
  eof.line = line;
  eof.column = col;
  out.push_back(std::move(eof));
  return out;
}

}  // namespace sdvm::microc
