// Typechecker pass: runs between the parser and the lowering stage.
//
// Responsibilities (paper §3.4 — a site that receives MicroC source must
// be able to reject a bad program with a diagnostic the code manager can
// ship back to the submitting site):
//   * name resolution with lexical block scoping — every variable
//     reference is bound to a compile-time local slot, so the runtime
//     never does a name lookup (slots are reused when disjoint scopes
//     end, keeping microframe locals arrays small);
//   * type checking over MicroC's three types (int, string, void):
//     operator operands, intrinsic signatures, conditions, initializers;
//   * arity checking of intrinsic calls;
//   * structural checks (break/continue outside a loop).
//
// Every error carries a precise line:column position and, where a type is
// involved, an expected-vs-actual message.
#pragma once

#include <cstdint>
#include <exception>

#include "microc/ast.hpp"
#include "microc/lexer.hpp"

namespace sdvm::microc {

class TypeError : public std::exception {
 public:
  explicit TypeError(CompileError e) : error(std::move(e)) {}
  const char* what() const noexcept override { return error.message.c_str(); }
  CompileError error;
};

struct TypeckResult {
  /// High-water mark of simultaneously-live locals: the size of the
  /// microframe's locals array.
  std::uint16_t local_count = 0;
};

/// Typechecks and annotates `unit` in place (expression types, resolved
/// local slots, resolved intrinsics). Throws TypeError on the first
/// violation.
TypeckResult typecheck(Unit& unit);

}  // namespace sdvm::microc
