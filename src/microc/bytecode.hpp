// Bytecode for the MicroC stack machine. A compiled Program is the
// "platform-specific binary" of the SDVM code manager: it is what travels
// between sites, tagged with the compiling site's platform id.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/serialize.hpp"
#include "common/status.hpp"

namespace sdvm::microc {

enum class Op : std::uint8_t {
  kPushInt = 0,   // imm64: push constant
  kPushStr,       // u32: push string-pool index
  kLoadLocal,     // u16: push local slot
  kStoreLocal,    // u16: pop into local slot
  kAdd, kSub, kMul, kDiv, kMod, kNeg,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kBitAnd, kBitOr, kBitXor, kShl, kShr, kBitNot,
  kLogicalNot,
  kJmp,           // i32: relative jump (from next instruction)
  kJz,            // i32: pop; jump if zero
  kJnz,           // i32: pop; jump if nonzero
  kDup,           // duplicate top of stack (short-circuit &&/||)
  kPop,
  kIntrinsic,     // u8 intrinsic id, u8 argc: pops argc args, may push result
  kReturn,
};

/// SDVM intrinsics callable from MicroC. These are "the specific commands
/// extending the used programming language" of paper §3.1 — the only
/// interface between an application and the SDVM.
enum class Intrinsic : std::uint8_t {
  kParam = 0,   // param(i) -> int64 parameter i of the current microframe
  kNumParams,   // nparams() -> int64
  kSpawn,       // spawn("thread-name", nparams) -> frame global address
  kSend,        // send(frame_addr, slot, value)
  kAlloc,       // alloc(nwords) -> global address of int64[nwords]
  kLoad,        // load(addr, index) -> int64
  kStore,       // store(addr, index, value)
  kOut,         // out(value): integer to the I/O manager / frontend
  kOutStr,      // outs("text")
  kCharge,      // charge(cycles): sim-mode cost accounting
  kSelfSite,    // selfsite() -> the executing site's logical id
  kArg,         // arg(i) -> int64 program argument i (start parameters)
  kNumArgs,     // nargs() -> int64
  kExit,        // exit(code): terminate the whole program, cluster-wide
  kSpawnP,      // spawnp("name", nparams, priority) -> frame address
                // (scheduling hint attached to the microframe, §3.3)
};

struct IntrinsicInfo {
  Intrinsic id;
  const char* name;
  int arity;
  bool returns_value;
  /// Per-argument types for the typechecker: 'i' = int, 's' = string
  /// literal. Exactly `arity` characters.
  const char* arg_types;
};

/// Table of all intrinsics; nullptr-name terminated lookup by name.
[[nodiscard]] const IntrinsicInfo* find_intrinsic(const std::string& name);
[[nodiscard]] const IntrinsicInfo& intrinsic_info(Intrinsic id);

/// A compiled microthread body.
struct Program {
  std::string name;                     // microthread name (diagnostics)
  std::vector<std::byte> code;          // linear bytecode
  std::vector<std::string> string_pool; // string literals
  std::uint16_t local_count = 0;

  [[nodiscard]] std::vector<std::byte> serialize() const;
  [[nodiscard]] static Result<Program> deserialize(
      std::span<const std::byte> bytes);

  friend bool operator==(const Program&, const Program&) = default;
};

/// Human-readable listing, for tests and the `sdvm-mcc` tool.
[[nodiscard]] std::string disassemble(const Program& p);

}  // namespace sdvm::microc
