#include "microc/typecheck.hpp"

#include <string>
#include <vector>

#include "microc/bytecode.hpp"

namespace sdvm::microc {

namespace {

/// Compile-time variable manager: a scope stack binding names to local
/// slots. Slots are assigned on declaration and released when the scope
/// ends, so variables in disjoint blocks share storage; `high_water()` is
/// the locals-array size the microframe needs.
class VarManager {
 public:
  void push_scope() { scopes_.emplace_back(); }

  void pop_scope() {
    next_slot_ -= static_cast<std::int32_t>(scopes_.back().size());
    scopes_.pop_back();
  }

  /// Declares `name` in the innermost scope. Returns the slot, or -1 if
  /// the name is already declared in this scope (shadowing an outer scope
  /// is allowed; redeclaring within the same scope is not).
  std::int32_t declare(const std::string& name) {
    for (const auto& [n, s] : scopes_.back()) {
      if (n == name) return -1;
    }
    std::int32_t slot = next_slot_++;
    if (next_slot_ > high_water_) high_water_ = next_slot_;
    scopes_.back().emplace_back(name, slot);
    return slot;
  }

  /// Innermost binding of `name`, or -1 if undeclared.
  [[nodiscard]] std::int32_t lookup(const std::string& name) const {
    for (auto scope = scopes_.rbegin(); scope != scopes_.rend(); ++scope) {
      for (auto it = scope->rbegin(); it != scope->rend(); ++it) {
        if (it->first == name) return it->second;
      }
    }
    return -1;
  }

  [[nodiscard]] std::int32_t high_water() const { return high_water_; }

 private:
  std::vector<std::vector<std::pair<std::string, std::int32_t>>> scopes_;
  std::int32_t next_slot_ = 0;
  std::int32_t high_water_ = 0;
};

class Typechecker {
 public:
  TypeckResult check(Unit& unit) {
    vars_.push_scope();
    for (auto& s : unit.statements) check_stmt(*s);
    vars_.pop_scope();
    TypeckResult r;
    if (vars_.high_water() > 0xFFFF) {
      throw TypeError(CompileError{"too many locals", 0, 0});
    }
    r.local_count = static_cast<std::uint16_t>(vars_.high_water());
    return r;
  }

 private:
  [[noreturn]] static void fail(int line, int column, std::string msg) {
    throw TypeError(CompileError{std::move(msg), line, column});
  }

  static Type char_type(char c) { return c == 's' ? Type::kStr : Type::kInt; }

  void check_stmt(Stmt& s) {
    switch (s.kind) {
      case StmtKind::kVarDecl: {
        Type t = check_expr(*s.expr);
        if (t != Type::kInt) {
          fail(s.expr->line, s.expr->column,
               "cannot initialize variable '" + s.name +
                   "': expected int, got " + to_string(t));
        }
        std::int32_t slot = vars_.declare(s.name);
        if (slot < 0) {
          fail(s.line, s.column, "redeclaration of '" + s.name + "'");
        }
        s.slot = slot;
        break;
      }
      case StmtKind::kAssign: {
        std::int32_t slot = vars_.lookup(s.name);
        if (slot < 0) {
          fail(s.line, s.column,
               "use of undeclared variable '" + s.name + "'");
        }
        Type t = check_expr(*s.expr);
        if (t != Type::kInt) {
          fail(s.expr->line, s.expr->column,
               "cannot assign to '" + s.name + "': expected int, got " +
                   to_string(t));
        }
        s.slot = slot;
        break;
      }
      case StmtKind::kIf: {
        check_cond(*s.expr, "if");
        vars_.push_scope();
        for (auto& b : s.body) check_stmt(*b);
        vars_.pop_scope();
        vars_.push_scope();
        for (auto& b : s.else_body) check_stmt(*b);
        vars_.pop_scope();
        break;
      }
      case StmtKind::kWhile: {
        check_cond(*s.expr, "while");
        ++loop_depth_;
        vars_.push_scope();
        for (auto& b : s.body) check_stmt(*b);
        vars_.pop_scope();
        --loop_depth_;
        break;
      }
      case StmtKind::kFor: {
        // The init declaration scopes over the condition, step and body.
        vars_.push_scope();
        if (s.init) check_stmt(*s.init);
        if (s.expr) check_cond(*s.expr, "for");
        ++loop_depth_;
        vars_.push_scope();
        for (auto& b : s.body) check_stmt(*b);
        vars_.pop_scope();
        --loop_depth_;
        if (s.step) check_stmt(*s.step);
        vars_.pop_scope();
        break;
      }
      case StmtKind::kBreak:
        if (loop_depth_ == 0) {
          fail(s.line, s.column, "'break' outside a loop");
        }
        break;
      case StmtKind::kContinue:
        if (loop_depth_ == 0) {
          fail(s.line, s.column, "'continue' outside a loop");
        }
        break;
      case StmtKind::kReturn:
        break;
      case StmtKind::kExpr: {
        Type t = check_expr(*s.expr);
        if (t == Type::kStr) {
          fail(s.expr->line, s.expr->column,
               "string literal only allowed as intrinsic argument");
        }
        break;
      }
    }
  }

  void check_cond(Expr& e, const char* what) {
    Type t = check_expr(e);
    if (t != Type::kInt) {
      fail(e.line, e.column, std::string(what) +
                                 " condition: expected int, got " +
                                 to_string(t));
    }
  }

  Type check_expr(Expr& e) {
    switch (e.kind) {
      case ExprKind::kIntLiteral:
        return e.type = Type::kInt;
      case ExprKind::kStringLiteral:
        return e.type = Type::kStr;
      case ExprKind::kVariable: {
        std::int32_t slot = vars_.lookup(e.name);
        if (slot < 0) {
          fail(e.line, e.column,
               "use of undeclared variable '" + e.name + "'");
        }
        e.slot = slot;
        return e.type = Type::kInt;
      }
      case ExprKind::kUnary: {
        Type t = check_expr(*e.children[0]);
        if (t != Type::kInt) {
          fail(e.line, e.column,
               std::string("operand of unary '") + to_string(e.op) +
                   "': expected int, got " + to_string(t));
        }
        return e.type = Type::kInt;
      }
      case ExprKind::kBinary: {
        for (int side = 0; side < 2; ++side) {
          Type t = check_expr(*e.children[static_cast<std::size_t>(side)]);
          if (t != Type::kInt) {
            const Expr& c = *e.children[static_cast<std::size_t>(side)];
            fail(c.line, c.column,
                 std::string(side == 0 ? "left" : "right") +
                     " operand of '" + to_string(e.op) +
                     "': expected int, got " + to_string(t));
          }
        }
        return e.type = Type::kInt;
      }
      case ExprKind::kCall:
        return check_call(e);
    }
    fail(e.line, e.column, "unreachable expression kind");
  }

  Type check_call(Expr& e) {
    const IntrinsicInfo* info = find_intrinsic(e.name);
    if (info == nullptr) {
      fail(e.line, e.column,
           "unknown function '" + e.name + "' (MicroC has intrinsics only)");
    }
    if (static_cast<int>(e.children.size()) != info->arity) {
      fail(e.line, e.column,
           "'" + e.name + "' expects " + std::to_string(info->arity) +
               " argument(s), got " + std::to_string(e.children.size()));
    }
    for (std::size_t i = 0; i < e.children.size(); ++i) {
      Type want = char_type(info->arg_types[i]);
      Type got = check_expr(*e.children[i]);
      if (got != want) {
        const Expr& c = *e.children[i];
        fail(c.line, c.column,
             "'" + e.name + "' argument " + std::to_string(i + 1) +
                 ": expected " + to_string(want) + ", got " + to_string(got));
      }
    }
    e.intrinsic = info;
    return e.type = info->returns_value ? Type::kInt : Type::kVoid;
  }

  VarManager vars_;
  int loop_depth_ = 0;
};

}  // namespace

TypeckResult typecheck(Unit& unit) { return Typechecker{}.check(unit); }

}  // namespace sdvm::microc
