#include "microc/ast.hpp"

#include <sstream>

#include "microc/bytecode.hpp"

namespace sdvm::microc {

const char* to_string(Type t) {
  switch (t) {
    case Type::kInt: return "int";
    case Type::kStr: return "string";
    case Type::kVoid: return "void";
  }
  return "?";
}

namespace {

void dump_expr(std::ostringstream& os, const Expr& e, int depth) {
  os << std::string(static_cast<std::size_t>(depth) * 2, ' ');
  switch (e.kind) {
    case ExprKind::kIntLiteral:
      os << "int " << e.int_value << "\n";
      return;
    case ExprKind::kStringLiteral:
      os << "string \"" << e.name << "\"\n";
      return;
    case ExprKind::kVariable:
      os << "var " << e.name;
      if (e.slot >= 0) os << " [slot " << e.slot << "]";
      os << "\n";
      return;
    case ExprKind::kUnary:
      os << "unary " << to_string(e.op) << "\n";
      break;
    case ExprKind::kBinary:
      os << "binary " << to_string(e.op) << "\n";
      break;
    case ExprKind::kCall:
      os << "call " << e.name;
      if (e.intrinsic != nullptr) {
        os << " -> " << to_string(e.type);
      }
      os << "\n";
      break;
  }
  for (const auto& c : e.children) dump_expr(os, *c, depth + 1);
}

void dump_stmt(std::ostringstream& os, const Stmt& s, int depth) {
  std::string pad(static_cast<std::size_t>(depth) * 2, ' ');
  os << pad;
  switch (s.kind) {
    case StmtKind::kVarDecl:
      os << "decl " << s.name;
      if (s.slot >= 0) os << " [slot " << s.slot << "]";
      os << " (line " << s.line << ")\n";
      dump_expr(os, *s.expr, depth + 1);
      return;
    case StmtKind::kAssign:
      os << "assign " << s.name;
      if (s.slot >= 0) os << " [slot " << s.slot << "]";
      os << " (line " << s.line << ")\n";
      dump_expr(os, *s.expr, depth + 1);
      return;
    case StmtKind::kIf:
      os << "if (line " << s.line << ")\n";
      dump_expr(os, *s.expr, depth + 1);
      os << pad << "then:\n";
      for (const auto& b : s.body) dump_stmt(os, *b, depth + 1);
      if (!s.else_body.empty()) {
        os << pad << "else:\n";
        for (const auto& b : s.else_body) dump_stmt(os, *b, depth + 1);
      }
      return;
    case StmtKind::kWhile:
      os << "while (line " << s.line << ")\n";
      dump_expr(os, *s.expr, depth + 1);
      for (const auto& b : s.body) dump_stmt(os, *b, depth + 1);
      return;
    case StmtKind::kFor:
      os << "for (line " << s.line << ")\n";
      if (s.init) dump_stmt(os, *s.init, depth + 1);
      if (s.expr) dump_expr(os, *s.expr, depth + 1);
      if (s.step) dump_stmt(os, *s.step, depth + 1);
      for (const auto& b : s.body) dump_stmt(os, *b, depth + 1);
      return;
    case StmtKind::kBreak: os << "break\n"; return;
    case StmtKind::kContinue: os << "continue\n"; return;
    case StmtKind::kReturn: os << "return\n"; return;
    case StmtKind::kExpr:
      os << "expr (line " << s.line << ")\n";
      dump_expr(os, *s.expr, depth + 1);
      return;
  }
}

}  // namespace

std::string dump_ast(const Unit& unit) {
  std::ostringstream os;
  for (const auto& s : unit.statements) dump_stmt(os, *s, 0);
  return os.str();
}

}  // namespace sdvm::microc
