#include "microc/vm.hpp"

#if defined(__GNUC__) || defined(__clang__)
#define SDVM_VM_HAVE_COMPUTED_GOTO 1
#endif

namespace sdvm::microc {

namespace {

class TrapError : public std::exception {
 public:
  explicit TrapError(std::string msg) : msg_(std::move(msg)) {}
  const char* what() const noexcept override { return msg_.c_str(); }

 private:
  std::string msg_;
};

// Explicitly wrapping arithmetic: defined behavior on overflow, matching
// what the optimizer's constant folder computes.
inline std::int64_t vm_add(std::int64_t a, std::int64_t b) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) +
                                   static_cast<std::uint64_t>(b));
}
inline std::int64_t vm_sub(std::int64_t a, std::int64_t b) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) -
                                   static_cast<std::uint64_t>(b));
}
inline std::int64_t vm_mul(std::int64_t a, std::int64_t b) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) *
                                   static_cast<std::uint64_t>(b));
}
inline std::int64_t vm_neg(std::int64_t a) {
  return static_cast<std::int64_t>(-static_cast<std::uint64_t>(a));
}

#ifdef SDVM_VM_HAVE_COMPUTED_GOTO
#define VM_USE_GOTO 1
VmResult run_direct(const DecodedProgram& d, const Program& p,
                    IntrinsicHandler& handler, std::uint64_t step_limit) {
#include "vm_loop.inc"
}
#undef VM_USE_GOTO
#endif

VmResult run_switch(const DecodedProgram& d, const Program& p,
                    IntrinsicHandler& handler, std::uint64_t step_limit) {
#include "vm_loop.inc"
}

}  // namespace

bool Vm::has_computed_goto() {
#ifdef SDVM_VM_HAVE_COMPUTED_GOTO
  return true;
#else
  return false;
#endif
}

VmResult Vm::run(const DecodedProgram& decoded, const Program& program,
                 IntrinsicHandler& handler, std::uint64_t step_limit,
                 DispatchMode mode) {
  switch (mode) {
    case DispatchMode::kLegacy:
      return run_legacy(program, handler, step_limit);
    case DispatchMode::kSwitch:
      return run_switch(decoded, program, handler, step_limit);
    case DispatchMode::kDirect:
    default:
#ifdef SDVM_VM_HAVE_COMPUTED_GOTO
      return run_direct(decoded, program, handler, step_limit);
#else
      return run_switch(decoded, program, handler, step_limit);
#endif
  }
}

VmResult Vm::run(const Program& program, IntrinsicHandler& handler,
                 std::uint64_t step_limit) {
  auto decoded = decode(program);
  if (!decoded.is_ok()) {
    return {Status::error(ErrorCode::kInternal,
                          "microthread '" + program.name +
                              "' trapped: " + decoded.status().message()),
            0};
  }
  return run(decoded.value(), program, handler, step_limit);
}

// ---------------------------------------------------------------------------
// Legacy interpreter: the original byte-walking checked loop, unchanged.
// Kept as the pre-refactor baseline so bench/overhead_sequential can
// measure the decode+threading win on the same build.
// ---------------------------------------------------------------------------

VmResult Vm::run_legacy(const Program& program, IntrinsicHandler& handler,
                        std::uint64_t step_limit) {
  const std::byte* code = program.code.data();
  const std::size_t code_size = program.code.size();
  std::size_t pc = 0;
  std::vector<std::int64_t> stack;
  stack.reserve(32);
  std::vector<std::int64_t> locals(program.local_count, 0);
  std::uint64_t steps = 0;

  auto read_u8 = [&]() -> std::uint8_t {
    if (pc >= code_size) throw TrapError("pc past end of code");
    return static_cast<std::uint8_t>(code[pc++]);
  };
  auto read_u16 = [&]() -> std::uint16_t {
    std::uint16_t lo = read_u8();
    std::uint16_t hi = read_u8();
    return static_cast<std::uint16_t>(lo | (hi << 8));
  };
  auto read_u32 = [&]() -> std::uint32_t {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t{read_u8()} << (8 * i);
    return v;
  };
  auto read_i64 = [&]() -> std::int64_t {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t{read_u8()} << (8 * i);
    return static_cast<std::int64_t>(v);
  };
  auto pop = [&]() -> std::int64_t {
    if (stack.empty()) throw TrapError("stack underflow");
    std::int64_t v = stack.back();
    stack.pop_back();
    return v;
  };

  try {
    while (pc < code_size) {
      if (++steps > step_limit) {
        return {Status::error(ErrorCode::kResourceExhausted,
                              "microthread '" + program.name +
                                  "' exceeded step limit"),
                steps};
      }
      Op op = static_cast<Op>(read_u8());
      switch (op) {
        case Op::kPushInt: stack.push_back(read_i64()); break;
        case Op::kPushStr: stack.push_back(read_u32()); break;
        case Op::kLoadLocal: {
          std::uint16_t slot = read_u16();
          if (slot >= locals.size()) throw TrapError("bad local slot");
          stack.push_back(locals[slot]);
          break;
        }
        case Op::kStoreLocal: {
          std::uint16_t slot = read_u16();
          if (slot >= locals.size()) throw TrapError("bad local slot");
          locals[slot] = pop();
          break;
        }
        case Op::kAdd: { auto b = pop(), a = pop(); stack.push_back(vm_add(a, b)); break; }
        case Op::kSub: { auto b = pop(), a = pop(); stack.push_back(vm_sub(a, b)); break; }
        case Op::kMul: { auto b = pop(), a = pop(); stack.push_back(vm_mul(a, b)); break; }
        case Op::kDiv: {
          auto b = pop(), a = pop();
          if (b == 0) throw TrapError("division by zero");
          if (a == INT64_MIN && b == -1) throw TrapError("division overflow");
          stack.push_back(a / b);
          break;
        }
        case Op::kMod: {
          auto b = pop(), a = pop();
          if (b == 0) throw TrapError("modulo by zero");
          if (a == INT64_MIN && b == -1) throw TrapError("modulo overflow");
          stack.push_back(a % b);
          break;
        }
        case Op::kNeg: stack.push_back(vm_neg(pop())); break;
        case Op::kEq: { auto b = pop(), a = pop(); stack.push_back(a == b); break; }
        case Op::kNe: { auto b = pop(), a = pop(); stack.push_back(a != b); break; }
        case Op::kLt: { auto b = pop(), a = pop(); stack.push_back(a < b); break; }
        case Op::kLe: { auto b = pop(), a = pop(); stack.push_back(a <= b); break; }
        case Op::kGt: { auto b = pop(), a = pop(); stack.push_back(a > b); break; }
        case Op::kGe: { auto b = pop(), a = pop(); stack.push_back(a >= b); break; }
        case Op::kBitAnd: { auto b = pop(), a = pop(); stack.push_back(a & b); break; }
        case Op::kBitOr: { auto b = pop(), a = pop(); stack.push_back(a | b); break; }
        case Op::kBitXor: { auto b = pop(), a = pop(); stack.push_back(a ^ b); break; }
        case Op::kShl: {
          auto b = pop(), a = pop();
          if (b < 0 || b > 63) throw TrapError("shift out of range");
          stack.push_back(static_cast<std::int64_t>(
              static_cast<std::uint64_t>(a) << b));
          break;
        }
        case Op::kShr: {
          auto b = pop(), a = pop();
          if (b < 0 || b > 63) throw TrapError("shift out of range");
          stack.push_back(static_cast<std::int64_t>(
              static_cast<std::uint64_t>(a) >> b));
          break;
        }
        case Op::kBitNot: stack.push_back(~pop()); break;
        case Op::kLogicalNot: stack.push_back(pop() == 0 ? 1 : 0); break;
        case Op::kJmp: {
          auto rel = static_cast<std::int32_t>(read_u32());
          pc = static_cast<std::size_t>(static_cast<std::int64_t>(pc) + rel);
          if (pc > code_size) throw TrapError("jump out of range");
          break;
        }
        case Op::kJz: {
          auto rel = static_cast<std::int32_t>(read_u32());
          if (pop() == 0) {
            pc = static_cast<std::size_t>(static_cast<std::int64_t>(pc) + rel);
            if (pc > code_size) throw TrapError("jump out of range");
          }
          break;
        }
        case Op::kJnz: {
          auto rel = static_cast<std::int32_t>(read_u32());
          if (pop() != 0) {
            pc = static_cast<std::size_t>(static_cast<std::int64_t>(pc) + rel);
            if (pc > code_size) throw TrapError("jump out of range");
          }
          break;
        }
        case Op::kDup: {
          if (stack.empty()) throw TrapError("stack underflow");
          stack.push_back(stack.back());
          break;
        }
        case Op::kPop: (void)pop(); break;
        case Op::kIntrinsic: {
          auto id = static_cast<Intrinsic>(read_u8());
          std::uint8_t argc = read_u8();
          if (stack.size() < argc) throw TrapError("stack underflow in call");
          std::int64_t a[3] = {0, 0, 0};
          for (int i = argc - 1; i >= 0; --i) a[i] = pop();
          auto pool_str = [&](std::int64_t idx) -> const std::string& {
            if (idx < 0 ||
                static_cast<std::size_t>(idx) >= program.string_pool.size()) {
              throw TrapError("bad string pool index");
            }
            return program.string_pool[static_cast<std::size_t>(idx)];
          };
          switch (id) {
            case Intrinsic::kParam: stack.push_back(handler.param(a[0])); break;
            case Intrinsic::kNumParams: stack.push_back(handler.num_params()); break;
            case Intrinsic::kSpawn:
              stack.push_back(handler.spawn(pool_str(a[0]), a[1]));
              break;
            case Intrinsic::kSend: handler.send(a[0], a[1], a[2]); break;
            case Intrinsic::kAlloc: stack.push_back(handler.alloc(a[0])); break;
            case Intrinsic::kLoad: stack.push_back(handler.load(a[0], a[1])); break;
            case Intrinsic::kStore: handler.store(a[0], a[1], a[2]); break;
            case Intrinsic::kOut: handler.out(a[0]); break;
            case Intrinsic::kOutStr: handler.out_str(pool_str(a[0])); break;
            case Intrinsic::kCharge: handler.charge(a[0]); break;
            case Intrinsic::kSelfSite: stack.push_back(handler.self_site()); break;
            case Intrinsic::kArg: stack.push_back(handler.arg(a[0])); break;
            case Intrinsic::kNumArgs: stack.push_back(handler.num_args()); break;
            case Intrinsic::kExit: handler.exit_program(a[0]); break;
            case Intrinsic::kSpawnP:
              stack.push_back(handler.spawn_prio(pool_str(a[0]), a[1], a[2]));
              break;
            default:
              throw TrapError("unknown intrinsic");
          }
          break;
        }
        case Op::kReturn:
          return {Status::ok(), steps};
        default:
          throw TrapError("illegal opcode");
      }
    }
    return {Status::ok(), steps};
  } catch (const TrapError& e) {
    return {Status::error(ErrorCode::kInternal,
                          "microthread '" + program.name + "' trapped: " +
                              e.what() + " (pc=" + std::to_string(pc) + ")"),
            steps};
  } catch (const IntrinsicError& e) {
    return {Status::error(ErrorCode::kUnavailable,
                          "microthread '" + program.name +
                              "' aborted in intrinsic: " + e.what()),
            steps};
  }
}

}  // namespace sdvm::microc
