#pragma once

#include <string_view>

#include "microc/ast.hpp"
#include "microc/lexer.hpp"

namespace sdvm::microc {

class ParseError : public std::exception {
 public:
  explicit ParseError(CompileError e) : error(std::move(e)) {}
  const char* what() const noexcept override { return error.message.c_str(); }
  CompileError error;
};

/// Parses one microthread source unit. Throws LexError / ParseError.
[[nodiscard]] Unit parse(std::string_view source);

}  // namespace sdvm::microc
