// Linear stack IR between the typed AST and bytecode emission.
//
// The IR mirrors the bytecode's stack discipline but uses symbolic labels
// instead of byte offsets, which is what makes rewriting safe: optimizer
// passes insert and delete instructions freely and only the final emission
// step resolves labels to relative jumps. Passes:
//
//   lower()     typed AST -> IR (no name lookups; slots were resolved by
//               the typechecker)
//   optimize()  constant folding, block-local constant/copy propagation,
//               algebraic simplification, branch folding, jump threading,
//               dead-code + dead-store elimination, slot compaction
//   emit()      IR -> Program bytecode
//
// Trapping operations (division by zero, INT64_MIN/-1, out-of-range
// shifts) are never folded: the trap is observable behavior and must
// happen at runtime exactly as in unoptimized code.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "microc/ast.hpp"
#include "microc/bytecode.hpp"
#include "microc/typecheck.hpp"

namespace sdvm::microc {

enum class IrOp : std::uint8_t {
  kConst,       // imm: push constant
  kConstStr,    // aux: push string-pool index
  kLoad,        // aux: push local slot
  kStore,       // aux: pop into local slot
  kAdd, kSub, kMul, kDiv, kMod, kNeg,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kBitAnd, kBitOr, kBitXor, kShl, kShr, kBitNot,
  kLogicalNot,
  kLabel,       // aux: label id (no code emitted)
  kJmp, kJz, kJnz,  // aux: label id
  kDup, kPop,
  kIntrinsic,   // aux: intrinsic id, aux2: argc
  kRet,
};

struct IrInst {
  IrOp op;
  std::int64_t imm = 0;
  std::uint32_t aux = 0;
  std::uint32_t aux2 = 0;
  int line = 0;
};

struct IrFunction {
  std::vector<IrInst> insts;
  std::vector<std::string> strings;
  std::uint16_t local_count = 0;
  std::uint32_t next_label = 0;
};

/// What the optimizer did — surfaced by `sdvm-mcc --dump-ir` and the
/// compile-ablation bench so optimizer wins are attributable.
struct OptStats {
  int constants_folded = 0;
  int branches_folded = 0;
  int propagated_loads = 0;
  int dead_removed = 0;
  int slots_compacted = 0;

  [[nodiscard]] std::string to_string() const;
};

/// Lowers a typechecked unit. The unit MUST have been annotated by
/// typecheck() (resolved slots and intrinsics); lowering performs no name
/// resolution of its own.
[[nodiscard]] IrFunction lower(const Unit& unit, const TypeckResult& types);

/// Runs the optimization pipeline in place.
OptStats optimize(IrFunction& f);

/// Emits bytecode, resolving labels to relative jumps.
[[nodiscard]] Program emit(const IrFunction& f, std::string name);

/// Human-readable listing for `sdvm-mcc --dump-ir`.
[[nodiscard]] std::string to_string(const IrFunction& f);

}  // namespace sdvm::microc
