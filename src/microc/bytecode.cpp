#include "microc/bytecode.hpp"

#include <array>
#include <sstream>

namespace sdvm::microc {

namespace {
constexpr std::array<IntrinsicInfo, 15> kIntrinsics = {{
    {Intrinsic::kParam, "param", 1, true, "i"},
    {Intrinsic::kNumParams, "nparams", 0, true, ""},
    {Intrinsic::kSpawn, "spawn", 2, true, "si"},
    {Intrinsic::kSend, "send", 3, false, "iii"},
    {Intrinsic::kAlloc, "alloc", 1, true, "i"},
    {Intrinsic::kLoad, "load", 2, true, "ii"},
    {Intrinsic::kStore, "store", 3, false, "iii"},
    {Intrinsic::kOut, "out", 1, false, "i"},
    {Intrinsic::kOutStr, "outs", 1, false, "s"},
    {Intrinsic::kCharge, "charge", 1, false, "i"},
    {Intrinsic::kSelfSite, "selfsite", 0, true, ""},
    {Intrinsic::kArg, "arg", 1, true, "i"},
    {Intrinsic::kNumArgs, "nargs", 0, true, ""},
    {Intrinsic::kExit, "exit", 1, false, "i"},
    {Intrinsic::kSpawnP, "spawnp", 3, true, "sii"},
}};
}  // namespace

const IntrinsicInfo* find_intrinsic(const std::string& name) {
  for (const auto& info : kIntrinsics) {
    if (name == info.name) return &info;
  }
  return nullptr;
}

const IntrinsicInfo& intrinsic_info(Intrinsic id) {
  return kIntrinsics[static_cast<std::size_t>(id)];
}

std::vector<std::byte> Program::serialize() const {
  ByteWriter w;
  w.str(name);
  w.blob(code);
  w.u32(static_cast<std::uint32_t>(string_pool.size()));
  for (const auto& s : string_pool) w.str(s);
  w.u16(local_count);
  return w.take();
}

Result<Program> Program::deserialize(std::span<const std::byte> bytes) {
  try {
    ByteReader r(bytes);
    Program p;
    p.name = r.str();
    p.code = r.blob();
    std::uint32_t n = r.count(/*min_bytes_each=*/4);
    p.string_pool.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) p.string_pool.push_back(r.str());
    p.local_count = r.u16();
    return p;
  } catch (const DecodeError& e) {
    return Status::error(ErrorCode::kCorrupt,
                         std::string("bad bytecode artifact: ") + e.what());
  }
}

std::string disassemble(const Program& p) {
  std::ostringstream os;
  os << "; microthread '" << p.name << "', " << p.local_count << " locals\n";
  ByteReader r(p.code);
  std::size_t total = p.code.size();
  while (!r.done()) {
    std::size_t pc = total - r.remaining();
    Op op = static_cast<Op>(r.u8());
    os << pc << "\t";
    switch (op) {
      case Op::kPushInt: os << "push " << r.i64(); break;
      case Op::kPushStr: {
        std::uint32_t idx = r.u32();
        os << "pushs #" << idx;
        if (idx < p.string_pool.size()) os << " \"" << p.string_pool[idx] << '"';
        break;
      }
      case Op::kLoadLocal: os << "load_local " << r.u16(); break;
      case Op::kStoreLocal: os << "store_local " << r.u16(); break;
      case Op::kAdd: os << "add"; break;
      case Op::kSub: os << "sub"; break;
      case Op::kMul: os << "mul"; break;
      case Op::kDiv: os << "div"; break;
      case Op::kMod: os << "mod"; break;
      case Op::kNeg: os << "neg"; break;
      case Op::kEq: os << "eq"; break;
      case Op::kNe: os << "ne"; break;
      case Op::kLt: os << "lt"; break;
      case Op::kLe: os << "le"; break;
      case Op::kGt: os << "gt"; break;
      case Op::kGe: os << "ge"; break;
      case Op::kBitAnd: os << "and"; break;
      case Op::kBitOr: os << "or"; break;
      case Op::kBitXor: os << "xor"; break;
      case Op::kShl: os << "shl"; break;
      case Op::kShr: os << "shr"; break;
      case Op::kBitNot: os << "not"; break;
      case Op::kLogicalNot: os << "lnot"; break;
      case Op::kJmp: os << "jmp " << r.i32(); break;
      case Op::kJz: os << "jz " << r.i32(); break;
      case Op::kJnz: os << "jnz " << r.i32(); break;
      case Op::kDup: os << "dup"; break;
      case Op::kPop: os << "pop"; break;
      case Op::kIntrinsic: {
        auto id = static_cast<Intrinsic>(r.u8());
        std::uint8_t argc = r.u8();
        os << "intrinsic " << intrinsic_info(id).name << "/" << int{argc};
        break;
      }
      case Op::kReturn: os << "ret"; break;
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace sdvm::microc
