#pragma once

#include <string_view>

#include "common/status.hpp"
#include "microc/bytecode.hpp"

namespace sdvm::microc {

/// Compiles one MicroC source unit to bytecode. This is the "compile on the
/// fly" operation a site performs when it receives microthread source for a
/// platform it has no binary for. Returns kInvalidArgument with a
/// line:column diagnostic on any lex/parse/semantic error.
[[nodiscard]] Result<Program> compile(std::string_view source,
                                      std::string name);

}  // namespace sdvm::microc
