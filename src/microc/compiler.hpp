#pragma once

#include <string_view>

#include "common/status.hpp"
#include "microc/bytecode.hpp"
#include "microc/lexer.hpp"

namespace sdvm::microc {

struct CompileOptions {
  /// Run the IR optimizer (constant folding, propagation, DCE, slot
  /// compaction). Off = straight lowering, the ablation baseline for the
  /// overhead bench.
  bool optimize = true;
};

/// Intermediate listings captured during compilation, for the `sdvm-mcc`
/// --dump-* flags. Only populated when a non-null pointer is passed.
struct CompileArtifacts {
  std::string ast;        // typed AST after typechecking
  std::string ir;         // IR after optimization (or raw if disabled)
  std::string opt_stats;  // what the optimizer did
};

/// Compiles one MicroC source unit to bytecode. This is the "compile on the
/// fly" operation a site performs when it receives microthread source for a
/// platform it has no binary for. Pipeline: lex -> parse -> typecheck ->
/// lower to IR -> optimize -> emit. Returns kInvalidArgument with a
/// line:column diagnostic on any lex/parse/type error; when `error_out` is
/// non-null the structured error (message + position) is stored there too,
/// so tools can render caret snippets.
[[nodiscard]] Result<Program> compile(std::string_view source,
                                      std::string name,
                                      const CompileOptions& options,
                                      CompileError* error_out = nullptr,
                                      CompileArtifacts* artifacts = nullptr);

[[nodiscard]] Result<Program> compile(std::string_view source,
                                      std::string name);

}  // namespace sdvm::microc
