// Verifying pre-decoder: turns wire bytecode into an array of fixed-width
// decoded instructions the VM can execute with no per-step safety checks.
//
// The wire format (bytecode.hpp) is unchanged — it is what travels between
// sites. Decoding happens once per artifact on the receiving site and:
//
//   * validates every opcode, operand width, local slot, string-pool index
//     and intrinsic id/arity;
//   * resolves relative byte jumps to decoded-instruction indices, checking
//     that every target lands on an instruction boundary;
//   * runs a stack-depth dataflow over the control-flow graph, proving the
//     operand stack never underflows and computing its maximum depth, so
//     the interpreter can use a preallocated unchecked stack;
//   * splits Op::kIntrinsic into one decoded opcode per intrinsic (each
//     gets its own dispatch target) and fuses hot multi-instruction
//     patterns into superinstructions (compare+branch, local increment,
//     paired loads, constant spawn).
//
// Each decoded instruction carries `cost` = the number of wire instructions
// it represents, so VM cycle accounting (the sim-mode cost model) is
// invariant under fusion.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.hpp"
#include "microc/bytecode.hpp"

namespace sdvm::microc {

enum class DOp : std::uint8_t {
  kConst = 0,  // imm
  kConstStr,   // b: string-pool index (validated)
  kLoad,       // a: slot (validated)
  kStore,      // a: slot
  kAdd, kSub, kMul, kDiv, kMod, kNeg,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kBitAnd, kBitOr, kBitXor, kShl, kShr, kBitNot,
  kLogicalNot,
  kJmp,        // b: decoded-instruction index
  kJz, kJnz,   // b: decoded-instruction index
  kDup, kPop,
  kRet,
  // Op::kIntrinsic split per intrinsic — one dispatch target each.
  kParam, kNumParams, kSpawn, kSend, kAlloc, kGlobalLoad, kGlobalStore,
  kOut, kOutStr, kCharge, kSelfSite, kArg, kNumArgs, kExit, kSpawnP,
  // Superinstructions (decode-time fusion; never on the wire).
  kEqJz, kNeJz, kLtJz, kLeJz, kGtJz, kGeJz,  // cmp; Jz  (b: target)
  kIncLocal,   // locals[a] += imm            (Load a; Const; Add; Store a)
  kAddLocals,  // locals[a] += locals[b]      (Load a; Load b; Add; Store a)
  kLoadLoad,   // push locals[a]; push locals[b]
  kSpawnConst, // spawn(pool[b], imm)         (PushStr; PushInt; spawn)
};

inline constexpr int kNumDOps = static_cast<int>(DOp::kSpawnConst) + 1;

struct DInst {
  DOp op;
  std::uint8_t cost;   // wire instructions represented (cycle accounting)
  std::uint16_t a;     // local slot
  std::uint32_t b;     // jump target index / string index / second slot
  std::int64_t imm;    // constant
};

struct DecodedProgram {
  std::vector<DInst> insts;    // always ends with kRet
  std::uint32_t max_stack = 0; // verified operand-stack bound
};

/// Decodes, verifies and fuses `p.code`. kInvalidArgument with a reason on
/// any malformed bytecode; afterwards execution cannot underflow, index out
/// of range, or leave the instruction array.
[[nodiscard]] Result<DecodedProgram> decode(const Program& p,
                                            bool fuse = true);

}  // namespace sdvm::microc
