// Textual program container for the SDVM tools: one file holds all
// microthreads of an application plus its metadata, so a frontend can
// submit work to a running cluster from the command line.
//
// Format — directives start with '#' at column 0; everything between
// `#thread NAME` directives is MicroC source:
//
//     #program my-app
//     #entry main
//     #args 100 10
//     #thread main
//     var w = spawn("worker", 1);
//     send(w, 0, arg(0));
//     #thread worker
//     out(param(0) * 2);
//     exit(0);
#pragma once

#include <string_view>

#include "common/status.hpp"
#include "runtime/program.hpp"

namespace sdvm {

/// Parses the .sdvm program format. Fails with kInvalidArgument and a
/// line-numbered message on malformed input; microthread sources are
/// validated by compiling them.
[[nodiscard]] Result<ProgramSpec> parse_program_file(std::string_view text);

/// Renders a spec back to the file format (sources only — native threads
/// are rejected, they cannot be serialized).
[[nodiscard]] Result<std::string> format_program_file(const ProgramSpec& spec);

}  // namespace sdvm
