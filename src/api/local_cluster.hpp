// LocalCluster: the "threads" deployment mode. Every site is a full SDVM
// daemon with its own engine thread and worker pool, connected over the
// in-process message fabric (optionally with modeled latency and faults).
// Wall-clock time; real parallelism.
#pragma once

#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "api/cluster.hpp"
#include "net/inproc.hpp"
#include "runtime/site.hpp"

namespace sdvm {

class LocalCluster final : public Cluster {
 public:
  struct Options {
    net::LinkModel link;       // default 0 latency: a fast intranet
    std::uint64_t seed = 1;

    Options() {}  // NOLINT: out-of-class default argument needs this
  };

  explicit LocalCluster(Options options = Options{});
  ~LocalCluster() override;

  LocalCluster(const LocalCluster&) = delete;
  LocalCluster& operator=(const LocalCluster&) = delete;

  /// Adds a site (first bootstraps, others join) and blocks until joined.
  Site& add_site(SiteConfig config);
  void add_sites(int n, const SiteConfig& base = {});

  [[nodiscard]] Site& site(std::size_t index) { return *entries_[index]->site; }
  [[nodiscard]] std::size_t size() const override { return entries_.size(); }

  Result<ProgramId> start_program(const ProgramSpec& spec,
                                  std::size_t home_index = 0) override;

  /// Blocks until the program terminates anywhere (timeout in wall nanos,
  /// <0 = forever). Returns the exit code.
  Result<std::int64_t> wait_program(ProgramId pid, Nanos timeout = -1);

  /// Cluster facade: alias for wait_program (wall-clock mode).
  Result<std::int64_t> run(ProgramId pid, Nanos limit = -1) override {
    return wait_program(pid, limit);
  }

  Result<SiteId> sign_off(std::size_t index);
  void kill(std::size_t index);

  [[nodiscard]] std::vector<std::string> outputs(std::size_t frontend_index,
                                                 ProgramId pid);
  [[nodiscard]] net::InProcNetwork& network() { return network_; }
  [[nodiscard]] Site* site_by_id(SiteId id);

  // --- observability facade (the Cluster interface) -----------------------

  /// Unified snapshot of one member site (Site::introspect()).
  [[nodiscard]] Result<SiteStatus> status(std::size_t index = 0) override;

  /// Cluster-wide aggregated snapshot, queried through the site at
  /// `via_index` (kMetricsQuery fan-out). Blocks up to `timeout` wall
  /// nanos; sites that do not answer in time land in `unreachable`.
  [[nodiscard]] Result<ClusterStatus> cluster_status(
      std::size_t via_index = 0, Nanos timeout = 2'000'000'000) override;

  /// Installs a frame-career trace hook on one site (runs under that
  /// site's lock).
  Status install_trace_hook(std::size_t index, FrameTraceHook hook) override;

 private:
  class EngineDriver;
  struct Entry {
    std::unique_ptr<EngineDriver> driver;
    std::unique_ptr<net::InProcEndpoint> endpoint;
    std::unique_ptr<Site> site;
    std::thread engine;
    bool killed = false;
  };

  void engine_loop(Entry* e);

  Options options_;
  net::InProcNetwork network_;
  std::vector<std::unique_ptr<Entry>> entries_;
  std::mutex mu_;
};

}  // namespace sdvm
