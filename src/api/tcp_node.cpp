#include "api/tcp_node.hpp"

#include <chrono>
#include <condition_variable>

namespace sdvm {

class TcpNode::EngineDriver final : public Driver {
 public:
  void request_wakeup(Nanos) override { cv_.notify_all(); }
  void notify_work() override { cv_.notify_all(); }

  void wait(Nanos max_ns) {
    std::unique_lock lk(m_);
    cv_.wait_for(lk, std::chrono::nanoseconds(max_ns));
  }
  void stop() {
    stopping_.store(true);
    cv_.notify_all();
  }
  [[nodiscard]] bool stopping() const { return stopping_.load(); }

 private:
  std::mutex m_;
  std::condition_variable cv_;
  std::atomic<bool> stopping_{false};
};

TcpNode::TcpNode() = default;

Result<std::unique_ptr<TcpNode>> TcpNode::create(Options options) {
  auto node = std::unique_ptr<TcpNode>(new TcpNode());
  node->driver_ = std::make_unique<EngineDriver>();
  node->site_ = std::make_unique<Site>(options.site, WallClock::instance(),
                                       *node->driver_);
  Site* site = node->site_.get();
  auto transport = net::TcpTransport::listen(
      options.port, [site](std::vector<std::byte> bytes) {
        site->on_network_data(std::move(bytes));
      });
  if (!transport.is_ok()) return transport.status();
  node->site_->attach_transport(std::move(transport).value());

  node->engine_ = std::thread([n = node.get()] {
    while (!n->driver_->stopping()) {
      Nanos next = n->site_->pump();
      Nanos sleep = next < 0 ? 2'000'000 : std::min<Nanos>(next, 2'000'000);
      n->driver_->wait(std::max<Nanos>(sleep, 10'000));
    }
  });
  return node;
}

TcpNode::~TcpNode() { shutdown(); }

void TcpNode::bootstrap() { site_->bootstrap(); }

Status TcpNode::join_cluster(const std::string& contact, Nanos timeout) {
  site_->join(contact);
  auto deadline =
      std::chrono::steady_clock::now() + std::chrono::nanoseconds(timeout);
  while (!site_->joined()) {
    if (std::chrono::steady_clock::now() >= deadline) {
      return Status::error(ErrorCode::kUnavailable,
                           "join via " + contact + " timed out");
    }
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  return Status::ok();
}

std::string TcpNode::address() const {
  return site_->transport()->local_address();
}

Result<ProgramId> TcpNode::start_program(const ProgramSpec& spec) {
  return site_->start_program(spec);
}

Result<std::int64_t> TcpNode::wait_program(ProgramId pid, Nanos timeout) {
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::nanoseconds(timeout < 0 ? INT64_MAX : timeout);
  while (true) {
    {
      std::lock_guard lk(site_->lock());
      if (site_->programs().is_terminated(pid)) {
        return site_->programs().exit_code(pid).value_or(0);
      }
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      return Status::error(ErrorCode::kUnavailable,
                           "program did not terminate in time");
    }
    std::this_thread::sleep_for(std::chrono::microseconds(300));
  }
}

Result<SiteStatus> TcpNode::status(std::size_t index) {
  if (index != 0) {
    return Status::error(ErrorCode::kInvalidArgument,
                         "a TcpNode hosts exactly one site (index 0)");
  }
  return site_->introspect();
}

Result<ClusterStatus> TcpNode::cluster_status(std::size_t via_index,
                                              Nanos timeout) {
  if (via_index != 0) {
    return Status::error(ErrorCode::kInvalidArgument,
                         "a TcpNode hosts exactly one site (index 0)");
  }
  struct Waiter {
    std::mutex m;
    std::condition_variable cv;
    std::optional<ClusterStatus> result;
  };
  auto waiter = std::make_shared<Waiter>();
  {
    std::lock_guard lk(site_->lock());
    site_->site_manager().query_cluster_status(
        [waiter](ClusterStatus cs) {
          std::lock_guard g(waiter->m);
          waiter->result = std::move(cs);
          waiter->cv.notify_all();
        },
        timeout);
  }
  std::unique_lock lk(waiter->m);
  bool done = waiter->cv.wait_for(
      lk, std::chrono::nanoseconds(timeout) + std::chrono::seconds(5),
      [&] { return waiter->result.has_value(); });
  if (!done) {
    return Status::error(ErrorCode::kUnavailable,
                         "cluster status query did not complete");
  }
  return std::move(*waiter->result);
}

Status TcpNode::install_trace_hook(std::size_t index, FrameTraceHook hook) {
  if (index != 0) {
    return Status::error(ErrorCode::kInvalidArgument,
                         "a TcpNode hosts exactly one site (index 0)");
  }
  std::lock_guard lk(site_->lock());
  site_->set_frame_trace(std::move(hook));
  return Status::ok();
}

void TcpNode::shutdown() {
  bool expected = false;
  if (!stopped_.compare_exchange_strong(expected, true)) return;
  driver_->stop();
  if (engine_.joinable()) engine_.join();
  site_->processing().stop();
  if (site_->transport() != nullptr) site_->transport()->close();
}

}  // namespace sdvm
