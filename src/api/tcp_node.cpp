#include "api/tcp_node.hpp"

#include <cerrno>
#include <chrono>
#include <condition_variable>

namespace sdvm {

class TcpNode::EngineDriver final : public Driver {
 public:
  void request_wakeup(Nanos) override { cv_.notify_all(); }
  void notify_work() override { cv_.notify_all(); }

  void wait(Nanos max_ns) {
    std::unique_lock lk(m_);
    cv_.wait_for(lk, std::chrono::nanoseconds(max_ns));
  }
  void stop() {
    stopping_.store(true);
    cv_.notify_all();
  }
  [[nodiscard]] bool stopping() const { return stopping_.load(); }

 private:
  std::mutex m_;
  std::condition_variable cv_;
  std::atomic<bool> stopping_{false};
};

TcpNode::TcpNode() = default;

Result<std::unique_ptr<TcpNode>> TcpNode::create(Options options) {
  auto node = std::unique_ptr<TcpNode>(new TcpNode());
  node->driver_ = std::make_unique<EngineDriver>();
  node->site_ = std::make_unique<Site>(options.site, WallClock::instance(),
                                       *node->driver_);
  Site* site = node->site_.get();
  auto transport = net::TcpTransport::listen(
      options.port,
      [site](std::vector<std::byte> bytes) {
        site->on_network_data(std::move(bytes));
      },
      options.transport);
  if (!transport.is_ok()) return transport.status();
  auto tcp = std::move(transport).value();
  node->tcp_ = tcp.get();

  // Transport health lands in Site::introspect() (and thus sdvm-top /
  // kMetricsQuery) alongside the runtime's own instruments.
  net::TcpTransport* raw = node->tcp_;
  site->metrics_registry().register_provider(
      [raw](metrics::MetricsSnapshot& s) {
        net::TcpTransport::Stats st = raw->stats();
        s.add_counter("net.frames_sent", st.frames_sent);
        s.add_counter("net.bytes_sent", st.bytes_sent);
        s.add_counter("net.batches_sent", st.batches_sent);
        s.add_counter("net.flush_deadline_hits", st.flush_deadline_hits);
        s.add_counter("net.flush_size_hits", st.flush_size_hits);
        s.add_counter("net.frames_dropped", st.frames_dropped);
        s.add_counter("net.send_retries", st.send_retries);
        s.add_counter("net.reconnects", st.reconnects);
        s.add_counter("net.peers_unreachable", st.peers_unreachable);
        s.add_counter("net.frames_oversized", st.frames_oversized);
        s.add_counter("net.batches_malformed", st.batches_malformed);
        // Coalescing efficacy: batches carrying [2^k, 2^(k+1)) frames.
        for (std::size_t k = 0;
             k < net::TcpTransport::Stats::kBatchBuckets; ++k) {
          if (st.frames_per_batch[k] == 0) continue;
          s.add_counter("net.frames_per_batch.ge" + std::to_string(1u << k),
                        st.frames_per_batch[k]);
        }
      });

  // Retry-budget exhaustion is a failure-detector input: an unreachable
  // verdict accelerates what the heartbeat timeout would conclude anyway.
  // The hook runs on the transport's event-loop thread with no transport
  // locks held, so taking the site lock here respects the site -> transport
  // lock order.
  node->tcp_->set_unreachable_hook([site](const std::string& address) {
    std::lock_guard lk(site->lock());
    if (!site->cluster().joined()) return;
    for (SiteId sid : site->cluster().known_sites(/*alive_only=*/true)) {
      auto addr = site->cluster().physical_address(sid);
      if (addr.is_ok() && addr.value() == address) {
        site->cluster().mark_dead(sid, /*gossip=*/true);
        return;
      }
    }
  });

  if (options.faults.has_value()) {
    auto faulty = std::make_unique<net::FaultyTransport>(std::move(tcp),
                                                         *options.faults);
    node->faulty_ = faulty.get();
    node->site_->attach_transport(std::move(faulty));
  } else {
    node->site_->attach_transport(std::move(tcp));
  }

  node->engine_ = std::thread([n = node.get()] {
    while (!n->driver_->stopping()) {
      Nanos next = n->site_->pump();
      Nanos sleep = next < 0 ? 2'000'000 : std::min<Nanos>(next, 2'000'000);
      n->driver_->wait(std::max<Nanos>(sleep, 10'000));
    }
  });
  return node;
}

TcpNode::~TcpNode() { shutdown(); }

void TcpNode::bootstrap() { site_->bootstrap(); }

Status TcpNode::join_cluster(const std::string& contact, Nanos timeout) {
  using std::chrono::steady_clock;
  const auto deadline = steady_clock::now() + std::chrono::nanoseconds(timeout);
  // The sign-on request itself can be lost (contact not up yet, link flap),
  // so re-send it with backoff until the deadline truly expires. The
  // contact dedupes repeated sign-ons by address, so retries are safe.
  Nanos backoff = 100'000'000;  // 100 ms, doubling, capped at 2 s
  site_->join(contact);
  auto next_resend = steady_clock::now() + std::chrono::nanoseconds(backoff);
  while (!site_->joined()) {
    auto now = steady_clock::now();
    if (now >= deadline) {
      net::TcpTransport::PeerState ps = tcp_->peer_state(contact);
      if (ps.last_errno == ECONNREFUSED) {
        return Status::error(
            ErrorCode::kUnavailable,
            "join via " + contact +
                ": connection refused (is a node listening there?)");
      }
      return Status::error(ErrorCode::kUnavailable,
                           "join via " + contact + " timed out");
    }
    if (now >= next_resend) {
      // Clear a stale unreachable verdict so the transport re-probes the
      // contact immediately instead of waiting out its cooldown.
      tcp_->reset_peer(contact);
      site_->join(contact);
      backoff = std::min<Nanos>(backoff * 2, 2'000'000'000);
      next_resend = now + std::chrono::nanoseconds(backoff);
    }
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  return Status::ok();
}

std::string TcpNode::address() const {
  return site_->transport()->local_address();
}

Result<ProgramId> TcpNode::start_program(const ProgramSpec& spec,
                                         std::size_t home_index) {
  if (home_index != 0) {
    return Status::error(ErrorCode::kInvalidArgument,
                         "a TcpNode hosts exactly one site (home_index 0)");
  }
  return site_->start_program(spec);
}

Result<std::int64_t> TcpNode::wait_program(ProgramId pid, Nanos timeout) {
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::nanoseconds(timeout < 0 ? INT64_MAX : timeout);
  while (true) {
    {
      std::lock_guard lk(site_->lock());
      if (site_->programs().is_terminated(pid)) {
        return site_->programs().exit_code(pid).value_or(0);
      }
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      return Status::error(ErrorCode::kUnavailable,
                           "program did not terminate in time");
    }
    std::this_thread::sleep_for(std::chrono::microseconds(300));
  }
}

Result<SiteStatus> TcpNode::status(std::size_t index) {
  if (index != 0) {
    return Status::error(ErrorCode::kInvalidArgument,
                         "a TcpNode hosts exactly one site (index 0)");
  }
  return site_->introspect();
}

Result<ClusterStatus> TcpNode::cluster_status(std::size_t via_index,
                                              Nanos timeout) {
  if (via_index != 0) {
    return Status::error(ErrorCode::kInvalidArgument,
                         "a TcpNode hosts exactly one site (index 0)");
  }
  struct Waiter {
    std::mutex m;
    std::condition_variable cv;
    std::optional<ClusterStatus> result;
  };
  auto waiter = std::make_shared<Waiter>();
  {
    std::lock_guard lk(site_->lock());
    site_->site_manager().query_cluster_status(
        [waiter](ClusterStatus cs) {
          std::lock_guard g(waiter->m);
          waiter->result = std::move(cs);
          waiter->cv.notify_all();
        },
        timeout);
  }
  std::unique_lock lk(waiter->m);
  bool done = waiter->cv.wait_for(
      lk, std::chrono::nanoseconds(timeout) + std::chrono::seconds(5),
      [&] { return waiter->result.has_value(); });
  if (!done) {
    return Status::error(ErrorCode::kUnavailable,
                         "cluster status query did not complete");
  }
  return std::move(*waiter->result);
}

Status TcpNode::install_trace_hook(std::size_t index, FrameTraceHook hook) {
  if (index != 0) {
    return Status::error(ErrorCode::kInvalidArgument,
                         "a TcpNode hosts exactly one site (index 0)");
  }
  std::lock_guard lk(site_->lock());
  site_->set_frame_trace(std::move(hook));
  return Status::ok();
}

void TcpNode::shutdown() {
  bool expected = false;
  if (!stopped_.compare_exchange_strong(expected, true)) return;
  driver_->stop();
  if (engine_.joinable()) engine_.join();
  site_->processing().stop();
  if (site_->transport() != nullptr) site_->transport()->close();
}

}  // namespace sdvm
