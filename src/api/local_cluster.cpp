#include "api/local_cluster.hpp"

#include <chrono>

namespace sdvm {

/// Engine thread driver: wakeups and work notifications poke a condition
/// variable; the engine loop re-pumps the site.
class LocalCluster::EngineDriver final : public Driver {
 public:
  void request_wakeup(Nanos delay) override {
    (void)delay;  // the engine recomputes its sleep from Site::pump()
    cv_.notify_all();
  }
  void notify_work() override { cv_.notify_all(); }

  void wait(Nanos max_ns) {
    std::unique_lock lk(m_);
    cv_.wait_for(lk, std::chrono::nanoseconds(max_ns));
  }
  void stop() {
    stopping_ = true;
    cv_.notify_all();
  }
  [[nodiscard]] bool stopping() const { return stopping_; }

 private:
  std::mutex m_;
  std::condition_variable cv_;
  std::atomic<bool> stopping_{false};
};

LocalCluster::LocalCluster(Options options)
    : options_(std::move(options)), network_(options_.seed) {
  network_.set_default_link(options_.link);
}

LocalCluster::~LocalCluster() {
  for (auto& e : entries_) e->driver->stop();
  for (auto& e : entries_) {
    if (e->engine.joinable()) e->engine.join();
  }
  // Stop worker pools before the fabric goes away.
  for (auto& e : entries_) e->site->processing().stop();
}

Site& LocalCluster::add_site(SiteConfig config) {
  auto entry = std::make_unique<Entry>();
  Entry* e = entry.get();
  e->driver = std::make_unique<EngineDriver>();
  e->site = std::make_unique<Site>(config, WallClock::instance(), *e->driver);
  e->endpoint = network_.attach(
      [site = e->site.get()](std::vector<std::byte> bytes) {
        site->on_network_data(std::move(bytes));
      });
  struct Forwarder final : net::Transport {
    net::InProcEndpoint* ep;
    explicit Forwarder(net::InProcEndpoint* p) : ep(p) {}
    std::string local_address() const override { return ep->local_address(); }
    Status send(const std::string& to, std::vector<std::byte> b) override {
      return ep->send(to, std::move(b));
    }
    void close() override {}
  };
  e->site->attach_transport(std::make_unique<Forwarder>(e->endpoint.get()));

  bool first = entries_.empty();
  std::string contact =
      first ? "" : entries_.front()->endpoint->local_address();
  entries_.push_back(std::move(entry));
  e->engine = std::thread([this, e] { engine_loop(e); });

  if (first) {
    e->site->bootstrap();
  } else {
    e->site->join(contact);
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::seconds(10);
    while (!e->site->joined() &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    if (!e->site->joined()) {
      SDVM_ERROR("local-cluster") << "site failed to join within 10s";
    }
  }
  return *e->site;
}

void LocalCluster::add_sites(int n, const SiteConfig& base) {
  for (int i = 0; i < n; ++i) {
    SiteConfig cfg = base;
    cfg.name = "site" + std::to_string(entries_.size() + 1);
    add_site(cfg);
  }
}

void LocalCluster::engine_loop(Entry* e) {
  while (!e->driver->stopping()) {
    Nanos next = -1;
    if (!e->killed) next = e->site->pump();
    Nanos sleep = next < 0 ? 2'000'000 : std::min<Nanos>(next, 2'000'000);
    e->driver->wait(std::max<Nanos>(sleep, 10'000));
  }
}

Site* LocalCluster::site_by_id(SiteId id) {
  for (auto& e : entries_) {
    if (e->site->id() == id) return e->site.get();
  }
  return nullptr;
}

Result<ProgramId> LocalCluster::start_program(const ProgramSpec& spec,
                                              std::size_t home_index) {
  return entries_.at(home_index)->site->start_program(spec);
}

Result<std::int64_t> LocalCluster::wait_program(ProgramId pid, Nanos timeout) {
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::nanoseconds(timeout < 0 ? INT64_MAX : timeout);
  while (true) {
    for (auto& e : entries_) {
      if (e->killed || e->site->signed_off()) continue;
      std::lock_guard lk(e->site->lock());
      if (e->site->programs().is_terminated(pid)) {
        return e->site->programs().exit_code(pid).value_or(0);
      }
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      return Status::error(ErrorCode::kUnavailable,
                           "program did not terminate in time");
    }
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
}

Result<SiteStatus> LocalCluster::status(std::size_t index) {
  if (index >= entries_.size()) {
    return Status::error(ErrorCode::kInvalidArgument,
                         "no site at index " + std::to_string(index));
  }
  Entry* e = entries_[index].get();
  if (e->killed) {
    return Status::error(ErrorCode::kUnavailable, "site was killed");
  }
  return e->site->introspect();
}

Result<ClusterStatus> LocalCluster::cluster_status(std::size_t via_index,
                                                   Nanos timeout) {
  if (via_index >= entries_.size()) {
    return Status::error(ErrorCode::kInvalidArgument,
                         "no site at index " + std::to_string(via_index));
  }
  Entry* e = entries_[via_index].get();
  if (e->killed) {
    return Status::error(ErrorCode::kUnavailable, "site was killed");
  }

  struct Waiter {
    std::mutex m;
    std::condition_variable cv;
    std::optional<ClusterStatus> result;
  };
  auto waiter = std::make_shared<Waiter>();
  {
    std::lock_guard lk(e->site->lock());
    e->site->site_manager().query_cluster_status(
        [waiter](ClusterStatus cs) {
          std::lock_guard g(waiter->m);
          waiter->result = std::move(cs);
          waiter->cv.notify_all();
        },
        timeout);
  }
  // The via-site's engine thread pumps replies and the timeout timer; we
  // only wait here. The extra margin covers engine scheduling jitter.
  std::unique_lock lk(waiter->m);
  bool done = waiter->cv.wait_for(
      lk, std::chrono::nanoseconds(timeout) + std::chrono::seconds(5),
      [&] { return waiter->result.has_value(); });
  if (!done) {
    return Status::error(ErrorCode::kUnavailable,
                         "cluster status query did not complete");
  }
  return std::move(*waiter->result);
}

Status LocalCluster::install_trace_hook(std::size_t index,
                                        FrameTraceHook hook) {
  if (index >= entries_.size()) {
    return Status::error(ErrorCode::kInvalidArgument,
                         "no site at index " + std::to_string(index));
  }
  Entry* e = entries_[index].get();
  std::lock_guard lk(e->site->lock());
  e->site->set_frame_trace(std::move(hook));
  return Status::ok();
}

Result<SiteId> LocalCluster::sign_off(std::size_t index) {
  return entries_.at(index)->site->sign_off();
}

void LocalCluster::kill(std::size_t index) {
  Entry* e = entries_.at(index).get();
  e->killed = true;
  network_.kill(e->endpoint->local_address());
  e->site->processing().stop();
}

std::vector<std::string> LocalCluster::outputs(std::size_t frontend_index,
                                               ProgramId pid) {
  Entry* e = entries_.at(frontend_index).get();
  std::lock_guard lk(e->site->lock());
  return e->site->io().outputs(pid);
}

}  // namespace sdvm
