// TcpNode: one SDVM daemon on a real TCP socket — the paper's deployment
// unit. Start one per machine (or per process for local experiments), give
// later ones the address of any running node, and they form a cluster.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "api/cluster.hpp"
#include "net/faulty.hpp"
#include "net/tcp.hpp"
#include "runtime/site.hpp"

namespace sdvm {

class TcpNode final : public Cluster {
 public:
  struct Options {
    SiteConfig site;
    std::uint16_t port = 0;  // 0 = ephemeral
    /// Resilience knobs: connect timeout, retry budget, backoff, queue
    /// bound, unreachable cooldown.
    net::TcpTransport::Options transport;
    /// When set, the transport is wrapped in a seeded FaultyTransport
    /// (drop/delay/sever by peer and message kind) — the chaos harness's
    /// fault vocabulary against real sockets.
    std::optional<net::FaultyTransport::Options> faults;
  };

  /// Creates the daemon and starts listening. Call bootstrap() or
  /// join_cluster() next.
  static Result<std::unique_ptr<TcpNode>> create(Options options);

  ~TcpNode() override;
  TcpNode(const TcpNode&) = delete;
  TcpNode& operator=(const TcpNode&) = delete;

  void bootstrap();
  /// Joins via "host:port" of a running node; blocks until joined or the
  /// timeout (wall nanos) expires. The sign-on is retried with backoff for
  /// the whole deadline (the transport reconnects underneath); on failure
  /// the error distinguishes "connection refused" from "timed out".
  Status join_cluster(const std::string& contact, Nanos timeout);

  [[nodiscard]] Site& site() { return *site_; }
  [[nodiscard]] std::string address() const;
  /// The underlying TCP transport (stats / peer health), never null after
  /// create(). When fault injection is active this is the *inner*
  /// transport; faulty_transport() exposes the decorator.
  [[nodiscard]] net::TcpTransport& tcp_transport() { return *tcp_; }
  /// The fault-injection decorator, or nullptr when faults are off.
  [[nodiscard]] net::FaultyTransport* faulty_transport() { return faulty_; }

  /// A TcpNode hosts exactly one site; home_index must be 0.
  Result<ProgramId> start_program(const ProgramSpec& spec,
                                  std::size_t home_index = 0) override;
  Result<std::int64_t> wait_program(ProgramId pid, Nanos timeout = -1);

  // --- observability facade (the Cluster interface) -----------------------
  // A TcpNode hosts exactly one site, so only index 0 is valid; peers are
  // reachable through cluster_status().

  [[nodiscard]] std::size_t size() const override { return 1; }

  /// Cluster facade: alias for wait_program (wall-clock mode).
  Result<std::int64_t> run(ProgramId pid, Nanos limit = -1) override {
    return wait_program(pid, limit);
  }

  /// Unified snapshot of the local site (Site::introspect()).
  [[nodiscard]] Result<SiteStatus> status(std::size_t index = 0) override;

  /// Cluster-wide aggregated snapshot queried through the local site
  /// (kMetricsQuery fan-out over TCP). Blocks up to `timeout` wall nanos.
  [[nodiscard]] Result<ClusterStatus> cluster_status(
      std::size_t via_index = 0, Nanos timeout = 2'000'000'000) override;

  /// Installs a frame-career trace hook on the local site.
  Status install_trace_hook(std::size_t index, FrameTraceHook hook) override;

  /// Graceful leave + engine shutdown.
  void shutdown();

 private:
  class EngineDriver;
  TcpNode();

  std::unique_ptr<EngineDriver> driver_;
  std::unique_ptr<Site> site_;
  net::TcpTransport* tcp_ = nullptr;        // owned via site transport chain
  net::FaultyTransport* faulty_ = nullptr;  // ditto (nullptr = no faults)
  std::thread engine_;
  std::atomic<bool> stopped_{false};
};

}  // namespace sdvm
