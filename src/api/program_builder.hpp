// Fluent construction of ProgramSpecs — the public face of "the programmer
// only has to split his application into tasks" (paper §2.1).
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "runtime/program.hpp"

namespace sdvm {

class ProgramBuilder {
 public:
  explicit ProgramBuilder(std::string name) { spec_.name = std::move(name); }

  /// Microthread shipped as MicroC source: compilable on any platform the
  /// cluster may ever contain.
  ProgramBuilder& thread(std::string name, std::string microc_source) {
    MicrothreadSpec t;
    t.name = std::move(name);
    t.source = std::move(microc_source);
    spec_.threads.push_back(std::move(t));
    return *this;
  }

  /// Native microthread (function registered in-process). Optionally also
  /// carries source, so foreign-platform sites can still run it.
  ProgramBuilder& native_thread(std::string name, NativeFn fn,
                                std::string microc_source = {}) {
    MicrothreadSpec t;
    t.name = std::move(name);
    t.native = std::move(fn);
    t.source = std::move(microc_source);
    spec_.threads.push_back(std::move(t));
    return *this;
  }

  /// The microthread fired when the program starts.
  ProgramBuilder& entry(std::string name) {
    spec_.entry = std::move(name);
    return *this;
  }

  /// Program start arguments, readable via ctx.arg(i) / MicroC arg(i).
  ProgramBuilder& args(std::vector<std::int64_t> a) {
    spec_.args = std::move(a);
    return *this;
  }

  [[nodiscard]] ProgramSpec build() const { return spec_; }

 private:
  ProgramSpec spec_;
};

}  // namespace sdvm
