// Cluster: the one program-facing surface shared by every deployment mode.
// The paper runs the same SDVM on three substrates — real threads over the
// in-process fabric (LocalCluster), the discrete-event simulator
// (sim::SimCluster) and real TCP daemons (TcpNode) — and the tools that sit
// on top (sdvm-top, the bench harness, experiment drivers) should not care
// which one they were handed. This interface extracts the previously
// triplicated status()/cluster_status()/install_trace_hook()/run surface
// into one abstract contract.
//
// Semantics per mode:
//   * run() blocks on wall time for LocalCluster/TcpNode (wait_program) and
//     advances virtual time for SimCluster (run_program); `limit` is wall
//     nanos resp. a virtual deadline, <0 = none.
//   * a TcpNode hosts exactly one site, so size() == 1 and only index 0 /
//     home_index 0 are valid.
#pragma once

#include <cstddef>
#include <cstdint>

#include "runtime/site.hpp"

namespace sdvm {

class Cluster {
 public:
  virtual ~Cluster() = default;

  /// Number of sites this handle can address locally (cluster peers of a
  /// TcpNode are reachable via cluster_status(), not by index).
  [[nodiscard]] virtual std::size_t size() const = 0;

  /// Starts a program whose home is the site at `home_index`.
  ///
  /// (Default arguments below are repeated identically on every override —
  /// defaults bind statically, so base and derived must agree.)
  virtual Result<ProgramId> start_program(const ProgramSpec& spec,
                                          std::size_t home_index = 0) = 0;

  /// Runs/waits until the program terminates and returns its exit code.
  /// Blocks wall time on live clusters; advances virtual time on the
  /// simulator. `limit` <0 = no deadline.
  virtual Result<std::int64_t> run(ProgramId pid, Nanos limit = -1) = 0;

  /// Unified snapshot of one member site (Site::introspect()).
  [[nodiscard]] virtual Result<SiteStatus> status(std::size_t index = 0) = 0;

  /// Cluster-wide aggregated snapshot queried through the site at
  /// `via_index` (kMetricsQuery fan-out). Sites that do not answer within
  /// `timeout` land in ClusterStatus::unreachable.
  [[nodiscard]] virtual Result<ClusterStatus> cluster_status(
      std::size_t via_index = 0, Nanos timeout = 2'000'000'000) = 0;

  /// Installs a frame-career trace hook on one site.
  virtual Status install_trace_hook(std::size_t index,
                                    FrameTraceHook hook) = 0;
};

}  // namespace sdvm
