#include "api/program_file.hpp"

#include <sstream>

#include "microc/compiler.hpp"

namespace sdvm {

namespace {

Status fail(int line, const std::string& msg) {
  return Status::error(ErrorCode::kInvalidArgument,
                       "line " + std::to_string(line) + ": " + msg);
}

}  // namespace

Result<ProgramSpec> parse_program_file(std::string_view text) {
  ProgramSpec spec;
  std::string current_thread;
  std::string current_source;
  int line_no = 0;

  auto flush_thread = [&]() -> Status {
    if (current_thread.empty()) return Status::ok();
    // Validate eagerly: a submit tool should reject broken code locally,
    // not ship it to the cluster.
    auto compiled = microc::compile(current_source, current_thread);
    if (!compiled.is_ok()) {
      return Status::error(ErrorCode::kInvalidArgument,
                           "microthread '" + current_thread +
                               "': " + compiled.status().message());
    }
    MicrothreadSpec t;
    t.name = current_thread;
    t.source = current_source;
    spec.threads.push_back(std::move(t));
    current_thread.clear();
    current_source.clear();
    return Status::ok();
  };

  std::istringstream in{std::string(text)};
  std::string line;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line[0] == '#') {
      std::istringstream ls(line.substr(1));
      std::string directive;
      ls >> directive;
      if (directive == "program") {
        ls >> std::ws;
        std::getline(ls, spec.name);
        if (spec.name.empty()) return fail(line_no, "#program needs a name");
      } else if (directive == "entry") {
        ls >> spec.entry;
        if (spec.entry.empty()) return fail(line_no, "#entry needs a name");
      } else if (directive == "args") {
        std::int64_t v;
        while (ls >> v) spec.args.push_back(v);
      } else if (directive == "thread") {
        Status st = flush_thread();
        if (!st.is_ok()) return st;
        ls >> current_thread;
        if (current_thread.empty()) {
          return fail(line_no, "#thread needs a name");
        }
      } else {
        return fail(line_no, "unknown directive '#" + directive + "'");
      }
      continue;
    }
    if (!current_thread.empty()) {
      current_source += line;
      current_source += '\n';
    } else if (line.find_first_not_of(" \t\r") != std::string::npos) {
      return fail(line_no, "source outside any #thread section");
    }
  }
  Status st = flush_thread();
  if (!st.is_ok()) return st;

  if (spec.name.empty()) spec.name = "unnamed";
  if (spec.threads.empty()) {
    return Status::error(ErrorCode::kInvalidArgument, "no #thread sections");
  }
  if (spec.entry.empty()) spec.entry = spec.threads.front().name;
  bool entry_found = false;
  for (const auto& t : spec.threads) entry_found |= (t.name == spec.entry);
  if (!entry_found) {
    return Status::error(ErrorCode::kInvalidArgument,
                         "entry '" + spec.entry + "' is not a #thread");
  }
  return spec;
}

Result<std::string> format_program_file(const ProgramSpec& spec) {
  std::ostringstream out;
  out << "#program " << spec.name << "\n";
  out << "#entry " << spec.entry << "\n";
  if (!spec.args.empty()) {
    out << "#args";
    for (auto a : spec.args) out << ' ' << a;
    out << "\n";
  }
  for (const auto& t : spec.threads) {
    if (t.source.empty()) {
      return Status::error(ErrorCode::kUnsupported,
                           "microthread '" + t.name +
                               "' is native-only and cannot be serialized");
    }
    out << "#thread " << t.name << "\n" << t.source;
    if (t.source.back() != '\n') out << '\n';
  }
  return out.str();
}

}  // namespace sdvm
