// Recursive fork/join Fibonacci: the classic irregular dataflow benchmark.
// Each fib(n) frame spawns fib(n-1), fib(n-2) and a join frame; results
// propagate up through parameter sends. Exercises deep, unbalanced frame
// graphs and heavy help-request traffic — the opposite profile of the
// prime rounds.
#pragma once

#include <cstdint>

#include "runtime/program.hpp"

namespace sdvm::apps {

struct FibParams {
  std::int64_t n = 16;
  std::int64_t leaf_work = 100'000;  // virtual cycles charged at the leaves
};

[[nodiscard]] ProgramSpec make_fib_program(const FibParams& params);

[[nodiscard]] std::int64_t fib_reference(std::int64_t n);

}  // namespace sdvm::apps
