#include "apps/chaos_mix.hpp"

#include <string>

#include "apps/fibonacci.hpp"
#include "apps/primes.hpp"
#include "common/rng.hpp"

namespace sdvm::apps {

ChaosWorkload make_chaos_workload(std::uint64_t seed) {
  // Mix the purpose in so workload choice decorrelates from the fault
  // schedule generated from the same seed.
  Xoshiro256 rng(seed ^ 0x3A0C10ADull);
  ChaosWorkload w;
  if (rng.below(3) < 2) {
    // Primes: the paper's Table-1 app. Sized for several virtual seconds
    // so kills and partitions land mid-computation.
    PrimesParams p;
    p.p = 40 + static_cast<std::int64_t>(rng.below(41));      // 40..80
    p.width = 6 + static_cast<std::int64_t>(rng.below(5));    // 6..10
    p.work_mult = 30'000'000;                                 // ~30 ms/test
    w.name = "primes(p=" + std::to_string(p.p) +
             ",w=" + std::to_string(p.width) + ")";
    w.spec = make_primes_program(p);
    w.verify = [p](const std::vector<std::string>& out)
        -> std::optional<std::string> {
      if (out.empty()) return "no output collected at the frontend";
      std::int64_t found = 0;
      try {
        found = std::stoll(out.back());
      } catch (...) {
        return "unparseable verdict line '" + out.back() + "'";
      }
      if (found < p.p || found >= p.p + p.width) {
        return "primes verdict " + std::to_string(found) +
               " outside [" + std::to_string(p.p) + ", " +
               std::to_string(p.p + p.width) + ")";
      }
      return std::nullopt;
    };
  } else {
    FibParams f;
    f.n = 11 + static_cast<std::int64_t>(rng.below(4));  // 11..14
    f.leaf_work = 3'000'000;
    w.name = "fib(n=" + std::to_string(f.n) + ")";
    w.spec = make_fib_program(f);
    std::int64_t expected = fib_reference(f.n);
    w.verify = [expected](const std::vector<std::string>& out)
        -> std::optional<std::string> {
      if (out.empty()) return "no output collected at the frontend";
      if (out.back() != std::to_string(expected)) {
        return "fib verdict '" + out.back() + "' != expected " +
               std::to_string(expected);
      }
      return std::nullopt;
    };
  }
  return w;
}

}  // namespace sdvm::apps
