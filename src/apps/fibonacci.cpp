#include "apps/fibonacci.hpp"

namespace sdvm::apps {

namespace {

constexpr const char* kEntrySource = R"(
  // fib frames take (n, target frame, target slot); the root reports into
  // "report", which outputs the result and terminates the program.
  var r = spawn("report", 1);
  var f = spawn("fib", 3);
  send(f, 0, arg(0));
  send(f, 1, r);
  send(f, 2, 0);
)";

constexpr const char* kFibSource = R"(
  var n = param(0);
  var target = param(1);
  var slot = param(2);
  if (n < 2) {
    charge(arg(1));
    send(target, slot, n);
  } else {
    // join(4): two sub-results plus the continuation (target, slot),
    // which we can fill immediately — it is "certain that it will receive
    // all its parameters in the future" (§3.2).
    var j = spawn("join", 4);
    send(j, 2, target);
    send(j, 3, slot);
    var a = spawn("fib", 3);
    send(a, 0, n - 1);
    send(a, 1, j);
    send(a, 2, 0);
    var b = spawn("fib", 3);
    send(b, 0, n - 2);
    send(b, 1, j);
    send(b, 2, 1);
  }
)";

constexpr const char* kJoinSource = R"(
  var a = param(0);
  var b = param(1);
  var target = param(2);
  var slot = param(3);
  send(target, slot, a + b);
)";

constexpr const char* kReportSource = R"(
  out(param(0));
  exit(0);
)";

}  // namespace

ProgramSpec make_fib_program(const FibParams& params) {
  ProgramSpec spec;
  spec.name = "fib";
  spec.entry = "entry";
  spec.args = {params.n, params.leaf_work};
  spec.threads = {
      {"entry", kEntrySource, nullptr},
      {"fib", kFibSource, nullptr},
      {"join", kJoinSource, nullptr},
      {"report", kReportSource, nullptr},
  };
  return spec;
}

std::int64_t fib_reference(std::int64_t n) {
  std::int64_t a = 0;
  std::int64_t b = 1;
  for (std::int64_t i = 0; i < n; ++i) {
    std::int64_t next = a + b;
    a = b;
    b = next;
  }
  return a;
}

}  // namespace sdvm::apps
