#include "apps/nqueens.hpp"

namespace sdvm::apps {

namespace {

constexpr const char* kEntrySource = R"(
  var r = spawn("report", 1);
  var root = spawn("node", 6);
  send(root, 0, 0);   // row
  send(root, 1, 0);   // columns mask
  send(root, 2, 0);   // "/" diagonals mask
  send(root, 3, 0);   // "\" diagonals mask
  send(root, 4, r);
  send(root, 5, 0);
)";

// One search node: params row, cols, d1, d2, continuation target, slot.
constexpr const char* kNodeSource = R"(
  var n = arg(0);
  var row = param(0);
  var cols = param(1);
  var d1 = param(2);
  var d2 = param(3);
  var target = param(4);
  var slot = param(5);
  charge(arg(1));

  if (row == n) {
    send(target, slot, 1);
    return;
  }
  var full = (1 << n) - 1;
  var free = ~(cols | d1 | d2) & full;
  if (free == 0) {
    send(target, slot, 0);
    return;
  }

  // Fan-out: one child per free square, joined by a variable-arity frame.
  var k = 0;
  var f = free;
  while (f != 0) {
    f = f & (f - 1);
    k = k + 1;
  }
  var j = spawn("join", k + 2);
  send(j, k, target);
  send(j, k + 1, slot);

  var idx = 0;
  f = free;
  while (f != 0) {
    var bit = f & (-f);
    f = f ^ bit;
    var c = spawn("node", 6);
    send(c, 0, row + 1);
    send(c, 1, cols | bit);
    send(c, 2, ((d1 | bit) << 1) & full);
    send(c, 3, (d2 | bit) >> 1);
    send(c, 4, j);
    send(c, 5, idx);
    idx = idx + 1;
  }
)";

constexpr const char* kJoinSource = R"(
  var k = nparams() - 2;
  var target = param(k);
  var slot = param(k + 1);
  var sum = 0;
  var i = 0;
  while (i < k) {
    sum = sum + param(i);
    i = i + 1;
  }
  send(target, slot, sum);
)";

constexpr const char* kReportSource = R"(
  out(param(0));
  exit(0);
)";

}  // namespace

ProgramSpec make_nqueens_program(const NQueensParams& params) {
  ProgramSpec spec;
  spec.name = "nqueens";
  spec.entry = "entry";
  spec.args = {params.n, params.node_work};
  spec.threads = {
      {"entry", kEntrySource, nullptr},
      {"node", kNodeSource, nullptr},
      {"join", kJoinSource, nullptr},
      {"report", kReportSource, nullptr},
  };
  return spec;
}

namespace {
std::int64_t solve(int n, std::uint32_t row, std::uint32_t cols,
                   std::uint32_t d1, std::uint32_t d2) {
  if (row == static_cast<std::uint32_t>(n)) return 1;
  std::uint32_t full = (1u << n) - 1;
  std::uint32_t free = ~(cols | d1 | d2) & full;
  std::int64_t total = 0;
  while (free != 0) {
    std::uint32_t bit = free & (~free + 1);
    free ^= bit;
    total += solve(n, row + 1, cols | bit, ((d1 | bit) << 1) & full,
                   (d2 | bit) >> 1);
  }
  return total;
}
}  // namespace

std::int64_t nqueens_reference(int n) { return solve(n, 0, 0, 0, 0); }

}  // namespace sdvm::apps
