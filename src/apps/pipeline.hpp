// Streaming pipeline: `items` values flow through `stages` transform
// stages; every (item, stage) pair is one microframe, so consecutive
// items overlap across stages — classic software pipelining expressed as
// pure dataflow. Sustained many-small-frames traffic, the opposite
// profile of the bulky prime rounds.
#pragma once

#include <cstdint>

#include "runtime/program.hpp"

namespace sdvm::apps {

struct PipelineParams {
  std::int64_t items = 24;
  std::int64_t stages = 4;
  std::int64_t stage_work = 1'000'000;  // virtual cycles per stage
};

[[nodiscard]] ProgramSpec make_pipeline_program(const PipelineParams& params);

/// Reference: the checksum the sink prints for these parameters.
[[nodiscard]] std::int64_t pipeline_reference(const PipelineParams& params);

}  // namespace sdvm::apps
