#include "apps/primes.hpp"

namespace sdvm::apps {

namespace {

constexpr const char* kEntrySource = R"(
  // Kick off the first round at candidate 2 with zero primes found.
  var r = spawn("round", 2);
  send(r, 0, 2);
  send(r, 1, 0);
)";

constexpr const char* kRoundSource = R"(
  // params: 0 = first candidate of this round, 1 = primes found so far.
  var start = param(0);
  var found = param(1);
  var width = arg(1);
  var m = spawn("merge", width + 2);
  send(m, width, start);
  send(m, width + 1, found);
  var i = 0;
  while (i < width) {
    var t = spawn("test", 3);
    send(t, 0, start + i);
    send(t, 1, m);
    send(t, 2, i);
    i = i + 1;
  }
)";

constexpr const char* kTestSource = R"(
  // params: 0 = candidate, 1 = merge frame address, 2 = result slot.
  var n = param(0);
  var target = param(1);
  var slot = param(2);
  var isp = 1;
  if (n < 2) { isp = 0; }
  var d = 2;
  while (d * d <= n) {
    if (n % d == 0) { isp = 0; d = n; }
    d = d + 1;
  }
  charge(arg(2));   // the paper's per-candidate heavy computation (sim time)
  var spin = arg(3);  // real interpreted work (wall-clock benches)
  var k = 0;
  var acc = 0;
  while (k < spin) {
    acc = acc + (k ^ 5);
    k = k + 1;
  }
  if (acc < 0) { out(acc); }  // defeat dead-code removal, never taken
  send(target, slot, isp);
)";

constexpr const char* kMergeSource = R"(
  // params: 0..width-1 = per-candidate verdicts, width = round start,
  // width+1 = primes found before this round.
  var p = arg(0);
  var width = arg(1);
  var start = param(width);
  var found = param(width + 1);
  var i = 0;
  while (i < width) {
    found = found + param(i);
    i = i + 1;
  }
  if (found >= p) {
    out(found);
    exit(0);
  } else {
    var r = spawn("round", 2);
    send(r, 0, start + width);
    send(r, 1, found);
  }
)";

}  // namespace

ProgramSpec make_primes_program(const PrimesParams& params) {
  ProgramSpec spec;
  spec.name = "primes";
  spec.entry = "entry";
  spec.args = {params.p, params.width, params.work_mult, params.spin};
  spec.threads = {
      {"entry", kEntrySource, nullptr},
      {"round", kRoundSource, nullptr},
      {"test", kTestSource, nullptr},
      {"merge", kMergeSource, nullptr},
  };
  return spec;
}

std::int64_t nth_prime(int n) {
  int count = 0;
  std::int64_t candidate = 1;
  while (count < n) {
    ++candidate;
    bool prime = candidate >= 2;
    for (std::int64_t d = 2; d * d <= candidate; ++d) {
      if (candidate % d == 0) {
        prime = false;
        break;
      }
    }
    if (prime) ++count;
  }
  return candidate;
}

}  // namespace sdvm::apps
