// The paper's evaluation application (§5, Table 1): "parallel computation
// of the first p prime numbers, working on width numbers in parallel
// each". Expressed in MicroC so any site — any platform — can run it, with
// the round/test/merge dataflow:
//
//   entry ──► round(start, found)
//                 │  spawns `width` test frames + one merge frame
//     test(i) ────┤  primality by trial division, result → merge slot i
//                 ▼
//              merge ──► next round … until `p` primes found ──► exit
//
// `work_mult` adds per-candidate virtual cost (charge), mirroring the
// paper's heavyweight per-number test (≈0.3 s per candidate on the
// reference Pentium IV).
#pragma once

#include <cstdint>

#include "runtime/program.hpp"

namespace sdvm::apps {

struct PrimesParams {
  std::int64_t p = 100;          // primes to find
  std::int64_t width = 10;       // candidates tested in parallel per round
  std::int64_t work_mult = 20'000'000;  // extra virtual cycles per test
  /// Real busy-loop iterations per test (interpreted work). Virtual-time
  /// benches use work_mult; wall-clock benches use spin.
  std::int64_t spin = 0;
};

[[nodiscard]] ProgramSpec make_primes_program(const PrimesParams& params);

/// Reference result: the number of primes in [2, 2+k) style rounds is
/// awkward to express; instead this returns π-ish ground truth — the
/// `n`-th prime (1-based) for validating outputs.
[[nodiscard]] std::int64_t nth_prime(int n);

}  // namespace sdvm::apps
