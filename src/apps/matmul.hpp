// Blocked matrix multiply over the attraction memory: matrices A, B and C
// live as global memory objects; one microthread computes one row-block of
// C. Exercises the COMA migration path (objects attracted to whichever
// site computes with them), unlike primes/fib which move data in frames.
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/program.hpp"

namespace sdvm::apps {

struct MatmulParams {
  std::int64_t n = 16;         // matrix dimension (n x n)
  std::int64_t block_rows = 4; // rows of C per microthread
};

[[nodiscard]] ProgramSpec make_matmul_program(const MatmulParams& params);

/// Reference product of the same deterministic input matrices
/// (A[i][j] = (i + 2j) % 7, B[i][j] = (3i + j) % 5).
[[nodiscard]] std::vector<std::int64_t> matmul_reference(std::int64_t n);

}  // namespace sdvm::apps
