// Seed-driven workload picker for the chaos harness (sdvm::chaos). Each
// chaos iteration runs one real dataflow application — primes (the
// paper's evaluation app, regular rounds) or fibonacci (irregular
// fork/join) — with seed-derived parameters sized so the program is still
// mid-flight while the fault schedule plays out. The workload carries its
// own verdict checker so the harness can assert result *correctness*, not
// just termination, after crashes and recoveries.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "runtime/program.hpp"

namespace sdvm::apps {

struct ChaosWorkload {
  std::string name;  // deterministic label, e.g. "primes(p=60,w=8)"
  ProgramSpec spec;
  /// Inspects the frontend's collected output lines; returns a failure
  /// description, or nullopt when the result is correct. Tolerant of
  /// duplicated lines from re-executed rounds (at-least-once I/O): only
  /// the final verdict line is judged.
  std::function<std::optional<std::string>(const std::vector<std::string>&)>
      verify;
};

/// Pure function of the seed: same seed, same workload and parameters.
[[nodiscard]] ChaosWorkload make_chaos_workload(std::uint64_t seed);

}  // namespace sdvm::apps
