#include "apps/pipeline.hpp"

namespace sdvm::apps {

namespace {

constexpr const char* kEntrySource = R"(
  var items = arg(0);
  var sink = spawn("sink", items);
  var i = 0;
  while (i < items) {
    var s = spawn("stage", 4);
    send(s, 0, i);        // item value (stage 0 input = item index)
    send(s, 1, 0);        // stage index
    send(s, 2, sink);
    send(s, 3, i);        // sink slot
    i = i + 1;
  }
)";

// Per-stage transform: value' = value * 3 + stage + 1 (mod a prime to stay
// bounded). The same arithmetic is mirrored in pipeline_reference.
constexpr const char* kStageSource = R"(
  var stages = arg(1);
  var value = param(0);
  var stage = param(1);
  var sink = param(2);
  var slot = param(3);
  charge(arg(2));
  value = (value * 3 + stage + 1) % 1000003;
  if (stage + 1 == stages) {
    send(sink, slot, value);
  } else {
    var s = spawn("stage", 4);
    send(s, 0, value);
    send(s, 1, stage + 1);
    send(s, 2, sink);
    send(s, 3, slot);
  }
)";

constexpr const char* kSinkSource = R"(
  var items = nparams();
  var sum = 0;
  var i = 0;
  while (i < items) {
    sum = sum + param(i) * (i + 1);
    i = i + 1;
  }
  out(sum);
  exit(0);
)";

}  // namespace

ProgramSpec make_pipeline_program(const PipelineParams& params) {
  ProgramSpec spec;
  spec.name = "pipeline";
  spec.entry = "entry";
  spec.args = {params.items, params.stages, params.stage_work};
  spec.threads = {
      {"entry", kEntrySource, nullptr},
      {"stage", kStageSource, nullptr},
      {"sink", kSinkSource, nullptr},
  };
  return spec;
}

std::int64_t pipeline_reference(const PipelineParams& params) {
  std::int64_t sum = 0;
  for (std::int64_t i = 0; i < params.items; ++i) {
    std::int64_t value = i;
    for (std::int64_t s = 0; s < params.stages; ++s) {
      value = (value * 3 + s + 1) % 1000003;
    }
    sum += value * (i + 1);
  }
  return sum;
}

}  // namespace sdvm::apps
