#include "apps/matmul.hpp"

namespace sdvm::apps {

ProgramSpec make_matmul_program(const MatmulParams& params) {
  // entry: allocates and fills A and B in global memory, then spawns one
  // "block" microthread per row block plus the final "check" collector.
  // block(6 params): row0, A, B, C, check frame, completion slot.
  constexpr const char* kEntry = R"(
    var n = arg(0);
    var rows = arg(1);
    var a = alloc(n * n);
    var b = alloc(n * n);
    var c = alloc(n * n);
    var i = 0;
    while (i < n) {
      var j = 0;
      while (j < n) {
        store(a, i * n + j, (i + 2 * j) % 7);
        store(b, i * n + j, (3 * i + j) % 5);
        j = j + 1;
      }
      i = i + 1;
    }
    var nblocks = (n + rows - 1) / rows;
    var done = spawn("check", nblocks + 1);
    send(done, nblocks, c);
    var blk = 0;
    while (blk < nblocks) {
      var t = spawn("block", 6);
      send(t, 0, blk * rows);
      send(t, 1, a);
      send(t, 2, b);
      send(t, 3, c);
      send(t, 4, done);
      send(t, 5, blk);
      blk = blk + 1;
    }
  )";

  constexpr const char* kBlock = R"(
    var row0 = param(0);
    var a = param(1);
    var b = param(2);
    var c = param(3);
    var done = param(4);
    var myslot = param(5);
    var n = arg(0);
    var rows = arg(1);
    var last = row0 + rows;
    if (last > n) { last = n; }
    var i = row0;
    while (i < last) {
      var j = 0;
      while (j < n) {
        var sum = 0;
        var k = 0;
        while (k < n) {
          sum = sum + load(a, i * n + k) * load(b, k * n + j);
          k = k + 1;
        }
        store(c, i * n + j, sum);
        j = j + 1;
      }
      i = i + 1;
    }
    send(done, myslot, 1);
  )";

  // check: all blocks done → checksum C, output it, exit.
  constexpr const char* kCheck = R"(
    var n = arg(0);
    var nblocks = (n + arg(1) - 1) / arg(1);
    var c = param(nblocks);
    var sum = 0;
    var i = 0;
    while (i < n * n) {
      sum = sum + load(c, i) * (i % 13 + 1);
      i = i + 1;
    }
    out(sum);
    exit(0);
  )";

  ProgramSpec spec;
  spec.name = "matmul";
  spec.entry = "entry";
  spec.args = {params.n, params.block_rows};
  spec.threads = {
      {"entry", kEntry, nullptr},
      {"block", kBlock, nullptr},
      {"check", kCheck, nullptr},
  };
  return spec;
}

std::vector<std::int64_t> matmul_reference(std::int64_t n) {
  std::vector<std::int64_t> a(static_cast<std::size_t>(n * n));
  std::vector<std::int64_t> b(static_cast<std::size_t>(n * n));
  std::vector<std::int64_t> c(static_cast<std::size_t>(n * n), 0);
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      a[static_cast<std::size_t>(i * n + j)] = (i + 2 * j) % 7;
      b[static_cast<std::size_t>(i * n + j)] = (3 * i + j) % 5;
    }
  }
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      std::int64_t sum = 0;
      for (std::int64_t k = 0; k < n; ++k) {
        sum += a[static_cast<std::size_t>(i * n + k)] *
               b[static_cast<std::size_t>(k * n + j)];
      }
      c[static_cast<std::size_t>(i * n + j)] = sum;
    }
  }
  return c;
}

}  // namespace sdvm::apps
