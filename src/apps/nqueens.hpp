// N-Queens solution counting as irregular recursive dataflow: each board
// node spawns one child per legal queen placement and a variable-arity
// join frame (nparams() lets the join adapt to its fan-in). The hardest
// distribution profile of the bundled apps: unpredictable fan-out, deep
// dependence chains, tiny leaves.
#pragma once

#include <cstdint>

#include "runtime/program.hpp"

namespace sdvm::apps {

struct NQueensParams {
  std::int64_t n = 7;            // board size
  std::int64_t node_work = 100'000;  // virtual cycles charged per node
};

[[nodiscard]] ProgramSpec make_nqueens_program(const NQueensParams& params);

/// Reference count of solutions for an n×n board.
[[nodiscard]] std::int64_t nqueens_reference(int n);

}  // namespace sdvm::apps
