#include "runtime/shard_map.hpp"

namespace sdvm {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xFF;
    h *= kFnvPrime;
  }
  return h;
}

std::uint32_t checked_shard(ByteReader& r) {
  std::uint32_t shard = r.u32();
  if (shard >= kNumShards) throw DecodeError("shard id out of range");
  return shard;
}

}  // namespace

std::uint32_t shard_of(GlobalAddress addr) {
  return static_cast<std::uint32_t>(fnv1a(kFnvOffset, addr.value) %
                                    kNumShards);
}

SiteId shard_target(std::uint32_t shard, const std::vector<SiteId>& live) {
  SiteId best = kInvalidSite;
  std::uint64_t best_weight = 0;
  for (SiteId id : live) {
    if (id == kInvalidSite) continue;
    std::uint64_t w = fnv1a(fnv1a(kFnvOffset, shard), id);
    // Strict ordering with id tiebreak keeps the argmax unique even under
    // (astronomically unlikely) weight collisions.
    if (best == kInvalidSite || w > best_weight ||
        (w == best_weight && id < best)) {
      best = id;
      best_weight = w;
    }
  }
  return best;
}

// ---------------------------------------------------------------------------
// Wire payloads
// ---------------------------------------------------------------------------

void ShardLeaseAnnounce::serialize(ByteWriter& w) const {
  w.u32(static_cast<std::uint32_t>(entries.size()));
  for (const Entry& e : entries) {
    w.u32(e.shard);
    w.site(e.holder);
    w.u64(e.epoch);
  }
}

Result<ShardLeaseAnnounce> ShardLeaseAnnounce::deserialize(ByteReader& r) {
  try {
    ShardLeaseAnnounce a;
    std::uint32_t n = r.count(/*min_bytes_each=*/16);
    a.entries.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      Entry e;
      e.shard = checked_shard(r);
      e.holder = r.site();
      e.epoch = r.u64();
      a.entries.push_back(e);
    }
    return a;
  } catch (const DecodeError& e) {
    return Status::error(ErrorCode::kCorrupt,
                         std::string("bad ShardLeaseAnnounce: ") + e.what());
  }
}

namespace {

void serialize_entries(ByteWriter& w, const std::vector<ShardDirEntry>& es) {
  w.u32(static_cast<std::uint32_t>(es.size()));
  for (const ShardDirEntry& e : es) {
    w.address(e.addr);
    w.site(e.owner);
    w.program(e.program);
  }
}

std::vector<ShardDirEntry> deserialize_entries(ByteReader& r) {
  std::uint32_t n = r.count(/*min_bytes_each=*/20);
  std::vector<ShardDirEntry> es;
  es.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    ShardDirEntry e;
    e.addr = r.address();
    e.owner = r.site();
    e.program = r.program();
    es.push_back(e);
  }
  return es;
}

}  // namespace

void ShardHandoff::serialize(ByteWriter& w) const {
  w.u32(shard);
  w.u64(epoch);
  serialize_entries(w, entries);
}

Result<ShardHandoff> ShardHandoff::deserialize(ByteReader& r) {
  try {
    ShardHandoff h;
    h.shard = checked_shard(r);
    h.epoch = r.u64();
    h.entries = deserialize_entries(r);
    return h;
  } catch (const DecodeError& e) {
    return Status::error(ErrorCode::kCorrupt,
                         std::string("bad ShardHandoff: ") + e.what());
  }
}

void ShardRecover::serialize(ByteWriter& w) const {
  w.u32(shard);
  w.u64(epoch);
}

Result<ShardRecover> ShardRecover::deserialize(ByteReader& r) {
  try {
    ShardRecover s;
    s.shard = checked_shard(r);
    s.epoch = r.u64();
    return s;
  } catch (const DecodeError& e) {
    return Status::error(ErrorCode::kCorrupt,
                         std::string("bad ShardRecover: ") + e.what());
  }
}

void ShardRecoverReply::serialize(ByteWriter& w) const {
  w.u32(shard);
  w.u64(epoch);
  serialize_entries(w, entries);
}

Result<ShardRecoverReply> ShardRecoverReply::deserialize(ByteReader& r) {
  try {
    ShardRecoverReply s;
    s.shard = checked_shard(r);
    s.epoch = r.u64();
    s.entries = deserialize_entries(r);
    return s;
  } catch (const DecodeError& e) {
    return Status::error(ErrorCode::kCorrupt,
                         std::string("bad ShardRecoverReply: ") + e.what());
  }
}

void ShardRegister::serialize(ByteWriter& w) const {
  w.address(addr);
  w.program(program);
  w.site(owner);
}

Result<ShardRegister> ShardRegister::deserialize(ByteReader& r) {
  try {
    ShardRegister s;
    s.addr = r.address();
    s.program = r.program();
    s.owner = r.site();
    return s;
  } catch (const DecodeError& e) {
    return Status::error(ErrorCode::kCorrupt,
                         std::string("bad ShardRegister: ") + e.what());
  }
}

void ShardStale::serialize(ByteWriter& w) const {
  w.u32(shard);
  w.site(holder);
  w.u64(epoch);
}

Result<ShardStale> ShardStale::deserialize(ByteReader& r) {
  try {
    ShardStale s;
    s.shard = checked_shard(r);
    s.holder = r.site();
    s.epoch = r.u64();
    return s;
  } catch (const DecodeError& e) {
    return Status::error(ErrorCode::kCorrupt,
                         std::string("bad ShardStale: ") + e.what());
  }
}

void ShardRoutedRequest::serialize(ByteWriter& w) const {
  w.address(addr);
  w.u32(shard);
  w.u64(epoch);
}

Result<ShardRoutedRequest> ShardRoutedRequest::deserialize(ByteReader& r) {
  try {
    ShardRoutedRequest s;
    s.addr = r.address();
    s.shard = checked_shard(r);
    s.epoch = r.u64();
    return s;
  } catch (const DecodeError& e) {
    return Status::error(ErrorCode::kCorrupt,
                         std::string("bad ShardRoutedRequest: ") + e.what());
  }
}

}  // namespace sdvm
