#include "runtime/metrics.hpp"

#include <algorithm>
#include <sstream>

namespace sdvm::metrics {

const char* to_string(Kind k) {
  switch (k) {
    case Kind::kCounter:   return "counter";
    case Kind::kGauge:     return "gauge";
    case Kind::kHistogram: return "histogram";
  }
  return "unknown";
}

// ---------------------------------------------------------------- wire form

void MetricValue::serialize(ByteWriter& w) const {
  w.str(name);
  w.u8(static_cast<std::uint8_t>(kind));
  switch (kind) {
    case Kind::kCounter:
      w.u64(count);
      break;
    case Kind::kGauge:
      w.i64(gauge);
      break;
    case Kind::kHistogram:
      w.u64(count);
      w.u64(sum);
      for (std::uint64_t b : buckets) w.u64(b);
      break;
  }
}

MetricValue MetricValue::deserialize(ByteReader& r) {
  MetricValue v;
  v.name = r.str();
  std::uint8_t k = r.u8();
  if (k > static_cast<std::uint8_t>(Kind::kHistogram)) {
    throw DecodeError("bad metric kind " + std::to_string(k));
  }
  v.kind = static_cast<Kind>(k);
  switch (v.kind) {
    case Kind::kCounter:
      v.count = r.u64();
      break;
    case Kind::kGauge:
      v.gauge = r.i64();
      break;
    case Kind::kHistogram:
      v.count = r.u64();
      v.sum = r.u64();
      for (auto& b : v.buckets) b = r.u64();
      break;
  }
  return v;
}

void MetricsSnapshot::serialize(ByteWriter& w) const {
  w.u32(static_cast<std::uint32_t>(values.size()));
  for (const auto& v : values) v.serialize(w);
}

Result<MetricsSnapshot> MetricsSnapshot::deserialize(ByteReader& r) {
  try {
    MetricsSnapshot s;
    // Smallest metric: empty name (4) + kind (1) + counter u64 (8).
    std::uint32_t n = r.count(13);
    s.values.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      s.values.push_back(MetricValue::deserialize(r));
    }
    return s;
  } catch (const DecodeError& e) {
    return Status::error(ErrorCode::kCorrupt, e.what());
  }
}

// --------------------------------------------------------------- accessors

const MetricValue* MetricsSnapshot::find(const std::string& name) const {
  auto it = std::lower_bound(
      values.begin(), values.end(), name,
      [](const MetricValue& v, const std::string& n) { return v.name < n; });
  if (it != values.end() && it->name == name) return &*it;
  // Tolerate unsorted snapshots (e.g. hand-built in tests).
  for (const auto& v : values) {
    if (v.name == name) return &v;
  }
  return nullptr;
}

std::uint64_t MetricsSnapshot::counter(const std::string& name) const {
  const MetricValue* v = find(name);
  return v == nullptr ? 0 : v->count;
}

std::int64_t MetricsSnapshot::gauge_value(const std::string& name) const {
  const MetricValue* v = find(name);
  return v == nullptr ? 0 : v->gauge;
}

void MetricsSnapshot::insert_sorted(MetricValue v) {
  auto it = std::lower_bound(values.begin(), values.end(), v.name,
                             [](const MetricValue& a, const std::string& n) {
                               return a.name < n;
                             });
  values.insert(it, std::move(v));
}

void MetricsSnapshot::add_counter(const std::string& name,
                                  std::uint64_t value) {
  MetricValue v;
  v.name = name;
  v.kind = Kind::kCounter;
  v.count = value;
  insert_sorted(std::move(v));
}

void MetricsSnapshot::add_gauge(const std::string& name, std::int64_t value) {
  MetricValue v;
  v.name = name;
  v.kind = Kind::kGauge;
  v.gauge = value;
  insert_sorted(std::move(v));
}

void MetricsSnapshot::add_histogram(const std::string& name,
                                    const Histogram& h) {
  MetricValue v;
  v.name = name;
  v.kind = Kind::kHistogram;
  v.count = h.count();
  v.sum = h.sum();
  v.buckets = h.counts();
  insert_sorted(std::move(v));
}

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  for (const auto& o : other.values) {
    auto it = std::lower_bound(values.begin(), values.end(), o.name,
                               [](const MetricValue& a, const std::string& n) {
                                 return a.name < n;
                               });
    if (it == values.end() || it->name != o.name) {
      values.insert(it, o);
      continue;
    }
    // Same name, mismatched kinds: keep ours, skip theirs (version skew).
    if (it->kind != o.kind) continue;
    switch (o.kind) {
      case Kind::kCounter:
        it->count += o.count;
        break;
      case Kind::kGauge:
        it->gauge += o.gauge;
        break;
      case Kind::kHistogram:
        it->count += o.count;
        it->sum += o.sum;
        for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
          it->buckets[i] += o.buckets[i];
        }
        break;
    }
  }
}

// ----------------------------------------------------------------- exports

namespace {

/// Human-readable bucket label for index i: "<=10us", ..., ">10s".
std::string bucket_label(std::size_t i) {
  static const char* kLabels[Histogram::kBuckets] = {
      "<=10us", "<=100us", "<=1ms", "<=10ms",
      "<=100ms", "<=1s",   "<=10s", ">10s"};
  return kLabels[i];
}

}  // namespace

std::string MetricsSnapshot::to_text(const std::string& indent) const {
  std::ostringstream os;
  for (const auto& v : values) {
    os << indent << v.name << " = ";
    switch (v.kind) {
      case Kind::kCounter:
        os << v.count;
        break;
      case Kind::kGauge:
        os << v.gauge;
        break;
      case Kind::kHistogram: {
        os << "count " << v.count << ", sum " << v.sum << "ns";
        if (v.count > 0) os << ", avg " << v.sum / v.count << "ns";
        os << " [";
        bool first = true;
        for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
          if (v.buckets[i] == 0) continue;
          if (!first) os << " ";
          first = false;
          os << bucket_label(i) << ":" << v.buckets[i];
        }
        os << "]";
        break;
      }
    }
    os << "\n";
  }
  return os.str();
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':  out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string MetricsSnapshot::to_json() const {
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (const auto& v : values) {
    if (!first) os << ",";
    first = false;
    os << "\"" << json_escape(v.name) << "\":";
    switch (v.kind) {
      case Kind::kCounter:
        os << v.count;
        break;
      case Kind::kGauge:
        os << v.gauge;
        break;
      case Kind::kHistogram: {
        os << "{\"count\":" << v.count << ",\"sum\":" << v.sum
           << ",\"buckets\":[";
        for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
          if (i > 0) os << ",";
          os << v.buckets[i];
        }
        os << "]}";
        break;
      }
    }
  }
  os << "}";
  return os.str();
}

// ---------------------------------------------------------------- registry

void MetricsRegistry::register_counter(std::string name,
                                       const Counter* counter) {
  Entry e;
  e.name = std::move(name);
  e.kind = Kind::kCounter;
  e.counter = counter;
  entries_.push_back(std::move(e));
}

void MetricsRegistry::register_gauge(std::string name, GaugeProbe probe) {
  Entry e;
  e.name = std::move(name);
  e.kind = Kind::kGauge;
  e.probe = std::move(probe);
  entries_.push_back(std::move(e));
}

void MetricsRegistry::register_histogram(std::string name,
                                         const Histogram* histogram) {
  Entry e;
  e.name = std::move(name);
  e.kind = Kind::kHistogram;
  e.histogram = histogram;
  entries_.push_back(std::move(e));
}

void MetricsRegistry::register_provider(Provider provider) {
  providers_.push_back(std::move(provider));
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot s;
  s.values.reserve(entries_.size());
  for (const auto& e : entries_) {
    switch (e.kind) {
      case Kind::kCounter:
        s.add_counter(e.name, e.counter->value());
        break;
      case Kind::kGauge:
        s.add_gauge(e.name, e.probe ? e.probe() : 0);
        break;
      case Kind::kHistogram:
        s.add_histogram(e.name, *e.histogram);
        break;
    }
  }
  for (const auto& p : providers_) p(s);
  return s;
}

std::vector<std::string> MetricsRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& e : entries_) out.push_back(e.name);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace sdvm::metrics
