// Cluster manager: maintains the cluster list, handles sign-on / sign-off,
// allocates logical site ids (three strategies from paper §4), gossips
// site information "by and by", tracks load statistics for help-target
// selection, and runs the heartbeat failure detector feeding the crash
// manager.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/status.hpp"
#include "runtime/cluster_info.hpp"
#include "runtime/message.hpp"
#include "runtime/metrics.hpp"

namespace sdvm {

class Site;

class ClusterManager {
 public:
  explicit ClusterManager(Site& site) : site_(site) {}

  // --- identity / membership ---------------------------------------------
  /// First site of a new cluster: self-assigns id 1 (implicitly the central
  /// contact site for id allocation).
  void bootstrap();

  /// Joins via a site already in the cluster ("the (ip) address of a site
  /// which is already part of the cluster" is all that is needed).
  void join(const std::string& contact_address,
            std::function<void(Status)> done);

  /// Graceful departure: relocation is coordinated by the Site; this
  /// broadcasts the sign-off notice with our successor.
  void announce_sign_off(SiteId successor);

  [[nodiscard]] bool joined() const { return local_id_ != kInvalidSite; }
  [[nodiscard]] SiteId local_id() const { return local_id_; }

  // --- cluster list --------------------------------------------------------
  [[nodiscard]] Result<std::string> physical_address(SiteId id) const;
  [[nodiscard]] const SiteInfo* find(SiteId id) const;
  [[nodiscard]] std::vector<SiteId> known_sites(bool alive_only = true) const;
  [[nodiscard]] std::size_t cluster_size() const;

  /// Follows sign-off successor chains to a live site (routing for
  /// messages addressed to departed sites' memory directories).
  [[nodiscard]] SiteId resolve_successor(SiteId id) const;

  /// Load-informed help-target choice: "choose a site which is probably
  /// not idle itself" — prefers the known site with the most queued work.
  [[nodiscard]] std::optional<SiteId> pick_help_target(
      const std::vector<SiteId>& exclude = {});

  /// Picks a live site other than us (round-robin-ish) for relocation and
  /// checkpoint placement.
  [[nodiscard]] std::optional<SiteId> pick_any_other();

  /// Live sites advertising themselves as code distribution sites (§4).
  [[nodiscard]] std::vector<SiteId> code_distribution_sites() const;

  // --- maintenance ----------------------------------------------------------
  void handle(const SdMessage& msg);
  /// Periodic: emits heartbeats, checks failure timeouts, gossips.
  void on_tick();
  /// Refreshes our own SiteInfo (load stats) before it is piggybacked.
  void refresh_local_info();
  /// Merges a received SiteInfo (gossip, piggyback) — higher version wins.
  void merge(const SiteInfo& info);
  [[nodiscard]] SiteInfo local_info() const;

  /// Marks a site dead (failure detector or external verdict) and gossips
  /// the fact. Idempotent.
  void mark_dead(SiteId id, bool gossip);

  /// Liveness input: any message from `src` proves it alive right now.
  void note_heard(SiteId src);

  /// Records (and optionally gossips) that `heir` took over a dead site's
  /// addresses — used by crash recovery to keep global addresses routable.
  void set_successor(SiteId dead, SiteId heir, bool gossip);

  /// Cheap gossip payload: every site we know, serialized.
  [[nodiscard]] std::vector<std::byte> encode_cluster_list() const;
  void absorb_cluster_list(ByteReader& r);

  /// Same wire format, restricted to the given ids (delta gossip).
  [[nodiscard]] std::vector<std::byte> encode_entries(
      const std::set<SiteId>& ids) const;

  /// Registers this manager's instruments ("cluster." prefix).
  void register_metrics(metrics::MetricsRegistry& registry);

  // Deprecated shims (bench/ablation_idalloc): read "cluster.*" via
  // Site::introspect() instead.
  metrics::Counter signon_messages;
  metrics::Counter sites_admitted;      // joins we completed
  metrics::Counter sign_offs_received;  // graceful leaves we learned of
  metrics::Counter deaths_detected;     // failure-detector verdicts
  metrics::Counter heartbeats_sent;
  metrics::Counter heartbeats_received;

 private:
  void handle_sign_on_request(const SdMessage& msg);
  void complete_sign_on(const SdMessage& original_request, SiteId new_id);
  void send_sign_on_reply(const std::string& address, SiteId new_id);
  [[nodiscard]] std::optional<SiteId> try_allocate_id();
  void request_id_block(std::function<void()> then);

  Site& site_;
  void retry_join();

  SiteId local_id_ = kInvalidSite;
  std::string join_contact_;
  std::map<SiteId, SiteInfo> sites_;
  std::function<void(Status)> join_done_;

  // Id allocation state (strategy-dependent).
  SiteId next_central_id_ = 2;        // central: site 1's counter
  std::vector<SiteId> id_block_;      // contingent: our pool of free ids
  SiteId contingent_next_ = 0;        // contingent: site 1's block counter
  static constexpr SiteId kBlockSize = 8;
  static constexpr SiteId kModuloServers = 4;
  SiteId modulo_counter_ = 0;         // modulo: multiples handed out so far

  // Sign-on requests parked while we fetch an id block.
  std::vector<SdMessage> parked_sign_ons_;
  Nanos last_heartbeat_ = 0;
  std::size_t gossip_cursor_ = 0;
  std::map<SiteId, Nanos> last_heard_;
  /// When each currently monitored peer *became* monitored. Ring
  /// positions shift as membership changes; a site that just became one
  /// of our predecessors gets a fresh timeout window before we judge its
  /// silence — it may only now be learning that we are its successor.
  std::map<SiteId, Nanos> monitored_since_;

  /// How many delta-gossip rounds a *membership transition* (new member,
  /// death, successor change) keeps being re-advertised. One round is not
  /// enough: the epidemic saturates within a tick or two and stops — a
  /// rack cut off when a death was detected would afterwards only learn
  /// of it through the rare full anti-entropy list. SWIM-style bounded
  /// re-dissemination (~log₂ n rounds at the 1000-site ceiling) floods a
  /// healed cut from every side within a second. Plain load/version
  /// churn stays single-shot — each tick refreshes it anyway.
  static constexpr int kRespreadRounds = 8;
  /// Entries changed since the last delta-gossip round, with the number
  /// of rounds they remain in the delta payload.
  void mark_dirty(SiteId id, int rounds = 1) {
    int& r = dirty_[id];
    r = std::max(r, rounds);
  }
  std::map<SiteId, int> dirty_;
  /// Liveness-cache maintenance. Version/load bumps (refresh_local_info
  /// runs every tick) must NOT touch the cache; only membership changes
  /// do, and those update it incrementally — a full rebuild per admission
  /// made building a 1000-site cluster quadratic in map walks.
  void invalidate_alive() { alive_dirty_ = true; }
  void refresh_alive_cache() const;
  void alive_entry_added(SiteId id);  // a new alive entry appeared
  void alive_entry_died(SiteId id);   // an alive entry's bit flipped off
  /// cluster_size() gates the per-pump starvation check and
  /// pick_help_target runs per help request; at 1000 sites neither may
  /// walk the membership map. alive_peers_ holds pointers into sites_
  /// nodes (stable: entries are never erased — death is terminal).
  mutable std::size_t alive_count_ = 0;
  mutable std::vector<const SiteInfo*> alive_peers_;
  mutable bool alive_dirty_ = true;
  std::uint64_t tick_count_ = 0;
};

}  // namespace sdvm
