// SiteStatus / ClusterStatus — the unified introspection snapshot (paper
// §4: the site manager "provides the functionality to query the status of
// the local site, i.e. all local managers"). One struct replaces the three
// former peepholes (trace hook, accounting ledger, ad-hoc status strings):
// Site::introspect() returns a SiteStatus; the kMetricsQuery/kMetricsReply
// exchange ships it across the wire; ClusterStatus aggregates one per site
// for tools (sdvm-top) and the bench harness.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/serialize.hpp"
#include "common/status.hpp"
#include "common/types.hpp"
#include "runtime/accounting.hpp"
#include "runtime/cluster_info.hpp"
#include "runtime/metrics.hpp"

namespace sdvm {

/// Complete point-in-time snapshot of one site: identity, lifecycle state,
/// load, active programs, the accounting ledger, and every registered
/// metric.
struct SiteStatus {
  SiteId id = kInvalidSite;
  std::string name;
  PlatformId platform;
  double speed = 1.0;
  bool joined = false;
  bool signed_off = false;
  bool code_site = false;
  std::uint32_t cluster_size = 0;  // live sites as seen from this site
  LoadStats load;
  std::vector<ProgramId> active_programs;
  AccountLedger ledger;
  metrics::MetricsSnapshot metrics;

  void serialize(ByteWriter& w) const;
  static Result<SiteStatus> deserialize(ByteReader& r);

  [[nodiscard]] std::string to_text() const;
  [[nodiscard]] std::string to_json() const;
};

/// Cluster-wide aggregation: one SiteStatus per reachable site (sorted by
/// id), as collected via kMetricsQuery fan-out from `queried_from`.
struct ClusterStatus {
  SiteId queried_from = kInvalidSite;
  /// Sites that did not answer within the query timeout (partial result).
  std::vector<SiteId> unreachable;
  std::vector<SiteStatus> sites;

  /// Element-wise merge of every site's metrics snapshot — the
  /// cluster-wide counters sdvm-top and the bench harness report.
  [[nodiscard]] metrics::MetricsSnapshot aggregate() const;
  /// Summed accounting ledger across sites (the cluster-wide bill).
  [[nodiscard]] AccountLedger total_ledger() const;

  [[nodiscard]] std::string to_text() const;
  [[nodiscard]] std::string to_json() const;
};

}  // namespace sdvm
