#include "runtime/message.hpp"

namespace sdvm {

const char* to_string(MsgType t) {
  switch (t) {
    case MsgType::kInvalid:            return "invalid";
    case MsgType::kSignOnRequest:      return "sign-on-request";
    case MsgType::kSignOnReply:        return "sign-on-reply";
    case MsgType::kSignOffNotice:      return "sign-off-notice";
    case MsgType::kSiteGossip:         return "site-gossip";
    case MsgType::kHeartbeat:          return "heartbeat";
    case MsgType::kIdBlockRequest:     return "id-block-request";
    case MsgType::kIdBlockReply:       return "id-block-reply";
    case MsgType::kSiteDead:           return "site-dead";
    case MsgType::kHelpRequest:        return "help-request";
    case MsgType::kHelpReplyFrame:     return "help-reply-frame";
    case MsgType::kHelpReplyNone:      return "help-reply-none";
    case MsgType::kCodeRequest:        return "code-request";
    case MsgType::kCodeReplyBinary:    return "code-reply-binary";
    case MsgType::kCodeReplySource:    return "code-reply-source";
    case MsgType::kCodeReplyMissing:   return "code-reply-missing";
    case MsgType::kCodeUpload:         return "code-upload";
    case MsgType::kProgramInfoRequest: return "program-info-request";
    case MsgType::kProgramInfoReply:   return "program-info-reply";
    case MsgType::kProgramTerminated:  return "program-terminated";
    case MsgType::kApplyParam:         return "apply-param";
    case MsgType::kApplyParamNack:     return "apply-param-nack";
    case MsgType::kObjectRequest:      return "object-request";
    case MsgType::kObjectGrant:        return "object-grant";
    case MsgType::kObjectRecall:       return "object-recall";
    case MsgType::kObjectReturn:       return "object-return";
    case MsgType::kObjectMiss:         return "object-miss";
    case MsgType::kDirectoryImport:    return "directory-import";
    case MsgType::kShardLease:         return "shard-lease";
    case MsgType::kShardHandoff:       return "shard-handoff";
    case MsgType::kShardRecover:       return "shard-recover";
    case MsgType::kShardRecoverReply:  return "shard-recover-reply";
    case MsgType::kShardRegister:      return "shard-register";
    case MsgType::kShardStale:         return "shard-stale";
    case MsgType::kIoOutput:           return "io-output";
    case MsgType::kFileRead:           return "file-read";
    case MsgType::kFileReadReply:      return "file-read-reply";
    case MsgType::kFileWrite:          return "file-write";
    case MsgType::kFileWriteAck:       return "file-write-ack";
    case MsgType::kStatusQuery:        return "status-query";
    case MsgType::kStatusReply:        return "status-reply";
    case MsgType::kMetricsQuery:       return "metrics-query";
    case MsgType::kMetricsReply:       return "metrics-reply";
    case MsgType::kCheckpointFreeze:   return "checkpoint-freeze";
    case MsgType::kCheckpointFrozen:   return "checkpoint-frozen";
    case MsgType::kCheckpointTakeShard: return "checkpoint-take-shard";
    case MsgType::kCheckpointData:     return "checkpoint-data";
    case MsgType::kCheckpointCommit:   return "checkpoint-commit";
    case MsgType::kCheckpointReplica:  return "checkpoint-replica";
    case MsgType::kRecoveryRestore:    return "recovery-restore";
    case MsgType::kRecoveryAck:        return "recovery-ack";
    case MsgType::kCheckpointReplicaAck: return "checkpoint-replica-ack";
    case MsgType::kRecoveryOffer:      return "recovery-offer";
    case MsgType::kRecoveryActive:     return "recovery-active";
  }
  return "unknown";
}

std::vector<std::byte> SdMessage::serialize_body() const {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(src_mgr));
  w.u8(static_cast<std::uint8_t>(dst_mgr));
  w.u16(static_cast<std::uint16_t>(type));
  w.program(program);
  w.u64(seq);
  w.u64(reply_to);
  w.u8(hops);
  w.blob(payload);
  return w.take();
}

Result<SdMessage> SdMessage::deserialize_body(SiteId src, SiteId dst,
                                              std::span<const std::byte> body) {
  try {
    ByteReader r(body);
    SdMessage m;
    m.src = src;
    m.dst = dst;
    m.src_mgr = static_cast<ManagerId>(r.u8());
    m.dst_mgr = static_cast<ManagerId>(r.u8());
    m.type = static_cast<MsgType>(r.u16());
    m.program = r.program();
    m.seq = r.u64();
    m.reply_to = r.u64();
    m.hops = r.u8();
    m.payload = r.blob();
    return m;
  } catch (const DecodeError& e) {
    return Status::error(ErrorCode::kCorrupt,
                         std::string("bad SDMessage body: ") + e.what());
  }
}

}  // namespace sdvm
