#include "runtime/site_status.hpp"

#include <algorithm>
#include <sstream>

namespace sdvm {

void SiteStatus::serialize(ByteWriter& w) const {
  w.site(id);
  w.str(name);
  w.str(platform);
  w.f64(speed);
  w.boolean(joined);
  w.boolean(signed_off);
  w.boolean(code_site);
  w.u32(cluster_size);
  load.serialize(w);
  w.u32(static_cast<std::uint32_t>(active_programs.size()));
  for (ProgramId p : active_programs) w.program(p);
  w.u32(static_cast<std::uint32_t>(ledger.size()));
  for (const auto& [pid, entry] : ledger) {
    w.program(pid);
    entry.serialize(w);
  }
  metrics.serialize(w);
}

Result<SiteStatus> SiteStatus::deserialize(ByteReader& r) {
  try {
    SiteStatus s;
    s.id = r.site();
    s.name = r.str();
    s.platform = r.str();
    s.speed = r.f64();
    s.joined = r.boolean();
    s.signed_off = r.boolean();
    s.code_site = r.boolean();
    s.cluster_size = r.u32();
    s.load = LoadStats::deserialize(r);
    std::uint32_t nprogs = r.count(sizeof(std::uint64_t));
    s.active_programs.reserve(nprogs);
    for (std::uint32_t i = 0; i < nprogs; ++i) {
      s.active_programs.push_back(r.program());
    }
    std::uint32_t nledger = r.count(sizeof(std::uint64_t) * 4);
    for (std::uint32_t i = 0; i < nledger; ++i) {
      ProgramId pid = r.program();
      s.ledger[pid] = AccountEntry::deserialize(r);
    }
    auto m = metrics::MetricsSnapshot::deserialize(r);
    if (!m.is_ok()) return m.status();
    s.metrics = std::move(m).value();
    return s;
  } catch (const DecodeError& e) {
    return Status::error(ErrorCode::kCorrupt,
                         std::string("bad SiteStatus: ") + e.what());
  }
}

std::string SiteStatus::to_text() const {
  std::ostringstream os;
  os << "site " << id << " (" << name << ", " << platform << ", speed "
     << speed << ")";
  if (code_site) os << " [code-site]";
  if (signed_off) {
    os << " SIGNED-OFF";
  } else if (!joined) {
    os << " JOINING";
  }
  os << "\n";
  os << "  cluster-size " << cluster_size << ", queued "
     << load.queued_frames << ", running " << load.running << ", programs "
     << load.programs << ", executed " << load.executed_total << "\n";
  if (!active_programs.empty()) {
    os << "  programs:";
    for (ProgramId p : active_programs) os << " " << p.value;
    os << "\n";
  }
  for (const auto& [pid, e] : ledger) {
    os << "  account[" << pid.value << "]: microthreads " << e.microthreads
       << ", vm-instructions " << e.vm_instructions << ", charged-cycles "
       << e.charged_cycles << "\n";
  }
  os << metrics.to_text("  ");
  return os.str();
}

std::string SiteStatus::to_json() const {
  std::ostringstream os;
  os << "{\"id\":" << id << ",\"name\":\"" << metrics::json_escape(name)
     << "\",\"platform\":\"" << metrics::json_escape(platform)
     << "\",\"speed\":" << speed
     << ",\"joined\":" << (joined ? "true" : "false")
     << ",\"signed_off\":" << (signed_off ? "true" : "false")
     << ",\"code_site\":" << (code_site ? "true" : "false")
     << ",\"cluster_size\":" << cluster_size << ",\"load\":{\"queued\":"
     << load.queued_frames << ",\"running\":" << load.running
     << ",\"programs\":" << load.programs << ",\"executed\":"
     << load.executed_total << "},\"active_programs\":[";
  for (std::size_t i = 0; i < active_programs.size(); ++i) {
    if (i > 0) os << ",";
    os << active_programs[i].value;
  }
  os << "],\"accounts\":{";
  bool first = true;
  for (const auto& [pid, e] : ledger) {
    if (!first) os << ",";
    first = false;
    os << "\"" << pid.value << "\":{\"microthreads\":" << e.microthreads
       << ",\"vm_instructions\":" << e.vm_instructions
       << ",\"charged_cycles\":" << e.charged_cycles << "}";
  }
  os << "},\"metrics\":" << metrics.to_json() << "}";
  return os.str();
}

metrics::MetricsSnapshot ClusterStatus::aggregate() const {
  metrics::MetricsSnapshot merged;
  for (const auto& s : sites) merged.merge(s.metrics);
  return merged;
}

AccountLedger ClusterStatus::total_ledger() const {
  AccountLedger total;
  for (const auto& s : sites) {
    for (const auto& [pid, e] : s.ledger) total[pid] += e;
  }
  return total;
}

std::string ClusterStatus::to_text() const {
  std::ostringstream os;
  os << "cluster status (queried from site " << queried_from << ", "
     << sites.size() << " site" << (sites.size() == 1 ? "" : "s");
  if (!unreachable.empty()) {
    os << ", unreachable:";
    for (SiteId s : unreachable) os << " " << s;
  }
  os << ")\n";
  for (const auto& s : sites) os << s.to_text();
  os << "aggregate:\n" << aggregate().to_text("  ");
  AccountLedger bill = total_ledger();
  for (const auto& [pid, e] : bill) {
    os << "  bill[" << pid.value << "]: microthreads " << e.microthreads
       << ", vm-instructions " << e.vm_instructions << ", charged-cycles "
       << e.charged_cycles << "\n";
  }
  return os.str();
}

std::string ClusterStatus::to_json() const {
  std::ostringstream os;
  os << "{\"queried_from\":" << queried_from << ",\"unreachable\":[";
  for (std::size_t i = 0; i < unreachable.size(); ++i) {
    if (i > 0) os << ",";
    os << unreachable[i];
  }
  os << "],\"sites\":[";
  for (std::size_t i = 0; i < sites.size(); ++i) {
    if (i > 0) os << ",";
    os << sites[i].to_json();
  }
  os << "],\"aggregate\":" << aggregate().to_json() << "}";
  return os.str();
}

}  // namespace sdvm
