// Security manager: "placed between the message manager and the network
// manager ... it encrypts all outgoing data before it is delivered by the
// network manager, and decrypts all incoming traffic as well" (paper §4).
// Keys bootstrap from the shared start password; per-pair session keys are
// derived from the master key. For "insular" clusters it can be disabled
// in favour of a performance gain — bench/ablation_encryption measures it.
#pragma once

#include <cstdint>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/config.hpp"
#include "common/status.hpp"
#include "common/types.hpp"
#include "crypto/cipher.hpp"
#include "runtime/message.hpp"

namespace sdvm {

class SecurityManager {
 public:
  explicit SecurityManager(const SiteConfig& config);

  void set_local_site(SiteId id) { local_ = id; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Wraps a message body into the wire frame:
  /// [version u8 | flags u8 | src u32 | dst u32 | body (sealed if enabled)].
  [[nodiscard]] std::vector<std::byte> protect(const SdMessage& msg);

  /// Parses (and decrypts, if flagged) a wire frame. Rejects MAC failures
  /// and version mismatches with kCorrupt — "protection against spying and
  /// corruption".
  [[nodiscard]] Result<SdMessage> unprotect(std::span<const std::byte> wire);

  std::uint64_t sealed_count = 0;
  std::uint64_t opened_count = 0;
  std::uint64_t rejected_count = 0;

 private:
  [[nodiscard]] const crypto::ChaCha20::Key& pair_key(SiteId a, SiteId b);

  static constexpr std::uint8_t kVersion = 1;
  static constexpr std::uint8_t kFlagSealed = 0x01;

  bool enabled_;
  SiteId local_ = kInvalidSite;
  crypto::ChaCha20::Key master_;
  std::uint64_t nonce_seed_ = 0;
  std::unordered_map<std::uint64_t, crypto::ChaCha20::Key> pair_keys_;
};

}  // namespace sdvm
