// Accounting (paper §2.2/§6): "The SDVM could act as a service provider,
// letting customers run calculation-intensive applications on external
// computer clusters. ... The accounting functionality needed for this can
// be integrated into the SDVM."
//
// Every site keeps a per-program ledger of what it contributed: executed
// microthreads, interpreted VM instructions, and declared (charged)
// cycles. The program's frontend can aggregate ledgers cluster-wide to
// produce a bill.
#pragma once

#include <cstdint>
#include <map>

#include "common/serialize.hpp"
#include "common/types.hpp"

namespace sdvm {

struct AccountEntry {
  std::uint64_t microthreads = 0;
  std::uint64_t vm_instructions = 0;
  std::uint64_t charged_cycles = 0;

  void serialize(ByteWriter& w) const {
    w.u64(microthreads);
    w.u64(vm_instructions);
    w.u64(charged_cycles);
  }
  static AccountEntry deserialize(ByteReader& r) {
    AccountEntry e;
    e.microthreads = r.u64();
    e.vm_instructions = r.u64();
    e.charged_cycles = r.u64();
    return e;
  }

  AccountEntry& operator+=(const AccountEntry& o) {
    microthreads += o.microthreads;
    vm_instructions += o.vm_instructions;
    charged_cycles += o.charged_cycles;
    return *this;
  }
};

/// Per-site ledger: program → contribution. Termination does NOT clear
/// entries — bills outlive programs (queried via the site manager).
using AccountLedger = std::map<ProgramId, AccountEntry>;

}  // namespace sdvm
