#include "runtime/program_manager.hpp"

#include <unordered_set>

#include "runtime/site.hpp"

namespace sdvm {

Result<ProgramId> ProgramManager::start_program(const ProgramSpec& spec) {
  if (spec.threads.empty()) {
    return Status::error(ErrorCode::kInvalidArgument, "program has no threads");
  }
  std::unordered_set<std::string> names;
  for (const auto& t : spec.threads) {
    if (t.name.empty() || !names.insert(t.name).second) {
      return Status::error(ErrorCode::kInvalidArgument,
                           "duplicate or empty microthread name '" + t.name +
                               "'");
    }
    if (t.source.empty() && t.native == nullptr) {
      return Status::error(ErrorCode::kInvalidArgument,
                           "microthread '" + t.name +
                               "' has neither source nor native body");
    }
  }

  ProgramInfo info;
  info.id = ProgramId(site_.id(), next_counter_++);
  info.name = spec.name;
  info.home_site = site_.id();
  for (const auto& t : spec.threads) info.thread_names.push_back(t.name);
  info.args = spec.args;

  auto entry = info.thread_by_name(spec.entry);
  if (!entry.has_value()) {
    return Status::error(ErrorCode::kNotFound,
                         "entry microthread '" + spec.entry + "' not found");
  }
  info.entry_thread = *entry;

  // Register native bodies so the code manager can resolve them locally.
  for (const auto& t : spec.threads) {
    if (t.native != nullptr) {
      NativeRegistry::instance().register_fn(spec.name, t.name, t.native);
    }
  }

  register_info(info);
  site_.code().store_sources(info, spec);

  // Fire the entry microframe with a single trigger parameter.
  FrameId f = site_.memory().create_frame(info.id, *entry, 1, /*priority=*/0);
  Status st =
      site_.memory().apply_param(f, 0, to_bytes(std::int64_t{0}));
  if (!st.is_ok()) return st;

  // Seed epoch-0 durability (persist + replicate info and sources) so the
  // program survives a home death even before the first checkpoint.
  site_.crash().on_program_started(info.id);

  SDVM_INFO(site_.tag()) << "started program '" << spec.name << "' as "
                         << info.id.value;
  return info.id;
}

void ProgramManager::register_info(const ProgramInfo& info) {
  infos_[info.id] = info;
  auto waiting = info_pending_.extract(info.id);
  if (!waiting.empty()) {
    for (auto& cb : waiting.mapped()) cb(Status::ok());
  }
}

const ProgramInfo* ProgramManager::find(ProgramId pid) const {
  auto it = infos_.find(pid);
  return it == infos_.end() ? nullptr : &it->second;
}

void ProgramManager::ensure_known(ProgramId pid, SiteId hint,
                                  std::function<void(Status)> cb) {
  if (infos_.contains(pid)) {
    cb(Status::ok());
    return;
  }
  bool first = !info_pending_.contains(pid);
  info_pending_[pid].push_back(std::move(cb));
  if (!first) return;

  SdMessage req;
  req.dst = hint != kInvalidSite ? hint : pid.home_site();
  req.dst = site_.cluster().resolve_successor(req.dst);
  req.src_mgr = req.dst_mgr = ManagerId::kProgram;
  req.type = MsgType::kProgramInfoRequest;
  req.program = pid;
  (void)site_.messages().request(req, [this, pid](Result<SdMessage> r) {
    auto waiting = info_pending_.extract(pid);
    if (!r.is_ok()) {
      if (!waiting.empty()) {
        for (auto& w : waiting.mapped()) w(r.status());
      }
      return;
    }
    ByteReader rd(r.value().payload);
    auto info = ProgramInfo::deserialize(rd);
    if (!info.is_ok()) {
      if (!waiting.empty()) {
        for (auto& w : waiting.mapped()) w(info.status());
      }
      return;
    }
    infos_[pid] = info.value();
    if (!waiting.empty()) {
      for (auto& w : waiting.mapped()) w(Status::ok());
    }
  });
}

void ProgramManager::terminate(ProgramId pid, std::int64_t exit_code) {
  const ProgramInfo* info = find(pid);
  SiteId home = info != nullptr ? info->home_site : pid.home_site();
  home = site_.cluster().resolve_successor(home);

  if (home == site_.id()) {
    if (terminated_.contains(pid)) return;
    local_terminate(pid, exit_code);
    // "Its microthreads can safely be deleted from memory" cluster-wide.
    ByteWriter w;
    w.i64(exit_code);
    for (SiteId sid : site_.cluster().known_sites()) {
      if (sid == site_.id()) continue;
      SdMessage msg;
      msg.dst = sid;
      msg.src_mgr = msg.dst_mgr = ManagerId::kProgram;
      msg.type = MsgType::kProgramTerminated;
      msg.program = pid;
      msg.payload = w.bytes();
      (void)site_.messages().send(std::move(msg));
    }
  } else {
    ByteWriter w;
    w.i64(exit_code);
    SdMessage msg;
    msg.dst = home;
    msg.src_mgr = msg.dst_mgr = ManagerId::kProgram;
    msg.type = MsgType::kProgramTerminated;
    msg.program = pid;
    msg.payload = w.take();
    (void)site_.messages().send(std::move(msg));
  }
}

void ProgramManager::local_terminate(ProgramId pid, std::int64_t exit_code) {
  if (terminated_.contains(pid)) return;
  terminated_[pid] = exit_code;
  site_.drop_program_everywhere(pid);
  auto waiting = waiters_.extract(pid);
  if (!waiting.empty()) {
    for (auto& cb : waiting.mapped()) cb(exit_code);
  }
  SDVM_INFO(site_.tag()) << "program " << pid.value << " terminated (code "
                         << exit_code << ")";
}

bool ProgramManager::is_terminated(ProgramId pid) const {
  return terminated_.contains(pid);
}

std::optional<std::int64_t> ProgramManager::exit_code(ProgramId pid) const {
  auto it = terminated_.find(pid);
  return it == terminated_.end() ? std::nullopt
                                 : std::optional<std::int64_t>(it->second);
}

void ProgramManager::add_waiter(ProgramId pid,
                                std::function<void(std::int64_t)> cb) {
  auto it = terminated_.find(pid);
  if (it != terminated_.end()) {
    cb(it->second);
    return;
  }
  waiters_[pid].push_back(std::move(cb));
}

std::vector<ProgramId> ProgramManager::active_programs() const {
  std::vector<ProgramId> out;
  for (const auto& [pid, info] : infos_) {
    if (!terminated_.contains(pid)) out.push_back(pid);
  }
  return out;
}

void ProgramManager::handle(const SdMessage& msg) {
  switch (msg.type) {
    case MsgType::kProgramInfoRequest: {
      SdMessage reply;
      reply.src_mgr = reply.dst_mgr = ManagerId::kProgram;
      const ProgramInfo* info = find(msg.program);
      if (info == nullptr) {
        reply.type = MsgType::kProgramInfoReply;  // empty payload = unknown
      } else {
        reply.type = MsgType::kProgramInfoReply;
        ByteWriter w;
        info->serialize(w);
        reply.payload = w.take();
      }
      (void)site_.messages().respond(msg, std::move(reply));
      break;
    }
    case MsgType::kProgramTerminated: {
      std::int64_t code = 0;
      try {
        ByteReader r(msg.payload);
        code = r.i64();
      } catch (const DecodeError&) {
      }
      const ProgramInfo* info = find(msg.program);
      SiteId home = info != nullptr ? info->home_site : msg.program.home_site();
      if (site_.cluster().resolve_successor(home) == site_.id()) {
        terminate(msg.program, code);  // we are home: rebroadcast
      } else {
        local_terminate(msg.program, code);
      }
      break;
    }
    default:
      SDVM_WARN(site_.tag()) << "program manager: unexpected "
                             << to_string(msg.type);
  }
}

}  // namespace sdvm
