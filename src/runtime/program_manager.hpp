// Program manager (paper §4): "maintains a list of all programs the local
// site currently works on", including each program's code home site,
// checkpoint sites, and the terminated flag that lets microthreads be
// "safely deleted from memory". Also answers program-info requests from
// sites that encounter frames of programs they have never seen.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "common/status.hpp"
#include "runtime/message.hpp"
#include "runtime/program.hpp"

namespace sdvm {

class Site;

class ProgramManager {
 public:
  explicit ProgramManager(Site& site) : site_(site) {}

  /// Home-site entry point: registers the program, stores its sources with
  /// the code manager, and fires the entry microframe.
  Result<ProgramId> start_program(const ProgramSpec& spec);

  void register_info(const ProgramInfo& info);
  [[nodiscard]] const ProgramInfo* find(ProgramId pid) const;

  /// Ensures the program is known locally, fetching the info from `hint`
  /// (typically the site that sent us a frame) if necessary. The callback
  /// runs under the site lock.
  void ensure_known(ProgramId pid, SiteId hint,
                    std::function<void(Status)> cb);

  /// Any site may call this (exit_program instruction); the home site
  /// broadcasts termination to the whole cluster.
  void terminate(ProgramId pid, std::int64_t exit_code);

  [[nodiscard]] bool is_terminated(ProgramId pid) const;
  [[nodiscard]] std::optional<std::int64_t> exit_code(ProgramId pid) const;

  /// Completion waiters (API Program::wait, sim run-until). Fires
  /// immediately if already terminated.
  void add_waiter(ProgramId pid, std::function<void(std::int64_t)> cb);

  [[nodiscard]] std::vector<ProgramId> active_programs() const;
  [[nodiscard]] std::size_t program_count() const { return infos_.size(); }

  /// Every program that finished on this site, with its exit code
  /// (sdvmd prints these as they land on the frontend).
  [[nodiscard]] std::vector<std::pair<ProgramId, std::int64_t>>
  terminated_programs() const {
    return {terminated_.begin(), terminated_.end()};
  }

  void handle(const SdMessage& msg);

 private:
  void local_terminate(ProgramId pid, std::int64_t exit_code);

  Site& site_;
  std::uint32_t next_counter_ = 1;
  std::map<ProgramId, ProgramInfo> infos_;
  std::map<ProgramId, std::int64_t> terminated_;
  std::map<ProgramId, std::vector<std::function<void(std::int64_t)>>> waiters_;
  std::map<ProgramId, std::vector<std::function<void(Status)>>> info_pending_;
};

}  // namespace sdvm
