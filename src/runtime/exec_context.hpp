// ExecContext: the concrete Context bound to one microthread execution.
// Also implements the MicroC VM's IntrinsicHandler, so bytecode and native
// microthreads share identical semantics. Each operation takes the site
// lock briefly; blocking operations (remote memory, rerouted files) park
// the calling worker thread *outside* the lock.
#pragma once

#include <vector>

#include "microc/vm.hpp"
#include "runtime/context.hpp"
#include "runtime/frame.hpp"
#include "runtime/message.hpp"
#include "runtime/program.hpp"

namespace sdvm {

class Site;

class ExecContext final : public Context, public microc::IntrinsicHandler {
 public:
  ExecContext(Site& site, Microframe frame, ProgramInfo info);

  // --- Context ---------------------------------------------------------
  int num_params() const override;
  std::int64_t param_int(int index) const override;
  std::span<const std::byte> param_bytes(int index) const override;
  int num_args() const override;
  std::int64_t arg(int index) const override;
  GlobalAddress spawn(std::string_view thread_name, int nparams,
                      int priority) override;
  void send_int(GlobalAddress frame, int slot, std::int64_t value) override;
  void send_bytes(GlobalAddress frame, int slot,
                  std::span<const std::byte> value) override;
  GlobalAddress alloc_global(std::int64_t nwords) override;
  std::int64_t mem_read(GlobalAddress addr, std::int64_t index) override;
  void mem_write(GlobalAddress addr, std::int64_t index,
                 std::int64_t value) override;
  void out(std::int64_t value) override;  // also the VM intrinsic
  void out_str(std::string_view text) override;
  std::string file_read(std::string_view path) override;
  void file_write(std::string_view path, std::string_view data) override;
  void exit_program(std::int64_t code) override;
  void charge(std::int64_t cycles) override;  // also the VM intrinsic
  SiteId site() const override;
  ProgramId program() const override { return info_.id; }

  // --- microc::IntrinsicHandler (delegating shims) ------------------------
  std::int64_t param(std::int64_t index) override {
    return param_int(static_cast<int>(index));
  }
  std::int64_t num_params() override {
    return std::as_const(*this).num_params();
  }
  std::int64_t spawn(const std::string& thread_name,
                     std::int64_t nparams) override {
    return static_cast<std::int64_t>(
        spawn(std::string_view{thread_name}, static_cast<int>(nparams), 0)
            .value);
  }
  std::int64_t spawn_prio(const std::string& thread_name,
                          std::int64_t nparams,
                          std::int64_t priority) override {
    return static_cast<std::int64_t>(
        spawn(std::string_view{thread_name}, static_cast<int>(nparams),
              static_cast<int>(priority))
            .value);
  }
  void send(std::int64_t frame, std::int64_t slot,
            std::int64_t value) override {
    send_int(GlobalAddress{static_cast<std::uint64_t>(frame)},
             static_cast<int>(slot), value);
  }
  std::int64_t alloc(std::int64_t nwords) override {
    return static_cast<std::int64_t>(alloc_global(nwords).value);
  }
  std::int64_t load(std::int64_t addr, std::int64_t index) override {
    return mem_read(GlobalAddress{static_cast<std::uint64_t>(addr)}, index);
  }
  void store(std::int64_t addr, std::int64_t index,
             std::int64_t value) override {
    mem_write(GlobalAddress{static_cast<std::uint64_t>(addr)}, index, value);
  }
  void out_str(const std::string& text) override {
    out_str(std::string_view{text});
  }
  std::int64_t self_site() override { return site(); }
  std::int64_t arg(std::int64_t index) override {
    return std::as_const(*this).arg(static_cast<int>(index));
  }
  std::int64_t num_args() override {
    return std::as_const(*this).num_args();
  }

  /// Sim-mode outgoing messages, buffered until virtual completion.
  std::vector<SdMessage> deferred;

  [[nodiscard]] std::int64_t charged_cycles() const { return charged_; }
  [[nodiscard]] bool exit_requested() const { return exit_requested_; }
  [[nodiscard]] std::int64_t exit_code() const { return exit_code_; }
  [[nodiscard]] const Microframe& frame() const { return frame_; }
  [[nodiscard]] const ProgramInfo& info() const { return info_; }

 private:
  Site& site_;
  Microframe frame_;
  ProgramInfo info_;
  std::int64_t charged_ = 0;
  bool exit_requested_ = false;
  std::int64_t exit_code_ = 0;
};

}  // namespace sdvm
