// Frame-career tracing: the observable version of the paper's Figure 5
// ("The career of microframes"). Each lifecycle transition of a
// microframe emits one event; tests assert the exact legal sequence and
// tools can visualize a run. Zero cost when no hook is installed.
#pragma once

#include <functional>

#include "common/types.hpp"

namespace sdvm {

enum class FrameEvent : std::uint8_t {
  kCreated = 0,        // allocated in the attraction memory
  kParamApplied,       // one parameter arrived
  kBecameExecutable,   // last parameter arrived (dataflow firing rule)
  kCodeRequested,      // scheduling manager asked the code manager
  kBecameReady,        // microthread resolved; queued for execution
  kExecutionStarted,   // processing manager picked it up
  kConsumed,           // executed; the frame vanishes
  kGivenAway,          // shipped in a help reply (leaves this site)
  kAdopted,            // arrived from another site (help reply / import)
};

[[nodiscard]] inline const char* to_string(FrameEvent e) {
  switch (e) {
    case FrameEvent::kCreated:          return "created";
    case FrameEvent::kParamApplied:     return "param-applied";
    case FrameEvent::kBecameExecutable: return "executable";
    case FrameEvent::kCodeRequested:    return "code-requested";
    case FrameEvent::kBecameReady:      return "ready";
    case FrameEvent::kExecutionStarted: return "executing";
    case FrameEvent::kConsumed:         return "consumed";
    case FrameEvent::kGivenAway:        return "given-away";
    case FrameEvent::kAdopted:          return "adopted";
  }
  return "?";
}

/// Installed per site; invoked under the site lock — keep it cheap.
using FrameTraceHook =
    std::function<void(FrameEvent event, FrameId frame, MicrothreadId thread)>;

}  // namespace sdvm
