// I/O manager (paper §4): "offers the functionality to access disk files
// and communicate with the user". Program output is routed to the
// program's frontend (its home site); files get global handles containing
// the owning site's id, and access from any site is rerouted there.
//
// Files live in a per-site virtual filesystem (an in-memory map the host
// application seeds), keeping tests hermetic; paths of the form
// "@<site>/rest" address another site's VFS explicitly.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "runtime/checkpoint_store.hpp"
#include "runtime/message.hpp"
#include "runtime/metrics.hpp"

namespace sdvm {

class Site;

class IoManager {
 public:
  explicit IoManager(Site& site) : site_(site) {}

  // --- program output ------------------------------------------------------
  /// Called from a running microthread; routes to the frontend site.
  void output_int(ProgramId pid, std::int64_t value);
  void output_str(ProgramId pid, std::string text);

  /// Frontend side: collected output lines, in arrival order.
  [[nodiscard]] std::vector<std::string> outputs(ProgramId pid) const;
  /// The raw tagged records (tests and checkpoint export).
  [[nodiscard]] std::vector<IoRecord> export_log(ProgramId pid) const;
  /// New frontend after a home takeover: installs the replicated log so
  /// pre-crash output survives and replayed lines dedupe against it.
  void import_log(ProgramId pid, std::vector<IoRecord> log);
  /// Recovery to `epoch`: drops records tagged >= epoch — replay from that
  /// epoch regenerates exactly those lines, so output lands exactly once.
  void on_rollback(ProgramId pid, std::uint64_t epoch);
  /// Optional live hook (e.g. the API surfaces this to the user).
  using OutputCallback = std::function<void(ProgramId, const std::string&)>;
  void set_output_callback(OutputCallback cb) { callback_ = std::move(cb); }

  // --- virtual filesystem -----------------------------------------------------
  void vfs_put(const std::string& path, std::string data);
  [[nodiscard]] Result<std::string> vfs_get(const std::string& path) const;

  /// Wait cell for rerouted file access; the worker parks on it outside
  /// the site lock (same pattern as attraction-memory fetches).
  struct IoWait {
    std::mutex m;
    std::condition_variable cv;
    bool done = false;
    Status status;
    std::string data;

    void wait() {
      std::unique_lock lk(m);
      cv.wait(lk, [this] { return done; });
    }
    void signal(Status st, std::string d = {}) {
      {
        std::lock_guard lk(m);
        done = true;
        status = std::move(st);
        data = std::move(d);
      }
      cv.notify_all();
    }
  };

  /// File access from a microthread, called under the site lock.
  /// "@<site>/path" reroutes to that site; plain paths are local. When the
  /// target is remote, *wait is set and the caller parks on it.
  Result<std::string> try_file_read(const std::string& path,
                                    std::shared_ptr<IoWait>* wait);
  Status try_file_write(const std::string& path, std::string data,
                        std::shared_ptr<IoWait>* wait);

  /// Sim-mode oracle: resolves remote file access synchronously against
  /// the owner's VFS (the simulator has the global view) and returns the
  /// modeled stall, which is charged to the running microthread. Without
  /// it, a remote access would park the one simulator thread forever.
  struct SimFileResult {
    Status status;
    std::string data;
    Nanos stall = 0;
  };
  using SimFileHook = std::function<SimFileResult(
      SiteId owner, const std::string& path, bool write, std::string data)>;
  void set_sim_file_hook(SimFileHook hook) { sim_file_ = std::move(hook); }

  void handle(const SdMessage& msg);
  void drop_program(ProgramId pid);

  /// Registers this manager's instruments ("io." prefix).
  void register_metrics(metrics::MetricsRegistry& registry);

  // Deprecated shims: read "io.*" via Site::introspect() instead.
  metrics::Counter rerouted_reads;
  metrics::Counter rerouted_writes;
  metrics::Counter outputs_delivered;  // lines landed at the frontend
  metrics::Counter outputs_deduped;    // replayed lines dropped on rollback

 private:
  /// Splits "@3/data.txt" into (3, "data.txt"); plain paths → local id.
  [[nodiscard]] std::pair<SiteId, std::string> parse_path(
      const std::string& path) const;
  void deliver_output(ProgramId pid, std::string line);

  Site& site_;
  std::map<ProgramId, std::vector<IoRecord>> outputs_;
  std::map<std::string, std::string> vfs_;
  OutputCallback callback_;
  SimFileHook sim_file_;
};

}  // namespace sdvm
