#include "runtime/processing_manager.hpp"

#include <chrono>

#include "runtime/exec_context.hpp"
#include "runtime/site.hpp"

namespace sdvm {

void ProcessingManager::register_metrics(metrics::MetricsRegistry& registry) {
  registry.register_counter("proc.executed", &executed_total);
  registry.register_counter("proc.trapped", &trapped_total);
  registry.register_histogram("proc.runtime_ns", &runtime_ns);
  registry.register_histogram("proc.vm_dispatch_ns", &vm_dispatch_ns);
  registry.register_gauge("proc.running", [this] {
    return static_cast<std::int64_t>(running());
  });
}

void ProcessingManager::start_workers(int slots) {
  std::lock_guard lk(worker_mu_);
  if (!workers_.empty()) return;
  stopping_ = false;
  for (int i = 0; i < std::max(slots, 1); ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

void ProcessingManager::stop() {
  {
    std::lock_guard lk(worker_mu_);
    stopping_ = true;
  }
  worker_cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
}

void ProcessingManager::kick() {
  worker_cv_.notify_all();
}

void ProcessingManager::worker_loop() {
  std::unique_lock lk(worker_mu_);
  while (!stopping_) {
    lk.unlock();
    bool did_work = execute_once();
    lk.lock();
    if (!did_work && !stopping_) {
      // Nothing ready; sleep until kicked (bounded, as a safety net
      // against missed wakeups during shutdown races).
      worker_cv_.wait_for(lk, std::chrono::milliseconds(2));
    }
  }
}

namespace {

struct BodyResult {
  Status status;
  std::uint64_t cycles = 0;
  /// Wall nanos inside the VM dispatch loop (0 for native bodies).
  Nanos vm_ns = 0;
};

/// Runs the microthread body.
BodyResult run_body(const Executable& exec, ExecContext& ctx) {
  if (exec.native != nullptr) {
    try {
      exec.native(ctx);
      return {Status::ok(), 0, 0};
    } catch (const microc::IntrinsicError& e) {
      return {Status::error(ErrorCode::kInternal, e.what()), 0, 0};
    } catch (const std::exception& e) {
      return {Status::error(ErrorCode::kInternal,
                            std::string("native microthread threw: ") +
                                e.what()),
              0, 0};
    }
  }
  auto started = std::chrono::steady_clock::now();
  // Fast path: the code manager pre-decoded and verified the artifact, so
  // the VM runs the direct-threaded unchecked loop. The decode-on-the-fly
  // fallback only covers executables built outside the code manager.
  auto result =
      exec.decoded != nullptr
          ? microc::Vm::run(*exec.decoded, *exec.bytecode, ctx)
          : microc::Vm::run(*exec.bytecode, ctx);
  Nanos vm_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - started)
                    .count();
  return {result.status, result.cycles, vm_ns};
}

}  // namespace

bool ProcessingManager::execute_once() {
  Microframe frame;
  Executable exec;
  ProgramInfo info;
  {
    std::lock_guard lk(site_.lock());
    if (frozen_.load()) return false;
    auto work = site_.scheduling().take_ready();
    if (!work.has_value()) return false;
    frame = std::move(work->frame);
    exec = std::move(work->exec);
    const ProgramInfo* pi = site_.programs().find(frame.program);
    if (pi == nullptr) return true;  // program vanished; consume the frame
    info = *pi;
    running_.fetch_add(1, std::memory_order_relaxed);
  }

  {
    std::lock_guard lk(site_.lock());
    site_.trace(FrameEvent::kExecutionStarted, frame.id, frame.thread);
  }
  ExecContext ctx(site_, std::move(frame), std::move(info));
  auto started = std::chrono::steady_clock::now();
  auto [status, cycles, vm_ns] = run_body(exec, ctx);
  Nanos elapsed = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now() - started)
                      .count();

  {
    std::lock_guard lk(site_.lock());
    running_.fetch_sub(1, std::memory_order_relaxed);
    ++executed_total;
    runtime_ns.record(elapsed);
    if (vm_ns > 0) vm_dispatch_ns.record(vm_ns);
    AccountEntry& acct = ledger_[ctx.program()];
    acct.microthreads += 1;
    acct.vm_instructions += cycles;
    acct.charged_cycles += static_cast<std::uint64_t>(ctx.charged_cycles());
    site_.trace(FrameEvent::kConsumed, ctx.frame().id, ctx.frame().thread);
    if (!status.is_ok()) {
      ++trapped_total;
      SDVM_WARN(site_.tag()) << "microthread failed: " << status.to_string();
    }
  }
  site_.driver().notify_work();
  return true;
}

Nanos ProcessingManager::execute_one_sim() {
  // Called under the site lock by the pump; single-threaded by design.
  if (frozen_.load()) return -1;
  auto work = site_.scheduling().take_ready();
  if (!work.has_value()) return -1;
  const ProgramInfo* pi = site_.programs().find(work->frame.program);
  if (pi == nullptr) return 1;  // consumed a stale frame: negligible cost

  ExecContext ctx(site_, std::move(work->frame), *pi);
  site_.trace(FrameEvent::kExecutionStarted, ctx.frame().id,
              ctx.frame().thread);
  site_.messages().set_defer(&ctx.deferred);
  running_.store(1, std::memory_order_relaxed);
  auto [status, cycles, vm_ns] = run_body(work->exec, ctx);
  running_.store(0, std::memory_order_relaxed);
  if (vm_ns > 0) vm_dispatch_ns.record(vm_ns);
  site_.messages().set_defer(nullptr);

  ++executed_total;
  AccountEntry& acct = ledger_[ctx.program()];
  acct.microthreads += 1;
  acct.vm_instructions += cycles;
  acct.charged_cycles += static_cast<std::uint64_t>(ctx.charged_cycles());
  site_.trace(FrameEvent::kConsumed, ctx.frame().id, ctx.frame().thread);
  if (!status.is_ok()) {
    ++trapped_total;
    SDVM_WARN(site_.tag()) << "microthread failed: " << status.to_string();
  }

  double speed = std::max(site_.config().speed, 1e-6);
  Nanos compute = static_cast<Nanos>(
      (static_cast<double>(cycles) * site_.config().sim_nanos_per_instr +
       static_cast<double>(ctx.charged_cycles())) /
      speed);
  Nanos stall = site_.memory().take_sim_stall();
  Nanos cost = std::max<Nanos>(compute + stall, 1);
  runtime_ns.record(cost);

  // Results leave the site when the microthread (virtually) completes
  // (paper §3.2 step 4: "send the results").
  if (!ctx.deferred.empty()) {
    auto msgs = std::make_shared<std::vector<SdMessage>>(
        std::move(ctx.deferred));
    site_.schedule_after(cost, [this, msgs] {
      // One burst: the transport groups by destination and coalesces.
      (void)site_.messages().send_burst(std::move(*msgs));
    });
  }
  return cost;
}

}  // namespace sdvm
