// Driver: the seam between a Site (the daemon) and whatever is driving it —
// an engine thread per site (threads/tcp modes) or the discrete-event
// simulator (sim mode). The Site never sleeps or spins itself; it asks the
// driver to pump it again later.
#pragma once

#include "common/types.hpp"

namespace sdvm {

class Driver {
 public:
  virtual ~Driver() = default;

  /// Guarantees Site::pump() runs within `delay` from now (timer support).
  virtual void request_wakeup(Nanos delay) = 0;

  /// Pump soon: new inbox data or freshly ready work.
  virtual void notify_work() = 0;

  /// True when time is virtual and execution must be serialized by the
  /// event loop (one microthread at a time per site).
  [[nodiscard]] virtual bool simulated() const { return false; }
};

}  // namespace sdvm
