// Durable checkpoint storage (paper §6: "execution state is never lost
// once an epoch commits" — made true across process death).
//
// Three layers:
//   * StateStore — a tiny durable key→bytes map with atomic writes.
//     MemStateStore backs the simulator (survives a simulated restart when
//     held outside the Site), DirStateStore backs real daemons
//     (`sdvmd --state-dir`, write-to-temp + rename), FaultyStateStore is a
//     seeded fault-injecting decorator (torn write, bit flip, dropped
//     write) for chaos runs.
//   * DurableEpoch — everything a site needs to resurrect a program from a
//     committed epoch: program info, per-site state shards, microthread
//     sources, and the frontend's tagged output log.
//   * CheckpointStore — the on-disk format: per-epoch files
//     (`p<pid>-e<epoch>.ckpt`) framed with magic/version/CRC32, plus a
//     `p<pid>.manifest` naming the latest epoch. Writes are epoch-
//     versioned: a torn write of epoch N leaves epoch N-1 intact, and
//     loading falls back from a corrupt manifest or epoch file to the
//     newest file that still validates. Corrupt artifacts are counted
//     (surfaced as `crash.disk_corrupt_skipped`), never trusted.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "common/serialize.hpp"
#include "common/status.hpp"
#include "common/types.hpp"
#include "runtime/program.hpp"

namespace sdvm {

/// One line of program output, tagged for exactly-once replay: `epoch` is
/// the last committed checkpoint epoch when the line landed at the
/// frontend, `seq` its position in the log. Recovery truncates records
/// with epoch >= the restored epoch; replay regenerates exactly those.
struct IoRecord {
  std::uint64_t epoch = 0;
  std::uint64_t seq = 0;
  std::string text;
};

/// Minimal durable key→bytes map. `put` must be atomic: after a crash the
/// reader sees either the old value or the new one, never a mix (the
/// directory implementation writes a temp file and renames).
class StateStore {
 public:
  virtual ~StateStore() = default;
  virtual Status put(const std::string& name,
                     std::span<const std::byte> data) = 0;
  virtual Result<std::vector<std::byte>> get(const std::string& name) = 0;
  virtual std::vector<std::string> list() = 0;
  virtual void remove(const std::string& name) = 0;
};

/// In-memory backend for the simulator: the SimCluster owns one per site
/// slot, so it survives a simulated daemon restart the way a directory
/// survives a real one.
class MemStateStore : public StateStore {
 public:
  Status put(const std::string& name,
             std::span<const std::byte> data) override;
  Result<std::vector<std::byte>> get(const std::string& name) override;
  std::vector<std::string> list() override;
  void remove(const std::string& name) override;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::vector<std::byte>> files_;
};

/// Filesystem backend (`sdvmd --state-dir DIR`). Creates the directory;
/// writes go to `<name>.tmp`, are fsynced, then renamed over `<name>`.
class DirStateStore : public StateStore {
 public:
  explicit DirStateStore(std::string root);

  Status put(const std::string& name,
             std::span<const std::byte> data) override;
  Result<std::vector<std::byte>> get(const std::string& name) override;
  std::vector<std::string> list() override;
  void remove(const std::string& name) override;

 private:
  std::string root_;
};

/// Seeded disk-fault decorator: with the configured probabilities a put is
/// truncated mid-write (torn write), lands with one bit flipped, or is
/// silently dropped. Reads pass through — the corruption is durable, which
/// is exactly what the CRC framing must catch.
class FaultyStateStore : public StateStore {
 public:
  struct Options {
    std::uint64_t seed = 1;
    double torn_write = 0.0;
    double bit_flip = 0.0;
    double drop_write = 0.0;
  };

  FaultyStateStore(std::shared_ptr<StateStore> inner, Options opts)
      : inner_(std::move(inner)), opts_(opts), rng_(opts.seed) {}

  Status put(const std::string& name,
             std::span<const std::byte> data) override;
  Result<std::vector<std::byte>> get(const std::string& name) override {
    return inner_->get(name);
  }
  std::vector<std::string> list() override { return inner_->list(); }
  void remove(const std::string& name) override { inner_->remove(name); }

  [[nodiscard]] std::uint64_t faults_injected() const {
    return faults_injected_;
  }

 private:
  std::shared_ptr<StateStore> inner_;
  Options opts_;
  Xoshiro256 rng_;
  std::uint64_t faults_injected_ = 0;
};

/// Everything needed to resurrect a program from a committed epoch.
struct DurableEpoch {
  ProgramId pid{0};
  std::uint64_t epoch = 0;
  ProgramInfo info;
  // Per contributing site: serialized state shard (frames + memory).
  std::map<SiteId, std::vector<std::byte>> shards;
  // Microthread sources so a new home can serve code.
  std::vector<std::pair<MicrothreadId, std::string>> sources;
  // The frontend's tagged output log (duplicate suppression on replay).
  std::vector<IoRecord> io_log;
  // Directory-shard lease epochs at commit time (shard id → epoch). Seeds
  // the epoch floor on cold-restart recovery so post-restart leases never
  // regress below what the failed cluster had reached.
  std::map<std::uint32_t, std::uint64_t> shard_epochs;

  void serialize(ByteWriter& w) const;
  [[nodiscard]] static Result<DurableEpoch> deserialize(ByteReader& r);
};

/// CRC32 (IEEE, reflected) over a byte span — exposed for tests.
[[nodiscard]] std::uint32_t crc32(std::span<const std::byte> data);

class CheckpointStore {
 public:
  explicit CheckpointStore(std::shared_ptr<StateStore> backend)
      : backend_(std::move(backend)) {}

  /// Writes the epoch file, updates the manifest, then garbage-collects
  /// everything older than the previous epoch (two generations survive so
  /// a torn write of epoch N still leaves N-1 loadable).
  Status persist(const DurableEpoch& snap);

  /// Newest epoch of `pid` that validates (manifest first, then a scan of
  /// epoch files from newest to oldest). Corrupt artifacts increment
  /// corrupt_skipped() and are ignored.
  Result<DurableEpoch> load_latest(ProgramId pid);

  /// Every `(program, best valid epoch)` pair in the store — what a
  /// restarted daemon advertises during sign-on.
  std::vector<std::pair<ProgramId, std::uint64_t>> recoverable();

  /// Removes every artifact of `pid` (program terminated).
  void drop(ProgramId pid);

  [[nodiscard]] std::uint64_t corrupt_skipped() const {
    return corrupt_skipped_;
  }
  [[nodiscard]] std::uint64_t persisted() const { return persisted_; }
  [[nodiscard]] StateStore& backend() { return *backend_; }

  // --- framing (exposed for fuzz tests) ---------------------------------
  /// `[magic u32][version u32][pid u64][epoch u64][len u32][crc u32][payload]`
  [[nodiscard]] static std::vector<std::byte> frame(
      ProgramId pid, std::uint64_t epoch, std::span<const std::byte> payload);
  /// Validates magic/version/length/CRC and (if nonzero) the expected pid;
  /// returns the payload.
  [[nodiscard]] static Result<std::vector<std::byte>> unframe(
      std::span<const std::byte> file, ProgramId expected_pid);

  [[nodiscard]] static std::string epoch_file_name(ProgramId pid,
                                                   std::uint64_t epoch);
  [[nodiscard]] static std::string manifest_name(ProgramId pid);

 private:
  /// Parses `p<pid>-e<epoch>.ckpt` / `p<pid>.manifest`; epoch is
  /// `UINT64_MAX` for manifests. Returns false for foreign names.
  static bool parse_name(const std::string& name, ProgramId* pid,
                         std::uint64_t* epoch);

  Result<DurableEpoch> load_epoch_file(ProgramId pid, std::uint64_t epoch);

  std::shared_ptr<StateStore> backend_;
  std::uint64_t corrupt_skipped_ = 0;
  std::uint64_t persisted_ = 0;
};

}  // namespace sdvm
