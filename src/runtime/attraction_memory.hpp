// Attraction memory: the COMA-style global memory (paper §3.1, §4). Holds
// the local part of the global memory, attracts requested objects to the
// local site transparently, and stores microframes until they have
// received all their parameters.
//
// The object directory is hash-sharded across the live membership
// (shard_map.hpp): each of the kNumShards logical shards has exactly one
// authoritative holder, guarded by an epoch-numbered ownership lease.
// Migration stays mediated (request → recall → grant), but the mediator
// for an object is its shard's lease holder, not the creating site — so
// directory authority survives the death of any single site. Requests
// carry the (shard, epoch) the sender believes; a non-authoritative
// receiver rejects with kShardStale and the sender re-routes — stale
// authority is never silently served. Shard handoff is a first-class
// protocol: graceful departure and remigration transfer entries with a
// bumped epoch (kShardHandoff); a crashed holder triggers deterministic
// successor takeover plus a rebuild from live-site re-registration
// (kShardRecover) and checkpoint restore. Microframes are not sharded:
// they keep living at their creating site, reached through the existing
// home-site + sign-off successor-chain routing.
#pragma once

#include <algorithm>
#include <array>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/status.hpp"
#include "runtime/frame.hpp"
#include "runtime/message.hpp"
#include "runtime/metrics.hpp"
#include "runtime/shard_map.hpp"

namespace sdvm {

class Site;

/// A migratable global-memory object: an array of int64 words.
struct MemObject {
  GlobalAddress addr;
  ProgramId program;
  std::vector<std::int64_t> words;

  void serialize(ByteWriter& w) const {
    w.address(addr);
    w.program(program);
    w.u32(static_cast<std::uint32_t>(words.size()));
    for (auto v : words) w.i64(v);
  }
  static Result<MemObject> deserialize(ByteReader& r) {
    try {
      MemObject o;
      o.addr = r.address();
      o.program = r.program();
      std::uint32_t n = r.count(/*min_bytes_each=*/8);
      o.words.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) o.words.push_back(r.i64());
      return o;
    } catch (const DecodeError& e) {
      return Status::error(ErrorCode::kCorrupt,
                           std::string("bad MemObject: ") + e.what());
    }
  }
};

class AttractionMemory {
 public:
  explicit AttractionMemory(Site& site) : site_(site) {
    targets_.fill(kInvalidSite);
  }

  // --- microframes ---------------------------------------------------------
  /// Allocates a frame homed at the local site. If nparams == 0 the frame
  /// is immediately executable and goes straight to the scheduler.
  FrameId create_frame(ProgramId pid, MicrothreadId tid, std::size_t nparams,
                       int priority);

  /// Applies a parameter: locally if the frame lives here, otherwise an
  /// kApplyParam message travels to the frame's homesite. When the last
  /// parameter arrives the frame is handed to the scheduling manager.
  Status apply_param(GlobalAddress frame, std::size_t slot,
                     std::vector<std::byte> value);

  /// Takes an executable frame out of the store for the scheduler (the
  /// frame's "career" step from attraction memory to scheduling manager).
  [[nodiscard]] Result<Microframe> take_frame(FrameId id);

  /// Re-registers a frame received from another site (help reply): we are
  /// not its homesite, but it is executable and will be consumed here.
  void adopt_frame(Microframe frame);

  // --- global memory objects -------------------------------------------------
  GlobalAddress alloc_object(ProgramId pid, std::int64_t nwords);

  /// Synchronization cell for a microthread parked on a remote fetch. The
  /// worker waits outside the site lock; the pump signals on grant/failure.
  struct FetchState {
    std::mutex m;
    std::condition_variable cv;
    bool done = false;
    Status status;

    void wait() {
      std::unique_lock lk(m);
      cv.wait(lk, [this] { return done; });
    }
    void signal(Status st) {
      {
        std::lock_guard lk(m);
        done = true;
        status = std::move(st);
      }
      cv.notify_all();
    }
  };

  /// Non-blocking word access from a running microthread, called under the
  /// site lock. If the object is local (or the sim oracle attracts it
  /// immediately, charging the stall), returns the value. Otherwise
  /// initiates migration and hands back a FetchState to wait on outside
  /// the lock; the caller retries afterwards.
  Result<std::int64_t> try_read_word(GlobalAddress addr, std::int64_t index,
                                     std::shared_ptr<FetchState>* wait);
  Status try_write_word(GlobalAddress addr, std::int64_t index,
                        std::int64_t value,
                        std::shared_ptr<FetchState>* wait);

  /// Virtual stall nanos accumulated by sim-oracle fetches since the last
  /// call (collected per microthread execution).
  [[nodiscard]] Nanos take_sim_stall() {
    Nanos s = sim_stall_;
    sim_stall_ = 0;
    return s;
  }
  /// Other managers (I/O reroutes) account their sim stalls here too.
  void add_sim_stall(Nanos stall) { sim_stall_ += std::max<Nanos>(stall, 0); }

  /// Sim-mode oracle: fetches the object from wherever it currently is,
  /// returns the stall cost in nanos. Installed by the simulator.
  using SimFetchHook =
      std::function<Result<Nanos>(GlobalAddress, MemObject* out)>;
  void set_sim_fetch_hook(SimFetchHook hook) { sim_fetch_ = std::move(hook); }

  /// Direct access for the simulator / checkpointing (object must be local).
  [[nodiscard]] MemObject* local_object(GlobalAddress addr);
  [[nodiscard]] bool owns(GlobalAddress addr) const;
  void install_object(MemObject obj);  // sim oracle / recovery
  void evict_object(GlobalAddress addr);
  void set_directory_owner(GlobalAddress addr, SiteId owner);
  [[nodiscard]] SiteId directory_owner(GlobalAddress addr) const;

  void handle(const SdMessage& msg);
  void drop_program(ProgramId pid);

  // --- sharded directory ----------------------------------------------------
  /// Periodic lease maintenance, driven from Site::bootstrap_tick at
  /// heartbeat cadence: renews held leases, remigrates shards whose
  /// rendezvous target moved, takes over shards whose holder died, times
  /// out rebuilds, and purges parked requests past their TTL.
  void shard_tick();

  /// The live-membership view changed (join, death, sign-off). Marks the
  /// cached rendezvous targets dirty and settles leases immediately so
  /// authority gaps close without waiting for the next tick.
  void on_membership_change();

  /// Where requests for `addr` should be sent right now: the shard's lease
  /// holder if it is believed alive, else the computed rendezvous target.
  [[nodiscard]] SiteId shard_route(GlobalAddress addr);

  /// True iff this site may answer authoritatively for the shard: it holds
  /// the lease AND its maintenance tick is current (a site whose tick has
  /// stalled past the lease TTL cannot have renewed and must stop
  /// answering — the split-brain guard).
  [[nodiscard]] bool shard_authoritative(std::uint32_t shard) const;

  /// Snapshot of the local lease table (invariant checkers).
  [[nodiscard]] std::array<ShardLease, kNumShards> shard_leases() const {
    return leases_;
  }
  [[nodiscard]] std::size_t shards_held() const;

  /// Highest lease epoch ever observed for the shard. Persisted with
  /// durable checkpoints; seeded on recovery so post-restart epochs never
  /// regress below what the failed cluster had reached.
  [[nodiscard]] std::uint64_t max_shard_epoch(std::uint32_t shard) const {
    return shard < kNumShards ? max_epoch_seen_[shard] : 0;
  }
  void seed_shard_epoch(std::uint32_t shard, std::uint64_t epoch) {
    if (shard < kNumShards && epoch > max_epoch_seen_[shard]) {
      max_epoch_seen_[shard] = epoch;
    }
  }

  // --- sign-off / checkpoint support ----------------------------------------
  /// Serializes everything (frames incl. state, objects, directory) for a
  /// program — used by checkpointing (all programs: pass kInvalid).
  [[nodiscard]] std::vector<std::byte> snapshot(ProgramId pid) const;
  void restore_snapshot(ByteReader& r);
  /// Moves all local state to `successor` on graceful sign-off.
  void relocate_all_to(SiteId successor);

  // --- introspection -----------------------------------------------------
  [[nodiscard]] std::size_t frame_count() const { return frames_.size(); }
  [[nodiscard]] std::size_t object_count() const { return objects_.size(); }

  /// Homesite-directory snapshot: (address, current owner) for every
  /// object created here. Chaos invariant checkers use this to assert
  /// that no global address is owned by a departed site.
  [[nodiscard]] std::vector<std::pair<GlobalAddress, SiteId>>
  directory_snapshot() const {
    std::vector<std::pair<GlobalAddress, SiteId>> out;
    out.reserve(directory_.size());
    for (const auto& [addr, entry] : directory_) {
      out.emplace_back(addr, entry.owner);
    }
    return out;
  }

  /// Addresses of objects physically resident on this site (chaos
  /// invariant checkers: every owned object must be registered with a
  /// live shard holder — the no-orphan check across handoffs).
  [[nodiscard]] std::vector<GlobalAddress> owned_addresses() const {
    std::vector<GlobalAddress> out;
    out.reserve(objects_.size());
    for (const auto& [addr, obj] : objects_) out.push_back(addr);
    return out;
  }

  /// Registers this manager's instruments ("mem." prefix).
  void register_metrics(metrics::MetricsRegistry& registry);

  // Deprecated shims: read "mem.*" via Site::introspect() instead.
  metrics::Counter migrations_in;
  metrics::Counter migrations_out;
  metrics::Counter local_hits;
  metrics::Counter frames_created;
  metrics::Counter params_applied;
  metrics::Counter remote_fetches;      // fetches that left the site
  // mutable: counted inside const lookup paths (sim oracle resolution).
  mutable metrics::Counter directory_lookups;

  // Sharded-directory instruments ("dir." prefix in the registry).
  metrics::Counter shard_handoffs;       // shards this site transferred away
  metrics::Counter lease_renewals;       // per-tick renewals of held leases
  metrics::Counter stale_epoch_rejects;  // routed requests rejected as stale

 private:
  void frame_became_executable(Microframe frame);
  /// Ensures the object is local, possibly initiating migration. Returns
  /// the object, or sets *wait, or fails.
  Result<MemObject*> attract(GlobalAddress addr,
                             std::shared_ptr<FetchState>* wait);
  void begin_fetch(GlobalAddress addr);
  void grant_next(GlobalAddress addr);

  Site& site_;
  std::uint64_t next_local_id_ = 1;

  std::unordered_map<FrameId, Microframe> frames_;
  std::unordered_map<GlobalAddress, MemObject> objects_;

  // Results that arrived for a frame homed here but not (yet) present.
  // During a graceful sign-off the relocated frame (kDirectoryImport) races
  // its own in-flight results; dropping the result would strand the frame
  // forever. Parked values are applied when the frame is adopted and
  // purged after a generous TTL (post-recovery duplicates are benign).
  struct PendingParam {
    std::uint32_t slot = 0;
    std::vector<std::byte> value;
    Nanos parked_at = 0;
  };
  std::unordered_map<FrameId, std::vector<PendingParam>> pending_params_;
  void park_param(GlobalAddress frame, std::size_t slot,
                  std::vector<std::byte> value);
  void purge_stale_params();

  // Homesite directory for objects created here: current owner site plus
  // the queue of sites waiting for migration (homesite-mediated protocol).
  struct Waiter {
    SiteId requester = kInvalidSite;
    std::uint64_t reply_seq = 0;                 // remote requester
    std::shared_ptr<FetchState> local;           // homesite's own fetch
  };
  struct DirEntry {
    SiteId owner = kInvalidSite;
    ProgramId program;
    std::deque<Waiter> waiters;
    bool recall_in_flight = false;
  };
  std::unordered_map<GlobalAddress, DirEntry> directory_;

  // Fetches this site is waiting on, keyed by object address.
  std::unordered_map<GlobalAddress, std::shared_ptr<FetchState>> fetching_;

  // --- sharded-directory state ---------------------------------------------
  // Routing/stale handling helpers (see attraction_memory.cpp).
  [[nodiscard]] bool site_alive(SiteId id) const;
  void reconcile_targets();
  SiteId route_of(std::uint32_t shard);
  bool merge_lease(std::uint32_t shard, SiteId holder, std::uint64_t epoch);
  void settle_leases(bool announce_held = false);
  void announce_leases(const std::vector<ShardLeaseAnnounce::Entry>& entries);
  void graceful_handoff(std::uint32_t shard, SiteId target,
                        std::vector<ShardLeaseAnnounce::Entry>* announce);
  std::vector<ShardDirEntry> strip_shard(std::uint32_t shard,
                                         SiteId new_holder,
                                         std::uint64_t epoch);
  void abdicate_to(std::uint32_t shard, SiteId winner, std::uint64_t epoch);
  void take_over_shard(std::uint32_t shard, bool rebuild);
  void begin_rebuild(std::uint32_t shard);
  void complete_rebuild(std::uint32_t shard);
  std::uint64_t next_epoch(std::uint32_t shard) const;
  void send_register(GlobalAddress addr, ProgramId pid, SiteId owner,
                     SiteId route, std::uint8_t hops);
  void reject_stale(const SdMessage& msg, std::uint32_t shard);
  void park_remote(const SdMessage& msg, std::uint32_t shard, Nanos parked_at);
  void park_local_fetch(GlobalAddress addr);
  void drain_parked(std::uint32_t shard);
  void purge_parked();
  void retry_fetch(GlobalAddress addr, const std::string& why);
  void flush_pending_registers();
  void process_object_request(const SdMessage& msg, Nanos parked_at);
  void process_register(const SdMessage& msg, Nanos parked_at);

  // Per-shard ownership leases as this site believes them, plus the highest
  // epoch ever seen (monotonicity floor for takeovers and cold restarts).
  std::array<ShardLease, kNumShards> leases_{};
  std::array<std::uint64_t, kNumShards> max_epoch_seen_{};

  // Cached rendezvous targets, recomputed lazily when membership changes
  // (the dirty flag keeps a 1000-site cluster build from going O(n^3)).
  std::array<SiteId, kNumShards> targets_{};
  bool shard_view_dirty_ = true;
  // False while our own entry is missing from the live view: a joiner's
  // membership snapshot is still partial, so lease moves must wait.
  bool shard_view_has_self_ = true;
  // Lowest id in the live view; only it may bootstrap-elect fresh shards.
  SiteId shard_view_lowest_ = kInvalidSite;
  Nanos last_shard_tick_ = 0;

  // Crash rebuild: after a takeover the new holder asks every live site to
  // re-register its physical objects; completion when all replied/failed
  // or the failure timeout fires.
  struct ShardRebuild {
    bool active = false;
    Nanos started_at = 0;
    std::uint64_t epoch = 0;
    std::size_t awaiting = 0;
  };
  std::array<ShardRebuild, kNumShards> rebuilds_{};
  Nanos last_rebuild_ns_ = 0;

  // Requests that arrived for a shard whose authority is in flux (handoff
  // or rebuild pending here): parked with their arrival time, reprocessed
  // when authority lands, answered kObjectMiss after the TTL.
  struct ParkedShardMsg {
    SdMessage msg;
    Nanos parked_at = 0;
  };
  std::array<std::deque<ParkedShardMsg>, kNumShards> parked_remote_;
  // Our own fetches waiting for shard authority to settle.
  std::unordered_map<GlobalAddress, Nanos> parked_local_;
  // Bounded kShardStale re-route retries per in-flight fetch.
  std::unordered_map<GlobalAddress, int> fetch_retries_;
  // Directory entries restored from a checkpoint (or allocated) while the
  // shard route was still unknown; flushed each tick.
  std::vector<ShardDirEntry> pending_registers_;

  SimFetchHook sim_fetch_;
  Nanos sim_stall_ = 0;
};

}  // namespace sdvm
