// Attraction memory: the COMA-style global memory (paper §3.1, §4). Holds
// the local part of the global memory, attracts requested objects to the
// local site transparently, and stores microframes until they have
// received all their parameters. The homesite directory ("see [5]")
// tracks the current owner of every object created here; migration is
// homesite-mediated (request → recall → grant), which serializes racing
// requests at one place.
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/status.hpp"
#include "runtime/frame.hpp"
#include "runtime/message.hpp"
#include "runtime/metrics.hpp"

namespace sdvm {

class Site;

/// A migratable global-memory object: an array of int64 words.
struct MemObject {
  GlobalAddress addr;
  ProgramId program;
  std::vector<std::int64_t> words;

  void serialize(ByteWriter& w) const {
    w.address(addr);
    w.program(program);
    w.u32(static_cast<std::uint32_t>(words.size()));
    for (auto v : words) w.i64(v);
  }
  static Result<MemObject> deserialize(ByteReader& r) {
    try {
      MemObject o;
      o.addr = r.address();
      o.program = r.program();
      std::uint32_t n = r.count(/*min_bytes_each=*/8);
      o.words.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) o.words.push_back(r.i64());
      return o;
    } catch (const DecodeError& e) {
      return Status::error(ErrorCode::kCorrupt,
                           std::string("bad MemObject: ") + e.what());
    }
  }
};

class AttractionMemory {
 public:
  explicit AttractionMemory(Site& site) : site_(site) {}

  // --- microframes ---------------------------------------------------------
  /// Allocates a frame homed at the local site. If nparams == 0 the frame
  /// is immediately executable and goes straight to the scheduler.
  FrameId create_frame(ProgramId pid, MicrothreadId tid, std::size_t nparams,
                       int priority);

  /// Applies a parameter: locally if the frame lives here, otherwise an
  /// kApplyParam message travels to the frame's homesite. When the last
  /// parameter arrives the frame is handed to the scheduling manager.
  Status apply_param(GlobalAddress frame, std::size_t slot,
                     std::vector<std::byte> value);

  /// Takes an executable frame out of the store for the scheduler (the
  /// frame's "career" step from attraction memory to scheduling manager).
  [[nodiscard]] Result<Microframe> take_frame(FrameId id);

  /// Re-registers a frame received from another site (help reply): we are
  /// not its homesite, but it is executable and will be consumed here.
  void adopt_frame(Microframe frame);

  // --- global memory objects -------------------------------------------------
  GlobalAddress alloc_object(ProgramId pid, std::int64_t nwords);

  /// Synchronization cell for a microthread parked on a remote fetch. The
  /// worker waits outside the site lock; the pump signals on grant/failure.
  struct FetchState {
    std::mutex m;
    std::condition_variable cv;
    bool done = false;
    Status status;

    void wait() {
      std::unique_lock lk(m);
      cv.wait(lk, [this] { return done; });
    }
    void signal(Status st) {
      {
        std::lock_guard lk(m);
        done = true;
        status = std::move(st);
      }
      cv.notify_all();
    }
  };

  /// Non-blocking word access from a running microthread, called under the
  /// site lock. If the object is local (or the sim oracle attracts it
  /// immediately, charging the stall), returns the value. Otherwise
  /// initiates migration and hands back a FetchState to wait on outside
  /// the lock; the caller retries afterwards.
  Result<std::int64_t> try_read_word(GlobalAddress addr, std::int64_t index,
                                     std::shared_ptr<FetchState>* wait);
  Status try_write_word(GlobalAddress addr, std::int64_t index,
                        std::int64_t value,
                        std::shared_ptr<FetchState>* wait);

  /// Virtual stall nanos accumulated by sim-oracle fetches since the last
  /// call (collected per microthread execution).
  [[nodiscard]] Nanos take_sim_stall() {
    Nanos s = sim_stall_;
    sim_stall_ = 0;
    return s;
  }
  /// Other managers (I/O reroutes) account their sim stalls here too.
  void add_sim_stall(Nanos stall) { sim_stall_ += std::max<Nanos>(stall, 0); }

  /// Sim-mode oracle: fetches the object from wherever it currently is,
  /// returns the stall cost in nanos. Installed by the simulator.
  using SimFetchHook =
      std::function<Result<Nanos>(GlobalAddress, MemObject* out)>;
  void set_sim_fetch_hook(SimFetchHook hook) { sim_fetch_ = std::move(hook); }

  /// Direct access for the simulator / checkpointing (object must be local).
  [[nodiscard]] MemObject* local_object(GlobalAddress addr);
  [[nodiscard]] bool owns(GlobalAddress addr) const;
  void install_object(MemObject obj);  // sim oracle / recovery
  void evict_object(GlobalAddress addr);
  void set_directory_owner(GlobalAddress addr, SiteId owner);
  [[nodiscard]] SiteId directory_owner(GlobalAddress addr) const;

  void handle(const SdMessage& msg);
  void drop_program(ProgramId pid);

  // --- sign-off / checkpoint support ----------------------------------------
  /// Serializes everything (frames incl. state, objects, directory) for a
  /// program — used by checkpointing (all programs: pass kInvalid).
  [[nodiscard]] std::vector<std::byte> snapshot(ProgramId pid) const;
  void restore_snapshot(ByteReader& r);
  /// Moves all local state to `successor` on graceful sign-off.
  void relocate_all_to(SiteId successor);

  // --- introspection -----------------------------------------------------
  [[nodiscard]] std::size_t frame_count() const { return frames_.size(); }
  [[nodiscard]] std::size_t object_count() const { return objects_.size(); }

  /// Homesite-directory snapshot: (address, current owner) for every
  /// object created here. Chaos invariant checkers use this to assert
  /// that no global address is owned by a departed site.
  [[nodiscard]] std::vector<std::pair<GlobalAddress, SiteId>>
  directory_snapshot() const {
    std::vector<std::pair<GlobalAddress, SiteId>> out;
    out.reserve(directory_.size());
    for (const auto& [addr, entry] : directory_) {
      out.emplace_back(addr, entry.owner);
    }
    return out;
  }

  /// Registers this manager's instruments ("mem." prefix).
  void register_metrics(metrics::MetricsRegistry& registry);

  // Deprecated shims: read "mem.*" via Site::introspect() instead.
  metrics::Counter migrations_in;
  metrics::Counter migrations_out;
  metrics::Counter local_hits;
  metrics::Counter frames_created;
  metrics::Counter params_applied;
  metrics::Counter remote_fetches;      // fetches that left the site
  // mutable: counted inside const lookup paths (sim oracle resolution).
  mutable metrics::Counter directory_lookups;

 private:
  void frame_became_executable(Microframe frame);
  /// Ensures the object is local, possibly initiating migration. Returns
  /// the object, or sets *wait, or fails.
  Result<MemObject*> attract(GlobalAddress addr,
                             std::shared_ptr<FetchState>* wait);
  void begin_fetch(GlobalAddress addr);
  void grant_next(GlobalAddress addr);

  Site& site_;
  std::uint64_t next_local_id_ = 1;

  std::unordered_map<FrameId, Microframe> frames_;
  std::unordered_map<GlobalAddress, MemObject> objects_;

  // Results that arrived for a frame homed here but not (yet) present.
  // During a graceful sign-off the relocated frame (kDirectoryImport) races
  // its own in-flight results; dropping the result would strand the frame
  // forever. Parked values are applied when the frame is adopted and
  // purged after a generous TTL (post-recovery duplicates are benign).
  struct PendingParam {
    std::uint32_t slot = 0;
    std::vector<std::byte> value;
    Nanos parked_at = 0;
  };
  std::unordered_map<FrameId, std::vector<PendingParam>> pending_params_;
  void park_param(GlobalAddress frame, std::size_t slot,
                  std::vector<std::byte> value);
  void purge_stale_params();

  // Homesite directory for objects created here: current owner site plus
  // the queue of sites waiting for migration (homesite-mediated protocol).
  struct Waiter {
    SiteId requester = kInvalidSite;
    std::uint64_t reply_seq = 0;                 // remote requester
    std::shared_ptr<FetchState> local;           // homesite's own fetch
  };
  struct DirEntry {
    SiteId owner = kInvalidSite;
    ProgramId program;
    std::deque<Waiter> waiters;
    bool recall_in_flight = false;
  };
  std::unordered_map<GlobalAddress, DirEntry> directory_;

  // Fetches this site is waiting on, keyed by object address.
  std::unordered_map<GlobalAddress, std::shared_ptr<FetchState>> fetching_;

  SimFetchHook sim_fetch_;
  Nanos sim_stall_ = 0;
};

}  // namespace sdvm
