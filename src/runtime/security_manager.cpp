#include "runtime/security_manager.hpp"

namespace sdvm {

SecurityManager::SecurityManager(const SiteConfig& config)
    : enabled_(config.encrypt),
      master_(crypto::derive_master_key(config.cluster_password)) {}

const crypto::ChaCha20::Key& SecurityManager::pair_key(SiteId a, SiteId b) {
  if (a > b) std::swap(a, b);
  std::uint64_t key = (std::uint64_t{a} << 32) | b;
  auto it = pair_keys_.find(key);
  if (it == pair_keys_.end()) {
    it = pair_keys_.emplace(key, crypto::derive_pair_key(master_, a, b)).first;
  }
  return it->second;
}

std::vector<std::byte> SecurityManager::protect(const SdMessage& msg) {
  std::vector<std::byte> body = msg.serialize_body();

  ByteWriter w;
  w.u8(kVersion);
  w.u8(enabled_ ? kFlagSealed : 0);
  w.site(msg.src);
  w.site(msg.dst);
  if (enabled_) {
    ++sealed_count;
    auto sealed =
        crypto::seal(pair_key(msg.src, msg.dst), ++nonce_seed_, body);
    w.raw(sealed.data(), sealed.size());
  } else {
    w.raw(body.data(), body.size());
  }
  return w.take();
}

Result<SdMessage> SecurityManager::unprotect(std::span<const std::byte> wire) {
  constexpr std::size_t kHeader = 1 + 1 + 4 + 4;
  if (wire.size() < kHeader) {
    ++rejected_count;
    return Status::error(ErrorCode::kCorrupt, "wire frame too short");
  }
  ByteReader r(wire.subspan(0, kHeader));
  std::uint8_t version = r.u8();
  std::uint8_t flags = r.u8();
  SiteId src = r.site();
  SiteId dst = r.site();
  if (version != kVersion) {
    ++rejected_count;
    return Status::error(ErrorCode::kCorrupt, "unknown wire version");
  }
  auto body = wire.subspan(kHeader);

  if ((flags & kFlagSealed) != 0) {
    // Accept sealed traffic even if we run unsealed ourselves — the peer
    // may enforce encryption; mixed clusters still must interoperate.
    auto opened = crypto::open(pair_key(src, dst), body);
    if (!opened.is_ok()) {
      ++rejected_count;
      return opened.status();
    }
    ++opened_count;
    return SdMessage::deserialize_body(src, dst, opened.value());
  }
  if (enabled_) {
    // We require encryption; a plaintext message from outside is rejected
    // (self-protection).
    ++rejected_count;
    return Status::error(ErrorCode::kCorrupt,
                         "plaintext message on an encrypted cluster");
  }
  return SdMessage::deserialize_body(src, dst, body);
}

}  // namespace sdvm
