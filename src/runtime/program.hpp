// Program model: what an SDVM application is.
//
// A program is a set of named microthreads (paper §3.1). Each microthread
// may carry MicroC source (shippable to any site, compilable on the fly)
// and/or a native C++ function registered per-process (the "platform-
// specific binary" fast path). The entry microthread is fired with one
// trigger parameter when the program starts.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/serialize.hpp"
#include "common/status.hpp"
#include "common/types.hpp"

namespace sdvm {

class Context;

/// Native microthread body. Runs to completion, uninterrupted; all SDVM
/// interaction goes through the Context ("the only interface between the
/// program running on the SDVM and the SDVM itself").
using NativeFn = std::function<void(Context&)>;

/// What the programmer writes: the partitioning of the application into
/// microthreads.
struct MicrothreadSpec {
  std::string name;
  std::string source;   // MicroC; empty = native-only microthread
  NativeFn native;      // optional native implementation
};

struct ProgramSpec {
  std::string name;
  std::vector<MicrothreadSpec> threads;
  std::string entry;                 // name of the first microthread
  std::vector<std::int64_t> args;    // program start arguments
};

/// Cluster-wide description of a running program, gossiped to sites that
/// encounter its frames. MicrothreadId = index into `thread_names`.
struct ProgramInfo {
  ProgramId id;
  std::string name;
  SiteId home_site = kInvalidSite;  // start site: frontend + code home
  MicrothreadId entry_thread = 0;   // fired at start (and epoch-0 recovery)
  std::vector<std::string> thread_names;
  std::vector<std::int64_t> args;

  [[nodiscard]] std::optional<MicrothreadId> thread_by_name(
      const std::string& n) const {
    for (std::size_t i = 0; i < thread_names.size(); ++i) {
      if (thread_names[i] == n) return static_cast<MicrothreadId>(i);
    }
    return std::nullopt;
  }

  void serialize(ByteWriter& w) const;
  [[nodiscard]] static Result<ProgramInfo> deserialize(ByteReader& r);
};

/// Per-process registry of native microthread implementations, keyed by
/// (program name, thread name). In a TCP cluster every daemon process
/// registers the same natives (SPMD style); in an in-process cluster one
/// registration serves all sites. Native code never crosses the network.
class NativeRegistry {
 public:
  static NativeRegistry& instance();

  void register_fn(const std::string& program_name,
                   const std::string& thread_name, NativeFn fn);
  [[nodiscard]] NativeFn find(const std::string& program_name,
                              const std::string& thread_name) const;
  void clear_program(const std::string& program_name);

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, NativeFn> fns_;
};

}  // namespace sdvm
