#include "runtime/site_manager.hpp"

#include <algorithm>
#include <memory>
#include <set>
#include <sstream>

#include "runtime/site.hpp"

namespace sdvm {

LoadStats SiteManager::collect_load() const {
  LoadStats s;
  s.queued_frames =
      static_cast<std::uint32_t>(site_.scheduling().queued_total());
  s.running = static_cast<std::uint32_t>(site_.processing().running());
  s.programs =
      static_cast<std::uint32_t>(site_.programs().active_programs().size());
  s.executed_total = site_.processing().executed_total;
  return s;
}

std::string SiteManager::status_string() const {
  std::ostringstream os;
  LoadStats load = collect_load();
  os << "site " << site_.id() << " (" << site_.config().name << ", "
     << site_.config().platform << ", speed " << site_.config().speed << ")\n"
     << "  cluster: " << site_.cluster().cluster_size() << " live sites\n"
     << "  scheduling: " << site_.scheduling().queued_total()
     << " queued, help sent " << site_.scheduling().help_requests_sent
     << ", given " << site_.scheduling().help_frames_given << ", received "
     << site_.scheduling().help_frames_received << "\n"
     << "  processing: " << load.running << " running, "
     << site_.processing().executed_total << " executed, "
     << site_.processing().trapped_total << " trapped\n"
     << "  memory: " << site_.memory().frame_count() << " frames, "
     << site_.memory().object_count() << " objects, migrations in/out "
     << site_.memory().migrations_in << "/" << site_.memory().migrations_out
     << "\n"
     << "  code: compiles " << site_.code().compiles << ", binary fetches "
     << site_.code().binary_fetches << ", source fetches "
     << site_.code().source_fetches << "\n"
     << "  programs: " << load.programs << " active\n"
     << "  messages: sent " << site_.messages().sent_count << ", received "
     << site_.messages().received_count << "\n";
  return os.str();
}

void SiteManager::query_cluster_status(ClusterStatusCallback done,
                                       Nanos timeout) {
  struct QueryState {
    ClusterStatus status;
    std::set<SiteId> awaiting;
    ClusterStatusCallback done;
    bool fired = false;
  };
  auto state = std::make_shared<QueryState>();
  state->status.queried_from = site_.id();
  state->status.sites.push_back(site_.introspect());
  state->done = std::move(done);

  auto finish = [state] {
    if (state->fired) return;
    state->fired = true;
    for (SiteId sid : state->awaiting) {
      state->status.unreachable.push_back(sid);
    }
    std::sort(state->status.sites.begin(), state->status.sites.end(),
              [](const SiteStatus& a, const SiteStatus& b) {
                return a.id < b.id;
              });
    state->done(std::move(state->status));
  };

  auto peers = site_.cluster().known_sites(/*alive_only=*/true);
  std::erase(peers, site_.id());
  for (SiteId sid : peers) state->awaiting.insert(sid);
  if (state->awaiting.empty()) {
    finish();
    return;
  }

  // Carry our physical address: a freshly joined observer may not be in
  // every peer's membership view yet, and the reply must route back.
  ByteWriter addr_w;
  addr_w.str(site_.transport() ? site_.transport()->local_address() : "");
  auto addr_payload = addr_w.take();

  for (SiteId sid : peers) {
    SdMessage req;
    req.dst = sid;
    req.src_mgr = req.dst_mgr = ManagerId::kSite;
    req.type = MsgType::kMetricsQuery;
    req.payload = addr_payload;
    (void)site_.messages().request(
        req, [state, finish, sid](Result<SdMessage> r) {
          if (state->fired) return;
          bool got = false;
          if (r.is_ok() && r.value().type == MsgType::kMetricsReply) {
            ByteReader rd(r.value().payload);
            auto ss = SiteStatus::deserialize(rd);
            if (ss.is_ok()) {
              state->status.sites.push_back(std::move(ss).value());
              got = true;
            }
          }
          if (!got) state->status.unreachable.push_back(sid);
          state->awaiting.erase(sid);
          if (state->awaiting.empty()) finish();
        });
  }
  site_.schedule_after(timeout, finish);
}

void SiteManager::handle(const SdMessage& msg) {
  switch (msg.type) {
    case MsgType::kStatusQuery: {
      // Deprecated wire shim: text + LoadStats, kept one release for old
      // sdvm-top binaries. New tooling uses kMetricsQuery.
      SdMessage reply;
      reply.src_mgr = reply.dst_mgr = ManagerId::kSite;
      reply.type = MsgType::kStatusReply;
      ByteWriter w;
      w.str(status_string());
      collect_load().serialize(w);
      reply.payload = w.take();
      (void)site_.messages().respond(msg, std::move(reply));
      break;
    }
    case MsgType::kMetricsQuery: {
      SdMessage reply;
      reply.src_mgr = reply.dst_mgr = ManagerId::kSite;
      reply.type = MsgType::kMetricsReply;
      ByteWriter w;
      site_.introspect().serialize(w);
      reply.payload = w.take();
      // The query may carry the querier's physical address — use it when
      // the membership view cannot route the reply (fresh observer whose
      // sign-on has not gossiped to us yet).
      std::string direct_addr;
      if (!msg.payload.empty()) {
        try {
          ByteReader r(msg.payload);
          direct_addr = r.str();
        } catch (const DecodeError&) {
          // best-effort hint; fall through to membership routing
        }
      }
      bool routable = msg.src == site_.id() ||
                      site_.cluster().physical_address(msg.src).is_ok();
      if (routable || direct_addr.empty()) {
        (void)site_.messages().respond(msg, std::move(reply));
      } else {
        reply.dst = msg.src;
        reply.reply_to = msg.seq;
        (void)site_.messages().send_to_address(direct_addr,
                                               std::move(reply));
      }
      break;
    }
    default:
      SDVM_WARN(site_.tag()) << "site manager: unexpected "
                             << to_string(msg.type);
  }
}

}  // namespace sdvm
