#include "runtime/site_manager.hpp"

#include <sstream>

#include "runtime/site.hpp"

namespace sdvm {

LoadStats SiteManager::collect_load() const {
  LoadStats s;
  s.queued_frames =
      static_cast<std::uint32_t>(site_.scheduling().queued_total());
  s.running = static_cast<std::uint32_t>(site_.processing().running());
  s.programs =
      static_cast<std::uint32_t>(site_.programs().active_programs().size());
  s.executed_total = site_.processing().executed_total;
  return s;
}

std::string SiteManager::status_string() const {
  std::ostringstream os;
  LoadStats load = collect_load();
  os << "site " << site_.id() << " (" << site_.config().name << ", "
     << site_.config().platform << ", speed " << site_.config().speed << ")\n"
     << "  cluster: " << site_.cluster().cluster_size() << " live sites\n"
     << "  scheduling: " << site_.scheduling().queued_total()
     << " queued, help sent " << site_.scheduling().help_requests_sent
     << ", given " << site_.scheduling().help_frames_given << ", received "
     << site_.scheduling().help_frames_received << "\n"
     << "  processing: " << load.running << " running, "
     << site_.processing().executed_total << " executed, "
     << site_.processing().trapped_total << " trapped\n"
     << "  memory: " << site_.memory().frame_count() << " frames, "
     << site_.memory().object_count() << " objects, migrations in/out "
     << site_.memory().migrations_in << "/" << site_.memory().migrations_out
     << "\n"
     << "  code: compiles " << site_.code().compiles << ", binary fetches "
     << site_.code().binary_fetches << ", source fetches "
     << site_.code().source_fetches << "\n"
     << "  programs: " << load.programs << " active\n"
     << "  messages: sent " << site_.messages().sent_count << ", received "
     << site_.messages().received_count << "\n";
  return os.str();
}

void SiteManager::handle(const SdMessage& msg) {
  switch (msg.type) {
    case MsgType::kStatusQuery: {
      SdMessage reply;
      reply.src_mgr = reply.dst_mgr = ManagerId::kSite;
      reply.type = MsgType::kStatusReply;
      ByteWriter w;
      w.str(status_string());
      collect_load().serialize(w);
      reply.payload = w.take();
      (void)site_.messages().respond(msg, std::move(reply));
      break;
    }
    default:
      SDVM_WARN(site_.tag()) << "site manager: unexpected "
                             << to_string(msg.type);
  }
}

}  // namespace sdvm
