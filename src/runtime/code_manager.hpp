// Code manager: "allows the automatic distribution of microthreads
// throughout the cluster" (paper §2.2, §4). Stores source and platform-
// tagged binary artifacts, answers code requests (binary first, source
// fallback), compiles source on the fly for the local platform, and
// uploads freshly compiled binaries back to the code distribution site so
// "other sites will receive the binary code at first go".
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "common/status.hpp"
#include "microc/bytecode.hpp"
#include "microc/decode.hpp"
#include "runtime/message.hpp"
#include "runtime/metrics.hpp"
#include "runtime/program.hpp"

namespace sdvm {

class Site;

/// Something the processing manager can run: exactly one of native /
/// bytecode is set. Bytecode executables also carry the verified decoded
/// form (microc/decode.hpp), produced once when the artifact enters the
/// cache so the VM's hot loop never re-validates per dispatch.
struct Executable {
  NativeFn native;
  std::shared_ptr<const microc::Program> bytecode;
  std::shared_ptr<const microc::DecodedProgram> decoded;

  [[nodiscard]] bool valid() const {
    return native != nullptr || bytecode != nullptr;
  }
};

/// Decodes and verifies `prog` into a ready-to-run Executable; fails if
/// the artifact is malformed (e.g. a corrupt upload from another site).
[[nodiscard]] Result<Executable> make_bytecode_executable(
    std::shared_ptr<const microc::Program> prog);

class CodeManager {
 public:
  explicit CodeManager(Site& site) : site_(site) {}

  /// Home-site registration: keep MicroC sources (shippable) and remember
  /// which threads exist. Native fns live in the NativeRegistry.
  void store_sources(const ProgramInfo& info, const ProgramSpec& spec);

  /// Resolves the executable for (program, thread); may go to the network.
  /// The callback runs under the site lock.
  using ExecCallback = std::function<void(Result<Executable>)>;
  void request_executable(ProgramId pid, MicrothreadId tid, ExecCallback cb);

  void handle(const SdMessage& msg);
  void drop_program(ProgramId pid);

  /// Source export/import: the crash manager replicates a program's
  /// sources alongside checkpoint snapshots, so a backup site taking over
  /// as code home can still serve (and compile) every microthread.
  [[nodiscard]] std::vector<std::pair<MicrothreadId, std::string>>
  export_sources(ProgramId pid) const;
  void import_sources(ProgramId pid,
                      const std::vector<std::pair<MicrothreadId, std::string>>&
                          sources);

  /// Registers this manager's instruments ("code." prefix).
  void register_metrics(metrics::MetricsRegistry& registry);

  // Deprecated shims (bench/ablation_compile): read "code.*" via
  // Site::introspect() instead.
  metrics::Counter compiles;
  metrics::Counter binary_fetches;
  metrics::Counter source_fetches;
  metrics::Counter uploads_received;
  metrics::Counter cache_hits;      // resolve served from the local cache
  /// On-the-fly compile wall time (real nanos, both modes).
  metrics::Histogram compile_ns;

 private:
  struct Key {
    ProgramId pid;
    MicrothreadId tid;
    auto operator<=>(const Key&) const = default;
  };

  void fetch_remote(ProgramId pid, MicrothreadId tid);
  /// Tries `targets[index]`, falling through to the next on miss/failure.
  void fetch_from(ProgramId pid, MicrothreadId tid,
                  std::shared_ptr<std::vector<SiteId>> targets,
                  std::size_t index);
  void upload_binary(ProgramId pid, MicrothreadId tid,
                     const std::shared_ptr<const microc::Program>& binary);
  void finish(const Key& key, Result<Executable> result);
  [[nodiscard]] std::optional<Executable> resolve_local(ProgramId pid,
                                                        MicrothreadId tid);

  Site& site_;
  std::map<Key, Executable> cache_;
  std::map<Key, std::string> sources_;
  // Binary artifacts per (program, thread, platform).
  std::map<std::pair<Key, PlatformId>,
           std::shared_ptr<const microc::Program>> binaries_;
  std::map<Key, std::vector<ExecCallback>> pending_;
};

}  // namespace sdvm
