#include "runtime/io_manager.hpp"

#include "runtime/site.hpp"

namespace sdvm {

void IoManager::register_metrics(metrics::MetricsRegistry& registry) {
  registry.register_counter("io.rerouted_reads", &rerouted_reads);
  registry.register_counter("io.rerouted_writes", &rerouted_writes);
  registry.register_counter("io.outputs_delivered", &outputs_delivered);
  registry.register_counter("io.outputs_deduped", &outputs_deduped);
  registry.register_gauge("io.vfs_files", [this] {
    return static_cast<std::int64_t>(vfs_.size());
  });
}

void IoManager::output_int(ProgramId pid, std::int64_t value) {
  output_str(pid, std::to_string(value));
}

void IoManager::output_str(ProgramId pid, std::string text) {
  const ProgramInfo* info = site_.programs().find(pid);
  SiteId frontend = info != nullptr ? info->home_site : pid.home_site();
  frontend = site_.cluster().resolve_successor(frontend);

  if (frontend == site_.id()) {
    deliver_output(pid, std::move(text));
    return;
  }
  // "The I/O manager sends all output and input requests to the front end."
  ByteWriter w;
  w.str(text);
  SdMessage msg;
  msg.dst = frontend;
  msg.src_mgr = msg.dst_mgr = ManagerId::kIo;
  msg.type = MsgType::kIoOutput;
  msg.program = pid;
  msg.payload = w.take();
  (void)site_.messages().send(std::move(msg));
}

void IoManager::deliver_output(ProgramId pid, std::string line) {
  ++outputs_delivered;
  auto& log = outputs_[pid];
  IoRecord rec;
  // Tagged with the last committed epoch: everything the program does
  // after commit E (until E+1 commits) replays from E on recovery, so
  // these are exactly the records a rollback to E must drop.
  rec.epoch = site_.crash().committed_epoch(pid);
  rec.seq = log.size();
  rec.text = line;
  log.push_back(std::move(rec));
  if (callback_) callback_(pid, line);
}

std::vector<std::string> IoManager::outputs(ProgramId pid) const {
  auto it = outputs_.find(pid);
  std::vector<std::string> lines;
  if (it == outputs_.end()) return lines;
  lines.reserve(it->second.size());
  for (const IoRecord& rec : it->second) lines.push_back(rec.text);
  return lines;
}

std::vector<IoRecord> IoManager::export_log(ProgramId pid) const {
  auto it = outputs_.find(pid);
  return it == outputs_.end() ? std::vector<IoRecord>{} : it->second;
}

void IoManager::import_log(ProgramId pid, std::vector<IoRecord> log) {
  // Taking over as frontend: the replicated log replaces whatever partial
  // view this site had (it was not the frontend before, or it is being
  // reset to the committed epoch anyway).
  outputs_[pid] = std::move(log);
}

void IoManager::on_rollback(ProgramId pid, std::uint64_t epoch) {
  auto it = outputs_.find(pid);
  if (it == outputs_.end()) return;
  auto& log = it->second;
  std::size_t before = log.size();
  std::erase_if(log, [epoch](const IoRecord& rec) {
    return rec.epoch >= epoch;
  });
  outputs_deduped += static_cast<std::uint64_t>(before - log.size());
  // seq stays positional: replayed lines refill the truncated tail.
  for (std::size_t i = 0; i < log.size(); ++i) log[i].seq = i;
}

void IoManager::vfs_put(const std::string& path, std::string data) {
  vfs_[path] = std::move(data);
}

Result<std::string> IoManager::vfs_get(const std::string& path) const {
  auto it = vfs_.find(path);
  if (it == vfs_.end()) {
    return Status::error(ErrorCode::kNotFound, "no file '" + path + "'");
  }
  return it->second;
}

std::pair<SiteId, std::string> IoManager::parse_path(
    const std::string& path) const {
  // "@<site>/rest" addresses another site's filesystem; the returned file
  // handle semantics of the paper (handle embeds the owner's site id) map
  // onto this textual form.
  if (!path.empty() && path[0] == '@') {
    auto slash = path.find('/');
    if (slash != std::string::npos) {
      try {
        SiteId owner = static_cast<SiteId>(
            std::stoul(path.substr(1, slash - 1)));
        return {owner, path.substr(slash + 1)};
      } catch (const std::exception&) {
        // fall through: treat as a local path
      }
    }
  }
  return {site_.id(), path};
}

Result<std::string> IoManager::try_file_read(const std::string& path,
                                             std::shared_ptr<IoWait>* wait) {
  auto [owner, rest] = parse_path(path);
  owner = site_.cluster().resolve_successor(owner);
  if (owner == site_.id()) return vfs_get(rest);

  ++rerouted_reads;
  if (sim_file_) {
    auto r = sim_file_(owner, rest, /*write=*/false, {});
    site_.memory().add_sim_stall(r.stall);
    if (!r.status.is_ok()) return r.status;
    return r.data;
  }
  auto cell = std::make_shared<IoWait>();
  *wait = cell;
  ByteWriter w;
  w.str(rest);
  SdMessage req;
  req.dst = owner;
  req.src_mgr = req.dst_mgr = ManagerId::kIo;
  req.type = MsgType::kFileRead;
  req.payload = w.take();
  (void)site_.messages().request(req, [cell](Result<SdMessage> r) {
    if (!r.is_ok()) {
      cell->signal(r.status());
      return;
    }
    try {
      ByteReader rd(r.value().payload);
      bool ok = rd.boolean();
      std::string data = rd.str();
      cell->signal(ok ? Status::ok()
                      : Status::error(ErrorCode::kNotFound, data),
                   ok ? std::move(data) : std::string{});
    } catch (const DecodeError& e) {
      cell->signal(Status::error(ErrorCode::kCorrupt, e.what()));
    }
  });
  return Status::error(ErrorCode::kUnavailable, "read in progress");
}

Status IoManager::try_file_write(const std::string& path, std::string data,
                                 std::shared_ptr<IoWait>* wait) {
  auto [owner, rest] = parse_path(path);
  owner = site_.cluster().resolve_successor(owner);
  if (owner == site_.id()) {
    vfs_put(rest, std::move(data));
    return Status::ok();
  }

  ++rerouted_writes;
  if (sim_file_) {
    auto r = sim_file_(owner, rest, /*write=*/true, std::move(data));
    site_.memory().add_sim_stall(r.stall);
    return r.status;
  }
  auto cell = std::make_shared<IoWait>();
  *wait = cell;
  ByteWriter w;
  w.str(rest);
  w.str(data);
  SdMessage req;
  req.dst = owner;
  req.src_mgr = req.dst_mgr = ManagerId::kIo;
  req.type = MsgType::kFileWrite;
  req.payload = w.take();
  (void)site_.messages().request(req, [cell](Result<SdMessage> r) {
    cell->signal(r.is_ok() ? Status::ok() : r.status());
  });
  return Status::error(ErrorCode::kUnavailable, "write in progress");
}

void IoManager::handle(const SdMessage& msg) {
  switch (msg.type) {
    case MsgType::kIoOutput: {
      try {
        ByteReader r(msg.payload);
        deliver_output(msg.program, r.str());
      } catch (const DecodeError&) {
      }
      break;
    }
    case MsgType::kFileRead: {
      SdMessage reply;
      reply.src_mgr = reply.dst_mgr = ManagerId::kIo;
      reply.type = MsgType::kFileReadReply;
      ByteWriter w;
      try {
        ByteReader r(msg.payload);
        auto data = vfs_get(r.str());
        w.boolean(data.is_ok());
        w.str(data.is_ok() ? data.value() : data.status().message());
      } catch (const DecodeError&) {
        w.boolean(false);
        w.str("malformed request");
      }
      reply.payload = w.take();
      (void)site_.messages().respond(msg, std::move(reply));
      break;
    }
    case MsgType::kFileWrite: {
      try {
        ByteReader r(msg.payload);
        std::string path = r.str();
        std::string data = r.str();
        vfs_put(path, std::move(data));
      } catch (const DecodeError&) {
      }
      SdMessage ack;
      ack.src_mgr = ack.dst_mgr = ManagerId::kIo;
      ack.type = MsgType::kFileWriteAck;
      (void)site_.messages().respond(msg, std::move(ack));
      break;
    }
    default:
      SDVM_WARN(site_.tag()) << "io manager: unexpected "
                             << to_string(msg.type);
  }
}

void IoManager::drop_program(ProgramId pid) {
  // Outputs stay available on the frontend until the user collects them;
  // only the frontend keeps them, so this is a no-op elsewhere. Keep them.
  (void)pid;
}

}  // namespace sdvm
