#include "runtime/cluster_manager.hpp"

#include <algorithm>

#include "runtime/site.hpp"

namespace sdvm {

namespace {

struct SignOnPayload {
  std::string address;
  std::string name;
  PlatformId platform;
  double speed = 1.0;
  bool code_site = false;

  std::vector<std::byte> serialize() const {
    ByteWriter w;
    w.str(address);
    w.str(name);
    w.str(platform);
    w.f64(speed);
    w.boolean(code_site);
    return w.take();
  }
  static Result<SignOnPayload> deserialize(std::span<const std::byte> b) {
    try {
      ByteReader r(b);
      SignOnPayload p;
      p.address = r.str();
      p.name = r.str();
      p.platform = r.str();
      p.speed = r.f64();
      p.code_site = r.boolean();
      return p;
    } catch (const DecodeError& e) {
      return Status::error(ErrorCode::kCorrupt,
                           std::string("bad sign-on: ") + e.what());
    }
  }
};

}  // namespace

void ClusterManager::register_metrics(metrics::MetricsRegistry& registry) {
  registry.register_counter("cluster.signon_messages", &signon_messages);
  registry.register_counter("cluster.sites_admitted", &sites_admitted);
  registry.register_counter("cluster.sign_offs_received",
                            &sign_offs_received);
  registry.register_counter("cluster.deaths_detected", &deaths_detected);
  registry.register_counter("cluster.heartbeats_sent", &heartbeats_sent);
  registry.register_counter("cluster.heartbeats_received",
                            &heartbeats_received);
  registry.register_gauge("cluster.live_sites", [this] {
    return static_cast<std::int64_t>(cluster_size());
  });
}

void ClusterManager::bootstrap() {
  local_id_ = 1;
  next_central_id_ = 2;
  contingent_next_ = 2;
  SiteInfo self;
  self.id = 1;
  self.address = site_.transport() ? site_.transport()->local_address() : "";
  self.name = site_.config().name;
  self.platform = site_.config().platform;
  self.speed = site_.config().speed;
  self.code_site = site_.config().code_distribution_site;
  self.version = 1;
  sites_[1] = std::move(self);
  mark_dirty(1);
  invalidate_alive();
}

void ClusterManager::join(const std::string& contact_address,
                          std::function<void(Status)> done) {
  join_done_ = std::move(done);
  SignOnPayload p;
  p.address = site_.transport() ? site_.transport()->local_address() : "";
  p.name = site_.config().name;
  p.platform = site_.config().platform;
  p.speed = site_.config().speed;
  p.code_site = site_.config().code_distribution_site;

  SdMessage msg;
  msg.dst = kInvalidSite;
  msg.src_mgr = msg.dst_mgr = ManagerId::kCluster;
  msg.type = MsgType::kSignOnRequest;
  msg.payload = p.serialize();
  ++signon_messages;
  Status st = site_.messages().send_to_address(contact_address, msg);
  if (!st.is_ok() && join_done_) {
    auto cb = std::move(join_done_);
    join_done_ = nullptr;
    cb(st);
    return;
  }
  // The request can be lost: the contact may forward it to an allocator
  // that just died (the reply then never comes). Re-send until the
  // allocator takeover makes a live site answer; duplicate sign-ons are
  // deduplicated by physical address on the receiving side.
  join_contact_ = contact_address;
  site_.schedule_after(site_.config().failure_timeout,
                       [this] { retry_join(); });
}

void ClusterManager::retry_join() {
  if (joined() || join_contact_.empty()) return;
  SignOnPayload p;
  p.address = site_.transport() ? site_.transport()->local_address() : "";
  p.name = site_.config().name;
  p.platform = site_.config().platform;
  p.speed = site_.config().speed;
  p.code_site = site_.config().code_distribution_site;
  SdMessage msg;
  msg.dst = kInvalidSite;
  msg.src_mgr = msg.dst_mgr = ManagerId::kCluster;
  msg.type = MsgType::kSignOnRequest;
  msg.payload = p.serialize();
  ++signon_messages;
  (void)site_.messages().send_to_address(join_contact_, msg);
  site_.schedule_after(site_.config().failure_timeout,
                       [this] { retry_join(); });
}

void ClusterManager::announce_sign_off(SiteId successor) {
  auto& self = sites_[local_id_];
  self.alive = false;
  self.successor = successor;
  self.version++;
  mark_dirty(local_id_, kRespreadRounds);
  alive_entry_died(local_id_);

  ByteWriter w;
  w.site(local_id_);
  w.site(successor);
  for (SiteId sid : known_sites(/*alive_only=*/true)) {
    if (sid == local_id_) continue;
    SdMessage msg;
    msg.dst = sid;
    msg.src_mgr = msg.dst_mgr = ManagerId::kCluster;
    msg.type = MsgType::kSignOffNotice;
    msg.payload = w.bytes();
    (void)site_.messages().send(std::move(msg));
  }
}

Result<std::string> ClusterManager::physical_address(SiteId id) const {
  auto it = sites_.find(id);
  if (it == sites_.end()) {
    return Status::error(ErrorCode::kNotFound,
                         "unknown site " + std::to_string(id));
  }
  return it->second.address;
}

const SiteInfo* ClusterManager::find(SiteId id) const {
  auto it = sites_.find(id);
  return it == sites_.end() ? nullptr : &it->second;
}

std::vector<SiteId> ClusterManager::known_sites(bool alive_only) const {
  std::vector<SiteId> out;
  for (const auto& [id, info] : sites_) {
    if (!alive_only || info.alive) out.push_back(id);
  }
  return out;
}

std::size_t ClusterManager::cluster_size() const {
  refresh_alive_cache();
  return alive_count_;
}

void ClusterManager::refresh_alive_cache() const {
  if (!alive_dirty_) return;
  alive_count_ = 0;
  alive_peers_.clear();
  for (const auto& [id, info] : sites_) {
    if (!info.alive) continue;
    ++alive_count_;
    if (id != local_id_) alive_peers_.push_back(&info);
  }
  alive_dirty_ = false;
}

void ClusterManager::alive_entry_added(SiteId id) {
  if (!alive_dirty_) {  // else a lazy rebuild is already pending
    ++alive_count_;
    if (id != local_id_) {
      auto pos = std::lower_bound(
          alive_peers_.begin(), alive_peers_.end(), id,
          [](const SiteInfo* a, SiteId b) { return a->id < b; });
      alive_peers_.insert(pos, &sites_.find(id)->second);
    }
  }
  // The live set changed: shard rendezvous targets must be recomputed and
  // leases settled (remigration to the joiner happens here).
  site_.memory().on_membership_change();
}

void ClusterManager::alive_entry_died(SiteId id) {
  if (alive_dirty_) {
    site_.memory().on_membership_change();
    return;
  }
  --alive_count_;
  if (id == local_id_) {
    site_.memory().on_membership_change();
    return;
  }
  auto pos = std::lower_bound(
      alive_peers_.begin(), alive_peers_.end(), id,
      [](const SiteInfo* a, SiteId b) { return a->id < b; });
  if (pos != alive_peers_.end() && (*pos)->id == id) alive_peers_.erase(pos);
  site_.memory().on_membership_change();
}

SiteId ClusterManager::resolve_successor(SiteId id) const {
  // Follow sign-off forwarding chains, bounded against cycles.
  for (int hops = 0; hops < 64; ++hops) {
    auto it = sites_.find(id);
    if (it == sites_.end() || it->second.alive ||
        it->second.successor == kInvalidSite) {
      return id;
    }
    id = it->second.successor;
  }
  return id;
}

std::optional<SiteId> ClusterManager::pick_help_target(
    const std::vector<SiteId>& exclude) {
  // "Choose a site which is probably not idle itself": prefer the highest
  // known queued work; fall back to round-robin over peers.
  refresh_alive_cache();
  const SiteInfo* best = nullptr;
  std::vector<const SiteInfo*> candidates;
  candidates.reserve(alive_peers_.size());
  for (const SiteInfo* info : alive_peers_) {
    if (std::find(exclude.begin(), exclude.end(), info->id) !=
        exclude.end()) {
      continue;
    }
    candidates.push_back(info);
    if (info->load.queued_frames > 0 &&
        (best == nullptr ||
         info->load.queued_frames > best->load.queued_frames)) {
      best = info;
    }
  }
  if (best != nullptr) return best->id;
  if (candidates.empty()) return std::nullopt;
  return candidates[gossip_cursor_++ % candidates.size()]->id;
}

std::optional<SiteId> ClusterManager::pick_any_other() {
  refresh_alive_cache();
  if (alive_peers_.empty()) return std::nullopt;
  return alive_peers_.front()->id;  // map order: lowest live peer id
}

std::vector<SiteId> ClusterManager::code_distribution_sites() const {
  std::vector<SiteId> out;
  for (const auto& [id, info] : sites_) {
    if (info.alive && info.code_site) out.push_back(id);
  }
  return out;
}

void ClusterManager::refresh_local_info() {
  if (local_id_ == kInvalidSite) return;
  auto& self = sites_[local_id_];
  self.load = site_.site_manager().collect_load();
  self.version++;
  mark_dirty(local_id_);
}

SiteInfo ClusterManager::local_info() const {
  auto it = sites_.find(local_id_);
  return it == sites_.end() ? SiteInfo{} : it->second;
}

void ClusterManager::merge(const SiteInfo& info) {
  if (info.id == kInvalidSite || info.id == local_id_) return;
  auto it = sites_.find(info.id);
  // Death is terminal: logical ids are never reused (a returning machine
  // signs on afresh), so an "alive" entry — however new its version — must
  // never resurrect a site we already count as dead. Without this, a
  // crashed site's stale high-version self-entry keeps bouncing through
  // gossip and re-animating it mid-recovery.
  if (it != sites_.end() && !it->second.alive && info.alive) return;
  if (it == sites_.end() || info.version > it->second.version ||
      (!info.alive && it->second.alive)) {
    bool was_alive = it == sites_.end() ? true : it->second.alive;
    SiteId prior_successor =
        it == sites_.end() ? kInvalidSite : it->second.successor;
    const bool existed = it != sites_.end();
    sites_[info.id] = info;
    const bool transition = !existed || was_alive != info.alive ||
                            prior_successor != info.successor;
    mark_dirty(info.id, transition ? kRespreadRounds : 1);
    if (!existed && info.alive) {
      alive_entry_added(info.id);
    } else if (existed && was_alive && !info.alive) {
      alive_entry_died(info.id);
    }
    if (!info.alive && info.successor == kInvalidSite &&
        prior_successor != kInvalidSite) {
      // Keep a known successor; a bare death verdict carries none.
      sites_[info.id].successor = prior_successor;
    }
    if (was_alive && !info.alive && info.successor == kInvalidSite) {
      // Learned of a crash via gossip.
      site_.on_site_dead(info.id);
    }
  }
}

void ClusterManager::note_heard(SiteId src) {
  if (src == kInvalidSite || src == local_id_) return;
  last_heard_[src] = site_.clock().now();
}

std::vector<std::byte> ClusterManager::encode_cluster_list() const {
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(sites_.size()));
  for (const auto& [id, info] : sites_) info.serialize(w);
  return w.take();
}

std::vector<std::byte> ClusterManager::encode_entries(
    const std::set<SiteId>& ids) const {
  ByteWriter w;
  std::uint32_t n = 0;
  for (SiteId id : ids) n += sites_.contains(id) ? 1 : 0;
  w.u32(n);
  for (SiteId id : ids) {
    if (auto it = sites_.find(id); it != sites_.end()) {
      it->second.serialize(w);
    }
  }
  return w.take();
}

void ClusterManager::absorb_cluster_list(ByteReader& r) {
  std::uint32_t n = r.count(/*min_bytes_each=*/16);
  for (std::uint32_t i = 0; i < n; ++i) {
    auto info = SiteInfo::deserialize(r);
    if (!info.is_ok()) return;
    merge(info.value());
  }
}

std::optional<SiteId> ClusterManager::try_allocate_id() {
  switch (site_.config().id_alloc) {
    case IdAllocStrategy::kCentralContact: {
      // Only the central contact site (site 1) allocates — the paper's
      // named single point of failure. When site 1 is dead, the lowest
      // live site inherits the allocator role (otherwise a daemon
      // restarted after losing site 1 could never rejoin). It starts past
      // every id it has ever seen, so inherited allocations never collide
      // with members that joined while site 1 was still alive.
      if (local_id_ == 1) return next_central_id_++;
      const SiteInfo* central = find(1);
      if (central != nullptr && !central->alive) {
        SiteId lowest = local_id_;
        for (SiteId sid : known_sites(/*alive_only=*/true)) {
          lowest = std::min(lowest, sid);
        }
        if (lowest == local_id_) {
          SiteId base = 1;
          for (const auto& [sid, info] : sites_) base = std::max(base, sid);
          next_central_id_ = std::max(next_central_id_, base + 1);
          return next_central_id_++;
        }
      }
      return std::nullopt;
    }

    case IdAllocStrategy::kContingent:
      if (local_id_ == 1) {
        // Site 1 owns the id space and carves blocks; it can always
        // allocate directly from the tail.
        return contingent_next_++;
      }
      if (!id_block_.empty()) {
        SiteId id = id_block_.back();
        id_block_.pop_back();
        return id;
      }
      return std::nullopt;

    case IdAllocStrategy::kModulo: {
      // First k-1 joiners become servers (ids 2..k); afterwards server i
      // emits i + n*k, so ids never collide without coordination.
      if (local_id_ == 1 && next_central_id_ <= kModuloServers) {
        return next_central_id_++;
      }
      if (local_id_ <= kModuloServers) {
        return local_id_ + (++modulo_counter_) * kModuloServers;
      }
      return std::nullopt;
    }
  }
  return std::nullopt;
}

void ClusterManager::handle_sign_on_request(const SdMessage& msg) {
  ++signon_messages;
  // A joiner behind a flaky link retries its sign-on until the deadline
  // expires; duplicates must not allocate a second logical id. If an alive
  // site already claims the request's physical address, re-send its reply.
  if (auto p = SignOnPayload::deserialize(msg.payload); p.is_ok()) {
    for (const auto& [sid, info] : sites_) {
      if (info.alive && !info.address.empty() &&
          info.address == p.value().address) {
        SDVM_DEBUG(site_.tag())
            << "duplicate sign-on from " << info.address
            << ", re-sending reply for site " << sid;
        send_sign_on_reply(info.address, sid);
        return;
      }
    }
  }
  auto id = try_allocate_id();
  if (id.has_value()) {
    complete_sign_on(msg, *id);
    return;
  }

  switch (site_.config().id_alloc) {
    case IdAllocStrategy::kCentralContact: {
      // Forward to the allocator; it replies to the joiner directly (its
      // physical address is in the payload). Normally site 1 — or, after
      // its death, the lowest live site that inherited the role.
      SiteId allocator = 1;
      const SiteInfo* central = find(1);
      if (central != nullptr && !central->alive) {
        allocator = local_id_;
        for (SiteId sid : known_sites(/*alive_only=*/true)) {
          allocator = std::min(allocator, sid);
        }
      }
      SdMessage fwd;
      fwd.dst = allocator;
      fwd.src_mgr = fwd.dst_mgr = ManagerId::kCluster;
      fwd.type = MsgType::kSignOnRequest;
      fwd.payload = msg.payload;
      ++signon_messages;
      (void)site_.messages().send(std::move(fwd));
      break;
    }
    case IdAllocStrategy::kContingent: {
      parked_sign_ons_.push_back(msg);
      request_id_block([this] {
        auto parked = std::move(parked_sign_ons_);
        parked_sign_ons_.clear();
        for (auto& m : parked) handle_sign_on_request(m);
      });
      break;
    }
    case IdAllocStrategy::kModulo: {
      // Not a server: forward to our designated server.
      SiteId server = (local_id_ % kModuloServers) + 1;
      if (find(server) == nullptr || !find(server)->alive) server = 1;
      SdMessage fwd;
      fwd.dst = server;
      fwd.src_mgr = fwd.dst_mgr = ManagerId::kCluster;
      fwd.type = MsgType::kSignOnRequest;
      fwd.payload = msg.payload;
      ++signon_messages;
      (void)site_.messages().send(std::move(fwd));
      break;
    }
  }
}

void ClusterManager::complete_sign_on(const SdMessage& request, SiteId new_id) {
  auto p = SignOnPayload::deserialize(request.payload);
  if (!p.is_ok()) {
    SDVM_WARN(site_.tag()) << "malformed sign-on request";
    return;
  }
  SiteInfo info;
  info.id = new_id;
  info.address = p.value().address;
  info.name = p.value().name;
  info.platform = p.value().platform;
  info.speed = p.value().speed;
  info.code_site = p.value().code_site;
  info.version = 1;
  sites_[new_id] = info;
  mark_dirty(new_id, kRespreadRounds);
  alive_entry_added(new_id);

  refresh_local_info();
  ++sites_admitted;
  send_sign_on_reply(info.address, new_id);
  // Announce the admission to every live member right away. Round-robin
  // gossip alone spreads a new entry too slowly for large rings: the new
  // site's ring neighbors must learn to heartbeat it (and expect its
  // heartbeats) within one failure timeout, or they would judge each
  // other dead while the epidemic is still propagating.
  std::set<SiteId> added{new_id};
  auto entry = encode_entries(added);
  std::vector<SdMessage> burst;
  for (const auto& [sid, si] : sites_) {
    if (!si.alive || sid == local_id_ || sid == new_id) continue;
    SdMessage msg;
    msg.dst = sid;
    msg.src_mgr = msg.dst_mgr = ManagerId::kCluster;
    msg.type = MsgType::kSiteGossip;
    msg.payload = entry;
    ++signon_messages;
    burst.push_back(std::move(msg));
  }
  (void)site_.messages().send_burst(std::move(burst));
  SDVM_INFO(site_.tag()) << "admitted new site " << new_id << " ("
                         << info.platform << ", speed " << info.speed << ")";
}

void ClusterManager::send_sign_on_reply(const std::string& address,
                                        SiteId new_id) {
  ByteWriter w;
  w.site(new_id);
  auto list = encode_cluster_list();
  w.raw(list.data(), list.size());

  SdMessage reply;
  reply.dst = new_id;
  reply.src_mgr = reply.dst_mgr = ManagerId::kCluster;
  reply.type = MsgType::kSignOnReply;
  reply.payload = w.take();
  ++signon_messages;
  (void)site_.messages().send_to_address(address, std::move(reply));
}

void ClusterManager::request_id_block(std::function<void()> then) {
  SdMessage req;
  req.dst = 1;
  req.src_mgr = req.dst_mgr = ManagerId::kCluster;
  req.type = MsgType::kIdBlockRequest;
  ++signon_messages;
  (void)site_.messages().request(
      req, [this, then = std::move(then)](Result<SdMessage> r) {
        if (!r.is_ok()) {
          SDVM_WARN(site_.tag())
              << "id block request failed: " << r.status().to_string();
          return;
        }
        try {
          ByteReader rd(r.value().payload);
          std::uint32_t n = rd.u32();
          for (std::uint32_t i = 0; i < n; ++i) {
            id_block_.push_back(rd.site());
          }
        } catch (const DecodeError&) {
          return;
        }
        if (then) then();
      });
}

void ClusterManager::handle(const SdMessage& msg) {
  switch (msg.type) {
    case MsgType::kSignOnRequest:
      handle_sign_on_request(msg);
      break;

    case MsgType::kSignOnReply: {
      if (local_id_ != kInvalidSite) break;  // duplicate reply, ignore
      try {
        ByteReader r(msg.payload);
        local_id_ = r.site();
        absorb_cluster_list(r);
      } catch (const DecodeError&) {
        break;
      }
      SiteInfo self;
      self.id = local_id_;
      self.address =
          site_.transport() ? site_.transport()->local_address() : "";
      self.name = site_.config().name;
      self.platform = site_.config().platform;
      self.speed = site_.config().speed;
      self.code_site = site_.config().code_distribution_site;
      self.version = 1;
      sites_[local_id_] = std::move(self);
      mark_dirty(local_id_, kRespreadRounds);
      invalidate_alive();
      if (join_done_) {
        auto cb = std::move(join_done_);
        join_done_ = nullptr;
        cb(Status::ok());
      }
      break;
    }

    case MsgType::kIdBlockRequest: {
      // Only site 1 serves blocks (contingent strategy).
      ByteWriter w;
      w.u32(kBlockSize);
      for (SiteId i = 0; i < kBlockSize; ++i) w.site(contingent_next_++);
      SdMessage reply;
      reply.src_mgr = reply.dst_mgr = ManagerId::kCluster;
      reply.type = MsgType::kIdBlockReply;
      reply.payload = w.take();
      ++signon_messages;
      (void)site_.messages().respond(msg, std::move(reply));
      break;
    }

    case MsgType::kSignOffNotice: {
      try {
        ByteReader r(msg.payload);
        SiteId departing = r.site();
        SiteId successor = r.site();
        ++sign_offs_received;
        auto it = sites_.find(departing);
        if (it != sites_.end()) {
          const bool was_alive = it->second.alive;
          // Flip the entry before notifying: alive_entry_died triggers
          // shard-lease settlement, which must observe the departure (else
          // the settle runs against the pre-death view and nothing ever
          // re-fires — mark_dead and the failure detector both skip
          // entries that are already !alive).
          it->second.alive = false;
          it->second.successor = successor;
          it->second.version++;
          mark_dirty(departing, kRespreadRounds);
          if (was_alive) alive_entry_died(departing);
        }
      } catch (const DecodeError&) {
      }
      break;
    }

    case MsgType::kHeartbeat: {
      ++heartbeats_received;
      try {
        ByteReader r(msg.payload);
        auto info = SiteInfo::deserialize(r);
        if (info.is_ok()) merge(info.value());
      } catch (const DecodeError&) {
      }
      break;
    }

    case MsgType::kSiteGossip: {
      try {
        ByteReader r(msg.payload);
        absorb_cluster_list(r);
      } catch (const DecodeError&) {
      }
      break;
    }

    case MsgType::kSiteDead: {
      try {
        ByteReader r(msg.payload);
        mark_dead(r.site(), /*gossip=*/false);
      } catch (const DecodeError&) {
      }
      break;
    }

    default:
      SDVM_WARN(site_.tag()) << "cluster manager: unexpected "
                             << to_string(msg.type);
  }
}

void ClusterManager::mark_dead(SiteId id, bool gossip) {
  if (id == local_id_ || id == kInvalidSite) return;
  auto it = sites_.find(id);
  if (it == sites_.end() || !it->second.alive) return;
  it->second.alive = false;
  it->second.version++;
  mark_dirty(id, kRespreadRounds);
  alive_entry_died(id);
  ++deaths_detected;
  SDVM_WARN(site_.tag()) << "site " << id << " declared dead";
  site_.on_site_dead(id);
  if (gossip) {
    ByteWriter w;
    w.site(id);
    std::vector<SdMessage> burst;
    for (SiteId sid : known_sites(/*alive_only=*/true)) {
      if (sid == local_id_) continue;
      SdMessage msg;
      msg.dst = sid;
      msg.src_mgr = msg.dst_mgr = ManagerId::kCluster;
      msg.type = MsgType::kSiteDead;
      msg.payload = w.bytes();
      burst.push_back(std::move(msg));
    }
    (void)site_.messages().send_burst(std::move(burst));
  }
}

void ClusterManager::set_successor(SiteId dead, SiteId heir, bool gossip) {
  if (dead == heir || dead == kInvalidSite) return;
  auto it = sites_.find(dead);
  if (it == sites_.end()) {
    // Cold-restart recovery routes ids of a previous cluster incarnation
    // that this membership never met: record a ghost entry so lookups for
    // the dead id resolve to the heir.
    SiteInfo ghost;
    ghost.id = dead;
    ghost.alive = false;
    ghost.successor = heir;
    ghost.version = 1;
    it = sites_.emplace(dead, std::move(ghost)).first;
  } else if (it->second.alive) {
    // Never let a recovery message mark a live member dead: after a full
    // restart, a previous incarnation's shard-owner ids can collide with
    // live fresh ids. Callers route genuinely dead sites via mark_dead.
    return;
  }
  it->second.alive = false;
  it->second.successor = heir;
  it->second.version++;
  mark_dirty(dead, kRespreadRounds);
  if (gossip) {
    ByteWriter w;
    w.site(dead);
    w.site(heir);
    std::vector<SdMessage> burst;
    for (SiteId sid : known_sites(/*alive_only=*/true)) {
      if (sid == local_id_) continue;
      SdMessage msg;
      msg.dst = sid;
      msg.src_mgr = msg.dst_mgr = ManagerId::kCluster;
      msg.type = MsgType::kSignOffNotice;
      msg.payload = w.bytes();
      burst.push_back(std::move(msg));
    }
    (void)site_.messages().send_burst(std::move(burst));
  }
}

void ClusterManager::on_tick() {
  if (local_id_ == kInvalidSite) return;
  Nanos now = site_.clock().now();
  ++tick_count_;
  refresh_local_info();

  // The ring order below depends on `live` being sorted by id. The cached
  // peer vector already is (map order); splicing our own id in costs one
  // flat copy per tick instead of an O(n) map walk.
  refresh_alive_cache();
  std::vector<SiteId> live;
  live.reserve(alive_peers_.size() + 1);
  for (const SiteInfo* p : alive_peers_) live.push_back(p->id);
  if (auto self = sites_.find(local_id_);
      self != sites_.end() && self->second.alive) {
    live.insert(std::lower_bound(live.begin(), live.end(), local_id_),
                local_id_);
  }
  const int fanout = site_.config().heartbeat_fanout;
  const bool ring =
      fanout > 0 && live.size() > static_cast<std::size_t>(fanout) + 1;

  // Heartbeat targets: the whole membership (paper behavior), or with a
  // fanout the k ring successors by sorted live id — O(k) per tick, so a
  // 1000-site cluster no longer pays a quadratic heartbeat storm.
  std::vector<SiteId> targets;
  std::vector<SiteId> monitored;  // who heartbeats *us* → who we may judge
  if (!ring) {
    for (SiteId sid : live) {
      if (sid != local_id_) targets.push_back(sid);
    }
    monitored = targets;
  } else {
    const std::size_t n = live.size();
    std::size_t pos = static_cast<std::size_t>(
        std::lower_bound(live.begin(), live.end(), local_id_) - live.begin());
    for (int i = 1; i <= fanout; ++i) {
      targets.push_back(live[(pos + static_cast<std::size_t>(i)) % n]);
      monitored.push_back(live[(pos + n - static_cast<std::size_t>(i)) % n]);
    }
  }

  ByteWriter w;
  sites_[local_id_].serialize(w);
  std::vector<SdMessage> beats;
  for (SiteId sid : targets) {
    SdMessage msg;
    msg.dst = sid;
    msg.src_mgr = msg.dst_mgr = ManagerId::kCluster;
    msg.type = MsgType::kHeartbeat;
    msg.payload = w.bytes();
    ++heartbeats_sent;
    beats.push_back(std::move(msg));
  }
  (void)site_.messages().send_burst(std::move(beats));

  // Failure detection: no traffic within the timeout → dead. Only the
  // peers that heartbeat *us* are judged — in ring mode everyone else's
  // silence means nothing. The judging clock starts when a peer becomes
  // monitored, not when we first learned of it: ring positions shift
  // with every membership change, and a freshly adjacent predecessor is
  // granted a full timeout to learn that we are now its successor.
  {
    std::map<SiteId, Nanos> since;
    for (SiteId sid : monitored) {
      auto it = monitored_since_.find(sid);
      since[sid] = it != monitored_since_.end() ? it->second : now;
    }
    monitored_since_ = std::move(since);  // forget peers that rotated out
  }
  Nanos timeout = site_.config().failure_timeout;
  for (SiteId sid : monitored) {
    auto info = sites_.find(sid);
    if (info == sites_.end() || !info->second.alive) continue;
    Nanos base = monitored_since_[sid];
    if (auto heard = last_heard_.find(sid); heard != last_heard_.end()) {
      base = std::max(base, heard->second);
    }
    if (now - base > timeout) {
      mark_dead(sid, /*gossip=*/true);
    }
  }

  // Gossip to one peer, round-robin: the full list, or in delta mode the
  // entries still within their re-dissemination budget (receivers
  // re-dirty membership transitions for kRespreadRounds, so those keep
  // spreading epidemically) with a full anti-entropy list every 16th
  // tick.
  auto peers = std::move(live);
  std::erase(peers, local_id_);
  if (!peers.empty()) {
    const bool delta = site_.config().gossip_delta && tick_count_ % 16 != 0;
    SdMessage msg;
    // Offset the round-robin phase by our id: every member advances its
    // cursor once per tick, so without the offset all senders sweep the
    // sorted peer list in lockstep and each tick concentrates the whole
    // cluster's gossip on one or two sites — the rest hear nothing until
    // the window reaches them, which at hundreds of members takes longer
    // than a failure timeout (and starves re-convergence after a healed
    // cut). The prime multiplier spreads adjacent ids across the list.
    msg.dst = peers[(gossip_cursor_++ +
                     static_cast<std::size_t>(local_id_) * 7919u) %
                    peers.size()];
    msg.src_mgr = msg.dst_mgr = ManagerId::kCluster;
    msg.type = MsgType::kSiteGossip;
    if (delta) {
      std::set<SiteId> dirty_now;
      for (const auto& [id, rounds] : dirty_) dirty_now.insert(id);
      msg.payload = encode_entries(dirty_now);
    } else {
      msg.payload = encode_cluster_list();
    }
    (void)site_.messages().send(std::move(msg));
  }
  for (auto it = dirty_.begin(); it != dirty_.end();) {
    it = --it->second <= 0 ? dirty_.erase(it) : std::next(it);
  }
}

}  // namespace sdvm
