// Processing manager (paper §4): executes microthreads. "If it is idle, it
// requests a pair of an executable microframe and its corresponding
// microthread from the scheduling manager." Latency hiding: up to
// `executor_slots` microthreads run in (virtual) parallel — the paper
// found "a number of about 5 ... produce good results".
//
// In threaded modes the slots are real worker threads; a microthread that
// blocks on remote memory parks its worker while the others keep running.
// In sim mode the event loop serializes execution: one microthread per
// site at a time, with virtual-time cost accounting.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "common/types.hpp"
#include "runtime/accounting.hpp"
#include "runtime/code_manager.hpp"
#include "runtime/frame.hpp"
#include "runtime/metrics.hpp"

namespace sdvm {

class Site;

class ProcessingManager {
 public:
  explicit ProcessingManager(Site& site) : site_(site) {}
  ~ProcessingManager() { stop(); }

  /// Threaded modes: spins up the worker pool.
  void start_workers(int slots);
  void stop();

  /// New ready work may be available — wake an idle worker.
  void kick();

  /// Sim mode: executes one ready microthread synchronously (called by the
  /// pump under the site lock). Returns the virtual cost, or -1 if there
  /// was nothing to run.
  Nanos execute_one_sim();

  /// Executes one unit of work in the caller's thread (worker body and the
  /// sim path share this). Returns false if no work was available.
  bool execute_once();

  [[nodiscard]] int running() const {
    return running_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool idle() const { return running() == 0; }

  void set_frozen(bool frozen) { frozen_.store(frozen); }
  [[nodiscard]] bool frozen() const { return frozen_.load(); }

  /// Registers this manager's instruments ("proc." prefix).
  void register_metrics(metrics::MetricsRegistry& registry);

  // Deprecated shims: read "proc.*" via Site::introspect() instead.
  metrics::Counter executed_total;     // guarded by the site lock
  metrics::Counter trapped_total;
  /// Microthread runtime: wall nanos in threaded modes, virtual cost in
  /// sim mode (both recorded under the site lock).
  metrics::Histogram runtime_ns;
  /// Wall nanos spent inside the VM dispatch loop for bytecode
  /// microthreads (all modes) — the interpreter-overhead component of
  /// runtime_ns, separated so bench/overhead_sequential can attribute
  /// MicroC-vs-native overhead to the VM rather than SDVM machinery.
  metrics::Histogram vm_dispatch_ns;

  /// Per-program contribution ledger (guarded by the site lock).
  [[nodiscard]] const AccountLedger& accounting() const { return ledger_; }

 private:
  void worker_loop();

  Site& site_;
  std::vector<std::thread> workers_;
  std::mutex worker_mu_;
  std::condition_variable worker_cv_;
  bool stopping_ = false;
  std::atomic<int> running_{0};
  std::atomic<bool> frozen_{false};
  Nanos last_sim_cost_ = 0;
  AccountLedger ledger_;
};

}  // namespace sdvm
