// SDMessage: the unit of inter-site communication. "All communication is
// done between managers only, so a message contains the source's and the
// target's site ids and manager ids apart from other administrational
// information and the payload data itself" (paper §4).
//
// Wire layout: [version u8 | flags u8 | src u32 | dst u32 | body]. When the
// security manager is active the body is sealed (ChaCha20 + MAC) with the
// pair key of {src, dst}; src/dst stay cleartext so the receiver can select
// the key — exactly the structure of Figure 6.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/serialize.hpp"
#include "common/status.hpp"
#include "common/types.hpp"

namespace sdvm {

enum class MsgType : std::uint16_t {
  kInvalid = 0,

  // --- cluster manager ---
  kSignOnRequest = 10,   // new site asks to join (addr, platform, speed)
  kSignOnReply,          // assigned logical id + cluster list snapshot
  kSignOffNotice,        // graceful departure: departing id + successor
  kSiteGossip,           // propagation of site infos "by and by"
  kHeartbeat,            // liveness + load statistics
  kIdBlockRequest,       // contingent strategy: request a block of free ids
  kIdBlockReply,
  kSiteDead,             // failure detector verdict, gossiped

  // --- scheduling manager ---
  kHelpRequest = 30,     // idle site asks for work
  kHelpReplyFrame,       // an executable microframe (LIFO end by default)
  kHelpReplyNone,        // "can't help"

  // --- code manager ---
  kCodeRequest = 40,     // (program, thread, platform)
  kCodeReplyBinary,      // platform-tagged bytecode artifact
  kCodeReplySource,      // MicroC source fallback → compile on the fly
  kCodeReplyMissing,
  kCodeUpload,           // freshly compiled binary pushed to a code site

  // --- program manager ---
  kProgramInfoRequest = 50,
  kProgramInfoReply,
  kProgramTerminated,    // broadcast: program done, free its resources

  // --- attraction memory ---
  kApplyParam = 60,      // microthread result → waiting microframe slot
  kApplyParamNack,       // frame unknown here (moved/consumed): error path
  kObjectRequest,        // to homesite: migrate object to requester
  kObjectGrant,          // homesite → requester: object content
  kObjectRecall,         // homesite → current owner: send object back
  kObjectReturn,         // owner → homesite
  kObjectMiss,           // no such object
  kDirectoryImport,      // sign-off: successor absorbs directory + objects
  // --- attraction memory: sharded directory (value block after crash) ---
  kShardLease = 110,     // lease announcements: (shard, holder, epoch) batch
  kShardHandoff,         // graceful shard transfer: entries + new epoch
  kShardRecover,         // crash successor asks sites to re-register a shard
  kShardRecoverReply,    // per-site contribution to a shard rebuild
  kShardRegister,        // allocator → shard holder: new directory entry
  kShardStale,           // routed request hit a non-authoritative site

  // --- io manager ---
  kIoOutput = 70,        // routed to the program's frontend site
  kFileRead,             // global file handles: access rerouted to owner
  kFileReadReply,
  kFileWrite,
  kFileWriteAck,

  // --- site manager ---
  kStatusQuery = 80,
  kStatusReply,
  kMetricsQuery,         // introspection: ask for a full SiteStatus
  kMetricsReply,         // serialized SiteStatus snapshot

  // --- crash manager ---
  kCheckpointFreeze = 90,  // coordinator → sites: quiesce program
  kCheckpointFrozen,       // site → coordinator: I am quiesced
  kCheckpointTakeShard,    // coordinator → sites: drain over, snapshot now
  kCheckpointData,         // site → coordinator: frozen frames + memory
  kCheckpointCommit,       // coordinator → sites: epoch committed, resume
  kCheckpointReplica,      // coordinator → replica holder: snapshot copy
  kRecoveryRestore,        // coordinator → sites: reset program, take shard
  kRecoveryAck,
  kCheckpointReplicaAck,   // holder → coordinator: replica persisted
  kRecoveryOffer,          // restarted site: I hold (program, epoch) on disk
  kRecoveryActive,         // live home → offerer: stand down (+terminated?)
};

[[nodiscard]] const char* to_string(MsgType t);

struct SdMessage {
  SiteId src = kInvalidSite;
  SiteId dst = kInvalidSite;
  ManagerId src_mgr = ManagerId::kMessage;
  ManagerId dst_mgr = ManagerId::kMessage;
  MsgType type = MsgType::kInvalid;
  ProgramId program;          // kInvalid when not program-scoped
  std::uint64_t seq = 0;      // sender-unique, for request/reply pairing
  std::uint64_t reply_to = 0; // seq of the request this answers (0 = none)
  std::uint8_t hops = 0;      // times forwarded by a departed site (capped)
  std::vector<std::byte> payload;

  /// Serializes the body (everything after src/dst). The message manager
  /// composes the full wire frame, optionally sealing the body.
  [[nodiscard]] std::vector<std::byte> serialize_body() const;
  [[nodiscard]] static Result<SdMessage> deserialize_body(
      SiteId src, SiteId dst, std::span<const std::byte> body);
};

}  // namespace sdvm
