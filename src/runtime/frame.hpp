// Microframes: "a data container ... containing space for the expected
// parameters, a pointer to the owning microthread, and addresses to
// microframes where the results have to be applied" (paper §3.1, Fig. 2).
//
// Result-target addresses are ordinary parameter values here — a creating
// microthread passes target addresses into the frame's slots, which is how
// the example in Fig. 2 uses them.
//
// Firing rule: a frame becomes *executable* exactly when its last missing
// parameter arrives; it is consumed by exactly one execution and vanishes.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/serialize.hpp"
#include "common/status.hpp"
#include "common/types.hpp"

namespace sdvm {

enum class FrameState : std::uint8_t {
  kIncomplete = 0,  // waiting for parameters, held by attraction memory
  kExecutable,      // all parameters present, queued at the scheduler
  kShipped,         // given away in a help reply; no longer ours
  kConsumed,        // executed; kept only as a tombstone until GC
};

struct Microframe {
  FrameId id;
  ProgramId program;
  MicrothreadId thread = kInvalidMicrothread;
  int priority = 0;  // scheduling hint (CDAG / programmer supplied)
  FrameState state = FrameState::kIncomplete;
  std::vector<std::vector<std::byte>> params;
  std::vector<std::uint8_t> filled;  // per-slot flag (vector<bool> is a trap)

  Microframe() = default;
  Microframe(FrameId fid, ProgramId pid, MicrothreadId tid, std::size_t nparams,
             int prio = 0)
      : id(fid),
        program(pid),
        thread(tid),
        priority(prio),
        params(nparams),
        filled(nparams, 0) {}

  [[nodiscard]] std::size_t missing() const {
    std::size_t m = 0;
    for (auto f : filled) m += (f == 0);
    return m;
  }
  [[nodiscard]] bool executable() const { return missing() == 0; }

  /// Fills one slot. Double-fill and out-of-range are application errors.
  Status apply(std::size_t slot, std::vector<std::byte> value) {
    if (slot >= params.size()) {
      return Status::error(ErrorCode::kInvalidArgument,
                           "slot " + std::to_string(slot) + " out of range (" +
                               std::to_string(params.size()) + " params)");
    }
    if (filled[slot] != 0) {
      return Status::error(ErrorCode::kAlreadyExists,
                           "slot " + std::to_string(slot) + " already filled");
    }
    params[slot] = std::move(value);
    filled[slot] = 1;
    return Status::ok();
  }

  [[nodiscard]] std::int64_t param_int(std::size_t slot) const {
    return from_bytes<std::int64_t>(params.at(slot));
  }

  void serialize(ByteWriter& w) const {
    w.address(id);
    w.program(program);
    w.u32(thread);
    w.i32(priority);
    w.u32(static_cast<std::uint32_t>(params.size()));
    for (std::size_t i = 0; i < params.size(); ++i) {
      w.u8(filled[i]);
      w.blob(params[i]);
    }
  }

  [[nodiscard]] static Result<Microframe> deserialize(ByteReader& r) {
    try {
      Microframe f;
      f.id = r.address();
      f.program = r.program();
      f.thread = r.u32();
      f.priority = r.i32();
      std::uint32_t n = r.count(/*min_bytes_each=*/5);
      f.params.resize(n);
      f.filled.resize(n, 0);
      for (std::uint32_t i = 0; i < n; ++i) {
        f.filled[i] = r.u8();
        f.params[i] = r.blob();
      }
      return f;
    } catch (const DecodeError& e) {
      return Status::error(ErrorCode::kCorrupt,
                           std::string("bad microframe: ") + e.what());
    }
  }
};

}  // namespace sdvm
