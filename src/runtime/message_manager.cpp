#include "runtime/message_manager.hpp"

#include <algorithm>

#include "runtime/site.hpp"

namespace sdvm {

void MessageManager::register_metrics(metrics::MetricsRegistry& registry) {
  registry.register_counter("msg.sent", &sent_count);
  registry.register_counter("msg.received", &received_count);
  registry.register_counter("msg.bytes_sent", &bytes_sent);
  registry.register_counter("msg.bytes_received", &bytes_received);
  registry.register_counter("msg.forwarded_departed", &forwarded_departed);
  registry.register_provider([this](metrics::MetricsSnapshot& s) {
    for (std::size_t i = 0; i < kTypeSlots; ++i) {
      if (sent_by_type_[i] != 0) {
        s.add_counter(std::string("msg.sent.") +
                          to_string(static_cast<MsgType>(i)),
                      sent_by_type_[i]);
      }
      if (received_by_type_[i] != 0) {
        s.add_counter(std::string("msg.received.") +
                          to_string(static_cast<MsgType>(i)),
                      received_by_type_[i]);
      }
    }
  });
}

Status MessageManager::send(SdMessage msg) {
  msg.src = site_.cluster().local_id();
  if (msg.seq == 0) msg.seq = next_seq();
  // Sim mode: a running microthread's results — including loopback ones —
  // leave the microthread only at its virtual completion time (§3.2
  // step 4); otherwise a consumer stolen by another site could start
  // before its producer virtually finished.
  if (defer_ != nullptr) {
    defer_->push_back(std::move(msg));
    return Status::ok();
  }
  return transmit(std::move(msg));
}

Status MessageManager::send_burst(std::vector<SdMessage> msgs) {
  Status first = Status::ok();
  SiteId local = site_.cluster().local_id();
  // Group by destination address, preserving per-destination order.
  std::vector<std::pair<std::string, std::vector<net::Frame>>> by_dest;
  for (auto& msg : msgs) {
    msg.src = local;
    if (msg.seq == 0) msg.seq = next_seq();
    if (defer_ != nullptr) {
      defer_->push_back(std::move(msg));
      continue;
    }
    if (msg.dst == local && local != kInvalidSite) {
      count_sent(msg.type);
      count_received(msg.type);
      deliver(msg);
      continue;
    }
    auto addr = site_.cluster().physical_address(msg.dst);
    if (!addr.is_ok()) {
      if (first.is_ok()) first = addr.status();
      continue;
    }
    if (site_.transport() == nullptr) {
      if (first.is_ok()) {
        first = Status::error(ErrorCode::kFailedPrecondition, "no transport");
      }
      continue;
    }
    count_sent(msg.type);
    auto wire = site_.security().protect(msg);
    bytes_sent += wire.size();
    auto it = std::find_if(by_dest.begin(), by_dest.end(), [&](auto& e) {
      return e.first == addr.value();
    });
    if (it == by_dest.end()) {
      by_dest.emplace_back(addr.value(), std::vector<net::Frame>{});
      it = std::prev(by_dest.end());
    }
    it->second.push_back(std::move(wire));
  }
  for (auto& [dest, frames] : by_dest) {
    Status st = site_.transport()->send_batch(dest, std::move(frames));
    if (!st.is_ok() && first.is_ok()) first = st;
    site_.transport()->flush(dest);
  }
  return first;
}

Status MessageManager::request(SdMessage msg, ReplyHandler on_reply) {
  msg.src = site_.cluster().local_id();
  msg.seq = next_seq();
  pending_[msg.seq] = Pending{msg.dst, std::move(on_reply)};
  std::uint64_t seq = msg.seq;
  if (defer_ != nullptr) {
    defer_->push_back(std::move(msg));
    return Status::ok();
  }
  Status st = transmit(std::move(msg));
  if (!st.is_ok()) {
    auto node = pending_.extract(seq);
    if (!node.empty()) node.mapped().handler(st);
  }
  return st;
}

Status MessageManager::respond(const SdMessage& request, SdMessage msg) {
  msg.dst = request.src;
  msg.reply_to = request.seq;
  if (msg.program.value == 0) msg.program = request.program;
  return send(std::move(msg));
}

Status MessageManager::transmit(SdMessage msg) {
  SiteId local = site_.cluster().local_id();
  if (msg.dst == local && local != kInvalidSite) {
    // Loopback: skip the wire entirely (Figure 4: the execution layer
    // "alone would suffice to run an SDVM on one site only").
    count_sent(msg.type);
    count_received(msg.type);
    deliver(msg);
    return Status::ok();
  }

  auto addr = site_.cluster().physical_address(msg.dst);
  if (!addr.is_ok()) return addr.status();
  if (site_.transport() == nullptr) {
    return Status::error(ErrorCode::kFailedPrecondition, "no transport");
  }
  count_sent(msg.type);
  auto wire = site_.security().protect(msg);
  bytes_sent += wire.size();
  return site_.transport()->send(addr.value(), std::move(wire));
}

Status MessageManager::send_to_address(const std::string& physical,
                                       SdMessage msg) {
  msg.src = site_.cluster().local_id();
  if (msg.seq == 0) msg.seq = next_seq();
  if (site_.transport() == nullptr) {
    return Status::error(ErrorCode::kFailedPrecondition, "no transport");
  }
  count_sent(msg.type);
  auto wire = site_.security().protect(msg);
  bytes_sent += wire.size();
  return site_.transport()->send(physical, std::move(wire));
}

void MessageManager::on_raw(std::span<const std::byte> wire) {
  auto msg = site_.security().unprotect(wire);
  if (!msg.is_ok()) {
    SDVM_WARN(site_.tag()) << "dropping bad wire frame: "
                           << msg.status().to_string();
    return;
  }
  bytes_received += wire.size();
  count_received(msg.value().type);
  deliver(msg.value());
}

namespace {

/// Messages a departed site must relay to its successor: anything carrying
/// program state (microframes, results, memory objects, io, another site's
/// sign-off import). Control-plane traffic (heartbeats, gossip, checkpoint
/// coordination, status queries) is addressed to *this* site's role and
/// dies with it.
bool forwardable_after_sign_off(MsgType t) {
  switch (t) {
    case MsgType::kHelpReplyFrame:
    case MsgType::kApplyParam:
    case MsgType::kApplyParamNack:
    case MsgType::kObjectRequest:
    case MsgType::kObjectGrant:
    case MsgType::kObjectRecall:
    case MsgType::kObjectReturn:
    case MsgType::kObjectMiss:
    case MsgType::kDirectoryImport:
    // Shard state in flight to a departed site must reach its successor;
    // lease/stale/recover control traffic is view-bound and dies here.
    case MsgType::kShardHandoff:
    case MsgType::kShardRegister:
    case MsgType::kShardRecoverReply:
    case MsgType::kIoOutput:
    case MsgType::kFileRead:
    case MsgType::kFileReadReply:
    case MsgType::kFileWrite:
    case MsgType::kFileWriteAck:
      return true;
    default:
      return false;
  }
}

/// Bounds relay chains through concurrently departing sites; a cycle can
/// only arise when two sites pick each other as successors before either
/// hears the other's announcement.
constexpr std::uint8_t kMaxForwardHops = 8;

}  // namespace

void MessageManager::on_raw_departed(std::span<const std::byte> wire) {
  auto msg = site_.security().unprotect(wire);
  if (!msg.is_ok()) return;
  SdMessage m = std::move(msg).value();
  if (!forwardable_after_sign_off(m.type)) return;
  if (m.hops >= kMaxForwardHops) {
    SDVM_WARN(site_.tag()) << "dropping " << to_string(m.type)
                           << " after " << int(m.hops) << " sign-off relays";
    return;
  }
  SiteId local = site_.cluster().local_id();
  SiteId succ = site_.cluster().resolve_successor(local);
  if (succ == kInvalidSite || succ == local) return;
  auto addr = site_.cluster().physical_address(succ);
  if (!addr.is_ok() || site_.transport() == nullptr) return;
  m.dst = succ;
  // The successor never issued the request this reply answers; a preserved
  // reply_to would be dropped there as an orphan. Clear it so the payload
  // (a given-away frame, a granted object, ...) dispatches to the manager
  // as unsolicited state. Requests keep their seq, so the successor's
  // respond() still reaches the original requester.
  m.reply_to = 0;
  ++m.hops;
  ++forwarded_departed;
  auto out = site_.security().protect(m);
  bytes_sent += out.size();
  (void)site_.transport()->send(addr.value(), std::move(out));
}

void MessageManager::deliver(const SdMessage& msg) {
  site_.cluster().note_heard(msg.src);

  if (msg.reply_to != 0) {
    auto node = pending_.extract(msg.reply_to);
    if (!node.empty()) {
      node.mapped().handler(msg);
      return;
    }
    // Reply to an expired/duplicate request: fall through only for types
    // that are meaningful unsolicited; otherwise drop.
    SDVM_DEBUG(site_.tag()) << "orphan reply " << to_string(msg.type);
    return;
  }
  site_.dispatch(msg);
}

void MessageManager::fail_pending_to(SiteId dead) {
  std::vector<ReplyHandler> failed;
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (it->second.target == dead) {
      failed.push_back(std::move(it->second.handler));
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto& h : failed) {
    h(Status::error(ErrorCode::kUnavailable,
                    "site " + std::to_string(dead) + " is dead"));
  }
}

}  // namespace sdvm
