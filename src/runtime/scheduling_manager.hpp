// Scheduling manager (paper §3.3, §4, Figure 5): keeps a queue of
// *executable* microframes (all parameters present) and a queue of *ready*
// microframes (corresponding microthread code resolved). Local order is
// FIFO by default ("to avoid starving"); help requests are answered from
// the LIFO end ("to hide the communication latencies"). Idle sites send
// help requests to targets chosen by the cluster manager.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_set>

#include "common/config.hpp"
#include "runtime/code_manager.hpp"
#include "runtime/frame.hpp"
#include "runtime/message.hpp"
#include "runtime/metrics.hpp"

namespace sdvm {

class Site;

struct ReadyWork {
  Microframe frame;
  Executable exec;
};

class SchedulingManager {
 public:
  explicit SchedulingManager(Site& site) : site_(site) {}

  /// A frame with all parameters arrived (from the attraction memory or a
  /// help reply). Requests its microthread from the code manager.
  void on_executable(Microframe frame);

  /// Processing manager pulls work. Policy-ordered (FIFO default).
  [[nodiscard]] std::optional<ReadyWork> take_ready();
  [[nodiscard]] bool has_ready() const { return !ready_.empty(); }
  [[nodiscard]] std::size_t queued_total() const {
    return executable_.size() + ready_.size();
  }

  /// Called by the site when the whole execution layer is starving: no
  /// queued work, nothing running. Issues a help request (rate-limited).
  void on_starving();

  void handle(const SdMessage& msg);
  void drop_program(ProgramId pid);

  /// Checkpoint support: serializes queued frames; restore re-enqueues.
  [[nodiscard]] std::vector<Microframe> snapshot_frames(ProgramId pid) const;
  void clear_program_frames(ProgramId pid);

  /// Freeze: stop handing out work (checkpoint quiescence).
  void set_frozen(bool frozen) { frozen_ = frozen; }
  [[nodiscard]] bool frozen() const { return frozen_; }

  /// Registers this manager's instruments ("sched." prefix).
  void register_metrics(metrics::MetricsRegistry& registry);

  // Deprecated shims: read these through Site::introspect() metrics
  // ("sched.*") instead; kept as fields for one release.
  metrics::Counter help_requests_sent;
  metrics::Counter help_frames_given;
  metrics::Counter help_frames_received;
  metrics::Counter cant_help_received;
  metrics::Counter frames_enqueued;     // entered the executable queue
  metrics::Counter starvation_events;   // starving with no help target

 private:
  void on_code_ready(FrameId id, Result<Executable> exec);
  void schedule_retry();
  /// Picks a frame to give away for a help request, or nullopt.
  [[nodiscard]] std::optional<Microframe> pick_frame_to_give();

  Site& site_;
  std::deque<Microframe> executable_;   // waiting for code resolution
  std::deque<ReadyWork> ready_;
  std::unordered_set<std::uint64_t> code_pending_;  // FrameId.value
  std::unordered_map<std::uint64_t, int> code_retry_;
  static constexpr int kMaxCodeRetries = 50;
  bool help_in_flight_ = false;
  Nanos last_help_request_ = -1;
  std::vector<SiteId> help_excluded_;   // targets that said can't-help
  bool frozen_ = false;
};

}  // namespace sdvm
