// Site manager (paper §4): "focuses on the local site ... collects
// performance data about the local site, e.g. the workload, memory load,
// number of executable microframes in the queue, the number of programs
// the local site works on" and answers status queries about all local
// managers.
#pragma once

#include <functional>
#include <string>

#include "runtime/cluster_info.hpp"
#include "runtime/message.hpp"
#include "runtime/site_status.hpp"

namespace sdvm {

class Site;

class SiteManager {
 public:
  explicit SiteManager(Site& site) : site_(site) {}

  /// Snapshot of the local load for gossip piggybacking.
  [[nodiscard]] LoadStats collect_load() const;

  /// DEPRECATED: use Site::introspect().to_text() / SiteStatus instead.
  /// Human-readable status of every local manager, kept as a shim for one
  /// release (sdvmd and older tooling still print it).
  [[nodiscard]] std::string status_string() const;

  /// Cluster-wide introspection: fans a kMetricsQuery out to every live
  /// peer, collects SiteStatus replies, and fires `done` with the sorted
  /// aggregate — on the last reply or at `timeout` (whichever is first;
  /// late sites land in ClusterStatus::unreachable). Call under the site
  /// lock; `done` runs under the site lock too.
  using ClusterStatusCallback = std::function<void(ClusterStatus)>;
  void query_cluster_status(ClusterStatusCallback done, Nanos timeout);

  void handle(const SdMessage& msg);

 private:
  Site& site_;
};

}  // namespace sdvm
