// Site manager (paper §4): "focuses on the local site ... collects
// performance data about the local site, e.g. the workload, memory load,
// number of executable microframes in the queue, the number of programs
// the local site works on" and answers status queries about all local
// managers.
#pragma once

#include <string>

#include "runtime/cluster_info.hpp"
#include "runtime/message.hpp"

namespace sdvm {

class Site;

class SiteManager {
 public:
  explicit SiteManager(Site& site) : site_(site) {}

  /// Snapshot of the local load for gossip piggybacking.
  [[nodiscard]] LoadStats collect_load() const;

  /// Human-readable status of every local manager (the frontend's "query
  /// the status of the local site").
  [[nodiscard]] std::string status_string() const;

  void handle(const SdMessage& msg);

 private:
  Site& site_;
};

}  // namespace sdvm
