// Message manager: "the central hub for information interchange with other
// sites" (paper §4, Figure 6). Serializes SDMessages, resolves logical →
// physical addresses through the cluster manager, passes frames through
// the security manager to the network manager, and dispatches inbound
// messages to the addressed manager. Also provides request/reply pairing.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <unordered_map>

#include "common/status.hpp"
#include "runtime/message.hpp"
#include "runtime/metrics.hpp"

namespace sdvm {

class Site;

class MessageManager {
 public:
  explicit MessageManager(Site& site) : site_(site) {}

  /// Fire-and-forget send. Fills in src and a fresh seq. Messages to the
  /// local site are dispatched directly (loopback).
  Status send(SdMessage msg);

  /// Fire-and-forget burst. Messages are grouped by destination and handed
  /// to the transport as per-peer batches (Transport::send_batch + flush),
  /// so a fan-out of N tiny messages leaves the site in O(peers) wire
  /// batches instead of N datagrams. Loopback messages dispatch directly;
  /// the first failure's status is returned, later messages still go out.
  Status send_burst(std::vector<SdMessage> msgs);

  /// Request expecting a reply (matched on reply_to == seq). The handler
  /// runs under the site lock when the reply (or a failure) arrives.
  using ReplyHandler = std::function<void(Result<SdMessage>)>;
  Status request(SdMessage msg, ReplyHandler on_reply);

  /// Convenience: reply to `request` with `msg` (sets dst/reply_to).
  Status respond(const SdMessage& request, SdMessage msg);

  /// Sends straight to a physical address, bypassing the cluster list.
  /// Needed for sign-on, when the joiner has no logical id yet.
  Status send_to_address(const std::string& physical, SdMessage msg);

  /// Entry point for raw wire data (called under the site lock).
  void on_raw(std::span<const std::byte> wire);

  /// Raw wire data arriving after this site signed off. State-carrying
  /// traffic (frames, results, objects, io, sign-off imports) still in
  /// flight when the site departed is forwarded to the announced
  /// successor — dropping it would strand the microframes the departing
  /// site just relocated there. Hop-capped against sign-off cycles.
  void on_raw_departed(std::span<const std::byte> wire);

  /// Fails every pending request addressed to a site now believed dead.
  void fail_pending_to(SiteId dead);

  /// Sim mode: while a microthread executes, non-loopback sends are
  /// buffered here and released at the thread's virtual completion time.
  void set_defer(std::vector<SdMessage>* buffer) { defer_ = buffer; }
  [[nodiscard]] bool defer_active() const { return defer_ != nullptr; }
  Status transmit_deferred(SdMessage msg) { return transmit(std::move(msg)); }

  [[nodiscard]] std::uint64_t next_seq() { return ++seq_; }

  /// Registers this manager's instruments ("msg." prefix), including a
  /// provider that emits per-message-type send/receive families.
  void register_metrics(metrics::MetricsRegistry& registry);

  // Deprecated shims: read "msg.*" via Site::introspect() instead.
  metrics::Counter sent_count;
  metrics::Counter received_count;
  metrics::Counter bytes_sent;      // wire bytes (loopback excluded)
  metrics::Counter bytes_received;
  metrics::Counter forwarded_departed;  // relayed after sign-off

 private:
  Status transmit(SdMessage msg);
  void deliver(const SdMessage& msg);

  static constexpr std::size_t kTypeSlots = 128;
  void count_sent(MsgType t) {
    ++sent_count;
    auto i = static_cast<std::size_t>(t);
    if (i < kTypeSlots) ++sent_by_type_[i];
  }
  void count_received(MsgType t) {
    ++received_count;
    auto i = static_cast<std::size_t>(t);
    if (i < kTypeSlots) ++received_by_type_[i];
  }

  struct Pending {
    SiteId target;
    ReplyHandler handler;
  };

  Site& site_;
  std::uint64_t seq_ = 0;
  std::unordered_map<std::uint64_t, Pending> pending_;
  std::vector<SdMessage>* defer_ = nullptr;
  std::array<std::uint64_t, kTypeSlots> sent_by_type_{};
  std::array<std::uint64_t, kTypeSlots> received_by_type_{};
};

}  // namespace sdvm
