#include "runtime/crash_manager.hpp"

#include "runtime/site.hpp"

namespace sdvm {

// ---------------------------------------------------------------------------
// Shard serialization
// ---------------------------------------------------------------------------

std::vector<std::byte> CrashManager::make_shard(ProgramId pid) const {
  ByteWriter w;
  auto queued = site_.scheduling().snapshot_frames(pid);
  w.u32(static_cast<std::uint32_t>(queued.size()));
  for (const auto& f : queued) f.serialize(w);
  auto mem = site_.memory().snapshot(pid);
  w.raw(mem.data(), mem.size());
  SDVM_DEBUG(site_.tag()) << "shard for " << pid.value << ": "
                          << queued.size() << " queued frames, "
                          << site_.memory().frame_count()
                          << " stored frames total";
  return w.take();
}

void CrashManager::install_shard(ProgramId pid,
                                 std::span<const std::byte> shard) {
  (void)pid;
  try {
    ByteReader r(shard);
    std::uint32_t nqueued = r.count(/*min_bytes_each=*/8);
    for (std::uint32_t i = 0; i < nqueued; ++i) {
      auto f = Microframe::deserialize(r);
      if (f.is_ok()) site_.memory().adopt_frame(std::move(f).value());
    }
    site_.memory().restore_snapshot(r);
  } catch (const DecodeError& e) {
    SDVM_ERROR(site_.tag()) << "corrupt recovery shard: " << e.what();
  }
}

void CrashManager::clear_program_state(ProgramId pid) {
  site_.scheduling().clear_program_frames(pid);
  site_.memory().drop_program(pid);
}

// ---------------------------------------------------------------------------
// Durability plumbing
// ---------------------------------------------------------------------------

CheckpointStore* CrashManager::checkpoint_store() {
  if (!ckpt_checked_) {
    ckpt_checked_ = true;
    if (auto store = site_.state_store()) {
      ckpt_ = std::make_unique<CheckpointStore>(std::move(store));
    }
  }
  return ckpt_.get();
}

std::vector<SiteId> CrashManager::pick_holders(ProgramId pid) const {
  std::vector<SiteId> alive = site_.cluster().known_sites(/*alive_only=*/true);
  std::sort(alive.begin(), alive.end());
  std::erase(alive, site_.id());
  if (alive.empty()) return {};
  std::uint32_t k = site_.config().replication_factor;
  if (k == 0 || static_cast<std::size_t>(k) > alive.size() + 1) {
    return alive;  // replicate to every live site
  }
  if (k <= 1) return {};
  std::vector<SiteId> out;
  std::size_t start = static_cast<std::size_t>(pid.value % alive.size());
  for (std::size_t i = 0; i < alive.size() && out.size() < k - 1; ++i) {
    out.push_back(alive[(start + i) % alive.size()]);
  }
  return out;
}

DurableEpoch CrashManager::build_durable(
    ProgramId pid, std::uint64_t epoch,
    std::map<SiteId, std::vector<std::byte>> shards) {
  DurableEpoch d;
  d.pid = pid;
  d.epoch = epoch;
  d.shards = std::move(shards);
  if (const ProgramInfo* info = site_.programs().find(pid)) d.info = *info;
  d.info.id = pid;
  d.info.home_site = site_.id();
  d.sources = site_.code().export_sources(pid);
  d.io_log = site_.io().export_log(pid);
  // Directory-shard lease epochs ride every durable epoch: recovery seeds
  // them back so post-restart leases never regress below the failed
  // cluster's epochs (a handed-off shard survives a cold restart).
  for (std::uint32_t s = 0; s < kNumShards; ++s) {
    std::uint64_t e = site_.memory().max_shard_epoch(s);
    if (e > 0) d.shard_epochs[s] = e;
  }
  return d;
}

void CrashManager::persist_local(const DurableEpoch& snap) {
  auto* cs = checkpoint_store();
  if (cs == nullptr) return;
  Status st = cs->persist(snap);
  if (st.is_ok()) {
    ++replicas_persisted;
  } else {
    SDVM_WARN(site_.tag()) << "persisting epoch " << snap.epoch
                           << " of program " << snap.pid.value
                           << " failed: " << st.to_string();
  }
}

void CrashManager::replicate(ProgramId pid, const DurableEpoch& snap) {
  auto hit = holders_.find(pid);
  if (hit == holders_.end() || hit->second.empty()) return;
  ByteWriter w;
  snap.serialize(w);
  // The full holder set (home included) rides along: after a home death
  // the lowest *live* site of this set takes over, no coordination needed.
  w.u32(static_cast<std::uint32_t>(hit->second.size() + 1));
  w.site(site_.id());
  for (SiteId sid : hit->second) w.site(sid);
  for (SiteId sid : hit->second) {
    SdMessage msg;
    msg.dst = sid;
    msg.src_mgr = msg.dst_mgr = ManagerId::kCrash;
    msg.type = MsgType::kCheckpointReplica;
    msg.program = pid;
    msg.payload = w.bytes();
    (void)site_.messages().send(std::move(msg));
  }
}

void CrashManager::on_program_started(ProgramId pid) {
  if (!site_.config().checkpoints_enabled) return;
  // Epoch-0 durability: before any checkpoint commits, the program's
  // initial state (info + sources) already has k copies, so a home death
  // in the first interval no longer loses the program.
  DurableEpoch d = build_durable(pid, /*epoch=*/0, {});
  holders_[pid] = pick_holders(pid);
  persist_local(d);
  replicate(pid, d);
}

// ---------------------------------------------------------------------------
// Coordinator: checkpoint rounds
// ---------------------------------------------------------------------------

void CrashManager::on_tick() {
  if (!site_.config().checkpoints_enabled || !site_.cluster().joined() ||
      site_.signed_off()) {
    return;
  }
  Nanos now = site_.clock().now();

  // Abort rounds that never completed (a participant died mid-round, or
  // the persist quorum never materialized).
  for (auto it = active_rounds_.begin(); it != active_rounds_.end();) {
    if (now - it->second.started >
        site_.config().heartbeat_interval * 20) {
      SDVM_WARN(site_.tag()) << "checkpoint round for program "
                             << it->first.value << " timed out, aborting"
                             << " (epoch " << it->second.epoch << ", frozen "
                             << it->second.frozen.size() << "/"
                             << it->second.expected.size() << ", shards "
                             << it->second.received.size() << ", acks "
                             << it->second.persist_acks.size() << ")";
      ByteWriter w;
      w.u64(it->second.epoch);
      for (SiteId sid : it->second.expected) {
        SdMessage msg;
        msg.dst = sid;
        msg.src_mgr = msg.dst_mgr = ManagerId::kCrash;
        msg.type = MsgType::kCheckpointCommit;
        msg.program = it->first;
        msg.payload = w.bytes();
        (void)site_.messages().send(std::move(msg));
      }
      it = active_rounds_.erase(it);
    } else {
      ++it;
    }
  }

  for (ProgramId pid : site_.programs().active_programs()) {
    const ProgramInfo* info = site_.programs().find(pid);
    if (info == nullptr) continue;
    // Coordinate by resolved home: a site that absorbed the program from
    // a gracefully departing coordinator inherits the checkpoint duty
    // even though the recorded home still names the departed site.
    if (site_.cluster().resolve_successor(info->home_site) != site_.id()) {
      continue;
    }
    // Keep the replica web current. Graceful sign-offs never run
    // on_site_dead, so the holder set can silently decay to departed
    // sites (or, right after an adoption, still be empty); re-pick
    // against the live membership and push the newest durable epoch at
    // whoever is new.
    // An adopter that held a replica of this program becomes coordinator
    // owning that epoch: seed committed_ from it so re-replication and
    // epoch numbering continue where the departed coordinator left off
    // instead of regressing to a fresh epoch-0 snapshot.
    if (!committed_.contains(pid)) {
      if (auto rit = replicas_.find(pid);
          rit != replicas_.end() && rit->second.epoch > 0) {
        DurableEpoch snap = rit->second;
        snap.info = *info;
        snap.info.home_site = site_.id();
        next_epoch_[pid] = std::max(next_epoch_[pid], snap.epoch);
        committed_[pid] = std::move(snap);
        replicas_.erase(pid);
        replica_home_.erase(pid);
        replica_peers_.erase(pid);
      }
    }
    std::vector<SiteId> fresh = pick_holders(pid);
    if (holders_[pid] != fresh) {
      holders_[pid] = std::move(fresh);
      if (auto cit = committed_.find(pid); cit != committed_.end()) {
        replicate(pid, cit->second);
      } else {
        DurableEpoch d = build_durable(pid, /*epoch=*/0, {});
        persist_local(d);
        replicate(pid, d);
      }
    }
    if (active_rounds_.contains(pid)) continue;
    auto last = last_checkpoint_.find(pid);
    Nanos base = last == last_checkpoint_.end() ? 0 : last->second;
    if (now - base >= site_.config().checkpoint_interval) {
      begin_checkpoint(pid);
    }
  }

  // Expire frozen rounds whose coordinator will never commit or abort
  // them (it died mid-round, or its abort broadcast was lost). Without
  // this a participant stays frozen forever: later rounds balance their
  // own freeze/commit pair, so the leaked depth never drains.
  expire_pending_shards([&](const PendingShard& p) {
    return now - p.frozen_at > site_.config().heartbeat_interval * 20;
  });

  // Participants may still owe frozen-acks (waiting for quiescence).
  try_ack_frozen();
}

template <typename Pred>
void CrashManager::expire_pending_shards(Pred pred) {
  bool changed = false;
  for (auto it = pending_shards_.begin(); it != pending_shards_.end();) {
    if (pred(*it)) {
      SDVM_WARN(site_.tag()) << "dropping stale frozen shard for program "
                             << it->pid.value << " epoch " << it->epoch
                             << " (coordinator " << it->coordinator << ")";
      it = pending_shards_.erase(it);
      --freeze_depth_;
      changed = true;
    } else {
      ++it;
    }
  }
  if (changed && freeze_depth_ <= 0) {
    freeze_depth_ = 0;
    site_.processing().set_frozen(false);
    site_.scheduling().set_frozen(false);
    site_.processing().kick();
    site_.driver().notify_work();
  }
}

void CrashManager::begin_checkpoint(ProgramId pid) {
  Round round;
  round.epoch = ++next_epoch_[pid];
  round.expected = site_.cluster().known_sites(/*alive_only=*/true);
  round.started = site_.clock().now();
  last_checkpoint_[pid] = round.started;  // rate-limit even on failure

  ByteWriter w;
  w.u64(round.epoch);
  std::vector<SiteId> expected = round.expected;
  // Register the round first: the loopback freeze to ourselves acks
  // synchronously and must find it.
  active_rounds_[pid] = std::move(round);
  for (SiteId sid : expected) {
    SdMessage msg;
    msg.dst = sid;
    msg.src_mgr = msg.dst_mgr = ManagerId::kCrash;
    msg.type = MsgType::kCheckpointFreeze;
    msg.program = pid;
    msg.payload = w.bytes();
    (void)site_.messages().send(std::move(msg));
  }
}

void CrashManager::maybe_commit(ProgramId pid) {
  auto it = active_rounds_.find(pid);
  if (it == active_rounds_.end()) return;
  Round& round = it->second;
  if (round.awaiting_quorum) return;
  if (round.received.size() < round.expected.size()) return;

  // All shards in: assemble the durable epoch, persist locally, fan out
  // replicas, and only commit once a quorum of the copies persisted.
  round.snap = build_durable(pid, round.epoch, round.received);
  round.awaiting_quorum = true;
  holders_[pid] = pick_holders(pid);
  persist_local(round.snap);
  round.persist_acks.insert(site_.id());
  replicate(pid, round.snap);
  maybe_finish_commit(pid);
}

void CrashManager::maybe_finish_commit(ProgramId pid) {
  auto it = active_rounds_.find(pid);
  if (it == active_rounds_.end() || !it->second.awaiting_quorum) return;
  Round& round = it->second;
  std::size_t copies = holders_[pid].size() + 1;
  std::size_t quorum = copies / 2 + 1;
  if (round.persist_acks.size() < quorum) return;

  committed_[pid] = std::move(round.snap);
  last_checkpoint_[pid] = site_.clock().now();
  ++checkpoints_committed;

  ByteWriter w;
  w.u64(round.epoch);
  for (SiteId sid : round.expected) {
    SdMessage msg;
    msg.dst = sid;
    msg.src_mgr = msg.dst_mgr = ManagerId::kCrash;
    msg.type = MsgType::kCheckpointCommit;
    msg.program = pid;
    msg.payload = w.bytes();
    (void)site_.messages().send(std::move(msg));
  }
  SDVM_INFO(site_.tag()) << "checkpoint epoch " << round.epoch
                         << " committed for program " << pid.value << " ("
                         << round.persist_acks.size() << "/" << copies
                         << " copies persisted)";
  active_rounds_.erase(it);
}

// ---------------------------------------------------------------------------
// Participant: freeze / shard / commit / replica
// ---------------------------------------------------------------------------

void CrashManager::handle_freeze(const SdMessage& msg) {
  std::uint64_t epoch = 0;
  try {
    ByteReader r(msg.payload);
    epoch = r.u64();
  } catch (const DecodeError&) {
    return;
  }
  ++freeze_depth_;
  SDVM_DEBUG(site_.tag()) << "freeze epoch " << epoch << " from site "
                          << msg.src << " (depth " << freeze_depth_ << ")";
  site_.processing().set_frozen(true);
  site_.scheduling().set_frozen(true);
  pending_shards_.push_back(
      PendingShard{msg.program, epoch, msg.src, false, site_.clock().now()});
  try_ack_frozen();
}

void CrashManager::try_ack_frozen() {
  bool pending = false;
  for (auto& p : pending_shards_) {
    if (p.acked) continue;
    if (!site_.execution_quiesced()) {
      pending = true;
      continue;
    }
    p.acked = true;
    SDVM_DEBUG(site_.tag()) << "acking frozen epoch " << p.epoch
                            << " to site " << p.coordinator;
    ByteWriter w;
    w.u64(p.epoch);
    SdMessage msg;
    msg.dst = p.coordinator;
    msg.src_mgr = msg.dst_mgr = ManagerId::kCrash;
    msg.type = MsgType::kCheckpointFrozen;
    msg.program = p.pid;
    msg.payload = w.take();
    (void)site_.messages().send(std::move(msg));
  }
  if (pending) {
    SDVM_DEBUG(site_.tag()) << "not quiesced yet (running "
                            << site_.processing().running() << ", busy until "
                            << site_.sim_busy_until() << " vs now "
                            << site_.clock().now() << ")";
    site_.schedule_after(500'000, [this] { try_ack_frozen(); });
  }
}

void CrashManager::handle_take_shard(const SdMessage& msg) {
  std::uint64_t epoch = 0;
  try {
    ByteReader r(msg.payload);
    epoch = r.u64();
  } catch (const DecodeError&) {
    return;
  }
  for (const auto& p : pending_shards_) {
    if (p.pid != msg.program || p.epoch != epoch) continue;
    ByteWriter w;
    w.u64(epoch);
    w.blob(make_shard(p.pid));
    SdMessage reply;
    reply.dst = p.coordinator;
    reply.src_mgr = reply.dst_mgr = ManagerId::kCrash;
    reply.type = MsgType::kCheckpointData;
    reply.program = p.pid;
    reply.payload = w.take();
    (void)site_.messages().send(std::move(reply));
    return;
  }
}

void CrashManager::handle_commit(const SdMessage& msg) {
  std::uint64_t epoch = 0;
  try {
    ByteReader r(msg.payload);
    epoch = r.u64();
  } catch (const DecodeError&) {
    return;
  }
  for (auto it = pending_shards_.begin(); it != pending_shards_.end(); ++it) {
    if (it->pid == msg.program && it->epoch == epoch) {
      pending_shards_.erase(it);
      if (--freeze_depth_ <= 0) {
        freeze_depth_ = 0;
        site_.processing().set_frozen(false);
        site_.scheduling().set_frozen(false);
        site_.processing().kick();
        site_.driver().notify_work();
      }
      return;
    }
  }
}

void CrashManager::handle_replica(const SdMessage& msg) {
  try {
    ByteReader r(msg.payload);
    auto parsed = DurableEpoch::deserialize(r);
    if (!parsed.is_ok()) {
      SDVM_WARN(site_.tag()) << "bad replica payload: "
                             << parsed.status().to_string();
      return;
    }
    std::uint32_t npeers = r.count(/*min_bytes_each=*/4);
    std::vector<SiteId> peers;
    peers.reserve(npeers);
    for (std::uint32_t i = 0; i < npeers; ++i) peers.push_back(r.site());

    DurableEpoch snap = std::move(parsed).value();
    snap.pid = msg.program;
    // A stale retransmit must never regress the replica we already hold.
    if (auto it = replicas_.find(msg.program);
        it != replicas_.end() && it->second.epoch > snap.epoch) {
      return;
    }
    for (const auto& [shard, epoch] : snap.shard_epochs) {
      site_.memory().seed_shard_epoch(shard, epoch);
    }
    site_.code().import_sources(msg.program, snap.sources);
    persist_local(snap);
    std::uint64_t epoch = snap.epoch;
    replicas_[msg.program] = std::move(snap);
    replica_home_[msg.program] = msg.src;
    replica_peers_[msg.program] = std::move(peers);

    // Ack regardless of having a store: an in-memory replica still counts
    // as a copy for the quorum (matches the paper's site-death model).
    ByteWriter w;
    w.u64(epoch);
    SdMessage ack;
    ack.dst = msg.src;
    ack.src_mgr = ack.dst_mgr = ManagerId::kCrash;
    ack.type = MsgType::kCheckpointReplicaAck;
    ack.program = msg.program;
    ack.payload = w.take();
    (void)site_.messages().send(std::move(ack));
  } catch (const DecodeError& e) {
    SDVM_WARN(site_.tag()) << "bad replica message: " << e.what();
  }
}

// ---------------------------------------------------------------------------
// Recovery
// ---------------------------------------------------------------------------

void CrashManager::on_site_dead(SiteId dead) {
  // A site that gracefully signed off is no longer a member: its state
  // went to its successor, and taking over a program here would create a
  // second coordinator racing the one the live cluster elects.
  if (site_.signed_off()) return;
  // Programs we coordinate: roll back to the last committed epoch (or
  // restart from the initial state if none committed yet), and replace a
  // dead replica holder so the copy count holds.
  for (ProgramId pid : site_.programs().active_programs()) {
    const ProgramInfo* info = site_.programs().find(pid);
    if (info == nullptr) continue;
    // Resolve through the sign-off chain: a site that adopted the program
    // from a gracefully departing home coordinates it even though the
    // recorded home_site still names the departed site.
    if (site_.cluster().resolve_successor(info->home_site) == site_.id() &&
        site_.config().checkpoints_enabled) {
      begin_recovery(pid, dead);
      auto hit = holders_.find(pid);
      bool was_holder =
          hit != holders_.end() &&
          std::find(hit->second.begin(), hit->second.end(), dead) !=
              hit->second.end();
      holders_[pid] = pick_holders(pid);
      if (was_holder) {
        SDVM_INFO(site_.tag()) << "re-replicating program " << pid.value
                               << " after holder " << dead << " died";
        if (auto cit = committed_.find(pid); cit != committed_.end()) {
          replicate(pid, cit->second);
        } else {
          replicate(pid, build_durable(pid, /*epoch=*/0, {}));
        }
      }
    }
  }

  // Programs whose home just died and whose replica we hold: the lowest
  // live holder in the replicated peer set takes over. Every holder runs
  // the same rule on the same set, so exactly one wins.
  std::vector<ProgramId> takeovers;
  std::vector<SiteId> alive = site_.cluster().known_sites(/*alive_only=*/true);
  auto is_alive = [&alive](SiteId sid) {
    return std::find(alive.begin(), alive.end(), sid) != alive.end();
  };
  for (const auto& [pid, home] : replica_home_) {
    // The coordinator that sent us the replica may have signed off since
    // (duties travel down the successor chain), or its designated
    // successor-by-takeover may itself have died before re-replicating.
    // Our copy is orphaned whenever the chain no longer ends at a live
    // member — re-evaluate on every death, not just the home's own.
    if (is_alive(site_.cluster().resolve_successor(home))) continue;
    if (site_.programs().is_terminated(pid)) continue;
    SiteId min_live = site_.id();
    if (auto pit = replica_peers_.find(pid); pit != replica_peers_.end()) {
      for (SiteId peer : pit->second) {
        if (peer < min_live && is_alive(peer)) min_live = peer;
      }
    }
    if (min_live == site_.id()) takeovers.push_back(pid);
  }
  for (ProgramId pid : takeovers) {
    SDVM_WARN(site_.tag()) << "home of program " << pid.value
                           << " (site "
                           << site_.cluster().resolve_successor(
                                  replica_home_[pid])
                           << ") is gone; taking over from replica"
                           << " (epoch " << replicas_[pid].epoch << ")";
    DurableEpoch snap = replicas_[pid];
    take_over(pid, std::move(snap));
  }
}

void CrashManager::take_over(ProgramId pid, DurableEpoch snap) {
  for (const auto& [shard, epoch] : snap.shard_epochs) {
    site_.memory().seed_shard_epoch(shard, epoch);
  }
  SiteId old_home = snap.info.home_site;
  ProgramInfo info = snap.info;
  if (!info.id.valid()) {
    const ProgramInfo* known = site_.programs().find(pid);
    if (known == nullptr) return;
    info = *known;
    old_home = info.home_site;
  }
  info.id = pid;
  info.home_site = site_.id();
  site_.programs().register_info(info);
  site_.code().import_sources(pid, snap.sources);
  site_.io().import_log(pid, snap.io_log);
  next_epoch_[pid] = std::max(next_epoch_[pid], snap.epoch);
  replicas_.erase(pid);
  replica_home_.erase(pid);
  replica_peers_.erase(pid);
  if (snap.epoch > 0) {
    snap.info = info;
    committed_[pid] = std::move(snap);
  } else {
    committed_.erase(pid);
  }
  holders_[pid] = pick_holders(pid);
  begin_recovery(pid, old_home);
  // The new holder set needs the snapshot promptly — the old set may have
  // died with the home — and the new home's own disk wants it too.
  if (auto cit = committed_.find(pid); cit != committed_.end()) {
    persist_local(cit->second);
    replicate(pid, cit->second);
  } else {
    DurableEpoch e0 = build_durable(pid, /*epoch=*/0, {});
    persist_local(e0);
    replicate(pid, e0);
  }
}

void CrashManager::begin_recovery(ProgramId pid, SiteId dead) {
  // No committed epoch yet → "epoch 0": the initial state (the entry
  // microframe) is always reconstructible at the home site, so the
  // program restarts from scratch rather than hanging with lost frames.
  DurableEpoch epoch0;
  auto snap_it = committed_.find(pid);
  const DurableEpoch& snap =
      snap_it == committed_.end() ? epoch0 : snap_it->second;
  ++recoveries;
  SDVM_WARN(site_.tag()) << "recovering program " << pid.value
                         << " from epoch " << snap.epoch << " after site "
                         << dead << " died";

  const ProgramInfo* info = site_.programs().find(pid);
  if (info == nullptr) return;

  std::vector<SiteId> alive = site_.cluster().known_sites(/*alive_only=*/true);
  auto is_alive = [&alive](SiteId sid) {
    return std::find(alive.begin(), alive.end(), sid) != alive.end();
  };

  // Dead shard owners' global addresses must stay routable: we inherit
  // them. Guarded by liveness — after a cold full-cluster restart the old
  // incarnation's shard-owner ids can coincide with live fresh ids, and a
  // live site must never be marked someone's dead predecessor.
  std::set<SiteId> inherited;
  if (dead != kInvalidSite && !is_alive(dead)) inherited.insert(dead);
  for (const auto& [owner, shard] : snap.shards) {
    if (!is_alive(owner)) inherited.insert(owner);
  }
  for (SiteId owner : inherited) {
    site_.cluster().set_successor(owner, site_.id(), /*gossip=*/true);
  }
  SiteId route_dead =
      (dead != kInvalidSite && !is_alive(dead)) ? dead : kInvalidSite;

  // Exactly-once output: drop frontend log lines the replay from
  // `snap.epoch` will regenerate.
  site_.io().on_rollback(pid, snap.epoch);

  // Every shard whose owner is no longer alive — the site that just died,
  // but also participants that signed off or died since the epoch
  // committed — is adopted by the coordinator. An orphaned shard would
  // silently lose its frames and wedge the program forever.
  std::vector<const std::vector<std::byte>*> orphans;
  for (const auto& [owner, shard] : snap.shards) {
    if (!is_alive(owner)) orphans.push_back(&shard);
  }

  recovery_started_[pid] = site_.clock().now();
  auto& waiting = recovery_waiting_[pid];
  waiting.clear();
  for (SiteId sid : alive) {
    if (sid != site_.id()) waiting.insert(sid);
  }

  for (SiteId sid : alive) {
    ByteWriter w;
    w.u64(snap.epoch);
    w.site(route_dead);
    info->serialize(w);
    // The target's own shard; all orphaned shards go to us.
    std::vector<std::byte> shard;
    if (auto it = snap.shards.find(sid); it != snap.shards.end()) {
      shard = it->second;
    }
    w.blob(shard);
    if (sid == site_.id()) {
      w.u32(static_cast<std::uint32_t>(orphans.size()));
      for (const auto* orphan : orphans) w.blob(*orphan);
    } else {
      w.u32(0);
    }

    SdMessage msg;
    msg.dst = sid;
    msg.src_mgr = msg.dst_mgr = ManagerId::kCrash;
    msg.type = MsgType::kRecoveryRestore;
    msg.program = pid;
    msg.payload = w.take();
    (void)site_.messages().send(std::move(msg));
  }

  if (snap.epoch == 0) {
    // Epoch-0 restart: re-fire the entry microframe (our own restore ran
    // synchronously above, so local state is already clean).
    FrameId f = site_.memory().create_frame(pid, info->entry_thread,
                                            /*nparams=*/1, /*priority=*/0);
    (void)site_.memory().apply_param(f, 0, to_bytes(std::int64_t{0}));
  }
}

void CrashManager::handle_restore(const SdMessage& msg) {
  try {
    ByteReader r(msg.payload);
    std::uint64_t epoch = r.u64();
    (void)epoch;
    SiteId dead = r.site();
    auto info = ProgramInfo::deserialize(r);
    auto shard = r.blob();
    std::uint32_t norphans = r.u32();
    std::vector<std::vector<std::byte>> orphans;
    orphans.reserve(norphans);
    for (std::uint32_t i = 0; i < norphans; ++i) orphans.push_back(r.blob());

    // Dueling recovery coordinators: a cold-restarted successor and a live
    // replica holder can both elect themselves for the same program (their
    // electorates are disjoint). Deterministic stand-down — the lower-id
    // coordinator wins. While our own recovery is in flight a restore from
    // a higher id is ignored (our restore reaches that coordinator before
    // our completing ack does, per-peer FIFO, and stands it down); one
    // from a lower id ends our attempt before it can wipe the winner's
    // re-fired entry frame.
    if (recovery_started_.count(msg.program) != 0) {
      if (msg.src > site_.id()) return;
      recovery_started_.erase(msg.program);
      recovery_waiting_.erase(msg.program);
    }
    // The same duel, seen after the winner's recovery already completed (a
    // slow loser's restore must not wipe the winner's re-fired frames):
    // judge by current ownership. If the home we believe in — followed
    // down the successor chain — is still alive, only it or a lower-id
    // claimant may restore over it.
    if (const ProgramInfo* cur = site_.programs().find(msg.program);
        cur != nullptr && cur->home_site != msg.src) {
      const SiteId h = site_.cluster().resolve_successor(cur->home_site);
      if (h != msg.src && msg.src > h) {
        const SiteInfo* hi = site_.cluster().find(h);
        if (h == site_.id() || (hi != nullptr && hi->alive)) return;
      }
    }

    if (info.is_ok()) site_.programs().register_info(info.value());
    if (dead != kInvalidSite) {
      site_.cluster().set_successor(dead, msg.src, /*gossip=*/false);
    }
    // A live home is restoring this program — any pending cold-restart
    // election for it is moot, and so is any in-flight checkpoint round:
    // the state that round froze is being replaced wholesale.
    elections_.erase(msg.program);
    active_rounds_.erase(msg.program);
    expire_pending_shards(
        [&](const PendingShard& p) { return p.pid == msg.program; });

    clear_program_state(msg.program);
    // Sites that joined after the epoch committed get an empty shard:
    // clear_program_state already left them with nothing to restore.
    if (!shard.empty()) install_shard(msg.program, shard);
    for (const auto& orphan : orphans) {
      if (!orphan.empty()) install_shard(msg.program, orphan);
    }
    SDVM_DEBUG(site_.tag()) << "restored program " << msg.program.value
                            << ": now " << site_.memory().frame_count()
                            << " stored frames, "
                            << site_.scheduling().queued_total() << " queued";

    SdMessage ack;
    ack.src_mgr = ack.dst_mgr = ManagerId::kCrash;
    ack.type = MsgType::kRecoveryAck;
    ack.program = msg.program;
    (void)site_.messages().respond(msg, std::move(ack));
    site_.driver().notify_work();
  } catch (const DecodeError& e) {
    SDVM_ERROR(site_.tag()) << "bad recovery message: " << e.what();
  }
}

// ---------------------------------------------------------------------------
// Cold-restart recovery: offer election
// ---------------------------------------------------------------------------

void CrashManager::on_cluster_entered() {
  if (!site_.config().checkpoints_enabled) return;
  auto* cs = checkpoint_store();
  if (cs == nullptr) return;
  for (const auto& [pid, epoch] : cs->recoverable()) {
    if (site_.programs().is_terminated(pid)) {
      cs->drop(pid);
      continue;
    }
    const ProgramInfo* info = site_.programs().find(pid);
    if (info != nullptr && info->home_site == site_.id() &&
        committed_epoch(pid) >= epoch) {
      continue;  // we already run it at least this far
    }
    auto& e = elections_[pid];
    e.my_epoch = std::max(e.my_epoch, epoch);
    SDVM_INFO(site_.tag()) << "state store holds program " << pid.value
                           << " at epoch " << epoch << "; will offer recovery";
  }
  if (elections_.empty() || announce_scheduled_) return;
  announce_scheduled_ = true;
  // A short grace period lets sign-on gossip settle so offers reach the
  // whole membership (and a live home can answer).
  site_.schedule_after(3 * site_.config().heartbeat_interval,
                       [this] { announce_offers(); });
}

void CrashManager::announce_offers() {
  announce_scheduled_ = false;
  if (!site_.cluster().joined() || site_.signed_off()) return;
  Nanos window = 5 * site_.config().heartbeat_interval;
  for (auto& [pid, e] : elections_) {
    if (e.announced) continue;
    e.announced = true;
    e.offers.clear();
    ByteWriter w;
    w.u64(e.my_epoch);
    for (SiteId sid : site_.cluster().known_sites(/*alive_only=*/true)) {
      if (sid == site_.id()) continue;
      SdMessage msg;
      msg.dst = sid;
      msg.src_mgr = msg.dst_mgr = ManagerId::kCrash;
      msg.type = MsgType::kRecoveryOffer;
      msg.program = pid;
      msg.payload = w.bytes();
      (void)site_.messages().send(std::move(msg));
    }
    ProgramId p = pid;
    site_.schedule_after(window, [this, p] { close_election(p); });
  }
}

void CrashManager::handle_offer(const SdMessage& msg) {
  std::uint64_t epoch = 0;
  try {
    ByteReader r(msg.payload);
    epoch = r.u64();
  } catch (const DecodeError&) {
    return;
  }
  ProgramId pid = msg.program;
  bool terminated = site_.programs().is_terminated(pid);
  bool active_home = false;
  if (!terminated) {
    const ProgramInfo* info = site_.programs().find(pid);
    if (info != nullptr &&
        site_.cluster().resolve_successor(info->home_site) == site_.id()) {
      auto active = site_.programs().active_programs();
      active_home =
          std::find(active.begin(), active.end(), pid) != active.end();
    }
  }
  if (terminated || active_home) {
    // The offerer holds stale state: the program finished or is alive and
    // coordinated here. Tell it to stand down (and drop files if done).
    ByteWriter w;
    w.boolean(terminated);
    SdMessage reply;
    reply.dst = msg.src;
    reply.src_mgr = reply.dst_mgr = ManagerId::kCrash;
    reply.type = MsgType::kRecoveryActive;
    reply.program = pid;
    reply.payload = w.take();
    (void)site_.messages().send(std::move(reply));
    return;
  }
  if (auto it = elections_.find(pid); it != elections_.end()) {
    it->second.offers[msg.src] = epoch;
  }
}

void CrashManager::handle_offer_answer(const SdMessage& msg) {
  bool terminated = false;
  try {
    ByteReader r(msg.payload);
    terminated = r.boolean();
  } catch (const DecodeError&) {
  }
  elections_.erase(msg.program);
  if (terminated) {
    if (auto* cs = checkpoint_store()) cs->drop(msg.program);
  }
}

void CrashManager::close_election(ProgramId pid) {
  auto it = elections_.find(pid);
  if (it == elections_.end()) return;  // cancelled (active home / restore)
  // A departed site must not resume programs: its live state already went
  // to its successor, and a post-sign-off recovery would home the program
  // on a non-member.
  if (site_.signed_off()) {
    elections_.erase(it);
    return;
  }
  RecoveryElection& e = it->second;

  if (site_.programs().is_terminated(pid)) {
    if (auto* cs = checkpoint_store()) cs->drop(pid);
    elections_.erase(it);
    return;
  }
  // Healthy in the meantime (someone restored it to us or took over)?
  const ProgramInfo* info = site_.programs().find(pid);
  if (info != nullptr) {
    SiteId home = site_.cluster().resolve_successor(info->home_site);
    std::vector<SiteId> alive =
        site_.cluster().known_sites(/*alive_only=*/true);
    bool home_live =
        std::find(alive.begin(), alive.end(), home) != alive.end();
    if (home_live && home != site_.id()) {
      elections_.erase(it);
      return;
    }
    if (home == site_.id() && committed_epoch(pid) >= e.my_epoch) {
      elections_.erase(it);
      return;
    }
  }

  // Highest persisted epoch wins; ties go to the lowest site id. Every
  // candidate saw the same offers, so the winner is unambiguous.
  SiteId winner = site_.id();
  std::uint64_t best = e.my_epoch;
  for (const auto& [sid, ep] : e.offers) {
    if (ep > best || (ep == best && sid < winner)) {
      winner = sid;
      best = ep;
    }
  }
  if (winner != site_.id()) {
    // The better holder recovers. Keep our candidacy warm and re-offer
    // later in case the winner dies before finishing.
    e.announced = false;
    if (!announce_scheduled_) {
      announce_scheduled_ = true;
      site_.schedule_after(10 * site_.config().heartbeat_interval,
                           [this] { announce_offers(); });
    }
    return;
  }

  auto* cs = checkpoint_store();
  elections_.erase(it);
  if (cs == nullptr) return;
  auto snap = cs->load_latest(pid);
  if (!snap.is_ok()) {
    SDVM_WARN(site_.tag()) << "won recovery election for program "
                           << pid.value << " but load failed: "
                           << snap.status().to_string();
    cs->drop(pid);
    return;
  }
  SDVM_WARN(site_.tag()) << "cold recovery: resuming program " << pid.value
                         << " from persisted epoch " << snap.value().epoch;
  take_over(pid, std::move(snap).value());
}

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

void CrashManager::handle(const SdMessage& msg) {
  switch (msg.type) {
    case MsgType::kCheckpointFreeze:
      handle_freeze(msg);
      break;
    case MsgType::kCheckpointFrozen: {
      std::uint64_t epoch = 0;
      try {
        ByteReader r(msg.payload);
        epoch = r.u64();
      } catch (const DecodeError&) {
        break;
      }
      auto it = active_rounds_.find(msg.program);
      if (it == active_rounds_.end() || it->second.epoch != epoch) break;
      Round& round = it->second;
      round.frozen.insert(msg.src);
      if (round.collecting ||
          round.frozen.size() < round.expected.size()) {
        break;
      }
      round.collecting = true;
      // Everyone is quiesced; after the bounded drain the global state is
      // stable and each site may serialize its shard.
      ProgramId pid = msg.program;
      site_.schedule_after(site_.config().checkpoint_drain,
                           [this, pid, epoch] {
        auto rit = active_rounds_.find(pid);
        if (rit == active_rounds_.end() || rit->second.epoch != epoch) return;
        ByteWriter w;
        w.u64(epoch);
        for (SiteId sid : rit->second.expected) {
          SdMessage take;
          take.dst = sid;
          take.src_mgr = take.dst_mgr = ManagerId::kCrash;
          take.type = MsgType::kCheckpointTakeShard;
          take.program = pid;
          take.payload = w.bytes();
          (void)site_.messages().send(std::move(take));
        }
      });
      break;
    }
    case MsgType::kCheckpointTakeShard:
      handle_take_shard(msg);
      break;
    case MsgType::kCheckpointData: {
      try {
        ByteReader r(msg.payload);
        std::uint64_t epoch = r.u64();
        auto shard = r.blob();
        auto it = active_rounds_.find(msg.program);
        if (it != active_rounds_.end() && it->second.epoch == epoch) {
          it->second.received[msg.src] = std::move(shard);
          maybe_commit(msg.program);
        }
      } catch (const DecodeError&) {
      }
      break;
    }
    case MsgType::kCheckpointCommit:
      handle_commit(msg);
      break;
    case MsgType::kCheckpointReplica:
      handle_replica(msg);
      break;
    case MsgType::kCheckpointReplicaAck: {
      std::uint64_t epoch = 0;
      try {
        ByteReader r(msg.payload);
        epoch = r.u64();
      } catch (const DecodeError&) {
        break;
      }
      auto it = active_rounds_.find(msg.program);
      if (it != active_rounds_.end() && it->second.awaiting_quorum &&
          it->second.epoch == epoch) {
        it->second.persist_acks.insert(msg.src);
        maybe_finish_commit(msg.program);
      }
      break;
    }
    case MsgType::kRecoveryRestore:
      handle_restore(msg);
      break;
    case MsgType::kRecoveryAck: {
      auto wit = recovery_waiting_.find(msg.program);
      if (wit == recovery_waiting_.end()) break;
      wit->second.erase(msg.src);
      if (!wit->second.empty()) break;
      recovery_waiting_.erase(wit);
      if (auto sit = recovery_started_.find(msg.program);
          sit != recovery_started_.end()) {
        last_recovery_ms_ =
            (site_.clock().now() - sit->second) / 1'000'000;
        recovery_started_.erase(sit);
      }
      break;
    }
    case MsgType::kRecoveryOffer:
      handle_offer(msg);
      break;
    case MsgType::kRecoveryActive:
      handle_offer_answer(msg);
      break;
    default:
      SDVM_WARN(site_.tag()) << "crash manager: unexpected "
                             << to_string(msg.type);
  }
}

void CrashManager::drop_program(ProgramId pid) {
  active_rounds_.erase(pid);
  committed_.erase(pid);
  last_checkpoint_.erase(pid);
  next_epoch_.erase(pid);
  holders_.erase(pid);
  replicas_.erase(pid);
  replica_home_.erase(pid);
  replica_peers_.erase(pid);
  elections_.erase(pid);
  recovery_started_.erase(pid);
  recovery_waiting_.erase(pid);
  if (auto* cs = checkpoint_store()) cs->drop(pid);
  expire_pending_shards([&](const PendingShard& p) { return p.pid == pid; });
}

}  // namespace sdvm
