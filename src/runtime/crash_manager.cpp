#include "runtime/crash_manager.hpp"

#include "runtime/site.hpp"

namespace sdvm {

// ---------------------------------------------------------------------------
// Shard serialization
// ---------------------------------------------------------------------------

std::vector<std::byte> CrashManager::make_shard(ProgramId pid) const {
  ByteWriter w;
  auto queued = site_.scheduling().snapshot_frames(pid);
  w.u32(static_cast<std::uint32_t>(queued.size()));
  for (const auto& f : queued) f.serialize(w);
  auto mem = site_.memory().snapshot(pid);
  w.raw(mem.data(), mem.size());
  SDVM_DEBUG(site_.tag()) << "shard for " << pid.value << ": "
                          << queued.size() << " queued frames, "
                          << site_.memory().frame_count()
                          << " stored frames total";
  return w.take();
}

void CrashManager::install_shard(ProgramId pid,
                                 std::span<const std::byte> shard) {
  (void)pid;
  try {
    ByteReader r(shard);
    std::uint32_t nqueued = r.count(/*min_bytes_each=*/8);
    for (std::uint32_t i = 0; i < nqueued; ++i) {
      auto f = Microframe::deserialize(r);
      if (f.is_ok()) site_.memory().adopt_frame(std::move(f).value());
    }
    site_.memory().restore_snapshot(r);
  } catch (const DecodeError& e) {
    SDVM_ERROR(site_.tag()) << "corrupt recovery shard: " << e.what();
  }
}

void CrashManager::clear_program_state(ProgramId pid) {
  site_.scheduling().clear_program_frames(pid);
  site_.memory().drop_program(pid);
}

// ---------------------------------------------------------------------------
// Coordinator: checkpoint rounds
// ---------------------------------------------------------------------------

void CrashManager::on_tick() {
  if (!site_.config().checkpoints_enabled || !site_.cluster().joined()) {
    return;
  }
  Nanos now = site_.clock().now();

  // Abort rounds that never completed (a participant died mid-round).
  for (auto it = active_rounds_.begin(); it != active_rounds_.end();) {
    if (now - it->second.started >
        site_.config().heartbeat_interval * 20) {
      SDVM_WARN(site_.tag()) << "checkpoint round for program "
                             << it->first.value << " timed out, aborting"
                             << " (epoch " << it->second.epoch << ", frozen "
                             << it->second.frozen.size() << "/"
                             << it->second.expected.size() << ", shards "
                             << it->second.received.size() << ")";
      ByteWriter w;
      w.u64(it->second.epoch);
      for (SiteId sid : it->second.expected) {
        SdMessage msg;
        msg.dst = sid;
        msg.src_mgr = msg.dst_mgr = ManagerId::kCrash;
        msg.type = MsgType::kCheckpointCommit;
        msg.program = it->first;
        msg.payload = w.bytes();
        (void)site_.messages().send(std::move(msg));
      }
      it = active_rounds_.erase(it);
    } else {
      ++it;
    }
  }

  for (ProgramId pid : site_.programs().active_programs()) {
    const ProgramInfo* info = site_.programs().find(pid);
    if (info == nullptr || info->home_site != site_.id()) continue;
    if (active_rounds_.contains(pid)) continue;
    auto last = last_checkpoint_.find(pid);
    Nanos base = last == last_checkpoint_.end() ? 0 : last->second;
    if (now - base >= site_.config().checkpoint_interval) {
      begin_checkpoint(pid);
    }
  }

  // Participants may still owe frozen-acks (waiting for quiescence).
  try_ack_frozen();
}

void CrashManager::begin_checkpoint(ProgramId pid) {
  Round round;
  round.epoch = ++next_epoch_[pid];
  round.expected = site_.cluster().known_sites(/*alive_only=*/true);
  round.started = site_.clock().now();
  last_checkpoint_[pid] = round.started;  // rate-limit even on failure

  ByteWriter w;
  w.u64(round.epoch);
  std::vector<SiteId> expected = round.expected;
  // Register the round first: the loopback freeze to ourselves acks
  // synchronously and must find it.
  active_rounds_[pid] = std::move(round);
  for (SiteId sid : expected) {
    SdMessage msg;
    msg.dst = sid;
    msg.src_mgr = msg.dst_mgr = ManagerId::kCrash;
    msg.type = MsgType::kCheckpointFreeze;
    msg.program = pid;
    msg.payload = w.bytes();
    (void)site_.messages().send(std::move(msg));
  }
}

void CrashManager::maybe_commit(ProgramId pid) {
  auto it = active_rounds_.find(pid);
  if (it == active_rounds_.end()) return;
  Round& round = it->second;
  if (round.received.size() < round.expected.size()) return;

  Snapshot snap;
  snap.epoch = round.epoch;
  snap.shards = round.received;
  committed_[pid] = snap;
  last_checkpoint_[pid] = site_.clock().now();
  ++checkpoints_committed;

  // Replicate to a backup site so home-site death is survivable.
  std::optional<SiteId> backup;
  for (SiteId sid : site_.cluster().known_sites(/*alive_only=*/true)) {
    if (sid != site_.id() && (!backup || sid < *backup)) backup = sid;
  }
  if (backup.has_value()) {
    backup_site_[pid] = *backup;
    ByteWriter w;
    w.u64(snap.epoch);
    w.u32(static_cast<std::uint32_t>(snap.shards.size()));
    for (const auto& [sid, blob] : snap.shards) {
      w.site(sid);
      w.blob(blob);
    }
    // Sources ride along so the backup can serve code if it becomes home.
    auto sources = site_.code().export_sources(pid);
    w.u32(static_cast<std::uint32_t>(sources.size()));
    for (const auto& [tid, src] : sources) {
      w.u32(tid);
      w.str(src);
    }
    SdMessage msg;
    msg.dst = *backup;
    msg.src_mgr = msg.dst_mgr = ManagerId::kCrash;
    msg.type = MsgType::kCheckpointReplica;
    msg.program = pid;
    msg.payload = w.take();
    (void)site_.messages().send(std::move(msg));
  }

  ByteWriter w;
  w.u64(round.epoch);
  for (SiteId sid : round.expected) {
    SdMessage msg;
    msg.dst = sid;
    msg.src_mgr = msg.dst_mgr = ManagerId::kCrash;
    msg.type = MsgType::kCheckpointCommit;
    msg.program = pid;
    msg.payload = w.bytes();
    (void)site_.messages().send(std::move(msg));
  }
  active_rounds_.erase(it);
  SDVM_INFO(site_.tag()) << "checkpoint epoch " << snap.epoch
                         << " committed for program " << pid.value;
}

// ---------------------------------------------------------------------------
// Participant: freeze / shard / commit
// ---------------------------------------------------------------------------

void CrashManager::handle_freeze(const SdMessage& msg) {
  std::uint64_t epoch = 0;
  try {
    ByteReader r(msg.payload);
    epoch = r.u64();
  } catch (const DecodeError&) {
    return;
  }
  ++freeze_depth_;
  SDVM_DEBUG(site_.tag()) << "freeze epoch " << epoch << " from site "
                          << msg.src << " (depth " << freeze_depth_ << ")";
  site_.processing().set_frozen(true);
  site_.scheduling().set_frozen(true);
  pending_shards_.push_back(PendingShard{msg.program, epoch, msg.src, false});
  try_ack_frozen();
}

void CrashManager::try_ack_frozen() {
  bool pending = false;
  for (auto& p : pending_shards_) {
    if (p.acked) continue;
    if (!site_.execution_quiesced()) {
      pending = true;
      continue;
    }
    p.acked = true;
    SDVM_DEBUG(site_.tag()) << "acking frozen epoch " << p.epoch
                            << " to site " << p.coordinator;
    ByteWriter w;
    w.u64(p.epoch);
    SdMessage msg;
    msg.dst = p.coordinator;
    msg.src_mgr = msg.dst_mgr = ManagerId::kCrash;
    msg.type = MsgType::kCheckpointFrozen;
    msg.program = p.pid;
    msg.payload = w.take();
    (void)site_.messages().send(std::move(msg));
  }
  if (pending) {
    SDVM_DEBUG(site_.tag()) << "not quiesced yet (running "
                            << site_.processing().running() << ", busy until "
                            << site_.sim_busy_until() << " vs now "
                            << site_.clock().now() << ")";
    site_.schedule_after(500'000, [this] { try_ack_frozen(); });
  }
}

void CrashManager::handle_take_shard(const SdMessage& msg) {
  std::uint64_t epoch = 0;
  try {
    ByteReader r(msg.payload);
    epoch = r.u64();
  } catch (const DecodeError&) {
    return;
  }
  for (const auto& p : pending_shards_) {
    if (p.pid != msg.program || p.epoch != epoch) continue;
    ByteWriter w;
    w.u64(epoch);
    w.blob(make_shard(p.pid));
    SdMessage reply;
    reply.dst = p.coordinator;
    reply.src_mgr = reply.dst_mgr = ManagerId::kCrash;
    reply.type = MsgType::kCheckpointData;
    reply.program = p.pid;
    reply.payload = w.take();
    (void)site_.messages().send(std::move(reply));
    return;
  }
}

void CrashManager::handle_commit(const SdMessage& msg) {
  std::uint64_t epoch = 0;
  try {
    ByteReader r(msg.payload);
    epoch = r.u64();
  } catch (const DecodeError&) {
    return;
  }
  for (auto it = pending_shards_.begin(); it != pending_shards_.end(); ++it) {
    if (it->pid == msg.program && it->epoch == epoch) {
      pending_shards_.erase(it);
      if (--freeze_depth_ <= 0) {
        freeze_depth_ = 0;
        site_.processing().set_frozen(false);
        site_.scheduling().set_frozen(false);
        site_.processing().kick();
        site_.driver().notify_work();
      }
      return;
    }
  }
}

// ---------------------------------------------------------------------------
// Recovery
// ---------------------------------------------------------------------------

void CrashManager::on_site_dead(SiteId dead) {
  // Programs we coordinate: roll back to the last committed epoch (or
  // restart from the initial state if none committed yet).
  for (ProgramId pid : site_.programs().active_programs()) {
    const ProgramInfo* info = site_.programs().find(pid);
    if (info == nullptr) continue;
    if (info->home_site == site_.id() &&
        site_.config().checkpoints_enabled) {
      begin_recovery(pid, dead);
    }
  }
  // Programs whose home just died and whose replica we hold: take over.
  for (auto& [pid, home] : replica_home_) {
    if (home != dead) continue;
    if (site_.programs().is_terminated(pid)) continue;
    const ProgramInfo* info = site_.programs().find(pid);
    if (info == nullptr) continue;
    SDVM_WARN(site_.tag()) << "home site " << dead << " of program "
                           << pid.value << " died; taking over from replica";
    ProgramInfo updated = *info;
    updated.home_site = site_.id();
    site_.programs().register_info(updated);
    committed_[pid] = replicas_[pid];
    begin_recovery(pid, dead);
  }
}

void CrashManager::begin_recovery(ProgramId pid, SiteId dead) {
  // No committed epoch yet → "epoch 0": the initial state (the entry
  // microframe) is always reconstructible at the home site, so the
  // program restarts from scratch rather than hanging with lost frames.
  Snapshot epoch0;
  auto snap_it = committed_.find(pid);
  const Snapshot& snap =
      snap_it == committed_.end() ? epoch0 : snap_it->second;
  ++recoveries;
  SDVM_WARN(site_.tag()) << "recovering program " << pid.value
                         << " from epoch " << snap.epoch << " after site "
                         << dead << " died";

  // Dead site's global addresses must stay routable: we inherit them.
  site_.cluster().set_successor(dead, site_.id(), /*gossip=*/true);

  const ProgramInfo* info = site_.programs().find(pid);
  if (info == nullptr) return;

  // Every shard whose owner is no longer alive — the site that just died,
  // but also participants that signed off or died since the epoch
  // committed — is adopted by the coordinator. An orphaned shard would
  // silently lose its frames and wedge the program forever.
  std::vector<SiteId> alive = site_.cluster().known_sites(/*alive_only=*/true);
  auto is_alive = [&alive](SiteId sid) {
    return std::find(alive.begin(), alive.end(), sid) != alive.end();
  };
  std::vector<const std::vector<std::byte>*> orphans;
  for (const auto& [owner, shard] : snap.shards) {
    if (!is_alive(owner)) orphans.push_back(&shard);
  }

  for (SiteId sid : alive) {
    ByteWriter w;
    w.u64(snap.epoch);
    w.site(dead);
    info->serialize(w);
    // The target's own shard; all orphaned shards go to us.
    std::vector<std::byte> shard;
    if (auto it = snap.shards.find(sid); it != snap.shards.end()) {
      shard = it->second;
    }
    w.blob(shard);
    if (sid == site_.id()) {
      w.u32(static_cast<std::uint32_t>(orphans.size()));
      for (const auto* orphan : orphans) w.blob(*orphan);
    } else {
      w.u32(0);
    }

    SdMessage msg;
    msg.dst = sid;
    msg.src_mgr = msg.dst_mgr = ManagerId::kCrash;
    msg.type = MsgType::kRecoveryRestore;
    msg.program = pid;
    msg.payload = w.take();
    (void)site_.messages().send(std::move(msg));
  }

  if (snap.epoch == 0) {
    // Epoch-0 restart: re-fire the entry microframe (our own restore ran
    // synchronously above, so local state is already clean).
    FrameId f = site_.memory().create_frame(pid, info->entry_thread,
                                            /*nparams=*/1, /*priority=*/0);
    (void)site_.memory().apply_param(f, 0, to_bytes(std::int64_t{0}));
  }
}

void CrashManager::handle_restore(const SdMessage& msg) {
  try {
    ByteReader r(msg.payload);
    std::uint64_t epoch = r.u64();
    (void)epoch;
    SiteId dead = r.site();
    auto info = ProgramInfo::deserialize(r);
    auto shard = r.blob();
    std::uint32_t norphans = r.u32();
    std::vector<std::vector<std::byte>> orphans;
    orphans.reserve(norphans);
    for (std::uint32_t i = 0; i < norphans; ++i) orphans.push_back(r.blob());

    if (info.is_ok()) site_.programs().register_info(info.value());
    site_.cluster().set_successor(dead, msg.src, /*gossip=*/false);

    clear_program_state(msg.program);
    // Sites that joined after the epoch committed get an empty shard:
    // clear_program_state already left them with nothing to restore.
    if (!shard.empty()) install_shard(msg.program, shard);
    for (const auto& orphan : orphans) {
      if (!orphan.empty()) install_shard(msg.program, orphan);
    }
    SDVM_DEBUG(site_.tag()) << "restored program " << msg.program.value
                            << ": now " << site_.memory().frame_count()
                            << " stored frames, "
                            << site_.scheduling().queued_total() << " queued";

    SdMessage ack;
    ack.src_mgr = ack.dst_mgr = ManagerId::kCrash;
    ack.type = MsgType::kRecoveryAck;
    ack.program = msg.program;
    (void)site_.messages().respond(msg, std::move(ack));
    site_.driver().notify_work();
  } catch (const DecodeError& e) {
    SDVM_ERROR(site_.tag()) << "bad recovery message: " << e.what();
  }
}

void CrashManager::handle(const SdMessage& msg) {
  switch (msg.type) {
    case MsgType::kCheckpointFreeze:
      handle_freeze(msg);
      break;
    case MsgType::kCheckpointFrozen: {
      std::uint64_t epoch = 0;
      try {
        ByteReader r(msg.payload);
        epoch = r.u64();
      } catch (const DecodeError&) {
        break;
      }
      auto it = active_rounds_.find(msg.program);
      if (it == active_rounds_.end() || it->second.epoch != epoch) break;
      Round& round = it->second;
      round.frozen.insert(msg.src);
      if (round.collecting ||
          round.frozen.size() < round.expected.size()) {
        break;
      }
      round.collecting = true;
      // Everyone is quiesced; after the bounded drain the global state is
      // stable and each site may serialize its shard.
      ProgramId pid = msg.program;
      site_.schedule_after(site_.config().checkpoint_drain,
                           [this, pid, epoch] {
        auto rit = active_rounds_.find(pid);
        if (rit == active_rounds_.end() || rit->second.epoch != epoch) return;
        ByteWriter w;
        w.u64(epoch);
        for (SiteId sid : rit->second.expected) {
          SdMessage take;
          take.dst = sid;
          take.src_mgr = take.dst_mgr = ManagerId::kCrash;
          take.type = MsgType::kCheckpointTakeShard;
          take.program = pid;
          take.payload = w.bytes();
          (void)site_.messages().send(std::move(take));
        }
      });
      break;
    }
    case MsgType::kCheckpointTakeShard:
      handle_take_shard(msg);
      break;
    case MsgType::kCheckpointData: {
      try {
        ByteReader r(msg.payload);
        std::uint64_t epoch = r.u64();
        auto shard = r.blob();
        auto it = active_rounds_.find(msg.program);
        if (it != active_rounds_.end() && it->second.epoch == epoch) {
          it->second.received[msg.src] = std::move(shard);
          maybe_commit(msg.program);
        }
      } catch (const DecodeError&) {
      }
      break;
    }
    case MsgType::kCheckpointCommit:
      handle_commit(msg);
      break;
    case MsgType::kCheckpointReplica: {
      try {
        ByteReader r(msg.payload);
        Snapshot snap;
        snap.epoch = r.u64();
        std::uint32_t n = r.count(/*min_bytes_each=*/8);
        for (std::uint32_t i = 0; i < n; ++i) {
          SiteId sid = r.site();
          snap.shards[sid] = r.blob();
        }
        std::uint32_t nsrc = r.count(/*min_bytes_each=*/8);
        std::vector<std::pair<MicrothreadId, std::string>> sources;
        for (std::uint32_t i = 0; i < nsrc; ++i) {
          MicrothreadId tid = r.u32();
          sources.emplace_back(tid, r.str());
        }
        site_.code().import_sources(msg.program, sources);
        replicas_[msg.program] = std::move(snap);
        replica_home_[msg.program] = msg.src;
      } catch (const DecodeError&) {
      }
      break;
    }
    case MsgType::kRecoveryRestore:
      handle_restore(msg);
      break;
    case MsgType::kRecoveryAck:
      break;  // informational
    default:
      SDVM_WARN(site_.tag()) << "crash manager: unexpected "
                             << to_string(msg.type);
  }
}

void CrashManager::drop_program(ProgramId pid) {
  active_rounds_.erase(pid);
  committed_.erase(pid);
  last_checkpoint_.erase(pid);
  next_epoch_.erase(pid);
  backup_site_.erase(pid);
  replicas_.erase(pid);
  replica_home_.erase(pid);
  bool changed = false;
  for (auto it = pending_shards_.begin(); it != pending_shards_.end();) {
    if (it->pid == pid) {
      it = pending_shards_.erase(it);
      --freeze_depth_;
      changed = true;
    } else {
      ++it;
    }
  }
  if (changed && freeze_depth_ <= 0) {
    freeze_depth_ = 0;
    site_.processing().set_frozen(false);
    site_.scheduling().set_frozen(false);
  }
}

}  // namespace sdvm
