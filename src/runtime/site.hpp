// Site: one SDVM daemon — the assembly of all managers (paper Figure 3)
// plus the plumbing between them (inbox, timers, the big site lock).
//
// Threading model:
//   * `mu_` (recursive) guards all manager state. Public entry points and
//     Context operations take it; manager-internal code never locks.
//   * The inbox has its own mutex and is never held together with `mu_`,
//     so sites can send to each other without lock cycles.
//   * pump() is the single place work happens: it drains the inbox, runs
//     due timers, triggers scheduling decisions and (sim mode) executes.
//     A Driver decides when pump runs (engine thread or simulator event).
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <vector>

#include "common/clock.hpp"
#include "common/config.hpp"
#include "common/log.hpp"
#include "net/transport.hpp"
#include "runtime/attraction_memory.hpp"
#include "runtime/cluster_manager.hpp"
#include "runtime/code_manager.hpp"
#include "runtime/crash_manager.hpp"
#include "runtime/driver.hpp"
#include "runtime/io_manager.hpp"
#include "runtime/message_manager.hpp"
#include "runtime/metrics.hpp"
#include "runtime/processing_manager.hpp"
#include "runtime/program_manager.hpp"
#include "runtime/scheduling_manager.hpp"
#include "runtime/security_manager.hpp"
#include "runtime/site_manager.hpp"
#include "runtime/site_status.hpp"
#include "runtime/trace.hpp"

namespace sdvm {

class Site {
 public:
  Site(SiteConfig config, Clock& clock, Driver& driver);
  ~Site();

  Site(const Site&) = delete;
  Site& operator=(const Site&) = delete;

  /// Attach the physical transport (must happen before bootstrap/join).
  void attach_transport(std::unique_ptr<net::Transport> transport);

  /// Attach a durable state store for checkpoint epochs (must happen
  /// before bootstrap/join). The constructor attaches a DirStateStore
  /// automatically when config.state_dir is set; the simulator attaches
  /// MemStateStores that survive simulated restarts.
  void attach_state_store(std::shared_ptr<StateStore> store) {
    state_store_ = std::move(store);
  }
  [[nodiscard]] std::shared_ptr<StateStore> state_store() const {
    return state_store_;
  }

  // --- lifecycle -----------------------------------------------------------
  /// Starts a brand-new cluster: this site becomes logical site 1.
  void bootstrap();
  /// Joins an existing cluster through `contact_address`. Asynchronous:
  /// poll joined() or use the mode wrappers' blocking join.
  void join(const std::string& contact_address);
  [[nodiscard]] bool joined() const;
  /// Graceful sign-off: relocates frames and memory to a successor, then
  /// announces departure. Returns the successor id.
  Result<SiteId> sign_off();
  [[nodiscard]] bool signed_off() const { return signed_off_; }

  // --- driving ---------------------------------------------------------------
  /// Thread-safe: enqueue raw wire bytes (transport receiver calls this).
  void on_network_data(std::vector<std::byte> bytes);
  /// Processes pending input, timers and work. Returns nanos until the
  /// next due timer, or -1 if none. Runs in the driver's context.
  Nanos pump();

  /// Schedules `fn` to run under the site lock after `delay`.
  void schedule_after(Nanos delay, std::function<void()> fn);

  /// Sim mode: account non-microthread work (e.g. on-the-fly compilation)
  /// as site busy time.
  void sim_charge(Nanos cost);
  [[nodiscard]] Nanos sim_busy_until() const { return sim_busy_until_; }

  /// True when no microthread is running and (sim mode) all virtually
  /// in-flight results have left the site — the checkpoint quiescence test.
  [[nodiscard]] bool execution_quiesced() const;

  // --- program API (home-site entry) ------------------------------------------
  Result<ProgramId> start_program(const ProgramSpec& spec);

  // --- manager access ----------------------------------------------------------
  // --- introspection -----------------------------------------------------
  /// The unified status snapshot: identity + lifecycle + load + active
  /// programs + accounting ledger + every registered metric. Thread-safe
  /// (takes the site lock). This is THE way to observe a site; the
  /// per-manager counter fields remain as deprecated shims.
  [[nodiscard]] SiteStatus introspect();

  /// The per-site instrument catalog (managers register at construction).
  [[nodiscard]] metrics::MetricsRegistry& metrics_registry() {
    return metrics_;
  }

  MessageManager& messages() { return *message_mgr_; }
  SecurityManager& security() { return *security_mgr_; }
  ClusterManager& cluster() { return *cluster_mgr_; }
  ProgramManager& programs() { return *program_mgr_; }
  CodeManager& code() { return *code_mgr_; }
  AttractionMemory& memory() { return *attraction_memory_; }
  SchedulingManager& scheduling() { return *scheduling_mgr_; }
  ProcessingManager& processing() { return *processing_mgr_; }
  IoManager& io() { return *io_mgr_; }
  SiteManager& site_manager() { return *site_mgr_; }
  CrashManager& crash() { return *crash_mgr_; }

  [[nodiscard]] const SiteConfig& config() const { return config_; }
  [[nodiscard]] Clock& clock() { return clock_; }
  [[nodiscard]] Driver& driver() { return driver_; }
  [[nodiscard]] net::Transport* transport() { return transport_.get(); }
  [[nodiscard]] SiteId id() const;
  [[nodiscard]] std::string tag() const;  // log tag "site-<id>"

  /// The big site lock. Context operations and public APIs lock it;
  /// recursive so the sim path (pump → execute → context op) re-enters.
  [[nodiscard]] std::recursive_mutex& lock() { return mu_; }

  /// Dispatches a decoded message to the addressed manager. Called by the
  /// message manager under the site lock.
  void dispatch(const SdMessage& msg);

  /// Cluster-wide program teardown on this site (termination broadcast).
  void drop_program_everywhere(ProgramId pid);

  /// Failure-detector verdict propagation to all interested managers.
  void on_site_dead(SiteId dead);

  /// Execution-layer starvation check; issues help requests when starving.
  void check_starvation();

  /// Frame-career tracing (Figure 5). The hook runs under the site lock.
  void set_frame_trace(FrameTraceHook hook) { trace_ = std::move(hook); }
  void trace(FrameEvent event, FrameId frame, MicrothreadId thread) {
    if (trace_) trace_(event, frame, thread);
  }

 private:
  friend class ProcessingManager;

  /// Arms the periodic maintenance tick (heartbeats, failure detection,
  /// gossip, checkpoints, starvation checks).
  void bootstrap_tick();

  SiteConfig config_;
  Clock& clock_;
  Driver& driver_;
  std::unique_ptr<net::Transport> transport_;
  std::shared_ptr<StateStore> state_store_;

  mutable std::recursive_mutex mu_;

  std::mutex inbox_mu_;
  std::deque<std::vector<std::byte>> inbox_;

  struct Timer {
    Nanos due;
    std::uint64_t seq;
    std::function<void()> fn;
    bool operator>(const Timer& o) const {
      return std::tie(due, seq) > std::tie(o.due, o.seq);
    }
  };
  std::priority_queue<Timer, std::vector<Timer>, std::greater<>> timers_;
  std::uint64_t timer_seq_ = 0;

  Nanos sim_busy_until_ = 0;
  bool signed_off_ = false;
  bool tick_scheduled_ = false;
  FrameTraceHook trace_;

  // Declared before the managers: they register instrument pointers here
  // at construction, and members destroy in reverse order.
  metrics::MetricsRegistry metrics_;

  // Managers (construction order matters: see site.cpp).
  std::unique_ptr<SecurityManager> security_mgr_;
  std::unique_ptr<MessageManager> message_mgr_;
  std::unique_ptr<ClusterManager> cluster_mgr_;
  std::unique_ptr<ProgramManager> program_mgr_;
  std::unique_ptr<CodeManager> code_mgr_;
  std::unique_ptr<AttractionMemory> attraction_memory_;
  std::unique_ptr<SchedulingManager> scheduling_mgr_;
  std::unique_ptr<ProcessingManager> processing_mgr_;
  std::unique_ptr<IoManager> io_mgr_;
  std::unique_ptr<SiteManager> site_mgr_;
  std::unique_ptr<CrashManager> crash_mgr_;
};

}  // namespace sdvm
