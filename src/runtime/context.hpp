// Execution context handed to a running microthread. These operations are
// the paper's "special instructions provided by the SDVM which represent
// the only interface between the program running on the SDVM and the SDVM
// itself" (§4, processing manager).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace sdvm {

class Context {
 public:
  virtual ~Context() = default;

  // --- microframe parameters -------------------------------------------
  [[nodiscard]] virtual int num_params() const = 0;
  [[nodiscard]] virtual std::int64_t param_int(int index) const = 0;
  [[nodiscard]] virtual std::span<const std::byte> param_bytes(
      int index) const = 0;

  // --- program start arguments ------------------------------------------
  [[nodiscard]] virtual int num_args() const = 0;
  [[nodiscard]] virtual std::int64_t arg(int index) const = 0;

  // --- dataflow ----------------------------------------------------------
  /// Allocates a new microframe for `thread_name` with `nparams` empty
  /// slots. "A microframe may only be allocated when it is certain that it
  /// will receive all its parameters in the future" — the caller's
  /// contract. Returns its global address immediately (§3.2: allocate as
  /// early as possible, the address is unknown before allocation).
  virtual GlobalAddress spawn(std::string_view thread_name, int nparams,
                              int priority = 0) = 0;

  /// Applies a result value to slot `slot` of the frame at `frame`.
  virtual void send_int(GlobalAddress frame, int slot, std::int64_t value) = 0;
  virtual void send_bytes(GlobalAddress frame, int slot,
                          std::span<const std::byte> value) = 0;

  // --- attraction memory --------------------------------------------------
  /// Allocates `nwords` int64 words of global memory; returns its address.
  virtual GlobalAddress alloc_global(std::int64_t nwords) = 0;
  /// Reads/writes a word. The object migrates to the accessing site
  /// transparently (COMA attraction); remote access may stall this thread.
  virtual std::int64_t mem_read(GlobalAddress addr, std::int64_t index) = 0;
  virtual void mem_write(GlobalAddress addr, std::int64_t index,
                         std::int64_t value) = 0;

  // --- I/O (routed to the program's frontend site) ------------------------
  virtual void out(std::int64_t value) = 0;
  virtual void out_str(std::string_view text) = 0;

  /// Global file handles: reads/writes reroute to the site owning the file
  /// in its virtual filesystem. Blocking.
  virtual std::string file_read(std::string_view path) = 0;
  virtual void file_write(std::string_view path, std::string_view data) = 0;

  // --- control -------------------------------------------------------------
  /// Declares the whole program finished; broadcast to all sites.
  virtual void exit_program(std::int64_t code) = 0;

  /// Accounts `cycles` of virtual compute cost (sim mode; no-op on wall
  /// clock). Bytecode microthreads are charged automatically per
  /// instruction; native microthreads use this to describe their cost.
  virtual void charge(std::int64_t cycles) = 0;

  // --- introspection --------------------------------------------------------
  [[nodiscard]] virtual SiteId site() const = 0;
  [[nodiscard]] virtual ProgramId program() const = 0;
};

}  // namespace sdvm
