#include "runtime/site.hpp"

namespace sdvm {

Site::Site(SiteConfig config, Clock& clock, Driver& driver)
    : config_(std::move(config)), clock_(clock), driver_(driver) {
  security_mgr_ = std::make_unique<SecurityManager>(config_);
  message_mgr_ = std::make_unique<MessageManager>(*this);
  cluster_mgr_ = std::make_unique<ClusterManager>(*this);
  program_mgr_ = std::make_unique<ProgramManager>(*this);
  code_mgr_ = std::make_unique<CodeManager>(*this);
  attraction_memory_ = std::make_unique<AttractionMemory>(*this);
  scheduling_mgr_ = std::make_unique<SchedulingManager>(*this);
  processing_mgr_ = std::make_unique<ProcessingManager>(*this);
  io_mgr_ = std::make_unique<IoManager>(*this);
  site_mgr_ = std::make_unique<SiteManager>(*this);
  crash_mgr_ = std::make_unique<CrashManager>(*this);

  // One instrument catalog per site: every manager contributes its
  // counters, gauges and histograms (identical names across all modes).
  message_mgr_->register_metrics(metrics_);
  cluster_mgr_->register_metrics(metrics_);
  code_mgr_->register_metrics(metrics_);
  attraction_memory_->register_metrics(metrics_);
  scheduling_mgr_->register_metrics(metrics_);
  processing_mgr_->register_metrics(metrics_);
  io_mgr_->register_metrics(metrics_);
  crash_mgr_->register_metrics(metrics_);

  if (!config_.state_dir.empty()) {
    state_store_ = std::make_shared<DirStateStore>(config_.state_dir);
  }
}

Site::~Site() { processing_mgr_->stop(); }

void Site::attach_transport(std::unique_ptr<net::Transport> transport) {
  transport_ = std::move(transport);
}

SiteId Site::id() const { return cluster_mgr_->local_id(); }

std::string Site::tag() const {
  SiteId sid = cluster_mgr_->local_id();
  return sid == kInvalidSite ? "site-?" : "site-" + std::to_string(sid);
}

void Site::bootstrap() {
  std::lock_guard lock(mu_);
  cluster_mgr_->bootstrap();
  security_mgr_->set_local_site(cluster_mgr_->local_id());
  attraction_memory_->on_membership_change();
  if (!driver_.simulated()) {
    processing_mgr_->start_workers(config_.executor_slots);
  }
  bootstrap_tick();
  // A freshly bootstrapped site may be a cold restart: its state store
  // can hold programs the (dead) previous cluster never finished.
  crash_mgr_->on_cluster_entered();
}

void Site::join(const std::string& contact_address) {
  std::lock_guard lock(mu_);
  if (!driver_.simulated()) {
    processing_mgr_->start_workers(config_.executor_slots);
  }
  cluster_mgr_->join(contact_address, [this](Status st) {
    if (!st.is_ok()) {
      SDVM_ERROR(tag()) << "join failed: " << st.to_string();
      return;
    }
    security_mgr_->set_local_site(cluster_mgr_->local_id());
    SDVM_INFO(tag()) << "joined cluster as site "
                     << cluster_mgr_->local_id();
    attraction_memory_->on_membership_change();
    bootstrap_tick();
    crash_mgr_->on_cluster_entered();
    // "The first action of the new site will be to request ... work."
    check_starvation();
  });
}

bool Site::joined() const {
  // Pollers (TcpNode::join_cluster) race the engine thread assigning the
  // id, so this read must take the site lock like every other accessor.
  std::lock_guard lock(mu_);
  return cluster_mgr_->joined();
}

Result<SiteId> Site::sign_off() {
  std::lock_guard lock(mu_);
  if (signed_off_) {
    return Status::error(ErrorCode::kFailedPrecondition, "already signed off");
  }
  auto successor = cluster_mgr_->pick_any_other();
  if (successor.has_value()) {
    // "All microframes and the local part of the global memory have to be
    // relocated to other sites before shutdown."
    attraction_memory_->relocate_all_to(*successor);
    cluster_mgr_->announce_sign_off(*successor);
  }
  signed_off_ = true;
  SDVM_INFO(tag()) << "signed off"
                   << (successor ? ", successor site " +
                                       std::to_string(*successor)
                                 : " (last site)");
  return successor.value_or(kInvalidSite);
}

void Site::on_network_data(std::vector<std::byte> bytes) {
  {
    std::lock_guard lock(inbox_mu_);
    inbox_.push_back(std::move(bytes));
  }
  driver_.notify_work();
}

Nanos Site::pump() {
  std::deque<std::vector<std::byte>> batch;
  {
    std::lock_guard lock(inbox_mu_);
    batch.swap(inbox_);
  }

  std::lock_guard lock(mu_);
  for (auto& raw : batch) {
    if (signed_off_) {
      // In-flight state (results, frames, objects) addressed here races
      // the sign-off announcement; relay it to the successor instead of
      // stranding the frames we just relocated there.
      if (config_.test_drop_departed_forwarding) continue;  // seeded bug
      message_mgr_->on_raw_departed(raw);
      continue;
    }
    message_mgr_->on_raw(raw);
  }

  // Run due timers (a timer callback may schedule new timers).
  Nanos now = clock_.now();
  while (!timers_.empty() && timers_.top().due <= now) {
    auto fn = std::move(const_cast<Timer&>(timers_.top()).fn);
    timers_.pop();
    if (fn) fn();
    now = clock_.now();
  }

  if (!signed_off_) {
    if (driver_.simulated()) {
      // One microthread at a time per site; virtual cost marks us busy.
      if (now >= sim_busy_until_ && !processing_mgr_->frozen()) {
        Nanos cost = processing_mgr_->execute_one_sim();
        if (cost >= 0) {
          sim_busy_until_ = now + cost;
          // Pump again the moment the virtual execution completes, so the
          // next ready frame starts back-to-back.
          driver_.request_wakeup(cost);
        }
      }
    } else {
      processing_mgr_->kick();
    }
    check_starvation();
  }

  if (timers_.empty()) return -1;
  return std::max<Nanos>(0, timers_.top().due - clock_.now());
}

void Site::schedule_after(Nanos delay, std::function<void()> fn) {
  timers_.push(Timer{clock_.now() + delay, ++timer_seq_, std::move(fn)});
  driver_.request_wakeup(delay);
}

bool Site::execution_quiesced() const {
  if (processing_mgr_->running() > 0) return false;
  if (driver_.simulated() && sim_busy_until_ >= clock_.now()) return false;
  return true;
}

void Site::sim_charge(Nanos cost) {
  if (!driver_.simulated() || cost <= 0) return;
  Nanos now = clock_.now();
  sim_busy_until_ = std::max(sim_busy_until_, now) + cost;
}

SiteStatus Site::introspect() {
  std::lock_guard lock(mu_);
  SiteStatus s;
  s.id = id();
  s.name = config_.name;
  s.platform = config_.platform;
  s.speed = config_.speed;
  s.joined = cluster_mgr_->joined();
  s.signed_off = signed_off_;
  s.code_site = config_.code_distribution_site;
  s.cluster_size = static_cast<std::uint32_t>(cluster_mgr_->cluster_size());
  s.load = site_mgr_->collect_load();
  s.active_programs = program_mgr_->active_programs();
  s.ledger = processing_mgr_->accounting();
  s.metrics = metrics_.snapshot();
  return s;
}

Result<ProgramId> Site::start_program(const ProgramSpec& spec) {
  std::lock_guard lock(mu_);
  if (!cluster_mgr_->joined()) {
    return Status::error(ErrorCode::kFailedPrecondition,
                         "site has not joined a cluster");
  }
  return program_mgr_->start_program(spec);
}

void Site::dispatch(const SdMessage& msg) {
  switch (msg.dst_mgr) {
    case ManagerId::kCluster:          cluster_mgr_->handle(msg); break;
    case ManagerId::kProgram:          program_mgr_->handle(msg); break;
    case ManagerId::kCode:             code_mgr_->handle(msg); break;
    case ManagerId::kAttractionMemory: attraction_memory_->handle(msg); break;
    case ManagerId::kScheduling:       scheduling_mgr_->handle(msg); break;
    case ManagerId::kIo:               io_mgr_->handle(msg); break;
    case ManagerId::kSite:             site_mgr_->handle(msg); break;
    case ManagerId::kCrash:            crash_mgr_->handle(msg); break;
    default:
      SDVM_WARN(tag()) << "message for unexpected manager "
                       << to_string(msg.dst_mgr) << " (" << to_string(msg.type)
                       << ")";
  }
}

void Site::drop_program_everywhere(ProgramId pid) {
  scheduling_mgr_->drop_program(pid);
  attraction_memory_->drop_program(pid);
  code_mgr_->drop_program(pid);
  io_mgr_->drop_program(pid);
  crash_mgr_->drop_program(pid);
}

void Site::on_site_dead(SiteId dead) {
  message_mgr_->fail_pending_to(dead);
  crash_mgr_->on_site_dead(dead);
  // Shard leases held by the dead site need a successor election.
  attraction_memory_->on_membership_change();
}

void Site::check_starvation() {
  if (signed_off_ || !cluster_mgr_->joined()) return;
  if (scheduling_mgr_->frozen()) return;
  if (scheduling_mgr_->queued_total() > 0) return;
  if (!processing_mgr_->idle()) return;
  if (program_mgr_->active_programs().empty() &&
      cluster_mgr_->cluster_size() <= 1) {
    return;  // nothing anywhere to ask for
  }
  scheduling_mgr_->on_starving();
}

// Re-arms the periodic maintenance tick. Split out so join() and the tick
// itself can both arm it.
void Site::bootstrap_tick() {
  if (tick_scheduled_ || signed_off_) return;
  tick_scheduled_ = true;
  schedule_after(config_.heartbeat_interval, [this] {
    tick_scheduled_ = false;
    cluster_mgr_->on_tick();
    crash_mgr_->on_tick();
    attraction_memory_->shard_tick();
    check_starvation();
    bootstrap_tick();
  });
}

}  // namespace sdvm
