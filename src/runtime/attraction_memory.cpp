#include "runtime/attraction_memory.hpp"

#include "runtime/site.hpp"

namespace sdvm {

void AttractionMemory::register_metrics(metrics::MetricsRegistry& registry) {
  registry.register_counter("mem.migrations_in", &migrations_in);
  registry.register_counter("mem.migrations_out", &migrations_out);
  registry.register_counter("mem.local_hits", &local_hits);
  registry.register_counter("mem.frames_created", &frames_created);
  registry.register_counter("mem.params_applied", &params_applied);
  registry.register_counter("mem.remote_fetches", &remote_fetches);
  registry.register_counter("mem.directory_lookups", &directory_lookups);
  registry.register_gauge("mem.frames", [this] {
    return static_cast<std::int64_t>(frames_.size());
  });
  registry.register_gauge("mem.objects", [this] {
    return static_cast<std::int64_t>(objects_.size());
  });
}

// ---------------------------------------------------------------------------
// Microframes
// ---------------------------------------------------------------------------

FrameId AttractionMemory::create_frame(ProgramId pid, MicrothreadId tid,
                                       std::size_t nparams, int priority) {
  ++frames_created;
  FrameId id(site_.id(), next_local_id_++);
  Microframe frame(id, pid, tid, nparams, priority);
  site_.trace(FrameEvent::kCreated, id, tid);
  if (nparams == 0) {
    frame.state = FrameState::kExecutable;
    frame_became_executable(std::move(frame));
  } else {
    frames_.emplace(id, std::move(frame));
  }
  return id;
}

Status AttractionMemory::apply_param(GlobalAddress frame, std::size_t slot,
                                     std::vector<std::byte> value) {
  auto it = frames_.find(frame);
  if (it != frames_.end() && site_.messages().defer_active()) {
    // A microthread is executing under virtual time: even local results
    // must not land before its virtual completion. Route through the
    // deferred loopback path.
    ByteWriter w;
    w.address(frame);
    w.u32(static_cast<std::uint32_t>(slot));
    w.blob(value);
    SdMessage msg;
    msg.dst = site_.id();
    msg.src_mgr = msg.dst_mgr = ManagerId::kAttractionMemory;
    msg.type = MsgType::kApplyParam;
    msg.payload = w.take();
    return site_.messages().send(std::move(msg));
  }
  if (it != frames_.end()) {
    Status st = it->second.apply(slot, std::move(value));
    if (!st.is_ok()) {
      SDVM_WARN(site_.tag()) << "apply to frame " << frame.value
                             << " failed: " << st.to_string();
      return st;
    }
    ++params_applied;
    site_.trace(FrameEvent::kParamApplied, frame, it->second.thread);
    // "Every time a result ... is applied to a waiting microframe, the
    // attraction memory checks whether this was the last missing
    // parameter."
    if (it->second.executable()) {
      Microframe f = std::move(it->second);
      frames_.erase(it);
      f.state = FrameState::kExecutable;
      frame_became_executable(std::move(f));
    }
    return Status::ok();
  }

  SiteId home = site_.cluster().resolve_successor(frame.home_site());
  if (home == site_.id()) {
    // Homed here but unknown. Either the frame is still in flight to us (a
    // signing-off site's kDirectoryImport races the frame's own results),
    // or it was consumed and this is a post-recovery duplicate. Park the
    // value: adoption applies it, the TTL purge forgets true duplicates.
    park_param(frame, slot, std::move(value));
    return Status::ok();
  }

  ByteWriter w;
  w.address(frame);
  w.u32(static_cast<std::uint32_t>(slot));
  w.blob(value);
  SdMessage msg;
  msg.dst = home;
  msg.src_mgr = msg.dst_mgr = ManagerId::kAttractionMemory;
  msg.type = MsgType::kApplyParam;
  msg.payload = w.take();
  return site_.messages().send(std::move(msg));
}

void AttractionMemory::frame_became_executable(Microframe frame) {
  site_.trace(FrameEvent::kBecameExecutable, frame.id, frame.thread);
  site_.scheduling().on_executable(std::move(frame));
}

Result<Microframe> AttractionMemory::take_frame(FrameId id) {
  auto it = frames_.find(id);
  if (it == frames_.end()) {
    return Status::error(ErrorCode::kNotFound,
                         "frame " + std::to_string(id.value) + " not here");
  }
  Microframe f = std::move(it->second);
  frames_.erase(it);
  return f;
}

void AttractionMemory::park_param(GlobalAddress frame, std::size_t slot,
                                  std::vector<std::byte> value) {
  purge_stale_params();
  SDVM_DEBUG(site_.tag()) << "parking param for absent local frame "
                          << frame.value;
  pending_params_[frame].push_back(PendingParam{
      static_cast<std::uint32_t>(slot), std::move(value),
      site_.clock().now()});
}

void AttractionMemory::purge_stale_params() {
  const Nanos ttl = 8 * site_.config().failure_timeout;
  const Nanos now = site_.clock().now();
  for (auto& [fid, parked] : pending_params_) {
    std::erase_if(parked, [&](const PendingParam& p) {
      return now - p.parked_at > ttl;
    });
  }
  std::erase_if(pending_params_,
                [](const auto& kv) { return kv.second.empty(); });
}

void AttractionMemory::adopt_frame(Microframe frame) {
  site_.trace(FrameEvent::kAdopted, frame.id, frame.thread);
  if (auto parked = pending_params_.extract(frame.id); !parked.empty()) {
    for (PendingParam& p : parked.mapped()) {
      Status st = frame.apply(p.slot, std::move(p.value));
      if (!st.is_ok()) {
        SDVM_WARN(site_.tag()) << "parked param for frame "
                               << frame.id.value
                               << " rejected: " << st.to_string();
      } else {
        ++params_applied;
        site_.trace(FrameEvent::kParamApplied, frame.id, frame.thread);
      }
    }
  }
  if (frame.executable()) {
    frame.state = FrameState::kExecutable;
    frame_became_executable(std::move(frame));
  } else {
    frames_.emplace(frame.id, std::move(frame));
  }
}

// ---------------------------------------------------------------------------
// Global memory objects
// ---------------------------------------------------------------------------

GlobalAddress AttractionMemory::alloc_object(ProgramId pid,
                                             std::int64_t nwords) {
  GlobalAddress addr(site_.id(), next_local_id_++);
  MemObject obj;
  obj.addr = addr;
  obj.program = pid;
  obj.words.assign(static_cast<std::size_t>(std::max<std::int64_t>(nwords, 0)),
                   0);
  objects_.emplace(addr, std::move(obj));
  auto& entry = directory_[addr];
  entry.owner = site_.id();
  entry.program = pid;
  return addr;
}

MemObject* AttractionMemory::local_object(GlobalAddress addr) {
  auto it = objects_.find(addr);
  return it == objects_.end() ? nullptr : &it->second;
}

bool AttractionMemory::owns(GlobalAddress addr) const {
  return objects_.contains(addr);
}

void AttractionMemory::install_object(MemObject obj) {
  GlobalAddress addr = obj.addr;
  ProgramId pid = obj.program;
  objects_[addr] = std::move(obj);
  if (addr.home_site() == site_.id()) {
    auto& entry = directory_[addr];
    entry.owner = site_.id();
    entry.program = pid;
  }
}

void AttractionMemory::evict_object(GlobalAddress addr) {
  objects_.erase(addr);
}

void AttractionMemory::set_directory_owner(GlobalAddress addr, SiteId owner) {
  directory_[addr].owner = owner;
}

SiteId AttractionMemory::directory_owner(GlobalAddress addr) const {
  ++directory_lookups;
  auto it = directory_.find(addr);
  return it == directory_.end() ? kInvalidSite : it->second.owner;
}

Result<MemObject*> AttractionMemory::attract(
    GlobalAddress addr, std::shared_ptr<FetchState>* wait) {
  if (auto* obj = local_object(addr); obj != nullptr) {
    ++local_hits;
    return obj;
  }

  if (sim_fetch_) {
    // Sim mode: the oracle migrates the object here immediately and
    // reports the modeled round-trip stall.
    ++remote_fetches;
    MemObject obj;
    auto stall = sim_fetch_(addr, &obj);
    if (!stall.is_ok()) return stall.status();
    sim_stall_ += stall.value();
    ++migrations_in;
    install_object(std::move(obj));
    if (addr.home_site() == site_.id()) {
      directory_[addr].owner = site_.id();
    }
    return local_object(addr);
  }

  // Threaded modes: park on (or start) a fetch.
  auto it = fetching_.find(addr);
  if (it == fetching_.end()) {
    ++remote_fetches;
    it = fetching_.emplace(addr, std::make_shared<FetchState>()).first;
    begin_fetch(addr);
  }
  *wait = it->second;
  return Status::error(ErrorCode::kUnavailable, "fetch in progress");
}

void AttractionMemory::begin_fetch(GlobalAddress addr) {
  SiteId home = site_.cluster().resolve_successor(addr.home_site());

  if (home == site_.id()) {
    // We are the homesite but don't own it: queue ourselves in our own
    // directory and let the mediation pull it back.
    auto dit = directory_.find(addr);
    if (dit == directory_.end()) {
      auto node = fetching_.extract(addr);
      if (!node.empty()) {
        node.mapped()->signal(Status::error(ErrorCode::kNotFound,
                                            "no such object"));
      }
      return;
    }
    Waiter w;
    w.requester = site_.id();
    w.local = fetching_[addr];
    dit->second.waiters.push_back(std::move(w));
    grant_next(addr);
    return;
  }

  ByteWriter w;
  w.address(addr);
  SdMessage req;
  req.dst = home;
  req.src_mgr = req.dst_mgr = ManagerId::kAttractionMemory;
  req.type = MsgType::kObjectRequest;
  req.payload = w.take();
  (void)site_.messages().request(req, [this, addr](Result<SdMessage> r) {
    auto node = fetching_.extract(addr);
    if (node.empty()) return;
    if (!r.is_ok()) {
      node.mapped()->signal(r.status());
      return;
    }
    if (r.value().type != MsgType::kObjectGrant) {
      node.mapped()->signal(
          Status::error(ErrorCode::kNotFound, "object miss"));
      return;
    }
    ByteReader rd(r.value().payload);
    auto obj = MemObject::deserialize(rd);
    if (!obj.is_ok()) {
      node.mapped()->signal(obj.status());
      return;
    }
    ++migrations_in;
    install_object(std::move(obj).value());
    node.mapped()->signal(Status::ok());
  });
}

Result<std::int64_t> AttractionMemory::try_read_word(
    GlobalAddress addr, std::int64_t index,
    std::shared_ptr<FetchState>* wait) {
  auto obj = attract(addr, wait);
  if (!obj.is_ok()) return obj.status();
  auto& words = obj.value()->words;
  if (index < 0 || static_cast<std::size_t>(index) >= words.size()) {
    return Status::error(ErrorCode::kInvalidArgument,
                         "memory index out of range");
  }
  return words[static_cast<std::size_t>(index)];
}

Status AttractionMemory::try_write_word(GlobalAddress addr,
                                        std::int64_t index, std::int64_t value,
                                        std::shared_ptr<FetchState>* wait) {
  auto obj = attract(addr, wait);
  if (!obj.is_ok()) return obj.status();
  auto& words = obj.value()->words;
  if (index < 0 || static_cast<std::size_t>(index) >= words.size()) {
    return Status::error(ErrorCode::kInvalidArgument,
                         "memory index out of range");
  }
  words[static_cast<std::size_t>(index)] = value;
  return Status::ok();
}

void AttractionMemory::grant_next(GlobalAddress addr) {
  auto dit = directory_.find(addr);
  if (dit == directory_.end()) return;
  DirEntry& d = dit->second;
  if (d.waiters.empty()) return;

  if (d.owner == site_.id() && owns(addr)) {
    Waiter w = std::move(d.waiters.front());
    d.waiters.pop_front();

    if (w.requester == site_.id()) {
      // Our own fetch: object is already local.
      fetching_.erase(addr);
      if (w.local) w.local->signal(Status::ok());
    } else {
      MemObject* obj = local_object(addr);
      ByteWriter bw;
      obj->serialize(bw);
      evict_object(addr);
      d.owner = w.requester;
      ++migrations_out;
      SdMessage grant;
      grant.dst = w.requester;
      grant.src_mgr = grant.dst_mgr = ManagerId::kAttractionMemory;
      grant.type = MsgType::kObjectGrant;
      grant.reply_to = w.reply_seq;
      grant.payload = bw.take();
      (void)site_.messages().send(std::move(grant));
    }
    if (!d.waiters.empty()) grant_next(addr);
    return;
  }

  if (d.recall_in_flight) return;
  d.recall_in_flight = true;

  ByteWriter bw;
  bw.address(addr);
  SdMessage recall;
  recall.dst = site_.cluster().resolve_successor(d.owner);
  recall.src_mgr = recall.dst_mgr = ManagerId::kAttractionMemory;
  recall.type = MsgType::kObjectRecall;
  recall.payload = bw.take();
  (void)site_.messages().request(recall, [this, addr](Result<SdMessage> r) {
    auto dit2 = directory_.find(addr);
    if (dit2 == directory_.end()) return;
    DirEntry& d2 = dit2->second;
    d2.recall_in_flight = false;

    if (!r.is_ok() || r.value().type != MsgType::kObjectReturn) {
      // Owner dead or object lost; recovery (if enabled) will restore it.
      Status failure = r.is_ok()
                           ? Status::error(ErrorCode::kNotFound, "object lost")
                           : r.status();
      auto waiters = std::move(d2.waiters);
      d2.waiters.clear();
      for (auto& w : waiters) {
        if (w.requester == site_.id()) {
          fetching_.erase(addr);
          if (w.local) w.local->signal(failure);
        } else {
          SdMessage miss;
          miss.dst = w.requester;
          miss.src_mgr = miss.dst_mgr = ManagerId::kAttractionMemory;
          miss.type = MsgType::kObjectMiss;
          miss.reply_to = w.reply_seq;
          (void)site_.messages().send(std::move(miss));
        }
      }
      return;
    }

    ByteReader rd(r.value().payload);
    auto obj = MemObject::deserialize(rd);
    if (!obj.is_ok()) return;
    install_object(std::move(obj).value());
    d2.owner = site_.id();
    grant_next(addr);
  });
}

void AttractionMemory::handle(const SdMessage& msg) {
  switch (msg.type) {
    case MsgType::kApplyParam: {
      try {
        ByteReader r(msg.payload);
        GlobalAddress frame = r.address();
        std::uint32_t slot = r.u32();
        auto value = r.blob();
        (void)apply_param(frame, slot, std::move(value));
      } catch (const DecodeError&) {
      }
      break;
    }
    case MsgType::kObjectRequest: {
      try {
        ByteReader r(msg.payload);
        GlobalAddress addr = r.address();
        ++directory_lookups;
        auto dit = directory_.find(addr);
        if (dit == directory_.end()) {
          SdMessage miss;
          miss.src_mgr = miss.dst_mgr = ManagerId::kAttractionMemory;
          miss.type = MsgType::kObjectMiss;
          (void)site_.messages().respond(msg, std::move(miss));
          break;
        }
        Waiter w;
        w.requester = msg.src;
        w.reply_seq = msg.seq;
        dit->second.waiters.push_back(std::move(w));
        grant_next(addr);
      } catch (const DecodeError&) {
      }
      break;
    }
    case MsgType::kObjectRecall: {
      try {
        ByteReader r(msg.payload);
        GlobalAddress addr = r.address();
        SdMessage reply;
        reply.src_mgr = reply.dst_mgr = ManagerId::kAttractionMemory;
        if (MemObject* obj = local_object(addr); obj != nullptr) {
          ByteWriter bw;
          obj->serialize(bw);
          evict_object(addr);
          ++migrations_out;
          reply.type = MsgType::kObjectReturn;
          reply.payload = bw.take();
        } else {
          reply.type = MsgType::kObjectMiss;
        }
        (void)site_.messages().respond(msg, std::move(reply));
      } catch (const DecodeError&) {
      }
      break;
    }
    case MsgType::kObjectGrant: {
      // Unsolicited: a grant addressed to a site that signed off before it
      // arrived, relayed here. Keep the object — the homesite's directory
      // points at the departed site, and recalls sent there are relayed to
      // us the same way.
      try {
        ByteReader r(msg.payload);
        auto obj = MemObject::deserialize(r);
        if (obj.is_ok()) {
          GlobalAddress addr = obj.value().addr;
          install_object(std::move(obj).value());
          if (auto it = directory_.find(addr); it != directory_.end()) {
            it->second.owner = site_.id();
            grant_next(addr);
          }
        }
      } catch (const DecodeError&) {
      }
      break;
    }
    case MsgType::kObjectReturn: {
      // Unsolicited return (sign-off relocation): we are the homesite and
      // become the owner again.
      try {
        ByteReader r(msg.payload);
        auto obj = MemObject::deserialize(r);
        if (obj.is_ok()) {
          GlobalAddress addr = obj.value().addr;
          install_object(std::move(obj).value());
          directory_[addr].owner = site_.id();
          grant_next(addr);
        }
      } catch (const DecodeError&) {
      }
      break;
    }
    case MsgType::kDirectoryImport: {
      try {
        ByteReader r(msg.payload);
        // Program descriptions first, so adopted frames resolve.
        std::uint32_t nprogs = r.count(/*min_bytes_each=*/8);
        for (std::uint32_t i = 0; i < nprogs; ++i) {
          auto info = ProgramInfo::deserialize(r);
          if (info.is_ok() &&
              site_.programs().find(info.value().id) == nullptr) {
            site_.programs().register_info(info.value());
          }
        }
        // Queued executable frames go straight to our scheduler.
        std::uint32_t nqueued = r.count(/*min_bytes_each=*/8);
        for (std::uint32_t i = 0; i < nqueued; ++i) {
          auto f = Microframe::deserialize(r);
          if (f.is_ok()) adopt_frame(std::move(f).value());
        }
        restore_snapshot(r);
        std::uint32_t nsources = r.count(/*min_bytes_each=*/8);
        for (std::uint32_t i = 0; i < nsources; ++i) {
          ProgramId spid = r.program();
          MicrothreadId tid = r.u32();
          std::string src = r.str();
          site_.code().import_sources(spid, {{tid, std::move(src)}});
        }
        SDVM_INFO(site_.tag()) << "absorbed state from signing-off site "
                               << msg.src;
      } catch (const DecodeError&) {
      }
      break;
    }
    default:
      SDVM_WARN(site_.tag()) << "attraction memory: unexpected "
                             << to_string(msg.type);
  }
}

// ---------------------------------------------------------------------------
// Bulk state movement: checkpoints and graceful sign-off
// ---------------------------------------------------------------------------

std::vector<std::byte> AttractionMemory::snapshot(ProgramId pid) const {
  bool all = !pid.valid();
  ByteWriter w;

  std::uint32_t nframes = 0;
  for (const auto& [id, f] : frames_) {
    if (all || f.program == pid) ++nframes;
  }
  w.u32(nframes);
  for (const auto& [id, f] : frames_) {
    if (all || f.program == pid) f.serialize(w);
  }

  std::uint32_t nobjs = 0;
  for (const auto& [addr, o] : objects_) {
    if (all || o.program == pid) ++nobjs;
  }
  w.u32(nobjs);
  for (const auto& [addr, o] : objects_) {
    if (all || o.program == pid) o.serialize(w);
  }

  // Directory entries homed here (owner field only; waiter queues are
  // transient and empty at quiescence).
  std::uint32_t ndir = 0;
  for (const auto& [addr, d] : directory_) {
    if (all || d.program == pid) ++ndir;
  }
  w.u32(ndir);
  for (const auto& [addr, d] : directory_) {
    if (all || d.program == pid) {
      w.address(addr);
      w.site(d.owner);
      w.program(d.program);
    }
  }
  return w.take();
}

void AttractionMemory::restore_snapshot(ByteReader& r) {
  std::uint32_t nframes = r.count(/*min_bytes_each=*/8);
  for (std::uint32_t i = 0; i < nframes; ++i) {
    auto f = Microframe::deserialize(r);
    if (!f.is_ok()) throw DecodeError("bad frame in snapshot");
    adopt_frame(std::move(f).value());
  }
  std::uint32_t nobjs = r.count(/*min_bytes_each=*/8);
  for (std::uint32_t i = 0; i < nobjs; ++i) {
    auto o = MemObject::deserialize(r);
    if (!o.is_ok()) throw DecodeError("bad object in snapshot");
    objects_[o.value().addr] = std::move(o).value();
  }
  std::uint32_t ndir = r.count(/*min_bytes_each=*/8);
  for (std::uint32_t i = 0; i < ndir; ++i) {
    GlobalAddress addr = r.address();
    SiteId owner = r.site();
    ProgramId pid = r.program();
    auto& entry = directory_[addr];
    entry.owner = owner;
    entry.program = pid;
  }
}

void AttractionMemory::relocate_all_to(SiteId successor) {
  // Objects we own but whose homesite is elsewhere go straight home.
  std::vector<GlobalAddress> foreign;
  for (const auto& [addr, obj] : objects_) {
    if (addr.home_site() != site_.id()) foreign.push_back(addr);
  }
  for (GlobalAddress addr : foreign) {
    MemObject* obj = local_object(addr);
    ByteWriter bw;
    obj->serialize(bw);
    SdMessage ret;
    ret.dst = site_.cluster().resolve_successor(addr.home_site());
    ret.src_mgr = ret.dst_mgr = ManagerId::kAttractionMemory;
    ret.type = MsgType::kObjectReturn;
    ret.payload = bw.take();
    (void)site_.messages().send(std::move(ret));
    evict_object(addr);
  }

  // Everything homed/owned here — frames, objects, directory — plus the
  // scheduler's queued frames and the program descriptions the successor
  // may lack, shipped as one import blob.
  ByteWriter w;

  auto queued = site_.scheduling().snapshot_frames(ProgramId{});
  // Queued executable frames ride along as ordinary executable frames.
  // They are appended to the frame section by temporarily adopting them.
  // (Serialize directly instead.)
  // -- program infos --
  std::vector<ProgramId> pids = site_.programs().active_programs();
  w.u32(static_cast<std::uint32_t>(pids.size()));
  for (ProgramId pid : pids) {
    site_.programs().find(pid)->serialize(w);
  }
  // -- queued frames --
  w.u32(static_cast<std::uint32_t>(queued.size()));
  for (const auto& f : queued) f.serialize(w);
  // -- memory snapshot --
  auto snap = snapshot(ProgramId{});
  w.raw(snap.data(), snap.size());
  // -- code sources --
  // The home is implicitly a code distribution site; if that role has
  // migrated here through a successor chain, hand it on too. Otherwise a
  // cluster whose original members all departed gracefully ends up with
  // live frames and no site able to serve their code.
  std::vector<std::tuple<ProgramId, MicrothreadId, std::string>> sources;
  for (ProgramId pid : pids) {
    for (auto& [tid, src] : site_.code().export_sources(pid)) {
      sources.emplace_back(pid, tid, std::move(src));
    }
  }
  w.u32(static_cast<std::uint32_t>(sources.size()));
  for (const auto& [pid, tid, src] : sources) {
    w.program(pid);
    w.u32(tid);
    w.str(src);
  }

  SdMessage imp;
  imp.dst = successor;
  imp.src_mgr = imp.dst_mgr = ManagerId::kAttractionMemory;
  imp.type = MsgType::kDirectoryImport;
  imp.payload = w.take();
  (void)site_.messages().send(std::move(imp));

  site_.scheduling().clear_program_frames(ProgramId{});
  frames_.clear();
  objects_.clear();
  directory_.clear();

  // Parked results ride along too: their frames are in the import blob
  // above, so re-address each one to the successor (re-parked there if it
  // outruns the import).
  for (auto& [fid, parked] : pending_params_) {
    for (PendingParam& p : parked) {
      ByteWriter pw;
      pw.address(fid);
      pw.u32(p.slot);
      pw.blob(p.value);
      SdMessage pm;
      pm.dst = successor;
      pm.src_mgr = pm.dst_mgr = ManagerId::kAttractionMemory;
      pm.type = MsgType::kApplyParam;
      pm.payload = pw.take();
      (void)site_.messages().send(std::move(pm));
    }
  }
  pending_params_.clear();
}

void AttractionMemory::drop_program(ProgramId pid) {
  std::erase_if(frames_,
                [&](const auto& kv) { return kv.second.program == pid; });
  std::vector<GlobalAddress> dead_objects;
  for (const auto& [addr, obj] : objects_) {
    if (obj.program == pid) dead_objects.push_back(addr);
  }
  for (auto addr : dead_objects) {
    objects_.erase(addr);
  }
  std::erase_if(directory_,
                [&](const auto& kv) { return kv.second.program == pid; });
}

}  // namespace sdvm
